// Advisor: the survey as a library.
//
// Describes three hypothetical systems and asks the taxonomy package which
// metrics to measure (Table 3 / §3.3) and how to design the user study
// (Figures 4–5), printing the bias checklist (Table 4) for the in-person
// case.
package main

import (
	"fmt"

	"repro/internal/taxonomy"
)

func main() {
	systems := []struct {
		name    string
		profile taxonomy.SystemProfile
		study   taxonomy.StudyQuestion
	}{
		{
			name: "gesture-driven crossfilter dashboard",
			profile: taxonomy.SystemProfile{
				LargeData:           true,
				HighFrameRateDevice: true,
				ConsecutiveQueries:  true,
				Audience:            taxonomy.AudienceNovice,
			},
			study: taxonomy.StudyQuestion{DeviceDependent: true, ComparisonAgainstControl: true},
		},
		{
			name: "approximate visualization recommender for analysts",
			profile: taxonomy.SystemProfile{
				Exploratory: true,
				Approximate: true,
				TaskBased:   true,
				Audience:    taxonomy.AudienceExpert,
			},
			study: taxonomy.StudyQuestion{DependsOnInherentAbility: true},
		},
		{
			name: "distributed geo-spatial prefetching tier",
			profile: taxonomy.SystemProfile{
				Distributed:         true,
				LargeData:           true,
				SpeculativePrefetch: true,
			},
			study: taxonomy.StudyQuestion{InteractionsDefinitive: true, NavigationEnumerable: true},
		},
	}

	for _, s := range systems {
		fmt.Printf("=== %s ===\n", s.name)
		fmt.Println("metrics to measure:")
		for _, rec := range taxonomy.RecommendMetrics(s.profile) {
			fmt.Printf("  %-26s %s\n", rec.Metric.Name, rec.Reason)
		}
		setting := taxonomy.AdviseSetting(s.study)
		subjects := taxonomy.AdviseSubjects(s.study)
		fmt.Printf("study design: %s; %s\n", setting, subjects)
		if setting == taxonomy.InPerson && subjects != taxonomy.Simulation {
			fmt.Println("bias checklist for the in-person study:")
			for _, b := range taxonomy.Biases {
				fmt.Printf("  - %s (%s): %s\n", b.Name, b.Source, b.Mitigation)
			}
		}
		fmt.Println()
	}

	fmt.Println("latency budgets from the perception literature:")
	for _, p := range taxonomy.PerceptualThresholds {
		fmt.Printf("  %-28s %-10s %s\n", p.Context, p.Threshold, p.Source)
	}
}
