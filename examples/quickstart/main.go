// Quickstart: the minimal end-to-end path through the library.
//
// It generates the road dataset, stands up the two backend profiles,
// simulates a user brushing a range slider on a touch screen, replays the
// resulting query workload against both backends, and reports the paper's
// two frontend metrics — query issuing frequency (QIF) and latency
// constraint violations (LCV) — side by side.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/behavior"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/trace"
)

func main() {
	// 1. Data: 100k tuples of the 3D road network (x=lon, y=lat, z=alt).
	roads := dataset.Roads(1, 100000)
	fmt.Printf("dataset: %s, %d tuples\n", roads.Name, roads.NumRows())

	// 2. A user drags range sliders on a touch device; every handle
	//    movement is a query-triggering event.
	rng := rand.New(rand.NewSource(7))
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	domains := [][2]float64{{lonLo, lonHi}, {latLo, latHi}, {altLo, altHi}}
	sess := behavior.SimulateSliderUser(rng, device.Touch, domains, 8)
	fmt.Printf("interaction: %d slider events over %.1fs on %s\n",
		len(sess.Events), sess.Duration.Seconds(), sess.Device.Name)

	// 3. QIF: how fast is the frontend issuing queries?
	qif := metrics.MeasureQIF(trace.SliderTimes(sess.Events))
	fmt.Printf("QIF: %.1f queries/second (mean interval %v)\n", qif.PerSecond, qif.MeanIntervl)

	// 4. Turn the slider trace into the paper's coordinated-view SQL
	//    workload: one 20-bin histogram query per other dimension.
	dims := []opt.CrossfilterDim{
		{Column: "x", Lo: lonLo, Hi: lonHi},
		{Column: "y", Lo: latLo, Hi: latHi},
		{Column: "z", Lo: altLo, Hi: altHi},
	}
	events, err := opt.BuildCrossfilterWorkload(sess.Events, "dataroad", dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d query groups (%d SQL queries)\n", len(events), 2*len(events))

	// 5. Replay against a disk-based and an in-memory backend.
	for _, profile := range []engine.Profile{engine.ProfileDisk, engine.ProfileMemory} {
		eng := engine.New(profile)
		eng.Register(roads)
		srv := &engine.Server{Engine: eng, Network: time.Millisecond}
		res, err := opt.ReplayRaw(srv, events)
		if err != nil {
			log.Fatal(err)
		}
		lat := metrics.Durations(res.Latency)
		fmt.Printf("%-7s backend: median latency %8.1f ms, LCV %5.1f%% of queries\n",
			profile.Name, metrics.Percentile(lat, 50), res.LCVPercent()*100)

		// One query's full latency breakdown (§3.1.1's components).
		srv.Reset()
		rec, err := srv.Submit(0, events[0].Stmts[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("        one query: %v\n", rec.Breakdown(16*time.Millisecond))

		// 6. The core facade runs the paper's whole methodology in one call.
		assessment := core.Evaluate(core.Run{
			Name:     profile.Name,
			Issues:   res.Issues,
			Finishes: res.Finishes,
			Exec:     res.Exec,
		})
		fmt.Printf("        assessment: %s\n", assessment)
		for _, n := range assessment.Notes {
			fmt.Printf("          · %s\n", n)
		}
	}
	fmt.Println("\n(The disk backend cascades — exactly the paper's Figure 2. Try the")
	fmt.Println(" crossfilter example for the Skip and KL-divergence fixes.)")
}
