// Crossfilter: case study 2 in miniature.
//
// Three devices (mouse, touch, Leap Motion) drive a brushing-and-linking
// interface over the 3D road network; the generated workloads replay
// against the disk-based and in-memory backends under the paper's four
// policies (raw, KL>0, KL>0.2, Skip). The output mirrors Figures 13–15:
// who violates the latency constraint, and which optimization rescues the
// slow backend.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/storage"
)

const roadRows = 150000 // > buffer pool, so the disk profile thrashes

func main() {
	roads := dataset.Roads(1, roadRows)
	sample := sampleRoads(roads, 2000)
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	domains := [][2]float64{{lonLo, lonHi}, {latLo, latHi}, {altLo, altHi}}
	dims := []opt.CrossfilterDim{
		{Column: "x", Lo: lonLo, Hi: lonHi},
		{Column: "y", Lo: latLo, Hi: latHi},
		{Column: "z", Lo: altLo, Hi: altHi},
	}

	fmt.Printf("%-34s %8s %8s %10s %8s\n", "condition", "offered", "executed", "median", "LCV")
	for _, dev := range device.Profiles() {
		rng := rand.New(rand.NewSource(11))
		sess := behavior.SimulateSliderUser(rng, dev, domains, 8)
		events, err := opt.BuildCrossfilterWorkload(sess.Events, "dataroad", dims)
		if err != nil {
			log.Fatal(err)
		}
		for _, profile := range []engine.Profile{engine.ProfileDisk, engine.ProfileMemory} {
			for _, policy := range []string{"raw", "KL>0", "KL>0.2", "skip"} {
				eng := engine.New(profile)
				eng.Register(roads)
				srv := &engine.Server{Engine: eng, Network: time.Millisecond}
				var res *opt.ReplayResult
				switch policy {
				case "raw":
					res, err = opt.ReplayRaw(srv, events)
				case "skip":
					res, err = opt.ReplaySkip(srv, events)
				default:
					threshold := 0.0
					if policy == "KL>0.2" {
						threshold = 0.2
					}
					f, ferr := opt.NewKLFilter(threshold, sample, []string{"x", "y", "z"})
					if ferr != nil {
						log.Fatal(ferr)
					}
					res, err = opt.ReplayKL(srv, events, f)
				}
				if err != nil {
					log.Fatal(err)
				}
				med := metrics.Percentile(metrics.Durations(res.Latency), 50)
				fmt.Printf("%-34s %8d %8d %8.0fms %7.1f%%\n",
					dev.Name+"/"+profile.Name+"/"+policy,
					res.Offered, res.Executed, med, res.LCVPercent()*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("Paper shape: memory stays interactive everywhere; disk/raw cascades;")
	fmt.Println("Skip and KL>0.2 restore sub-second latency on the disk backend.")
}

// sampleRoads takes an every-kth-row sample for the client-side KL
// approximation.
func sampleRoads(t *storage.Table, n int) *storage.Table {
	out := storage.NewTable(t.Name+"_sample", t.Schema)
	stride := t.NumRows() / n
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < t.NumRows() && out.NumRows() < n; i += stride {
		out.MustAppendRow(t.Row(i)...)
	}
	return out
}
