// Composite: case study 3 — analyzing composite-interface sessions.
//
// Fifteen simulated users explore an accommodation-search interface (map,
// sliders, checkboxes, text box) for 20 minutes each. The example mines
// their traces for the paper's behavioral findings — widget shares
// (Table 9), zoom concentration (Figure 18), filter-count CDF (Figure 20),
// request vs exploration time (Figure 21) — and then uses them the way the
// paper prescribes: to size and choose a tile prefetcher, comparing cache
// policies by hit rate.
package main

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/session"
	"repro/internal/widget"
)

func main() {
	sessions := session.RunStudy(42, 15, 20*time.Minute)

	// Table 9: widget shares.
	counts := map[widget.Kind]int{}
	total := 0
	var reqSecs, expSecs, filters []float64
	inBand, zoomTotal := 0, 0
	for _, s := range sessions {
		for _, q := range s.Queries[1:] {
			counts[q.Widget]++
			total++
			reqSecs = append(reqSecs, q.RequestTime.Seconds())
			expSecs = append(expSecs, q.ExploreTime.Seconds())
			filters = append(filters, float64(q.FilterCount))
			zoomTotal++
			if q.Zoom >= 11 && q.Zoom <= 14 {
				inBand++
			}
		}
	}
	fmt.Println("widget shares (paper: map 62.8%, slider+checkbox 29.9%):")
	for _, k := range []widget.Kind{widget.KindMap, widget.KindSlider, widget.KindCheckbox, widget.KindButton, widget.KindTextBox} {
		fmt.Printf("  %-10s %5.1f%%\n", k, 100*float64(counts[k])/float64(total))
	}

	fmt.Printf("\nzoom levels 11-14 hold %.0f%% of queries (Figure 18)\n",
		100*float64(inBand)/float64(zoomTotal))

	cdf := metrics.NewCDF(filters)
	fmt.Printf("P(filter conditions ≤ 4) = %.2f (Figure 20, paper ≈0.7)\n", cdf.At(4))

	mReq := metrics.Summarize(reqSecs).Mean
	mExp := metrics.Summarize(expSecs).Mean
	fmt.Printf("mean request %.2fs vs exploration %.1fs → ≈%.0f queries prefetchable (Figure 21, paper ≈18)\n",
		mReq, mExp, mExp/mReq)

	// Behavior-driven prefetching: feed the observed navigation into the
	// tile prefetchers and compare hit rates.
	fmt.Println("\ntile-cache hit rates over the observed navigation:")
	for _, spec := range []struct {
		name string
		pf   opt.TilePrefetcher
	}{
		{"LRU only (no prefetch)", opt.NoPrefetch{}},
		{"neighbor prefetch", opt.NeighborPrefetch{}},
		{"momentum (RAP-style)", opt.MomentumPrefetch{}},
		{"markov", opt.MarkovPrefetch{}},
	} {
		var rate, n float64
		for _, s := range sessions {
			steps := sessionSteps(s)
			if len(steps) < 3 {
				continue
			}
			rate += opt.EvaluateTilePolicy(steps, opt.NewLRU(2000), spec.pf, 60)
			n++
		}
		fmt.Printf("  %-26s %.1f%%\n", spec.name, 100*rate/n)
	}
	fmt.Println("\n(The prediction-driven policies beat eviction-only caching — the")
	fmt.Println(" paper's §3.1.1 observation.)")
}

// sessionSteps converts a session's map queries into prefetcher steps.
func sessionSteps(s *session.Session) []opt.TileStep {
	var sets [][]widget.Tile
	for _, q := range s.Queries {
		if q.Widget != widget.KindMap || len(q.VisibleTileKeys) == 0 {
			continue
		}
		var tiles []widget.Tile
		for _, key := range q.VisibleTileKeys {
			t, err := widget.ParseTile(key)
			if err == nil {
				tiles = append(tiles, t)
			}
		}
		sets = append(sets, tiles)
	}
	return opt.StepsFromTiles(sets)
}
