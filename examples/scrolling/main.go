// Scrolling: case study 1 — inertial scrolling over the movie table.
//
// Fifteen simulated users skim 4,000 top-rated movies on an inertial
// trackpad. The example measures their scrolling-speed statistics
// (Table 7), then compares the two prefetching strategies — event fetch
// and timer fetch — at the paper's four batch sizes (Figure 10 / Table 8),
// with per-fetch latency taken from real executions of the case study's Q1
// against the disk-profile engine.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
)

func main() {
	movies := dataset.Movies(1, dataset.MovieCount)
	eng := engine.New(engine.ProfileDisk)
	eng.Register(movies)

	// Simulate the 15-user study.
	var traces []*behavior.ScrollTrace
	var maxSpeeds []float64
	for u := 0; u < 15; u++ {
		rng := rand.New(rand.NewSource(100 + int64(u)))
		tr := behavior.SimulateScroller(rng, behavior.NewScrollerParams(rng), movies.NumRows())
		traces = append(traces, tr)
		maxSpeeds = append(maxSpeeds, behavior.MeasureSpeed(tr.Events).MaxTuplesSec)
	}
	s := metrics.Summarize(maxSpeeds)
	fmt.Printf("max scroll speed (tuples/s): range [%.0f, %.0f], mean %.0f, median %.0f\n",
		s.Min, s.Max, s.Mean, s.Median)
	fmt.Printf("(paper Table 7: range [12, 200], mean 80, median 58)\n\n")

	// Per-fetch latency: actually run Q1 with each batch size.
	fmt.Printf("%-8s %12s %14s %14s %12s %12s\n",
		"batch", "exec", "event wait", "timer wait", "event LCV", "timer LCV")
	for _, batch := range []int{12, 30, 58, 80} {
		q := fmt.Sprintf(`SELECT poster, title || '(' || year || ')', director, genre, plot, rating
			FROM imdb LIMIT %d OFFSET 2000`, batch)
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		exec := res.Stats.ModelCost + 60*time.Millisecond // + network/browser overhead

		var eWaits, tWaits []float64
		eViol, tViol := 0, 0
		for _, tr := range traces {
			er := opt.SimulateEventFetch(tr.Events, batch, batch, exec)
			tm := opt.SimulateTimerFetch(tr.Events, batch, batch, time.Second, exec)
			eViol += er.Violations
			tViol += tm.Violations
			for _, w := range er.Waits {
				eWaits = append(eWaits, float64(w.Milliseconds()))
			}
			for _, w := range tm.Waits {
				tWaits = append(tWaits, float64(w.Milliseconds()))
			}
		}
		fmt.Printf("%-8d %12v %12.0fms %12.0fms %12d %12d\n",
			batch, exec.Round(time.Millisecond),
			metrics.Summarize(eWaits).Mean, metrics.Summarize(tWaits).Mean, eViol, tViol)
	}
	fmt.Println("\nPaper shape: event fetch stays flat near the execution time at every")
	fmt.Println("batch; timer fetch starts orders of magnitude slower and reaches zero")
	fmt.Println("latency once the batch matches the median of max scrolling speed (58).")
}
