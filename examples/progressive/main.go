// Progressive: online-aggregation-style approximate answers.
//
// Runs the crossfilter histogram query progressively over the road
// network: snapshots refine geometrically until exact, and the accuracy
// metric (MSE against the truth) quantifies the survey's
// accuracy-vs-latency trade-off — the flipped contract of interactive
// systems, where latency is bounded and accuracy is what varies.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/progressive"
)

func main() {
	roads := dataset.Roads(1, dataset.RoadCount)
	ex := progressive.NewExecutor(roads, 3)

	lonLo, lonHi, latLo, latHi, _, _ := dataset.RoadBounds()
	q := progressive.Query{
		Column: "y", Lo: latLo, Hi: latHi, Bins: 20,
		Filters: map[string][2]float64{"x": {lonLo, (lonLo + lonHi) / 2}},
	}
	snaps, err := ex.Run(q, 1000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%12s %8s %12s %12s\n", "rows", "%data", "model cost", "mse")
	for _, s := range snaps {
		fmt.Printf("%12d %7.1f%% %12v %12.2e\n", s.SampleRows, s.Fraction*100, s.Cost, s.MSE)
	}

	for _, tol := range []float64{1e-3, 1e-4, 1e-5} {
		s, ok := progressive.FirstWithin(snaps, tol)
		status := "reached"
		if !ok {
			status = "only at full scan"
		}
		fmt.Printf("mse ≤ %.0e %s at %.1f%% of the data (cost %v)\n",
			tol, status, s.Fraction*100, s.Cost)
	}
	full := snaps[len(snaps)-1]
	early, _ := progressive.FirstWithin(snaps, 1e-4)
	fmt.Printf("\nstopping at mse ≤ 1e-4 is %.0fx cheaper than the exact answer\n",
		float64(full.Cost)/float64(early.Cost))
}
