// Package core is the library's facade: it applies the paper's evaluation
// methodology to one interactive workload run. Give it the run's issue and
// completion timestamps (any widget, any backend) and it produces the
// metric set the paper prescribes — the two novel frontend metrics (query
// issuing frequency and latency constraint violations), the latency
// summary, the Figure 3 frontend/backend quadrant, and guideline notes
// derived from the perception literature and Section 5.
//
// The heavier machinery (simulated users, the SQL engine, the per-figure
// experiments) lives in the sibling packages; core is what a downstream
// system plugs its own trace into.
package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/taxonomy"
)

// Run is one recorded interactive session against a backend: parallel
// issue/finish timestamp series plus optional execution costs.
type Run struct {
	Name string
	// Issues and Finishes are parallel and issue-ordered.
	Issues   []time.Duration
	Finishes []time.Duration
	// Exec optionally carries per-query backend execution time; when
	// absent, capacity analysis falls back to observed latencies.
	Exec []time.Duration
	// SessionEnd, when positive, lets the final query count toward LCV.
	SessionEnd time.Duration
}

// Quadrant is the Figure 3 classification of a run.
type Quadrant int

// Figure 3 quadrants.
const (
	Good Quadrant = iota
	PerceivedSlow
	OverwhelmedBackend
	Unresponsive
)

// String names the quadrant in the paper's terms.
func (q Quadrant) String() string {
	switch q {
	case Good:
		return "good"
	case PerceivedSlow:
		return "perceived slow (low QIF, slow backend)"
	case OverwhelmedBackend:
		return "overwhelmed backend — need to throttle QIF"
	case Unresponsive:
		return "unresponsive"
	default:
		return fmt.Sprintf("Quadrant(%d)", int(q))
	}
}

// Assessment is the evaluation of one run.
type Assessment struct {
	Name       string
	QIF        metrics.QIF
	LCV        int
	LCVPercent float64
	// LatencyMs summarizes perceived latency in milliseconds.
	LatencyMs metrics.Summary
	Quadrant  Quadrant
	// Notes carries guideline-derived observations (perception thresholds,
	// throttling advice).
	Notes []string
}

// highQIFThreshold separates continuous-manipulation workloads (sliders,
// gestures — tens of queries per second) from discrete ones.
const highQIFThreshold = 20.0

// Evaluate applies the paper's metric set to a run. It panics only on
// mismatched issue/finish series (via metrics.LCV); an empty run yields a
// zero assessment.
func Evaluate(run Run) Assessment {
	a := Assessment{Name: run.Name}
	if len(run.Issues) == 0 {
		return a
	}
	a.QIF = metrics.MeasureQIF(run.Issues)
	a.LCV = metrics.LCV(run.Issues, run.Finishes, run.SessionEnd)
	a.LCVPercent = metrics.LCVPercent(run.Issues, run.Finishes, run.SessionEnd)

	lats := make([]float64, len(run.Issues))
	for i := range run.Issues {
		lats[i] = float64(run.Finishes[i]-run.Issues[i]) / float64(time.Millisecond)
	}
	a.LatencyMs = metrics.Summarize(lats)

	// Backend capacity: mean execution time if supplied, else mean latency.
	capacityMs := a.LatencyMs.Mean
	if len(run.Exec) > 0 {
		capacityMs = metrics.Summarize(metrics.Durations(run.Exec)).Mean
	}
	highQIF := a.QIF.PerSecond >= highQIFThreshold
	var issueIntervalMs float64
	if a.QIF.PerSecond > 0 {
		issueIntervalMs = 1000 / a.QIF.PerSecond
	}
	// The backend is slow when it breaches the 500 ms interactivity
	// threshold, cannot keep pace with the issue rate, or demonstrably
	// falls behind (violations measured on the actual, bursty trace —
	// mean rates hide bursts).
	slow := capacityMs > 500 ||
		(issueIntervalMs > 0 && capacityMs > issueIntervalMs) ||
		a.LCVPercent > 0.25

	switch {
	case !slow:
		a.Quadrant = Good
	case highQIF && a.LCVPercent > 0.5:
		a.Quadrant = Unresponsive
	case highQIF:
		a.Quadrant = OverwhelmedBackend
	default:
		a.Quadrant = PerceivedSlow
	}

	a.Notes = notes(a, capacityMs)
	return a
}

// notes derives guideline observations from the measurements.
func notes(a Assessment, capacityMs float64) []string {
	var out []string
	if a.LatencyMs.Median > 500 {
		out = append(out, "median latency exceeds the 500 ms threshold Liu & Heer found to measurably degrade exploratory analysis")
	} else if a.LatencyMs.Median > 100 {
		out = append(out, "median latency is above the ~100 ms direct-manipulation comfort band; consider prefetching or approximation")
	}
	if a.Quadrant == OverwhelmedBackend || a.Quadrant == Unresponsive {
		out = append(out, fmt.Sprintf("frontend issues %.0f q/s but the backend sustains only %.0f q/s — throttle the query issuing frequency or filter queries (Skip, KL)", a.QIF.PerSecond, 1000/capacityMs))
	}
	if a.LCVPercent > 0.25 {
		out = append(out, fmt.Sprintf("%.0f%% of queries violate the latency constraint: results routinely arrive after the user has moved on", a.LCVPercent*100))
	}
	if len(out) == 0 {
		out = append(out, "within interactive budgets; validate with a user study covering both factor families")
	}
	return out
}

// Recommend exposes the Table 3 metric advisor alongside the quantitative
// assessment so a single import drives both halves of the methodology.
func Recommend(profile taxonomy.SystemProfile) []taxonomy.Recommendation {
	return taxonomy.RecommendMetrics(profile)
}

// String renders the assessment as a compact report.
func (a Assessment) String() string {
	return fmt.Sprintf("%s: qif %.1f/s, lcv %d (%.0f%%), latency median %.1f ms (max %.1f ms), quadrant: %s",
		a.Name, a.QIF.PerSecond, a.LCV, a.LCVPercent*100, a.LatencyMs.Median, a.LatencyMs.Max, a.Quadrant)
}
