package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/taxonomy"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// seriesRun builds a run with n queries at the given issue interval and
// per-query latency.
func seriesRun(n int, interval, latency time.Duration) Run {
	r := Run{Name: "test"}
	for i := 0; i < n; i++ {
		issue := time.Duration(i) * interval
		r.Issues = append(r.Issues, issue)
		r.Finishes = append(r.Finishes, issue+latency)
		r.Exec = append(r.Exec, latency)
	}
	return r
}

func TestEvaluateEmpty(t *testing.T) {
	a := Evaluate(Run{Name: "empty"})
	if a.QIF.Queries != 0 || a.LCV != 0 {
		t.Errorf("empty assessment = %+v", a)
	}
}

func TestEvaluateGood(t *testing.T) {
	// 50 q/s, 5ms latency: fast backend, high QIF, no violations.
	a := Evaluate(seriesRun(100, ms(20), ms(5)))
	if a.Quadrant != Good {
		t.Errorf("quadrant = %v, want Good", a.Quadrant)
	}
	if a.LCV != 0 {
		t.Errorf("LCV = %d", a.LCV)
	}
	if a.QIF.PerSecond < 45 || a.QIF.PerSecond > 55 {
		t.Errorf("QIF = %v", a.QIF.PerSecond)
	}
	if len(a.Notes) == 0 {
		t.Error("no notes")
	}
}

func TestEvaluateOverwhelmed(t *testing.T) {
	// 50 q/s against a 300ms backend: the throttle quadrant.
	a := Evaluate(seriesRun(100, ms(20), ms(300)))
	// The cascade is fully realized (LCV ≈ 100%), so the run reads as
	// unresponsive — the outcome Figure 3 warns the throttle prevents.
	if a.Quadrant != Unresponsive {
		t.Errorf("quadrant = %v, want Unresponsive", a.Quadrant)
	}
	if a.LCVPercent < 0.9 {
		t.Errorf("LCVPercent = %v, want ~1", a.LCVPercent)
	}
	found := false
	for _, n := range a.Notes {
		if strings.Contains(n, "throttle") {
			found = true
		}
	}
	if !found {
		t.Errorf("no throttle note in %v", a.Notes)
	}
}

func TestEvaluatePerceivedSlow(t *testing.T) {
	// 1 query every 2s against a 700ms backend: low QIF, slow backend.
	a := Evaluate(seriesRun(20, 2*time.Second, ms(700)))
	if a.Quadrant != PerceivedSlow {
		t.Errorf("quadrant = %v, want PerceivedSlow", a.Quadrant)
	}
	// The 500ms perception note must fire.
	found := false
	for _, n := range a.Notes {
		if strings.Contains(n, "500 ms") {
			found = true
		}
	}
	if !found {
		t.Errorf("no perception note in %v", a.Notes)
	}
}

func TestEvaluateLatencyFallback(t *testing.T) {
	// Without Exec, capacity falls back to observed latency.
	r := seriesRun(50, ms(20), ms(300))
	r.Exec = nil
	a := Evaluate(r)
	if a.Quadrant != Unresponsive && a.Quadrant != OverwhelmedBackend {
		t.Errorf("quadrant = %v", a.Quadrant)
	}
}

func TestSessionEndCountsLastQuery(t *testing.T) {
	r := Run{
		Issues:     []time.Duration{0},
		Finishes:   []time.Duration{ms(100)},
		SessionEnd: ms(50),
	}
	a := Evaluate(r)
	if a.LCV != 1 {
		t.Errorf("LCV = %d, want 1 (finish after session end)", a.LCV)
	}
}

func TestQuadrantStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, q := range []Quadrant{Good, PerceivedSlow, OverwhelmedBackend, Unresponsive} {
		s := q.String()
		if s == "" || seen[s] {
			t.Errorf("bad quadrant string %q", s)
		}
		seen[s] = true
	}
}

func TestRecommendPassthrough(t *testing.T) {
	recs := Recommend(taxonomy.SystemProfile{HighFrameRateDevice: true, ConsecutiveQueries: true})
	got := map[string]bool{}
	for _, r := range recs {
		got[r.Metric.Name] = true
	}
	if !got[taxonomy.QIFMetric] || !got[taxonomy.LCVMetric] {
		t.Errorf("facade advisor missing novel metrics: %v", got)
	}
}

func TestAssessmentString(t *testing.T) {
	a := Evaluate(seriesRun(10, ms(20), ms(5)))
	s := a.String()
	for _, want := range []string{"qif", "lcv", "quadrant"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
