package tracefmt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/device"
	"repro/internal/trace"
)

func TestSliderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	domains := [][2]float64{{0, 100}, {-5, 5}}
	var buf bytes.Buffer
	want := map[int][]trace.SliderEvent{}
	for u := 0; u < 3; u++ {
		sess := behavior.SimulateSliderUser(rng, device.Mouse, domains, 4)
		want[u] = sess.Events
		if err := WriteSliderTrace(&buf, u, "mouse", sess.Events); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadSliderTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 3 {
		t.Fatalf("users = %v", got.Users)
	}
	for u, evs := range want {
		if len(got.Events[u]) != len(evs) {
			t.Fatalf("user %d: %d events, want %d", u, len(got.Events[u]), len(evs))
		}
		for i, ev := range evs {
			g := got.Events[u][i]
			// Timestamps truncate to milliseconds on the wire.
			if g.At != ev.At.Truncate(time.Millisecond) ||
				g.SliderIdx != ev.SliderIdx || g.MinVal != ev.MinVal || g.MaxVal != ev.MaxVal {
				t.Fatalf("user %d event %d: %+v vs %+v", u, i, g, ev)
			}
		}
		if got.Devices[u] != "mouse" {
			t.Errorf("user %d device %q", u, got.Devices[u])
		}
	}
}

func TestScrollRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := behavior.SimulateScroller(rng, behavior.NewScrollerParams(rng), 300)
	var buf bytes.Buffer
	if err := WriteScrollTrace(&buf, 7, tr.Events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScrollTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 1 || got.Users[0] != 7 {
		t.Fatalf("users = %v", got.Users)
	}
	evs := got.Events[7]
	if len(evs) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(evs), len(tr.Events))
	}
	if evs[10].ScrollNum != tr.Events[10].ScrollNum || evs[10].Delta != tr.Events[10].Delta {
		t.Error("scroll payload mismatch")
	}
}

func TestReadErrors(t *testing.T) {
	// Malformed JSON.
	if _, err := ReadSliderTraces(strings.NewReader("{bad json\n")); err == nil {
		t.Error("bad JSON accepted")
	}
	// Out-of-order events for one user.
	ooo := `{"user":0,"timestamp_ms":100,"sliderIdx":0,"minVal":0,"maxVal":1}
{"user":0,"timestamp_ms":50,"sliderIdx":0,"minVal":0,"maxVal":1}
`
	if _, err := ReadSliderTraces(strings.NewReader(ooo)); err == nil {
		t.Error("out-of-order slider trace accepted")
	}
	if _, err := ReadScrollTraces(strings.NewReader(`{"user":0,"timestamp_ms":9}` + "\n" + `{"user":0,"timestamp_ms":3}` + "\n")); err == nil {
		t.Error("out-of-order scroll trace accepted")
	}
	// Interleaved users stay independently ordered.
	ok := `{"user":0,"timestamp_ms":100,"sliderIdx":0,"minVal":0,"maxVal":1}
{"user":1,"timestamp_ms":10,"sliderIdx":0,"minVal":0,"maxVal":1}
{"user":0,"timestamp_ms":200,"sliderIdx":1,"minVal":0,"maxVal":1}

{"user":1,"timestamp_ms":20,"sliderIdx":1,"minVal":0,"maxVal":1}
`
	got, err := ReadSliderTraces(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("interleaved trace rejected: %v", err)
	}
	if len(got.Events[0]) != 2 || len(got.Events[1]) != 2 {
		t.Errorf("grouping wrong: %v", got.Events)
	}
}

func TestEmptyInput(t *testing.T) {
	got, err := ReadSliderTraces(strings.NewReader(""))
	if err != nil || len(got.Users) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestScrollSelectionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := behavior.NewScrollerParams(rng)
	p.SelectRate = 0.5
	tr := behavior.SimulateScroller(rng, p, 400)
	if len(tr.Selections) == 0 {
		t.Skip("no selections in this trace")
	}
	var buf bytes.Buffer
	if err := WriteScrollTrace(&buf, 3, tr.Events); err != nil {
		t.Fatal(err)
	}
	if err := WriteScrollSelections(&buf, 3, tr.Selections); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScrollTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selections[3]) != len(tr.Selections) {
		t.Fatalf("selections = %d, want %d", len(got.Selections[3]), len(tr.Selections))
	}
	for i, s := range tr.Selections {
		g := got.Selections[3][i]
		if g.TupleIndex != s.TupleIndex || g.Backscrolled != s.Backscrolled {
			t.Fatalf("selection %d: %+v vs %+v", i, g, s)
		}
	}
	if len(got.Events[3]) != len(tr.Events) {
		t.Error("events lost when mixed with selections")
	}
}

func TestServeTraceRoundTrip(t *testing.T) {
	recs := []ServeRecord{
		{TimestampMS: 12, Session: "user-0", Seq: 0, Kind: "brush", Status: 200, LatencyMS: 41.5, AppliedSeq: 3, Coalesced: true},
		{TimestampMS: 9, Session: "user-1", Seq: 5, Kind: "query", Status: 400, LatencyMS: 0.8},
		{TimestampMS: 30, Session: "user-0", Seq: 1, Kind: "tile", Status: 429, LatencyMS: 0.1},
	}
	var buf bytes.Buffer
	if err := WriteServeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// Completion-ordered logs are legal out of timestamp order; the reader
	// must not reject them.
	got, err := ReadServeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestServeTraceSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"timestamp_ms":1,"session":"s","seq":0,"kind":"brush","status":200,"latency_ms":2}` + "\n\n"
	got, err := ReadServeTrace(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if got[0].Session != "s" || got[0].Status != 200 {
		t.Errorf("record = %+v", got[0])
	}
}

func TestTraceRecordRoundTrip(t *testing.T) {
	recs := []TraceRecord{
		{TimestampMS: 12, Session: "s1", Seq: 3, Kind: "brush", Status: 200,
			TotalMS: 8.5, Tier: "exact", LCV: true, Dominant: "execute",
			StagesMS: map[string]float64{"admission": 0.1, "queue": 1.2, "execute": 6.8, "write": 0.4}},
		{TimestampMS: 20, Session: "s2", Seq: 0, Kind: "tile", Status: 503,
			Dominant: "queue", StagesMS: map[string]float64{"admission": 0.05, "queue": 30}},
	}
	var buf bytes.Buffer
	if err := WriteTraceRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Session != recs[i].Session || got[i].Status != recs[i].Status ||
			got[i].Dominant != recs[i].Dominant || got[i].LCV != recs[i].LCV ||
			len(got[i].StagesMS) != len(recs[i].StagesMS) {
			t.Errorf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
		for k, v := range recs[i].StagesMS {
			if got[i].StagesMS[k] != v {
				t.Errorf("record %d stage %s: %v vs %v", i, k, got[i].StagesMS[k], v)
			}
		}
	}
}
