// Package tracefmt defines the on-disk interchange format for interaction
// traces: JSON lines, one event per line, the schemas of the paper's
// Table 5. cmd/tracegen writes it and cmd/replay consumes it, so recorded
// workloads — synthetic or real — can be replayed against any backend and
// policy. The composite case study explicitly proposes its traces "serve
// as a public benchmark"; this package is that interface.
package tracefmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/trace"
)

// SliderRecord is one crossfiltering event on the wire.
type SliderRecord struct {
	User        int     `json:"user"`
	Device      string  `json:"device,omitempty"`
	TimestampMS int64   `json:"timestamp_ms"`
	SliderIdx   int     `json:"sliderIdx"`
	MinVal      float64 `json:"minVal"`
	MaxVal      float64 `json:"maxVal"`
}

// ScrollRecord is one inertial-scrolling event on the wire. A record with
// Select set is a selection event (the user picked a tuple) rather than a
// scroll event.
type ScrollRecord struct {
	User        int     `json:"user"`
	TimestampMS int64   `json:"timestamp_ms"`
	ScrollTop   float64 `json:"scrollTop,omitempty"`
	ScrollNum   int     `json:"scrollNum,omitempty"`
	Delta       float64 `json:"delta,omitempty"`

	Select       *int `json:"select,omitempty"`
	Backscrolled bool `json:"backscrolled,omitempty"`
}

// ServeRecord is one served request on the wire: the serving layer's
// structured request log, in the same JSON-lines discipline as the
// interaction traces so a served run can be replayed or analyzed with the
// same tooling. AppliedSeq is the sequence number of the request whose
// state actually executed — under coalescing it can exceed Seq, meaning
// this request's stale state was superseded by a newer one.
type ServeRecord struct {
	TimestampMS int64   `json:"timestamp_ms"`
	Session     string  `json:"session"`
	Seq         int64   `json:"seq"`
	Kind        string  `json:"kind"` // "query", "brush", or "tile"
	Status      int     `json:"status"`
	LatencyMS   float64 `json:"latency_ms"`
	AppliedSeq  int64   `json:"applied_seq,omitempty"`
	Coalesced   bool    `json:"coalesced,omitempty"`
}

// WriteServeTrace emits serve records as JSON lines.
func WriteServeTrace(w io.Writer, recs []ServeRecord) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("tracefmt: %w", err)
		}
	}
	return nil
}

// ReadServeTrace decodes JSON-line serve records. Unlike the interaction
// traces, records are not required to be time-ordered: the server logs at
// completion, and concurrent requests complete out of issue order.
func ReadServeTrace(r io.Reader) ([]ServeRecord, error) {
	var out []ServeRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec ServeRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tracefmt: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracefmt: %w", err)
	}
	return out, nil
}

// TraceRecord is one request's stage-span breakdown on the wire: the
// /v1/trace export of the serving layer's per-request tracer. StagesMS
// maps visited pipeline stages (admission, queue, coalesce, execute,
// merge, write) to the milliseconds each consumed; Dominant names the
// stage that consumed the most.
type TraceRecord struct {
	TimestampMS int64              `json:"timestamp_ms"`
	Session     string             `json:"session"`
	Seq         int64              `json:"seq"`
	Kind        string             `json:"kind"`
	Status      int                `json:"status"`
	TotalMS     float64            `json:"total_ms"`
	Tier        string             `json:"tier,omitempty"`
	LCV         bool               `json:"lcv,omitempty"`
	Dominant    string             `json:"dominant"`
	StagesMS    map[string]float64 `json:"stages_ms"`
}

// WriteTraceRecords emits stage-trace records as JSON lines.
func WriteTraceRecords(w io.Writer, recs []TraceRecord) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("tracefmt: %w", err)
		}
	}
	return nil
}

// ReadTraceRecords decodes JSON-line stage-trace records. Like serve
// records they are not required to be time-ordered: the ring snapshots
// completions, and concurrent requests complete out of issue order.
func ReadTraceRecords(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tracefmt: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracefmt: %w", err)
	}
	return out, nil
}

// WriteSliderTrace emits one user's slider events as JSON lines.
func WriteSliderTrace(w io.Writer, user int, device string, evs []trace.SliderEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		rec := SliderRecord{
			User:        user,
			Device:      device,
			TimestampMS: int64(ev.At / time.Millisecond),
			SliderIdx:   ev.SliderIdx,
			MinVal:      ev.MinVal,
			MaxVal:      ev.MaxVal,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("tracefmt: %w", err)
		}
	}
	return nil
}

// SliderTraces groups decoded slider events by user, with each user's
// device name (last seen wins).
type SliderTraces struct {
	Users   []int // sorted
	Events  map[int][]trace.SliderEvent
	Devices map[int]string
}

// ReadSliderTraces decodes JSON-line slider records. Events must be
// time-ordered within each user; out-of-order lines are an error, because
// replay depends on issue order.
func ReadSliderTraces(r io.Reader) (*SliderTraces, error) {
	out := &SliderTraces{
		Events:  map[int][]trace.SliderEvent{},
		Devices: map[int]string{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SliderRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tracefmt: line %d: %w", line, err)
		}
		ev := trace.SliderEvent{
			At:        time.Duration(rec.TimestampMS) * time.Millisecond,
			SliderIdx: rec.SliderIdx,
			MinVal:    rec.MinVal,
			MaxVal:    rec.MaxVal,
		}
		evs := out.Events[rec.User]
		if n := len(evs); n > 0 && ev.At < evs[n-1].At {
			return nil, fmt.Errorf("tracefmt: line %d: user %d events out of order (%v after %v)",
				line, rec.User, ev.At, evs[n-1].At)
		}
		out.Events[rec.User] = append(evs, ev)
		if rec.Device != "" {
			out.Devices[rec.User] = rec.Device
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracefmt: %w", err)
	}
	for u := range out.Events {
		out.Users = append(out.Users, u)
	}
	sort.Ints(out.Users)
	return out, nil
}

// WriteScrollTrace emits one user's scroll events as JSON lines.
func WriteScrollTrace(w io.Writer, user int, evs []trace.ScrollEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		rec := ScrollRecord{
			User:        user,
			TimestampMS: int64(ev.At / time.Millisecond),
			ScrollTop:   ev.ScrollTop,
			ScrollNum:   ev.ScrollNum,
			Delta:       ev.Delta,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("tracefmt: %w", err)
		}
	}
	return nil
}

// WriteScrollSelections emits one user's selection events as JSON lines.
func WriteScrollSelections(w io.Writer, user int, sels []trace.SelectEvent) error {
	enc := json.NewEncoder(w)
	for _, s := range sels {
		idx := s.TupleIndex
		rec := ScrollRecord{
			User:         user,
			TimestampMS:  int64(s.At / time.Millisecond),
			Select:       &idx,
			Backscrolled: s.Backscrolled,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("tracefmt: %w", err)
		}
	}
	return nil
}

// ScrollTraces groups decoded scroll events and selections by user.
type ScrollTraces struct {
	Users      []int
	Events     map[int][]trace.ScrollEvent
	Selections map[int][]trace.SelectEvent
}

// ReadScrollTraces decodes JSON-line scroll records. Scroll events must be
// time-ordered within each user (selections are ordered independently,
// since writers may append them after the event stream).
func ReadScrollTraces(r io.Reader) (*ScrollTraces, error) {
	out := &ScrollTraces{
		Events:     map[int][]trace.ScrollEvent{},
		Selections: map[int][]trace.SelectEvent{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec ScrollRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tracefmt: line %d: %w", line, err)
		}
		at := time.Duration(rec.TimestampMS) * time.Millisecond
		if rec.Select != nil {
			sels := out.Selections[rec.User]
			if n := len(sels); n > 0 && at < sels[n-1].At {
				return nil, fmt.Errorf("tracefmt: line %d: user %d selections out of order", line, rec.User)
			}
			out.Selections[rec.User] = append(sels, trace.SelectEvent{
				At: at, TupleIndex: *rec.Select, Backscrolled: rec.Backscrolled,
			})
			continue
		}
		ev := trace.ScrollEvent{
			At:        at,
			ScrollTop: rec.ScrollTop,
			ScrollNum: rec.ScrollNum,
			Delta:     rec.Delta,
		}
		evs := out.Events[rec.User]
		if n := len(evs); n > 0 && ev.At < evs[n-1].At {
			return nil, fmt.Errorf("tracefmt: line %d: user %d events out of order", line, rec.User)
		}
		out.Events[rec.User] = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracefmt: %w", err)
	}
	seen := map[int]bool{}
	for u := range out.Events {
		seen[u] = true
	}
	for u := range out.Selections {
		seen[u] = true
	}
	for u := range seen {
		out.Users = append(out.Users, u)
	}
	sort.Ints(out.Users)
	return out, nil
}
