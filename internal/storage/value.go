// Package storage implements the columnar table storage substrate: typed
// columns, schemas, row builders, page-grained layout with a buffer pool
// (used by the disk-resident engine profile), and sorted column indexes.
//
// The storage layer is deliberately simple — append-only, fully typed, no
// nulls — because the paper's workloads are read-only analytical scans over
// static datasets. What matters for reproducing the evaluation is faithful
// cost accounting (pages touched, tuples evaluated), which this package
// exposes precisely.
package storage

import "fmt"

// Type identifies the runtime type of a column or value.
type Type int

// Column types supported by the storage layer.
const (
	Int64 Type = iota
	Float64
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "TEXT"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a dynamically typed scalar. Exactly one of I, F, S is meaningful,
// selected by Type. A struct of unboxed fields avoids interface allocation
// on the executor's hot path.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
}

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{Type: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{Type: Float64, F: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{Type: String, S: v} }

// AsFloat converts numeric values to float64. String values return 0; use
// Type to discriminate first when the column may be textual.
func (v Value) AsFloat() float64 {
	switch v.Type {
	case Int64:
		return float64(v.I)
	case Float64:
		return v.F
	default:
		return 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	default:
		return "<invalid>"
	}
}

// Compare orders two values of the same type: -1, 0, or +1. Comparing values
// of different types panics; the planner type-checks expressions before
// execution, so a mismatch here is a bug.
func (v Value) Compare(o Value) int {
	if v.Type != o.Type {
		// Allow int/float cross-comparison: SQL numeric literals parse as
		// either, and predicates like "year > 1990.5" are legal.
		if (v.Type == Int64 || v.Type == Float64) && (o.Type == Int64 || o.Type == Float64) {
			a, b := v.AsFloat(), o.AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
		panic(fmt.Sprintf("storage: comparing %v to %v", v.Type, o.Type))
	}
	switch v.Type {
	case Int64:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
	case Float64:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
	case String:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
	}
	return 0
}

// Equal reports whether two values are equal under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }
