package storage

import (
	"fmt"
	"sort"
)

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColumnIndex returns the position of the named column, or -1 if absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Encoded is an immutable, compressed column representation (implemented
// by internal/colstore). A Column with a non-nil Enc stores no raw slices;
// reads route through this interface, so every consumer of Value/Float
// works unchanged over frozen tables. Hot paths type-assert the concrete
// value for kernel capabilities (vectorized filters, packed-code access).
type Encoded interface {
	// Len returns the row count.
	Len() int
	// Value returns row i as a storage Value, bit-identical to the value
	// the column was encoded from.
	Value(i int) Value
	// Float returns row i as float64; it must panic for string-typed
	// encodings exactly like Column.Float does, so encoded and plain reads
	// cannot diverge on type confusion.
	Float(i int) float64
	// EncodedBytes is the resident byte footprint of the encoded form.
	EncodedBytes() int64
	// EncodingName names the encoding ("plain", "dict", "for") for stats.
	EncodingName() string
}

// Column is one typed column of values stored contiguously. Only the slice
// matching Type is populated — unless Enc is set, in which case the column
// is frozen: the slices are nil and all reads route through the encoding.
type Column struct {
	Type    Type
	Ints    []int64
	Floats  []float64
	Strings []string

	// Enc, when non-nil, is the column's frozen encoded representation.
	// Frozen columns are immutable: append returns an error.
	Enc Encoded
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	if c.Enc != nil {
		return c.Enc.Len()
	}
	switch c.Type {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	default:
		return len(c.Strings)
	}
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	if c.Enc != nil {
		return c.Enc.Value(i)
	}
	switch c.Type {
	case Int64:
		return NewInt(c.Ints[i])
	case Float64:
		return NewFloat(c.Floats[i])
	default:
		return NewString(c.Strings[i])
	}
}

// Float returns the value at row i as a float64. String columns have no
// numeric form: asking for one is always a caller bug (every scan path
// type-checks columns before reading them as floats), and silently
// returning 0 would let an encoded and an unencoded scan diverge without
// an error — so it panics, the same contract as Value.Compare on
// mismatched types. Use FloatAt for a non-panicking error path.
func (c *Column) Float(i int) float64 {
	if c.Type == String {
		panic("storage: Float on a TEXT column (string columns have no numeric form; use Value)")
	}
	if c.Enc != nil {
		return c.Enc.Float(i)
	}
	if c.Type == Int64 {
		return float64(c.Ints[i])
	}
	return c.Floats[i]
}

// FloatAt is Float with an explicit error path for string columns, for
// callers handling externally supplied column names.
func (c *Column) FloatAt(i int) (float64, error) {
	if c.Type == String {
		return 0, fmt.Errorf("storage: column is TEXT, not numeric")
	}
	return c.Float(i), nil
}

// append adds a value, which must match the column type.
func (c *Column) append(v Value) error {
	if c.Enc != nil {
		return fmt.Errorf("storage: column is frozen (encoded columns are immutable)")
	}
	if v.Type != c.Type {
		// Permit int → float widening so generators can be sloppy about
		// literal types.
		if c.Type == Float64 && v.Type == Int64 {
			c.Floats = append(c.Floats, float64(v.I))
			return nil
		}
		return fmt.Errorf("storage: appending %v value to %v column", v.Type, c.Type)
	}
	switch c.Type {
	case Int64:
		c.Ints = append(c.Ints, v.I)
	case Float64:
		c.Floats = append(c.Floats, v.F)
	default:
		c.Strings = append(c.Strings, v.S)
	}
	return nil
}

// Table is an append-only columnar table. Rows are addressed by dense row
// IDs in [0, NumRows).
type Table struct {
	Name    string
	Schema  Schema
	Columns []*Column

	// PageRows is the number of rows per storage page, used by the disk
	// profile for I/O accounting. Defaults to DefaultPageRows.
	PageRows int

	indexes map[string][]int32 // column name → row ids sorted by value
}

// DefaultPageRows is the default page granularity: with ~100-byte tuples
// this approximates an 8 KiB heap page.
const DefaultPageRows = 64

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, Schema: schema, PageRows: DefaultPageRows}
	t.Columns = make([]*Column, len(schema))
	for i, def := range schema {
		t.Columns[i] = &Column{Type: def.Type}
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// pageRows returns the effective page granularity without mutating the
// table — NumPages/PageOf are called from concurrent queries, so defaulting
// a zero PageRows in place would be a data race.
func (t *Table) pageRows() int {
	if t.PageRows <= 0 {
		return DefaultPageRows
	}
	return t.PageRows
}

// NumPages returns the number of storage pages the table occupies.
func (t *Table) NumPages() int {
	pr := t.pageRows()
	return (t.NumRows() + pr - 1) / pr
}

// PageOf returns the page ID holding the given row.
func (t *Table) PageOf(row int) int {
	return row / t.pageRows()
}

// AppendRow appends one row. The number and types of values must match the
// schema.
func (t *Table) AppendRow(values ...Value) error {
	if len(values) != len(t.Schema) {
		return fmt.Errorf("storage: AppendRow got %d values for %d columns", len(values), len(t.Schema))
	}
	for i, v := range values {
		if err := t.Columns[i].append(v); err != nil {
			return fmt.Errorf("column %q: %w", t.Schema[i].Name, err)
		}
	}
	t.indexes = nil // appended data invalidates indexes
	return nil
}

// MustAppendRow appends one row and panics on schema mismatch; generators
// with static schemas use it to keep construction terse.
func (t *Table) MustAppendRow(values ...Value) {
	if err := t.AppendRow(values...); err != nil {
		panic(err)
	}
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	i := t.Schema.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.Columns[i]
}

// Row materializes row i as a value slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.Columns))
	for c, col := range t.Columns {
		out[c] = col.Value(i)
	}
	return out
}

// BuildIndex builds (or rebuilds) a sorted index on the named column and
// returns it: row IDs ordered by ascending column value. Index lookups back
// range scans and the planner's selectivity estimates.
func (t *Table) BuildIndex(column string) ([]int32, error) {
	col := t.Column(column)
	if col == nil {
		return nil, fmt.Errorf("storage: no column %q in table %q", column, t.Name)
	}
	ids := make([]int32, t.NumRows())
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return col.Value(int(ids[a])).Compare(col.Value(int(ids[b]))) < 0
	})
	if t.indexes == nil {
		t.indexes = make(map[string][]int32)
	}
	t.indexes[column] = ids
	return ids, nil
}

// Index returns a previously built index for the column, or nil.
func (t *Table) Index(column string) []int32 {
	return t.indexes[column]
}

// RangeRows returns the row IDs whose value in the indexed column lies in
// [lo, hi]. The column must have been indexed with BuildIndex. The returned
// slice aliases the index; callers must not modify it.
func (t *Table) RangeRows(column string, lo, hi Value) ([]int32, error) {
	idx := t.indexes[column]
	if idx == nil {
		return nil, fmt.Errorf("storage: column %q of table %q is not indexed", column, t.Name)
	}
	col := t.Column(column)
	start := sort.Search(len(idx), func(i int) bool {
		return col.Value(int(idx[i])).Compare(lo) >= 0
	})
	end := sort.Search(len(idx), func(i int) bool {
		return col.Value(int(idx[i])).Compare(hi) > 0
	})
	if start > end {
		start = end
	}
	return idx[start:end], nil
}

// MinMax returns the minimum and maximum values of a numeric column as
// floats. It returns ok=false for an empty table or string column.
func (t *Table) MinMax(column string) (lo, hi float64, ok bool) {
	col := t.Column(column)
	if col == nil || col.Type == String || col.Len() == 0 {
		return 0, 0, false
	}
	lo, hi = col.Float(0), col.Float(0)
	for i := 1; i < col.Len(); i++ {
		v := col.Float(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}
