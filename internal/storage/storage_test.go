package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("t", Schema{
		{Name: "id", Type: Int64},
		{Name: "score", Type: Float64},
		{Name: "name", Type: String},
	})
	for i := 0; i < 100; i++ {
		tbl.MustAppendRow(NewInt(int64(i)), NewFloat(float64(100-i)), NewString(string(rune('a'+i%26))))
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := testTable(t)
	if tbl.NumRows() != 100 {
		t.Fatalf("NumRows = %d, want 100", tbl.NumRows())
	}
	row := tbl.Row(3)
	if row[0].I != 3 || row[1].F != 97 || row[2].S != "d" {
		t.Errorf("Row(3) = %v", row)
	}
	if tbl.Column("missing") != nil {
		t.Error("Column(missing) != nil")
	}
	if tbl.Schema.ColumnIndex("score") != 1 {
		t.Error("ColumnIndex(score) != 1")
	}
}

func TestAppendRowErrors(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "id", Type: Int64}})
	if err := tbl.AppendRow(NewInt(1), NewInt(2)); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.AppendRow(NewString("x")); err == nil {
		t.Error("wrong type accepted")
	}
	// int → float widening allowed
	ftbl := NewTable("f", Schema{{Name: "v", Type: Float64}})
	if err := ftbl.AppendRow(NewInt(7)); err != nil {
		t.Errorf("int→float widening rejected: %v", err)
	}
	if got := ftbl.Column("v").Float(0); got != 7 {
		t.Errorf("widened value = %v, want 7", got)
	}
}

func TestPages(t *testing.T) {
	tbl := testTable(t)
	tbl.PageRows = 30
	if got := tbl.NumPages(); got != 4 {
		t.Errorf("NumPages = %d, want 4", got)
	}
	if tbl.PageOf(0) != 0 || tbl.PageOf(29) != 0 || tbl.PageOf(30) != 1 || tbl.PageOf(99) != 3 {
		t.Error("PageOf boundaries wrong")
	}
}

func TestIndexAndRange(t *testing.T) {
	tbl := testTable(t)
	if _, err := tbl.BuildIndex("nope"); err == nil {
		t.Error("BuildIndex on missing column succeeded")
	}
	if _, err := tbl.BuildIndex("score"); err != nil {
		t.Fatal(err)
	}
	// score runs 100 down to 1; rows with score in [95,97] are ids 3,4,5.
	rows, err := tbl.RangeRows("score", NewFloat(95), NewFloat(97))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("RangeRows returned %d rows, want 3", len(rows))
	}
	seen := map[int32]bool{}
	for _, r := range rows {
		seen[r] = true
	}
	for _, want := range []int32{3, 4, 5} {
		if !seen[want] {
			t.Errorf("row %d missing from range result %v", want, rows)
		}
	}
	if _, err := tbl.RangeRows("id", NewInt(0), NewInt(1)); err == nil {
		t.Error("RangeRows on unindexed column succeeded")
	}
	// Empty range.
	rows, _ = tbl.RangeRows("score", NewFloat(1000), NewFloat(2000))
	if len(rows) != 0 {
		t.Errorf("empty range returned %d rows", len(rows))
	}
	// Inverted range is empty, not a panic.
	rows, _ = tbl.RangeRows("score", NewFloat(97), NewFloat(95))
	if len(rows) != 0 {
		t.Errorf("inverted range returned %d rows", len(rows))
	}
}

func TestIndexInvalidatedByAppend(t *testing.T) {
	tbl := testTable(t)
	tbl.BuildIndex("id")
	if tbl.Index("id") == nil {
		t.Fatal("index not retained")
	}
	tbl.MustAppendRow(NewInt(100), NewFloat(0), NewString("z"))
	if tbl.Index("id") != nil {
		t.Error("index survived append")
	}
}

func TestMinMax(t *testing.T) {
	tbl := testTable(t)
	lo, hi, ok := tbl.MinMax("score")
	if !ok || lo != 1 || hi != 100 {
		t.Errorf("MinMax(score) = %v,%v,%v want 1,100,true", lo, hi, ok)
	}
	if _, _, ok := tbl.MinMax("name"); ok {
		t.Error("MinMax on string column returned ok")
	}
	empty := NewTable("e", Schema{{Name: "x", Type: Int64}})
	if _, _, ok := empty.MinMax("x"); ok {
		t.Error("MinMax on empty table returned ok")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewInt(2), NewFloat(1.5), 1},  // cross numeric
		{NewFloat(2.0), NewInt(2), 0},  // cross numeric equal
		{NewInt(1), NewFloat(1.5), -1}, // cross numeric
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !NewInt(5).Equal(NewFloat(5)) {
		t.Error("Equal(5, 5.0) = false")
	}
}

func TestValueCompareMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("comparing int to string did not panic")
		}
	}()
	NewInt(1).Compare(NewString("x"))
}

func TestValueStrings(t *testing.T) {
	if NewInt(42).String() != "42" || NewFloat(1.5).String() != "1.5" || NewString("hi").String() != "hi" {
		t.Error("Value.String formatting wrong")
	}
	if Int64.String() != "BIGINT" || Float64.String() != "DOUBLE" || String.String() != "TEXT" {
		t.Error("Type.String wrong")
	}
}

func TestBufferPoolLRU(t *testing.T) {
	p := NewBufferPool(2)
	a, b, c := PageID{"t", 0}, PageID{"t", 1}, PageID{"t", 2}
	if p.Touch(a) {
		t.Error("first touch of a hit")
	}
	if p.Touch(b) {
		t.Error("first touch of b hit")
	}
	if !p.Touch(a) {
		t.Error("second touch of a missed")
	}
	// a is now MRU; touching c must evict b.
	p.Touch(c)
	if p.Contains(b) {
		t.Error("b not evicted")
	}
	if !p.Contains(a) || !p.Contains(c) {
		t.Error("a or c evicted wrongly")
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = %d hits %d misses, want 1, 3", hits, misses)
	}
	if got := p.HitRate(); got != 0.25 {
		t.Errorf("HitRate = %v, want 0.25", got)
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	p := NewBufferPool(0)
	id := PageID{"t", 0}
	if p.Touch(id) || p.Touch(id) {
		t.Error("zero-capacity pool produced a hit")
	}
	if p.Len() != 0 {
		t.Error("zero-capacity pool retained pages")
	}
}

func TestBufferPoolReset(t *testing.T) {
	p := NewBufferPool(4)
	p.Touch(PageID{"t", 0})
	p.Reset()
	if p.Len() != 0 {
		t.Error("Reset left pages")
	}
	if h, m := p.Stats(); h != 0 || m != 0 {
		t.Error("Reset left counters")
	}
	if p.HitRate() != 0 {
		t.Error("HitRate after reset != 0")
	}
}

// Property: pool never exceeds capacity, and hits+misses equals touches.
func TestBufferPoolProperty(t *testing.T) {
	f := func(cap8 uint8, accesses []uint8) bool {
		capacity := int(cap8%16) + 1
		p := NewBufferPool(capacity)
		for _, a := range accesses {
			p.Touch(PageID{"t", int(a % 32)})
			if p.Len() > capacity {
				return false
			}
		}
		h, m := p.Stats()
		return h+m == int64(len(accesses))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RangeRows result matches a brute-force filter for random data.
func TestRangeRowsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		tbl := NewTable("r", Schema{{Name: "v", Type: Float64}})
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			tbl.MustAppendRow(NewFloat(rng.Float64() * 100))
		}
		if _, err := tbl.BuildIndex("v"); err != nil {
			t.Fatal(err)
		}
		lo := rng.Float64() * 100
		hi := lo + rng.Float64()*50
		got, err := tbl.RangeRows("v", NewFloat(lo), NewFloat(hi))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		col := tbl.Column("v")
		for i := 0; i < n; i++ {
			if v := col.Floats[i]; v >= lo && v <= hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: RangeRows found %d rows, brute force %d", trial, len(got), want)
		}
	}
}
