package storage

import (
	"container/list"
	"sync"
)

// BufferPool models a fixed-capacity page cache with LRU eviction. The disk
// engine profile routes every page touch through a pool; misses are charged
// simulated I/O time by the engine's cost model. The memory profile uses no
// pool (every page is resident).
//
// Pages are identified by (table, page) pairs so one pool can back several
// tables, as a real buffer manager would. All methods are safe for
// concurrent use: one engine serves concurrent Query calls against a single
// shared pool, so every touch serializes on the pool's mutex exactly as
// latched buffer managers do. Recency order under concurrent queries
// depends on their interleaving — hit/miss totals stay exact.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recent
	pages    map[PageID]*list.Element // element value is PageID

	hits   int64
	misses int64
}

// PageID names one page of one table.
type PageID struct {
	Table string
	Page  int
}

// NewBufferPool creates a pool holding at most capacity pages. A capacity
// of 0 or less means every access misses (a cold, zero-size cache).
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[PageID]*list.Element),
	}
}

// Capacity returns the configured page capacity.
func (p *BufferPool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Touch records an access to the page and reports whether it was resident
// (hit). On a miss the page is faulted in, evicting the least recently used
// page if the pool is full.
func (p *BufferPool) Touch(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.pages[id]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		return true
	}
	p.misses++
	if p.capacity <= 0 {
		return false
	}
	if p.lru.Len() >= p.capacity {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.pages, oldest.Value.(PageID))
	}
	p.pages[id] = p.lru.PushFront(id)
	return false
}

// Contains reports whether the page is resident without affecting recency
// or counters.
func (p *BufferPool) Contains(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.pages[id]
	return ok
}

// Stats returns cumulative hit and miss counts.
func (p *BufferPool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (p *BufferPool) HitRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Reset empties the pool and zeroes the counters.
func (p *BufferPool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.pages = make(map[PageID]*list.Element)
	p.hits, p.misses = 0, 0
}
