// Package progressive implements progressive (online-aggregation-style)
// query execution: approximate histogram results over growing samples,
// refined until the exact answer is reached. This is the technique the
// survey's latency section points to for keeping interfaces responsive —
// online aggregation and Incvisage both trade bounded error for bounded
// time — and it is the substrate for the accuracy metric (§3.2.2): the
// deviation of approximate answers from the truth over time.
//
// The executor shuffles row order once (seeded), then emits snapshots at a
// geometric schedule of sample sizes. Each snapshot scales its counts by
// the inverse sampling fraction, so a snapshot is an unbiased estimate of
// the full histogram.
package progressive

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// Snapshot is one progressive refinement step.
type Snapshot struct {
	// SampleRows is the number of rows consumed so far.
	SampleRows int
	// Fraction is SampleRows over the table size.
	Fraction float64
	// Estimate is the scaled histogram estimate (bin → estimated count).
	Estimate []float64
	// Cost is the model execution time to reach this snapshot (cumulative),
	// charged at the given per-tuple cost.
	Cost time.Duration
	// MSE is the mean squared error of the normalized estimate against the
	// normalized exact result.
	MSE float64
}

// Query is a progressive histogram query over one numeric column with
// conjunctive range predicates, mirroring the crossfilter query shape.
type Query struct {
	Column string
	Lo, Hi float64 // histogram domain
	Bins   int
	// Filters are conjunctive [lo,hi] ranges on named columns.
	Filters map[string][2]float64
}

// Executor runs progressive queries over one table.
type Executor struct {
	table *storage.Table
	order []int32 // shuffled row visit order
	// PerTuple is the model cost per row (defaults to the in-memory
	// profile's 25ns).
	PerTuple time.Duration
}

// NewExecutor prepares a progressive executor with a seeded row shuffle.
func NewExecutor(t *storage.Table, seed int64) *Executor {
	order := make([]int32, t.NumRows())
	for i := range order {
		order[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return &Executor{table: t, order: order, PerTuple: 25 * time.Nanosecond}
}

// Run executes the query progressively, emitting snapshots at a geometric
// schedule: start rows, then ×2 each step, ending with the exact result.
// start must be positive.
func (e *Executor) Run(q Query, start int) ([]Snapshot, error) {
	if start <= 0 {
		return nil, fmt.Errorf("progressive: start sample %d must be positive", start)
	}
	if q.Bins <= 0 {
		return nil, fmt.Errorf("progressive: bins must be positive")
	}
	col := e.table.Column(q.Column)
	if col == nil || col.Type == storage.String {
		return nil, fmt.Errorf("progressive: no numeric column %q", q.Column)
	}
	type filterCol struct {
		col    *storage.Column
		lo, hi float64
	}
	var filters []filterCol
	for name, rng := range q.Filters {
		fc := e.table.Column(name)
		if fc == nil || fc.Type == storage.String {
			return nil, fmt.Errorf("progressive: no numeric filter column %q", name)
		}
		filters = append(filters, filterCol{fc, rng[0], rng[1]})
	}

	n := e.table.NumRows()
	width := (q.Hi - q.Lo) / float64(q.Bins)
	if width <= 0 {
		return nil, fmt.Errorf("progressive: empty domain [%g, %g]", q.Lo, q.Hi)
	}

	// Exact result for MSE scoring, over the same visit order.
	exact := make([]float64, q.Bins)
	counts := make([]float64, q.Bins)
	binOf := func(row int32) (int, bool) {
		for _, f := range filters {
			v := f.col.Float(int(row))
			if v < f.lo || v > f.hi {
				return 0, false
			}
		}
		v := col.Float(int(row))
		b := int((v - q.Lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= q.Bins {
			b = q.Bins - 1
		}
		return b, true
	}
	for _, row := range e.order {
		if b, ok := binOf(row); ok {
			exact[b]++
		}
	}
	exactNorm := normalize(exact)

	var snaps []Snapshot
	next := start
	consumed := 0
	for consumed < n {
		target := next
		if target > n {
			target = n
		}
		for ; consumed < target; consumed++ {
			if b, ok := binOf(e.order[consumed]); ok {
				counts[b]++
			}
		}
		scale := float64(n) / float64(consumed)
		est := make([]float64, q.Bins)
		for i, c := range counts {
			est[i] = c * scale
		}
		snaps = append(snaps, Snapshot{
			SampleRows: consumed,
			Fraction:   float64(consumed) / float64(n),
			Estimate:   est,
			Cost:       time.Duration(consumed) * e.PerTuple,
			MSE:        metrics.MSE(normalize(est), exactNorm),
		})
		next *= 2
	}
	return snaps, nil
}

// Partial computes one unbiased snapshot from the first maxRows rows of the
// shuffled visit order — the degraded-serving tier: bounded work regardless
// of table size, no exact pass, no MSE (reported as -1 since the truth is
// never computed). The shuffle prefix is a uniform sample, so scaling by the
// inverse fraction estimates the full histogram.
func (e *Executor) Partial(q Query, maxRows int) (Snapshot, error) {
	if maxRows <= 0 {
		return Snapshot{}, fmt.Errorf("progressive: partial sample %d must be positive", maxRows)
	}
	if q.Bins <= 0 {
		return Snapshot{}, fmt.Errorf("progressive: bins must be positive")
	}
	col := e.table.Column(q.Column)
	if col == nil || col.Type == storage.String {
		return Snapshot{}, fmt.Errorf("progressive: no numeric column %q", q.Column)
	}
	type filterCol struct {
		col    *storage.Column
		lo, hi float64
	}
	var filters []filterCol
	for name, rng := range q.Filters {
		fc := e.table.Column(name)
		if fc == nil || fc.Type == storage.String {
			return Snapshot{}, fmt.Errorf("progressive: no numeric filter column %q", name)
		}
		filters = append(filters, filterCol{fc, rng[0], rng[1]})
	}

	n := e.table.NumRows()
	width := (q.Hi - q.Lo) / float64(q.Bins)
	if width <= 0 {
		return Snapshot{}, fmt.Errorf("progressive: empty domain [%g, %g]", q.Lo, q.Hi)
	}
	sample := maxRows
	if sample > n {
		sample = n
	}

	counts := make([]float64, q.Bins)
rows:
	for _, row := range e.order[:sample] {
		for _, f := range filters {
			v := f.col.Float(int(row))
			if v < f.lo || v > f.hi {
				continue rows
			}
		}
		v := col.Float(int(row))
		b := int((v - q.Lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= q.Bins {
			b = q.Bins - 1
		}
		counts[b]++
	}

	scale := 1.0
	frac := 1.0
	if sample < n && sample > 0 {
		scale = float64(n) / float64(sample)
		frac = float64(sample) / float64(n)
	}
	est := make([]float64, q.Bins)
	for i, c := range counts {
		est[i] = c * scale
	}
	return Snapshot{
		SampleRows: sample,
		Fraction:   frac,
		Estimate:   est,
		Cost:       time.Duration(sample) * e.PerTuple,
		MSE:        -1,
	}, nil
}

func normalize(h []float64) []float64 {
	var sum float64
	for _, v := range h {
		sum += v
	}
	out := make([]float64, len(h))
	if sum == 0 {
		return out
	}
	for i, v := range h {
		out[i] = v / sum
	}
	return out
}

// FirstWithin returns the first snapshot whose MSE is at or below the
// tolerance, or the final snapshot if none qualifies earlier. It answers
// the accuracy/latency trade-off question: how early can the interface
// stop?
func FirstWithin(snaps []Snapshot, tolerance float64) (Snapshot, bool) {
	for _, s := range snaps {
		if s.MSE <= tolerance {
			return s, true
		}
	}
	if len(snaps) == 0 {
		return Snapshot{}, false
	}
	return snaps[len(snaps)-1], false
}
