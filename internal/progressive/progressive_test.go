package progressive

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func roadQuery() Query {
	lonLo, lonHi, latLo, latHi, _, _ := dataset.RoadBounds()
	return Query{
		Column: "y", Lo: latLo, Hi: latHi, Bins: 20,
		Filters: map[string][2]float64{"x": {lonLo, lonHi}},
	}
}

func TestProgressiveConverges(t *testing.T) {
	roads := dataset.Roads(1, 40000)
	ex := NewExecutor(roads, 7)
	snaps, err := ex.Run(roadQuery(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 5 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.SampleRows != roads.NumRows() || last.Fraction != 1 {
		t.Errorf("final snapshot incomplete: %d rows, fraction %v", last.SampleRows, last.Fraction)
	}
	if last.MSE != 0 {
		t.Errorf("final MSE = %v, want exact 0", last.MSE)
	}
	// Cost grows monotonically; MSE trends to zero.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Cost <= snaps[i-1].Cost {
			t.Fatal("cost not increasing")
		}
		if snaps[i].SampleRows <= snaps[i-1].SampleRows {
			t.Fatal("samples not increasing")
		}
	}
	if snaps[0].MSE <= last.MSE {
		t.Error("first snapshot not worse than final")
	}
	// Early estimates are unbiased: total estimated mass ≈ filtered rows.
	var estTotal, exactTotal float64
	for b := range last.Estimate {
		estTotal += snaps[2].Estimate[b]
		exactTotal += last.Estimate[b]
	}
	if exactTotal == 0 {
		t.Fatal("no rows pass the filter")
	}
	if r := estTotal / exactTotal; r < 0.8 || r > 1.25 {
		t.Errorf("snapshot total off by %vx", r)
	}
}

func TestProgressiveErrors(t *testing.T) {
	roads := dataset.Roads(1, 1000)
	ex := NewExecutor(roads, 1)
	q := roadQuery()
	if _, err := ex.Run(q, 0); err == nil {
		t.Error("zero start accepted")
	}
	bad := q
	bad.Column = "missing"
	if _, err := ex.Run(bad, 10); err == nil {
		t.Error("missing column accepted")
	}
	bad = q
	bad.Bins = 0
	if _, err := ex.Run(bad, 10); err == nil {
		t.Error("zero bins accepted")
	}
	bad = q
	bad.Lo, bad.Hi = 5, 5
	if _, err := ex.Run(bad, 10); err == nil {
		t.Error("empty domain accepted")
	}
	bad = q
	bad.Filters = map[string][2]float64{"nope": {0, 1}}
	if _, err := ex.Run(bad, 10); err == nil {
		t.Error("missing filter column accepted")
	}
}

func TestFirstWithin(t *testing.T) {
	roads := dataset.Roads(2, 30000)
	ex := NewExecutor(roads, 3)
	q := roadQuery()
	q.Filters = nil
	snaps, err := ex.Run(q, 200)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := FirstWithin(snaps, 1e-5)
	if !ok && s.MSE > 1e-5 {
		t.Errorf("never reached tolerance; final MSE %v", s.MSE)
	}
	if ok && s.SampleRows == roads.NumRows() && snaps[0].MSE <= 1e-5 {
		t.Error("tolerance met only at full scan despite early accuracy")
	}
	// The early-stop snapshot costs less than the full scan.
	full := snaps[len(snaps)-1]
	if ok && s.Cost >= full.Cost {
		t.Errorf("early stop cost %v not below full %v", s.Cost, full.Cost)
	}
	if _, ok := FirstWithin(nil, 1); ok {
		t.Error("FirstWithin(nil) ok")
	}
}

// TestAccuracyImprovesGeometrically: MSE at 4x the sample should be
// meaningfully below MSE at x (law of large numbers, ~1/n decay).
func TestAccuracyImprovesGeometrically(t *testing.T) {
	roads := dataset.Roads(5, 60000)
	ex := NewExecutor(roads, 11)
	q := roadQuery()
	snaps, err := ex.Run(q, 250)
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	comparisons := 0
	for i := 0; i+2 < len(snaps)-1; i++ {
		comparisons++
		if snaps[i+2].MSE < snaps[i].MSE {
			improved++
		}
	}
	if comparisons == 0 {
		t.Skip("trace too short")
	}
	if float64(improved)/float64(comparisons) < 0.7 {
		t.Errorf("MSE improved in only %d/%d 4x steps", improved, comparisons)
	}
	if math.IsInf(snaps[0].MSE, 0) {
		t.Error("initial MSE infinite")
	}
}
