package progressive

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// TestPartialBoundedEstimate: Partial is the degradation ladder's one-shot
// tier — a single bounded-sample snapshot. The sample bound must hold, the
// scaled estimate must be near-unbiased, and a bound at or above the table
// size must reproduce the exact histogram.
func TestPartialBoundedEstimate(t *testing.T) {
	roads := dataset.Roads(1, 40000)
	ex := NewExecutor(roads, 7)
	q := roadQuery()

	exactSnaps, err := ex.Run(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactSnaps[len(exactSnaps)-1].Estimate

	snap, err := ex.Partial(q, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SampleRows != 5000 {
		t.Fatalf("sampled %d rows, want 5000", snap.SampleRows)
	}
	if got, want := snap.Fraction, 5000.0/40000; math.Abs(got-want) > 1e-9 {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
	if snap.MSE != -1 {
		t.Fatalf("MSE = %v, want -1 (unscored)", snap.MSE)
	}
	var estTotal, exactTotal float64
	for b := range exact {
		estTotal += snap.Estimate[b]
		exactTotal += exact[b]
	}
	if estTotal < exactTotal*0.9 || estTotal > exactTotal*1.1 {
		t.Fatalf("estimate mass %.0f vs exact %.0f: biased beyond ±10%%", estTotal, exactTotal)
	}

	// Bound >= table size: exact, fraction 1.
	full, err := ex.Partial(q, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if full.Fraction != 1 {
		t.Fatalf("full fraction = %v, want 1", full.Fraction)
	}
	for b := range exact {
		if math.Abs(full.Estimate[b]-exact[b]) > 1e-6 {
			t.Fatalf("bin %d: full partial %v, exact %v", b, full.Estimate[b], exact[b])
		}
	}

	// Bad inputs fail like Run does.
	if _, err := ex.Partial(Query{Column: "missing", Lo: 0, Hi: 1, Bins: 4}, 100); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := ex.Partial(q, 0); err == nil {
		t.Fatal("non-positive sample bound accepted")
	}
}
