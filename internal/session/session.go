// Package session models the composite-interface case study: the
// exploration process of Figure 17 (request T0 → render T1 → explore T2,
// repeated per tab-URL update), the HTTP-request-shaped trace records the
// study's browser extension collected, and a session runner that drives a
// behavior.Explorer through a map view and filter widgets against a
// simulated accommodation-search backend.
package session

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/behavior"
	"repro/internal/widget"
)

// ResourceType classifies one logged HTTP request, following the paper's
// collection (data, image, and map requests; GET only).
type ResourceType string

// Logged resource types.
const (
	ResourceData  ResourceType = "xmlhttprequest"
	ResourceImage ResourceType = "image"
	ResourceMap   ResourceType = "map"
)

// RequestRecord is one logged HTTP request, the paper's composite-interface
// trace schema: {timestamp, tabURL, requestId, resourceType, type, status}.
type RequestRecord struct {
	RequestID    int
	TabURL       string
	ResourceType ResourceType
	Start        time.Duration // timestamp before the request is made
	End          time.Duration // timestamp after the response is collected
}

// Duration returns the request's wall time.
func (r RequestRecord) Duration() time.Duration { return r.End - r.Start }

// QueryRecord is one tab-URL update: the unit of analysis for Table 9 and
// Figures 18–21.
type QueryRecord struct {
	Seq    int
	At     time.Duration // URL update time
	Action behavior.ActionKind
	Widget widget.Kind
	URL    string

	Zoom            int
	BoundCenterLat  float64
	BoundCenterLng  float64
	FilterCount     int
	RequestTime     time.Duration // T0
	RenderTime      time.Duration // T1
	ExploreTime     time.Duration // T2: dwell before the next query
	VisibleTileKeys []string
}

// Session is one user's full composite-interface trace.
type Session struct {
	User     int
	Queries  []QueryRecord
	Requests []RequestRecord
	Duration time.Duration
}

// Backend models the remote service's response-time distribution, fitted to
// Figure 21: ~80% of requests complete within 1 s, mean ≈ 1.1 s, with a
// long tail capped at 8 s.
type Backend struct {
	// Mu and Sigma are the log-normal parameters of the data-request time
	// in seconds.
	Mu, Sigma float64
	// Cap bounds the tail.
	Cap time.Duration
}

// DefaultBackend returns the Figure 21 calibration.
func DefaultBackend() Backend {
	return Backend{Mu: math.Log(0.45), Sigma: 1.15, Cap: 8 * time.Second}
}

// RequestTime samples one data-request duration.
func (b Backend) RequestTime(rng *rand.Rand) time.Duration {
	secs := math.Exp(b.Mu + rng.NormFloat64()*b.Sigma)
	d := time.Duration(secs * float64(time.Second))
	if d > b.Cap {
		d = b.Cap
	}
	if d < 30*time.Millisecond {
		d = 30 * time.Millisecond
	}
	return d
}

// ExploreTime samples the user's post-render dwell (T2): log-normal with
// mean ≈ 18.3 s, ≥1 s for ~95% of queries, capped at 3 minutes.
func ExploreTime(rng *rand.Rand) time.Duration {
	secs := math.Exp(math.Log(8) + rng.NormFloat64()*1.29)
	d := time.Duration(secs * float64(time.Second))
	if d > 3*time.Minute {
		d = 3 * time.Minute
	}
	if d < 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d
}

// RenderTime samples the browser render phase (T1).
func RenderTime(rng *rand.Rand) time.Duration {
	return time.Duration(80+rng.Intn(320)) * time.Millisecond
}

// usCities are plausible session starting points.
var usCities = [][2]float64{
	{40.71, -74.00}, {34.05, -118.24}, {41.88, -87.63}, {29.76, -95.37},
	{47.61, -122.33}, {25.76, -80.19}, {39.74, -104.99}, {32.38, -86.30},
}

// Run simulates one user's session of at least minDuration (the study asked
// for ≥20 minutes), returning the full trace.
func Run(rng *rand.Rand, user int, minDuration time.Duration) *Session {
	params := behavior.NewExplorerParams(rng)
	explorer := behavior.NewExplorer(rng, params)
	city := usCities[rng.Intn(len(usCities))]
	mv := widget.NewMapView(params.StartZoom, city[0], city[1])
	filters := widget.NewFilterSet()
	filters.Set("guests", "2")
	backend := DefaultBackend()

	s := &Session{User: user}
	now := time.Duration(0)
	reqID := 0
	place := "unitedstates"

	record := func(action behavior.Action) {
		url := mv.QueryURL(place, filters.Map())
		t0 := backend.RequestTime(rng)
		t1 := RenderTime(rng)
		t2 := ExploreTime(rng)

		q := QueryRecord{
			Seq:         len(s.Queries),
			At:          now,
			Action:      action.Kind,
			Widget:      action.Kind.Widget(),
			URL:         url,
			Zoom:        mv.Zoom,
			FilterCount: filters.Len(),
			RequestTime: t0,
			RenderTime:  t1,
			ExploreTime: t2,
		}
		q.BoundCenterLat, q.BoundCenterLng = mv.BoundCenter()
		tiles := mv.VisibleTiles()
		for _, t := range tiles {
			q.VisibleTileKeys = append(q.VisibleTileKeys, t.String())
		}

		// Log the data request plus parallel image/tile fetches inside it.
		s.Requests = append(s.Requests, RequestRecord{
			RequestID: reqID, TabURL: url, ResourceType: ResourceData,
			Start: now, End: now + t0,
		})
		reqID++
		images := 8 + rng.Intn(14)
		for i := 0; i < images; i++ {
			d := time.Duration(float64(t0) * (0.2 + 0.75*rng.Float64()))
			s.Requests = append(s.Requests, RequestRecord{
				RequestID: reqID, TabURL: url, ResourceType: ResourceImage,
				Start: now, End: now + d,
			})
			reqID++
		}
		if action.Kind.Widget() == widget.KindMap {
			for range tiles {
				d := time.Duration(float64(t0) * (0.1 + 0.4*rng.Float64()))
				s.Requests = append(s.Requests, RequestRecord{
					RequestID: reqID, TabURL: url, ResourceType: ResourceMap,
					Start: now, End: now + d,
				})
				reqID++
			}
		}

		s.Queries = append(s.Queries, q)
		now += t0 + t1 + t2
	}

	// Initial page load counts as the first (text box) query.
	record(behavior.Action{Kind: behavior.ActTextBox, FilterKey: "place", FilterValue: place})

	for now < minDuration {
		a := explorer.Next()
		switch a.Kind {
		case behavior.ActZoomIn:
			mv.ZoomIn()
		case behavior.ActZoomOut:
			mv.ZoomOut()
		case behavior.ActDrag:
			mv.Pan(a.DX, a.DY)
		case behavior.ActTextBox:
			// New place search: jump the map to a fresh city.
			place = a.FilterValue
			city := usCities[rng.Intn(len(usCities))]
			mv.CenterLat, mv.CenterLng = city[0], city[1]
		case behavior.ActSlider, behavior.ActCheckbox:
			if a.Remove {
				filters.Remove(a.FilterKey)
			} else {
				filters.Set(a.FilterKey, a.FilterValue)
			}
		case behavior.ActButton:
			// Pagination: URL changes, no widget state change.
		}
		record(a)
	}
	s.Duration = now
	return s
}

// RunStudy simulates the paper's 15-user study.
func RunStudy(seed int64, users int, minDuration time.Duration) []*Session {
	out := make([]*Session, users)
	for u := 0; u < users; u++ {
		rng := rand.New(rand.NewSource(seed + int64(u)*1009))
		out[u] = Run(rng, u, minDuration)
	}
	return out
}

// String renders a request record in the paper's log style.
func (r RequestRecord) String() string {
	return fmt.Sprintf("req=%d type=%s start=%v end=%v url=%s",
		r.RequestID, r.ResourceType, r.Start, r.End, r.TabURL)
}
