package session

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/metrics"
	"repro/internal/widget"
)

func TestBackendRequestTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := DefaultBackend()
	var secs []float64
	for i := 0; i < 5000; i++ {
		d := b.RequestTime(rng)
		if d < 30*time.Millisecond || d > b.Cap {
			t.Fatalf("request time %v out of bounds", d)
		}
		secs = append(secs, d.Seconds())
	}
	cdf := metrics.NewCDF(secs)
	// Figure 21: ~80% of requests complete within 1s; mean ≈ 1.1s.
	if p := cdf.At(1.0); p < 0.65 || p > 0.9 {
		t.Errorf("P(request ≤ 1s) = %v, paper ≈0.8", p)
	}
	mean := metrics.Summarize(secs).Mean
	if mean < 0.6 || mean > 1.8 {
		t.Errorf("mean request time %vs, paper ≈1.1s", mean)
	}
}

func TestExploreTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var secs []float64
	for i := 0; i < 5000; i++ {
		secs = append(secs, ExploreTime(rng).Seconds())
	}
	cdf := metrics.NewCDF(secs)
	// Figure 21: ~80% of exploration times exceed 1s; mean ≈ 18.3s.
	if p := 1 - cdf.At(1.0); p < 0.8 {
		t.Errorf("P(explore > 1s) = %v, paper ≈0.8", p)
	}
	mean := metrics.Summarize(secs).Mean
	if mean < 10 || mean > 30 {
		t.Errorf("mean explore %vs, paper ≈18.3s", mean)
	}
}

func TestRunSessionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Run(rng, 0, 5*time.Minute)
	if s.Duration < 5*time.Minute {
		t.Errorf("session too short: %v", s.Duration)
	}
	if len(s.Queries) < 5 {
		t.Fatalf("only %d queries", len(s.Queries))
	}
	if len(s.Requests) < len(s.Queries) {
		t.Error("fewer requests than queries")
	}
	// Query times nondecreasing, URLs well-formed, filter counts sane.
	for i, q := range s.Queries {
		if i > 0 && q.At < s.Queries[i-1].At {
			t.Fatal("queries out of order")
		}
		if !strings.HasPrefix(q.URL, "https://") || !strings.Contains(q.URL, "zoom=") {
			t.Fatalf("malformed URL %q", q.URL)
		}
		if q.FilterCount < 1 {
			t.Errorf("query %d has %d filters, want ≥1 (guests)", i, q.FilterCount)
		}
		if q.RequestTime <= 0 || q.ExploreTime <= 0 {
			t.Error("missing T0/T2")
		}
	}
	// Request IDs unique and increasing.
	seen := map[int]bool{}
	for _, r := range s.Requests {
		if seen[r.RequestID] {
			t.Fatalf("duplicate request id %d", r.RequestID)
		}
		seen[r.RequestID] = true
		if r.End < r.Start {
			t.Fatal("request ends before it starts")
		}
	}
	// Map queries carry tiles and map resource requests exist.
	mapTiles, mapReqs := 0, 0
	for _, q := range s.Queries {
		if q.Widget == widget.KindMap {
			mapTiles += len(q.VisibleTileKeys)
		}
	}
	for _, r := range s.Requests {
		if r.ResourceType == ResourceMap {
			mapReqs++
		}
	}
	if mapTiles == 0 || mapReqs == 0 {
		t.Error("no map tiles or tile requests in session")
	}
	if s.Requests[0].String() == "" {
		t.Error("empty request string")
	}
}

func TestRunStudyWidgetShares(t *testing.T) {
	sessions := RunStudy(7, 6, 12*time.Minute)
	counts := map[widget.Kind]int{}
	total := 0
	for _, s := range sessions {
		for _, q := range s.Queries[1:] { // skip the initial page load
			counts[q.Widget]++
			total++
		}
	}
	if total < 100 {
		t.Fatalf("only %d queries across study", total)
	}
	mapFrac := float64(counts[widget.KindMap]) / float64(total)
	if math.Abs(mapFrac-0.628) > 0.08 {
		t.Errorf("map fraction %v, paper 0.628", mapFrac)
	}
	fsFrac := float64(counts[widget.KindSlider]+counts[widget.KindCheckbox]) / float64(total)
	if math.Abs(fsFrac-0.299) > 0.08 {
		t.Errorf("slider+checkbox fraction %v, paper 0.299", fsFrac)
	}
}

func TestZoomRecordsWithinBand(t *testing.T) {
	sessions := RunStudy(11, 4, 8*time.Minute)
	for _, s := range sessions {
		start := s.Queries[0].Zoom
		for _, q := range s.Queries {
			if q.Zoom < start-3 || q.Zoom > start+3 {
				t.Fatalf("user %d zoom %d wanders past start %d ±3", s.User, q.Zoom, start)
			}
		}
	}
}

// TestDragExtentsShrinkWithZoom reproduces Table 10's structure: bound-
// center movement per drag shrinks as zoom deepens.
func TestDragExtentsShrinkWithZoom(t *testing.T) {
	sessions := RunStudy(13, 10, 15*time.Minute)
	extent := map[int][]float64{} // zoom → |Δlng| samples
	for _, s := range sessions {
		for i := 1; i < len(s.Queries); i++ {
			q := s.Queries[i]
			if q.Action != behavior.ActDrag || q.Zoom != s.Queries[i-1].Zoom {
				continue
			}
			d := math.Abs(q.BoundCenterLng - s.Queries[i-1].BoundCenterLng)
			extent[q.Zoom] = append(extent[q.Zoom], d)
		}
	}
	means := map[int]float64{}
	for z, xs := range extent {
		if len(xs) >= 5 {
			means[z] = metrics.Summarize(xs).Mean
		}
	}
	if len(means) < 3 {
		t.Skipf("not enough zoom levels with drags: %v", means)
	}
	// Each level deeper should at least halve the mean extent (exactly 2x
	// in expectation since drags are pixel-scale).
	for z := 11; z <= 13; z++ {
		a, okA := means[z]
		b, okB := means[z+1]
		if !okA || !okB {
			continue
		}
		ratio := a / b
		if ratio < 1.4 || ratio > 2.9 {
			t.Errorf("extent ratio z%d/z%d = %v, want ≈2", z, z+1, ratio)
		}
	}
}

func TestRequestVsExploreCDF(t *testing.T) {
	sessions := RunStudy(17, 5, 10*time.Minute)
	var req, exp []float64
	for _, s := range sessions {
		for _, q := range s.Queries {
			req = append(req, q.RequestTime.Seconds())
			exp = append(exp, q.ExploreTime.Seconds())
		}
	}
	mReq := metrics.Summarize(req).Mean
	mExp := metrics.Summarize(exp).Mean
	// The paper's conclusion: ~18 adjacent queries can be prefetched while
	// the user explores (18.3s explore vs 1.1s fetch).
	if mExp/mReq < 8 {
		t.Errorf("explore/request ratio %v, paper ≈16", mExp/mReq)
	}
}
