package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Percentile must not mutate its input.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.At(2); got != 0.6 {
		t.Errorf("At(2) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v", got)
	}
	if got := c.Quantile(0.8); got != 3 {
		t.Errorf("Quantile(0.8) = %v, want 3", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	pts := c.Points(3)
	if len(pts) != 3 || pts[0][0] != 1 || pts[2][0] != 10 {
		t.Errorf("Points = %v", pts)
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || empty.Quantile(0.5) != 0 || empty.Points(3) != nil {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFQuantileAtProperty(t *testing.T) {
	// For any sample and q, At(Quantile(q)) >= q.
	f := func(raw []float64, q01 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		q := float64(q01%100)/100 + 0.01
		c := NewCDF(raw)
		return c.At(c.Quantile(q)) >= q-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLCV(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	issues := []time.Duration{ms(0), ms(20), ms(40), ms(60)}
	// Q0 finishes at 30 (> issue of Q1 at 20): violation.
	// Q1 finishes at 35 (< issue of Q2 at 40): ok.
	// Q2 finishes at 100 (> issue of Q3 at 60): violation.
	// Q3 finishes at 70, sessionEnd 200: ok.
	finishes := []time.Duration{ms(30), ms(35), ms(100), ms(70)}
	if got := LCV(issues, finishes, ms(200)); got != 2 {
		t.Errorf("LCV = %d, want 2", got)
	}
	// Without a session end, the last query cannot violate.
	finishes[3] = ms(10000)
	if got := LCV(issues, finishes, 0); got != 2 {
		t.Errorf("LCV (no end) = %d, want 2", got)
	}
	if got := LCV(issues, finishes, ms(200)); got != 3 {
		t.Errorf("LCV (with end) = %d, want 3", got)
	}
	if got := LCVPercent(issues, finishes, ms(200)); got != 0.75 {
		t.Errorf("LCVPercent = %v", got)
	}
	if LCVPercent(nil, nil, 0) != 0 {
		t.Error("LCVPercent(empty) != 0")
	}
}

func TestLCVMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched LCV inputs did not panic")
		}
	}()
	LCV([]time.Duration{0}, nil, 0)
}

func TestMeasureQIF(t *testing.T) {
	// 51 queries over 1s → 50 intervals / 1s = 50 qps, the paper's
	// 20ms-sensing example.
	var issues []time.Duration
	for i := 0; i <= 50; i++ {
		issues = append(issues, time.Duration(i)*20*time.Millisecond)
	}
	q := MeasureQIF(issues)
	if q.Queries != 51 {
		t.Errorf("Queries = %d", q.Queries)
	}
	if math.Abs(q.PerSecond-50) > 1e-9 {
		t.Errorf("PerSecond = %v, want 50", q.PerSecond)
	}
	if q.MeanIntervl != 20*time.Millisecond {
		t.Errorf("MeanIntervl = %v", q.MeanIntervl)
	}
	if z := MeasureQIF(nil); z.Queries != 0 || z.PerSecond != 0 {
		t.Errorf("empty QIF = %+v", z)
	}
	one := MeasureQIF([]time.Duration{time.Second})
	if one.PerSecond != 0 {
		t.Error("single-query QIF nonzero")
	}
}

func TestIntervalHistogram(t *testing.T) {
	issues := []time.Duration{0, 5 * time.Millisecond, 30 * time.Millisecond, 31 * time.Millisecond, 500 * time.Millisecond}
	// gaps: 5, 25, 1, 469 ms; bins of 10ms up to 60ms → 6 bins
	h := IntervalHistogram(issues, 10*time.Millisecond, 60*time.Millisecond)
	if len(h) != 6 {
		t.Fatalf("bins = %d", len(h))
	}
	if h[0] != 2 { // 5ms and 1ms
		t.Errorf("bin 0 = %d, want 2", h[0])
	}
	if h[2] != 1 { // 25ms
		t.Errorf("bin 2 = %d, want 1", h[2])
	}
	if h[5] != 1 { // overflow 469ms
		t.Errorf("overflow bin = %d, want 1", h[5])
	}
	if IntervalHistogram(issues, 0, time.Second) != nil {
		t.Error("zero binWidth did not return nil")
	}
}

func TestOverConstraint(t *testing.T) {
	lats := []time.Duration{
		10 * time.Millisecond,
		DefaultConstraint, // at the boundary: not a violation
		DefaultConstraint + time.Millisecond,
		2 * time.Second,
	}
	if got := OverConstraint(lats, 0); got != 2 {
		t.Errorf("OverConstraint(default) = %d, want 2", got)
	}
	if got := OverConstraint(lats, 5*time.Millisecond); got != 4 {
		t.Errorf("OverConstraint(5ms) = %d, want 4", got)
	}
	if got := OverConstraint(nil, 0); got != 0 {
		t.Errorf("OverConstraint(nil) = %d, want 0", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, 2*time.Second); got != 50 {
		t.Errorf("Throughput = %v", got)
	}
	if Throughput(5, 0) != 0 {
		t.Error("zero span not handled")
	}
}

func TestKLDivergence(t *testing.T) {
	a := []int64{10, 20, 30, 40}
	if got := KLDivergence(a, a); got != 0 {
		t.Errorf("KL(a,a) = %v, want 0", got)
	}
	b := []int64{40, 30, 20, 10}
	kl := KLDivergence(a, b)
	if kl <= 0 || math.IsInf(kl, 0) {
		t.Errorf("KL(a,b) = %v", kl)
	}
	// Scale invariance: KL compares shapes, not magnitudes.
	scaled := []int64{20, 40, 60, 80}
	if got := KLDivergence(a, scaled); got > 1e-9 {
		t.Errorf("KL(a, 2a) = %v, want ~0", got)
	}
	// Zero bins do not blow up.
	withZero := []int64{0, 0, 50, 50}
	if got := KLDivergence(a, withZero); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("KL with zero bins = %v", got)
	}
	// Mismatched lengths.
	if !math.IsInf(KLDivergence(a, []int64{1}), 1) {
		t.Error("mismatched lengths not Inf")
	}
	// Both all-zero → identical.
	if got := KLDivergence([]int64{0, 0}, []int64{0, 0}); got != 0 {
		t.Errorf("KL(0,0) = %v", got)
	}
}

// Small perturbations must yield small KL; large ones larger — the property
// the KL>0.2 threshold optimization relies on.
func TestKLMonotoneInPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := make([]int64, 20)
	for i := range base {
		base[i] = int64(100 + rng.Intn(900))
	}
	perturb := func(amount int64) []int64 {
		out := append([]int64(nil), base...)
		for i := range out {
			out[i] += rng.Int63n(2*amount+1) - amount
			if out[i] < 0 {
				out[i] = 0
			}
		}
		return out
	}
	small := KLDivergence(base, perturb(5))
	large := KLDivergence(base, perturb(500))
	if small >= large {
		t.Errorf("KL small %v >= large %v", small, large)
	}
	if small > 0.05 {
		t.Errorf("small perturbation KL %v unexpectedly large", small)
	}
}

func TestMSEAndNormalize(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("MSE equal = %v", got)
	}
	if got := MSE([]float64{0, 0}, []float64{3, 4}); got != 12.5 {
		t.Errorf("MSE = %v, want 12.5", got)
	}
	if !math.IsInf(MSE([]float64{1}, []float64{1, 2}), 1) {
		t.Error("mismatched MSE not Inf")
	}
	n := NormalizeCounts([]int64{1, 3})
	if n[0] != 0.25 || n[1] != 0.75 {
		t.Errorf("NormalizeCounts = %v", n)
	}
	z := NormalizeCounts([]int64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("NormalizeCounts zeros = %v", z)
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 250 * time.Millisecond})
	if ds[0] != 1000 || ds[1] != 250 {
		t.Errorf("Durations = %v", ds)
	}
}

func TestQuantizeCounts(t *testing.T) {
	h := []int64{10, 20, 30, 40}
	q := QuantizeCounts(h, 100)
	// Quantized values preserve relative mass at 1/100 resolution.
	if q[0] != 10 || q[1] != 20 || q[2] != 30 || q[3] != 40 {
		t.Errorf("QuantizeCounts = %v", q)
	}
	// Sub-resolution perturbations vanish.
	h2 := []int64{10, 20, 30, 40}
	h2[0]++ // +1 part in 101 < 1/100 quantum after renormalization wobble
	q2 := QuantizeCounts(h2, 10)
	q10 := QuantizeCounts(h, 10)
	for i := range q2 {
		if q2[i] != q10[i] {
			t.Errorf("sub-quantum change visible at level 10: %v vs %v", q2, q10)
			break
		}
	}
	// Zero histogram stays zero; level default applies.
	z := QuantizeCounts([]int64{0, 0}, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero quantize = %v", z)
	}
}

func TestQuantizedKLZeroForSmallChanges(t *testing.T) {
	a := []int64{1000, 2000, 3000}
	b := []int64{1001, 2000, 3000}
	qa, qb := QuantizeCounts(a, 64), QuantizeCounts(b, 64)
	if kl := KLDivergence(qa, qb); kl != 0 {
		t.Errorf("quantized KL of near-identical histograms = %v, want 0", kl)
	}
	c := []int64{3000, 2000, 1000}
	if kl := KLDivergence(QuantizeCounts(a, 64), QuantizeCounts(c, 64)); kl <= 0 {
		t.Errorf("quantized KL of reshaped histogram = %v, want > 0", kl)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{
		Network:         2 * time.Millisecond,
		Scheduling:      10 * time.Millisecond,
		Execution:       300 * time.Millisecond,
		PostAggregation: 5 * time.Millisecond,
		Rendering:       16 * time.Millisecond,
	}
	if b.Total() != 333*time.Millisecond {
		t.Errorf("Total = %v", b.Total())
	}
	if b.Dominant() != "execution" {
		t.Errorf("Dominant = %q", b.Dominant())
	}
	// Earlier pipeline stage wins ties.
	tie := Breakdown{Network: time.Second, Rendering: time.Second}
	if tie.Dominant() != "network" {
		t.Errorf("tie Dominant = %q", tie.Dominant())
	}
	if (Breakdown{}).Total() != 0 {
		t.Error("zero breakdown total nonzero")
	}
	if s := b.String(); s == "" {
		t.Error("empty String")
	}
}

// TestPercentileExtremeFastPath pins the regression: the p>=100 (max) and
// p<=0 (min) answers come from a single scan, allocation-free and without
// mutating the input, and agree with the sorted-rank definition.
func TestPercentileExtremeFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 10001)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	var wantMax, wantMin = xs[0], xs[0]
	for _, x := range xs {
		wantMax = math.Max(wantMax, x)
		wantMin = math.Min(wantMin, x)
	}
	if got := Percentile(xs, 100); got != wantMax {
		t.Errorf("Percentile(xs, 100) = %v, want max %v", got, wantMax)
	}
	if got := Percentile(xs, 150); got != wantMax {
		t.Errorf("Percentile(xs, 150) = %v, want max %v", got, wantMax)
	}
	if got := Percentile(xs, 0); got != wantMin {
		t.Errorf("Percentile(xs, 0) = %v, want min %v", got, wantMin)
	}
	if allocs := testing.AllocsPerRun(20, func() { Percentile(xs, 100) }); allocs != 0 {
		t.Errorf("Percentile(xs, 100) allocates %v times, want 0", allocs)
	}
	// The fast path must not sort the caller's slice in place.
	probe := []float64{5, 1, 9, 3}
	Percentile(probe, 100)
	if probe[0] != 5 || probe[3] != 3 {
		t.Errorf("Percentile(·, 100) mutated input: %v", probe)
	}
}

// TestPercentileSortedMatchesPercentile: reading several percentiles from
// one sorted copy is the same function as sorting per call.
func TestPercentileSortedMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 997)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 30
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 1, 25, 50, 90, 95, 99, 99.9, 100} {
		if got, want := PercentileSorted(sorted, p), Percentile(xs, p); got != want {
			t.Errorf("PercentileSorted(%v) = %v, Percentile = %v", p, got, want)
		}
	}
}

func BenchmarkPercentileMax(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 1<<18)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 100)
	}
}
