// Package metrics implements the evaluation measures the paper catalogs
// (Section 3), including the two frontend metrics it introduces:
//
//   - Latency Constraint Violation (LCV): the number of queries whose
//     results had not arrived when the user issued the next query — the
//     user-perceived delay of Figure 2, stricter than mean or max latency.
//   - Query Issuing Frequency (QIF): the rate and interval distribution at
//     which the frontend issues queries, a function of device sensing rate.
//
// It also provides the classical backend metrics (latency summaries,
// throughput, cache hit rate via storage.BufferPool), the Kullback–Leibler
// divergence used by the crossfiltering case study's result-driven query
// filter, accuracy (mean squared error), and CDF utilities used by the
// composite-interface case study.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Stddev float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)))
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0–100) using linear
// interpolation between closest ranks. The input need not be sorted.
// The extremes (p<=0, p>=100) are answered by a single scan without
// copying or sorting — callers asking for the max should not pay
// O(n log n) and an allocation for it.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	}
	if p >= 100 {
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already-sorted sample: callers
// reading several percentiles from one snapshot sort once and reuse the
// copy instead of paying one sort per percentile.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Include equal values.
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest x with P(X <= x) >= q, for q in (0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs for rendering.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Durations converts a duration slice to float64 milliseconds, the unit the
// paper's figures use.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// --- Latency breakdown ------------------------------------------------------

// Breakdown decomposes user-perceived latency into the five components of
// §3.1.1: network (both legs), query scheduling, query execution,
// post-aggregation, and rendering. Reporting execution time alone is
// misleading — the total is what the user waits for.
type Breakdown struct {
	Network         time.Duration
	Scheduling      time.Duration
	Execution       time.Duration
	PostAggregation time.Duration
	Rendering       time.Duration
}

// Total returns the user-perceived latency.
func (b Breakdown) Total() time.Duration {
	return b.Network + b.Scheduling + b.Execution + b.PostAggregation + b.Rendering
}

// Dominant returns the name of the largest component (ties pick the
// earlier pipeline stage), identifying where optimization effort should go.
func (b Breakdown) Dominant() string {
	type comp struct {
		name string
		d    time.Duration
	}
	comps := []comp{
		{"network", b.Network},
		{"scheduling", b.Scheduling},
		{"execution", b.Execution},
		{"post-aggregation", b.PostAggregation},
		{"rendering", b.Rendering},
	}
	best := comps[0]
	for _, c := range comps[1:] {
		if c.d > best.d {
			best = c
		}
	}
	return best.name
}

// String renders the breakdown compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("net %v + sched %v + exec %v + agg %v + render %v = %v",
		b.Network, b.Scheduling, b.Execution, b.PostAggregation, b.Rendering, b.Total())
}

// --- Latency Constraint Violation ----------------------------------------

// DefaultConstraint is the repo-wide wall-clock latency constraint: the
// 500 ms threshold §3.1.1 cites as the added delay that is noticeable and
// depresses analysis behavior (Liu & Heer). The simulator's replay results
// and the serving layer both evaluate against this single constant unless
// the caller overrides it.
const DefaultConstraint = 500 * time.Millisecond

// OverConstraint counts latencies that exceed a fixed wall-clock
// constraint; pass 0 to use DefaultConstraint. This is the server-side
// companion to LCV: LCV asks "did the result arrive before the user's next
// action", OverConstraint asks "did the result arrive inside the published
// perceptual budget".
func OverConstraint(latencies []time.Duration, constraint time.Duration) int {
	if constraint <= 0 {
		constraint = DefaultConstraint
	}
	n := 0
	for _, l := range latencies {
		if l > constraint {
			n++
		}
	}
	return n
}

// LCV counts latency constraint violations in a query sequence: query i
// violates when its result arrives after query i+1 was issued (the user was
// still waiting when they acted again — Figure 2). The final query violates
// if its result arrives after sessionEnd, when sessionEnd > 0.
//
// issues and finishes are parallel; issues must be nondecreasing.
func LCV(issues, finishes []time.Duration, sessionEnd time.Duration) int {
	if len(issues) != len(finishes) {
		panic(fmt.Sprintf("metrics: LCV got %d issues, %d finishes", len(issues), len(finishes)))
	}
	violations := 0
	for i := range issues {
		var deadline time.Duration
		switch {
		case i+1 < len(issues):
			deadline = issues[i+1]
		case sessionEnd > 0:
			deadline = sessionEnd
		default:
			continue
		}
		if finishes[i] > deadline {
			violations++
		}
	}
	return violations
}

// LCVPercent returns the fraction of queries violating the constraint, in
// [0, 1]. Zero queries yields 0.
func LCVPercent(issues, finishes []time.Duration, sessionEnd time.Duration) float64 {
	if len(issues) == 0 {
		return 0
	}
	return float64(LCV(issues, finishes, sessionEnd)) / float64(len(issues))
}

// --- Query Issuing Frequency ----------------------------------------------

// QIF is query-issuing-frequency statistics over one trace.
type QIF struct {
	Queries     int
	Span        time.Duration // last issue − first issue
	PerSecond   float64
	MeanIntervl time.Duration
}

// MeasureQIF computes issuing statistics from issue timestamps.
func MeasureQIF(issues []time.Duration) QIF {
	q := QIF{Queries: len(issues)}
	if len(issues) < 2 {
		return q
	}
	q.Span = issues[len(issues)-1] - issues[0]
	if q.Span > 0 {
		q.PerSecond = float64(len(issues)-1) / q.Span.Seconds()
	}
	q.MeanIntervl = q.Span / time.Duration(len(issues)-1)
	return q
}

// IntervalHistogram bins the gaps between consecutive issue times into
// binWidth-wide bins up to maxInterval (gaps beyond it land in the last
// bin). This is the paper's Figure 14.
func IntervalHistogram(issues []time.Duration, binWidth, maxInterval time.Duration) []int {
	if binWidth <= 0 || maxInterval <= 0 {
		return nil
	}
	n := int(maxInterval / binWidth)
	if n == 0 {
		n = 1
	}
	bins := make([]int, n)
	for i := 1; i < len(issues); i++ {
		gap := issues[i] - issues[i-1]
		b := int(gap / binWidth)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		bins[b]++
	}
	return bins
}

// --- Throughput -----------------------------------------------------------

// Throughput returns completed operations per second over a span.
func Throughput(completed int, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(completed) / span.Seconds()
}

// --- KL divergence and accuracy --------------------------------------------

// klEpsilon smooths zero bins so the divergence stays finite; the paper's
// approximation quantizes histograms the same way.
const klEpsilon = 1e-9

// KLDivergence computes KL(T‖T') between two histograms of equal length
// (the paper's Equation 1). Histograms are normalized to probability
// distributions first; zero bins are epsilon-smoothed. Identical histograms
// give 0.
func KLDivergence(t, tp []int64) float64 {
	if len(t) != len(tp) || len(t) == 0 {
		return math.Inf(1)
	}
	var st, sp float64
	for i := range t {
		st += float64(t[i])
		sp += float64(tp[i])
	}
	if st == 0 || sp == 0 {
		if st == sp {
			return 0
		}
		return math.Inf(1)
	}
	var kl float64
	for i := range t {
		p := float64(t[i])/st + klEpsilon
		q := float64(tp[i])/sp + klEpsilon
		kl += p * math.Log(p/q)
	}
	if kl < 0 { // numerical noise on identical inputs
		kl = 0
	}
	return kl
}

// MSE returns the mean squared error between two equal-length float
// vectors — the accuracy metric of approximate systems (e.g. Incvisage).
func MSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.Inf(1)
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return ss / float64(len(a))
}

// QuantizeCounts renormalizes a count histogram to the given number of
// levels (mass resolution 1/levels). Approximation sketches have finite
// resolution; comparing quantized histograms makes "the result did not
// change" well-defined: changes smaller than one level vanish.
func QuantizeCounts(h []int64, levels int) []int64 {
	if levels <= 0 {
		levels = 64
	}
	var sum float64
	for _, c := range h {
		sum += float64(c)
	}
	out := make([]int64, len(h))
	if sum == 0 {
		return out
	}
	for i, c := range h {
		out[i] = int64(math.Round(float64(c) / sum * float64(levels)))
	}
	return out
}

// NormalizeCounts converts a count histogram into a probability vector.
func NormalizeCounts(h []int64) []float64 {
	out := make([]float64, len(h))
	var sum float64
	for _, c := range h {
		sum += float64(c)
	}
	if sum == 0 {
		return out
	}
	for i, c := range h {
		out[i] = float64(c) / sum
	}
	return out
}
