package crossfilter

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

func roadCF(t *testing.T, n int) *Crossfilter {
	t.Helper()
	roads := dataset.Roads(1, n)
	cf, err := New(roads, []string{"x", "y", "z"}, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestNewErrors(t *testing.T) {
	roads := dataset.Roads(1, 100)
	if _, err := New(roads, nil, 20); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, err := New(roads, []string{"missing"}, 20); err == nil {
		t.Error("missing column accepted")
	}
	movie := dataset.Movies(1, 10)
	if _, err := New(movie, []string{"title"}, 20); err == nil {
		t.Error("string column accepted")
	}
	many := make([]string, 33)
	for i := range many {
		many[i] = "x"
	}
	if _, err := New(roads, many, 20); err == nil {
		t.Error(">32 dimensions accepted")
	}
}

func TestUnfilteredHistogramsSumToN(t *testing.T) {
	cf := roadCF(t, 5000)
	if cf.Total() != 5000 {
		t.Errorf("Total = %d", cf.Total())
	}
	for d := 0; d < cf.NumDims(); d++ {
		var sum int64
		for _, c := range cf.Histogram(d) {
			sum += c
		}
		if sum != 5000 {
			t.Errorf("dim %d histogram sums to %d", d, sum)
		}
	}
}

func TestFilterCoordination(t *testing.T) {
	cf := roadCF(t, 5000)
	x := cf.Dim(0)
	mid := (x.Lo + x.Hi) / 2
	cf.SetFilter(0, x.Lo, mid)

	// Dimension 0's own histogram ignores its own filter.
	var sum0 int64
	for _, c := range cf.Histogram(0) {
		sum0 += c
	}
	if sum0 != 5000 {
		t.Errorf("dim 0 histogram affected by own filter: sum %d", sum0)
	}
	// Other dimensions' histograms now reflect the x filter.
	var sum1 int64
	for _, c := range cf.Histogram(1) {
		sum1 += c
	}
	if sum1 >= 5000 || sum1 != cf.Total() {
		t.Errorf("dim 1 sum %d, total %d", sum1, cf.Total())
	}
}

func TestClearFilterRestores(t *testing.T) {
	cf := roadCF(t, 3000)
	before := cf.Histograms()
	x := cf.Dim(0)
	cf.SetFilter(0, x.Lo, (x.Lo+x.Hi)/3)
	cf.SetFilter(1, cf.Dim(1).Lo, cf.Dim(1).Hi-0.1)
	cf.ClearFilter(0)
	cf.ClearFilter(1)
	after := cf.Histograms()
	if cf.Total() != 3000 {
		t.Errorf("Total after clear = %d", cf.Total())
	}
	for d := range before {
		for b := range before[d] {
			if before[d][b] != after[d][b] {
				t.Fatalf("dim %d bin %d: %d → %d after clear", d, b, before[d][b], after[d][b])
			}
		}
	}
	if cf.Dim(0).Filtered() {
		t.Error("dim 0 still marked filtered")
	}
}

// TestIncrementalMatchesRecompute drives random filter sequences and checks
// the incremental state against a full rebuild — the core invariant.
func TestIncrementalMatchesRecompute(t *testing.T) {
	cf := roadCF(t, 4000)
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 60; step++ {
		d := rng.Intn(cf.NumDims())
		dim := cf.Dim(d)
		if rng.Intn(5) == 0 {
			cf.ClearFilter(d)
		} else {
			span := dim.Hi - dim.Lo
			lo := dim.Lo + rng.Float64()*span
			hi := lo + rng.Float64()*(dim.Hi-lo)
			cf.SetFilter(d, lo, hi)
		}
		gotTotal := cf.Total()
		got := cf.Histograms()
		cf.RecomputeAll()
		if cf.Total() != gotTotal {
			t.Fatalf("step %d: incremental total %d, recompute %d", step, gotTotal, cf.Total())
		}
		want := cf.Histograms()
		for dd := range want {
			for b := range want[dd] {
				if got[dd][b] != want[dd][b] {
					t.Fatalf("step %d dim %d bin %d: incremental %d, recompute %d",
						step, dd, b, got[dd][b], want[dd][b])
				}
			}
		}
	}
}

func TestFilterSemantics(t *testing.T) {
	// Hand-built table with known values.
	tbl := storage.NewTable("t", storage.Schema{
		{Name: "a", Type: storage.Float64},
		{Name: "b", Type: storage.Float64},
	})
	// a: 0..9, b: 9..0
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow(storage.NewFloat(float64(i)), storage.NewFloat(float64(9-i)))
	}
	cf, err := New(tbl, []string{"a", "b"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Filter a to [0,4] → 5 records pass.
	cf.SetFilter(0, 0, 4)
	if cf.Total() != 5 {
		t.Errorf("Total = %d, want 5", cf.Total())
	}
	// b histogram sees only those 5 records: b values 9,8,7,6,5.
	hb := cf.Histogram(1)
	var sum int64
	for bin, c := range hb {
		sum += c
		if c > 0 && bin < 5 {
			t.Errorf("b bin %d populated, want only bins 5..9", bin)
		}
	}
	if sum != 5 {
		t.Errorf("b histogram sum = %d", sum)
	}
	// Filter b too: [5,6] → records with b in {5,6} and a in [0,4]: a=3(b=6), a=4(b=5).
	cf.SetFilter(1, 5, 6)
	if cf.Total() != 2 {
		t.Errorf("Total = %d, want 2", cf.Total())
	}
	// a's histogram ignores a's filter but respects b's: b in [5,6] → a in {3,4}.
	ha := cf.Histogram(0)
	for bin, c := range ha {
		switch bin {
		case 3, 4:
			if c != 1 {
				t.Errorf("a bin %d = %d, want 1", bin, c)
			}
		default:
			if c != 0 {
				t.Errorf("a bin %d = %d, want 0", bin, c)
			}
		}
	}
}

func TestBinOfClamping(t *testing.T) {
	d := &Dimension{Lo: 0, Hi: 10, Bins: 20}
	if d.BinOf(-5) != 0 {
		t.Error("below-domain value not clamped to 0")
	}
	if d.BinOf(10) != 19 {
		t.Error("domain max not clamped to last bin")
	}
	if d.BinOf(100) != 19 {
		t.Error("above-domain value not clamped")
	}
	degenerate := &Dimension{Lo: 5, Hi: 5, Bins: 20}
	if degenerate.BinOf(5) != 0 {
		t.Error("degenerate domain not handled")
	}
}

func TestDimIndex(t *testing.T) {
	cf := roadCF(t, 100)
	if cf.DimIndex("y") != 1 {
		t.Errorf("DimIndex(y) = %d", cf.DimIndex("y"))
	}
	if cf.DimIndex("nope") != -1 {
		t.Error("DimIndex(nope) != -1")
	}
	if cf.NumRecords() != 100 {
		t.Errorf("NumRecords = %d", cf.NumRecords())
	}
}

func TestRepeatedIdenticalFilterIsStable(t *testing.T) {
	cf := roadCF(t, 2000)
	x := cf.Dim(0)
	lo, hi := x.Lo+0.5, x.Hi-0.5
	cf.SetFilter(0, lo, hi)
	t1 := cf.Total()
	h1 := cf.Histogram(1)
	for i := 0; i < 5; i++ {
		cf.SetFilter(0, lo, hi)
	}
	if cf.Total() != t1 {
		t.Errorf("total drifted under repeated identical filters")
	}
	h2 := cf.Histogram(1)
	for b := range h1 {
		if h1[b] != h2[b] {
			t.Fatalf("histogram drifted at bin %d", b)
		}
	}
}
