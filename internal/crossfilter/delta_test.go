package crossfilter

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/morsel"
	"repro/internal/storage"
)

// driveRandomBrushes applies the same seeded mix of drag steps, jumps,
// clears, and degenerate filters to both crossfilters, checking full state
// equality (totals, histograms, and per-record masks) after every step.
func driveRandomBrushes(t *testing.T, seed int64, steps int, want, got *Crossfilter) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// lo/hi track a synthetic brush per dimension so most steps are small
	// edge moves, the drag-style delta the sorted index exists for.
	nd := want.NumDims()
	brushLo := make([]float64, nd)
	brushHi := make([]float64, nd)
	for d := 0; d < nd; d++ {
		dim := want.Dim(d)
		brushLo[d], brushHi[d] = dim.Lo, dim.Hi
	}
	apply := func(f func(c *Crossfilter)) {
		f(want)
		f(got)
	}
	for step := 0; step < steps; step++ {
		d := rng.Intn(nd)
		dim := want.Dim(d)
		span := dim.Hi - dim.Lo
		switch r := rng.Float64(); {
		case r < 0.55: // drag: nudge one brush edge by up to 2% of the domain
			delta := (rng.Float64() - 0.5) * span * 0.04
			if rng.Intn(2) == 0 {
				brushLo[d] += delta
			} else {
				brushHi[d] += delta
			}
			if brushLo[d] > brushHi[d] {
				brushLo[d], brushHi[d] = brushHi[d], brushLo[d]
			}
			apply(func(c *Crossfilter) { c.SetFilter(d, brushLo[d], brushHi[d]) })
		case r < 0.75: // jump: a fresh random brush
			brushLo[d] = dim.Lo + rng.Float64()*span
			brushHi[d] = brushLo[d] + rng.Float64()*(dim.Hi-brushLo[d])
			apply(func(c *Crossfilter) { c.SetFilter(d, brushLo[d], brushHi[d]) })
		case r < 0.85: // clear
			apply(func(c *Crossfilter) { c.ClearFilter(d) })
		case r < 0.92: // degenerate: inverted bounds (empty filter)
			apply(func(c *Crossfilter) { c.SetFilter(d, dim.Hi, dim.Lo) })
		default: // degenerate: NaN bounds (empty filter)
			apply(func(c *Crossfilter) { c.SetFilter(d, math.NaN(), brushHi[d]) })
		}
		mustEqualFullState(t, step, want, got)
	}
}

// mustEqualFullState extends mustEqualState with per-record mask equality —
// byte-identical internal state, not just equal aggregates.
func mustEqualFullState(t *testing.T, step int, want, got *Crossfilter) {
	t.Helper()
	mustEqualState(t, step, want, got)
	for i := range want.masks {
		if want.masks[i] != got.masks[i] {
			t.Fatalf("step %d: record %d mask %b vs %b", step, i, want.masks[i], got.masks[i])
		}
	}
}

// TestDeltaMatchesFullScan is the tentpole's differential proof: the
// sorted-index delta path must be byte-identical to the full-scan oracle
// over randomized brush sequences at every worker count.
func TestDeltaMatchesFullScan(t *testing.T) {
	roads := dataset.Roads(11, 4*morsel.Size)
	dims := []string{"x", "y", "z"}
	for _, p := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			oracle, err := New(roads, dims, 20)
			if err != nil {
				t.Fatal(err)
			}
			oracle.SetIncremental(false)
			oracle.SetParallelism(p)
			inc, err := New(roads, dims, 20)
			if err != nil {
				t.Fatal(err)
			}
			inc.SetParallelism(p)
			driveRandomBrushes(t, int64(500+p), 80, oracle, inc)
			if delta, _ := inc.ScanStats(); delta == 0 {
				t.Error("incremental side never took the delta path")
			}
			if delta, full := oracle.ScanStats(); delta != 0 || full == 0 {
				t.Errorf("oracle took the delta path: delta=%d full=%d", delta, full)
			}
		})
	}
}

// TestDeltaCrossoverExtremes pins both crossover extremes against the
// oracle: crossover 1 forces every update (even clears and page-wide
// jumps) through the delta scan, including its parallel segment walk.
func TestDeltaCrossoverExtremes(t *testing.T) {
	roads := dataset.Roads(12, 3*morsel.Size)
	dims := []string{"x", "y"}
	for _, crossover := range []float64{1e-9, 1.0} {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("c%v_p%d", crossover, p), func(t *testing.T) {
				oracle, err := New(roads, dims, 20)
				if err != nil {
					t.Fatal(err)
				}
				oracle.SetIncremental(false)
				inc, err := New(roads, dims, 20)
				if err != nil {
					t.Fatal(err)
				}
				inc.SetParallelism(p)
				inc.SetCrossover(crossover)
				driveRandomBrushes(t, int64(700+p), 50, oracle, inc)
				delta, full := inc.ScanStats()
				if crossover == 1.0 && full != 0 {
					t.Errorf("crossover 1 still fell back to full scans: %d", full)
				}
				if crossover < 1e-6 && delta > 0 {
					// Only zero-length deltas (no-op moves) may count.
					t.Logf("tiny crossover recorded %d delta scans (no-op moves)", delta)
				}
			})
		}
	}
}

// TestEmptyFilterGuards pins the satellite fix: inverted and NaN filter
// bounds are an empty filter — zero records pass, nothing silently
// matches everything — and clearing restores the unfiltered state.
func TestEmptyFilterGuards(t *testing.T) {
	cf := roadCF(t, 2000)
	unfiltered := cf.Histogram(1)

	cf.SetFilter(0, 5, 3) // inverted
	if cf.Total() != 0 {
		t.Errorf("inverted bounds: total = %d, want 0", cf.Total())
	}
	if !cf.Dim(0).Filtered() {
		t.Error("inverted filter not marked active")
	}
	cf.SetFilter(0, math.NaN(), 3)
	if cf.Total() != 0 {
		t.Errorf("NaN lo: total = %d, want 0", cf.Total())
	}
	cf.SetFilter(0, 3, math.NaN())
	if cf.Total() != 0 {
		t.Errorf("NaN hi: total = %d, want 0", cf.Total())
	}
	// Other dimensions' histograms (which respect dim 0's filter) are empty.
	for b, c := range cf.Histogram(1) {
		if c != 0 {
			t.Fatalf("bin %d nonzero under empty filter", b)
		}
	}
	// Dim 0's own histogram ignores its own filter.
	var sum int64
	for _, c := range cf.Histogram(0) {
		sum += c
	}
	if sum != 2000 {
		t.Errorf("dim 0 self-histogram sum = %d", sum)
	}

	cf.ClearFilter(0)
	if cf.Total() != 2000 {
		t.Errorf("total after clear = %d", cf.Total())
	}
	after := cf.Histogram(1)
	for b := range unfiltered {
		if unfiltered[b] != after[b] {
			t.Fatalf("bin %d: %d → %d after empty-filter round trip", b, unfiltered[b], after[b])
		}
	}
	// A full rebuild agrees with the incremental empty-filter handling.
	cf.SetFilter(0, math.NaN(), math.NaN())
	cf.RecomputeAll()
	if cf.Total() != 0 {
		t.Errorf("recompute under NaN filter: total = %d, want 0", cf.Total())
	}
}

// TestNaNValuesPinFullScan: a dimension containing NaN values has no
// sorted order, so it must fall back to the full scan — and keep the
// historical semantics that NaN values pass every range filter.
func TestNaNValuesPinFullScan(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{{Name: "a", Type: storage.Float64}})
	for i := 0; i < 50; i++ {
		v := float64(i)
		if i%10 == 0 {
			v = math.NaN()
		}
		tbl.MustAppendRow(storage.NewFloat(v))
	}
	cf, err := New(tbl, []string{"a"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	cf.SetFilter(0, 1, 8)
	if delta, full := cf.ScanStats(); delta != 0 || full != 1 {
		t.Errorf("NaN column: delta=%d full=%d, want full scans only", delta, full)
	}
	// 8 finite values in [1,8] plus 5 NaNs that never fail a range filter.
	if cf.Total() != 13 {
		t.Errorf("total = %d, want 13", cf.Total())
	}
}

// TestDragUsesDeltaPath asserts the economics the tentpole promises: a
// drag sequence of small edge moves stays on the delta path under the
// default crossover.
func TestDragUsesDeltaPath(t *testing.T) {
	cf := roadCF(t, 3*morsel.Size)
	x := cf.Dim(0)
	span := x.Hi - x.Lo
	cf.SetFilter(0, x.Lo+0.4*span, x.Lo+0.6*span) // initial brush: big jump
	_, fullAfterFirst := cf.ScanStats()
	for i := 0; i < 30; i++ {
		lo := x.Lo + (0.4+0.002*float64(i))*span
		cf.SetFilter(0, lo, lo+0.2*span)
	}
	delta, full := cf.ScanStats()
	if full != fullAfterFirst {
		t.Errorf("drag steps fell back to full scans: %d → %d", fullAfterFirst, full)
	}
	if delta < 30 {
		t.Errorf("delta scans = %d, want ≥ 30", delta)
	}
}

// TestDeltaRaceStress exercises the parallel delta scan's worker ownership
// under the race detector: crossover 1 forces even page-wide jumps and
// clears through applyDelta's two-segment walk at 8 workers.
func TestDeltaRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	roads := dataset.Roads(13, 5*morsel.Size)
	cf, err := New(roads, []string{"x", "y", "z"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	cf.SetParallelism(8)
	cf.SetCrossover(1)
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 60; step++ {
		d := rng.Intn(3)
		dim := cf.Dim(d)
		span := dim.Hi - dim.Lo
		if step%7 == 6 {
			cf.ClearFilter(d)
			continue
		}
		lo := dim.Lo + rng.Float64()*span*0.8
		cf.SetFilter(d, lo, lo+rng.Float64()*(dim.Hi-lo))
	}
	// Sanity: the state still reconciles with a full rebuild.
	gotTotal := cf.Total()
	got := cf.Histograms()
	cf.RecomputeAll()
	if cf.Total() != gotTotal {
		t.Fatalf("stress total %d, recompute %d", gotTotal, cf.Total())
	}
	want := cf.Histograms()
	for d := range want {
		for b := range want[d] {
			if got[d][b] != want[d][b] {
				t.Fatalf("dim %d bin %d: %d vs %d", d, b, got[d][b], want[d][b])
			}
		}
	}
}
