// Sorted-index delta scans: the crossfilter.js technique for making a
// brush drag cost O(Δ log n) instead of O(n).
//
// Each dimension keeps a one-time permutation of record indexes sorted by
// value. A range filter then corresponds to a contiguous window of sorted
// positions, found by binary search; when the filter moves, the records
// whose membership changed are exactly the symmetric difference of the old
// and new windows — at most two contiguous position segments. A drag step
// moves one brush edge a few pixels, so the delta is tiny relative to the
// record count and the update never looks at the rest of the data.
//
// Past a crossover fraction of the record count the full morsel-parallel
// scan (applyFilter) is cheaper than chasing the permutation's scattered
// record indexes through memory, so large jumps — page-wide brushes,
// filter clears — fall back to it. Both paths reconcile records through
// the same flipRecord body, and the differential tests in delta_test.go
// prove them byte-identical over randomized brush sequences.

package crossfilter

import (
	"context"
	"math"
	"sort"

	"repro/internal/morsel"
)

// DefaultCrossover is the delta fraction of the record count above which
// SetFilter abandons the delta scan for the full scan. Sequential scans
// run ~4× faster per record than permuted access, so the break-even sits
// near 1/4.
const DefaultCrossover = 0.25

// SetIncremental enables or disables the sorted-index delta path. false
// pins the full-scan implementation — the differential-test oracle and the
// ablation baseline. Not safe to call concurrently with filter updates.
func (c *Crossfilter) SetIncremental(on bool) { c.incremental = on }

// Incremental reports whether the delta path is enabled.
func (c *Crossfilter) Incremental() bool { return c.incremental }

// SetCrossover sets the delta fraction above which filter updates fall
// back to the full scan. Values outside (0, 1] keep the current setting.
func (c *Crossfilter) SetCrossover(frac float64) {
	if frac > 0 && frac <= 1 {
		c.crossover = frac
	}
}

// ScanChooser decides delta-vs-full per update from the actual work sizes
// — the planner's cost model implements it, replacing the fixed crossover
// fraction with fitted per-structure latency lines. ChooseDelta reports
// whether reconciling changed records through the sorted index is
// predicted cheaper than a full scan over all total records.
type ScanChooser interface {
	ChooseDelta(changed, total int) bool
}

// SetScanChooser installs a chooser consulted instead of the crossover
// fraction on every eligible update (nil restores the fraction). Not safe
// to call concurrently with filter updates.
func (c *Crossfilter) SetScanChooser(ch ScanChooser) { c.chooser = ch }

// ScanStats reports how many filter updates took the delta path versus the
// full scan, for tests and the ablation benchmark.
func (c *Crossfilter) ScanStats() (delta, full int64) { return c.deltaScans, c.fullScans }

// buildIndex constructs the dimension's sorted permutation. Dimensions
// containing NaN values get no index (NaN has no sorted position) and pin
// the full-scan path.
func (d *Dimension) buildIndex(n int) {
	for _, v := range d.values {
		if math.IsNaN(v) {
			d.hasNaN = true
			return
		}
	}
	d.order = make([]int32, n)
	for i := range d.order {
		d.order[i] = int32(i)
	}
	sort.Slice(d.order, func(a, b int) bool { return d.values[d.order[a]] < d.values[d.order[b]] })
	d.sorted = make([]float64, n)
	for p, i := range d.order {
		d.sorted[p] = d.values[i]
	}
	d.winLo, d.winHi = 0, n
}

// buildCodeIndex constructs the sorted permutation of a code-space
// dimension by counting sort over the packed codes: codes are
// order-preserving, so grouping records by ascending code orders them by
// ascending value, and the per-code prefix positions replace the
// sorted-values array — window lookups become two offset reads instead of
// two binary searches over 8 bytes/record. (Records tied on value may land
// at different positions than sort.Slice would put them, which is
// immaterial: every window boundary is a value threshold, so the *set* of
// records in any window is identical.)
func (d *Dimension) buildCodeIndex(n int) {
	card := len(d.binLUT)
	offsets := make([]int32, card+1)
	for i := 0; i < n; i++ {
		offsets[d.codes.Get(i)+1]++
	}
	for c := 1; c <= card; c++ {
		offsets[c] += offsets[c-1]
	}
	d.offsets = offsets
	next := make([]int32, card)
	copy(next, offsets[:card])
	d.order = make([]int32, n)
	for i := 0; i < n; i++ {
		c := d.codes.Get(i)
		d.order[next[c]] = int32(i)
		next[c]++
	}
	d.winLo, d.winHi = 0, n
}

// window returns the sorted position range passing the dimension's current
// filter. Ties at the boundaries fall on the correct side because the
// window is defined purely by value thresholds.
func (d *Dimension) window(n int) (lo, hi int) {
	if !d.active {
		return 0, n
	}
	if d.empty || (d.coded != nil && d.codeEmpty) {
		// Any empty interval is correct for a match-nothing filter;
		// anchoring it at the old window's lower edge minimizes the delta.
		return d.winLo, d.winLo
	}
	if d.coded != nil {
		// Codes ascend with values and offsets[c] is the first sorted
		// position of code c, so the passing window is two offset reads.
		return int(d.offsets[d.cLo]), int(d.offsets[d.cHi+1])
	}
	lo = sort.SearchFloat64s(d.sorted, d.filterLo)
	hi = sort.Search(n, func(p int) bool { return d.sorted[p] > d.filterHi })
	return lo, hi
}

// updateFilter reconciles every record's fail bit for dimension d with the
// dimension's just-updated filter state, choosing between the sorted-index
// delta scan and the full scan. A cancelled ctx aborts the scan at morsel
// granularity, marks the crossfilter dirty (the delta window has already
// moved, so a partial scan cannot be resumed), and returns the ctx error;
// the next update repairs with a full rebuild before applying itself.
func (c *Crossfilter) updateFilter(ctx context.Context, d int, bit uint32) error {
	dim := c.dims[d]
	hasIndex := !dim.hasNaN && dim.order != nil
	var oldLo, oldHi int
	if hasIndex {
		oldLo, oldHi = dim.winLo, dim.winHi
		dim.winLo, dim.winHi = dim.window(c.n)
	}
	if c.dirty {
		// A previous cancelled scan left masks and counts inconsistent; a
		// full rebuild from the dimensions' current filter state (which
		// already includes this update) repairs everything at once.
		c.fullScans++
		if err := c.recomputeAllCtx(ctx); err != nil {
			return err
		}
		c.dirty = false
		return nil
	}
	if !hasIndex || !c.incremental {
		return c.runFull(ctx, d, bit)
	}
	newLo, newHi := dim.winLo, dim.winHi

	// The records whose membership changed are the symmetric difference of
	// the old and new passing windows: the span between the two lower edges
	// plus the span between the two upper edges, merged when they meet.
	// (Overlap would double-visit records, and concurrent workers may not
	// share a record even for an idempotent reconcile.)
	a1, b1 := min(oldLo, newLo), max(oldLo, newLo)
	a2, b2 := min(oldHi, newHi), max(oldHi, newHi)
	var segs [2][2]int
	nseg := 0
	if b1 >= a2 {
		if lo, hi := a1, max(b1, b2); hi > lo {
			segs[0] = [2]int{lo, hi}
			nseg = 1
		}
	} else {
		if b1 > a1 {
			segs[nseg] = [2]int{a1, b1}
			nseg++
		}
		if b2 > a2 {
			segs[nseg] = [2]int{a2, b2}
			nseg++
		}
	}
	total := 0
	for s := 0; s < nseg; s++ {
		total += segs[s][1] - segs[s][0]
	}
	useDelta := float64(total) <= c.crossover*float64(c.n)
	if c.chooser != nil {
		useDelta = c.chooser.ChooseDelta(total, c.n)
	}
	if !useDelta {
		return c.runFull(ctx, d, bit)
	}
	c.deltaScans++
	if total == 0 {
		return ctxDone(ctx)
	}
	if err := c.applyDelta(ctx, d, bit, segs[:nseg], total); err != nil {
		c.dirty = true
		return err
	}
	return nil
}

// runFull routes an update through the full scan, marking the crossfilter
// dirty on cancellation.
func (c *Crossfilter) runFull(ctx context.Context, d int, bit uint32) error {
	c.fullScans++
	if err := c.applyFilter(ctx, d, bit); err != nil {
		c.dirty = true
		return err
	}
	return nil
}

// ctxDone returns ctx.Err() for non-nil contexts; nil contexts never cancel.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// applyDelta reconciles only the records at the given sorted positions.
// Workers own disjoint position ranges of the disjoint segments, hence
// disjoint records — the same ownership discipline as the full scan — and
// accumulate int64 deltas that merge exactly, so the result is identical
// at every worker count. Small deltas (the drag case) run inline with zero
// scheduling overhead. A cancelled ctx aborts between morsels; the caller
// marks the crossfilter dirty.
func (c *Crossfilter) applyDelta(ctx context.Context, d int, bit uint32, segs [][2]int, total int) error {
	dim := c.dims[d]
	workers := 1
	if c.parallelism > 1 && total >= 2*morsel.Size {
		workers = morsel.Workers(c.parallelism, total)
	}
	offs := c.histOffsets()
	totals := make([]int64, workers)
	deltas := make([][]int64, workers)
	for w := range deltas {
		deltas[w] = make([]int64, offs[len(c.dims)])
	}

	seg0lo := segs[0][0]
	seg0len := segs[0][1] - seg0lo
	err := morsel.RunCtx(ctx, total, workers, func(w, _, flo, fhi int) {
		c.scanRecords.Add(int64(fhi - flo))
		delta := deltas[w]
		for f := flo; f < fhi; f++ {
			p := seg0lo + f
			if f >= seg0len {
				p = segs[1][0] + (f - seg0len)
			}
			c.flipRecord(int(dim.order[p]), d, bit, &totals[w], delta, offs)
		}
	})
	if err != nil {
		return err
	}

	c.mergeDeltas(offs, totals, deltas)
	return nil
}
