package crossfilter

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/morsel"
)

// TestSetFilterCtxCancelMarksDirtyAndRepairs is the acceptance check for
// cooperative cancellation in the crossfilter: a pre-cancelled update scans
// zero additional records (workers stop at the next morsel boundary, so a
// pre-cancelled context never claims one), leaves the structure marked
// dirty, and RepairCtx restores exactly the state an uncancelled oracle
// reaches with the same filter sequence.
func TestSetFilterCtxCancelMarksDirtyAndRepairs(t *testing.T) {
	n := 4 * morsel.Size
	roads := dataset.Roads(3, n)
	cf, err := New(roads, []string{"x", "y", "z"}, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := New(roads, []string{"x", "y", "z"}, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}

	// A clean filter first, applied to both.
	cf.SetFilter(0, 8.2, 10.5)
	oracle.SetFilter(0, 8.2, 10.5)
	if cf.Dirty() {
		t.Fatal("dirty after successful update")
	}

	// Cancelled update: the filter window moves but the scan never runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := cf.ScanRecords()
	if err := cf.SetFilterCtx(ctx, 1, 56.2, 56.8); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if scanned := cf.ScanRecords() - before; scanned > morsel.Size {
		t.Fatalf("cancelled update scanned %d records, want <= one morsel (%d)", scanned, morsel.Size)
	}
	if !cf.Dirty() {
		t.Fatal("cancelled update did not mark the crossfilter dirty")
	}

	// Repair rebuilds to the same state as the oracle applying the same
	// final filters cleanly.
	oracle.SetFilter(1, 56.2, 56.8)
	if err := cf.RepairCtx(context.Background()); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if cf.Dirty() {
		t.Fatal("still dirty after repair")
	}
	mustEqualFullState(t, 0, oracle, cf)

	// A cancelled repair stays dirty; a later successful filter update
	// self-repairs before applying.
	if err := cf.SetFilterCtx(ctx, 2, 10, 40); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if err := cf.RepairCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled repair err = %v, want Canceled", err)
	}
	if !cf.Dirty() {
		t.Fatal("cancelled repair cleared the dirty flag")
	}
	oracle.SetFilter(2, 10, 40)
	oracle.SetFilter(0, 8.5, 10.0)
	if err := cf.SetFilterCtx(context.Background(), 0, 8.5, 10.0); err != nil {
		t.Fatalf("self-repairing update: %v", err)
	}
	if cf.Dirty() {
		t.Fatal("successful update left the crossfilter dirty")
	}
	mustEqualFullState(t, 1, oracle, cf)
}

// TestClearFilterCtxCancel: the clear path honors cancellation with the
// same dirty-and-repair contract.
func TestClearFilterCtxCancel(t *testing.T) {
	roads := dataset.Roads(4, 2*morsel.Size)
	cf, err := New(roads, []string{"x", "y"}, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := New(roads, []string{"x", "y"}, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	cf.SetFilter(0, 8.2, 10.5)
	oracle.SetFilter(0, 8.2, 10.5)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cf.ClearFilterCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if !cf.Dirty() {
		t.Fatal("cancelled clear did not mark dirty")
	}
	oracle.ClearFilter(0)
	if err := cf.RepairCtx(nil); err != nil {
		t.Fatalf("repair: %v", err)
	}
	mustEqualFullState(t, 0, oracle, cf)
}
