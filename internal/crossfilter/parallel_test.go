package crossfilter

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/morsel"
)

// TestDifferentialParallelUpdates drives a serial-oracle crossfilter and a
// parallel one through the same seeded sequence of brushes and clears, and
// demands exactly equal totals and histograms after every step, for
// P ∈ {2, 4, 8}.
func TestDifferentialParallelUpdates(t *testing.T) {
	roads := dataset.Roads(4, 5*morsel.Size)
	dims := []string{"x", "y", "z"}
	for _, p := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			serial, err := New(roads, dims, 20)
			if err != nil {
				t.Fatal(err)
			}
			serial.SetParallelism(1)
			parallel, err := New(roads, dims, 20)
			if err != nil {
				t.Fatal(err)
			}
			parallel.SetParallelism(p)

			rng := rand.New(rand.NewSource(int64(300 + p)))
			for step := 0; step < 40; step++ {
				d := rng.Intn(len(dims))
				if rng.Float64() < 0.2 {
					serial.ClearFilter(d)
					parallel.ClearFilter(d)
				} else {
					dim := serial.Dim(d)
					span := dim.Hi - dim.Lo
					lo := dim.Lo + rng.Float64()*span*0.9
					hi := lo + rng.Float64()*(dim.Hi-lo)
					serial.SetFilter(d, lo, hi)
					parallel.SetFilter(d, lo, hi)
				}
				mustEqualState(t, step, serial, parallel)
			}

			// A full rebuild with the final filters must also agree.
			serial.RecomputeAll()
			parallel.RecomputeAll()
			mustEqualState(t, -1, serial, parallel)
		})
	}
}

func mustEqualState(t *testing.T, step int, want, got *Crossfilter) {
	t.Helper()
	if want.Total() != got.Total() {
		t.Fatalf("step %d: total %d vs %d", step, want.Total(), got.Total())
	}
	for d := 0; d < want.NumDims(); d++ {
		wh, gh := want.Histogram(d), got.Histogram(d)
		for b := range wh {
			if wh[b] != gh[b] {
				t.Fatalf("step %d: dim %d bin %d: %d vs %d", step, d, b, wh[b], gh[b])
			}
		}
	}
}

// TestParallelConstructionMatchesSerial checks the parallel bin precompute
// and initial rebuild in New against a fully serial construction.
func TestParallelConstructionMatchesSerial(t *testing.T) {
	roads := dataset.Roads(4, 3*morsel.Size)
	a, err := New(roads, []string{"x", "y"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(roads, []string{"x", "y"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b.SetParallelism(1)
	b.RecomputeAll()
	mustEqualState(t, 0, b, a)
}
