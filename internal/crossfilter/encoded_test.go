package crossfilter

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/storage"
)

// encTable builds a table whose columns freeze into each dimension-relevant
// shape: quantized floats (dict codes), narrow ints (frame-of-reference
// codes), and dense floats (plain passthrough, slice-borrowed).
func encTable(seed int64, n int) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	xq := make([]float64, n)
	lanes := make([]int64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xq[i] = float64(rng.Intn(2000)-1000) / 250
		lanes[i] = int64(100 + rng.Intn(900))
		y[i] = rng.NormFloat64() * 3
	}
	return &storage.Table{
		Name: "enc",
		Schema: storage.Schema{
			{Name: "xq", Type: storage.Float64},
			{Name: "lanes", Type: storage.Int64},
			{Name: "y", Type: storage.Float64},
		},
		Columns: []*storage.Column{
			{Type: storage.Float64, Floats: xq},
			{Type: storage.Int64, Ints: lanes},
			{Type: storage.Float64, Floats: y},
		},
		PageRows: storage.DefaultPageRows,
	}
}

// assertSameState compares every observable count of two crossfilters.
func assertSameState(t *testing.T, label string, got, want *Crossfilter) {
	t.Helper()
	if got.Total() != want.Total() {
		t.Fatalf("%s: total %d vs %d", label, got.Total(), want.Total())
	}
	for d := 0; d < want.NumDims(); d++ {
		g, w := got.Histogram(d), want.Histogram(d)
		for b := range w {
			if g[b] != w[b] {
				t.Fatalf("%s: dim %d bin %d: %d vs %d", label, d, b, g[b], w[b])
			}
		}
	}
}

// TestEncodedCrossfilterMatchesPlain drives randomized brush sequences
// (drags, jumps, clears, empty and inverted filters) through a crossfilter
// over the frozen table and one over the raw table, across parallelism and
// incremental settings. Every observable count must match at every step.
func TestEncodedCrossfilterMatchesPlain(t *testing.T) {
	n := 60_000
	raw := encTable(17, n)
	frozen, err := colstore.Freeze(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	dims := []string{"xq", "lanes", "y"}

	for _, par := range []int{1, 4, 8} {
		for _, incr := range []bool{false, true} {
			want, err := New(raw, dims, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(frozen, dims, 0)
			if err != nil {
				t.Fatal(err)
			}
			// The compressed dimensions must actually run in code space and
			// the plain-float dimension must not.
			if !got.Dim(0).Coded() || !got.Dim(1).Coded() || got.Dim(2).Coded() {
				t.Fatalf("coded flags: %v %v %v, want true true false",
					got.Dim(0).Coded(), got.Dim(1).Coded(), got.Dim(2).Coded())
			}
			if want.Dim(0).Coded() || want.Dim(1).Coded() {
				t.Fatal("raw-table dimensions claim to be coded")
			}
			for _, c := range []*Crossfilter{want, got} {
				c.SetParallelism(par)
				c.SetIncremental(incr)
			}
			assertSameState(t, "initial", got, want)

			rng := rand.New(rand.NewSource(int64(par)*100 + int64(len(dims))))
			domains := [][2]float64{{-4, 4}, {100, 1000}, {-10, 10}}
			// Persistent brush edges per dimension, nudged like a drag.
			edges := [][2]float64{{-1, 1}, {300, 700}, {-2, 2}}
			for step := 0; step < 120; step++ {
				d := rng.Intn(len(dims))
				switch rng.Intn(10) {
				case 0:
					want.ClearFilter(d)
					got.ClearFilter(d)
				case 1: // jump: new random brush
					lo := domains[d][0] + rng.Float64()*(domains[d][1]-domains[d][0])
					hi := domains[d][0] + rng.Float64()*(domains[d][1]-domains[d][0])
					edges[d] = [2]float64{lo, hi} // may be inverted → empty filter
					want.SetFilter(d, lo, hi)
					got.SetFilter(d, lo, hi)
				default: // drag: nudge one edge
					span := domains[d][1] - domains[d][0]
					e := rng.Intn(2)
					edges[d][e] += (rng.Float64() - 0.5) * span * 0.05
					want.SetFilter(d, edges[d][0], edges[d][1])
					got.SetFilter(d, edges[d][0], edges[d][1])
				}
				assertSameState(t, "step", got, want)
			}
			if incr {
				gd, _ := got.ScanStats()
				wd, _ := want.ScanStats()
				if gd == 0 || wd == 0 {
					t.Fatalf("delta path never taken (encoded %d, plain %d)", gd, wd)
				}
			}
		}
	}
}

// TestEncodedCrossfilterExactCodeBoundaries pins filter bounds exactly on
// dictionary values and one ULP around them — the edges where code-interval
// translation could diverge from float comparison.
func TestEncodedCrossfilterExactCodeBoundaries(t *testing.T) {
	n := 5_000
	raw := encTable(3, n)
	frozen, err := colstore.Freeze(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(raw, []string{"xq", "lanes"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(frozen, []string{"xq", "lanes"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := raw.Column("xq").Floats
	for _, lo := range []float64{xs[0], xs[7], xs[99]} {
		for _, hi := range []float64{xs[1], xs[42], lo} {
			want.SetFilter(0, lo, hi)
			got.SetFilter(0, lo, hi)
			assertSameState(t, "float boundary", got, want)
		}
	}
	// Integer dimension: fractional and exact bounds.
	for _, b := range [][2]float64{{100, 100}, {100.5, 900}, {99.9, 100.1}, {500.2, 500.8}, {901, 1000}} {
		want.SetFilter(1, b[0], b[1])
		got.SetFilter(1, b[0], b[1])
		assertSameState(t, "int boundary", got, want)
	}
}
