// Package crossfilter implements a coordinated-view filtering engine over
// numeric dimensions — the stand-in for the crossfilter.js library the
// paper's second case study builds its brushing-and-linking interface on.
//
// Semantics follow crossfilter.js: each dimension owns one range filter,
// and each dimension's histogram reflects the filters of every *other*
// dimension (so the user sees, while brushing dimension k, how the brush
// reshapes the remaining views). Filter updates are incremental: only
// records whose filter membership changed are reprocessed, which is what
// lets the real library sustain sub-30 ms updates over ~10⁶ records.
package crossfilter

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/morsel"
	"repro/internal/storage"
)

// DefaultBins matches the paper's 20-bin histograms.
const DefaultBins = 20

// Dimension is one filterable numeric attribute.
type Dimension struct {
	Name string
	Lo   float64 // domain minimum
	Hi   float64 // domain maximum
	Bins int

	values   []float64
	bins     []int32 // precomputed bin per record
	filterLo float64
	filterHi float64
	active   bool
	empty    bool // filter normalized to match-nothing (NaN or inverted bounds)

	// Code-space state: when the backing column is colstore-encoded with
	// order-preserving codes of manageable span, the dimension runs on the
	// column's packed codes directly — values and bins stay nil (saving
	// 12 bytes/record), the filter translates once per update into the code
	// interval [cLo, cHi], per-record work becomes a packed read plus a LUT
	// lookup, and the sorted permutation comes from a counting sort whose
	// per-code prefix positions (offsets) replace the sorted-values array
	// (another 8 bytes/record) for window binary searches.
	coded     colstore.Coded
	codes     *colstore.PackedInts
	binLUT    []int32 // histogram bin per code
	offsets   []int32 // len card+1: sorted positions of code c are [offsets[c], offsets[c+1])
	cLo, cHi  uint64
	codeEmpty bool // active filter's range contains no code's value

	// Sorted-index delta state (delta.go): order is the permutation of
	// record indexes sorted by value, sorted holds the values in that order
	// (for cache-friendly binary search), and [winLo, winHi) is the sorted
	// position range currently passing this dimension's filter. hasNaN
	// disables the delta path — NaN has no position in a sorted order.
	order  []int32
	sorted []float64
	winLo  int
	winHi  int
	hasNaN bool
}

// codeLUTCap bounds the code span a dimension will build per-code tables
// for (bin LUT, prefix offsets): 1<<22 codes ≈ 16 MB of int32 LUT, far past
// any dictionary Freeze builds and most frame-of-reference spans.
const codeLUTCap = 1 << 22

// Coded reports whether the dimension runs in code space.
func (d *Dimension) Coded() bool { return d.coded != nil }

// FilterLo returns the active filter's lower bound; meaningful only when
// Filtered.
func (d *Dimension) FilterLo() float64 { return d.filterLo }

// FilterHi returns the active filter's upper bound.
func (d *Dimension) FilterHi() float64 { return d.filterHi }

// Filtered reports whether the dimension has an active range filter.
func (d *Dimension) Filtered() bool { return d.active }

// fails reports whether a value fails the dimension's current filter. An
// empty filter (inverted or NaN bounds) fails every record; NaN *values*
// keep their historical pass-always behavior — they have no place in a
// sorted order, so dimensions containing them pin the full-scan path.
func (d *Dimension) fails(v float64) bool {
	if !d.active {
		return false
	}
	if d.empty {
		return true
	}
	return v < d.filterLo || v > d.filterHi
}

// failRecord reports whether record i fails the dimension's current filter
// — the per-record form of fails, reading the packed code in code-space
// mode (where the filter is a code interval, compared branchlessly) and the
// materialized value otherwise. Code-space dimensions never contain NaN
// (Freeze keeps NaN-containing columns Plain), so the two forms agree
// exactly.
func (d *Dimension) failRecord(i int) bool {
	if !d.active {
		return false
	}
	if d.empty {
		return true
	}
	if d.coded != nil {
		if d.codeEmpty {
			return true
		}
		c := d.codes.Get(i)
		return c-d.cLo > d.cHi-d.cLo // unsigned wrap: true for c < cLo too
	}
	v := d.values[i]
	return v < d.filterLo || v > d.filterHi
}

// binRecord returns record i's histogram bin: a code LUT lookup in
// code-space mode, the precomputed per-record bin otherwise.
func (d *Dimension) binRecord(i int) int32 {
	if d.binLUT != nil {
		return d.binLUT[d.codes.Get(i)]
	}
	return d.bins[i]
}

// BinOf returns the histogram bin of a value in this dimension's domain.
func (d *Dimension) BinOf(v float64) int {
	if d.Hi <= d.Lo {
		return 0
	}
	b := int(math.Floor((v - d.Lo) / (d.Hi - d.Lo) * float64(d.Bins)))
	if b < 0 {
		b = 0
	}
	if b >= d.Bins {
		b = d.Bins - 1
	}
	return b
}

// Crossfilter coordinates filters and histograms across dimensions.
type Crossfilter struct {
	dims  []*Dimension
	n     int
	masks []uint32  // bit d set ⇒ record fails dimension d's filter
	hists [][]int64 // hists[d][bin]: records passing all filters except d's
	total int64     // records passing all filters

	// parallelism is the worker count for morsel-parallel filter updates
	// and rebuilds; 1 pins the serial path. Updates are deterministic at
	// every level: each record's mask is owned by exactly one worker, and
	// the histogram/total deltas are int64 counts whose merge is exact in
	// any order.
	parallelism int

	// incremental enables the sorted-index delta path (delta.go); false
	// pins the full-scan implementation, the differential-test oracle.
	// crossover is the delta fraction above which the full scan wins.
	// chooser, when non-nil, overrides crossover with a per-update
	// cost-model decision (planner wiring).
	incremental bool
	crossover   float64
	chooser     ScanChooser
	deltaScans  int64
	fullScans   int64

	// dirty is set when a cancelled context aborted a scan mid-update:
	// masks, histograms, and total are then mutually inconsistent (a delta
	// window cannot be resumed — it was advanced before the scan ran). The
	// next filter update repairs by full rebuild before doing anything else.
	dirty bool

	// scanRecords counts records visited by filter-update scans, bumped once
	// per morsel (atomic: workers run concurrently). Tests use it to assert
	// that cancellation stops scan work within one morsel per worker.
	scanRecords atomic.Int64
}

// SetParallelism sets the worker count for filter updates and rebuilds.
// 1 selects the serial path (the differential-test oracle); values below 1
// are clamped to runtime.GOMAXPROCS(0). Not safe to call concurrently with
// SetFilter/ClearFilter.
func (c *Crossfilter) SetParallelism(p int) {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	c.parallelism = p
}

// Parallelism returns the configured worker count.
func (c *Crossfilter) Parallelism() int { return c.parallelism }

// workers returns the effective worker count for the record count, forcing
// the serial path below two morsels.
func (c *Crossfilter) workers() int {
	if c.parallelism <= 1 || c.n < 2*morsel.Size {
		return 1
	}
	return morsel.Workers(c.parallelism, c.n)
}

// DimSpec pins one dimension's domain explicitly. Shard replicas use it:
// every shard must bin against the *global* [Lo, Hi], not its partition's
// local min/max, or per-shard histograms stop being addable.
type DimSpec struct {
	Name   string
	Lo, Hi float64
}

// New builds a crossfilter over the named numeric columns of the table,
// with the given histogram bin count (0 means DefaultBins). Domains are
// taken from each column's min/max.
func New(table *storage.Table, dimNames []string, bins int) (*Crossfilter, error) {
	specs := make([]DimSpec, len(dimNames))
	for i, name := range dimNames {
		lo, hi, _ := table.MinMax(name)
		specs[i] = DimSpec{Name: name, Lo: lo, Hi: hi}
	}
	return NewWithBounds(table, specs, bins)
}

// NewWithBounds builds a crossfilter with explicit per-dimension domains.
// Identical to New except the bin edges come from the specs, which is what
// keeps histograms of disjoint partitions of one table merge-compatible.
func NewWithBounds(table *storage.Table, specs []DimSpec, bins int) (*Crossfilter, error) {
	if bins <= 0 {
		bins = DefaultBins
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("crossfilter: no dimensions")
	}
	if len(specs) > 32 {
		return nil, fmt.Errorf("crossfilter: at most 32 dimensions (got %d)", len(specs))
	}
	n := table.NumRows()
	c := &Crossfilter{
		n: n, masks: make([]uint32, n),
		parallelism: runtime.GOMAXPROCS(0),
		incremental: true, crossover: DefaultCrossover,
	}
	for _, spec := range specs {
		name := spec.Name
		col := table.Column(name)
		if col == nil {
			return nil, fmt.Errorf("crossfilter: no column %q in table %q", name, table.Name)
		}
		if col.Type == storage.String {
			return nil, fmt.Errorf("crossfilter: column %q is not numeric", name)
		}
		d := &Dimension{Name: name, Lo: spec.Lo, Hi: spec.Hi, Bins: bins}
		if enc, ok := colstore.Of(col); ok && n > 0 {
			if coded, isCoded := enc.(colstore.Coded); isCoded && coded.CodeSpan() < codeLUTCap {
				// Code-space mode: share the column's packed codes, bin once
				// per code, and counting-sort the delta permutation.
				d.coded = coded
				d.codes = coded.Codes()
				card := int(coded.CodeSpan()) + 1
				d.binLUT = make([]int32, card)
				for code := 0; code < card; code++ {
					d.binLUT[code] = int32(d.BinOf(coded.DecodeFloat(uint64(code))))
				}
				d.buildCodeIndex(n)
				c.dims = append(c.dims, d)
				continue
			}
		}
		d.bins = make([]int32, n)
		if fs, ok := colstore.FloatSliceOf(col); ok {
			// Plain-float passthrough: borrow the slice instead of copying
			// 8 bytes/record.
			d.values = fs
			morsel.Run(n, c.workers(), func(_, _, lo, hi int) {
				for i := lo; i < hi; i++ {
					d.bins[i] = int32(d.BinOf(d.values[i]))
				}
			})
		} else {
			d.values = make([]float64, n)
			// Each slot is computed independently from the column, so workers
			// writing disjoint ranges produce the exact serial result.
			morsel.Run(n, c.workers(), func(_, _, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := col.Float(i)
					d.values[i] = v
					d.bins[i] = int32(d.BinOf(v))
				}
			})
		}
		d.buildIndex(n)
		c.dims = append(c.dims, d)
	}
	c.hists = make([][]int64, len(c.dims))
	for i := range c.hists {
		c.hists[i] = make([]int64, bins)
	}
	c.recomputeAll()
	return c, nil
}

// NumRecords returns the record count.
func (c *Crossfilter) NumRecords() int { return c.n }

// NumDims returns the dimension count.
func (c *Crossfilter) NumDims() int { return len(c.dims) }

// Dim returns dimension d.
func (c *Crossfilter) Dim(d int) *Dimension { return c.dims[d] }

// DimIndex returns the index of the named dimension, or -1.
func (c *Crossfilter) DimIndex(name string) int {
	for i, d := range c.dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Total returns the number of records passing every active filter (the
// paper's count aggregation).
func (c *Crossfilter) Total() int64 { return c.total }

// Histogram returns dimension d's histogram: counts of records passing all
// *other* dimensions' filters, binned by d's value. The returned slice is
// a copy.
func (c *Crossfilter) Histogram(d int) []int64 {
	out := make([]int64, len(c.hists[d]))
	copy(out, c.hists[d])
	return out
}

// Histograms returns all histograms (copies), indexed by dimension.
func (c *Crossfilter) Histograms() [][]int64 {
	out := make([][]int64, len(c.dims))
	for d := range c.dims {
		out[d] = c.Histogram(d)
	}
	return out
}

// SetFilter sets dimension d's range filter to [lo, hi] and updates every
// histogram incrementally. With the delta path enabled only the records
// between the old and new filter boundaries (found by binary search into
// the dimension's sorted order) are touched — O(Δ log n) per drag step —
// falling back to the full scan past the crossover fraction.
//
// Inverted (lo > hi) or NaN bounds cannot match any record: they are
// normalized to an empty filter rather than the pass-all state a NaN
// comparison would silently yield.
func (c *Crossfilter) SetFilter(d int, lo, hi float64) {
	_ = c.SetFilterCtx(nil, d, lo, hi)
}

// SetFilterCtx is SetFilter under a context: an expired or cancelled ctx
// aborts the update's scan at morsel granularity and returns the context's
// error. After a cancelled update the crossfilter's counts are inconsistent
// (Dirty reports true) until the next successful filter update, which
// repairs them with a full rebuild before applying itself. A nil ctx is
// never cancelled and behaves exactly like SetFilter.
func (c *Crossfilter) SetFilterCtx(ctx context.Context, d int, lo, hi float64) error {
	dim := c.dims[d]
	bit := uint32(1) << uint(d)
	dim.filterLo, dim.filterHi, dim.active = lo, hi, true
	dim.empty = math.IsNaN(lo) || math.IsNaN(hi) || lo > hi
	if dim.coded != nil && !dim.empty {
		// Translate the value range into code space once; every record then
		// compares its packed code against [cLo, cHi].
		var ok bool
		dim.cLo, dim.cHi, ok = dim.coded.CodeRange(lo, hi)
		dim.codeEmpty = !ok
	}
	return c.updateFilter(ctx, d, bit)
}

// ClearFilter removes dimension d's filter.
func (c *Crossfilter) ClearFilter(d int) {
	_ = c.ClearFilterCtx(nil, d)
}

// ClearFilterCtx is ClearFilter under a context, with the same cancellation
// contract as SetFilterCtx.
func (c *Crossfilter) ClearFilterCtx(ctx context.Context, d int) error {
	dim := c.dims[d]
	bit := uint32(1) << uint(d)
	dim.active, dim.empty, dim.codeEmpty = false, false, false
	return c.updateFilter(ctx, d, bit)
}

// Dirty reports whether a cancelled update left the counts inconsistent.
// The next successful filter update (or RepairCtx) clears it.
func (c *Crossfilter) Dirty() bool { return c.dirty }

// RepairCtx rebuilds every count from scratch if a cancelled update left
// them inconsistent. A no-op when clean.
func (c *Crossfilter) RepairCtx(ctx context.Context) error {
	if !c.dirty {
		return nil
	}
	c.fullScans++
	if err := c.recomputeAllCtx(ctx); err != nil {
		return err
	}
	c.dirty = false
	return nil
}

// ScanRecords returns the cumulative number of records visited by filter
// updates and rebuilds, maintained at morsel granularity.
func (c *Crossfilter) ScanRecords() int64 { return c.scanRecords.Load() }

// applyFilter recomputes dimension d's fail bit for every record, applying
// histogram deltas for records that changed — the full-scan path, and the
// oracle the delta scan is differentially tested against.
//
// The scan is morsel-parallel: each worker owns disjoint records (masks
// write in place) and accumulates its histogram and total changes into
// private int64 delta buffers, merged exactly after the scan. Results are
// identical to the serial path at every worker count. A cancelled ctx
// aborts between morsels; masks already flipped stay flipped, so the caller
// must mark the crossfilter dirty.
func (c *Crossfilter) applyFilter(ctx context.Context, d int, bit uint32) error {
	workers := c.workers()
	offs := c.histOffsets()
	totals := make([]int64, workers)
	deltas := make([][]int64, workers)
	for w := range deltas {
		deltas[w] = make([]int64, offs[len(c.dims)])
	}

	err := morsel.RunCtx(ctx, c.n, workers, func(w, _, lo, hi int) {
		c.scanRecords.Add(int64(hi - lo))
		delta := deltas[w]
		for i := lo; i < hi; i++ {
			c.flipRecord(i, d, bit, &totals[w], delta, offs)
		}
	})
	if err != nil {
		return err
	}

	c.mergeDeltas(offs, totals, deltas)
	return nil
}

// flipRecord reconciles record i's fail bit for dimension d against the
// dimension's current filter, accumulating total and histogram deltas.
// Shared by the full scan and the sorted-index delta scan so the two paths
// cannot drift.
func (c *Crossfilter) flipRecord(i, d int, bit uint32, total *int64, delta []int64, offs []int) {
	dim := c.dims[d]
	oldFail := c.masks[i]&bit != 0
	newFail := dim.failRecord(i)
	if oldFail == newFail {
		return
	}
	oldMask := c.masks[i]
	var newMask uint32
	if newFail {
		newMask = oldMask | bit
	} else {
		newMask = oldMask &^ bit
	}
	c.masks[i] = newMask

	// Total: passes all filters.
	if oldMask == 0 {
		*total--
	}
	if newMask == 0 {
		*total++
	}
	// Histograms: record contributes to hist[k] iff it passes all filters
	// except k's. Flipping bit d changes contribution for every k whose
	// remaining mask is affected.
	for k, kd := range c.dims {
		kbit := uint32(1) << uint(k)
		oldIn := oldMask&^kbit == 0
		newIn := newMask&^kbit == 0
		if oldIn == newIn {
			continue
		}
		b := kd.binRecord(i)
		if newIn {
			delta[offs[k]+int(b)]++
		} else {
			delta[offs[k]+int(b)]--
		}
	}
}

// histOffsets flattens the per-dimension histograms into one delta buffer
// layout: dimension k's bins occupy [offs[k], offs[k+1]).
func (c *Crossfilter) histOffsets() []int {
	offs := make([]int, len(c.dims)+1)
	for k := range c.dims {
		offs[k+1] = offs[k] + len(c.hists[k])
	}
	return offs
}

// mergeDeltas folds per-worker totals and histogram deltas into the live
// counters. Integer addition commutes, so the merge is exact regardless of
// worker scheduling.
func (c *Crossfilter) mergeDeltas(offs []int, totals []int64, deltas [][]int64) {
	for _, t := range totals {
		c.total += t
	}
	for _, delta := range deltas {
		for k := range c.dims {
			h := c.hists[k]
			for b := range h {
				h[b] += delta[offs[k]+b]
			}
		}
	}
}

// recomputeAll rebuilds every histogram and the total from scratch. Used at
// construction and exposed (via RecomputeAll) as the non-incremental
// baseline for the ablation benchmark. Morsel-parallel like applyFilter:
// per-worker count deltas merge exactly, so the rebuild matches the serial
// path at every worker count.
func (c *Crossfilter) recomputeAll() { _ = c.recomputeAllCtx(nil) }

// recomputeAllCtx is recomputeAll under a context. It recomputes every mask
// from the dimensions' current filter state, so it both rebuilds and repairs
// — a partially applied cancelled update does not confuse it. On
// cancellation it returns the ctx error and the structure stays (or
// becomes) inconsistent; the caller keeps it marked dirty.
func (c *Crossfilter) recomputeAllCtx(ctx context.Context) error {
	workers := c.workers()
	offs := c.histOffsets()
	totals := make([]int64, workers)
	deltas := make([][]int64, workers)
	for w := range deltas {
		deltas[w] = make([]int64, offs[len(c.dims)])
	}

	err := morsel.RunCtx(ctx, c.n, workers, func(w, _, lo, hi int) {
		c.scanRecords.Add(int64(hi - lo))
		delta := deltas[w]
		for i := lo; i < hi; i++ {
			var mask uint32
			for d, dim := range c.dims {
				if dim.failRecord(i) {
					mask |= 1 << uint(d)
				}
			}
			c.masks[i] = mask
			if mask == 0 {
				totals[w]++
			}
			for d, dim := range c.dims {
				if mask&^(1<<uint(d)) == 0 {
					delta[offs[d]+int(dim.binRecord(i))]++
				}
			}
		}
	})
	if err != nil {
		c.dirty = true
		return err
	}

	c.total = 0
	for d := range c.hists {
		for b := range c.hists[d] {
			c.hists[d][b] = 0
		}
	}
	c.mergeDeltas(offs, totals, deltas)
	return nil
}

// RecomputeAll performs a full non-incremental rebuild with the current
// filters. Results are identical to the incremental path; it exists to
// quantify the cost of not being incremental.
func (c *Crossfilter) RecomputeAll() { c.recomputeAll() }
