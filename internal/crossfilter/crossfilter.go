// Package crossfilter implements a coordinated-view filtering engine over
// numeric dimensions — the stand-in for the crossfilter.js library the
// paper's second case study builds its brushing-and-linking interface on.
//
// Semantics follow crossfilter.js: each dimension owns one range filter,
// and each dimension's histogram reflects the filters of every *other*
// dimension (so the user sees, while brushing dimension k, how the brush
// reshapes the remaining views). Filter updates are incremental: only
// records whose filter membership changed are reprocessed, which is what
// lets the real library sustain sub-30 ms updates over ~10⁶ records.
package crossfilter

import (
	"fmt"
	"math"

	"repro/internal/storage"
)

// DefaultBins matches the paper's 20-bin histograms.
const DefaultBins = 20

// Dimension is one filterable numeric attribute.
type Dimension struct {
	Name string
	Lo   float64 // domain minimum
	Hi   float64 // domain maximum
	Bins int

	values   []float64
	bins     []int32 // precomputed bin per record
	filterLo float64
	filterHi float64
	active   bool
}

// FilterLo returns the active filter's lower bound; meaningful only when
// Filtered.
func (d *Dimension) FilterLo() float64 { return d.filterLo }

// FilterHi returns the active filter's upper bound.
func (d *Dimension) FilterHi() float64 { return d.filterHi }

// Filtered reports whether the dimension has an active range filter.
func (d *Dimension) Filtered() bool { return d.active }

// BinOf returns the histogram bin of a value in this dimension's domain.
func (d *Dimension) BinOf(v float64) int {
	if d.Hi <= d.Lo {
		return 0
	}
	b := int(math.Floor((v - d.Lo) / (d.Hi - d.Lo) * float64(d.Bins)))
	if b < 0 {
		b = 0
	}
	if b >= d.Bins {
		b = d.Bins - 1
	}
	return b
}

// Crossfilter coordinates filters and histograms across dimensions.
type Crossfilter struct {
	dims  []*Dimension
	n     int
	masks []uint32  // bit d set ⇒ record fails dimension d's filter
	hists [][]int64 // hists[d][bin]: records passing all filters except d's
	total int64     // records passing all filters
}

// New builds a crossfilter over the named numeric columns of the table,
// with the given histogram bin count (0 means DefaultBins).
func New(table *storage.Table, dimNames []string, bins int) (*Crossfilter, error) {
	if bins <= 0 {
		bins = DefaultBins
	}
	if len(dimNames) == 0 {
		return nil, fmt.Errorf("crossfilter: no dimensions")
	}
	if len(dimNames) > 32 {
		return nil, fmt.Errorf("crossfilter: at most 32 dimensions (got %d)", len(dimNames))
	}
	n := table.NumRows()
	c := &Crossfilter{n: n, masks: make([]uint32, n)}
	for _, name := range dimNames {
		col := table.Column(name)
		if col == nil {
			return nil, fmt.Errorf("crossfilter: no column %q in table %q", name, table.Name)
		}
		if col.Type == storage.String {
			return nil, fmt.Errorf("crossfilter: column %q is not numeric", name)
		}
		lo, hi, _ := table.MinMax(name)
		d := &Dimension{Name: name, Lo: lo, Hi: hi, Bins: bins}
		d.values = make([]float64, n)
		d.bins = make([]int32, n)
		for i := 0; i < n; i++ {
			v := col.Float(i)
			d.values[i] = v
			d.bins[i] = int32(d.BinOf(v))
		}
		c.dims = append(c.dims, d)
	}
	c.hists = make([][]int64, len(c.dims))
	for i := range c.hists {
		c.hists[i] = make([]int64, bins)
	}
	c.recomputeAll()
	return c, nil
}

// NumRecords returns the record count.
func (c *Crossfilter) NumRecords() int { return c.n }

// NumDims returns the dimension count.
func (c *Crossfilter) NumDims() int { return len(c.dims) }

// Dim returns dimension d.
func (c *Crossfilter) Dim(d int) *Dimension { return c.dims[d] }

// DimIndex returns the index of the named dimension, or -1.
func (c *Crossfilter) DimIndex(name string) int {
	for i, d := range c.dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Total returns the number of records passing every active filter (the
// paper's count aggregation).
func (c *Crossfilter) Total() int64 { return c.total }

// Histogram returns dimension d's histogram: counts of records passing all
// *other* dimensions' filters, binned by d's value. The returned slice is
// a copy.
func (c *Crossfilter) Histogram(d int) []int64 {
	out := make([]int64, len(c.hists[d]))
	copy(out, c.hists[d])
	return out
}

// Histograms returns all histograms (copies), indexed by dimension.
func (c *Crossfilter) Histograms() [][]int64 {
	out := make([][]int64, len(c.dims))
	for d := range c.dims {
		out[d] = c.Histogram(d)
	}
	return out
}

// SetFilter sets dimension d's range filter to [lo, hi] and updates every
// histogram incrementally: only records whose membership in d's filter
// changed are touched.
func (c *Crossfilter) SetFilter(d int, lo, hi float64) {
	dim := c.dims[d]
	bit := uint32(1) << uint(d)
	dim.filterLo, dim.filterHi, dim.active = lo, hi, true
	c.applyFilter(d, bit, func(v float64) bool { return v < lo || v > hi })
}

// ClearFilter removes dimension d's filter.
func (c *Crossfilter) ClearFilter(d int) {
	dim := c.dims[d]
	bit := uint32(1) << uint(d)
	dim.active = false
	c.applyFilter(d, bit, func(float64) bool { return false })
}

// applyFilter recomputes dimension d's fail bit for every record, applying
// histogram deltas for records that changed.
func (c *Crossfilter) applyFilter(d int, bit uint32, fails func(float64) bool) {
	dim := c.dims[d]
	for i := 0; i < c.n; i++ {
		oldFail := c.masks[i]&bit != 0
		newFail := fails(dim.values[i])
		if oldFail == newFail {
			continue
		}
		oldMask := c.masks[i]
		var newMask uint32
		if newFail {
			newMask = oldMask | bit
		} else {
			newMask = oldMask &^ bit
		}
		c.masks[i] = newMask

		// Total: passes all filters.
		if oldMask == 0 {
			c.total--
		}
		if newMask == 0 {
			c.total++
		}
		// Histograms: record contributes to hist[k] iff it passes all
		// filters except k's. Flipping bit d changes contribution for every
		// k whose remaining mask is affected.
		for k, kd := range c.dims {
			kbit := uint32(1) << uint(k)
			oldIn := oldMask&^kbit == 0
			newIn := newMask&^kbit == 0
			if oldIn == newIn {
				continue
			}
			b := kd.bins[i]
			if newIn {
				c.hists[k][b]++
			} else {
				c.hists[k][b]--
			}
		}
	}
}

// recomputeAll rebuilds every histogram and the total from scratch. Used at
// construction and exposed (via RecomputeAll) as the non-incremental
// baseline for the ablation benchmark.
func (c *Crossfilter) recomputeAll() {
	c.total = 0
	for d := range c.hists {
		for b := range c.hists[d] {
			c.hists[d][b] = 0
		}
	}
	for i := 0; i < c.n; i++ {
		var mask uint32
		for d, dim := range c.dims {
			if dim.active && (dim.values[i] < dim.filterLo || dim.values[i] > dim.filterHi) {
				mask |= 1 << uint(d)
			}
		}
		c.masks[i] = mask
		if mask == 0 {
			c.total++
		}
		for d, dim := range c.dims {
			if mask&^(1<<uint(d)) == 0 {
				c.hists[d][dim.bins[i]]++
			}
		}
	}
}

// RecomputeAll performs a full non-incremental rebuild with the current
// filters. Results are identical to the incremental path; it exists to
// quantify the cost of not being incremental.
func (c *Crossfilter) RecomputeAll() { c.recomputeAll() }
