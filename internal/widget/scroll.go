// Package widget implements the query-interface widgets the case studies
// exercise: an inertial scroll view (case study 1), a range slider bound to
// crossfilter dimensions (case study 2), and a web-mercator map view plus
// discrete filter widgets (case study 3). Each widget turns user input into
// the event records of internal/trace and, ultimately, into queries.
package widget

import (
	"math"
	"time"

	"repro/internal/trace"
)

// DefaultFrame is the UI frame interval (~60 Hz).
const DefaultFrame = 16 * time.Millisecond

// ScrollView models a scrollable result list with optional inertial
// (momentum) scrolling. With inertia, a flick deposits velocity that decays
// by Friction each frame, so a single gesture coasts across hundreds of
// tuples — the paper's Figure 7a. Without inertia, content moves only while
// the wheel turns (Figure 7b).
type ScrollView struct {
	TupleHeight float64 // pixels per tuple row
	NumTuples   int
	Inertial    bool
	Friction    float64       // per-frame velocity retention, (0,1)
	MinVelocity float64       // px/frame below which coasting stops
	FrameEvery  time.Duration // frame interval

	pos float64 // scrollTop in pixels
	vel float64 // px per frame (positive scrolls down)
}

// NewScrollView builds a scroll view with the standard parameters: 60 Hz
// frames, friction 0.94 (inertial only).
func NewScrollView(numTuples int, tupleHeight float64, inertial bool) *ScrollView {
	return &ScrollView{
		TupleHeight: tupleHeight,
		NumTuples:   numTuples,
		Inertial:    inertial,
		Friction:    0.94,
		MinVelocity: 0.5,
		FrameEvery:  DefaultFrame,
	}
}

// Pos returns the current scrollTop in pixels.
func (s *ScrollView) Pos() float64 { return s.pos }

// Velocity returns the current coasting velocity in px/frame.
func (s *ScrollView) Velocity() float64 { return s.vel }

// TupleAt converts a pixel offset to a tuple index, clamped to the list.
func (s *ScrollView) TupleAt(px float64) int {
	i := int(px / s.TupleHeight)
	if i < 0 {
		i = 0
	}
	if i >= s.NumTuples {
		i = s.NumTuples - 1
	}
	return i
}

// maxPos is the scroll limit in pixels.
func (s *ScrollView) maxPos() float64 {
	return float64(s.NumTuples) * s.TupleHeight
}

// Flick adds velocity from a flick gesture (px/frame). On a non-inertial
// view a flick scrolls immediately by the impulse and deposits no velocity.
func (s *ScrollView) Flick(impulse float64) {
	if s.Inertial {
		s.vel += impulse
		return
	}
	s.move(impulse)
}

// Stop kills any coasting velocity (finger touches down).
func (s *ScrollView) Stop() { s.vel = 0 }

// Coasting reports whether the view is still moving.
func (s *ScrollView) Coasting() bool { return math.Abs(s.vel) >= s.MinVelocity }

// Step advances one frame at virtual time now. It returns the scroll event
// for the frame and whether the view moved.
func (s *ScrollView) Step(now time.Duration) (trace.ScrollEvent, bool) {
	if !s.Coasting() {
		s.vel = 0
		return trace.ScrollEvent{}, false
	}
	delta := s.move(s.vel)
	s.vel *= s.Friction
	if delta == 0 {
		// Hit an edge: momentum dies.
		s.vel = 0
		return trace.ScrollEvent{}, false
	}
	return trace.ScrollEvent{
		At:        now,
		ScrollTop: s.pos,
		ScrollNum: s.TupleAt(s.pos),
		Delta:     delta,
	}, true
}

// Wheel applies a direct (non-inertial) wheel tick of the given pixel delta
// at time now, returning the event.
func (s *ScrollView) Wheel(now time.Duration, delta float64) (trace.ScrollEvent, bool) {
	moved := s.move(delta)
	if moved == 0 {
		return trace.ScrollEvent{}, false
	}
	return trace.ScrollEvent{
		At:        now,
		ScrollTop: s.pos,
		ScrollNum: s.TupleAt(s.pos),
		Delta:     moved,
	}, true
}

// move shifts the position by delta px, clamped, returning the achieved
// delta.
func (s *ScrollView) move(delta float64) float64 {
	old := s.pos
	s.pos += delta
	if s.pos < 0 {
		s.pos = 0
	}
	if mx := s.maxPos(); s.pos > mx {
		s.pos = mx
	}
	return s.pos - old
}
