package widget

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MapView is a slippy-map viewport in the web-mercator tile scheme: a zoom
// level, a center, and a pixel viewport, from which visible bounds and tile
// keys follow. It is the dominant widget of the composite-interface case
// study (62.8% of queries) and the unit the tile prefetchers operate on.
type MapView struct {
	Zoom      int // tile zoom level
	CenterLat float64
	CenterLng float64
	ViewportW int // pixels
	ViewportH int // pixels

	MinZoom, MaxZoom int
}

// TileSize is the standard web-mercator tile edge in pixels.
const TileSize = 256

// NewMapView creates a map at the given zoom and center with a desktop-ish
// viewport.
func NewMapView(zoom int, lat, lng float64) *MapView {
	return &MapView{
		Zoom: zoom, CenterLat: lat, CenterLng: lng,
		ViewportW: 1024, ViewportH: 768,
		MinZoom: 1, MaxZoom: 18,
	}
}

// Tile is one web-mercator tile key.
type Tile struct{ Z, X, Y int }

// String renders the tile as z/x/y.
func (t Tile) String() string { return fmt.Sprintf("%d/%d/%d", t.Z, t.X, t.Y) }

// ParseTile parses a z/x/y tile key produced by Tile.String.
func ParseTile(s string) (Tile, error) {
	var t Tile
	if _, err := fmt.Sscanf(s, "%d/%d/%d", &t.Z, &t.X, &t.Y); err != nil {
		return Tile{}, fmt.Errorf("widget: bad tile key %q: %w", s, err)
	}
	return t, nil
}

// project converts lat/lng to world pixel coordinates at zoom z.
func project(lat, lng float64, z int) (x, y float64) {
	scale := float64(TileSize) * math.Exp2(float64(z))
	x = (lng + 180) / 360 * scale
	sin := math.Sin(lat * math.Pi / 180)
	// Clamp to the mercator-safe range.
	sin = math.Max(-0.9999, math.Min(0.9999, sin))
	y = (0.5 - math.Log((1+sin)/(1-sin))/(4*math.Pi)) * scale
	return x, y
}

// unproject converts world pixels at zoom z back to lat/lng.
func unproject(x, y float64, z int) (lat, lng float64) {
	scale := float64(TileSize) * math.Exp2(float64(z))
	lng = x/scale*360 - 180
	n := math.Pi - 2*math.Pi*y/scale
	lat = 180 / math.Pi * math.Atan(math.Sinh(n))
	return lat, lng
}

// Bounds returns the viewport's southwest and northeast corners.
func (m *MapView) Bounds() (swLat, swLng, neLat, neLng float64) {
	cx, cy := project(m.CenterLat, m.CenterLng, m.Zoom)
	halfW, halfH := float64(m.ViewportW)/2, float64(m.ViewportH)/2
	neLat, swLng = unproject(cx-halfW, cy-halfH, m.Zoom)
	swLat, neLng = unproject(cx+halfW, cy+halfH, m.Zoom)
	return swLat, swLng, neLat, neLng
}

// BoundCenter returns the center of the bounds — the quantity whose
// per-zoom drag ranges the paper's Table 10 reports.
func (m *MapView) BoundCenter() (lat, lng float64) {
	swLat, swLng, neLat, neLng := m.Bounds()
	return (swLat + neLat) / 2, (swLng + neLng) / 2
}

// ZoomIn increases the zoom level by one, keeping the center.
func (m *MapView) ZoomIn() bool {
	if m.Zoom >= m.MaxZoom {
		return false
	}
	m.Zoom++
	return true
}

// ZoomOut decreases the zoom level by one.
func (m *MapView) ZoomOut() bool {
	if m.Zoom <= m.MinZoom {
		return false
	}
	m.Zoom--
	return true
}

// Pan shifts the center by pixel deltas at the current zoom (positive dx
// pans east, positive dy pans south).
func (m *MapView) Pan(dx, dy float64) {
	cx, cy := project(m.CenterLat, m.CenterLng, m.Zoom)
	m.CenterLat, m.CenterLng = unproject(cx+dx, cy+dy, m.Zoom)
}

// PanDegrees shifts the center by lat/lng deltas directly.
func (m *MapView) PanDegrees(dLat, dLng float64) {
	m.CenterLat += dLat
	m.CenterLng += dLng
	if m.CenterLat > 85 {
		m.CenterLat = 85
	}
	if m.CenterLat < -85 {
		m.CenterLat = -85
	}
}

// VisibleTiles lists the tile keys covering the viewport, row-major.
func (m *MapView) VisibleTiles() []Tile {
	cx, cy := project(m.CenterLat, m.CenterLng, m.Zoom)
	halfW, halfH := float64(m.ViewportW)/2, float64(m.ViewportH)/2
	maxTile := int(math.Exp2(float64(m.Zoom))) - 1
	x0 := int(math.Floor((cx - halfW) / TileSize))
	x1 := int(math.Floor((cx + halfW) / TileSize))
	y0 := int(math.Floor((cy - halfH) / TileSize))
	y1 := int(math.Floor((cy + halfH) / TileSize))
	var tiles []Tile
	for y := y0; y <= y1; y++ {
		if y < 0 || y > maxTile {
			continue
		}
		for x := x0; x <= x1; x++ {
			if x < 0 || x > maxTile {
				continue
			}
			tiles = append(tiles, Tile{Z: m.Zoom, X: x, Y: y})
		}
	}
	return tiles
}

// QueryURL renders the viewport plus filter state as an Airbnb-style search
// URL — the form the composite case study's trace collector records.
// Filters are rendered in sorted key order for determinism.
func (m *MapView) QueryURL(place string, filters map[string]string) string {
	swLat, swLng, neLat, neLng := m.Bounds()
	var sb strings.Builder
	fmt.Fprintf(&sb, "https://example.com/s/%s?source=map", strings.ReplaceAll(place, " ", "-"))
	fmt.Fprintf(&sb, "&sw_lat=%.6f&sw_lng=%.6f&ne_lat=%.6f&ne_lng=%.6f", swLat, swLng, neLat, neLng)
	fmt.Fprintf(&sb, "&search_by_map=true&zoom=%d", m.Zoom)
	keys := make([]string, 0, len(filters))
	for k := range filters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "&%s=%s", k, filters[k])
	}
	return sb.String()
}
