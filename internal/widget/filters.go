package widget

import (
	"fmt"
	"sort"
)

// Kind classifies the query widgets of a composite interface, matching the
// paper's Table 9 categories.
type Kind int

// Composite-interface widget kinds.
const (
	KindMap Kind = iota
	KindSlider
	KindCheckbox
	KindButton
	KindTextBox
)

// String names the widget kind.
func (k Kind) String() string {
	switch k {
	case KindMap:
		return "map"
	case KindSlider:
		return "slider"
	case KindCheckbox:
		return "checkbox"
	case KindButton:
		return "button"
	case KindTextBox:
		return "text box"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FilterSet is the non-map filter state of a composite interface: the set
// of URL filter conditions currently applied (price sliders, room-type
// checkboxes, guest counts, free-text place). The paper's Figure 20 is the
// CDF of its size across queries.
type FilterSet struct {
	conditions map[string]string
}

// NewFilterSet returns an empty filter set.
func NewFilterSet() *FilterSet {
	return &FilterSet{conditions: make(map[string]string)}
}

// Set adds or replaces a filter condition.
func (f *FilterSet) Set(key, value string) { f.conditions[key] = value }

// Remove deletes a filter condition; removing an absent key is a no-op.
func (f *FilterSet) Remove(key string) { delete(f.conditions, key) }

// Has reports whether the key is set.
func (f *FilterSet) Has(key string) bool {
	_, ok := f.conditions[key]
	return ok
}

// Len returns the number of active filter conditions.
func (f *FilterSet) Len() int { return len(f.conditions) }

// Map returns a copy of the conditions for URL rendering.
func (f *FilterSet) Map() map[string]string {
	out := make(map[string]string, len(f.conditions))
	for k, v := range f.conditions {
		out[k] = v
	}
	return out
}

// Keys returns the sorted condition keys.
func (f *FilterSet) Keys() []string {
	keys := make([]string, 0, len(f.conditions))
	for k := range f.conditions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
