package widget

import (
	"math"
	"testing"
	"time"
)

func TestScrollViewInertialCoasting(t *testing.T) {
	sv := NewScrollView(4000, 120, true)
	sv.Flick(300) // px/frame
	var events int
	var total float64
	now := time.Duration(0)
	for sv.Coasting() {
		now += sv.FrameEvery
		ev, moved := sv.Step(now)
		if !moved {
			break
		}
		events++
		total += ev.Delta
		if ev.Delta < 0 {
			t.Fatal("downward flick produced upward delta")
		}
	}
	if events < 20 {
		t.Errorf("coasted only %d frames; inertia too weak", events)
	}
	// Geometric series: 300/(1-0.94) = 5000px total ≈ 41 tuples.
	if total < 3000 || total > 6000 {
		t.Errorf("coast distance %v px, want ≈5000", total)
	}
	if sv.TupleAt(sv.Pos()) < 20 {
		t.Errorf("ended at tuple %d", sv.TupleAt(sv.Pos()))
	}
}

func TestScrollViewNonInertial(t *testing.T) {
	sv := NewScrollView(4000, 120, false)
	sv.Flick(300)
	if sv.Coasting() {
		t.Error("non-inertial view coasting")
	}
	if sv.Pos() != 300 {
		t.Errorf("pos = %v, want 300 (immediate)", sv.Pos())
	}
	ev, moved := sv.Wheel(time.Second, 4)
	if !moved || ev.Delta != 4 || ev.ScrollTop != 304 {
		t.Errorf("wheel event = %+v, %v", ev, moved)
	}
}

func TestScrollViewEdges(t *testing.T) {
	sv := NewScrollView(10, 100, true)
	// Scroll above the top.
	if _, moved := sv.Wheel(0, -50); moved {
		t.Error("scrolled above top")
	}
	// Massive flick pins at the bottom and momentum dies.
	sv.Flick(1e9)
	now := time.Duration(0)
	for i := 0; i < 10 && sv.Coasting(); i++ {
		now += sv.FrameEvery
		sv.Step(now)
	}
	if sv.Pos() != 1000 {
		t.Errorf("pos = %v, want pinned at 1000", sv.Pos())
	}
	if sv.Coasting() {
		t.Error("momentum survived the edge")
	}
	if got := sv.TupleAt(5000); got != 9 {
		t.Errorf("TupleAt clamps to %d, want 9", got)
	}
	if got := sv.TupleAt(-5); got != 0 {
		t.Errorf("TupleAt(-5) = %d", got)
	}
}

func TestScrollStop(t *testing.T) {
	sv := NewScrollView(100, 100, true)
	sv.Flick(200)
	sv.Stop()
	if sv.Coasting() {
		t.Error("Stop did not kill velocity")
	}
}

func TestSliderMapping(t *testing.T) {
	s := NewSlider(0, 0, 100, 500)
	if got := s.ValueAt(250); got != 50 {
		t.Errorf("ValueAt(250) = %v", got)
	}
	if got := s.ValueAt(-10); got != 0 {
		t.Errorf("ValueAt(-10) = %v", got)
	}
	if got := s.ValueAt(9999); got != 100 {
		t.Errorf("ValueAt(9999) = %v", got)
	}
	if got := s.PixelOf(50); got != 250 {
		t.Errorf("PixelOf(50) = %v", got)
	}
}

func TestSliderDrag(t *testing.T) {
	s := NewSlider(2, 0, 100, 500)
	ev, changed := s.Drag(time.Second, HandleMax, 250)
	if !changed || ev.SliderIdx != 2 || ev.MinVal != 0 || ev.MaxVal != 50 {
		t.Errorf("event = %+v, changed %v", ev, changed)
	}
	// No-op drag to the same position.
	if _, changed := s.Drag(2*time.Second, HandleMax, 250); changed {
		t.Error("no-op drag reported change")
	}
	// Handles cannot cross.
	ev, changed = s.Drag(3*time.Second, HandleMin, 400)
	if !changed || ev.MinVal != 50 {
		t.Errorf("crossing drag = %+v", ev)
	}
	mn, mx := s.Range()
	if mn != 50 || mx != 50 {
		t.Errorf("range = [%v, %v]", mn, mx)
	}
	s.Reset()
	mn, mx = s.Range()
	if mn != 0 || mx != 100 {
		t.Errorf("after reset range = [%v, %v]", mn, mx)
	}
}

func TestMapProjectionRoundTrip(t *testing.T) {
	for _, z := range []int{3, 11, 14} {
		for _, c := range [][2]float64{{40.71, -74.0}, {-33.86, 151.2}, {0, 0}} {
			x, y := project(c[0], c[1], z)
			lat, lng := unproject(x, y, z)
			if math.Abs(lat-c[0]) > 1e-6 || math.Abs(lng-c[1]) > 1e-6 {
				t.Errorf("z%d roundtrip (%v,%v) → (%v,%v)", z, c[0], c[1], lat, lng)
			}
		}
	}
}

func TestMapBoundsContainCenter(t *testing.T) {
	m := NewMapView(12, 40.71, -74.0)
	swLat, swLng, neLat, neLng := m.Bounds()
	if !(swLat < 40.71 && 40.71 < neLat && swLng < -74.0 && -74.0 < neLng) {
		t.Errorf("bounds [%v,%v]–[%v,%v] exclude center", swLat, swLng, neLat, neLng)
	}
	clat, clng := m.BoundCenter()
	if math.Abs(clat-40.71) > 0.01 || math.Abs(clng+74.0) > 0.01 {
		t.Errorf("bound center (%v,%v)", clat, clng)
	}
}

func TestMapZoomHalvesBounds(t *testing.T) {
	m := NewMapView(10, 40.71, -74.0)
	_, swLng1, _, neLng1 := m.Bounds()
	if !m.ZoomIn() {
		t.Fatal("ZoomIn failed")
	}
	_, swLng2, _, neLng2 := m.Bounds()
	ratio := (neLng1 - swLng1) / (neLng2 - swLng2)
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("zoom-in bounds ratio %v, want 2", ratio)
	}
	m.Zoom = m.MaxZoom
	if m.ZoomIn() {
		t.Error("zoomed past MaxZoom")
	}
	m.Zoom = m.MinZoom
	if m.ZoomOut() {
		t.Error("zoomed below MinZoom")
	}
}

func TestMapPan(t *testing.T) {
	m := NewMapView(12, 40.71, -74.0)
	lng0 := m.CenterLng
	m.Pan(512, 0) // east by 2 tiles
	if m.CenterLng <= lng0 {
		t.Error("eastward pan decreased longitude")
	}
	lat0 := m.CenterLat
	m.Pan(0, 512) // south
	if m.CenterLat >= lat0 {
		t.Error("southward pan increased latitude")
	}
	m.PanDegrees(100, 0)
	if m.CenterLat > 85 {
		t.Error("PanDegrees did not clamp latitude")
	}
}

func TestVisibleTiles(t *testing.T) {
	m := NewMapView(12, 40.71, -74.0)
	tiles := m.VisibleTiles()
	// 1024×768 viewport at 256px tiles covers 4–5 × 3–4 tiles.
	if len(tiles) < 12 || len(tiles) > 30 {
		t.Errorf("visible tiles = %d", len(tiles))
	}
	for _, tile := range tiles {
		if tile.Z != 12 {
			t.Errorf("tile zoom %d", tile.Z)
		}
		if tile.X < 0 || tile.Y < 0 {
			t.Errorf("negative tile %v", tile)
		}
	}
	if tiles[0].String() == "" {
		t.Error("empty tile string")
	}
	// At zoom 1 the world is 2×2 tiles; viewport covers everything but
	// must not emit out-of-range tiles.
	m2 := NewMapView(1, 0, 0)
	for _, tile := range m2.VisibleTiles() {
		if tile.X < 0 || tile.X > 1 || tile.Y < 0 || tile.Y > 1 {
			t.Errorf("tile out of world range: %v", tile)
		}
	}
}

func TestQueryURLDeterministic(t *testing.T) {
	m := NewMapView(6, 32.3, -86.9)
	f := map[string]string{"price_max": "56", "guests": "3", "price_min": "10"}
	u1 := m.QueryURL("Alabama United-States", f)
	u2 := m.QueryURL("Alabama United-States", f)
	if u1 != u2 {
		t.Error("QueryURL not deterministic")
	}
	for _, want := range []string{"sw_lat=", "zoom=6", "guests=3", "price_min=10", "search_by_map=true"} {
		if !contains(u1, want) {
			t.Errorf("URL missing %q: %s", want, u1)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestFilterSet(t *testing.T) {
	f := NewFilterSet()
	if f.Len() != 0 {
		t.Error("new set not empty")
	}
	f.Set("price_min", "10")
	f.Set("price_max", "56")
	f.Set("price_min", "20") // replace
	if f.Len() != 2 {
		t.Errorf("Len = %d", f.Len())
	}
	if !f.Has("price_min") || f.Has("guests") {
		t.Error("Has wrong")
	}
	keys := f.Keys()
	if len(keys) != 2 || keys[0] != "price_max" {
		t.Errorf("Keys = %v", keys)
	}
	m := f.Map()
	m["mutate"] = "x"
	if f.Has("mutate") {
		t.Error("Map not a copy")
	}
	f.Remove("price_min")
	f.Remove("missing")
	if f.Len() != 1 {
		t.Errorf("after remove Len = %d", f.Len())
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindMap: "map", KindSlider: "slider", KindCheckbox: "checkbox", KindButton: "button", KindTextBox: "text box"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k.String())
		}
	}
}
