package widget

import "testing"

func TestParseTileRoundTrip(t *testing.T) {
	for _, tile := range []Tile{{Z: 12, X: 1205, Y: 1539}, {Z: 1, X: 0, Y: 1}, {Z: 18, X: 262143, Y: 0}} {
		got, err := ParseTile(tile.String())
		if err != nil {
			t.Fatalf("ParseTile(%q): %v", tile.String(), err)
		}
		if got != tile {
			t.Errorf("round trip %v → %v", tile, got)
		}
	}
}

func TestParseTileErrors(t *testing.T) {
	for _, s := range []string{"", "12", "a/b/c", "1/2"} {
		if _, err := ParseTile(s); err == nil {
			t.Errorf("ParseTile(%q) succeeded", s)
		}
	}
}
