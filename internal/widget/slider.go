package widget

import (
	"time"

	"repro/internal/trace"
)

// Handle identifies which end of a range slider is being dragged.
type Handle int

// Range-slider handles.
const (
	HandleMin Handle = iota
	HandleMax
)

// Slider is a two-handle range slider over a numeric domain, rendered on a
// pixel track. It is the query widget of the crossfiltering case study:
// every handle movement reshapes a WHERE-clause range and issues queries.
type Slider struct {
	Index   int     // slider position in the coordinated view
	Lo, Hi  float64 // value domain
	TrackPx float64 // track width in pixels

	minVal, maxVal float64
}

// NewSlider creates a slider spanning [lo, hi] with both handles at the
// extremes (no filtering).
func NewSlider(index int, lo, hi, trackPx float64) *Slider {
	return &Slider{Index: index, Lo: lo, Hi: hi, TrackPx: trackPx, minVal: lo, maxVal: hi}
}

// Range returns the current filtered range.
func (s *Slider) Range() (minVal, maxVal float64) { return s.minVal, s.maxVal }

// ValueAt converts a pixel position on the track to a domain value,
// clamped.
func (s *Slider) ValueAt(px float64) float64 {
	if s.TrackPx <= 0 {
		return s.Lo
	}
	f := px / s.TrackPx
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return s.Lo + f*(s.Hi-s.Lo)
}

// PixelOf converts a domain value to its pixel position on the track.
func (s *Slider) PixelOf(v float64) float64 {
	if s.Hi <= s.Lo {
		return 0
	}
	return (v - s.Lo) / (s.Hi - s.Lo) * s.TrackPx
}

// Drag moves one handle to the given pixel position at time now. It
// returns a slider event and true when the filtered range changed. Handles
// cannot cross: dragging one into the other pins it there.
func (s *Slider) Drag(now time.Duration, h Handle, px float64) (trace.SliderEvent, bool) {
	v := s.ValueAt(px)
	oldMin, oldMax := s.minVal, s.maxVal
	switch h {
	case HandleMin:
		if v > s.maxVal {
			v = s.maxVal
		}
		s.minVal = v
	case HandleMax:
		if v < s.minVal {
			v = s.minVal
		}
		s.maxVal = v
	}
	if s.minVal == oldMin && s.maxVal == oldMax {
		return trace.SliderEvent{}, false
	}
	return trace.SliderEvent{At: now, SliderIdx: s.Index, MinVal: s.minVal, MaxVal: s.maxVal}, true
}

// Reset returns both handles to the domain extremes.
func (s *Slider) Reset() { s.minVal, s.maxVal = s.Lo, s.Hi }
