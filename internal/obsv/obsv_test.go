package obsv

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestBucketEdges(t *testing.T) {
	edges := BucketEdges()
	if len(edges) != NumBuckets-1 {
		t.Fatalf("edges = %d, want %d", len(edges), NumBuckets-1)
	}
	if edges[0] != 10*time.Microsecond {
		t.Errorf("edge[0] = %v, want 10µs", edges[0])
	}
	for i := range bucketEdgesNS {
		if i > 0 {
			ratio := bucketEdgesNS[i] / bucketEdgesNS[i-1]
			if math.Abs(ratio-math.Sqrt2) > 1e-9 {
				t.Errorf("edge[%d]/edge[%d] = %v, want √2", i, i-1, ratio)
			}
		}
		// The exported Duration edges truncate to integer ns.
		if diff := bucketEdgesNS[i] - float64(edges[i]); diff < 0 || diff >= 1 {
			t.Errorf("edge[%d] Duration %v drifts %vns from the float edge", i, edges[i], diff)
		}
	}
	if edges[len(edges)-1] < 5*time.Hour {
		t.Errorf("top finite edge %v too low to cover multi-hour stalls", edges[len(edges)-1])
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   float64
		want int
	}{
		{0, 0}, {9_999, 0}, {10_000, 0}, {10_001, 1}, {14_142, 1}, {20_000, 2},
		{float64(bucketEdgesNS[NumBuckets-2]) + 1, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// latencyStreams generates randomized latency workloads shaped like real
// serving traffic: tight unimodal, heavy-tailed, and bimodal
// fast-path/slow-path mixes.
func latencyStreams(seed int64, n int) map[string][]time.Duration {
	rng := rand.New(rand.NewSource(seed))
	streams := map[string][]time.Duration{}

	uni := make([]time.Duration, n)
	for i := range uni {
		uni[i] = time.Duration(500+rng.Intn(4500)) * time.Microsecond
	}
	streams["uniform"] = uni

	exp := make([]time.Duration, n)
	for i := range exp {
		exp[i] = time.Duration(rng.ExpFloat64() * 8 * float64(time.Millisecond))
	}
	streams["exponential"] = exp

	logn := make([]time.Duration, n)
	for i := range logn {
		logn[i] = time.Duration(math.Exp(rng.NormFloat64()*0.8+math.Log(3)) * float64(time.Millisecond))
	}
	streams["lognormal"] = logn

	bim := make([]time.Duration, n)
	for i := range bim {
		if rng.Float64() < 0.85 {
			bim[i] = time.Duration(200+rng.Intn(800)) * time.Microsecond
		} else {
			bim[i] = time.Duration(40+rng.Intn(400)) * time.Millisecond
		}
	}
	streams["bimodal"] = bim
	return streams
}

// TestHistogramPercentileDifferential is the tentpole's acceptance
// differential: histogram-derived p50/p95/p99 must agree with the exact
// sorted-sample percentile (metrics.Percentile over the same stream)
// within one bucket's relative error on randomized latency streams.
func TestHistogramPercentileDifferential(t *testing.T) {
	const tol = 0.06
	for name, stream := range latencyStreams(41, 20000) {
		var h Histogram
		ms := make([]float64, len(stream))
		for i, d := range stream {
			h.Observe(d)
			ms[i] = float64(d) / float64(time.Millisecond)
		}
		snap := h.Snapshot()
		for _, p := range []float64{50, 95, 99} {
			want := metrics.Percentile(ms, p)
			got := float64(snap.Percentile(p)) / float64(time.Millisecond)
			relErr := math.Abs(got-want) / want
			if relErr > tol {
				t.Errorf("%s p%.0f: histogram %.3fms vs sorted %.3fms (rel err %.1f%%, want <= %.0f%%)",
					name, p, got, want, 100*relErr, 100*tol)
			} else {
				t.Logf("%s p%.0f: histogram %.3fms vs sorted %.3fms (rel err %.2f%%)",
					name, p, got, want, 100*relErr)
			}
		}
		if got, want := snap.Percentile(100), stream[0]; got < want/1000 {
			t.Errorf("%s: p100 = %v suspiciously small", name, got)
		}
	}
}

// TestHistogramMaxExact: p>=100 is the exact observed maximum, not a
// bucket edge.
func TestHistogramMaxExact(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(777 * time.Millisecond)
	h.Observe(11 * time.Millisecond)
	if got := h.Percentile(100); got != 777*time.Millisecond {
		t.Errorf("p100 = %v, want exactly 777ms", got)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Count() != 0 {
		t.Error("empty histogram must read 0")
	}
	h.Observe(-5 * time.Millisecond)
	if h.Count() != 1 {
		t.Errorf("negative observation dropped; count = %d", h.Count())
	}
	if got := h.Percentile(100); got != 0 {
		t.Errorf("negative clamps to 0, got max %v", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race. Counts must balance exactly.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(int(50 * time.Millisecond))))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Errorf("count = %d, want %d", snap.Count, workers*per)
	}
	var sum int64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != workers*per {
		t.Errorf("bucket sum = %d, want %d", sum, workers*per)
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"admission", "queue", "coalesce", "execute", "scatter", "merge", "write"}
	for s := StageAdmission; s < NumStages; s++ {
		if s.String() != want[s] {
			t.Errorf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
	if Stage(99).String() != "unknown" {
		t.Error("out-of-range stage must read unknown")
	}
}

func TestTracerStagesAndDominant(t *testing.T) {
	tc := NewTracer(8)
	start := time.Now()
	tr := tc.Begin("s1", 7, "brush", start)
	tr.Enter(StageQueue)
	tr.Enter(StageExecute)
	time.Sleep(5 * time.Millisecond) // execute dominates
	tr.Enter(StageMerge)
	tr.SetTier("exact")
	tr.MarkLCV()
	tr.Enter(StageWrite)
	tc.Finish(tr, 200)
	tc.Finish(tr, 500) // second finish must be a no-op

	recs := tc.Recent()
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Session != "s1" || rec.Seq != 7 || rec.Kind != "brush" || rec.Status != 200 || rec.Tier != "exact" {
		t.Errorf("record = %+v", rec)
	}
	if !rec.LCV {
		t.Error("LCV mark lost")
	}
	if rec.Visited(StageCoalesce) {
		t.Error("coalesce stage was never entered")
	}
	if d := rec.Dominant(); d != StageExecute {
		t.Errorf("dominant = %v, want execute", d)
	}
	if rec.Total < 5*time.Millisecond {
		t.Errorf("total %v < slept execute span", rec.Total)
	}
	lcv := tc.LCVByStage()
	if lcv[StageExecute] != 1 {
		t.Errorf("lcv_by_stage[execute] = %d, want 1", lcv[StageExecute])
	}
	if tc.StageHist(StageExecute).Count() != 1 || tc.StageHist(StageCoalesce).Count() != 0 {
		t.Error("stage histograms must observe visited stages only")
	}
}

func TestTraceRingWraps(t *testing.T) {
	tc := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr := tc.Begin("s", int64(i), "query", time.Now())
		tc.Finish(tr, 200)
	}
	recs := tc.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := int64(6 + i); rec.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d (oldest-first of the last 4)", i, rec.Seq, want)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		d := 3 * time.Millisecond
		for pb.Next() {
			h.Observe(d)
			d += time.Microsecond
		}
	})
}

func BenchmarkHistogramPercentile(b *testing.B) {
	var h Histogram
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1<<18; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * float64(10*time.Millisecond)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := h.Snapshot()
		_ = snap.Percentile(50)
		_ = snap.Percentile(95)
		_ = snap.Percentile(99)
		_ = snap.Percentile(100)
	}
}
