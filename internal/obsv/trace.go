package obsv

import (
	"sync/atomic"
	"time"
)

// TraceRecord is one completed request's stage breakdown, the unit stored
// in the trace ring and exported at /v1/trace. Records in the ring are
// immutable once pushed.
type TraceRecord struct {
	Session string
	Seq     int64
	Kind    string // "query", "brush", or "tile"
	Start   time.Time
	Total   time.Duration
	Status  int
	Tier    string // degradation-ladder tier that answered, when known
	LCV     bool   // counted as a latency-constraint violation
	Stages  [NumStages]time.Duration
	seen    uint8 // bitmask of visited stages
}

// Visited reports whether the request passed through the stage at all —
// distinct from a visited stage that measured ~0 time.
func (r *TraceRecord) Visited(s Stage) bool { return r.seen&(1<<uint(s)) != 0 }

// Dominant returns the stage that consumed the most time; ties pick the
// earlier pipeline stage. This is where a violated latency constraint is
// attributed.
func (r *TraceRecord) Dominant() Stage {
	best := StageAdmission
	for s := StageAdmission + 1; s < NumStages; s++ {
		if r.Stages[s] > r.Stages[best] {
			best = s
		}
	}
	return best
}

// Trace is one in-flight request's span recorder. It is owned by the
// request's goroutine; handing it across goroutines (handler → worker →
// handler) is safe when each handoff carries a happens-before edge, which
// the serving layer's queue channel and outcome channels provide. MarkLCV
// is the one cross-goroutine entry point and is atomic.
type Trace struct {
	rec      TraceRecord
	lcv      atomic.Bool
	cur      Stage
	curStart time.Time
	finished bool
}

// Enter closes the current stage at now and opens s. Stages may be
// entered in any order; re-entering accumulates.
func (t *Trace) Enter(s Stage) {
	now := time.Now()
	t.rec.Stages[t.cur] += now.Sub(t.curStart)
	t.cur = s
	t.curStart = now
	t.rec.seen |= 1 << uint(s)
}

// SetTier records which degradation-ladder tier answered.
func (t *Trace) SetTier(tier string) { t.rec.Tier = tier }

// MarkLCV flags the request as a latency-constraint violation: its
// session issued the next request while this one was still in flight.
// Safe to call from any goroutine.
func (t *Trace) MarkLCV() { t.lcv.Store(true) }

// Tracer owns the per-stage histograms, the LCV-by-stage attribution
// counters, and the ring of recent traces. All methods are safe for
// concurrent use.
type Tracer struct {
	stages     [NumStages]Histogram
	lcvByStage [NumStages]atomic.Int64
	ring       traceRing
}

// DefaultTraceRing is the default capacity of the recent-trace ring.
const DefaultTraceRing = 512

// NewTracer builds a tracer with a recent-trace ring of the given
// capacity (0 means DefaultTraceRing).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	t := &Tracer{}
	t.ring.slots = make([]atomic.Pointer[TraceRecord], ringSize)
	return t
}

// Begin starts a trace for one request in the admission stage. start is
// the request's issue time (the serving layer's latency origin).
func (t *Tracer) Begin(session string, seq int64, kind string, start time.Time) *Trace {
	tr := &Trace{
		rec:      TraceRecord{Session: session, Seq: seq, Kind: kind, Start: start},
		cur:      StageAdmission,
		curStart: start,
	}
	tr.rec.seen = 1 << uint(StageAdmission)
	return tr
}

// Finish closes the trace's current stage, records every visited stage
// into its histogram, attributes the request's LCV flag to the dominant
// stage, and pushes the record into the recent-trace ring. Calling Finish
// twice is a no-op after the first.
func (t *Tracer) Finish(tr *Trace, status int) {
	if tr == nil || tr.finished {
		return
	}
	tr.finished = true
	now := time.Now()
	tr.rec.Stages[tr.cur] += now.Sub(tr.curStart)
	tr.rec.Total = now.Sub(tr.rec.Start)
	tr.rec.Status = status
	tr.rec.LCV = tr.lcv.Load()
	for s := StageAdmission; s < NumStages; s++ {
		if tr.rec.Visited(s) {
			t.stages[s].Observe(tr.rec.Stages[s])
		}
	}
	if tr.rec.LCV {
		t.lcvByStage[tr.rec.Dominant()].Add(1)
	}
	t.ring.push(&tr.rec)
}

// StageHist returns the histogram of one stage's spans.
func (t *Tracer) StageHist(s Stage) *Histogram { return &t.stages[s] }

// LCVByStage returns the violation count attributed to each stage.
func (t *Tracer) LCVByStage() [NumStages]int64 {
	var out [NumStages]int64
	for s := range t.lcvByStage {
		out[s] = t.lcvByStage[s].Load()
	}
	return out
}

// Recent returns the ring's traces, oldest first. The records are
// immutable; the slice is fresh.
func (t *Tracer) Recent() []*TraceRecord { return t.ring.snapshot() }

// traceRing is a bounded lock-free ring of completed traces: writers
// claim a slot with one atomic increment and store a pointer; readers
// walk the last len(slots) positions. A reader racing a writer may see a
// slot's previous occupant — fine for a diagnostics feed.
type traceRing struct {
	slots []atomic.Pointer[TraceRecord]
	next  atomic.Int64
}

func (r *traceRing) push(rec *TraceRecord) {
	i := r.next.Add(1) - 1
	r.slots[int(i%int64(len(r.slots)))].Store(rec)
}

func (r *traceRing) snapshot() []*TraceRecord {
	n := r.next.Load()
	size := int64(len(r.slots))
	from := n - size
	if from < 0 {
		from = 0
	}
	out := make([]*TraceRecord, 0, n-from)
	for i := from; i < n; i++ {
		if rec := r.slots[int(i%size)].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}
