package obsv

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). It tracks which metric names have had their HELP/TYPE
// header emitted, so vector metrics (several label sets of one name) emit
// one header; callers must keep a name's samples consecutive, as the
// format requires. Errors are sticky — check Err once at the end.
type PromWriter struct {
	w    io.Writer
	ns   string
	seen map[string]bool
	err  error
}

// NewPromWriter writes exposition text to w with every metric name
// prefixed "namespace_".
func NewPromWriter(w io.Writer, namespace string) *PromWriter {
	return &PromWriter{w: w, ns: namespace + "_", seen: map[string]bool{}}
}

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sample emits one sample line; labels is the inner label list without
// braces ("" for none).
func (p *PromWriter) sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, fmtVal(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, fmtVal(v))
}

// Counter emits a single-series counter.
func (p *PromWriter) Counter(name, help string, v float64) {
	n := p.ns + name
	p.header(n, help, "counter")
	p.sample(n, "", v)
}

// Gauge emits a single-series gauge.
func (p *PromWriter) Gauge(name, help string, v float64) {
	n := p.ns + name
	p.header(n, help, "gauge")
	p.sample(n, "", v)
}

// CounterVec emits one counter series per label value, sorted for a
// deterministic exposition.
func (p *PromWriter) CounterVec(name, help, label string, vals map[string]float64) {
	n := p.ns + name
	p.header(n, help, "counter")
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.sample(n, fmt.Sprintf("%s=%q", label, k), vals[k])
	}
}

// GaugeVec emits one gauge series per label value, sorted for a
// deterministic exposition.
func (p *PromWriter) GaugeVec(name, help, label string, vals map[string]float64) {
	n := p.ns + name
	p.header(n, help, "gauge")
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.sample(n, fmt.Sprintf("%s=%q", label, k), vals[k])
	}
}

// Histogram emits one histogram series from a snapshot, with cumulative
// le buckets in seconds, under the given label list ("" for none).
func (p *PromWriter) Histogram(name, help, labels string, s HistSnapshot) {
	n := p.ns + name
	p.header(n, help, "histogram")
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for b, c := range s.Counts {
		cum += c
		if b < len(bucketEdgesNS) {
			p.sample(n+"_bucket", fmt.Sprintf("%s%sle=%q", labels, sep, fmtVal(bucketEdgesNS[b]/1e9)), float64(cum))
		}
	}
	p.sample(n+"_bucket", labels+sep+`le="+Inf"`, float64(cum))
	p.sample(n+"_sum", labels, float64(s.SumNS)/1e9)
	p.sample(n+"_count", labels, float64(cum))
}

// --- exposition validation ---------------------------------------------------

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^{}]*)\})? (-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|\+Inf|NaN)(?: [0-9]+)?$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// ValidateExposition checks text against the Prometheus exposition
// format: well-formed HELP/TYPE comments, syntactically valid sample
// lines with valid label pairs, samples only for metrics whose TYPE was
// declared first, and — for histograms — cumulative bucket counts that
// are non-decreasing in le order with a +Inf bucket matching _count.
// It returns the first violation found, or nil. CI's loadgen smoke runs
// it against a live /metrics scrape.
func ValidateExposition(data []byte) error {
	types := map[string]string{}
	type bucketKey struct{ name, labels string }
	lastCum := map[bucketKey]float64{}
	infSeen := map[bucketKey]float64{}
	counts := map[bucketKey]float64{}

	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case strings.HasPrefix(line, "# HELP "):
				if !helpRe.MatchString(line) {
					return fmt.Errorf("prom: line %d: malformed HELP: %q", lineNo, line)
				}
			case strings.HasPrefix(line, "# TYPE "):
				m := typeRe.FindStringSubmatch(line)
				if m == nil {
					return fmt.Errorf("prom: line %d: malformed TYPE: %q", lineNo, line)
				}
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, m[1])
				}
				types[m[1]] = m[2]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("prom: line %d: malformed sample: %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		var le string
		if labels != "" {
			var rest []string
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					return fmt.Errorf("prom: line %d: malformed label %q", lineNo, pair)
				}
				if strings.HasPrefix(pair, "le=") {
					le = pair[len(`le="`) : len(pair)-1]
				} else {
					rest = append(rest, pair)
				}
			}
			labels = strings.Join(rest, ",")
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if !strings.HasSuffix(name, suffix) {
				continue
			}
			if _, ok := types[strings.TrimSuffix(name, suffix)]; ok {
				base = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := types[base]; !ok {
			return fmt.Errorf("prom: line %d: sample %s precedes its TYPE declaration", lineNo, name)
		}
		if types[base] != "histogram" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil && valStr != "+Inf" {
			return fmt.Errorf("prom: line %d: bad value %q: %v", lineNo, valStr, err)
		}
		key := bucketKey{base, labels}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return fmt.Errorf("prom: line %d: histogram bucket without le label", lineNo)
			}
			if prev, ok := lastCum[key]; ok && v < prev {
				return fmt.Errorf("prom: line %d: bucket counts decrease (%v after %v) for %s{%s}",
					lineNo, v, prev, base, labels)
			}
			lastCum[key] = v
			if le == "+Inf" {
				infSeen[key] = v
			}
		case strings.HasSuffix(name, "_count"):
			counts[key] = v
		}
	}
	for key, c := range counts {
		inf, ok := infSeen[key]
		if !ok {
			return fmt.Errorf("prom: histogram %s{%s} lacks a +Inf bucket", key.name, key.labels)
		}
		if inf != c {
			return fmt.Errorf("prom: histogram %s{%s}: +Inf bucket %v != count %v", key.name, key.labels, inf, c)
		}
	}
	return nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
