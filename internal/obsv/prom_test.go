package obsv

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPromWriterOutputValidates(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{3 * time.Millisecond, 80 * time.Millisecond, time.Second} {
		h.Observe(d)
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf, "idevald")
	p.Counter("requests_total", "Requests served.", 42)
	p.Gauge("inflight", "Requests in flight.", 3)
	p.CounterVec("lcv_by_stage_total", "LCVs attributed to their dominant stage.", "stage",
		map[string]float64{"execute": 5, "queue": 2})
	p.Histogram("request_seconds", "End-to-end request latency.", "", h.Snapshot())
	p.Histogram("stage_seconds", "Per-stage span latency.", `stage="execute"`, h.Snapshot())
	p.Histogram("stage_seconds", "Per-stage span latency.", `stage="queue"`, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("own output rejected: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE idevald_requests_total counter",
		"idevald_requests_total 42",
		`idevald_lcv_by_stage_total{stage="execute"} 5`,
		"# TYPE idevald_request_seconds histogram",
		`idevald_request_seconds_bucket{le="+Inf"} 3`,
		"idevald_request_seconds_count 3",
		`idevald_stage_seconds_bucket{stage="queue",le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q\n%s", want, out)
		}
	}
	// HELP/TYPE for a vector metric appears once even with several series.
	if got := strings.Count(out, "# TYPE idevald_stage_seconds histogram"); got != 1 {
		t.Errorf("stage_seconds TYPE emitted %d times, want 1", got)
	}
	// Cumulative le buckets are in seconds: 80ms falls in a sub-second
	// bucket, so some finite bucket must already count 2 of the 3 samples.
	if !strings.Contains(out, "idevald_request_seconds_sum 1.083") {
		t.Errorf("histogram sum not in seconds:\n%s", out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"bad sample line",
			"# TYPE m counter\nm{oops 1\n", "malformed sample"},
		{"sample before TYPE",
			"m 1\n# TYPE m counter\n", "precedes its TYPE"},
		{"duplicate TYPE",
			"# TYPE m counter\nm 1\n# TYPE m gauge\n", "duplicate TYPE"},
		{"malformed HELP",
			"# HELP m\n# TYPE m counter\nm 1\n", "malformed HELP"},
		{"bad label pair",
			"# TYPE m counter\nm{1bad=\"x\"} 1\n", "malformed label"},
		{"decreasing buckets",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
			"decrease"},
		{"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_count 5\n",
			"+Inf"},
		{"Inf != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
			"!= count"},
		{"bucket without le",
			"# TYPE h histogram\nh_bucket 4\nh_count 4\n",
			"without le"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateExposition([]byte(c.text))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", c.text)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateExpositionAcceptsClean(t *testing.T) {
	clean := "# HELP m total things\n# TYPE m counter\nm 12\n" +
		"# TYPE g gauge\ng{a=\"x,y\",b=\"z\"} -1.5e3\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 0.5\nh_count 3\n"
	if err := ValidateExposition([]byte(clean)); err != nil {
		t.Errorf("rejected clean exposition: %v", err)
	}
}
