// Package obsv is the serving layer's low-overhead observability core:
// lock-free fixed-bucket latency histograms and a per-request stage-span
// tracer with a bounded ring of recent traces.
//
// The histogram replaces the metrics registry's sorted reservoir on the
// scrape path. Bucket upper edges grow by powers of √2 from a 10µs base,
// so two buckets per octave cover 10µs through ~6h in 63 finite buckets
// (plus overflow); recording is three atomic adds and percentile reads
// are a bucket walk — no sorting, no allocation, and no lock shared with
// the request path. Within-bucket linear interpolation keeps the
// percentile's relative error far below the √2−1 bucket width on real
// latency streams (the differential test in internal/serve pins ≤6%
// against the exact sorted-sample percentile).
//
// The tracer decomposes each request into pipeline stages — admission →
// queue wait → coalesce wait → execute → scatter (sharded fan-out, when
// serving from shard replicas) → merge → response write — the server-side
// refinement of the paper's §3.1.1 latency components. Each
// completed request feeds one histogram per visited stage, and a
// latency-constraint violation is attributed to its dominant stage, which
// is what turns "a constraint was violated" into "the queue (or the
// backend, or the coalesce slot) ate the budget".
package obsv

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Stage is one pipeline stage of a served request.
type Stage int

const (
	// StageAdmission covers request parsing, the circuit-breaker gate, and
	// session bookkeeping up to the admission decision.
	StageAdmission Stage = iota
	// StageQueue is time spent in the bounded admission queue waiting for
	// a worker.
	StageQueue
	// StageCoalesce is time a brush spent parked in its session's
	// single-flight slot waiting to ride an execution.
	StageCoalesce
	// StageExecute is backend execution, including the degradation
	// ladder's fallback tiers and injected faults.
	StageExecute
	// StageScatter is the sharded fan-out: time from handing a request to
	// every shard worker until the gather completes (all shards answered,
	// or the deadline cut the gather short). Single-replica requests never
	// visit it.
	StageScatter
	// StageMerge is post-execution work: merging per-shard answers by
	// addition, result bookkeeping, and response assembly up to the write.
	StageMerge
	// StageWrite is response serialization and the write to the socket.
	StageWrite

	// NumStages bounds the Stage space.
	NumStages
)

var stageNames = [NumStages]string{
	"admission", "queue", "coalesce", "execute", "scatter", "merge", "write",
}

// String returns the stage's wire name, used as the Prometheus and JSON
// label value.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// --- histogram --------------------------------------------------------------

// NumBuckets is the histogram's fixed bucket count: 63 finite √2-spaced
// buckets plus one overflow.
const NumBuckets = 64

// baseEdgeNS is bucket 0's upper edge: 10µs, below any real served
// request, so the bottom of the range loses nothing that matters.
const baseEdgeNS = 10_000

// bucketEdgesNS holds the finite upper edges in nanoseconds:
// edge[i] = 10µs·(√2)^i. Even indices are exact powers of two times the
// base (computed by doubling, not repeated multiplication, so they carry
// no accumulated float error).
var bucketEdgesNS = func() [NumBuckets - 1]float64 {
	var e [NumBuckets - 1]float64
	e[0] = baseEdgeNS
	e[1] = baseEdgeNS * math.Sqrt2
	for i := 2; i < len(e); i++ {
		e[i] = e[i-2] * 2
	}
	return e
}()

// BucketEdges returns the finite bucket upper edges, smallest first. The
// last bucket is overflow to +Inf.
func BucketEdges() []time.Duration {
	out := make([]time.Duration, len(bucketEdgesNS))
	for i, e := range bucketEdgesNS {
		out[i] = time.Duration(e)
	}
	return out
}

// bucketOf returns the bucket index for a duration in nanoseconds:
// the first bucket whose upper edge is >= ns, or the overflow bucket.
func bucketOf(ns float64) int {
	return sort.SearchFloat64s(bucketEdgesNS[:], ns)
}

// Histogram is a lock-free fixed-bucket latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use. Observing is
// wait-free (atomic adds plus one bounded max-CAS loop); reading is a
// racy-but-consistent-enough snapshot, which is what a metrics scrape
// wants.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(float64(ns))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram, cheap to take and
// safe to read repeatedly (each percentile walk sees the same counts).
type HistSnapshot struct {
	Counts [NumBuckets]int64
	Count  int64
	SumNS  int64
	MaxNS  int64
}

// Snapshot copies the histogram's counters. Counts total is derived from
// the bucket copies so the snapshot is internally consistent even if
// observations land mid-copy.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumNS = h.sumNS.Load()
	s.MaxNS = h.maxNS.Load()
	return s
}

// Percentile returns the p-th percentile (0–100) by walking the bucket
// counts and interpolating linearly inside the target bucket. p>=100
// returns the exact observed maximum. An empty histogram returns 0.
func (s *HistSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p >= 100 {
		return time.Duration(s.MaxNS)
	}
	if p < 0 {
		p = 0
	}
	target := p / 100 * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := 0.0
			if b > 0 {
				lo = bucketEdgesNS[b-1]
			}
			hi := float64(s.MaxNS)
			if b < len(bucketEdgesNS) && bucketEdgesNS[b] < hi {
				hi = bucketEdgesNS[b]
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(c)
			return time.Duration(lo + frac*(hi-lo))
		}
		cum = next
	}
	return time.Duration(s.MaxNS)
}

// Percentile is Snapshot().Percentile for one-off reads; callers reading
// several percentiles should snapshot once.
func (h *Histogram) Percentile(p float64) time.Duration {
	s := h.Snapshot()
	return s.Percentile(p)
}

// Mean returns the mean observed duration, 0 when empty.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}
