package leakcheck

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// CheckChildren records the test process's current child processes and
// registers a cleanup that fails the test if any child spawned during the
// test is still alive (or an unreaped zombie) shortly after every other
// cleanup ran — the process-level analog of Check for router tests that
// spawn real shard child processes. Like Check, call it FIRST so the
// assertion runs after the fleet's own cleanup has killed and reaped its
// children.
//
// On platforms without a readable /proc the guard is a no-op.
func CheckChildren(t *testing.T) {
	t.Helper()
	baseline, ok := childProcs()
	if !ok {
		return
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			current, ok := childProcs()
			if !ok {
				return
			}
			var leaked []string
			for pid, cmd := range current {
				if _, existed := baseline[pid]; !existed {
					leaked = append(leaked, fmt.Sprintf("pid %d (%s)", pid, cmd))
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				sort.Strings(leaked)
				t.Errorf("leakcheck: %d child process(es) outlive the test:\n  %s",
					len(leaked), strings.Join(leaked, "\n  "))
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

// childProcs scans /proc for processes whose parent is this process,
// returning pid → short command line. A zombie still counts: an exited
// child nobody reaped is a leak of the supervisor's Wait discipline.
func childProcs() (map[int]string, bool) {
	entries, err := os.ReadDir("/proc")
	if err != nil {
		return nil, false
	}
	self := os.Getpid()
	children := make(map[int]string)
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		if procPPID(pid) != self {
			continue
		}
		children[pid] = procComm(pid)
	}
	return children, true
}

// procPPID reads a process's parent pid from /proc/<pid>/stat; -1 when the
// process vanished mid-scan. The stat line is "pid (comm) state ppid ..."
// and comm may itself contain spaces and parentheses, so fields are split
// after the last ')'.
func procPPID(pid int) int {
	data, err := os.ReadFile("/proc/" + strconv.Itoa(pid) + "/stat")
	if err != nil {
		return -1
	}
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return -1
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 2 {
		return -1
	}
	ppid, err := strconv.Atoi(fields[1])
	if err != nil {
		return -1
	}
	return ppid
}

// procComm returns a short human-readable identity for the leak report:
// the command line when readable, the stat comm otherwise.
func procComm(pid int) string {
	if data, err := os.ReadFile("/proc/" + strconv.Itoa(pid) + "/cmdline"); err == nil && len(data) > 0 {
		cmd := strings.TrimRight(strings.ReplaceAll(string(data), "\x00", " "), " ")
		if len(cmd) > 120 {
			cmd = cmd[:120] + "..."
		}
		if cmd != "" {
			return cmd
		}
	}
	if data, err := os.ReadFile("/proc/" + strconv.Itoa(pid) + "/comm"); err == nil {
		return strings.TrimSpace(string(data))
	}
	return "?"
}
