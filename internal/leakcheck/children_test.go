package leakcheck

import (
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestChildProcsSeesSpawnAndReap drives the /proc scan directly: a spawned
// child appears in the child set, and after kill+Wait it disappears — the
// two transitions CheckChildren's cleanup polls between.
func TestChildProcsSeesSpawnAndReap(t *testing.T) {
	CheckChildren(t)
	if _, ok := childProcs(); !ok {
		t.Skip("no readable /proc on this platform")
	}

	// Re-exec the test binary against a test name that matches nothing: a
	// cheap, portable child that exits on its own (a zombie until Wait).
	cmd := exec.Command(os.Args[0], "-test.run=TestNoSuchTestEver")
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	pid := cmd.Process.Pid
	procs, _ := childProcs()
	if _, ok := procs[pid]; !ok {
		t.Fatalf("spawned child %d not in child set %v", pid, procs)
	}

	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		procs, _ = childProcs()
		if _, ok := procs[pid]; !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaped child %d still in child set", pid)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
