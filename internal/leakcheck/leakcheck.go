// Package leakcheck asserts that tests return the process to its baseline
// goroutine count — the harness that catches abandoned morsel workers on
// cancellation and serve-layer goroutines that outlive Drain.
//
// Call Check(t) FIRST in a test, before starting servers or clients:
// t.Cleanup runs in LIFO order, so registering first means the leak
// assertion runs last, after every other cleanup has shut its goroutines
// down.
package leakcheck

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// Check records the current goroutine count and registers a cleanup that
// fails the test if the count has not returned to that baseline shortly
// after all other cleanups ran. The poll loop closes idle HTTP connections
// each round — httptest clients park keep-alive readers in background
// goroutines that are live-but-idle, not leaked.
func Check(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			http.DefaultClient.CloseIdleConnections()
			n = runtime.NumGoroutine()
			if n <= baseline {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: goroutine count %d never returned to baseline %d\n%s", n, baseline, buf)
	})
}
