// Package sql implements the SQL subset the paper's workloads use: SELECT
// with expression projections (arithmetic, string concatenation, ROUND,
// COUNT), FROM over base tables, aliased subqueries and INNER JOINs, WHERE
// conjunctions and disjunctions of comparisons, GROUP BY, ORDER BY, and
// LIMIT/OFFSET.
//
// The package provides the lexer, AST, and recursive-descent parser; query
// planning and execution live in internal/engine.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // ( ) , . and operators
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "INNER": true, "JOIN": true, "ON": true,
	"ASC": true, "DESC": true, "BETWEEN": true, "IN": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "ROUND": true,
	"DISTINCT": true, "LIKE": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// bytes that cannot begin a token.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{TokKeyword, upper, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d == '.' {
					if seenDot {
						break
					}
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			// Exponent part (1e5, 2.5E-3).
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && input[j] >= '0' && input[j] <= '9' {
					i = j
					for i < n && input[i] >= '0' && input[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		case c == '|':
			if i+1 < n && input[i+1] == '|' {
				toks = append(toks, Token{TokSymbol, "||", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '|' at offset %d", i)
			}
		case c == '<' || c == '>' || c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokSymbol, input[i : i+2], i})
				i += 2
			} else if c == '<' && i+1 < n && input[i+1] == '>' {
				toks = append(toks, Token{TokSymbol, "<>", i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			} else {
				toks = append(toks, Token{TokSymbol, string(c), i})
				i++
			}
		case strings.ContainsRune("(),.*+-/=%", rune(c)):
			toks = append(toks, Token{TokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
