package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

// MustParse parses a statement and panics on error. Intended for workload
// templates that are known-valid at construction time.
func MustParse(input string) *SelectStmt {
	stmt, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return stmt
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text when given).
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %q, found %q", text, p.peek().Text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1, Offset: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}
	if p.accept(TokKeyword, "WHERE") {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		n, err := p.parseIntLit("LIMIT")
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	if p.accept(TokKeyword, "OFFSET") {
		n, err := p.parseIntLit("OFFSET")
		if err != nil {
			return nil, err
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseIntLit(clause string) (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errorf("%s expects an integer, found %q", clause, t.Text)
	}
	p.next()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errorf("%s expects an integer, found %q", clause, t.Text)
	}
	if n < 0 {
		return 0, p.errorf("%s must be non-negative", clause)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Expr: Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, p.errorf("expected alias after AS")
		}
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseTableExpr parses a FROM source with left-associative INNER JOINs.
// Parenthesized table expressions and derived tables are both handled.
func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept(TokKeyword, "INNER") {
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(TokKeyword, "JOIN") {
			break
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = JoinExpr{Left: left, Right: right, On: on}
	}
	return left, nil
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.accept(TokSymbol, "(") {
		if p.at(TokKeyword, "SELECT") {
			// Derived table.
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			alias := ""
			p.accept(TokKeyword, "AS")
			if p.at(TokIdent, "") {
				alias = p.next().Text
			}
			if alias == "" {
				return nil, p.errorf("derived table requires an alias")
			}
			return SubqueryRef{Query: sub, Alias: alias}, nil
		}
		// Parenthesized join tree.
		inner, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, p.errorf("expected table name")
	}
	ref := TableRef{Name: t.Text}
	p.accept(TokKeyword, "AS")
	if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := add ((=|<>|<|<=|>|>=|LIKE) add | BETWEEN add AND add)?
//	add     := mul ((+|-|'||') mul)*
//	mul     := unary ((*|/|%) unary)*
//	unary   := - unary | primary
//	primary := number | string | func | column | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.accept(TokKeyword, "LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: "LIKE", Left: left, Right: right}, nil
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{Expr: left, Lo: lo, Hi: hi}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "+"):
			op = "+"
		case p.accept(TokSymbol, "-"):
			op = "-"
		case p.accept(TokSymbol, "||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		case p.accept(TokSymbol, "%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

var funcKeywords = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "ROUND": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if !strings.ContainsAny(t.Text, ".eE") {
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return NumberLit{Value: float64(n), IsInt: true, Int: n}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return NumberLit{Value: f}, nil
	case t.Kind == TokString:
		p.next()
		return StringLit{Value: t.Text}, nil
	case t.Kind == TokKeyword && funcKeywords[t.Text]:
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		call := FuncCall{Name: t.Text}
		if p.accept(TokSymbol, "*") {
			call.Args = append(call.Args, Star{})
		} else if !p.at(TokSymbol, ")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.Kind == TokIdent:
		p.next()
		if p.accept(TokSymbol, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, p.errorf("expected column after %q.", t.Text)
			}
			return ColumnRef{Table: t.Text, Name: col.Text}, nil
		}
		return ColumnRef{Name: t.Text}, nil
	case p.accept(TokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected token %q", t.Text)
	}
}
