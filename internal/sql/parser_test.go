package sql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x >= 1.5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Errorf("first token %+v", toks[0])
	}
	// escaped quote
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string literal not lexed")
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	for _, src := range []string{"1", "1.5", ".5", "1e5", "2.5E-3", "100"} {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", src, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != src {
			t.Errorf("Lex(%q) = %+v", src, toks[0])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a | b", "a ! b", "a ; b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	ref, ok := stmt.From.(TableRef)
	if !ok || ref.Name != "t" {
		t.Errorf("From = %#v", stmt.From)
	}
	if stmt.Limit != -1 || stmt.Offset != -1 {
		t.Error("absent LIMIT/OFFSET not -1")
	}
}

// TestParsePaperQ1 parses the scrolling case study's simple select query
// verbatim from the paper.
func TestParsePaperQ1(t *testing.T) {
	q := `SELECT poster, title || '(' || year || ')',
	       director, genre, plot, rating
	       FROM imdb LIMIT 100 OFFSET 100`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 6 {
		t.Fatalf("items = %d, want 6", len(stmt.Items))
	}
	if stmt.Limit != 100 || stmt.Offset != 100 {
		t.Errorf("limit/offset = %d/%d", stmt.Limit, stmt.Offset)
	}
	concat, ok := stmt.Items[1].Expr.(BinaryExpr)
	if !ok || concat.Op != "||" {
		t.Errorf("second item not a concat: %v", stmt.Items[1].Expr)
	}
}

// TestParsePaperQ2 parses the streaming-join query verbatim from the paper.
func TestParsePaperQ2(t *testing.T) {
	q := `SELECT poster, title || '(' || year || ')',
	       director, genre, plot, rating
	       FROM (
	         (SELECT id, rating FROM imdbrating LIMIT 100 OFFSET 100) tmp
	         INNER JOIN movie ON tmp.id = movie.id
	       )`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	join, ok := stmt.From.(JoinExpr)
	if !ok {
		t.Fatalf("From = %#v, want JoinExpr", stmt.From)
	}
	sub, ok := join.Left.(SubqueryRef)
	if !ok || sub.Alias != "tmp" {
		t.Fatalf("join left = %#v", join.Left)
	}
	if sub.Query.Limit != 100 || sub.Query.Offset != 100 {
		t.Error("subquery limit/offset lost")
	}
	on, ok := join.On.(BinaryExpr)
	if !ok || on.Op != "=" {
		t.Fatalf("ON = %#v", join.On)
	}
	l := on.Left.(ColumnRef)
	r := on.Right.(ColumnRef)
	if l.Table != "tmp" || l.Name != "id" || r.Table != "movie" || r.Name != "id" {
		t.Errorf("ON refs = %v, %v", l, r)
	}
}

// TestParsePaperCrossfilterQuery parses the crossfilter histogram query
// verbatim from the paper.
func TestParsePaperCrossfilterQuery(t *testing.T) {
	q := `SELECT ROUND((y - 56.582) / ((57.774 - 56.582) / 20)),
	       COUNT(*)
	       FROM dataroad
	       WHERE x >= 8.146 AND x <= 11.2616367163
	         AND y >= 56.582 AND y <= 57.774
	         AND z >= -8.608 AND z <= 137.361
	       GROUP BY ROUND((y - 56.582) / ((57.774 - 56.582) / 20))
	       ORDER BY ROUND((y - 56.582) / ((57.774 - 56.582) / 20))`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	round, ok := stmt.Items[0].Expr.(FuncCall)
	if !ok || round.Name != "ROUND" {
		t.Fatalf("first item = %#v", stmt.Items[0].Expr)
	}
	count, ok := stmt.Items[1].Expr.(FuncCall)
	if !ok || count.Name != "COUNT" {
		t.Fatalf("second item = %#v", stmt.Items[1].Expr)
	}
	if _, ok := count.Args[0].(Star); !ok {
		t.Error("COUNT arg is not *")
	}
	if len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 {
		t.Errorf("groupby=%d orderby=%d", len(stmt.GroupBy), len(stmt.OrderBy))
	}
	if stmt.Where == nil {
		t.Fatal("WHERE missing")
	}
	// WHERE is a 6-way conjunction.
	n := 0
	Walk(stmt.Where, func(e Expr) {
		if b, ok := e.(BinaryExpr); ok && b.Op == "AND" {
			n++
		}
	})
	if n != 5 {
		t.Errorf("conjunction count = %d, want 5", n)
	}
}

func TestParseAliasesAndOrder(t *testing.T) {
	stmt, err := Parse("SELECT a AS x, b y FROM t ORDER BY a DESC, b ASC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "y" {
		t.Errorf("aliases = %q, %q", stmt.Items[0].Alias, stmt.Items[1].Alias)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
}

func TestParseBetweenAndNot(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND NOT b = 2")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := stmt.Where.(BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("Where = %#v", stmt.Where)
	}
	if _, ok := and.Left.(BetweenExpr); !ok {
		t.Errorf("left = %#v, want BetweenExpr", and.Left)
	}
	if _, ok := and.Right.(UnaryExpr); !ok {
		t.Errorf("right = %#v, want UnaryExpr", and.Right)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := stmt.Items[0].Expr.(BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op %q, want +", add.Op)
	}
	mul := add.Right.(BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("right op %q, want *", mul.Op)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE z >= -8.608")
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.Where.(BinaryExpr)
	if _, ok := cmp.Right.(UnaryExpr); !ok {
		t.Errorf("rhs = %#v, want UnaryExpr", cmp.Right)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT 1.5",
		"SELECT a FROM (SELECT b FROM u)", // derived table needs alias
		"SELECT a FROM t GROUP",
		"SELECT a FROM t extra junk (",
		"SELECT a b c FROM t",
		"SELECT count(",
		"SELECT a FROM t JOIN u", // missing ON
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestRoundTrip checks that String() output reparses to the same string —
// the property the workload logger relies on.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t WHERE x >= 1 AND x <= 2",
		"SELECT ROUND(y / 2), COUNT(*) FROM t GROUP BY ROUND(y / 2) ORDER BY ROUND(y / 2)",
		"SELECT a || 'x' FROM t LIMIT 10 OFFSET 20",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR NOT b = 3",
		"SELECT m.a, n.b FROM m INNER JOIN n ON m.id = n.id",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", q, s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("NOT SQL")
}

func TestSelectStar(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.Items[0].Expr.(Star); !ok {
		t.Error("SELECT * did not parse to Star")
	}
	if !strings.Contains(stmt.String(), "*") {
		t.Error("Star lost in String()")
	}
}
