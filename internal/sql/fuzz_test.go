package sql

import "testing"

// FuzzParse checks the parser never panics and that anything it accepts
// round-trips through String() to an equivalent statement.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT poster, title || '(' || year || ')' FROM imdb LIMIT 100 OFFSET 100",
		"SELECT ROUND((y - 56.582) / 0.0596), COUNT(*) FROM dataroad WHERE x >= 8.1 GROUP BY ROUND((y - 56.582) / 0.0596)",
		"SELECT m.a FROM m INNER JOIN n ON m.id = n.id AND n.v > 3",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR NOT b = 'x''y'",
		"SELECT -1.5e-3 + 2 * (3 - 4) FROM t ORDER BY a DESC, b LIMIT 0 OFFSET 0",
		"SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY k",
		"select a from t where s like '%x_'",
		"SELECT",
		"((((",
		"'unterminated",
		"SELECT a FROM (SELECT b FROM c) d",
		// The idequery REPL's documented examples and the experiment
		// drivers' generated shapes (opt.HistogramQuery, the ablation and
		// differential suites).
		"SELECT title, rating FROM imdb WHERE rating >= 8.5 AND year > 1990",
		"SELECT genre, COUNT(*), AVG(rating), MAX(rating) FROM imdb WHERE year >= 1980 GROUP BY genre ORDER BY genre",
		"SELECT ROUND((x - 8.1451) / 0.0796), COUNT(*) FROM dataroad WHERE x >= 8.1451 AND x <= 9.7375 AND y >= 56.5824 AND y <= 57.7507 AND z >= -3.2 AND z <= 120.5 GROUP BY ROUND((x - 8.1451) / 0.0796) ORDER BY ROUND((x - 8.1451) / 0.0796)",
		"SELECT title, rating FROM ((SELECT id, rating FROM imdbrating LIMIT 200 OFFSET 100) tmp INNER JOIN movie ON tmp.id = movie.id)",
		"SELECT ROUND(y, 1), COUNT(*), SUM(x), AVG(z), MIN(x), MAX(z) FROM dataroad WHERE x >= 9 GROUP BY ROUND(y, 1) ORDER BY ROUND(y, 1)",
		"SELECT x, y, z FROM dataroad WHERE y >= 56.6 AND y <= 57.1 ORDER BY x, y, z LIMIT 200",
		"SELECT COUNT(*) * 2 + 1 FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must round-trip stably.
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", input, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("unstable rendering: %q → %q", printed, again.String())
		}
	})
}
