package sql

import (
	"fmt"
	"strings"
)

// Expr is a SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef names a column, optionally qualified by a table or alias.
type ColumnRef struct {
	Table string // "" when unqualified
	Name  string
}

func (ColumnRef) exprNode() {}

func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// NumberLit is a numeric literal. Integral literals keep IsInt=true so that
// integer semantics (e.g. LIMIT counts) survive.
type NumberLit struct {
	Value float64
	IsInt bool
	Int   int64
}

func (NumberLit) exprNode() {}

func (n NumberLit) String() string {
	if n.IsInt {
		return fmt.Sprintf("%d", n.Int)
	}
	return fmt.Sprintf("%g", n.Value)
}

// StringLit is a string literal.
type StringLit struct{ Value string }

func (StringLit) exprNode() {}

func (s StringLit) String() string { return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'" }

// Star is the bare * projection (or COUNT(*) argument).
type Star struct{}

func (Star) exprNode() {}

func (Star) String() string { return "*" }

// BinaryExpr applies an infix operator: + - * / % || AND OR and the
// comparison operators = <> < <= > >=.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (BinaryExpr) exprNode() {}

func (b BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (UnaryExpr) exprNode() {}

func (u UnaryExpr) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.Expr)
	}
	return fmt.Sprintf("(-%s)", u.Expr)
}

// FuncCall is a function or aggregate call: ROUND(e), COUNT(*), SUM(e),
// AVG(e), MIN(e), MAX(e).
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
}

func (FuncCall) exprNode() {}

func (f FuncCall) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

// BetweenExpr is `e BETWEEN lo AND hi`.
type BetweenExpr struct {
	Expr, Lo, Hi Expr
}

func (BetweenExpr) exprNode() {}

func (b BetweenExpr) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.Expr, b.Lo, b.Hi)
}

// SelectItem is one projection: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// TableExpr is a FROM-clause source.
type TableExpr interface {
	fmt.Stringer
	tableNode()
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (TableRef) tableNode() {}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// SubqueryRef is an aliased derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Query *SelectStmt
	Alias string
}

func (SubqueryRef) tableNode() {}

func (s SubqueryRef) String() string {
	return fmt.Sprintf("(%s) %s", s.Query, s.Alias)
}

// JoinExpr is `left INNER JOIN right ON cond`.
type JoinExpr struct {
	Left, Right TableExpr
	On          Expr
}

func (JoinExpr) tableNode() {}

func (j JoinExpr) String() string {
	return fmt.Sprintf("(%s INNER JOIN %s ON %s)", j.Left, j.Right, j.On)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// SelectStmt is a parsed SELECT statement. Limit and Offset are -1 when
// absent.
type SelectStmt struct {
	Items   []SelectItem
	From    TableExpr
	Where   Expr // nil when absent
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int64
	Offset  int64
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.String())
	}
	if s.From != nil {
		sb.WriteString(" FROM ")
		sb.WriteString(s.From.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	if s.Offset >= 0 {
		fmt.Fprintf(&sb, " OFFSET %d", s.Offset)
	}
	return sb.String()
}

// Walk visits every expression node in the tree rooted at e, depth-first,
// calling fn for each. Used by the planner to locate aggregates and column
// references.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case BinaryExpr:
		Walk(v.Left, fn)
		Walk(v.Right, fn)
	case *BinaryExpr:
		Walk(v.Left, fn)
		Walk(v.Right, fn)
	case UnaryExpr:
		Walk(v.Expr, fn)
	case *UnaryExpr:
		Walk(v.Expr, fn)
	case FuncCall:
		for _, a := range v.Args {
			Walk(a, fn)
		}
	case *FuncCall:
		for _, a := range v.Args {
			Walk(a, fn)
		}
	case BetweenExpr:
		Walk(v.Expr, fn)
		Walk(v.Lo, fn)
		Walk(v.Hi, fn)
	case *BetweenExpr:
		Walk(v.Expr, fn)
		Walk(v.Lo, fn)
		Walk(v.Hi, fn)
	}
}
