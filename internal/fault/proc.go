package fault

import "time"

// Process-level chaos: deterministic schedules of faults applied to real
// shard child processes (internal/router executes them against live PIDs).
// Unlike the in-process Injector, which perturbs individual operations,
// these events kill, freeze, or blackhole a whole process — the failure
// modes a single-process fault injector cannot express.
//
// Determinism follows the same discipline as the Injector: every event is a
// pure function of (seed, event index) through splitmix64, never the wall
// clock, so two runs with the same seed play the same schedule.

// ProcKind is one class of process-level fault.
type ProcKind int

const (
	// ProcKill SIGKILLs the child: no cleanup, no goodbye — the supervisor
	// must notice the exit and restart it.
	ProcKill ProcKind = iota
	// ProcStop SIGSTOPs the child and SIGCONTs it after Pause: the process
	// is alive but frozen, so its listener accepts connections that nothing
	// answers — the "slow but alive" mode hedged gathers exist for.
	ProcStop
	// ProcBlackhole makes the child hold every in-flight and new request
	// unanswered for Pause without touching the process: the listener
	// accepts, reads, and then sits on the response — a network partition
	// as seen from the router.
	ProcBlackhole
)

// String names the kind for reports and bench output.
func (k ProcKind) String() string {
	switch k {
	case ProcKill:
		return "kill"
	case ProcStop:
		return "stop"
	case ProcBlackhole:
		return "blackhole"
	default:
		return "unknown"
	}
}

// ProcEvent is one scheduled process fault: at offset At from the start of
// the chaos run, apply Kind to shard Shard. Pause is the hold duration for
// stop/blackhole events; kills have no duration.
type ProcEvent struct {
	At    time.Duration
	Shard int
	Kind  ProcKind
	Pause time.Duration
}

// ProcProfile parameterizes a deterministic process-fault schedule: one
// event per Period, each drawing its target shard and kind from the seed.
type ProcProfile struct {
	Name   string
	Period time.Duration
	Kinds  []ProcKind
	Pause  time.Duration // hold for stop/blackhole events
}

// ProcProfiles are the named process chaos profiles `loadgen -routerbench`
// cycles through. Periods are sized so a few-second bench run sees several
// events; pauses are sized against metrics.DefaultConstraint (500 ms) so a
// frozen shard blows the budget unless a deadline or hedge saves the
// request.
var ProcProfiles = []ProcProfile{
	{Name: "prockill", Period: 600 * time.Millisecond, Kinds: []ProcKind{ProcKill}},
	{Name: "procstop", Period: 500 * time.Millisecond, Kinds: []ProcKind{ProcStop}, Pause: 300 * time.Millisecond},
	{Name: "procblackhole", Period: 500 * time.Millisecond, Kinds: []ProcKind{ProcBlackhole}, Pause: 300 * time.Millisecond},
	{
		Name:   "procmix",
		Period: 400 * time.Millisecond,
		Kinds:  []ProcKind{ProcKill, ProcStop, ProcBlackhole},
		Pause:  250 * time.Millisecond,
	},
}

// ProcProfileByName returns the named process profile. Unknown names return
// false.
func ProcProfileByName(name string) (ProcProfile, bool) {
	for _, p := range ProcProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return ProcProfile{}, false
}

// Schedule draws the profile's deterministic event list for one run: events
// at Period, 2·Period, ... up to horizon, each targeting a shard and kind
// hashed from (seed, event index). The same (profile, seed, shards,
// horizon) always yields the same schedule.
func (p ProcProfile) Schedule(seed int64, shards int, horizon time.Duration) []ProcEvent {
	if p.Period <= 0 || shards <= 0 || len(p.Kinds) == 0 {
		return nil
	}
	var events []ProcEvent
	s := uint64(seed)
	for k := uint64(0); ; k++ {
		at := time.Duration(k+1) * p.Period
		if at > horizon {
			return events
		}
		ev := ProcEvent{
			At:    at,
			Shard: int(splitmix64(s^splitmix64(k*2+1)) % uint64(shards)),
			Kind:  p.Kinds[int(splitmix64(s^splitmix64(k*2+2))%uint64(len(p.Kinds)))],
		}
		if ev.Kind != ProcKill {
			ev.Pause = p.Pause
		}
		events = append(events, ev)
	}
}
