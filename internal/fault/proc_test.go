package fault

import (
	"reflect"
	"testing"
	"time"
)

// TestProcScheduleDeterministic pins the determinism contract: the same
// (profile, seed, shards, horizon) draws byte-identical schedules, and a
// different seed draws a different one.
func TestProcScheduleDeterministic(t *testing.T) {
	for _, p := range ProcProfiles {
		a := p.Schedule(42, 4, 5*time.Second)
		b := p.Schedule(42, 4, 5*time.Second)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed drew different schedules\n%v\n%v", p.Name, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule over 5s with period %v", p.Name, p.Period)
		}
		c := p.Schedule(43, 4, 5*time.Second)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: seeds 42 and 43 drew identical schedules", p.Name)
		}
	}
}

// TestProcScheduleShape checks event invariants: monotonically increasing
// offsets at the profile period, shards in range, kinds drawn from the
// profile, pauses only on stop/blackhole.
func TestProcScheduleShape(t *testing.T) {
	for _, p := range ProcProfiles {
		events := p.Schedule(7, 3, 4*time.Second)
		for i, ev := range events {
			if want := time.Duration(i+1) * p.Period; ev.At != want {
				t.Fatalf("%s event %d: at %v, want %v", p.Name, i, ev.At, want)
			}
			if ev.Shard < 0 || ev.Shard >= 3 {
				t.Fatalf("%s event %d: shard %d out of range", p.Name, i, ev.Shard)
			}
			found := false
			for _, k := range p.Kinds {
				if ev.Kind == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s event %d: kind %v not in profile", p.Name, i, ev.Kind)
			}
			if ev.Kind == ProcKill && ev.Pause != 0 {
				t.Fatalf("%s event %d: kill with pause %v", p.Name, i, ev.Pause)
			}
			if ev.Kind != ProcKill && ev.Pause != p.Pause {
				t.Fatalf("%s event %d: %v pause %v, want %v", p.Name, i, ev.Kind, ev.Pause, p.Pause)
			}
		}
	}
}

// TestProcProfileByName covers lookup hits and misses, and that every kind
// has a stable name (bench output keys on them).
func TestProcProfileByName(t *testing.T) {
	for _, p := range ProcProfiles {
		got, ok := ProcProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("ProcProfileByName(%q) = %+v, %v", p.Name, got, ok)
		}
	}
	if _, ok := ProcProfileByName("nosuch"); ok {
		t.Fatal("ProcProfileByName accepted an unknown name")
	}
	names := map[string]bool{}
	for _, k := range []ProcKind{ProcKill, ProcStop, ProcBlackhole} {
		if k.String() == "unknown" || names[k.String()] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, k.String())
		}
		names[k.String()] = true
	}
}
