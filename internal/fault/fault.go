// Package fault implements deterministic, seeded fault injection for the
// serving layer's chaos tests and `loadgen -chaos` mode. An Injector wraps a
// backend operation with latency spikes, error bursts, long stalls, and a
// constant slow-worker perturbation, drawn from a named Profile.
//
// Determinism is the point: every fault decision is a pure function of
// (seed, operation index), hashed through splitmix64 — never the wall
// clock, never math/rand global state. Two runs with the same seed and the
// same operation interleaving observe the same schedule of faults, which is
// what lets the chaos tests compare deadline-aware serving against the
// no-deadline baseline on identical adversity and assert a fixed LCV bound.
package fault

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by injected operation failures. Serving
// code matches it with errors.Is to distinguish injected faults (retryable)
// from real execution errors (not).
var ErrInjected = errors.New("fault: injected backend error")

// Profile parameterizes an injector. Probabilities are per operation and
// independent; zero values disable that fault class.
type Profile struct {
	Name string

	BaseDelay  time.Duration // constant added latency on every op (slow worker)
	SpikeProb  float64       // probability of a latency spike
	SpikeDelay time.Duration
	ErrProb    float64       // probability the op fails with ErrInjected
	StallProb  float64       // probability of a long stall
	StallDelay time.Duration
}

// Profiles are the named fault profiles `loadgen -chaos` cycles through.
// Delays are sized against metrics.DefaultConstraint (500 ms): spikes eat a
// chunk of the budget, stalls blow it outright unless a deadline cuts them.
var Profiles = []Profile{
	{Name: "spikes", SpikeProb: 0.2, SpikeDelay: 40 * time.Millisecond},
	{Name: "errors", ErrProb: 0.15},
	{Name: "stall", StallProb: 0.25, StallDelay: 900 * time.Millisecond},
	{Name: "slow", BaseDelay: 8 * time.Millisecond},
	{
		Name:      "mixed",
		BaseDelay: 2 * time.Millisecond,
		SpikeProb: 0.1, SpikeDelay: 40 * time.Millisecond,
		ErrProb:   0.05,
		StallProb: 0.05, StallDelay: 900 * time.Millisecond,
	},
}

// ProfileByName returns the named profile. Unknown names return false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Op is one operation's injected fault: a delay to sleep before running it,
// and whether it fails outright.
type Op struct {
	Delay time.Duration
	Err   bool
	Stall bool // Delay came from the stall class (diagnostic)
}

// Stats counts injected faults, for reports and test assertions.
type Stats struct {
	Ops    int64
	Spikes int64
	Errs   int64
	Stalls int64
}

// Injector draws a deterministic fault schedule from (seed, op counter).
// Safe for concurrent use: the counter is atomic, so concurrent callers
// partition the schedule (each index is drawn exactly once); which caller
// gets which index depends on interleaving, but the multiset of faults over
// any N operations does not.
type Injector struct {
	profile atomic.Pointer[Profile]
	seed    uint64
	ops     atomic.Int64
	spikes  atomic.Int64
	errs    atomic.Int64
	stalls  atomic.Int64
}

// New creates an injector for the profile with the given seed.
func New(profile Profile, seed int64) *Injector {
	in := &Injector{seed: uint64(seed)}
	in.profile.Store(&profile)
	return in
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return *in.profile.Load() }

// SetProfile swaps the active profile — chaos tests use it to clear a fault
// mid-run and watch recovery. Safe to call while operations are in flight;
// the op counter (and with it determinism of the index sequence) carries
// over.
func (in *Injector) SetProfile(p Profile) { in.profile.Store(&p) }

// Stats returns the counts of injected faults so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Ops:    in.ops.Load(),
		Spikes: in.spikes.Load(),
		Errs:   in.errs.Load(),
		Stalls: in.stalls.Load(),
	}
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix whose
// output over sequential inputs passes BigCrush — plenty for fault
// scheduling.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform returns a uniform [0,1) draw for (seed, op index k, fault class).
func (in *Injector) uniform(k int64, class uint64) float64 {
	h := splitmix64(in.seed ^ splitmix64(uint64(k)*3+class))
	return float64(h>>11) / float64(1<<53)
}

// Next draws the fault for the next operation index.
func (in *Injector) Next() Op {
	k := in.ops.Add(1) - 1
	p := *in.profile.Load()
	op := Op{Delay: p.BaseDelay}
	if p.ErrProb > 0 && in.uniform(k, 1) < p.ErrProb {
		in.errs.Add(1)
		op.Err = true
		return op
	}
	if p.StallProb > 0 && in.uniform(k, 2) < p.StallProb {
		in.stalls.Add(1)
		op.Delay += p.StallDelay
		op.Stall = true
		return op
	}
	if p.SpikeProb > 0 && in.uniform(k, 3) < p.SpikeProb {
		in.spikes.Add(1)
		op.Delay += p.SpikeDelay
	}
	return op
}

// Sleep blocks for d or until ctx expires, whichever is first — this is
// what lets a deadline cut an injected stall short instead of serving it in
// full. A nil ctx sleeps the full duration.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do draws the next fault and applies it: sleeps the injected delay (cut
// short by ctx) and returns ErrInjected for error faults or the ctx error
// for deadline expiry during the delay. A nil return means the wrapped
// operation should run normally.
func (in *Injector) Do(ctx context.Context) error {
	op := in.Next()
	if err := Sleep(ctx, op.Delay); err != nil {
		return err
	}
	if op.Err {
		return ErrInjected
	}
	return nil
}
