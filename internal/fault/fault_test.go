package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeterministic: the fault schedule is a pure function of (seed, op
// index) — two injectors with the same seed draw identical schedules, and a
// different seed draws a different one.
func TestDeterministic(t *testing.T) {
	p, ok := ProfileByName("mixed")
	if !ok {
		t.Fatal("no mixed profile")
	}
	a, b := New(p, 42), New(p, 42)
	other := New(p, 43)
	same := true
	diff := false
	for i := 0; i < 2000; i++ {
		oa, ob, oc := a.Next(), b.Next(), other.Next()
		if oa != ob {
			same = false
		}
		if oa != oc {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed drew different schedules")
	}
	if !diff {
		t.Fatal("different seeds drew identical schedules")
	}
}

// TestRates: over many draws every configured fault class fires at roughly
// its configured probability.
func TestRates(t *testing.T) {
	p := Profile{
		SpikeProb: 0.2, SpikeDelay: time.Millisecond,
		ErrProb:   0.1,
		StallProb: 0.05, StallDelay: time.Millisecond,
	}
	in := New(p, 7)
	const n = 20000
	for i := 0; i < n; i++ {
		in.Next()
	}
	s := in.Stats()
	if s.Ops != n {
		t.Fatalf("ops = %d, want %d", s.Ops, n)
	}
	check := func(name string, got int64, want float64) {
		frac := float64(got) / n
		if frac < want*0.7 || frac > want*1.3 {
			t.Errorf("%s rate = %.3f, want ~%.3f", name, frac, want)
		}
	}
	check("err", s.Errs, p.ErrProb)
	// Stalls and spikes draw after the error class skims its share off.
	check("stall", s.Stalls, p.StallProb*(1-p.ErrProb))
	check("spike", s.Spikes, p.SpikeProb*(1-p.ErrProb)*(1-p.StallProb))
}

// TestSleepCutByContext: an expired deadline cuts an injected stall short
// instead of serving it in full.
func TestSleepCutByContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Sleep(ctx, 5*time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("sleep ran %v, deadline did not cut it", elapsed)
	}
}

// TestDoInjectsErrors: Do surfaces ErrInjected for error faults under a
// pure-error profile.
func TestDoInjectsErrors(t *testing.T) {
	in := New(Profile{ErrProb: 1}, 1)
	if err := in.Do(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	clean := New(Profile{}, 1)
	if err := clean.Do(context.Background()); err != nil {
		t.Fatalf("clean profile injected %v", err)
	}
}
