package datacube

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

// edgeTable builds a tiny two-column table for validation tests.
func edgeTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("edge", storage.Schema{
		{Name: "a", Type: storage.Float64},
		{Name: "b", Type: storage.Float64},
	})
	for i := 0; i < 40; i++ {
		tbl.MustAppendRow(storage.NewFloat(float64(i%10)), storage.NewFloat(float64(i%4)))
	}
	return tbl
}

// TestHistogramIntoValidation is the satellite's table-driven edge matrix:
// both cube forms must return errors (never silently truncate) for
// mismatched output or filter lengths, must treat a zero-length filter
// slice as the explicit unfiltered state, and must handle 1-bin dimensions.
func TestHistogramIntoValidation(t *testing.T) {
	tbl := edgeTable(t)
	dims := []Dim{
		{Name: "a", Lo: 0, Hi: 10, Bins: 5},
		{Name: "b", Lo: 0, Hi: 4, Bins: 4},
	}
	cube, err := Build(tbl, dims)
	if err != nil {
		t.Fatal(err)
	}
	prefix := NewPrefix(cube)

	type call func(target int, filters []*Range, out []int64) error
	impls := []struct {
		name string
		hist call
	}{
		{"cube", cube.HistogramInto},
		{"prefix", prefix.HistogramInto},
	}
	cases := []struct {
		name    string
		target  int
		filters []*Range
		outLen  int
		wantErr string // substring; "" means success
	}{
		{"nil filters", 0, nil, 5, ""},
		{"empty filter slice means unfiltered", 0, []*Range{}, 5, ""},
		{"all-nil filters at full arity", 1, []*Range{nil, nil}, 4, ""},
		{"short out", 0, nil, 4, "out has 4 bins"},
		{"long out", 0, nil, 6, "out has 6 bins"},
		{"zero out", 0, nil, 0, "out has 0 bins"},
		{"one filter for two dims", 0, []*Range{{Lo: 0, Hi: 1}}, 5, "1 filters for 2 dimensions"},
		{"three filters for two dims", 0, []*Range{nil, nil, nil}, 5, "3 filters for 2 dimensions"},
		{"negative target", -1, nil, 5, "no dimension -1"},
		{"target out of range", 2, nil, 5, "no dimension 2"},
	}
	for _, impl := range impls {
		for _, tc := range cases {
			err := impl.hist(tc.target, tc.filters, make([]int64, tc.outLen))
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("%s/%s: unexpected error %v", impl.name, tc.name, err)
				}
				continue
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s/%s: error %v, want %q", impl.name, tc.name, err, tc.wantErr)
			}
		}
	}

	// A zero-length filter slice must produce the same counts as nil.
	for target := range dims {
		a, err := cube.Histogram(target, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, dims[target].Bins)
		if err := cube.HistogramInto(target, []*Range{}, out); err != nil {
			t.Fatal(err)
		}
		for b := range a {
			if out[b] != a[b] {
				t.Fatalf("target %d bin %d: empty-slice %d vs nil %d", target, b, out[b], a[b])
			}
		}
	}

	// Count shares binBox's validation.
	if _, err := prefix.Count([]*Range{nil}); err == nil {
		t.Error("prefix.Count accepted wrong filter arity")
	}
	if n, err := prefix.Count([]*Range{}); err != nil || n != int64(tbl.NumRows()) {
		t.Errorf("prefix.Count([]) = %d, %v; want full table", n, err)
	}
}

// TestOneBinDimensions pins the degenerate 1-bin case: every record lands
// in the single bin, filters reduce to all-or-nothing, and both cube forms
// agree.
func TestOneBinDimensions(t *testing.T) {
	tbl := edgeTable(t)
	dims := []Dim{
		{Name: "a", Lo: 0, Hi: 10, Bins: 1},
		{Name: "b", Lo: 0, Hi: 4, Bins: 3},
	}
	cube, err := Build(tbl, dims)
	if err != nil {
		t.Fatal(err)
	}
	prefix := NewPrefix(cube)
	for _, filters := range [][]*Range{
		nil,
		{nil, {Lo: 0, Hi: 2}},
		{{Lo: 3, Hi: 7}, nil},
		{{Lo: 10, Hi: 0}, nil}, // inverted: empty
	} {
		for target := range dims {
			want, err := cube.Histogram(target, filters)
			if err != nil {
				t.Fatal(err)
			}
			got, err := prefix.Histogram(target, filters)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != dims[target].Bins || len(got) != len(want) {
				t.Fatalf("target %d: lengths %d/%d", target, len(got), len(want))
			}
			for b := range want {
				if got[b] != want[b] {
					t.Fatalf("target %d bin %d: %d vs %d (filters %+v)", target, b, got[b], want[b], filters)
				}
			}
		}
	}
	h, err := cube.Histogram(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != int64(tbl.NumRows()) {
		t.Fatalf("1-bin histogram = %d, want all %d records", h[0], tbl.NumRows())
	}
	// Zero bins is rejected at build time, not silently accepted.
	if _, err := Build(tbl, []Dim{{Name: "a", Lo: 0, Hi: 10, Bins: 0}}); err == nil {
		t.Error("zero-bin dimension accepted")
	}
}
