// Prefix-sum (summed-area) cube: the dense cube's counts integrated along
// every axis, so a filtered count needs only the box's 2^d corners and a
// filtered histogram one corner difference per target bin — O(bins·2^(d-1))
// instead of walking the whole filtered cell box. This is the standard
// summed-area-table decomposition imMens applies to its data tiles; for
// the 20³ crossfilter cube it turns an up-to-8000-cell walk into at most
// 8 (Count) or ~160 (Histogram) array reads per query, independent of both
// the record count and the brush size.

package datacube

import (
	"context"
	"fmt"

	"repro/internal/storage"
)

// PrefixCube is the summed-area form of a Cube. Cell (i₁..i_d) of sums
// holds the record count over bins [0, i₁) × … × [0, i_d) — an exclusive
// prefix on a (Bins+1)-per-dimension grid, so the zero boundary planes
// make every inclusion-exclusion corner a plain lookup.
type PrefixCube struct {
	dims    []Dim
	strides []int // strides over the (Bins+1)-sized prefix grid
	sums    []int64
	records int
}

// NewPrefix integrates a dense cube into its summed-area form in
// O(d · cells). The cube is not retained.
func NewPrefix(c *Cube) *PrefixCube {
	p := &PrefixCube{dims: c.dims, records: c.records}
	p.strides = make([]int, len(c.dims))
	total := 1
	for i := len(c.dims) - 1; i >= 0; i-- {
		p.strides[i] = total
		total *= c.dims[i].Bins + 1
	}
	p.sums = make([]int64, total)

	// Scatter the cube's cells to prefix coordinates shifted by one along
	// every axis, leaving the zero planes empty.
	for cell, v := range c.cells {
		if v == 0 {
			continue
		}
		idx, rest := 0, cell
		for i := range c.dims {
			b := rest / c.strides[i]
			rest %= c.strides[i]
			idx += (b + 1) * p.strides[i]
		}
		p.sums[idx] = v
	}
	// Integrate along one axis at a time. Ascending flat order guarantees
	// idx-stride is already integrated when idx needs it.
	for a := range p.dims {
		stride, size := p.strides[a], p.dims[a].Bins+1
		for idx := range p.sums {
			if (idx/stride)%size != 0 {
				p.sums[idx] += p.sums[idx-stride]
			}
		}
	}
	return p
}

// BuildPrefix builds the cube with the given parallelism and integrates it
// — the one-call construction path for serving.
func BuildPrefix(t *storage.Table, dims []Dim, parallelism int) (*PrefixCube, error) {
	return BuildPrefixCtx(nil, t, dims, parallelism)
}

// BuildPrefixCtx is BuildPrefix under a context, with BuildWithCtx's
// cancellation contract for the counting pass. (The integration pass is
// O(cells), far below one morsel of row work, and runs to completion.)
func BuildPrefixCtx(ctx context.Context, t *storage.Table, dims []Dim, parallelism int) (*PrefixCube, error) {
	c, err := BuildWithCtx(ctx, t, dims, parallelism)
	if err != nil {
		return nil, err
	}
	return NewPrefix(c), nil
}

// Sums exposes the integrated prefix grid in ascending flat order — the
// cube's entire query state. Together with the dims it fully determines
// every Count/Histogram answer, which is what makes prefix cubes snapshot
// cleanly: persist dims + records + sums, reconstruct with
// NewPrefixFromSums. The returned slice is the live grid; callers must
// treat it as read-only.
func (p *PrefixCube) Sums() []int64 { return p.sums }

// NewPrefixFromSums reconstructs a PrefixCube from a previously integrated
// prefix grid (a Sums() result, possibly mapped read-only from a snapshot
// file — queries only ever read the grid). The grid length must match the
// dims' (Bins+1)-per-dimension geometry exactly.
func NewPrefixFromSums(dims []Dim, records int, sums []int64) (*PrefixCube, error) {
	if len(dims) == 0 || len(dims) > maxHistDims {
		return nil, fmt.Errorf("datacube: %d dimensions out of range", len(dims))
	}
	p := &PrefixCube{dims: dims, records: records}
	p.strides = make([]int, len(dims))
	total := 1
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i].Bins < 1 {
			return nil, fmt.Errorf("datacube: dimension %q has %d bins", dims[i].Name, dims[i].Bins)
		}
		p.strides[i] = total
		total *= dims[i].Bins + 1
	}
	if len(sums) != total {
		return nil, fmt.Errorf("datacube: prefix grid has %d cells, dims need %d", len(sums), total)
	}
	p.sums = sums
	return p, nil
}

// NumRecords returns the number of records aggregated into the cube.
func (p *PrefixCube) NumRecords() int { return p.records }

// NumDims returns the cube's dimension count.
func (p *PrefixCube) NumDims() int { return len(p.dims) }

// Dim returns dimension i's descriptor.
func (p *PrefixCube) Dim(i int) Dim { return p.dims[i] }

// DimIndex finds a dimension by name, or -1.
func (p *PrefixCube) DimIndex(name string) int {
	for i, d := range p.dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// binBox resolves filters to an inclusive bin box, reporting empty boxes.
// A zero-length filter slice means unfiltered, like nil; any other length
// mismatch against the dimension count is an error.
func (p *PrefixCube) binBox(filters []*Range, lo, hi []int) (empty bool, err error) {
	if len(filters) != 0 && len(filters) != len(p.dims) {
		return false, fmt.Errorf("datacube: %d filters for %d dimensions", len(filters), len(p.dims))
	}
	for i, d := range p.dims {
		lo[i], hi[i] = 0, d.Bins-1
		if len(filters) != 0 && filters[i] != nil {
			lo[i], hi[i] = d.binRange(*filters[i])
			if lo[i] > hi[i] {
				return true, nil
			}
		}
	}
	return false, nil
}

// Count returns the number of records inside the filtered box (bin
// precision) in O(2^d) corner lookups: the box sum is the alternating sum
// of the prefix values at the box's corners.
func (p *PrefixCube) Count(filters []*Range) (int64, error) {
	var loBuf, hiBuf [maxHistDims]int
	lo, hi := loBuf[:len(p.dims)], hiBuf[:len(p.dims)]
	empty, err := p.binBox(filters, lo, hi)
	if err != nil {
		return 0, err
	}
	if empty {
		return 0, nil
	}
	var sum int64
	for mask := 0; mask < 1<<len(p.dims); mask++ {
		idx, sign := 0, int64(1)
		for i := range p.dims {
			if mask&(1<<i) != 0 {
				idx += lo[i] * p.strides[i]
				sign = -sign
			} else {
				idx += (hi[i] + 1) * p.strides[i]
			}
		}
		sum += sign * p.sums[idx]
	}
	return sum, nil
}

// Histogram returns dimension target's histogram under the given filters,
// allocating the result. See HistogramInto.
func (p *PrefixCube) Histogram(target int, filters []*Range) ([]int64, error) {
	if target < 0 || target >= len(p.dims) {
		return nil, fmt.Errorf("datacube: no dimension %d", target)
	}
	out := make([]int64, p.dims[target].Bins)
	if err := p.HistogramInto(target, filters, out); err != nil {
		return nil, err
	}
	return out, nil
}

// HistogramInto computes dimension target's histogram into out, zeroing it
// first. For each of the 2^(d-1) corner combinations of the non-target
// dimensions, the target axis is differenced bin by bin — adjacent prefix
// values bracket exactly one bin — so the cost is O(bins · 2^(d-1))
// regardless of the filter box's size. Results are identical to
// Cube.HistogramInto for every filter set.
func (p *PrefixCube) HistogramInto(target int, filters []*Range, out []int64) error {
	if target < 0 || target >= len(p.dims) {
		return fmt.Errorf("datacube: no dimension %d", target)
	}
	if len(out) != p.dims[target].Bins {
		return fmt.Errorf("datacube: out has %d bins, dimension %d has %d", len(out), target, p.dims[target].Bins)
	}
	for b := range out {
		out[b] = 0
	}
	var loBuf, hiBuf, othersBuf [maxHistDims]int
	lo, hi := loBuf[:len(p.dims)], hiBuf[:len(p.dims)]
	empty, err := p.binBox(filters, lo, hi)
	if err != nil {
		return err
	}
	if empty {
		return nil
	}
	others := othersBuf[:0]
	for i := range p.dims {
		if i != target {
			others = append(others, i)
		}
	}
	st := p.strides[target]
	for mask := 0; mask < 1<<len(others); mask++ {
		base, sign := 0, int64(1)
		for j, i := range others {
			if mask&(1<<j) != 0 {
				base += lo[i] * p.strides[i]
				sign = -sign
			} else {
				base += (hi[i] + 1) * p.strides[i]
			}
		}
		prev := p.sums[base+lo[target]*st]
		for b := lo[target]; b <= hi[target]; b++ {
			next := p.sums[base+(b+1)*st]
			out[b] += sign * (next - prev)
			prev = next
		}
	}
	return nil
}
