// Package datacube implements a dense precomputed bin cube over numeric
// dimensions — the imMens/Nanocubes family of structures the survey's
// related work credits with real-time (50 fps) brushing over billions of
// records. All dimensions are binned up front and counts are stored per
// cell, so any filtered histogram query costs O(cells), independent of the
// record count.
//
// The trade-off against crossfilter-style incremental maintenance and
// against SQL scans is the point: the cube pays a one-time build over the
// data and loses range precision to bin granularity, but answers every
// subsequent query in microseconds. The ablation benchmark quantifies all
// three.
package datacube

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/colstore"
	"repro/internal/morsel"
	"repro/internal/storage"
)

// Dim describes one cube dimension.
type Dim struct {
	Name string
	Lo   float64
	Hi   float64
	Bins int
}

// binOf maps a value into the dimension's bins, clamping the domain edges.
func (d Dim) binOf(v float64) int {
	if d.Hi <= d.Lo {
		return 0
	}
	b := int((v - d.Lo) / (d.Hi - d.Lo) * float64(d.Bins))
	if b < 0 {
		b = 0
	}
	if b >= d.Bins {
		b = d.Bins - 1
	}
	return b
}

// binLo returns the lower edge of bin b.
func (d Dim) binLo(b int) float64 {
	return d.Lo + (d.Hi-d.Lo)*float64(b)/float64(d.Bins)
}

// binHi returns the upper edge of bin b.
func (d Dim) binHi(b int) float64 {
	return d.Lo + (d.Hi-d.Lo)*float64(b+1)/float64(d.Bins)
}

// Cube is a dense count cube over up to a handful of dimensions. The cell
// count is the product of the dimensions' bins; keep it modest (20³ for the
// crossfilter case study).
type Cube struct {
	dims    []Dim
	strides []int
	cells   []int64
	records int
}

// maxCells bounds cube memory (8 bytes per cell).
const maxCells = 1 << 26

// maxHistDims bounds the stack-allocated index buffers of the query paths;
// a 2-bin cube hits maxCells at 26 dimensions, so 32 loses nothing.
const maxHistDims = 32

// maxParallelCells caps per-worker scratch cubes during a parallel build;
// above it (32 MB of partials per worker) the build falls back to the
// serial loop rather than multiplying memory by the worker count.
const maxParallelCells = 1 << 22

// Build constructs the cube from a table in one pass, using up to
// runtime.GOMAXPROCS(0) workers. Use BuildWith to pin the worker count
// (1 is the serial oracle the differential tests compare against).
func Build(t *storage.Table, dims []Dim) (*Cube, error) {
	return BuildWith(t, dims, runtime.GOMAXPROCS(0))
}

// BuildWith constructs the cube with an explicit parallelism level. Workers
// scan disjoint morsels of the table into private cell arrays that merge by
// int64 addition, so the cube is identical to a serial build at every
// worker count. Values below 1 mean runtime.GOMAXPROCS(0).
func BuildWith(t *storage.Table, dims []Dim, parallelism int) (*Cube, error) {
	return BuildWithCtx(nil, t, dims, parallelism)
}

// BuildWithCtx is BuildWith under a context: an expired or cancelled ctx
// aborts the build at morsel granularity, discards all partial counts, and
// returns the context's error — no partially counted cube ever escapes. A
// nil ctx is never cancelled.
func BuildWithCtx(ctx context.Context, t *storage.Table, dims []Dim, parallelism int) (*Cube, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("datacube: no dimensions")
	}
	if len(dims) > maxHistDims {
		return nil, fmt.Errorf("datacube: at most %d dimensions (got %d)", maxHistDims, len(dims))
	}
	total := 1
	for _, d := range dims {
		if d.Bins <= 0 {
			return nil, fmt.Errorf("datacube: dimension %q has %d bins", d.Name, d.Bins)
		}
		if total > maxCells/d.Bins {
			return nil, fmt.Errorf("datacube: cube exceeds %d cells", maxCells)
		}
		total *= d.Bins
	}
	cols := make([]*storage.Column, len(dims))
	for i, d := range dims {
		col := t.Column(d.Name)
		if col == nil || col.Type == storage.String {
			return nil, fmt.Errorf("datacube: no numeric column %q", d.Name)
		}
		cols[i] = col
	}
	c := &Cube{dims: dims, cells: make([]int64, total), records: t.NumRows()}
	c.strides = make([]int, len(dims))
	stride := 1
	for i := len(dims) - 1; i >= 0; i-- {
		c.strides[i] = stride
		stride *= dims[i].Bins
	}

	n := t.NumRows()
	binFns := c.binners(cols, n)
	workers := 1
	if parallelism != 1 && n >= 2*morsel.Size && total <= maxParallelCells {
		workers = morsel.Workers(parallelism, n)
	}
	if workers <= 1 {
		err := morsel.RunCtx(ctx, n, 1, func(_, _, lo, hi int) {
			c.countRows(binFns, c.cells, lo, hi)
		})
		if err != nil {
			return nil, fmt.Errorf("datacube: build aborted: %w", err)
		}
		return c, nil
	}
	partials := make([][]int64, workers)
	for w := range partials {
		partials[w] = make([]int64, total)
	}
	err := morsel.RunCtx(ctx, n, workers, func(w, _, lo, hi int) {
		c.countRows(binFns, partials[w], lo, hi)
	})
	if err != nil {
		return nil, fmt.Errorf("datacube: build aborted: %w", err)
	}
	for _, p := range partials {
		for i, v := range p {
			c.cells[i] += v
		}
	}
	return c, nil
}

// cubeLUTCap bounds the code span a build will precompute a bin-per-code
// LUT for, mirroring crossfilter's cap.
const cubeLUTCap = 1 << 22

// binners compiles one bin-of-row function per dimension. Colstore-coded
// columns bin through a code LUT (one decode per *distinct* value instead
// of one per row), frozen plain-float columns borrow the raw slice, and
// everything else reads through the column's Float surface.
func (c *Cube) binners(cols []*storage.Column, n int) []func(row int) int {
	binFns := make([]func(row int) int, len(cols))
	for i, col := range cols {
		d := c.dims[i]
		if enc, ok := colstore.Of(col); ok && n > 0 {
			if coded, isCoded := enc.(colstore.Coded); isCoded && coded.CodeSpan() < cubeLUTCap {
				codes := coded.Codes()
				lut := make([]int32, coded.CodeSpan()+1)
				for code := range lut {
					lut[code] = int32(d.binOf(coded.DecodeFloat(uint64(code))))
				}
				binFns[i] = func(row int) int { return int(lut[codes.Get(row)]) }
				continue
			}
			if fs, ok := colstore.FloatSliceOf(col); ok {
				binFns[i] = func(row int) int { return d.binOf(fs[row]) }
				continue
			}
		}
		col := col
		binFns[i] = func(row int) int { return d.binOf(col.Float(row)) }
	}
	return binFns
}

// countRows bins rows [lo, hi) into cells.
func (c *Cube) countRows(binFns []func(row int) int, cells []int64, lo, hi int) {
	for row := lo; row < hi; row++ {
		idx := 0
		for i := range c.dims {
			idx += binFns[i](row) * c.strides[i]
		}
		cells[idx]++
	}
}

// NumRecords returns the number of records aggregated into the cube.
func (c *Cube) NumRecords() int { return c.records }

// NumCells returns the cube's cell count.
func (c *Cube) NumCells() int { return len(c.cells) }

// NumDims returns the cube's dimension count.
func (c *Cube) NumDims() int { return len(c.dims) }

// Dim returns dimension i's descriptor.
func (c *Cube) Dim(i int) Dim { return c.dims[i] }

// DimIndex finds a dimension by name, or -1.
func (c *Cube) DimIndex(name string) int {
	for i, d := range c.dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Range is a filter over one dimension in domain units.
type Range struct {
	Lo, Hi float64
}

// binRange converts a domain range to an inclusive bin interval. Bins are
// included when they overlap the half-open range [Lo, Hi) at all — the
// cube's precision is bin-granular, exactly the approximation imMens
// accepts. The half-open convention pins the boundary case: a Hi landing
// exactly on bin k's lower edge stops short of bin k rather than pulling
// the whole next bin in. A degenerate range (Lo == Hi) is the width-zero
// brush and keeps the single bin under it.
func (d Dim) binRange(r Range) (lo, hi int) {
	lo = d.binOf(r.Lo)
	hi = d.binOf(r.Hi)
	if hi > lo && d.binLo(hi) == r.Hi {
		hi--
	}
	return lo, hi
}

// Histogram returns dimension target's histogram under the given filters
// (nil entries mean unfiltered), aggregating over all other dimensions.
// Cost is O(cells), independent of NumRecords.
func (c *Cube) Histogram(target int, filters []*Range) ([]int64, error) {
	if target < 0 || target >= len(c.dims) {
		return nil, fmt.Errorf("datacube: no dimension %d", target)
	}
	out := make([]int64, c.dims[target].Bins)
	if err := c.HistogramInto(target, filters, out); err != nil {
		return nil, err
	}
	return out, nil
}

// HistogramInto computes dimension target's histogram into out (length
// Dim(target).Bins), zeroing it first — the allocation-free form the
// serving hot path uses.
// Length mismatches (out vs the target dimension's bins, or a non-empty
// filter slice vs the dimension count) are errors, never silent
// truncation; a zero-length filter slice is the explicit "no filters"
// state and behaves like nil.
func (c *Cube) HistogramInto(target int, filters []*Range, out []int64) error {
	if target < 0 || target >= len(c.dims) {
		return fmt.Errorf("datacube: no dimension %d", target)
	}
	if len(filters) != 0 && len(filters) != len(c.dims) {
		return fmt.Errorf("datacube: %d filters for %d dimensions", len(filters), len(c.dims))
	}
	if len(out) != c.dims[target].Bins {
		return fmt.Errorf("datacube: out has %d bins, dimension %d has %d", len(out), target, c.dims[target].Bins)
	}
	for b := range out {
		out[b] = 0
	}
	var lo, hi [maxHistDims]int
	for i, d := range c.dims {
		lo[i], hi[i] = 0, d.Bins-1
		if len(filters) != 0 && filters[i] != nil {
			lo[i], hi[i] = d.binRange(*filters[i])
			if lo[i] > hi[i] {
				return nil
			}
		}
	}
	var idxBuf [maxHistDims]int
	idx := idxBuf[:len(c.dims)]
	for i := range idx {
		idx[i] = lo[i]
	}
	for {
		cell := 0
		for i := range idx {
			cell += idx[i] * c.strides[i]
		}
		out[idx[target]] += c.cells[cell]
		// Odometer increment over the filtered box.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] <= hi[i] {
				break
			}
			idx[i] = lo[i]
		}
		if i < 0 {
			break
		}
	}
	return nil
}

// Count returns the number of records inside the filtered box (bin
// precision).
func (c *Cube) Count(filters []*Range) (int64, error) {
	h, err := c.Histogram(0, filters)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, v := range h {
		sum += v
	}
	return sum, nil
}
