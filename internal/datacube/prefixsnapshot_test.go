package datacube

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestPrefixFromSumsMatchesOriginal reconstructs a prefix cube from its
// exported grid — the snapshot load path — and requires every Count and
// Histogram answer to match the original exactly.
func TestPrefixFromSumsMatchesOriginal(t *testing.T) {
	roads := dataset.Roads(5, 6000)
	dims := roadDims()
	orig, err := BuildPrefix(roads, dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewPrefixFromSums(dims, orig.NumRecords(), orig.Sums())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumRecords() != orig.NumRecords() || re.NumDims() != orig.NumDims() {
		t.Fatalf("shape: %d/%d vs %d/%d", re.NumRecords(), re.NumDims(), orig.NumRecords(), orig.NumDims())
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		filters := randomFilters(rng, dims)
		wantN, err := orig.Count(filters)
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := re.Count(filters)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN {
			t.Fatalf("trial %d: count %d, want %d", trial, gotN, wantN)
		}
		for target := range dims {
			want, err := orig.Histogram(target, filters)
			if err != nil {
				t.Fatal(err)
			}
			got, err := re.Histogram(target, filters)
			if err != nil {
				t.Fatal(err)
			}
			for b := range want {
				if got[b] != want[b] {
					t.Fatalf("trial %d target %d bin %d: %d, want %d", trial, target, b, got[b], want[b])
				}
			}
		}
	}
}

// TestPrefixFromSumsValidation rejects grids whose length disagrees with
// the dims' geometry — a mis-sized mapped section must never query.
func TestPrefixFromSumsValidation(t *testing.T) {
	dims := []Dim{{Name: "a", Lo: 0, Hi: 1, Bins: 3}, {Name: "b", Lo: 0, Hi: 1, Bins: 2}}
	good := make([]int64, (3+1)*(2+1))
	if _, err := NewPrefixFromSums(dims, 0, good); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	if _, err := NewPrefixFromSums(dims, 0, good[:len(good)-1]); err == nil {
		t.Fatal("short grid accepted")
	}
	if _, err := NewPrefixFromSums(dims, 0, append(good, 0)); err == nil {
		t.Fatal("long grid accepted")
	}
	if _, err := NewPrefixFromSums(nil, 0, nil); err == nil {
		t.Fatal("no dims accepted")
	}
	if _, err := NewPrefixFromSums([]Dim{{Name: "a", Bins: 0}}, 0, []int64{0}); err == nil {
		t.Fatal("zero-bin dim accepted")
	}
}
