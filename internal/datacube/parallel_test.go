package datacube

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/morsel"
)

// TestDifferentialParallelBuild proves a parallel cube build is cell-for-
// cell identical to the serial oracle at P ∈ {2, 4, 8}.
func TestDifferentialParallelBuild(t *testing.T) {
	roads := dataset.Roads(6, 5*morsel.Size)
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	dims := []Dim{
		{Name: "x", Lo: lonLo, Hi: lonHi, Bins: 20},
		{Name: "y", Lo: latLo, Hi: latHi, Bins: 20},
		{Name: "z", Lo: altLo, Hi: altHi, Bins: 20},
	}
	serial, err := BuildWith(roads, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			parallel, err := BuildWith(roads, dims, p)
			if err != nil {
				t.Fatal(err)
			}
			if parallel.NumRecords() != serial.NumRecords() {
				t.Fatalf("records %d vs %d", parallel.NumRecords(), serial.NumRecords())
			}
			if len(parallel.cells) != len(serial.cells) {
				t.Fatalf("cells %d vs %d", len(parallel.cells), len(serial.cells))
			}
			for i, c := range serial.cells {
				if parallel.cells[i] != c {
					t.Fatalf("cell %d: %d vs %d", i, parallel.cells[i], c)
				}
			}
		})
	}
}

// TestParallelBuildFallsBackOnHugeCubes checks the per-worker memory guard:
// cubes above maxParallelCells build serially but still correctly.
func TestParallelBuildFallsBackOnHugeCubes(t *testing.T) {
	roads := dataset.Roads(6, 2*morsel.Size)
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	// 170³ ≈ 4.9M cells — just past maxParallelCells, within maxCells.
	big := []Dim{
		{Name: "x", Lo: lonLo, Hi: lonHi, Bins: 170},
		{Name: "y", Lo: latLo, Hi: latHi, Bins: 170},
		{Name: "z", Lo: altLo, Hi: altHi, Bins: 170},
	}
	serial, err := BuildWith(roads, big, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildWith(roads, big, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sn, pn int64
	for i := range serial.cells {
		sn += serial.cells[i]
		pn += parallel.cells[i]
		if serial.cells[i] != parallel.cells[i] {
			t.Fatalf("cell %d: %d vs %d", i, parallel.cells[i], serial.cells[i])
		}
	}
	if sn != int64(roads.NumRows()) || pn != sn {
		t.Fatalf("cube mass %d/%d, want %d", sn, pn, roads.NumRows())
	}
}
