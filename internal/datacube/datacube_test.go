package datacube

import (
	"math/rand"
	"testing"

	"repro/internal/crossfilter"
	"repro/internal/dataset"
	"repro/internal/storage"
)

func roadDims() []Dim {
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	return []Dim{
		{Name: "x", Lo: lonLo, Hi: lonHi, Bins: 20},
		{Name: "y", Lo: latLo, Hi: latHi, Bins: 20},
		{Name: "z", Lo: altLo, Hi: altHi, Bins: 20},
	}
}

func TestBuildErrors(t *testing.T) {
	roads := dataset.Roads(1, 100)
	if _, err := Build(roads, nil); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := Build(roads, []Dim{{Name: "missing", Bins: 4}}); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := Build(roads, []Dim{{Name: "x", Bins: 0}}); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Build(roads, []Dim{{Name: "x", Bins: 1 << 14}, {Name: "y", Bins: 1 << 14}}); err == nil {
		t.Error("oversized cube accepted")
	}
	movies := dataset.Movies(1, 10)
	if _, err := Build(movies, []Dim{{Name: "title", Bins: 4}}); err == nil {
		t.Error("string column accepted")
	}
}

func TestUnfilteredMatchesTotal(t *testing.T) {
	roads := dataset.Roads(1, 5000)
	cube, err := Build(roads, roadDims())
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumRecords() != 5000 {
		t.Errorf("NumRecords = %d", cube.NumRecords())
	}
	if cube.NumCells() != 8000 {
		t.Errorf("NumCells = %d", cube.NumCells())
	}
	n, err := cube.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5000 {
		t.Errorf("unfiltered count = %d", n)
	}
	for d := 0; d < 3; d++ {
		h, err := cube.Histogram(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range h {
			sum += v
		}
		if sum != 5000 {
			t.Errorf("dim %d histogram sums to %d", d, sum)
		}
	}
}

// TestMatchesCrossfilterAtBinBoundaries: when filters align exactly with
// bin edges, cube results must equal the exact crossfilter results.
func TestMatchesCrossfilterAtBinBoundaries(t *testing.T) {
	roads := dataset.Roads(2, 8000)
	dims := roadDims()
	cube, err := Build(roads, dims)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := crossfilter.New(roads, []string{"x", "y", "z"}, 20)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		// Pick a bin-aligned filter on x. The crossfilter's domain derives
		// from observed min/max, so use the cube dims (generator bounds)
		// only via the shared bin edges of the crossfilter dimension.
		d := cf.Dim(0)
		loBin := rng.Intn(18)
		hiBin := loBin + rng.Intn(20-loBin-1)
		span := d.Hi - d.Lo
		lo := d.Lo + span*float64(loBin)/20
		hi := d.Lo + span*float64(hiBin+1)/20
		cf.SetFilter(0, lo, hi)
		wantHist := cf.Histogram(1) // y histogram under the x filter

		cubeDim := Dim{Name: "x", Lo: d.Lo, Hi: d.Hi, Bins: 20}
		yDim := cf.Dim(1)
		cube2, err := Build(roads, []Dim{cubeDim, {Name: "y", Lo: yDim.Lo, Hi: yDim.Hi, Bins: 20}, dims[2]})
		if err != nil {
			t.Fatal(err)
		}
		// Filter strictly inside the chosen bins (upper edge epsilon in).
		eps := span / 20 * 1e-9
		got, err := cube2.Histogram(1, []*Range{{Lo: lo, Hi: hi - eps}, nil, nil})
		if err != nil {
			t.Fatal(err)
		}
		for b := range wantHist {
			if got[b] != wantHist[b] {
				t.Fatalf("trial %d bin %d: cube %d vs crossfilter %d (filter [%v,%v])",
					trial, b, got[b], wantHist[b], lo, hi)
			}
		}
	}
	_ = cube
}

func TestFilteredCountBruteForce(t *testing.T) {
	roads := dataset.Roads(3, 4000)
	dims := roadDims()
	cube, err := Build(roads, dims)
	if err != nil {
		t.Fatal(err)
	}
	// Bin-aligned x filter: bins 5..9.
	xd := dims[0]
	lo, hi := xd.binLo(5), xd.binHi(9)
	got, err := cube.Count([]*Range{{Lo: lo, Hi: hi - 1e-12}, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	xs := roads.Column("x").Floats
	for _, v := range xs {
		if xd.binOf(v) >= 5 && xd.binOf(v) <= 9 {
			want++
		}
	}
	if got != want {
		t.Errorf("count = %d, brute force %d", got, want)
	}
}

func TestEmptyFilterBox(t *testing.T) {
	roads := dataset.Roads(1, 1000)
	cube, err := Build(roads, roadDims())
	if err != nil {
		t.Fatal(err)
	}
	// Inverted range → empty histogram, not a panic.
	h, err := cube.Histogram(1, []*Range{{Lo: 11, Hi: 9}, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h {
		if v != 0 {
			t.Fatal("inverted range returned counts")
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	roads := dataset.Roads(1, 100)
	cube, err := Build(roads, roadDims())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Histogram(9, nil); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := cube.Histogram(0, []*Range{nil}); err == nil {
		t.Error("wrong filter arity accepted")
	}
	if cube.DimIndex("y") != 1 || cube.DimIndex("nope") != -1 {
		t.Error("DimIndex wrong")
	}
}

func TestCubeQueryIndependentOfDataSize(t *testing.T) {
	// The cube's cell count (and hence query cost) must not grow with data.
	small, err := Build(dataset.Roads(1, 1000), roadDims())
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(dataset.Roads(1, 50000), roadDims())
	if err != nil {
		t.Fatal(err)
	}
	if small.NumCells() != big.NumCells() {
		t.Errorf("cells grew with data: %d vs %d", small.NumCells(), big.NumCells())
	}
}

func TestSingleDimensionCube(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{{Name: "v", Type: storage.Float64}})
	for i := 0; i < 100; i++ {
		tbl.MustAppendRow(storage.NewFloat(float64(i)))
	}
	cube, err := Build(tbl, []Dim{{Name: "v", Lo: 0, Hi: 100, Bins: 10}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := cube.Histogram(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for b, v := range h {
		if v != 10 {
			t.Errorf("bin %d = %d, want 10", b, v)
		}
	}
}
