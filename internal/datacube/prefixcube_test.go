package datacube

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// randomFilters draws a filter set mixing nil (unfiltered), interior,
// bin-edge-aligned, degenerate (Lo == Hi), and inverted ranges — every
// boundary class binRange distinguishes.
func randomFilters(rng *rand.Rand, dims []Dim) []*Range {
	if rng.Intn(6) == 0 {
		return nil
	}
	filters := make([]*Range, len(dims))
	for i, d := range dims {
		switch rng.Intn(6) {
		case 0: // unfiltered
		case 1: // interior range
			lo := d.Lo + rng.Float64()*(d.Hi-d.Lo)
			filters[i] = &Range{Lo: lo, Hi: lo + rng.Float64()*(d.Hi-lo)}
		case 2: // bin-edge aligned on both sides
			a := rng.Intn(d.Bins)
			b := a + rng.Intn(d.Bins-a)
			filters[i] = &Range{Lo: d.binLo(a), Hi: d.binLo(b + 1)}
		case 3: // degenerate width-zero brush
			v := d.Lo + rng.Float64()*(d.Hi-d.Lo)
			filters[i] = &Range{Lo: v, Hi: v}
		case 4: // inverted (empty)
			filters[i] = &Range{Lo: d.Hi, Hi: d.Lo}
		default: // domain-edge clamped
			filters[i] = &Range{Lo: d.Lo - 1, Hi: d.Hi + 1}
		}
	}
	return filters
}

// TestPrefixMatchesCubeRandom is the tentpole's differential proof on the
// cube side: the summed-area decomposition must be byte-identical to the
// dense cube's box walk for every target and randomized filter set, with
// the cube built at parallelism 1, 2, 4, and 8.
func TestPrefixMatchesCubeRandom(t *testing.T) {
	roads := dataset.Roads(21, 9000)
	dims := roadDims()
	for _, p := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			cube, err := BuildWith(roads, dims, p)
			if err != nil {
				t.Fatal(err)
			}
			prefix := NewPrefix(cube)
			rng := rand.New(rand.NewSource(int64(40 + p)))
			for trial := 0; trial < 120; trial++ {
				filters := randomFilters(rng, dims)
				for target := range dims {
					want, err := cube.Histogram(target, filters)
					if err != nil {
						t.Fatal(err)
					}
					got, err := prefix.Histogram(target, filters)
					if err != nil {
						t.Fatal(err)
					}
					for b := range want {
						if got[b] != want[b] {
							t.Fatalf("trial %d target %d bin %d: prefix %d vs cube %d (filters %+v)",
								trial, target, b, got[b], want[b], filters)
						}
					}
				}
				wantN, err := cube.Count(filters)
				if err != nil {
					t.Fatal(err)
				}
				gotN, err := prefix.Count(filters)
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN {
					t.Fatalf("trial %d: prefix count %d vs cube %d", trial, gotN, wantN)
				}
			}
		})
	}
}

// TestPrefixSingleDimension pins the d=1 degenerate case (no "other"
// dimensions: one corner combination, pure axis differencing).
func TestPrefixSingleDimension(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{{Name: "v", Type: storage.Float64}})
	for i := 0; i < 100; i++ {
		tbl.MustAppendRow(storage.NewFloat(float64(i)))
	}
	prefix, err := BuildPrefix(tbl, []Dim{{Name: "v", Lo: 0, Hi: 100, Bins: 10}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := prefix.Histogram(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for b, v := range h {
		if v != 10 {
			t.Errorf("bin %d = %d, want 10", b, v)
		}
	}
	n, err := prefix.Count([]*Range{{Lo: 20, Hi: 50}})
	if err != nil {
		t.Fatal(err)
	}
	// Bins 2..4 under the half-open upper edge (50 sits on bin 5's edge).
	if n != 30 {
		t.Errorf("count = %d, want 30", n)
	}
}

// TestPrefixErrors mirrors the cube's validation surface.
func TestPrefixErrors(t *testing.T) {
	roads := dataset.Roads(1, 500)
	prefix, err := BuildPrefix(roads, roadDims(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prefix.Histogram(9, nil); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := prefix.Histogram(0, []*Range{nil}); err == nil {
		t.Error("wrong filter arity accepted")
	}
	if err := prefix.HistogramInto(0, nil, make([]int64, 3)); err == nil {
		t.Error("wrong out length accepted")
	}
	if _, err := prefix.Count([]*Range{nil}); err == nil {
		t.Error("wrong count arity accepted")
	}
	if prefix.NumDims() != 3 || prefix.NumRecords() != 500 {
		t.Errorf("dims %d records %d", prefix.NumDims(), prefix.NumRecords())
	}
	if prefix.DimIndex("y") != 1 || prefix.DimIndex("nope") != -1 {
		t.Error("DimIndex wrong")
	}
	if _, err := BuildPrefix(roads, []Dim{{Name: "missing", Bins: 4}}, 1); err == nil {
		t.Error("missing column accepted")
	}
}

// TestBinRangeHalfOpen pins the satellite fix: the upper filter edge is
// half-open, so a Hi landing exactly on a bin boundary stops short of the
// next bin instead of including all of it.
func TestBinRangeHalfOpen(t *testing.T) {
	d := Dim{Name: "v", Lo: 0, Hi: 100, Bins: 10}
	cases := []struct {
		name   string
		r      Range
		lo, hi int
	}{
		{"interior", Range{Lo: 12, Hi: 47}, 1, 4},
		{"hi exactly on bin edge", Range{Lo: 12, Hi: 50}, 1, 4},
		{"hi just past bin edge", Range{Lo: 12, Hi: 50.001}, 1, 5},
		{"lo and hi on edges", Range{Lo: 20, Hi: 60}, 2, 5},
		{"full domain", Range{Lo: 0, Hi: 100}, 0, 9},
		{"beyond domain clamps", Range{Lo: -5, Hi: 200}, 0, 9},
		{"degenerate keeps its bin", Range{Lo: 35, Hi: 35}, 3, 3},
		{"degenerate on a bin edge", Range{Lo: 40, Hi: 40}, 4, 4},
		{"degenerate at domain lo", Range{Lo: 0, Hi: 0}, 0, 0},
		{"degenerate at domain hi", Range{Lo: 100, Hi: 100}, 9, 9},
		{"hi at domain lo", Range{Lo: -10, Hi: 0}, 0, 0},
		{"single bin half-open", Range{Lo: 10, Hi: 20}, 1, 1},
	}
	for _, tc := range cases {
		lo, hi := d.binRange(tc.r)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%s: binRange(%+v) = [%d,%d], want [%d,%d]", tc.name, tc.r, lo, hi, tc.lo, tc.hi)
		}
	}
	// Inverted ranges surface as lo > hi, the callers' empty-box signal.
	if lo, hi := d.binRange(Range{Lo: 80, Hi: 20}); lo <= hi {
		t.Errorf("inverted range: [%d,%d] not empty", lo, hi)
	}
	// Degenerate domain: everything lands in bin 0.
	flat := Dim{Name: "f", Lo: 5, Hi: 5, Bins: 10}
	if lo, hi := flat.binRange(Range{Lo: 5, Hi: 5}); lo != 0 || hi != 0 {
		t.Errorf("degenerate domain: [%d,%d]", lo, hi)
	}
}

// TestBinOfEdges pins binOf's clamping at the domain edges.
func TestBinOfEdges(t *testing.T) {
	d := Dim{Name: "v", Lo: 0, Hi: 100, Bins: 10}
	if b := d.binOf(0); b != 0 {
		t.Errorf("binOf(0) = %d", b)
	}
	if b := d.binOf(100); b != 9 {
		t.Errorf("binOf(100) = %d, want clamp to last bin", b)
	}
	if b := d.binOf(-3); b != 0 {
		t.Errorf("binOf(-3) = %d", b)
	}
	if b := d.binOf(999); b != 9 {
		t.Errorf("binOf(999) = %d", b)
	}
	if b := d.binOf(10); b != 1 {
		t.Errorf("binOf(10) = %d: a value on a bin edge belongs to the upper bin", b)
	}
}

// TestCubeHistogramInto covers the allocation-free form on the dense cube.
func TestCubeHistogramInto(t *testing.T) {
	roads := dataset.Roads(22, 3000)
	cube, err := Build(roads, roadDims())
	if err != nil {
		t.Fatal(err)
	}
	filters := []*Range{{Lo: 9.5, Hi: 10.5}, nil, nil}
	want, err := cube.Histogram(1, filters)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, 20)
	for i := range out {
		out[i] = -999 // must be zeroed by the call
	}
	if err := cube.HistogramInto(1, filters, out); err != nil {
		t.Fatal(err)
	}
	for b := range want {
		if out[b] != want[b] {
			t.Fatalf("bin %d: %d vs %d", b, out[b], want[b])
		}
	}
	if err := cube.HistogramInto(1, filters, make([]int64, 7)); err == nil {
		t.Error("wrong out length accepted")
	}
}
