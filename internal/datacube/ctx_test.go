package datacube

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
)

// TestBuildWithCtx: an ample context builds the same cube as the plain
// path; a pre-cancelled one aborts before finishing and returns no cube.
func TestBuildWithCtx(t *testing.T) {
	roads := dataset.Roads(5, 30000)
	dims := roadDims()

	want, err := BuildWith(roads, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		got, err := BuildWithCtx(context.Background(), roads, dims, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if got.NumRecords() != want.NumRecords() || got.NumCells() != want.NumCells() {
			t.Fatalf("parallelism %d: shape mismatch", par)
		}
		wn, err := want.Count(nil)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := got.Count(nil)
		if err != nil {
			t.Fatal(err)
		}
		if wn != gn {
			t.Fatalf("parallelism %d: count %d, want %d", par, gn, wn)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		cube, err := BuildWithCtx(ctx, roads, dims, par)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want Canceled", par, err)
		}
		if cube != nil {
			t.Fatalf("parallelism %d: cancelled build returned a cube", par)
		}
	}
}
