package datacube

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/storage"
)

// TestEncodedCubeMatchesPlain builds the same cube from a raw table and its
// frozen form, at serial and parallel build levels, and requires identical
// cells — then identical histograms under randomized filter boxes.
func TestEncodedCubeMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 50_000
	xq := make([]float64, n)
	lanes := make([]int64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xq[i] = float64(rng.Intn(1200)) / 100
		lanes[i] = int64(rng.Intn(64))
		y[i] = rng.Float64() * 30
	}
	raw := &storage.Table{
		Name: "cube",
		Schema: storage.Schema{
			{Name: "xq", Type: storage.Float64},
			{Name: "lanes", Type: storage.Int64},
			{Name: "y", Type: storage.Float64},
		},
		Columns: []*storage.Column{
			{Type: storage.Float64, Floats: xq},
			{Type: storage.Int64, Ints: lanes},
			{Type: storage.Float64, Floats: y},
		},
		PageRows: storage.DefaultPageRows,
	}
	frozen, err := colstore.Freeze(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	dims := []Dim{
		{Name: "xq", Lo: 0, Hi: 12, Bins: 20},
		{Name: "lanes", Lo: 0, Hi: 63, Bins: 16},
		{Name: "y", Lo: 0, Hi: 30, Bins: 20},
	}
	for _, par := range []int{1, 4} {
		want, err := BuildWith(raw, dims, par)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BuildWith(frozen, dims, par)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumCells() != want.NumCells() || got.NumRecords() != want.NumRecords() {
			t.Fatalf("P=%d: shape mismatch", par)
		}
		for i := range want.cells {
			if got.cells[i] != want.cells[i] {
				t.Fatalf("P=%d: cell %d: %d vs %d", par, i, got.cells[i], want.cells[i])
			}
		}
		for trial := 0; trial < 20; trial++ {
			filters := make([]*Range, len(dims))
			for i, d := range dims {
				if rng.Intn(2) == 0 {
					lo := d.Lo + rng.Float64()*(d.Hi-d.Lo)
					hi := d.Lo + rng.Float64()*(d.Hi-d.Lo)
					if lo > hi {
						lo, hi = hi, lo
					}
					filters[i] = &Range{Lo: lo, Hi: hi}
				}
			}
			target := rng.Intn(len(dims))
			hw, err := want.Histogram(target, filters)
			if err != nil {
				t.Fatal(err)
			}
			hg, err := got.Histogram(target, filters)
			if err != nil {
				t.Fatal(err)
			}
			for b := range hw {
				if hg[b] != hw[b] {
					t.Fatalf("P=%d trial %d: bin %d: %d vs %d", par, trial, b, hg[b], hw[b])
				}
			}
		}
	}
}
