package taxonomy

// Answer-structure advisor: the policy half of the selection-aware
// materialization planner (internal/planner). The paper's guideline is
// that latency constraints bind per *interaction class* — a drag issuing
// 60 queries/s tolerates none of the work a cold one-off query can absorb
// — so the right answer structure is a function of the (widget,
// selection-type, cardinality) cell, not a global constant. This file is
// the human-readable decision table; internal/planner's cost model is its
// executable form, and the planner tests assert the two agree on the
// canonical scenarios.

// Canonical answer-structure names, shared by this advisor's decision
// table and the planner's metrics (planner_choice_total{structure=...}).
const (
	StructEngineScan = "engine-scan"
	StructFullScan   = "cross-full"
	StructDeltaScan  = "cross-delta"
	StructDenseCube  = "dense-cube"
	StructPrefixCube = "prefix-cube"
	StructMatIndex   = "mat-index"
)

// SelectionKind classifies how a selection is being manipulated — the
// interaction-class axis of the decision table.
type SelectionKind int

// Selection kinds.
const (
	// SelectionDrag is a brush edge moving a few pixels per frame: the
	// same dimensions filtered query after query, only the predicate
	// window sliding — the hot-template pattern worth materializing for.
	SelectionDrag SelectionKind = iota
	// SelectionJump is a discontinuous filter change (page-wide brush,
	// preset, filter clear): no locality to exploit.
	SelectionJump
	// SelectionCold is a first-touch query with no session history.
	SelectionCold
)

// String names the selection kind.
func (k SelectionKind) String() string {
	switch k {
	case SelectionDrag:
		return "drag"
	case SelectionJump:
		return "jump"
	default:
		return "cold"
	}
}

// StructureQuery describes one (widget, selection-type, cardinality) cell
// plus which structures actually exist for it — the advisor never
// recommends a structure that would first have to be built synchronously.
type StructureQuery struct {
	Widget    string        // "slider", "map", "table", ... (informational)
	Selection SelectionKind // how the selection is moving
	Dims      int           // dimension cardinality of the selection
	Rows      int           // backing record count
	// DeltaFraction is, for drags at value precision, the changed-record
	// fraction per step — crossfilter's delta/full crossover input.
	DeltaFraction float64
	// Available structures.
	HasMatIndex    bool // a materialized per-selection index matches
	HasPrefixCube  bool
	HasDenseCube   bool
	HasSortedIndex bool // crossfilter's per-dimension sorted permutation
}

// StructureAdvice pairs the recommended structure with the rule that
// selected it, and whether the planner should kick off a background
// materialization for this template.
type StructureAdvice struct {
	Structure   string
	Materialize bool // hot drag template without an index: build one
	Reason      string
}

// CrossoverFraction is the delta-vs-full break-even the calibration data
// embeds (BENCH_brush.json: full scans run ~4× faster per record than
// permuted access), mirrored by crossfilter.DefaultCrossover.
const CrossoverFraction = 0.25

// AdviseStructure applies the decision table:
//
//	selection   available               → structure
//	drag        mat-index               → mat-index   (O(Σ bins)/step)
//	drag        prefix cube, no index   → prefix-cube (+ materialize)
//	any         prefix cube             → prefix-cube (O(bins·2^(d-1)))
//	any         dense cube only         → dense-cube  (O(filtered cells))
//	drag@value  sorted index, Δ < 0.25  → cross-delta (O(Δ log n))
//	jump@value  or Δ ≥ 0.25             → cross-full  (sequential wins)
//	otherwise                           → engine-scan (always available)
//
// Bin-space structures (cube family, mat-index) outrank value-space scans
// whenever they exist: the serving layer's brush queries are bin-granular,
// so the cube family answers them exactly at cost independent of Rows.
func AdviseStructure(q StructureQuery) StructureAdvice {
	if q.HasMatIndex {
		return StructureAdvice{
			Structure: StructMatIndex,
			Reason:    "a materialized per-selection index answers each drag step in O(Σ bins), independent of dimensionality",
		}
	}
	if q.HasPrefixCube {
		return StructureAdvice{
			Structure:   StructPrefixCube,
			Materialize: q.Selection == SelectionDrag,
			Reason:      "summed-area corners answer bin-space queries in O(bins·2^(d-1)); a sustained drag justifies materializing its template",
		}
	}
	if q.HasDenseCube {
		return StructureAdvice{
			Structure:   StructDenseCube,
			Materialize: q.Selection == SelectionDrag,
			Reason:      "the dense cube walks only the filtered cell box, independent of record count",
		}
	}
	if q.HasSortedIndex && q.Selection == SelectionDrag && q.DeltaFraction < CrossoverFraction {
		return StructureAdvice{
			Structure: StructDeltaScan,
			Reason:    "a small drag delta reconciles O(Δ log n) records through the sorted index",
		}
	}
	if q.HasSortedIndex || q.Rows > 0 {
		if q.Selection != SelectionCold && q.HasSortedIndex {
			return StructureAdvice{
				Structure: StructFullScan,
				Reason:    "past the crossover fraction sequential reconciliation beats permuted access",
			}
		}
	}
	return StructureAdvice{
		Structure: StructEngineScan,
		Reason:    "no precomputed structure exists; the bin-box table scan is always available",
	}
}
