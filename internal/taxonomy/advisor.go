package taxonomy

// Audience describes a system's target users.
type Audience int

// Audiences.
const (
	AudienceMixed Audience = iota
	AudienceNovice
	AudienceExpert
)

// SystemProfile describes an interactive data system for metric selection.
type SystemProfile struct {
	Exploratory         bool // guides users to insights
	TaskBased           bool // built around specific tasks
	Approximate         bool // returns approximate answers
	SpeculativePrefetch bool // prefetches or caches speculatively
	Distributed         bool
	LargeData           bool
	HighFrameRateDevice bool // touch/gesture device with high sensing rate
	ConsecutiveQueries  bool // continuous interaction issues query bursts
	ReducesUserEffort   bool // claims effort reduction vs a baseline
	DomainSpecific      bool
	Audience            Audience
}

// Recommendation pairs a metric with the rule that selected it.
type Recommendation struct {
	Metric Metric
	Reason string
}

// RecommendMetrics applies the Table 3 guidelines (plus the §3.3 best
// practices) to a system profile. Latency and user feedback are always
// recommended; the rest follow from the profile.
func RecommendMetrics(p SystemProfile) []Recommendation {
	var recs []Recommendation
	add := func(name, reason string) {
		m, ok := MetricByName(name)
		if !ok {
			return
		}
		recs = append(recs, Recommendation{Metric: m, Reason: reason})
	}

	add(UserFeedback, "always collect qualitative feedback")
	add(Latency, "latency is directly perceived by the user; always measure it")

	if p.DomainSpecific {
		add(DesignStudy, "domain-specific tasks need practitioner interviews to formalize requirements")
		add(FocusGroup, "collective expert feedback validates features for a specific domain")
	}
	if p.Exploratory {
		add(NumInsights, "exploratory guidance is measured by insights found")
		add(UniquenessOfInsight, "unique discoveries are the value of exploration")
	}
	if p.TaskBased {
		add(TaskCompletionTime, "task-based systems measure completion time")
	}
	if p.Approximate || p.SpeculativePrefetch {
		add(Accuracy, "approximate/speculative answers must be scored against the truth")
	}
	if p.SpeculativePrefetch {
		add(CacheHitRate, "prefetching is judged by how often it hits")
	}
	if p.ReducesUserEffort {
		add(NumInteractions, "effort reduction is counted in interactions against a baseline")
	}
	switch p.Audience {
	case AudienceNovice:
		add(Discoverability, "novice users must find actions without instruction")
	case AudienceExpert:
		add(Learnability, "frequent expert use justifies a learning curve, which must be measured")
	}
	if p.ConsecutiveQueries {
		add(LCVMetric, "consecutive queries in a short time frame make perceived violations the binding constraint")
	}
	if p.HighFrameRateDevice {
		add(QIFMetric, "high-frame-rate devices can outpace the backend; measure issuing frequency")
		if !p.ConsecutiveQueries {
			add(LCVMetric, "high-frame-rate interaction issues queries back-to-back")
		}
	}
	if p.LargeData {
		add(Scalability, "large data requires measuring performance as data grows")
	}
	if p.Distributed {
		add(Throughput, "distributed backends are compared by throughput")
	}
	return recs
}

// --- Study-design advisors (Figures 4 and 5) -------------------------------

// StudyQuestion describes the experiment a user study must support.
type StudyQuestion struct {
	ComparisonAgainstControl bool // comparing against a baseline condition
	DeviceDependent          bool // results depend on the physical device
	ThinkAloud               bool // protocol requires think-aloud
	DependsOnInherentAbility bool // e.g. insight finding is user-dependent
	InteractionsDefinitive   bool // interactions don't require user cognition
	NavigationEnumerable     bool // all plausible navigation patterns can be enumerated
}

// StudySetting is the Figure 4 recommendation.
type StudySetting int

// Study settings.
const (
	InPerson StudySetting = iota
	Remote
)

// String names the setting.
func (s StudySetting) String() string {
	if s == InPerson {
		return "in-person (low ecological validity, high control)"
	}
	return "remote (high ecological validity, low control)"
}

// AdviseSetting implements Figure 4: control comparisons, device-dependent
// results, or think-aloud protocols require an in-person study; otherwise
// remote studies buy ecological validity and population diversity.
func AdviseSetting(q StudyQuestion) StudySetting {
	if q.ComparisonAgainstControl || q.DeviceDependent || q.ThinkAloud {
		return InPerson
	}
	return Remote
}

// SubjectDesign is the Figure 5 recommendation.
type SubjectDesign int

// Subject designs.
const (
	BetweenSubject SubjectDesign = iota
	WithinSubject
	Simulation
)

// String names the design.
func (d SubjectDesign) String() string {
	switch d {
	case BetweenSubject:
		return "between-subject (high external validity)"
	case WithinSubject:
		return "within-subject (low external validity; randomize/counterbalance order)"
	default:
		return "simulation (no users needed; validate assumptions)"
	}
}

// AdviseSubjects implements Figure 5: simulate when interactions are
// definitive and navigation patterns enumerable; go within-subject when the
// task depends on the user's inherent ability; otherwise prefer
// between-subject to avoid carry-over effects.
func AdviseSubjects(q StudyQuestion) SubjectDesign {
	if q.InteractionsDefinitive && q.NavigationEnumerable {
		return Simulation
	}
	if q.DependsOnInherentAbility {
		return WithinSubject
	}
	return BetweenSubject
}

// --- Cognitive-bias catalog (Table 4) ---------------------------------------

// BiasSource attributes a bias to the participant or the experimenter.
type BiasSource int

// Bias sources.
const (
	ParticipantBias BiasSource = iota
	ExperimenterBias
)

// String names the source.
func (s BiasSource) String() string {
	if s == ParticipantBias {
		return "participant"
	}
	return "experimenter"
}

// Bias is one Table 4 row.
type Bias struct {
	Name       string
	Source     BiasSource
	Definition string
	Mitigation string
}

// Biases is the Table 4 catalog.
var Biases = []Bias{
	{"social desirability bias", ParticipantBias,
		"Participants act to please the researcher, e.g. supporting the hypothesis.",
		"Follow externally approved scripts; never disclose the tested hypothesis."},
	{"anchoring effect", ParticipantBias,
		"Fixating on initial information, e.g. preferring the first system seen.",
		"Randomize and counterbalance condition order."},
	{"halo effect", ParticipantBias,
		"One positive trait (nice looks, one good feature) inflates all ratings.",
		"Granularize tasks; have each participant evaluate a single feature."},
	{"attraction effect", ParticipantBias,
		"Clustering of points distorts choices between Pareto-front items in scatter plots.",
		"Modify the study procedure (see Dimara et al. for scatterplots)."},
	{"framing effect", ExperimenterBias,
		"Question wording steers the participant toward the tested system.",
		"Have all study verbiage externally reviewed."},
	{"selection bias", ExperimenterBias,
		"Recruiting participants likely to favor the tested condition.",
		"Assign participants randomly before collecting background information."},
	{"confirmation bias", ExperimenterBias,
		"The researcher sees what confirms the hypothesis.",
		"Practice high transparency: publish study materials and all user comments."},
}

// BiasesBySource filters the catalog.
func BiasesBySource(s BiasSource) []Bias {
	var out []Bias
	for _, b := range Biases {
		if b.Source == s {
			out = append(out, b)
		}
	}
	return out
}
