package taxonomy

import (
	"fmt"
	"math"
)

// Questionnaire scoring for the qualitative instruments the survey names
// (§3.2.1): the System Usability Scale and generic Likert batteries.

// SUSItems is the number of items on the System Usability Scale.
const SUSItems = 10

// SUSScore computes the standard SUS score from ten responses on a 1–5
// scale. Odd items (1st, 3rd, …) contribute response−1; even items
// contribute 5−response; the sum is scaled by 2.5 onto 0–100.
func SUSScore(responses []int) (float64, error) {
	if len(responses) != SUSItems {
		return 0, fmt.Errorf("taxonomy: SUS needs %d responses, got %d", SUSItems, len(responses))
	}
	sum := 0
	for i, r := range responses {
		if r < 1 || r > 5 {
			return 0, fmt.Errorf("taxonomy: SUS response %d out of 1–5: %d", i+1, r)
		}
		if i%2 == 0 { // items 1,3,5,7,9
			sum += r - 1
		} else { // items 2,4,6,8,10
			sum += 5 - r
		}
	}
	return float64(sum) * 2.5, nil
}

// SUSGrade maps a SUS score onto the common adjective scale (Bangor et
// al.): ≥85 excellent, ≥72 good, ≥52 OK, below that poor.
func SUSGrade(score float64) string {
	switch {
	case score >= 85:
		return "excellent"
	case score >= 72:
		return "good"
	case score >= 52:
		return "ok"
	default:
		return "poor"
	}
}

// LikertSummary reports the mean and standard deviation of a Likert-scale
// battery, the form Scented Widgets' custom survey reported.
type LikertSummary struct {
	N      int
	Mean   float64
	Stddev float64
}

// SummarizeLikert computes a Likert summary for responses on a 1..levels
// scale.
func SummarizeLikert(responses []int, levels int) (LikertSummary, error) {
	if levels < 2 {
		return LikertSummary{}, fmt.Errorf("taxonomy: Likert needs at least 2 levels")
	}
	if len(responses) == 0 {
		return LikertSummary{}, fmt.Errorf("taxonomy: no responses")
	}
	var sum float64
	for i, r := range responses {
		if r < 1 || r > levels {
			return LikertSummary{}, fmt.Errorf("taxonomy: response %d out of 1–%d: %d", i+1, levels, r)
		}
		sum += float64(r)
	}
	mean := sum / float64(len(responses))
	var ss float64
	for _, r := range responses {
		d := float64(r) - mean
		ss += d * d
	}
	return LikertSummary{
		N:      len(responses),
		Mean:   mean,
		Stddev: math.Sqrt(ss / float64(len(responses))),
	}, nil
}
