package taxonomy

import "testing"

func TestTaxonomyStructure(t *testing.T) {
	if len(Metrics) != 17 {
		t.Errorf("taxonomy has %d metrics", len(Metrics))
	}
	// Exactly two novel metrics: LCV and QIF, both frontend.
	novel := 0
	for _, m := range Metrics {
		if m.Novel {
			novel++
			if m.Category != SystemFrontend {
				t.Errorf("novel metric %q not frontend", m.Name)
			}
		}
		if m.Name == "" || m.Description == "" || m.WhenToUse == "" {
			t.Errorf("metric %+v incomplete", m)
		}
	}
	if novel != 2 {
		t.Errorf("%d novel metrics, want 2 (LCV, QIF)", novel)
	}
	lat, ok := MetricByName(Latency)
	if !ok || len(lat.Components) != 5 {
		t.Errorf("latency components = %v", lat.Components)
	}
	if _, ok := MetricByName("made up"); ok {
		t.Error("unknown metric resolved")
	}
	for _, c := range []Category{HumanQualitative, HumanQuantitative, SystemFrontend, SystemBackend} {
		if c.String() == "unknown" {
			t.Error("category string missing")
		}
	}
}

func TestUsageTables(t *testing.T) {
	if len(UsageEarly) != 31 {
		t.Errorf("Table 1 rows = %d, want 31", len(UsageEarly))
	}
	if len(UsageRecent) != 34 {
		t.Errorf("Table 2 rows = %d, want 34", len(UsageRecent))
	}
	// Every referenced metric must exist in the taxonomy.
	for _, u := range AllUsage() {
		if len(u.Metrics) == 0 {
			t.Errorf("%s has no metrics", u.System)
		}
		for _, m := range u.Metrics {
			if _, ok := MetricByName(m); !ok {
				t.Errorf("%s references unknown metric %q", u.System, m)
			}
		}
	}
	counts := MetricCounts()
	if counts[UserFeedback] < 20 {
		t.Errorf("user feedback count = %d; it is the most common metric", counts[UserFeedback])
	}
	if counts[Latency] < 10 {
		t.Errorf("latency count = %d", counts[Latency])
	}
}

// TestAccuracyAlwaysWithLatency verifies the takeaway the paper draws from
// its tables: systems that report accuracy (approximation) essentially
// always report latency too — the accuracy/latency trade-off.
func TestAccuracyAlwaysWithLatency(t *testing.T) {
	both := CoOccurrence(Accuracy, Latency)
	accOnly := MetricCounts()[Accuracy]
	if both*2 < accOnly {
		t.Errorf("accuracy∧latency = %d of %d accuracy systems; paper observes strong co-occurrence", both, accOnly)
	}
}

func TestRecommendMetricsTable3(t *testing.T) {
	// A crossfilter-style system: gesture device, continuous queries,
	// large data, prefetching.
	p := SystemProfile{
		SpeculativePrefetch: true,
		LargeData:           true,
		HighFrameRateDevice: true,
		ConsecutiveQueries:  true,
		Audience:            AudienceNovice,
	}
	recs := RecommendMetrics(p)
	want := map[string]bool{
		UserFeedback: true, Latency: true, Accuracy: true, CacheHitRate: true,
		Discoverability: true, LCVMetric: true, QIFMetric: true, Scalability: true,
	}
	got := map[string]bool{}
	for _, r := range recs {
		got[r.Metric.Name] = true
		if r.Reason == "" {
			t.Errorf("recommendation %q without reason", r.Metric.Name)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("missing recommendation %q", name)
		}
	}
	if got[Throughput] {
		t.Error("throughput recommended for non-distributed system")
	}
	if got[Learnability] {
		t.Error("learnability recommended for novice audience")
	}
}

func TestRecommendMinimalProfile(t *testing.T) {
	recs := RecommendMetrics(SystemProfile{})
	if len(recs) != 2 {
		t.Errorf("minimal profile got %d recs, want 2 (feedback, latency)", len(recs))
	}
	// Both factor families covered, per best practice #1.
	cats := map[Category]bool{}
	for _, r := range recs {
		cats[r.Metric.Category] = true
	}
	if !cats[HumanQualitative] || !cats[SystemBackend] {
		t.Error("minimal recommendations do not span human and system factors")
	}
}

func TestRecommendExpertDistributed(t *testing.T) {
	recs := RecommendMetrics(SystemProfile{
		Distributed: true, TaskBased: true, Exploratory: true,
		DomainSpecific: true, ReducesUserEffort: true, Audience: AudienceExpert,
	})
	got := map[string]bool{}
	for _, r := range recs {
		got[r.Metric.Name] = true
	}
	for _, name := range []string{Throughput, TaskCompletionTime, NumInsights, UniquenessOfInsight, DesignStudy, FocusGroup, NumInteractions, Learnability} {
		if !got[name] {
			t.Errorf("missing %q", name)
		}
	}
}

func TestAdviseSettingFigure4(t *testing.T) {
	cases := []struct {
		q    StudyQuestion
		want StudySetting
	}{
		{StudyQuestion{ComparisonAgainstControl: true}, InPerson},
		{StudyQuestion{DeviceDependent: true}, InPerson},
		{StudyQuestion{ThinkAloud: true}, InPerson},
		{StudyQuestion{}, Remote},
	}
	for i, c := range cases {
		if got := AdviseSetting(c.q); got != c.want {
			t.Errorf("case %d: AdviseSetting = %v, want %v", i, got, c.want)
		}
	}
	if InPerson.String() == Remote.String() {
		t.Error("setting strings collide")
	}
}

func TestAdviseSubjectsFigure5(t *testing.T) {
	cases := []struct {
		q    StudyQuestion
		want SubjectDesign
	}{
		{StudyQuestion{InteractionsDefinitive: true, NavigationEnumerable: true}, Simulation},
		{StudyQuestion{InteractionsDefinitive: true}, BetweenSubject},
		{StudyQuestion{DependsOnInherentAbility: true}, WithinSubject},
		{StudyQuestion{}, BetweenSubject},
		// Simulation wins even for ability-dependent tasks when valid.
		{StudyQuestion{DependsOnInherentAbility: true, InteractionsDefinitive: true, NavigationEnumerable: true}, Simulation},
	}
	for i, c := range cases {
		if got := AdviseSubjects(c.q); got != c.want {
			t.Errorf("case %d: AdviseSubjects = %v, want %v", i, got, c.want)
		}
	}
}

func TestBiasCatalog(t *testing.T) {
	if len(Biases) != 7 {
		t.Errorf("bias catalog has %d rows, want 7 (Table 4)", len(Biases))
	}
	for _, b := range Biases {
		if b.Name == "" || b.Definition == "" || b.Mitigation == "" {
			t.Errorf("bias %+v incomplete", b)
		}
	}
	part := BiasesBySource(ParticipantBias)
	exp := BiasesBySource(ExperimenterBias)
	if len(part) != 4 || len(exp) != 3 {
		t.Errorf("participant/experimenter split = %d/%d, want 4/3", len(part), len(exp))
	}
	if ParticipantBias.String() == ExperimenterBias.String() {
		t.Error("bias source strings collide")
	}
}

func TestGuidelinesLists(t *testing.T) {
	if len(MetricBestPractices) != 8 {
		t.Errorf("best practices = %d, want 8 (§3.3)", len(MetricBestPractices))
	}
	if len(EvaluationPrinciples) != 8 {
		t.Errorf("principles = %d, want 8 (§5)", len(EvaluationPrinciples))
	}
	if len(PerceptualThresholds) != 4 {
		t.Errorf("perceptual thresholds = %d, want 4", len(PerceptualThresholds))
	}
}

func TestSUSScore(t *testing.T) {
	// All best answers (odd 5, even 1) → 100.
	best := []int{5, 1, 5, 1, 5, 1, 5, 1, 5, 1}
	if s, err := SUSScore(best); err != nil || s != 100 {
		t.Errorf("best SUS = %v, %v", s, err)
	}
	// All worst answers → 0.
	worst := []int{1, 5, 1, 5, 1, 5, 1, 5, 1, 5}
	if s, err := SUSScore(worst); err != nil || s != 0 {
		t.Errorf("worst SUS = %v, %v", s, err)
	}
	// Neutral 3s → 50.
	neutral := []int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	if s, _ := SUSScore(neutral); s != 50 {
		t.Errorf("neutral SUS = %v, want 50", s)
	}
	if _, err := SUSScore([]int{1, 2, 3}); err == nil {
		t.Error("short response set accepted")
	}
	if _, err := SUSScore([]int{5, 1, 5, 1, 5, 1, 5, 1, 5, 9}); err == nil {
		t.Error("out-of-range response accepted")
	}
	for score, want := range map[float64]string{90: "excellent", 75: "good", 60: "ok", 30: "poor"} {
		if got := SUSGrade(score); got != want {
			t.Errorf("SUSGrade(%v) = %q, want %q", score, got, want)
		}
	}
}

func TestSummarizeLikert(t *testing.T) {
	s, err := SummarizeLikert([]int{4, 4, 5, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.Stddev <= 0.5 || s.Stddev >= 1 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if _, err := SummarizeLikert(nil, 5); err == nil {
		t.Error("empty responses accepted")
	}
	if _, err := SummarizeLikert([]int{6}, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := SummarizeLikert([]int{1}, 1); err == nil {
		t.Error("degenerate scale accepted")
	}
}
