package taxonomy

// SystemUsage is one row of the paper's Tables 1–2: which metrics a
// published system's evaluation reported.
type SystemUsage struct {
	System  string
	Year    int
	Metrics []string
}

// UsageEarly is Table 1: metrics for data interaction, 1997–2012.
var UsageEarly = []SystemUsage{
	{"Online Aggregation", 1997, []string{Latency}},
	{"Igarashi et al.", 2000, []string{UserFeedback, NumInteractions}},
	{"Fekete and Plaisant", 2002, []string{Latency}},
	{"Yang et al.", 2003, []string{TaskCompletionTime}},
	{"Plaisant", 2004, []string{NumInsights}},
	{"Yang et al.", 2004, []string{UserFeedback}},
	{"Seo and Schneiderman", 2005, []string{NumInsights}},
	{"Kosara et al.", 2006, []string{Latency}},
	{"Mackinlay et al.", 2007, []string{UserFeedback}},
	{"Scented Widgets", 2007, []string{UserFeedback, NumInsights}},
	{"Faith", 2007, []string{Scalability}},
	{"Jagadish et al.", 2007, []string{TaskCompletionTime}},
	{"Yang et al.", 2007, []string{NumInsights}},
	{"Nalix", 2007, []string{UserFeedback}},
	{"Heer et al.", 2008, []string{UserFeedback}},
	{"LiveRac", 2008, []string{UserFeedback}},
	{"Basu et al.", 2008, []string{NumInteractions}},
	{"Atlas", 2008, []string{Latency, Throughput}},
	{"Liu and Jagadish", 2009, []string{TaskCompletionTime}},
	{"Woodring and Shen", 2009, []string{Latency, Scalability}},
	{"Facetor", 2010, []string{UserFeedback, TaskCompletionTime, NumInteractions}},
	{"Wrangler", 2011, []string{UserFeedback, TaskCompletionTime}},
	{"Dicon", 2011, []string{UserFeedback, NumInsights}},
	{"Yang et al.", 2011, []string{Latency}},
	{"Kashyap et al.", 2011, []string{NumInteractions}},
	{"Fisher et al.", 2012, []string{UserFeedback}},
	{"GravNav", 2012, []string{UserFeedback, TaskCompletionTime}},
	{"Wei et al.", 2012, []string{NumInsights}},
	{"Dataplay", 2012, []string{UserFeedback, TaskCompletionTime}},
	{"Zhang et al.", 2012, []string{Latency}},
	{"VizDeck", 2012, []string{NumInteractions}},
}

// UsageRecent is Table 2: metrics for data interaction, 2012–present.
var UsageRecent = []SystemUsage{
	{"Skimmer", 2012, []string{TaskCompletionTime, Latency}},
	{"Scout", 2012, []string{CacheHitRate}},
	{"Martin and Ward", 1995, []string{UserFeedback}},
	{"Bakke et al.", 2011, []string{UserFeedback, TaskCompletionTime}},
	{"GestureDB", 2013, []string{UserFeedback, TaskCompletionTime, Learnability, Discoverability}},
	{"Basole et al.", 2013, []string{UserFeedback, NumInsights, TaskCompletionTime}},
	{"Biswas et al.", 2013, []string{Accuracy, Scalability}},
	{"MotionExplorer", 2013, []string{UserFeedback}},
	{"Yuan et al.", 2013, []string{UserFeedback}},
	{"Ferreira et al.", 2013, []string{NumInsights}},
	{"Cooper et al.", 2010, []string{Throughput}},
	{"Immens", 2013, []string{Latency, Scalability}},
	{"Nanocubes", 2013, []string{Latency}},
	{"Kinetica", 2014, []string{UserFeedback, TaskCompletionTime, Learnability}},
	{"DICE", 2014, []string{Accuracy, Latency, Scalability, CacheHitRate}},
	{"Lyra", 2014, []string{UserFeedback, NumInsights}},
	{"Dimitriadou et al.", 2014, []string{Accuracy, NumInteractions, Latency}},
	{"SeeDB", 2014, []string{UserFeedback, TaskCompletionTime, Latency}},
	{"SnapToQuery", 2015, []string{UserFeedback, Accuracy, Latency}},
	{"Kim et al.", 2015, []string{Latency}},
	{"ForeCache", 2015, []string{CacheHitRate}},
	{"Zenvisage", 2016, []string{UserFeedback, TaskCompletionTime, Accuracy}},
	{"FluxQuery", 2016, []string{Latency}},
	{"Voyager", 2016, []string{UserFeedback}},
	{"Moritz et al.", 2017, []string{Accuracy}},
	{"Incvisage", 2017, []string{UserFeedback, TaskCompletionTime, Accuracy, Latency}},
	{"Data Tweening", 2017, []string{UserFeedback, TaskCompletionTime}},
	{"Icarus", 2018, []string{UserFeedback, TaskCompletionTime, Accuracy, NumInteractions}},
	{"Datamaran", 2018, []string{Accuracy}},
	{"Tensorboard", 2018, []string{UserFeedback, NumInsights}},
	{"DataSpread", 2018, []string{Latency}},
	{"Sesame", 2018, []string{Latency, CacheHitRate}},
	{"Transformer", 2019, []string{UserFeedback, TaskCompletionTime, NumInteractions}},
	{"ARQuery", 2019, []string{TaskCompletionTime, Accuracy, Latency}},
}

// AllUsage concatenates Tables 1 and 2.
func AllUsage() []SystemUsage {
	out := make([]SystemUsage, 0, len(UsageEarly)+len(UsageRecent))
	out = append(out, UsageEarly...)
	out = append(out, UsageRecent...)
	return out
}

// MetricCounts tallies how many surveyed systems used each metric — the
// co-occurrence overview the paper draws from Tables 1 and 2.
func MetricCounts() map[string]int {
	counts := map[string]int{}
	for _, u := range AllUsage() {
		for _, m := range u.Metrics {
			counts[m]++
		}
	}
	return counts
}

// CoOccurrence counts how often two metrics appear in the same system's
// evaluation (order-insensitive).
func CoOccurrence(a, b string) int {
	n := 0
	for _, u := range AllUsage() {
		hasA, hasB := false, false
		for _, m := range u.Metrics {
			if m == a {
				hasA = true
			}
			if m == b {
				hasB = true
			}
		}
		if hasA && hasB {
			n++
		}
	}
	return n
}
