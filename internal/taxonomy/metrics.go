// Package taxonomy encodes the survey half of the paper as queryable data:
// the metric taxonomy of Figure 1, the per-system metric usage of Tables 1
// and 2, the metric-selection guidelines of Table 3 and Section 3.3, the
// study-design decision trees of Figures 4 and 5, the cognitive-bias
// catalog of Table 4, and the evaluation principles of Section 5.
//
// Encoding the survey makes it executable: the advisor functions answer
// "which metrics should my system measure?" and "how should I design the
// user study?" from a structured description of the system, which is the
// use the paper intends for these tables.
package taxonomy

// Category places a metric in the Figure 1 taxonomy.
type Category int

// Figure 1 categories.
const (
	HumanQualitative Category = iota
	HumanQuantitative
	SystemFrontend
	SystemBackend
)

// String names the category.
func (c Category) String() string {
	switch c {
	case HumanQualitative:
		return "human/qualitative"
	case HumanQuantitative:
		return "human/quantitative"
	case SystemFrontend:
		return "system/frontend"
	case SystemBackend:
		return "system/backend"
	default:
		return "unknown"
	}
}

// Metric is one node of the Figure 1 taxonomy with its Table 3 guidance.
type Metric struct {
	Name        string
	Category    Category
	Description string
	WhenToUse   string // Table 3's "when to use" column
	// Novel marks the two metrics the paper introduces.
	Novel bool
	// Components lists sub-metrics (latency's five components).
	Components []string
}

// Canonical metric names (keys into Metrics).
const (
	DesignStudy         = "design study"
	FocusGroup          = "focus group"
	UserFeedback        = "user feedback"
	NumInsights         = "no. of insights"
	UniquenessOfInsight = "uniqueness of insights"
	TaskCompletionTime  = "task completion time"
	Accuracy            = "accuracy"
	NumInteractions     = "number of interactions"
	Learnability        = "learnability"
	Discoverability     = "discoverability"
	Usability           = "usability"
	LCVMetric           = "latency constraint violation"
	QIFMetric           = "query issuing frequency"
	Latency             = "latency"
	Scalability         = "scalability"
	Throughput          = "throughput"
	CacheHitRate        = "cache hit rate"
)

// Metrics is the Figure 1 taxonomy with Table 3 guidance.
var Metrics = []Metric{
	{Name: DesignStudy, Category: HumanQualitative,
		Description: "Extended interviews with practitioners for task definition and requirements gathering.",
		WhenToUse:   "For formulating system specifications and evaluation tasks."},
	{Name: FocusGroup, Category: HumanQualitative,
		Description: "Small expert groups reaching consensus feedback on features or designs.",
		WhenToUse:   "To get consensus feedback from a group."},
	{Name: UserFeedback, Category: HumanQualitative,
		Description: "Open-ended comments, questionnaires, Likert-scale surveys (e.g. SUS, ICE-T).",
		WhenToUse:   "Always."},
	{Name: NumInsights, Category: HumanQuantitative,
		Description: "Insights found during exploratory analysis; subjective — use with caution.",
		WhenToUse:   "Exploratory systems that provide user guidance."},
	{Name: UniquenessOfInsight, Category: HumanQuantitative,
		Description: "How many of the insights found are unique across users.",
		WhenToUse:   "Exploratory systems that provide user guidance."},
	{Name: TaskCompletionTime, Category: HumanQuantitative,
		Description: "Time for the user to complete a system-specific task (a usability flavor).",
		WhenToUse:   "Task-based systems."},
	{Name: Accuracy, Category: HumanQuantitative,
		Description: "Deviation of approximate results from the truth: precision/recall, MSE.",
		WhenToUse:   "Approximate and speculative systems."},
	{Name: NumInteractions, Category: HumanQuantitative,
		Description: "Iterations or operator applications needed to complete a task (a usability flavor).",
		WhenToUse:   "Systems that aim to reduce user effort for a specific task; usually in comparison to a baseline."},
	{Name: Usability, Category: HumanQuantitative,
		Description: "Catch-all ease-of-use measure; measured through its flavors: task completion time, accuracy, number of interactions, insight counts.",
		WhenToUse:   "Always relevant; pick the flavor matching the system's claim.",
		Components:  []string{TaskCompletionTime, Accuracy, NumInteractions, NumInsights, UniquenessOfInsight}},
	{Name: Learnability, Category: HumanQuantitative,
		Description: "How quickly users master functionality after training; training must be equalized.",
		WhenToUse:   "Complex systems that will be used frequently by experts."},
	{Name: Discoverability, Category: HumanQuantitative,
		Description: "How quickly users find actions without instruction; affordances help.",
		WhenToUse:   "Systems designed for everyday use by naive/untrained users."},
	{Name: LCVMetric, Category: SystemFrontend, Novel: true,
		Description: "Count of queries whose results had not returned when the user acted again — perceived delays, stricter than mean/max latency.",
		WhenToUse:   "Systems where multiple queries are issued consecutively in a short time frame."},
	{Name: QIFMetric, Category: SystemFrontend, Novel: true,
		Description: "Queries issued per second by the frontend; a function of device sensing rate, to be matched against backend capacity.",
		WhenToUse:   "Devices with high frame rate."},
	{Name: Latency, Category: SystemBackend,
		Description: "Submit-to-result time as perceived by the user, decomposable into five components.",
		WhenToUse:   "Always.",
		Components: []string{
			"network latency", "query scheduling latency", "query execution latency",
			"post-aggregation latency", "rendering latency",
		}},
	{Name: Scalability, Category: SystemBackend,
		Description: "Performance change with data growth (scale-up and scale-out both saturate).",
		WhenToUse:   "Systems that deal with large amounts of data."},
	{Name: Throughput, Category: SystemBackend,
		Description: "Transactions, requests, or tasks per second (TPC-style).",
		WhenToUse:   "Distributed systems."},
	{Name: CacheHitRate, Category: SystemBackend,
		Description: "Fraction of queries answered from cache; predictive policies beat plain eviction.",
		WhenToUse:   "Systems that perform prefetching."},
}

// MetricByName looks up a metric.
func MetricByName(name string) (Metric, bool) {
	for _, m := range Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// PerceptualThreshold is one published latency-perception result (§3.1.1),
// usable for setting latency budgets.
type PerceptualThreshold struct {
	Context   string
	Threshold string
	Finding   string
	Source    string
}

// PerceptualThresholds lists the perception studies the paper catalogs.
var PerceptualThresholds = []PerceptualThreshold{
	{Context: "visual analysis systems", Threshold: "500 ms",
		Finding: "An added 500 ms delay is noticeable and depresses analysis; early exposure has lasting effects.",
		Source:  "Liu & Heer 2014"},
	{Context: "head-mounted devices", Threshold: "50 ms",
		Finding: "base+50 ms had the lowest sickness score; total time, not delay, dominates experience.",
		Source:  "Nelson et al. 2000"},
	{Context: "target acquisition (mouse)", Threshold: "50 ms / 110 ms",
		Finding: "Acquisition accuracy drops above 50 ms latency; tracking accuracy above 110 ms.",
		Source:  "Pavlovych & Gutwin 2012"},
	{Context: "direct touch pointing", Threshold: "20 ms",
		Finding: "Users can distinguish a 20 ms latency difference but nothing below it.",
		Source:  "Jota et al. 2013"},
}

// MetricBestPractices are the Section 3.3 selection practices.
var MetricBestPractices = []string{
	"Cover at least one metric from system factors and one from human factors.",
	"Domain-specific systems should run design studies and focus groups with end users to formalize requirements.",
	"End users should be able to give qualitative open-ended feedback at every development stage.",
	"Approximate systems should evaluate accuracy against user effort and/or latency; speculative prefetchers should also report accuracy or cache hit rate.",
	"Measure discoverability for novice-facing systems and learnability for expert-facing ones.",
	"Task-oriented systems should measure user effort: task completion time, number of interactions, or insight quality.",
	"Distributed large-data systems should measure throughput and scalability, plus summarization latency and cognitive load.",
	"High-frame-rate gesture/touch devices issuing consecutive queries should measure query issuing frequency and latency constraint violations.",
}

// EvaluationPrinciples are the Section 5 guidelines demonstrated by the
// case studies.
var EvaluationPrinciples = []string{
	"Take behavior-driven optimizations into account: leverage session characteristics in design and evaluation.",
	"Maximize coverage of query types and interaction techniques; each generates a unique workload.",
	"Evaluate from a human as well as a system perspective.",
	"Use real-world tasks on real datasets for ecological validity.",
	"Randomize participant order between tasks to limit learning and interference.",
	"Granularize tasks and have their language externally reviewed to limit biases.",
	"Use at least ~10 users when studying behavior, more if task variability is high.",
	"Cover a variety of workloads: scenarios, data distributions, and data sizes.",
}
