package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/storage"
)

// ColSpec describes one synthetic column for Synth: its storage type, the
// value domain, and the knobs the colstore benchmarks turn — cardinality
// (how many distinct values the column draws from), quantization (values
// snapped to a grid, the shape sensor and coordinate data has), and random
// walks (spatially correlated sequences like the road network's
// coordinates, which stay dense but compress poorly).
type ColSpec struct {
	Name string
	Type storage.Type // Float64, Int64, or String

	// Lo/Hi bound numeric domains (ignored for strings).
	Lo, Hi float64

	// Cardinality > 0 draws values from that many distinct points spread
	// over [Lo, Hi] (or that many distinct strings) — the dictionary-
	// encoding case. 0 means unconstrained.
	Cardinality int

	// Quantum > 0 snaps numeric values to multiples of it — distinct
	// counts then follow from the domain width, not an explicit list.
	Quantum float64

	// Walk makes the column a clamped random walk over [Lo, Hi] with the
	// given step scale instead of independent draws — dense, correlated,
	// and effectively incompressible at full float precision.
	Walk float64
}

// Synth generates a rows-by-len(specs) table deterministically from seed.
// Each column gets its own rng stream (derived from seed and the column
// index), so adding or reordering columns never perturbs the values of the
// others, and the same spec at two row counts agrees on the shared prefix.
func Synth(name string, seed int64, rows int, specs []ColSpec) (*storage.Table, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("dataset: synth table needs at least one column")
	}
	schema := make(storage.Schema, len(specs))
	cols := make([]*storage.Column, len(specs))
	for i, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("dataset: synth column %d has no name", i)
		}
		schema[i] = storage.ColumnDef{Name: sp.Name, Type: sp.Type}
		col, err := synthColumn(seed+int64(i)*0x9e3779b9, rows, sp)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return &storage.Table{
		Name:     name,
		Schema:   schema,
		Columns:  cols,
		PageRows: storage.DefaultPageRows,
	}, nil
}

// synthColumn fills one column from its spec.
func synthColumn(seed int64, rows int, sp ColSpec) (*storage.Column, error) {
	rng := rand.New(rand.NewSource(seed))
	switch sp.Type {
	case storage.String:
		if sp.Cardinality <= 0 {
			return nil, fmt.Errorf("dataset: string column %q needs Cardinality > 0", sp.Name)
		}
		vocab := make([]string, sp.Cardinality)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("%s-%s-%03d", pick(rng, adjectives), pick(rng, nouns), i)
		}
		vals := make([]string, rows)
		for i := range vals {
			vals[i] = vocab[rng.Intn(len(vocab))]
		}
		return &storage.Column{Type: storage.String, Strings: vals}, nil
	case storage.Float64, storage.Int64:
	default:
		return nil, fmt.Errorf("dataset: column %q has unsupported type %v", sp.Name, sp.Type)
	}
	if sp.Hi < sp.Lo {
		return nil, fmt.Errorf("dataset: column %q has inverted domain [%g, %g]", sp.Name, sp.Lo, sp.Hi)
	}
	vals := make([]float64, rows)
	switch {
	case sp.Walk > 0:
		v := sp.Lo + rng.Float64()*(sp.Hi-sp.Lo)
		for i := range vals {
			v = clamp(v+rng.NormFloat64()*sp.Walk, sp.Lo, sp.Hi)
			vals[i] = v
		}
	case sp.Cardinality > 0:
		points := make([]float64, sp.Cardinality)
		for i := range points {
			if sp.Cardinality == 1 {
				points[i] = sp.Lo
				break
			}
			points[i] = sp.Lo + (sp.Hi-sp.Lo)*float64(i)/float64(sp.Cardinality-1)
		}
		for i := range vals {
			vals[i] = points[rng.Intn(len(points))]
		}
	default:
		for i := range vals {
			vals[i] = sp.Lo + rng.Float64()*(sp.Hi-sp.Lo)
		}
	}
	if sp.Quantum > 0 {
		for i := range vals {
			vals[i] = clamp(math.Round(vals[i]/sp.Quantum)*sp.Quantum, sp.Lo, sp.Hi)
		}
	}
	if sp.Type == storage.Int64 {
		ints := make([]int64, rows)
		for i, v := range vals {
			ints[i] = int64(math.Round(v))
		}
		return &storage.Column{Type: storage.Int64, Ints: ints}, nil
	}
	return &storage.Column{Type: storage.Float64, Floats: vals}, nil
}

// RoadStyle returns the column mix of the colstore benchmark's scaled
// road-style table: two coordinate random walks quantized to a 1e-5 grid
// (the precision GPS traces ship with), a coarsely quantized altitude, a
// low-cardinality road category, a small-domain lane count, and a speed
// limit drawn from a handful of legal values. The walks land in plain or
// frame-of-reference storage; the rest dictionary-encode.
func RoadStyle() []ColSpec {
	lonLo, lonHi, latLo, latHi, altLo, altHi := RoadBounds()
	return []ColSpec{
		{Name: "x", Type: storage.Float64, Lo: lonLo, Hi: lonHi, Walk: 0.0004, Quantum: 1e-5},
		{Name: "y", Type: storage.Float64, Lo: latLo, Hi: latHi, Walk: 0.0002, Quantum: 1e-5},
		{Name: "z", Type: storage.Float64, Lo: altLo, Hi: altHi, Walk: 0.4, Quantum: 0.01},
		{Name: "category", Type: storage.String, Cardinality: 24},
		{Name: "lanes", Type: storage.Int64, Lo: 1, Hi: 6},
		{Name: "speed", Type: storage.Int64, Lo: 30, Hi: 130, Cardinality: 8},
	}
}

// SynthRoads builds the scaled road-style benchmark table at any row
// count — the shape the 50M-row colstore benchmark runs against.
func SynthRoads(seed int64, rows int) *storage.Table {
	t, err := Synth("synthroad", seed, rows, RoadStyle())
	if err != nil {
		panic(err) // RoadStyle specs are statically valid
	}
	return t
}
