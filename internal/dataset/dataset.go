// Package dataset generates the synthetic datasets standing in for the
// paper's proprietary or external data sources:
//
//   - Movies: an IMDB-like table of top-rated movies (paper: top 4,000
//     IMDB tuples with 6 attributes) used by the inertial-scrolling case
//     study, plus the split movie/rating pair used by its streaming-join
//     query Q2.
//   - Roads: a 3D road network (paper: UCI dataset, 434,874 tuples with
//     longitude, latitude, altitude) used by the crossfiltering case study.
//     Generated as a spatially correlated random walk so histograms are
//     realistically non-uniform.
//   - Listings: an Airbnb-like accommodation table used by the
//     composite-interface case study (location, price, room type, guests).
//
// All generators are deterministic under their seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/storage"
)

// MovieCount matches the paper's inertial-scrolling corpus size.
const MovieCount = 4000

// RoadCount matches the UCI 3D road-network cardinality the paper uses.
const RoadCount = 434874

// DefaultListingCount sizes the synthetic accommodation table.
const DefaultListingCount = 20000

var (
	genres     = []string{"Drama", "Comedy", "Action", "Thriller", "Sci-Fi", "Romance", "Horror", "Documentary", "Animation", "Crime"}
	firstNames = []string{"Ava", "Liam", "Noah", "Emma", "Mia", "Ethan", "Sofia", "Lucas", "Iris", "Hugo", "Nora", "Felix", "Clara", "Oscar", "Ruth", "Jonas"}
	lastNames  = []string{"Kim", "Garcia", "Okafor", "Novak", "Rossi", "Tanaka", "Muller", "Silva", "Haddad", "Larsen", "Petrov", "Dubois", "Mori", "Iyer", "Weber", "Costa"}
	nouns      = []string{"Shadow", "River", "Empire", "Garden", "Signal", "Harbor", "Winter", "Echo", "Meridian", "Lantern", "Orchard", "Static", "Velvet", "Quarry", "Summit", "Cipher"}
	adjectives = []string{"Silent", "Broken", "Golden", "Distant", "Hidden", "Burning", "Final", "Electric", "Paper", "Hollow", "Crimson", "Restless", "Quiet", "Savage", "Pale", "Iron"}
	roomTypes  = []string{"Entire home/apt", "Private room", "Shared room", "Hotel room"}
)

// Movies generates n movie tuples with the six attributes the case study
// scrolls through: poster, title, year, director, genre, plot, rating.
// Ratings descend with rank (it is a "top rated" list) with noise, so the
// table arrives pre-sorted the way the study presented it.
func Movies(seed int64, n int) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("imdb", storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "poster", Type: storage.String},
		{Name: "title", Type: storage.String},
		{Name: "year", Type: storage.Int64},
		{Name: "director", Type: storage.String},
		{Name: "genre", Type: storage.String},
		{Name: "plot", Type: storage.String},
		{Name: "rating", Type: storage.Float64},
	})
	for i := 0; i < n; i++ {
		title := fmt.Sprintf("%s %s", pick(rng, adjectives), pick(rng, nouns))
		if rng.Intn(4) == 0 {
			title = "The " + title
		}
		director := pick(rng, firstNames) + " " + pick(rng, lastNames)
		genre := pick(rng, genres)
		year := 1950 + rng.Intn(70)
		// Top-rated list: rating decays from ~9.3 to ~7.0 with rank.
		rating := 9.3 - 2.3*float64(i)/float64(n) + rng.NormFloat64()*0.05
		rating = math.Round(rating*10) / 10
		plot := fmt.Sprintf("A %s tale of %s and %s in %d.",
			pick(rng, adjectives), pick(rng, nouns), pick(rng, nouns), year)
		t.MustAppendRow(
			storage.NewInt(int64(i)),
			storage.NewString(fmt.Sprintf("poster_%04d.jpg", i)),
			storage.NewString(title),
			storage.NewInt(int64(year)),
			storage.NewString(director),
			storage.NewString(genre),
			storage.NewString(plot),
			storage.NewFloat(rating),
		)
	}
	return t
}

// MovieRatingSplit splits a movie table into the two tables joined by the
// scrolling case study's streaming-join query Q2: imdbrating(id, rating)
// and movie(id, poster, title, year, director, genre, plot).
func MovieRatingSplit(movies *storage.Table) (ratings, details *storage.Table) {
	ratings = storage.NewTable("imdbrating", storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "rating", Type: storage.Float64},
	})
	details = storage.NewTable("movie", storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "poster", Type: storage.String},
		{Name: "title", Type: storage.String},
		{Name: "year", Type: storage.Int64},
		{Name: "director", Type: storage.String},
		{Name: "genre", Type: storage.String},
		{Name: "plot", Type: storage.String},
	})
	for i := 0; i < movies.NumRows(); i++ {
		row := movies.Row(i)
		ratings.MustAppendRow(row[0], row[7])
		details.MustAppendRow(row[0], row[1], row[2], row[3], row[4], row[5], row[6])
	}
	return ratings, details
}

// Roads generates an n-tuple 3D road network: dataroad(x, y, z) holding
// longitude, latitude, and altitude. The paper's dataset covers Jutland,
// Denmark (lon ≈ 8.15–11.26, lat ≈ 56.58–57.77, alt ≈ −8.6–137.4); the
// generator walks road segments inside the same bounding box so that the
// crossfilter histograms and query predicates match the case study's.
func Roads(seed int64, n int) *storage.Table {
	const (
		lonLo, lonHi = 8.146, 11.2616367163
		latLo, latHi = 56.582, 57.774
		altLo, altHi = -8.608, 137.361
	)
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("dataroad", storage.Schema{
		{Name: "x", Type: storage.Float64}, // longitude
		{Name: "y", Type: storage.Float64}, // latitude
		{Name: "z", Type: storage.Float64}, // altitude
	})
	// Roads come in segments: pick a town center, walk along it. Towns are
	// themselves clustered, producing the multiscale non-uniformity real
	// road networks have.
	centers := make([][3]float64, 40)
	for i := range centers {
		centers[i] = [3]float64{
			lonLo + rng.Float64()*(lonHi-lonLo),
			latLo + rng.Float64()*(latHi-latLo),
			altLo + math.Pow(rng.Float64(), 2)*(altHi-altLo), // altitude skews low
		}
	}
	emitted := 0
	for emitted < n {
		c := centers[rng.Intn(len(centers))]
		segLen := 20 + rng.Intn(400)
		if emitted+segLen > n {
			segLen = n - emitted
		}
		x := c[0] + rng.NormFloat64()*0.15
		y := c[1] + rng.NormFloat64()*0.08
		z := c[2] + rng.NormFloat64()*5
		heading := rng.Float64() * 2 * math.Pi
		for j := 0; j < segLen; j++ {
			heading += rng.NormFloat64() * 0.2
			x += math.Cos(heading) * 0.0004
			y += math.Sin(heading) * 0.0002
			z += rng.NormFloat64() * 0.4
			t.MustAppendRow(
				storage.NewFloat(clamp(x, lonLo, lonHi)),
				storage.NewFloat(clamp(y, latLo, latHi)),
				storage.NewFloat(clamp(z, altLo, altHi)),
			)
		}
		emitted += segLen
	}
	return t
}

// RoadBounds returns the bounding box the road generator uses, needed by
// callers constructing range predicates over the full domain.
func RoadBounds() (lonLo, lonHi, latLo, latHi, altLo, altHi float64) {
	return 8.146, 11.2616367163, 56.582, 57.774, -8.608, 137.361
}

// Listings generates an Airbnb-like table: listings(id, lat, lng, price,
// room_type, guests, rating, reviews). Locations cluster around a handful
// of city centers inside a continental-US-like box; price is log-normal.
func Listings(seed int64, n int) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("listings", storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "lat", Type: storage.Float64},
		{Name: "lng", Type: storage.Float64},
		{Name: "price", Type: storage.Float64},
		{Name: "room_type", Type: storage.String},
		{Name: "guests", Type: storage.Int64},
		{Name: "rating", Type: storage.Float64},
		{Name: "reviews", Type: storage.Int64},
	})
	type city struct{ lat, lng, weight float64 }
	cities := []city{
		{40.71, -74.00, 0.22}, {34.05, -118.24, 0.18}, {41.88, -87.63, 0.12},
		{29.76, -95.37, 0.09}, {33.45, -112.07, 0.07}, {47.61, -122.33, 0.08},
		{25.76, -80.19, 0.10}, {39.74, -104.99, 0.06}, {36.16, -86.78, 0.08},
	}
	for i := 0; i < n; i++ {
		r := rng.Float64()
		var c city
		for _, cand := range cities {
			if r < cand.weight {
				c = cand
				break
			}
			r -= cand.weight
		}
		if c.lat == 0 {
			c = cities[len(cities)-1]
		}
		lat := c.lat + rng.NormFloat64()*0.35
		lng := c.lng + rng.NormFloat64()*0.45
		price := math.Exp(4.2 + rng.NormFloat64()*0.6) // median ≈ $67
		guests := 1 + rng.Intn(8)
		rating := clamp(4.7+rng.NormFloat64()*0.4, 1, 5)
		reviews := int64(math.Floor(math.Exp(rng.Float64() * 6)))
		t.MustAppendRow(
			storage.NewInt(int64(i)),
			storage.NewFloat(lat),
			storage.NewFloat(lng),
			storage.NewFloat(math.Round(price)),
			storage.NewString(pick(rng, roomTypes)),
			storage.NewInt(int64(guests)),
			storage.NewFloat(math.Round(rating*10)/10),
			storage.NewInt(reviews),
		)
	}
	return t
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
