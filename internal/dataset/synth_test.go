package dataset

import (
	"testing"

	"repro/internal/storage"
)

// TestSynthDeterministicAndPrefixStable pins the two scaling guarantees:
// the same seed reproduces the table exactly, and a larger row count
// agrees with a smaller one on the shared prefix (per-column rng streams
// make rows independent of the total).
func TestSynthDeterministicAndPrefixStable(t *testing.T) {
	a := SynthRoads(7, 2000)
	b := SynthRoads(7, 2000)
	big := SynthRoads(7, 6000)
	if big.NumRows() != 6000 || a.NumRows() != 2000 {
		t.Fatalf("row counts: %d, %d", a.NumRows(), big.NumRows())
	}
	for c, col := range a.Columns {
		for i := 0; i < a.NumRows(); i++ {
			if col.Value(i) != b.Columns[c].Value(i) {
				t.Fatalf("col %d row %d: not deterministic", c, i)
			}
			if col.Value(i) != big.Columns[c].Value(i) {
				t.Fatalf("col %d row %d: prefix differs at larger row count", c, i)
			}
		}
	}
}

// TestSynthCardinalityControl checks each knob produces the distinct-value
// profile it promises.
func TestSynthCardinalityControl(t *testing.T) {
	const n = 30_000
	tbl, err := Synth("k", 3, n, []ColSpec{
		{Name: "cat", Type: storage.String, Cardinality: 12},
		{Name: "speed", Type: storage.Int64, Lo: 30, Hi: 130, Cardinality: 8},
		{Name: "quant", Type: storage.Float64, Lo: 0, Hi: 1, Quantum: 0.01},
		{Name: "dense", Type: storage.Float64, Lo: 0, Hi: 1},
		{Name: "walk", Type: storage.Float64, Lo: -5, Hi: 5, Walk: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(name string) int {
		col := tbl.Column(name)
		seen := make(map[interface{}]struct{})
		for i := 0; i < n; i++ {
			seen[col.Value(i)] = struct{}{}
		}
		return len(seen)
	}
	if d := distinct("cat"); d != 12 {
		t.Errorf("cat: %d distinct, want 12", d)
	}
	if d := distinct("speed"); d != 8 {
		t.Errorf("speed: %d distinct, want 8", d)
	}
	if d := distinct("quant"); d < 95 || d > 101 {
		t.Errorf("quant: %d distinct, want ~101", d)
	}
	if d := distinct("dense"); d < n*99/100 {
		t.Errorf("dense: only %d distinct of %d", d, n)
	}
	if d := distinct("walk"); d < n/2 {
		t.Errorf("walk: only %d distinct of %d", d, n)
	}
	// Domains hold.
	speed := tbl.Column("speed")
	for i := 0; i < n; i++ {
		if v := speed.Float(i); v < 30 || v > 130 {
			t.Fatalf("speed row %d out of domain: %g", i, v)
		}
	}
}

// TestSynthRejectsBadSpecs pins the error paths.
func TestSynthRejectsBadSpecs(t *testing.T) {
	cases := [][]ColSpec{
		nil,
		{{Name: "", Type: storage.Float64}},
		{{Name: "s", Type: storage.String}}, // string without cardinality
		{{Name: "f", Type: storage.Float64, Lo: 2, Hi: 1}},
	}
	for i, specs := range cases {
		if _, err := Synth("bad", 1, 10, specs); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}
