package dataset

import (
	"testing"

	"repro/internal/storage"
)

func TestMoviesShape(t *testing.T) {
	m := Movies(1, 500)
	if m.NumRows() != 500 {
		t.Fatalf("NumRows = %d, want 500", m.NumRows())
	}
	for _, col := range []string{"id", "poster", "title", "year", "director", "genre", "plot", "rating"} {
		if m.Column(col) == nil {
			t.Errorf("missing column %q", col)
		}
	}
	// Ratings trend downward: first decile mean > last decile mean.
	r := m.Column("rating")
	var head, tail float64
	for i := 0; i < 50; i++ {
		head += r.Floats[i]
		tail += r.Floats[450+i]
	}
	if head <= tail {
		t.Errorf("ratings do not descend with rank: head=%v tail=%v", head/50, tail/50)
	}
	// All ratings plausible.
	for i := 0; i < 500; i++ {
		if v := r.Floats[i]; v < 5 || v > 10 {
			t.Fatalf("rating[%d] = %v out of range", i, v)
		}
	}
}

func TestMoviesDeterministic(t *testing.T) {
	a, b := Movies(7, 100), Movies(7, 100)
	for i := 0; i < 100; i++ {
		if a.Column("title").Strings[i] != b.Column("title").Strings[i] {
			t.Fatal("same seed produced different movies")
		}
	}
	c := Movies(8, 100)
	diff := false
	for i := 0; i < 100; i++ {
		if a.Column("title").Strings[i] != c.Column("title").Strings[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical movies")
	}
}

func TestMovieRatingSplit(t *testing.T) {
	m := Movies(1, 200)
	ratings, details := MovieRatingSplit(m)
	if ratings.NumRows() != 200 || details.NumRows() != 200 {
		t.Fatal("split changed cardinality")
	}
	if ratings.Column("rating") == nil || details.Column("title") == nil {
		t.Fatal("split schemas wrong")
	}
	// Join key lines up.
	for i := 0; i < 200; i++ {
		if ratings.Column("id").Ints[i] != details.Column("id").Ints[i] {
			t.Fatal("ids diverge between split tables")
		}
		if ratings.Column("rating").Floats[i] != m.Column("rating").Floats[i] {
			t.Fatal("rating mismatch after split")
		}
	}
}

func TestRoadsShapeAndBounds(t *testing.T) {
	r := Roads(3, 5000)
	if r.NumRows() != 5000 {
		t.Fatalf("NumRows = %d, want 5000", r.NumRows())
	}
	lonLo, lonHi, latLo, latHi, altLo, altHi := RoadBounds()
	checks := []struct {
		col    string
		lo, hi float64
	}{
		{"x", lonLo, lonHi}, {"y", latLo, latHi}, {"z", altLo, altHi},
	}
	for _, c := range checks {
		lo, hi, ok := r.MinMax(c.col)
		if !ok {
			t.Fatalf("MinMax(%s) failed", c.col)
		}
		if lo < c.lo || hi > c.hi {
			t.Errorf("%s range [%v,%v] outside bounds [%v,%v]", c.col, lo, hi, c.lo, c.hi)
		}
	}
}

func TestRoadsNonUniform(t *testing.T) {
	// Road data must be spatially clustered: a 20-bin histogram over x
	// should have a max bin well above the uniform expectation.
	r := Roads(3, 20000)
	lonLo, lonHi, _, _, _, _ := RoadBounds()
	bins := make([]int, 20)
	col := r.Column("x")
	for i := 0; i < r.NumRows(); i++ {
		b := int((col.Floats[i] - lonLo) / (lonHi - lonLo) * 20)
		if b >= 20 {
			b = 19
		}
		bins[b]++
	}
	max := 0
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	uniform := r.NumRows() / 20
	if max < uniform*2 {
		t.Errorf("x histogram looks uniform: max bin %d vs uniform %d", max, uniform)
	}
}

func TestRoadsExactCountRequested(t *testing.T) {
	// Segment emission must not overshoot n.
	for _, n := range []int{1, 19, 20, 21, 437} {
		if got := Roads(5, n).NumRows(); got != n {
			t.Errorf("Roads(n=%d) produced %d rows", n, got)
		}
	}
}

func TestListings(t *testing.T) {
	l := Listings(2, 3000)
	if l.NumRows() != 3000 {
		t.Fatalf("NumRows = %d", l.NumRows())
	}
	prices := l.Column("price")
	neg := 0
	for i := 0; i < l.NumRows(); i++ {
		if prices.Floats[i] <= 0 {
			neg++
		}
	}
	if neg > 0 {
		t.Errorf("%d non-positive prices", neg)
	}
	// room_type values restricted to the known set.
	seen := map[string]bool{}
	for _, s := range l.Column("room_type").Strings {
		seen[s] = true
	}
	for s := range seen {
		ok := false
		for _, want := range roomTypes {
			if s == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected room_type %q", s)
		}
	}
	// ratings within [1,5]
	for _, v := range l.Column("rating").Floats {
		if v < 1 || v > 5 {
			t.Fatalf("rating %v out of [1,5]", v)
		}
	}
}

func TestFullSizeRoadCountSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size road network in -short mode")
	}
	r := Roads(1, RoadCount)
	if r.NumRows() != RoadCount {
		t.Fatalf("NumRows = %d, want %d", r.NumRows(), RoadCount)
	}
	if _, err := r.BuildIndex("x"); err != nil {
		t.Fatal(err)
	}
	rows, err := r.RangeRows("x", storage.NewFloat(9), storage.NewFloat(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("mid-domain range returned no rows")
	}
}
