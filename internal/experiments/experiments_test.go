package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig7", "fig8", "fig9", "tab7", "fig10", "tab8",
		"fig11", "fig13", "fig14", "fig15", "fig3",
		"tab9", "fig18", "tab10", "fig20", "fig21",
		"tab1_2", "tab3", "fig4_5", "tab4",
		"ext_progressive", "ext_scaleout", "ext_throughput", "ext_reuse", "ext_infoloss",
		"fig2", "tab5_6",
	}
	got := map[string]bool{}
	for _, id := range IDs() {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
	if _, ok := ByID("fig13"); !ok {
		t.Error("ByID(fig13) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

// TestRunAllQuick runs the entire evaluation at Quick scale and requires
// every shape check to pass — the end-to-end reproduction test.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	if raceEnabled {
		// The sweep is strictly sequential — nothing here exercises
		// concurrency that TestParallelDeterminismGolden (which replays
		// the engine-heavy fig13/fig15 with parallelism forced on) does
		// not, and under the race detector the full 20-experiment run
		// blows past the per-package test timeout.
		t.Skip("full experiment sweep under -race; see TestParallelDeterminismGolden")
	}
	var buf bytes.Buffer
	reports, err := RunAll(Quick(), &buf)
	if err != nil {
		t.Fatalf("RunAll: %v\n%s", err, buf.String())
	}
	if len(reports) != len(Registry) {
		t.Fatalf("got %d reports for %d experiments", len(reports), len(Registry))
	}
	for _, rep := range reports {
		if len(rep.Lines) == 0 {
			t.Errorf("%s: empty report", rep.ID)
		}
		for _, c := range rep.Checks {
			if !c.Pass {
				t.Errorf("%s: check %q failed: %s", rep.ID, c.Name, c.Detail)
			}
		}
	}
	out := buf.String()
	for _, want := range []string{"== fig13", "PASS", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestSampleTable(t *testing.T) {
	ctx := NewContext(Quick())
	roads := ctx.Roads()
	s := SampleTable(roads, 500)
	if s.NumRows() > 500 || s.NumRows() < 400 {
		t.Errorf("sample rows = %d", s.NumRows())
	}
	if len(s.Schema) != len(roads.Schema) {
		t.Error("sample schema mismatch")
	}
	// Oversized request returns everything.
	small := SampleTable(s, 10_000_000)
	if small.NumRows() != s.NumRows() {
		t.Error("oversized sample wrong")
	}
}

func TestContextCaching(t *testing.T) {
	ctx := NewContext(Quick())
	if ctx.Movies() != ctx.Movies() {
		t.Error("movies not cached")
	}
	if ctx.Roads() != ctx.Roads() {
		t.Error("roads not cached")
	}
	a := ctx.ScrollTraces()
	b := ctx.ScrollTraces()
	if &a[0] != &b[0] {
		t.Error("scroll traces not cached")
	}
	if len(ctx.SliderSessions("mouse")) != Quick().Users {
		t.Error("slider session count wrong")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t"}
	r.Printf("line %d", 1)
	r.Check("ok", true, "detail")
	r.Check("bad", false, "detail2")
	if r.Passed() {
		t.Error("Passed with failing check")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "line 1", "[PASS] ok", "[FAIL] bad"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}
