package experiments

import (
	"sort"

	"repro/internal/taxonomy"
)

// Survey artifacts: the metric taxonomy (Figure 1, Tables 1–3), the
// study-design advisors (Figures 4–5), and the bias catalog (Table 4).

func init() {
	register(Experiment{ID: "tab1_2", Title: "Metric usage across surveyed systems (Tables 1–2)", Run: runTab12})
	register(Experiment{ID: "tab3", Title: "Metric selection guidelines (Table 3 / Figure 1)", Run: runTab3})
	register(Experiment{ID: "fig4_5", Title: "Study-design advisors (Figures 4–5)", Run: runFig45})
	register(Experiment{ID: "tab4", Title: "Cognitive bias catalog (Table 4)", Run: runTab4})
}

func runTab12(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab1_2", Title: "Metric usage across surveyed systems"}
	counts := taxonomy.MetricCounts()
	type kv struct {
		name string
		n    int
	}
	var rows []kv
	for name, n := range counts {
		rows = append(rows, kv{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	r.Printf("surveyed systems: %d (Table 1: %d, Table 2: %d)",
		len(taxonomy.AllUsage()), len(taxonomy.UsageEarly), len(taxonomy.UsageRecent))
	for _, row := range rows {
		r.Printf("  %-26s %3d systems %s", row.name, row.n, bar(row.n, rows[0].n, 30))
	}
	accLat := taxonomy.CoOccurrence(taxonomy.Accuracy, taxonomy.Latency)
	r.Printf("accuracy & latency co-occur in %d of %d accuracy evaluations", accLat, counts[taxonomy.Accuracy])
	r.Check("user feedback is the most reported metric",
		rows[0].name == taxonomy.UserFeedback, "top metric %s (%d)", rows[0].name, rows[0].n)
	r.Check("accuracy strongly co-occurs with latency (the paper's takeaway)",
		accLat*2 >= counts[taxonomy.Accuracy], "%d/%d", accLat, counts[taxonomy.Accuracy])
	return r, nil
}

func runTab3(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab3", Title: "Metric selection guidelines"}
	for _, m := range taxonomy.Metrics {
		marker := " "
		if m.Novel {
			marker = "*"
		}
		r.Printf("%s %-26s [%s] — %s", marker, m.Name, m.Category, m.WhenToUse)
	}
	r.Printf("(* = metric introduced by the paper)")

	// Exercise the advisor on the paper's own crossfilter case study.
	recs := taxonomy.RecommendMetrics(taxonomy.SystemProfile{
		LargeData:           true,
		HighFrameRateDevice: true,
		ConsecutiveQueries:  true,
		SpeculativePrefetch: false,
		Audience:            taxonomy.AudienceNovice,
	})
	got := map[string]bool{}
	for _, rec := range recs {
		got[rec.Metric.Name] = true
	}
	r.Printf("advisor on the crossfiltering case study recommends %d metrics", len(recs))
	r.Check("advisor recommends the paper's novel metrics for the crossfilter study",
		got[taxonomy.LCVMetric] && got[taxonomy.QIFMetric],
		"LCV %v, QIF %v", got[taxonomy.LCVMetric], got[taxonomy.QIFMetric])
	r.Check("advisor always spans human and system factors",
		got[taxonomy.UserFeedback] && got[taxonomy.Latency], "")
	return r, nil
}

func runFig45(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig4_5", Title: "Study-design advisors"}
	// The paper's three case studies as advisor inputs.
	scroll := taxonomy.StudyQuestion{DeviceDependent: true}
	crossQ := taxonomy.StudyQuestion{DeviceDependent: true, ComparisonAgainstControl: true}
	composite := taxonomy.StudyQuestion{}
	prefetchSim := taxonomy.StudyQuestion{InteractionsDefinitive: true, NavigationEnumerable: true}

	r.Printf("scrolling study     → %s / %s", taxonomy.AdviseSetting(scroll), taxonomy.AdviseSubjects(scroll))
	r.Printf("crossfilter study   → %s / %s", taxonomy.AdviseSetting(crossQ), taxonomy.AdviseSubjects(crossQ))
	r.Printf("composite study     → %s / %s", taxonomy.AdviseSetting(composite), taxonomy.AdviseSubjects(composite))
	r.Printf("prefetch evaluation → %s", taxonomy.AdviseSubjects(prefetchSim))

	r.Check("device-dependent studies go in-person",
		taxonomy.AdviseSetting(scroll) == taxonomy.InPerson, "")
	r.Check("unconstrained studies go remote for ecological validity",
		taxonomy.AdviseSetting(composite) == taxonomy.Remote, "")
	r.Check("definitive+enumerable interactions simulate",
		taxonomy.AdviseSubjects(prefetchSim) == taxonomy.Simulation, "")
	return r, nil
}

func runTab4(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab4", Title: "Cognitive biases during user studies"}
	for _, b := range taxonomy.Biases {
		r.Printf("%-12s %-26s → %s", b.Source, b.Name, b.Mitigation)
	}
	part := len(taxonomy.BiasesBySource(taxonomy.ParticipantBias))
	exp := len(taxonomy.BiasesBySource(taxonomy.ExperimenterBias))
	r.Check("catalog matches Table 4", part == 4 && exp == 3, "participant %d, experimenter %d", part, exp)
	return r, nil
}
