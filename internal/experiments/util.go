package experiments

import (
	"math/rand"

	"repro/internal/device"
)

// newRNG derives a deterministic per-stream RNG from the run seed.
func newRNG(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + stream))
}

// deviceProfile resolves a device name, panicking on unknown names (the
// registry only passes the built-ins).
func deviceProfile(name string) device.Profile {
	p, ok := device.ByName(name)
	if !ok {
		panic("experiments: unknown device " + name)
	}
	return p
}
