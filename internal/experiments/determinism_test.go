package experiments

import (
	"bytes"
	"testing"

	"repro/internal/engine"
)

// TestParallelDeterminismGolden runs the two crossfilter experiments whose
// replays execute real engine queries — fig13 (latency per condition) and
// fig15 (latency-constraint violations) — twice under the same seed with
// engine parallelism forced on, and demands byte-identical rendered
// reports. Any map-iteration or merge-order nondeterminism in the parallel
// operators would show up as a diff in the formatted medians and
// percentages.
func TestParallelDeterminismGolden(t *testing.T) {
	old := engine.DefaultParallelism()
	engine.SetDefaultParallelism(4)
	defer engine.SetDefaultParallelism(old)

	// Small but still parallel: the road table must span several morsels
	// so replayed histogram queries actually fan out. Shape checks may
	// fail at this scale; the golden comparison only needs the rendering
	// to be reproducible, and PASS/FAIL lines are part of the bytes.
	cfg := Quick()
	cfg.RoadTuples = 40000
	cfg.Users = 2

	render := func() []byte {
		ctx := NewContext(cfg)
		var buf bytes.Buffer
		for _, id := range []string{"fig13", "fig15"} {
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			rep, err := exp.Run(cfg, ctx)
			if err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
			rep.Render(&buf)
		}
		return buf.Bytes()
	}

	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		a, b := first, second
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("renderings diverge at byte %d:\nrun1: …%s\nrun2: …%s",
					i, a[lo:min(i+120, len(a))], b[lo:min(i+120, len(b))])
			}
		}
		t.Fatalf("renderings differ in length: %d vs %d bytes", len(a), len(b))
	}
}
