//go:build race

package experiments

// raceEnabled lets heavyweight end-to-end tests scale down when the race
// detector multiplies their runtime past the per-package test timeout.
const raceEnabled = true
