// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment regenerates its artifact from the simulated
// study population, renders rows in the paper's terms, and self-checks the
// headline shape (who wins, by roughly what factor, where the crossovers
// fall) against what the paper reports.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md is generated
// from these reports via cmd/ideval.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/opt"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config scales a reproduction run. Full reproduces the paper's sizes;
// Quick shrinks everything for tests and smoke runs.
type Config struct {
	Seed        int64
	Users       int           // study population (paper: 15, 30 for crossfilter)
	MovieTuples int           // paper: 4,000
	RoadTuples  int           // paper: 434,874
	SliderMoves int           // slider adjustments per crossfilter session
	SessionLen  time.Duration // composite-session minimum length (paper: 20 min)
}

// Full returns the paper-scale configuration.
func Full() Config {
	return Config{
		Seed:        1,
		Users:       15,
		MovieTuples: dataset.MovieCount,
		RoadTuples:  dataset.RoadCount,
		SliderMoves: 12,
		SessionLen:  20 * time.Minute,
	}
}

// Quick returns a configuration small enough for unit tests while
// preserving every qualitative shape.
func Quick() Config {
	return Config{
		Seed:        1,
		Users:       5,
		MovieTuples: 800,
		// Must exceed the disk profile's 2,048-page buffer pool (131,072
		// rows) or the disk/memory contrast — the case study's entire point
		// — disappears at test scale.
		RoadTuples:  150000,
		SliderMoves: 6,
		SessionLen:  8 * time.Minute,
	}
}

// Check is one shape assertion against the paper's reported result.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is an experiment's output.
type Report struct {
	ID     string
	Title  string
	Lines  []string
	Checks []Check
}

// Printf appends a formatted line to the report.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Check records a shape assertion.
func (r *Report) Check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(w, l)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, ctx *Context) (*Report, error)
}

// Registry lists all experiments in paper order. Populated by the per-case
// files' init functions.
var Registry []Experiment

// paperOrder fixes presentation order regardless of file init order.
var paperOrder = []string{
	"tab1_2", "tab3", "fig2", "fig3", "fig4_5", "tab4", "tab5_6",
	"fig7", "fig8", "fig9", "tab7", "fig10", "tab8",
	"fig11", "fig13", "fig14", "fig15",
	"tab9", "fig18", "tab10", "fig20", "fig21",
	"ext_progressive", "ext_scaleout", "ext_throughput", "ext_reuse", "ext_infoloss",
}

func register(e Experiment) {
	Registry = append(Registry, e)
	rank := func(id string) int {
		for i, o := range paperOrder {
			if o == id {
				return i
			}
		}
		return len(paperOrder)
	}
	sort.SliceStable(Registry, func(i, j int) bool {
		return rank(Registry[i].ID) < rank(Registry[j].ID)
	})
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment, writing reports to w as they finish.
func RunAll(cfg Config, w io.Writer) ([]*Report, error) {
	ctx := NewContext(cfg)
	var reports []*Report
	for _, e := range Registry {
		rep, err := e.Run(cfg, ctx)
		if err != nil {
			return reports, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		reports = append(reports, rep)
		if w != nil {
			rep.Render(w)
		}
	}
	return reports, nil
}

// Context caches the expensive shared inputs (datasets, simulated study
// traces) across experiments in one run, exactly as the paper's case
// studies reuse one collected trace set across figures.
type Context struct {
	cfg Config

	movies       *storage.Table
	roads        *storage.Table
	roadSample   *storage.Table
	scrollTraces []*behavior.ScrollTrace
	sliderRuns   map[string][]*behavior.SliderSession
	sessions     []*session.Session
	workloads    map[string][]opt.QueryEvent
	replays      map[string]*opt.ReplayResult
}

// NewContext creates an empty cache for one configuration.
func NewContext(cfg Config) *Context {
	return &Context{cfg: cfg, sliderRuns: map[string][]*behavior.SliderSession{}}
}

// Movies returns the shared movie table.
func (c *Context) Movies() *storage.Table {
	if c.movies == nil {
		c.movies = dataset.Movies(c.cfg.Seed, c.cfg.MovieTuples)
	}
	return c.movies
}

// Roads returns the shared road table.
func (c *Context) Roads() *storage.Table {
	if c.roads == nil {
		c.roads = dataset.Roads(c.cfg.Seed, c.cfg.RoadTuples)
	}
	return c.roads
}

// RoadSample returns a ~4,000-row stride sample of the road table used by
// the client-side KL approximation.
func (c *Context) RoadSample() *storage.Table {
	if c.roadSample == nil {
		c.roadSample = SampleTable(c.Roads(), 4000)
	}
	return c.roadSample
}

// SampleTable takes an every-kth-row sample of a table.
func SampleTable(t *storage.Table, n int) *storage.Table {
	out := storage.NewTable(t.Name+"_sample", t.Schema)
	total := t.NumRows()
	if n <= 0 || n > total {
		n = total
	}
	stride := total / n
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < total && out.NumRows() < n; i += stride {
		out.MustAppendRow(t.Row(i)...)
	}
	return out
}

// ScrollTraces returns the shared scrolling-study traces (one per user).
func (c *Context) ScrollTraces() []*behavior.ScrollTrace {
	if c.scrollTraces == nil {
		for u := 0; u < c.cfg.Users; u++ {
			rng := newRNG(c.cfg.Seed, 1000+int64(u))
			p := behavior.NewScrollerParams(rng)
			c.scrollTraces = append(c.scrollTraces, behavior.SimulateScroller(rng, p, c.cfg.MovieTuples))
		}
	}
	return c.scrollTraces
}

// SliderSessions returns the shared crossfilter traces for one device (the
// paper recruited 10 users per device; we simulate Users per device).
func (c *Context) SliderSessions(deviceName string) []*behavior.SliderSession {
	if got := c.sliderRuns[deviceName]; got != nil {
		return got
	}
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	domains := [][2]float64{{lonLo, lonHi}, {latLo, latHi}, {altLo, altHi}}
	var runs []*behavior.SliderSession
	for u := 0; u < c.cfg.Users; u++ {
		rng := newRNG(c.cfg.Seed, 2000+int64(u)+int64(len(deviceName))*31)
		prof := deviceProfile(deviceName)
		runs = append(runs, behavior.SimulateSliderUser(rng, prof, domains, c.cfg.SliderMoves))
	}
	c.sliderRuns[deviceName] = runs
	return runs
}

// Sessions returns the shared composite-interface study traces.
func (c *Context) Sessions() []*session.Session {
	if c.sessions == nil {
		c.sessions = session.RunStudy(c.cfg.Seed+77, c.cfg.Users, c.cfg.SessionLen)
	}
	return c.sessions
}

// --- small shared helpers ----------------------------------------------------

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// fmtRange renders [lo, hi].
func fmtRange(lo, hi float64) string { return fmt.Sprintf("[%.3g, %.3g]", lo, hi) }

// issuesOf extracts slider-trace issue times.
func issuesOf(evs []trace.SliderEvent) []time.Duration { return trace.SliderTimes(evs) }

// sortedKeys returns map keys sorted for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bar renders a crude ASCII bar for report histograms.
func bar(n, max, width int) string {
	if max <= 0 {
		return ""
	}
	w := n * width / max
	if n > 0 && w == 0 {
		w = 1
	}
	return strings.Repeat("#", w)
}
