package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
)

// Case study 2: crossfiltering (paper Section 7).

func init() {
	register(Experiment{ID: "fig11", Title: "Pointer traces across devices: jitter", Run: runFig11})
	register(Experiment{ID: "fig13", Title: "Latency under db × optimization × device", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "QIF histograms of query issuing intervals", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Percentage of latency constraint violations", Run: runFig15})
	register(Experiment{ID: "fig3", Title: "Frontend/backend trade-off quadrants", Run: runFig3})
}

var crossfilterDevices = []string{"mouse", "touch", "leapmotion"}

// roadDims describes the crossfilter dimensions over the road table.
func roadDims() []opt.CrossfilterDim {
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	return []opt.CrossfilterDim{
		{Column: "x", Lo: lonLo, Hi: lonHi},
		{Column: "y", Lo: latLo, Hi: latHi},
		{Column: "z", Lo: altLo, Hi: altHi},
	}
}

// workload returns the representative user's query events for a device,
// cached on the context.
func (c *Context) workload(dev string) ([]opt.QueryEvent, error) {
	if c.workloads == nil {
		c.workloads = map[string][]opt.QueryEvent{}
	}
	if got := c.workloads[dev]; got != nil {
		return got, nil
	}
	sessions := c.SliderSessions(dev)
	events, err := opt.BuildCrossfilterWorkload(sessions[0].Events, "dataroad", roadDims())
	if err != nil {
		return nil, err
	}
	c.workloads[dev] = events
	return events, nil
}

// dbProfiles returns the two backend profiles in presentation order.
func dbProfiles() []engine.Profile {
	return []engine.Profile{engine.ProfileDisk, engine.ProfileMemory}
}

var crossfilterPolicies = []string{"raw", "KL>0", "KL>0.2", "skip"}

// replay runs (or returns cached) one condition: device × db × policy.
func (c *Context) replay(dev string, profile engine.Profile, policy string) (*opt.ReplayResult, error) {
	key := dev + "/" + profile.Name + "/" + policy
	if c.replays == nil {
		c.replays = map[string]*opt.ReplayResult{}
	}
	if got := c.replays[key]; got != nil {
		return got, nil
	}
	events, err := c.workload(dev)
	if err != nil {
		return nil, err
	}
	eng := engine.New(profile)
	eng.Register(c.Roads())
	srv := &engine.Server{Engine: eng, Network: time.Millisecond}

	var res *opt.ReplayResult
	switch policy {
	case "raw":
		res, err = opt.ReplayRaw(srv, events)
	case "skip":
		res, err = opt.ReplaySkip(srv, events)
	case "KL>0", "KL>0.2":
		threshold := 0.0
		if policy == "KL>0.2" {
			threshold = 0.2
		}
		var f *opt.KLFilter
		f, err = opt.NewKLFilter(threshold, c.RoadSample(), []string{"x", "y", "z"})
		if err != nil {
			return nil, err
		}
		res, err = opt.ReplayKL(srv, events, f)
	default:
		return nil, fmt.Errorf("unknown policy %q", policy)
	}
	if err != nil {
		return nil, err
	}
	c.replays[key] = res
	return res, nil
}

func runFig11(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig11", Title: "Range-query pointer traces per device"}
	jitter := map[string]float64{}
	for _, dev := range crossfilterDevices {
		sess := ctx.SliderSessions(dev)[0]
		j := device.PathJitter(sess.Pointer)
		jitter[dev] = j
		// Positional spread of the trace.
		minX, maxX := sess.Pointer[0].X, sess.Pointer[0].X
		for _, p := range sess.Pointer {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
		}
		r.Printf("%-11s samples %5d  jitter %6.2f  x-range %s", dev, len(sess.Pointer), j, fmtRange(minX, maxX))
	}
	r.Check("leap jitter dominates", jitter["leapmotion"] > 4*jitter["mouse"] && jitter["leapmotion"] > 3*jitter["touch"],
		"leap %.2f vs mouse %.2f / touch %.2f (paper: leap presents far more jitter)",
		jitter["leapmotion"], jitter["mouse"], jitter["touch"])
	return r, nil
}

func runFig13(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Latency per condition (representative user)"}
	med := map[string]float64{}
	for _, dev := range crossfilterDevices {
		for _, prof := range dbProfiles() {
			for _, pol := range crossfilterPolicies {
				res, err := ctx.replay(dev, prof, pol)
				if err != nil {
					return nil, err
				}
				lat := metrics.Durations(res.Latency)
				if len(lat) == 0 {
					continue
				}
				s := metrics.Summarize(lat)
				key := dev + "/" + prof.Name + "/" + pol
				med[key] = s.Median
				r.Printf("%-28s exec %5d  median %9.1f ms  p95 %10.1f ms  max %10.1f ms",
					key, res.Executed, s.Median, metrics.Percentile(lat, 95), s.Max)
			}
		}
	}
	// Paper: MemSQL holds 10–50 ms under every optimization; KL>0 ≈ 10 ms.
	memOK := true
	for _, dev := range crossfilterDevices {
		for _, pol := range []string{"KL>0", "KL>0.2", "skip"} {
			if m := med[dev+"/memory/"+pol]; m > 60 {
				memOK = false
			}
		}
	}
	r.Check("memory profile interactive (≲50 ms) with optimizations", memOK, "medians %v", pick(med, "memory"))
	// Paper: PostgreSQL raw/KL>0 blow past 10 s; skip or KL>0.2 restore
	// sub-second latencies.
	// At paper scale the raw disk medians run past 10 s; at Quick scale the
	// shorter traces cascade to seconds — either way, far beyond
	// interactive and far above every optimized condition.
	diskRawBad, diskOptOK := true, true
	for _, dev := range crossfilterDevices {
		if raw := med[dev+"/disk/raw"]; raw < 1_000 || raw < 5*med[dev+"/disk/skip"] {
			diskRawBad = false
		}
		if med[dev+"/disk/skip"] > 1000 {
			diskOptOK = false
		}
		// KL>0.2 restores near-second latency on friction devices; on the
		// Leap Motion, tremor admits bursts faster than the disk backend
		// drains, so the reduction is smaller — the same asymmetry the
		// paper reports in Figure 15 (30% improvement for mouse/touch vs
		// 17% for leap). Require a 5x reduction there rather than a fixed
		// budget.
		limit := 1500.0
		if dev == "leapmotion" {
			limit = med[dev+"/disk/raw"] / 5
		}
		if med[dev+"/disk/KL>0.2"] > limit {
			diskOptOK = false
		}
	}
	r.Check("disk raw cascades far past interactive", diskRawBad, "disk/raw medians %v ms", pick(med, "disk/raw"))
	r.Check("disk rescued by skip/KL>0.2", diskOptOK,
		"disk skip %v, KL>0.2 %v", pick(med, "disk/skip"), pick(med, "disk/KL>0.2"))
	return r, nil
}

// pick selects map entries whose key contains substr (report helper).
func pick(m map[string]float64, substr string) map[string]float64 {
	out := map[string]float64{}
	for _, k := range sortedKeys(m) {
		if containsStr(k, substr) {
			out[k] = m[k]
		}
	}
	return out
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func runFig14(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig14", Title: "Query issuing interval histograms"}
	const binW = 5 * time.Millisecond
	const maxInt = 60 * time.Millisecond
	totals := map[string]int{}
	for _, dev := range crossfilterDevices {
		events, err := ctx.workload(dev)
		if err != nil {
			return nil, err
		}
		for _, pol := range []string{"raw", "KL>0", "KL>0.2"} {
			issues := admittedIssues(ctx, events, pol)
			totals[dev+"/"+pol] = len(issues)
			h := metrics.IntervalHistogram(issues, binW, maxInt)
			maxBin := 0
			for _, n := range h {
				if n > maxBin {
					maxBin = n
				}
			}
			qif := metrics.MeasureQIF(issues)
			r.Printf("%-22s queries %5d  qif %6.1f/s  peak bin %d", dev+"/"+pol, len(issues), qif.PerSecond, maxBin)
			for b, n := range h {
				if n == 0 {
					continue
				}
				r.Printf("    %3d-%3dms %6d %s", b*5, b*5+5, n, bar(n, maxBin, 40))
			}
		}
	}
	r.Check("leap issues far more queries than mouse/touch",
		totals["leapmotion/raw"] > 3*totals["mouse/raw"] && totals["leapmotion/raw"] > 3*totals["touch/raw"],
		"raw totals: leap %d, mouse %d, touch %d (paper y-scales 2500 vs 120)",
		totals["leapmotion/raw"], totals["mouse/raw"], totals["touch/raw"])
	klReduces := true
	for _, dev := range crossfilterDevices {
		if totals[dev+"/KL>0"] >= totals[dev+"/raw"] {
			klReduces = false
		}
		if totals[dev+"/KL>0.2"] >= totals[dev+"/KL>0"] {
			klReduces = false
		}
	}
	r.Check("KL filtering drastically reduces queries", klReduces,
		"per-device totals %v", totals)
	return r, nil
}

// admittedIssues returns the issue times a policy forwards, computed purely
// client-side (Figure 14 is independent of the backend).
func admittedIssues(ctx *Context, events []opt.QueryEvent, policy string) []time.Duration {
	var out []time.Duration
	switch policy {
	case "raw":
		for _, ev := range events {
			out = append(out, ev.At)
		}
	default:
		threshold := 0.0
		if policy == "KL>0.2" {
			threshold = 0.2
		}
		f, err := opt.NewKLFilter(threshold, ctx.RoadSample(), []string{"x", "y", "z"})
		if err != nil {
			return nil
		}
		for _, ev := range events {
			if f.Admit(ev) {
				out = append(out, ev.At)
			}
		}
	}
	return out
}

func runFig15(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig15", Title: "Percent queries violating the latency constraint"}
	pct := map[string]float64{}
	for _, prof := range dbProfiles() {
		for _, pol := range []string{"raw", "KL>0", "KL>0.2"} {
			for _, dev := range crossfilterDevices {
				res, err := ctx.replay(dev, prof, pol)
				if err != nil {
					return nil, err
				}
				p := res.LCVPercent()
				key := prof.Name + "/" + pol + "/" + dev
				pct[key] = p
				r.Printf("%-30s %6.1f%%  (executed %d of %d)", key, p*100, res.Executed, res.Offered)
			}
		}
	}
	// Paper: MemSQL violates less than PostgreSQL everywhere.
	memLower := true
	for _, pol := range []string{"raw", "KL>0"} {
		for _, dev := range crossfilterDevices {
			if pct["memory/"+pol+"/"+dev] > pct["disk/"+pol+"/"+dev] {
				memLower = false
			}
		}
	}
	r.Check("memory violates less than disk", memLower, "")
	// Paper: KL>0 roughly halves MemSQL violations.
	memHalved := 0
	for _, dev := range crossfilterDevices {
		if pct["memory/KL>0/"+dev] <= pct["memory/raw/"+dev]*0.75 {
			memHalved++
		}
	}
	r.Check("KL>0 cuts memory violations substantially", memHalved >= 2,
		"memory raw %v vs KL>0 %v", pick(pct, "memory/raw"), pick(pct, "memory/KL>0"))
	// Paper: disk needs KL>0.2 for observable reductions.
	diskReduced := 0
	for _, dev := range crossfilterDevices {
		if pct["disk/KL>0.2/"+dev] < pct["disk/raw/"+dev]-0.05 {
			diskReduced++
		}
	}
	r.Check("disk improves observably only at KL>0.2", diskReduced >= 2,
		"disk raw %v vs KL>0.2 %v", pick(pct, "disk/raw"), pick(pct, "disk/KL>0.2"))
	return r, nil
}

func runFig3(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig3", Title: "QIF × backend speed quadrants"}
	// Backend speed: one full crossfilter histogram query per profile.
	execOf := func(prof engine.Profile) (time.Duration, error) {
		eng := engine.New(prof)
		eng.Register(ctx.Roads())
		dims := roadDims()
		ranges := [][2]float64{{dims[0].Lo, dims[0].Hi}, {dims[1].Lo, dims[1].Hi}, {dims[2].Lo, dims[2].Hi}}
		stmt, err := opt.HistogramQuery("dataroad", dims, ranges, 1, 20)
		if err != nil {
			return 0, err
		}
		res, err := eng.Execute(stmt)
		if err != nil {
			return 0, err
		}
		return res.Stats.ModelCost, nil
	}
	quadrant := map[string]string{}
	for _, prof := range dbProfiles() {
		exec, err := execOf(prof)
		if err != nil {
			return nil, err
		}
		for _, dev := range crossfilterDevices {
			events, err := ctx.workload(dev)
			if err != nil {
				return nil, err
			}
			qif := metrics.MeasureQIF(issueTimes(events))
			interval := time.Duration(float64(time.Second) / qifOrOne(qif.PerSecond))
			highQIF := qif.PerSecond >= 20
			fast := exec <= interval
			var q string
			switch {
			case fast && highQIF:
				q = "GOOD"
			case fast && !highQIF:
				q = "GOOD (headroom)"
			case !fast && highQIF:
				q = "OVERWHELMED BACKEND - THROTTLE QIF"
			default:
				q = "PERCEIVED SLOW"
			}
			key := prof.Name + "/" + dev
			quadrant[key] = q
			r.Printf("%-20s qif %6.1f/s  exec %8v  → %s", key, qif.PerSecond, exec, q)
		}
	}
	r.Check("disk backend overwhelmed at device rates",
		containsStr(quadrant["disk/leapmotion"], "THROTTLE"), "%s", quadrant["disk/leapmotion"])
	r.Check("memory backend keeps up",
		containsStr(quadrant["memory/leapmotion"], "GOOD"), "%s", quadrant["memory/leapmotion"])
	return r, nil
}

func issueTimes(events []opt.QueryEvent) []time.Duration {
	out := make([]time.Duration, len(events))
	for i, ev := range events {
		out[i] = ev.At
	}
	return out
}

func qifOrOne(q float64) float64 {
	if q <= 0 {
		return 1
	}
	return q
}
