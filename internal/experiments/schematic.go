package experiments

import (
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
)

// Schematic artifacts: Figure 2 (the latency-constraint-violation cascade)
// demonstrated on the live server model, and Tables 5–6 (the case-study
// summary matrices) rendered with live trace counts.

func init() {
	register(Experiment{ID: "fig2", Title: "LCV cascade on the query timeline", Run: runFig2})
	register(Experiment{ID: "tab5_6", Title: "Case study summary (Tables 5–6)", Run: runTab56})
}

// runFig2 reproduces the Figure 2 schematic with real machinery: four
// queries issued faster than the backend executes, so execution delays
// cascade and each query's result lands after the next was issued.
func runFig2(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig2", Title: "LCV cascade"}
	eng := engine.New(engine.ProfileDisk)
	eng.Register(ctx.Roads())
	srv := &engine.Server{Engine: eng, Network: time.Millisecond}

	dims := roadDims()
	ranges := [][2]float64{{dims[0].Lo, dims[0].Hi}, {dims[1].Lo, dims[1].Hi}, {dims[2].Lo, dims[2].Hi}}
	stmt, err := opt.HistogramQuery("dataroad", dims, ranges, 1, 20)
	if err != nil {
		return nil, err
	}

	const interval = 20 * time.Millisecond // the paper's 50 q/s example
	var issues, finishes []time.Duration
	var queues []time.Duration
	for i := 0; i < 4; i++ {
		rec, err := srv.Submit(time.Duration(i)*interval, stmt)
		if err != nil {
			return nil, err
		}
		issues = append(issues, rec.Issue)
		finishes = append(finishes, rec.Finish)
		queues = append(queues, rec.Queue)
		r.Printf("Q%d issued %8v  start %10v  finish %10v  (queued %v)",
			i+1, rec.Issue, rec.Start, rec.Finish, rec.Queue)
	}
	lcv := metrics.LCV(issues, finishes, 0)
	r.Printf("violations: %d (paper: Q1, Q2, Q3 — each result lands after the next query was issued)", lcv)

	r.Check("Q1–Q3 violate the constraint", lcv == 3, "lcv = %d, want 3", lcv)
	cascades := queues[1] > queues[0] && queues[2] > queues[1] && queues[3] > queues[2]
	r.Check("execution delay accumulates query over query (Figure 2)", cascades,
		"queue waits %v", queues)
	return r, nil
}

// runTab56 renders the paper's Table 5 (devices, interfaces, techniques,
// trace schemas, queries per case study) and Table 6 (behaviors and
// metrics), attaching live trace counts from this run's simulated studies.
func runTab56(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab5_6", Title: "Case study summary"}

	scrollEvents := 0
	for _, tr := range ctx.ScrollTraces() {
		scrollEvents += len(tr.Events)
	}
	sliderEvents := 0
	for _, dev := range crossfilterDevices {
		for _, s := range ctx.SliderSessions(dev) {
			sliderEvents += len(s.Events)
		}
	}
	sessionQueries := 0
	for _, s := range ctx.Sessions() {
		sessionQueries += len(s.Queries)
	}

	r.Printf("%-18s %-28s %-22s %-34s %s", "case study", "device", "interface", "trace schema", "queries")
	r.Printf("%-18s %-28s %-22s %-34s %s", "inertial scroll", "touch (trackpad)", "scroll",
		"{timestamp, scrollTop, scrollNum, delta}", "select, join")
	r.Printf("%-18s %-28s %-22s %-34s %s", "crossfiltering", "mouse, touch, leap motion", "slider (link+brush)",
		"{timestamp, minVal, maxVal, sliderIdx}", "count aggregation")
	r.Printf("%-18s %-28s %-22s %-34s %s", "composite", "mouse", "textbox/slider/checkbox/map",
		"{timestamp, tabURL, requestId, type}", "select, join")
	r.Printf("")
	r.Printf("behaviors → metrics (Table 6):")
	r.Printf("  inertial scroll: scrolling speed, backscrolls → LCV, latency")
	r.Printf("  crossfiltering:  sliding & querying behavior → QIF, latency, LCV")
	r.Printf("  composite:       exploration, zooming, dragging, filters → request time")
	r.Printf("")
	r.Printf("live trace volumes this run: %d scroll events, %d slider events, %d composite queries",
		scrollEvents, sliderEvents, sessionQueries)

	r.Check("all three studies produced traces",
		scrollEvents > 0 && sliderEvents > 0 && sessionQueries > 0,
		"%d / %d / %d", scrollEvents, sliderEvents, sessionQueries)
	return r, nil
}
