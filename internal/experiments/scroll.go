package experiments

import (
	"fmt"
	"time"

	"repro/internal/behavior"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
)

// Case study 1: inertial scrolling (paper Section 6).

func init() {
	register(Experiment{ID: "fig7", Title: "Scrolling with/without inertia: wheel delta scale", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Per-user max and average scrolling speed", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "Selected movies vs backscrolled selections", Run: runFig9})
	register(Experiment{ID: "tab7", Title: "Statistics for scrolling behavior", Run: runTab7})
	register(Experiment{ID: "fig10", Title: "Prefetch latency: event vs timer fetch", Run: runFig10})
	register(Experiment{ID: "tab8", Title: "Latency constraint violations: event vs timer fetch", Run: runTab8})
}

func runFig7(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig7", Title: "Scrolling with/without inertia"}
	rng := newRNG(cfg.Seed, 7)
	inertial := behavior.SimulateScroller(rng, behavior.ScrollerParams{
		MaxTuplesPerSec: 120, ReadPause: time.Second,
	}, cfg.MovieTuples)
	plain := behavior.SimulatePlainScroller(rng, cfg.MovieTuples, 15*time.Second)

	maxDelta := func(tr *behavior.ScrollTrace) float64 {
		m := 0.0
		for _, e := range tr.Events {
			if e.Delta > m {
				m = e.Delta
			}
		}
		return m
	}
	mi, mp := maxDelta(inertial), maxDelta(plain)
	r.Printf("inertial: %d events, max wheel delta %.0f px", len(inertial.Events), mi)
	r.Printf("plain:    %d events, max wheel delta %.0f px", len(plain.Events), mp)
	r.Check("delta scale gap", mp > 0 && mi/mp >= 40,
		"paper: y-axis 400 vs 4 (100x); ours %.0f vs %.0f (%.0fx)", mi, mp, mi/mp)
	return r, nil
}

func runFig8(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig8", Title: "Per-user scrolling speed"}
	var maxT, avgT []float64
	r.Printf("%-5s %12s %12s %14s %14s", "user", "max tup/s", "avg tup/s", "max px/s", "avg px/s")
	for u, tr := range ctx.ScrollTraces() {
		s := behavior.MeasureSpeed(tr.Events)
		maxT = append(maxT, s.MaxTuplesSec)
		avgT = append(avgT, s.AvgTuplesSec)
		r.Printf("%-5d %12.1f %12.1f %14.0f %14.0f", u, s.MaxTuplesSec, s.AvgTuplesSec, s.MaxPxPerSec, s.AvgPxPerSec)
	}
	sm := metrics.Summarize(maxT)
	sa := metrics.Summarize(avgT)
	r.Check("max tuples/s band", sm.Min >= 5 && sm.Max <= 300,
		"paper range [12,200]; ours [%.0f, %.0f]", sm.Min, sm.Max)
	r.Check("avg well below max", sa.Mean < sm.Mean/2,
		"paper means 10 vs 80; ours %.1f vs %.1f", sa.Mean, sm.Mean)
	return r, nil
}

func runFig9(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig9", Title: "Selections vs backscrolled selections"}
	anyBackscrollExceeds := false
	totalSel, totalBack := 0, 0
	r.Printf("%-5s %10s %14s", "user", "selected", "backscrolls")
	for u, tr := range ctx.ScrollTraces() {
		r.Printf("%-5d %10d %14d", u, len(tr.Selections), tr.Backscrolls)
		totalSel += len(tr.Selections)
		totalBack += tr.Backscrolls
		if tr.Backscrolls > len(tr.Selections) {
			anyBackscrollExceeds = true
		}
	}
	r.Check("backscrolls present", totalBack > 0, "total %d backscrolls across %d selections", totalBack, totalSel)
	r.Check("some users backscroll more than they select", anyBackscrollExceeds,
		"paper: in some cases backscrolls exceed selections")
	return r, nil
}

func runTab7(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab7", Title: "Statistics for scrolling behavior"}
	var maxT, avgT, maxP, avgP []float64
	for _, tr := range ctx.ScrollTraces() {
		s := behavior.MeasureSpeed(tr.Events)
		maxT = append(maxT, s.MaxTuplesSec)
		avgT = append(avgT, s.AvgTuplesSec)
		maxP = append(maxP, s.MaxPxPerSec)
		avgP = append(avgP, s.AvgPxPerSec)
	}
	row := func(name string, xs []float64) {
		s := metrics.Summarize(xs)
		r.Printf("%-22s range [%.0f, %.0f]  mean %.0f  median %.0f", name, s.Min, s.Max, s.Mean, s.Median)
	}
	row("max speed (tuples/s)", maxT)
	row("avg speed (tuples/s)", avgT)
	row("max speed (px/s)", maxP)
	row("avg speed (px/s)", avgP)
	sm := metrics.Summarize(maxT)
	r.Check("median of max near paper's 58", sm.Median > 20 && sm.Median < 140,
		"ours %.0f", sm.Median)
	ratio := metrics.Summarize(avgT).Mean / sm.Mean
	r.Check("avg/max ratio ≈ paper's 0.125", ratio > 0.05 && ratio < 0.35, "ours %.2f", ratio)
	return r, nil
}

// fetchBatches are the paper's four cache sizes: lower bound of max, upper
// bound of average, median of max, and mean of max scrolling speed.
var fetchBatches = []int{12, 30, 58, 80}

// scrollExec measures the per-fetch latency by actually running the case
// study's Q1 against the disk-profile engine, plus the network and browser
// overheads the paper's ~80 ms end-to-end figure includes.
func scrollExec(ctx *Context, batch int) (time.Duration, error) {
	e := engine.New(engine.ProfileDisk)
	e.Register(ctx.Movies())
	const clientOverhead = 60 * time.Millisecond // network + JS + DOM insert
	q := fmt.Sprintf(`SELECT poster, title || '(' || year || ')', director, genre, plot, rating
		FROM imdb LIMIT %d OFFSET %d`, batch, ctx.Movies().NumRows()/2)
	res, err := e.Query(q)
	if err != nil {
		return 0, err
	}
	return res.Stats.ModelCost + clientOverhead, nil
}

func runFig10(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig10", Title: "Average latency: event vs timer fetch"}
	traces := ctx.ScrollTraces()
	var eventMeans, timerMeans []float64
	for _, batch := range fetchBatches {
		exec, err := scrollExec(ctx, batch)
		if err != nil {
			return nil, err
		}
		var eWaits, tWaits []float64
		for _, tr := range traces {
			er := opt.SimulateEventFetch(tr.Events, batch, batch, exec)
			tr2 := opt.SimulateTimerFetch(tr.Events, batch, batch, time.Second, exec)
			for _, w := range er.Waits {
				eWaits = append(eWaits, ms(w))
			}
			for _, w := range tr2.Waits {
				tWaits = append(tWaits, ms(w))
			}
		}
		em := metrics.Summarize(eWaits).Mean
		tm := metrics.Summarize(tWaits).Mean
		eventMeans = append(eventMeans, em)
		timerMeans = append(timerMeans, tm)
		r.Printf("batch %3d tuples: event %8.0f ms   timer %10.0f ms  (exec %v)", batch, em, tm, exec)
	}
	// Paper: event flat ≈80–100 ms at every batch; timer falls from 10⁴–10⁵
	// to ~0 by the median of max scroll speed.
	flat := true
	for _, m := range eventMeans {
		if m > eventMeans[0]*4+200 {
			flat = false
		}
	}
	r.Check("event fetch flat and moderate", flat && eventMeans[0] < 1000,
		"event means %v ms", eventMeans)
	r.Check("timer fetch collapses with batch", timerMeans[0] > 20*timerMeans[len(timerMeans)-1]+1 || timerMeans[len(timerMeans)-1] == 0,
		"timer means %v ms", timerMeans)
	r.Check("timer starts orders above event", timerMeans[0] > 10*eventMeans[0],
		"timer@12 %.0f ms vs event@12 %.0f ms", timerMeans[0], eventMeans[0])
	return r, nil
}

func runTab8(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab8", Title: "LCV counts: event vs timer fetch"}
	traces := ctx.ScrollTraces()
	eventUsers := map[int]int{}
	timerUsers := map[int]int{}
	eventTotal := map[int]int{}
	timerTotal := map[int]int{}
	for _, batch := range fetchBatches {
		exec, err := scrollExec(ctx, batch)
		if err != nil {
			return nil, err
		}
		for _, tr := range traces {
			er := opt.SimulateEventFetch(tr.Events, batch, batch, exec)
			tm := opt.SimulateTimerFetch(tr.Events, batch, batch, time.Second, exec)
			if er.Violated() {
				eventUsers[batch]++
			}
			if tm.Violated() {
				timerUsers[batch]++
			}
			eventTotal[batch] += er.Violations
			timerTotal[batch] += tm.Violations
		}
	}
	r.Printf("%-24s %8d %8d %8d %8d", "# tuples fetched", 12, 30, 58, 80)
	r.Printf("%-24s %8d %8d %8d %8d", "# users (event)", eventUsers[12], eventUsers[30], eventUsers[58], eventUsers[80])
	r.Printf("%-24s %8d %8d %8d %8d", "# users (timer)", timerUsers[12], timerUsers[30], timerUsers[58], timerUsers[80])
	r.Printf("%-24s %8d %8d %8d %8d", "# violations (event)", eventTotal[12], eventTotal[30], eventTotal[58], eventTotal[80])
	r.Printf("%-24s %8d %8d %8d %8d", "# violations (timer)", timerTotal[12], timerTotal[30], timerTotal[58], timerTotal[80])

	n := len(traces)
	r.Check("event fetch violates for nearly all users at 12",
		eventUsers[12] >= n-1, "%d/%d users (paper: 15/15)", eventUsers[12], n)
	r.Check("timer fetch violations collapse",
		timerTotal[12] > timerTotal[58] && timerTotal[80] <= timerTotal[58],
		"timer totals %d → %d → %d → %d (paper: 767 → 2 → 1 → 0)",
		timerTotal[12], timerTotal[30], timerTotal[58], timerTotal[80])
	r.Check("timer affects fewer users than event",
		timerUsers[12] < eventUsers[12], "%d vs %d at batch 12 (paper: 3 vs 15)", timerUsers[12], eventUsers[12])
	r.Check("event violations fall with batch",
		eventTotal[12] > eventTotal[80], "event totals %d → %d (paper: 2203 → 167)", eventTotal[12], eventTotal[80])
	return r, nil
}
