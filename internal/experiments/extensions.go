package experiments

import (
	"math"
	"time"

	"repro/internal/crossfilter"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/progressive"
	"repro/internal/sql"
)

// Extension experiments: the paper's future-work directions and the
// survey-cited system behaviors our substrates can regenerate.
//
//   - ext_progressive: online-aggregation accuracy/latency trade-off
//     (§3.1.1's progressive rendering, Incvisage's accuracy metric).
//   - ext_scaleout:   DICE-style scalability — latency vs partition count
//     with diminishing returns (§3.1.1 scalability).
//   - ext_throughput: Atlas-style throughput speedup with replicas
//     (§3.1.1 throughput).
//   - ext_reuse:      Sesame-style session result reuse (§2.4).
//   - ext_infoloss:   information lost to skipped queries — the open
//     problem Section 10 calls out for the skip/KL optimizations.

func init() {
	register(Experiment{ID: "ext_progressive", Title: "Online aggregation: accuracy vs time", Run: runExtProgressive})
	register(Experiment{ID: "ext_scaleout", Title: "Scale-out latency vs nodes (DICE-style)", Run: runExtScaleout})
	register(Experiment{ID: "ext_throughput", Title: "Replica throughput speedup (Atlas-style)", Run: runExtThroughput})
	register(Experiment{ID: "ext_reuse", Title: "Session result reuse (Sesame-style)", Run: runExtReuse})
	register(Experiment{ID: "ext_infoloss", Title: "Information loss from skipped queries", Run: runExtInfoLoss})
}

func runExtProgressive(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "ext_progressive", Title: "Online aggregation: accuracy vs time"}
	roads := ctx.Roads()
	ex := progressive.NewExecutor(roads, cfg.Seed)
	dims := roadDims()
	q := progressive.Query{
		Column: "y", Lo: dims[1].Lo, Hi: dims[1].Hi, Bins: 20,
		Filters: map[string][2]float64{
			"x": {dims[0].Lo, (dims[0].Lo + dims[0].Hi) / 2},
		},
	}
	snaps, err := ex.Run(q, 500)
	if err != nil {
		return nil, err
	}
	for _, s := range snaps {
		r.Printf("rows %8d (%5.1f%%)  cost %10v  mse %.2e", s.SampleRows, s.Fraction*100, s.Cost, s.MSE)
	}
	early, reached := progressive.FirstWithin(snaps, 1e-4)
	full := snaps[len(snaps)-1]
	r.Printf("mse ≤ 1e-4 at %d rows (%.1f%% of the data), cost %v vs full %v",
		early.SampleRows, early.Fraction*100, early.Cost, full.Cost)
	r.Check("estimates refine monotonically in cost", full.MSE == 0 && snaps[0].MSE > full.MSE, "first mse %.2e", snaps[0].MSE)
	r.Check("interactive accuracy long before the full scan",
		reached && early.Cost*2 <= full.Cost,
		"early stop at %.1f%% of the data", early.Fraction*100)
	return r, nil
}

func runExtScaleout(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "ext_scaleout", Title: "Scale-out latency vs nodes"}
	dims := roadDims()
	ranges := [][2]float64{{dims[0].Lo, dims[0].Hi}, {dims[1].Lo, dims[1].Hi}, {dims[2].Lo, dims[2].Hi}}
	stmt, err := opt.HistogramQuery("dataroad", dims, ranges, 1, 20)
	if err != nil {
		return nil, err
	}
	costs := map[int]time.Duration{}
	nodesList := []int{1, 2, 4, 8, 16, 32}
	for _, n := range nodesList {
		cluster, err := engine.NewPartitioned(engine.ProfileDisk, n, ctx.Roads())
		if err != nil {
			return nil, err
		}
		res, err := cluster.Execute(stmt)
		if err != nil {
			return nil, err
		}
		costs[n] = res.Stats.ModelCost
		speedup := float64(costs[1]) / float64(res.Stats.ModelCost)
		r.Printf("nodes %2d: latency %10v  speedup %5.1fx", n, res.Stats.ModelCost, speedup)
	}
	r.Check("adding nodes reduces latency up to 8", costs[8] < costs[4] && costs[4] < costs[1],
		"1→%v, 4→%v, 8→%v", costs[1], costs[4], costs[8])
	lateGain := float64(costs[8]) / float64(costs[32])
	earlyGain := float64(costs[1]) / float64(costs[8])
	r.Check("diminishing returns past 8 nodes (DICE Fig 7)", lateGain < earlyGain/2,
		"speedup 1→8: %.1fx, 8→32: %.1fx", earlyGain, lateGain)
	return r, nil
}

func runExtThroughput(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "ext_throughput", Title: "Replica throughput speedup"}
	dims := roadDims()
	ranges := [][2]float64{{dims[0].Lo, dims[0].Hi}, {dims[1].Lo, dims[1].Hi}, {dims[2].Lo, dims[2].Hi}}
	stmt, err := opt.HistogramQuery("dataroad", dims, ranges, 1, 20)
	if err != nil {
		return nil, err
	}
	// A batch of identical analytical queries (Atlas replays many
	// concurrent chart loads).
	const batch = 64
	bs := make([]*sql.SelectStmt, batch)
	for i := range bs {
		bs[i] = stmt
	}
	tput := map[int]float64{}
	for _, n := range []int{1, 2, 4, 8} {
		rs, err := engine.NewReplicaSet(engine.ProfileMemory, n, ctx.Roads())
		if err != nil {
			return nil, err
		}
		makespan, err := rs.RunBatch(bs)
		if err != nil {
			return nil, err
		}
		tput[n] = metrics.Throughput(batch, makespan)
		r.Printf("replicas %d: makespan %10v  throughput %6.1f q/s  speedup %4.1fx",
			n, makespan, tput[n], tput[n]/tput[1])
	}
	r.Check("throughput scales with replicas", tput[4] > 2.5*tput[1],
		"1→%.1f, 4→%.1f q/s", tput[1], tput[4])
	r.Check("speedup sublinear at 8 (dispatch bound)", tput[8] < 8*tput[1],
		"8 replicas give %.1fx", tput[8]/tput[1])
	return r, nil
}

func runExtReuse(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "ext_reuse", Title: "Session result reuse"}
	dims := roadDims()
	hitRates := map[string]float64{}
	speedups := map[string]float64{}
	for _, dev := range crossfilterDevices {
		events, err := ctx.workload(dev)
		if err != nil {
			return nil, err
		}
		// Raw baseline and reuse run on identical fresh backends.
		mkSrv := func() *engine.Server {
			eng := engine.New(engine.ProfileDisk)
			eng.Register(ctx.Roads())
			return &engine.Server{Engine: eng, Network: time.Millisecond}
		}
		raw, err := opt.ReplayRaw(mkSrv(), events)
		if err != nil {
			return nil, err
		}
		cache := opt.NewSessionCache(0, 0)
		reused, err := opt.ReplayWithReuse(mkSrv(), events, dims, cache)
		if err != nil {
			return nil, err
		}
		rawMean := metrics.Summarize(metrics.Durations(raw.Latency)).Mean
		reuseMean := metrics.Summarize(metrics.Durations(reused.Latency)).Mean
		hitRates[dev] = cache.HitRate()
		if reuseMean > 0 {
			speedups[dev] = rawMean / reuseMean
		}
		r.Printf("%-11s hit rate %5.1f%%  mean latency %8.1f → %8.1f ms  (%.0fx)",
			dev, cache.HitRate()*100, rawMean, reuseMean, speedups[dev])
	}
	r.Check("gesture jitter makes reuse pay most", hitRates["leapmotion"] > hitRates["mouse"],
		"leap %.2f vs mouse %.2f", hitRates["leapmotion"], hitRates["mouse"])
	r.Check("reuse yields large speedups on the slow backend (Sesame: up to 25x)",
		speedups["leapmotion"] > 5, "leap %.0fx", speedups["leapmotion"])
	return r, nil
}

func runExtInfoLoss(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "ext_infoloss", Title: "Information loss from skipped queries"}
	// Ground truth: a crossfilter over the full road table.
	truth, err := crossfilter.New(ctx.Roads(), []string{"x", "y", "z"}, crossfilter.DefaultBins)
	if err != nil {
		return nil, err
	}
	events, err := ctx.workload("leapmotion")
	if err != nil {
		return nil, err
	}
	meanLoss := map[string]float64{}
	medianLoss := map[string]float64{}
	for _, policy := range []string{"KL>0", "KL>0.2"} {
		threshold := 0.0
		if policy == "KL>0.2" {
			threshold = 0.2
		}
		filter, err := opt.NewKLFilter(threshold, ctx.RoadSample(), []string{"x", "y", "z"})
		if err != nil {
			return nil, err
		}
		// Reset truth filters.
		for d := 0; d < truth.NumDims(); d++ {
			truth.ClearFilter(d)
		}
		var lastSeen [][]int64
		var losses []float64
		skipped, shown := 0, 0
		for _, ev := range events {
			for d := range ev.Ranges {
				truth.SetFilter(d, ev.Ranges[d][0], ev.Ranges[d][1])
			}
			current := truth.Histograms()
			if filter.Admit(ev) {
				lastSeen = current
				shown++
				continue
			}
			skipped++
			if lastSeen == nil {
				continue
			}
			// What the user sees (stale) vs the truth they missed. A filter
			// state that empties the result entirely yields infinite KL;
			// saturate it at ln(bins) — the divergence of maximally
			// different distributions at this resolution — so the mean
			// remains meaningful.
			maxLoss := math.Log(float64(crossfilter.DefaultBins))
			worst := 0.0
			for d := range current {
				kl := metrics.KLDivergence(lastSeen[d], current[d])
				if kl > maxLoss {
					kl = maxLoss
				}
				if kl > worst {
					worst = kl
				}
			}
			losses = append(losses, worst)
		}
		s := metrics.Summarize(losses)
		p95 := metrics.Percentile(losses, 95)
		r.Printf("%-8s shown %5d skipped %5d  loss mean %.4f  median %.4f  p95 %.4f  max %.4f",
			policy, shown, skipped, s.Mean, s.Median, p95, s.Max)
		meanLoss[policy] = s.Mean
		medianLoss[policy] = s.Median
	}
	r.Check("higher thresholds lose more information (the paper's open concern)",
		meanLoss["KL>0.2"] > meanLoss["KL>0"],
		"mean loss %.4f (KL>0.2) vs %.4f (KL>0)", meanLoss["KL>0.2"], meanLoss["KL>0"])
	r.Check("typical KL>0 loss stays in the sub-threshold regime",
		medianLoss["KL>0"] < 0.05, "median %.4f", medianLoss["KL>0"])
	return r, nil
}
