package experiments

import (
	"math"
	"sort"

	"repro/internal/behavior"
	"repro/internal/metrics"
	"repro/internal/widget"
)

// Case study 3: composite interfaces (paper Section 8).

func init() {
	register(Experiment{ID: "tab9", Title: "Percentage of queries per interface widget", Run: runTab9})
	register(Experiment{ID: "fig18", Title: "Zoom levels over time", Run: runFig18})
	register(Experiment{ID: "tab10", Title: "Drag ranges of the bound center per zoom (and Fig 19)", Run: runTab10})
	register(Experiment{ID: "fig20", Title: "CDF of number of filter conditions", Run: runFig20})
	register(Experiment{ID: "fig21", Title: "CDFs of request and exploration time", Run: runFig21})
}

func runTab9(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab9", Title: "Queries per interface widget"}
	counts := map[widget.Kind]int{}
	total := 0
	for _, s := range ctx.Sessions() {
		for _, q := range s.Queries[1:] { // skip the initial page load
			counts[q.Widget]++
			total++
		}
	}
	frac := func(k widget.Kind) float64 { return float64(counts[k]) / float64(total) }
	mapF := frac(widget.KindMap)
	fsF := frac(widget.KindSlider) + frac(widget.KindCheckbox)
	btnF := frac(widget.KindButton)
	txtF := frac(widget.KindTextBox)
	r.Printf("%-18s %8s %8s", "interface", "ours", "paper")
	r.Printf("%-18s %7.1f%% %8s", "map", mapF*100, "62.8%")
	r.Printf("%-18s %7.1f%% %8s", "slider, checkbox", fsF*100, "29.9%")
	r.Printf("%-18s %7.1f%% %8s", "button", btnF*100, "3.6%")
	r.Printf("%-18s %7.1f%% %8s", "text box", txtF*100, "3.6%")
	r.Check("map dominates", mapF > 0.5 && mapF > fsF, "map %.1f%% vs sliders/checkboxes %.1f%%", mapF*100, fsF*100)
	r.Check("shares near paper", math.Abs(mapF-0.628) < 0.08 && math.Abs(fsF-0.299) < 0.08,
		"map Δ%.3f, slider+checkbox Δ%.3f", mapF-0.628, fsF-0.299)
	return r, nil
}

func runFig18(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig18", Title: "Zoom levels over time"}
	inBand, total := 0, 0
	maxWander := 0
	zoomHist := map[int]int{}
	for _, s := range ctx.Sessions() {
		start := s.Queries[0].Zoom
		lo, hi := start, start
		for _, q := range s.Queries {
			total++
			zoomHist[q.Zoom]++
			if q.Zoom >= 11 && q.Zoom <= 14 {
				inBand++
			}
			if q.Zoom < lo {
				lo = q.Zoom
			}
			if q.Zoom > hi {
				hi = q.Zoom
			}
		}
		if w := hi - start; w > maxWander {
			maxWander = w
		}
		if w := start - lo; w > maxWander {
			maxWander = w
		}
		r.Printf("user %2d: start z%d, visited z%d–z%d", s.User, start, lo, hi)
	}
	var zooms []int
	for z := range zoomHist {
		zooms = append(zooms, z)
	}
	sort.Ints(zooms)
	maxN := 0
	for _, z := range zooms {
		if zoomHist[z] > maxN {
			maxN = zoomHist[z]
		}
	}
	for _, z := range zooms {
		r.Printf("  z%-3d %6d %s", z, zoomHist[z], bar(zoomHist[z], maxN, 40))
	}
	bandFrac := float64(inBand) / float64(total)
	r.Check("zoom concentrates in 11–14", bandFrac > 0.6, "%.0f%% of queries in band", bandFrac*100)
	r.Check("users wander ≤3 levels from start", maxWander <= 3, "max wander %d", maxWander)
	return r, nil
}

func runTab10(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "tab10", Title: "Ranges for center of bounds per zoom"}
	latExt := map[int][]float64{}
	lngExt := map[int][]float64{}
	for _, s := range ctx.Sessions() {
		for i := 1; i < len(s.Queries); i++ {
			q, prev := s.Queries[i], s.Queries[i-1]
			if q.Action != behavior.ActDrag || q.Zoom != prev.Zoom {
				continue
			}
			latExt[q.Zoom] = append(latExt[q.Zoom], q.BoundCenterLat-prev.BoundCenterLat)
			lngExt[q.Zoom] = append(lngExt[q.Zoom], q.BoundCenterLng-prev.BoundCenterLng)
		}
	}
	// Paper Table 10 rows.
	paper := map[int][4]float64{
		11: {-0.10, 0.07, -0.2, 0.2},
		12: {-0.15, 0.07, -0.2, 0.2},
		13: {-0.05, 0.03, -0.08, 0.05},
		14: {-0.015, 0.013, -0.02, 0.02},
	}
	spanLng := map[int]float64{}
	r.Printf("%-5s %-22s %-22s %s", "zoom", "latitude", "longitude", "paper longitude")
	for _, z := range []int{11, 12, 13, 14} {
		if len(lngExt[z]) == 0 {
			continue
		}
		las := metrics.Summarize(latExt[z])
		lns := metrics.Summarize(lngExt[z])
		spanLng[z] = lns.Max - lns.Min
		p := paper[z]
		r.Printf("%-5d %-22s %-22s [%g, %g]", z, fmtRange(las.Min, las.Max), fmtRange(lns.Min, lns.Max), p[2], p[3])
	}
	// Shape: extents shrink monotonically with zoom, roughly halving.
	shrinking := true
	for z := 11; z < 14; z++ {
		a, okA := spanLng[z]
		b, okB := spanLng[z+1]
		if okA && okB && a <= b {
			shrinking = false
		}
	}
	r.Check("drag extents shrink with zoom", shrinking, "lng spans %v", spanLng)
	if s11, ok := spanLng[11]; ok {
		r.Check("zoom-11 longitude span near paper's ±0.2", s11 > 0.1 && s11 < 1.2, "span %.3f (paper 0.4)", s11)
	}
	return r, nil
}

func runFig20(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig20", Title: "CDF of filter conditions"}
	var counts []float64
	for _, s := range ctx.Sessions() {
		for _, q := range s.Queries {
			counts = append(counts, float64(q.FilterCount))
		}
	}
	cdf := metrics.NewCDF(counts)
	for _, k := range []float64{0, 2, 4, 6, 8, 10} {
		r.Printf("P(filters ≤ %2.0f) = %.2f", k, cdf.At(k))
	}
	at4 := cdf.At(4)
	r.Check("most queries carry ≤4 filters, some carry more", at4 > 0.55 && at4 <= 0.99 && cdf.Quantile(1) > 4,
		"P(≤4) = %.2f (paper 0.7), max %d filters", at4, int(cdf.Quantile(1)))
	return r, nil
}

func runFig21(cfg Config, ctx *Context) (*Report, error) {
	r := &Report{ID: "fig21", Title: "CDFs of request and exploration time"}
	var req, exp []float64
	for _, s := range ctx.Sessions() {
		for _, q := range s.Queries {
			req = append(req, q.RequestTime.Seconds())
			exp = append(exp, q.ExploreTime.Seconds())
		}
	}
	reqCDF, expCDF := metrics.NewCDF(req), metrics.NewCDF(exp)
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		r.Printf("P(request ≤ %4.1fs) = %.2f    P(explore ≤ %4.1fs) = %.2f", x, reqCDF.At(x), x, expCDF.At(x))
	}
	mReq := metrics.Summarize(req).Mean
	mExp := metrics.Summarize(exp).Mean
	prefetchable := mExp / mReq
	r.Printf("mean request %.2fs (paper ≈1.1s), mean exploration %.1fs (paper ≈18.3s)", mReq, mExp)
	r.Printf("≈%.0f adjacent queries can be prefetched during exploration (paper ≈18)", prefetchable)
	r.Check("80% of requests complete within ~1s", reqCDF.At(1) > 0.6, "P(req ≤ 1s) = %.2f", reqCDF.At(1))
	r.Check("80% of exploration exceeds 1s", 1-expCDF.At(1) > 0.75, "P(exp > 1s) = %.2f", 1-expCDF.At(1))
	r.Check("≈18 queries prefetchable", prefetchable > 8 && prefetchable < 40, "%.1f", prefetchable)
	return r, nil
}
