package opt

import (
	"container/list"
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
)

// Sized values report their own approximate resident size to
// byte-budgeted caches.
type Sized interface {
	ApproxBytes() int64
}

// SizeFunc estimates one cached value's resident bytes.
type SizeFunc func(val any) int64

// DefaultSize is the fallback size estimate: values implementing Sized
// answer for themselves; anything else is charged a flat 64 bytes (the
// order of an interface header plus a small payload), so entry-count
// pressure still exists under a byte budget even for opaque values.
func DefaultSize(val any) int64 {
	if s, ok := val.(Sized); ok {
		return s.ApproxBytes()
	}
	return 64
}

// ResultLRU is an LRU cache carrying result values — the server-side
// companion to SessionCache (which keys on quantized interaction state)
// and to the key-only Cache policies. The serving layer uses it for
// /v1/tiles results keyed by (dataset, tile) and, planner-enabled, as the
// single byte-budgeted store shared by cached brush answers and
// materialized indexes. Bounds compose: a positive capacity caps entries,
// a positive maxBytes caps the summed size estimates, and eviction runs
// until both hold. Not synchronized; callers serialize access.
type ResultLRU struct {
	capacity int
	maxBytes int64
	size     SizeFunc
	ll       *list.List
	index    map[string]*list.Element
	bytes    int64
	hits     int64
	misses   int64
	evicted  int64
	onEvict  func(key string, val any)
}

type resultEntry struct {
	key  string
	val  any
	size int64
}

// NewResultLRU builds a cache holding at most capacity entries; capacity
// <= 0 disables storage (every Get misses).
func NewResultLRU(capacity int) *ResultLRU {
	return &ResultLRU{capacity: capacity, ll: list.New(), index: map[string]*list.Element{}}
}

// NewByteLRU builds a cache bounded by approximate resident bytes rather
// than entry count: each Put charges size(val) against maxBytes and evicts
// least-recently-used entries until the budget holds. A nil size falls
// back to DefaultSize. maxBytes <= 0 disables storage. A single value
// larger than the whole budget is refused outright — never stored, never
// evicting the working set to make room for something that cannot fit.
func NewByteLRU(maxBytes int64, size SizeFunc) *ResultLRU {
	if size == nil {
		size = DefaultSize
	}
	return &ResultLRU{maxBytes: maxBytes, size: size, ll: list.New(), index: map[string]*list.Element{}}
}

// SetOnEvict installs a callback fired with every entry leaving the cache
// involuntarily: budget evictions and value replacements (a Put over an
// existing key). The callback runs synchronously under the caller's
// serialization, so it may maintain external accounting (gauges, byte
// counters) without extra locks.
func (c *ResultLRU) SetOnEvict(fn func(key string, val any)) { c.onEvict = fn }

// Get returns the cached value and whether it was present, updating
// recency and the hit/miss counters.
func (c *ResultLRU) Get(key string) (any, bool) {
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(resultEntry).val, true
}

// Put inserts or refreshes a value, evicting least-recently-used entries
// until the capacity and byte bounds both hold. It reports whether the
// value was stored; an oversized value (larger than the whole byte budget)
// is refused and false is returned.
func (c *ResultLRU) Put(key string, val any) bool {
	if c.capacity <= 0 && c.maxBytes <= 0 {
		return false
	}
	var sz int64
	if c.maxBytes > 0 {
		sz = c.size(val)
		if sz > c.maxBytes {
			return false
		}
	}
	if el, ok := c.index[key]; ok {
		old := el.Value.(resultEntry)
		c.bytes += sz - old.size
		el.Value = resultEntry{key, val, sz}
		c.ll.MoveToFront(el)
		if c.onEvict != nil {
			c.onEvict(old.key, old.val)
		}
		c.evictToBounds()
		return true
	}
	c.index[key] = c.ll.PushFront(resultEntry{key, val, sz})
	c.bytes += sz
	c.evictToBounds()
	return true
}

// evictToBounds drops least-recently-used entries until both bounds hold.
// The front entry (just inserted or refreshed) is never evicted: an
// oversized value was refused before insertion, so a one-entry cache
// always fits.
func (c *ResultLRU) evictToBounds() {
	for c.overBounds() {
		oldest := c.ll.Back()
		if oldest == c.ll.Front() {
			return
		}
		ent := oldest.Value.(resultEntry)
		c.ll.Remove(oldest)
		delete(c.index, ent.key)
		c.bytes -= ent.size
		c.evicted++
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
	}
}

// overBounds reports whether either bound is currently exceeded.
func (c *ResultLRU) overBounds() bool {
	if c.capacity > 0 && c.ll.Len() > c.capacity {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes
}

// Len returns the number of cached entries.
func (c *ResultLRU) Len() int { return c.ll.Len() }

// Bytes returns the summed size estimates of the cached entries (0 when
// the cache is entry-bounded only).
func (c *ResultLRU) Bytes() int64 { return c.bytes }

// MaxBytes returns the byte budget (0 when entry-bounded only).
func (c *ResultLRU) MaxBytes() int64 { return c.maxBytes }

// Evictions returns how many entries the bounds have pushed out.
func (c *ResultLRU) Evictions() int64 { return c.evicted }

// Stats returns hit and miss counts.
func (c *ResultLRU) Stats() (hits, misses int64) { return c.hits, c.misses }

// SessionCache reuses results of equivalent queries within a session — the
// Sesame-style optimization the survey credits with up to 25× gains, only
// available because consecutive interactive queries are related (§2.4).
//
// Two query events are equivalent when every dimension's filter range
// matches at the interface's resolution: a slider rendered on a pixel
// track cannot express finer ranges than a pixel, so ranges are quantized
// to Steps positions before keying. Gesture jitter oscillating around a
// handle position revisits the same quantized state over and over, which
// is exactly where reuse pays.
type SessionCache struct {
	// Steps is the quantization resolution (positions per dimension
	// domain); defaults to the slider track width in pixels.
	Steps int
	// Capacity bounds the number of cached events (0 = unbounded).
	Capacity int
	// HitCost is the model latency of serving a cached result.
	HitCost time.Duration

	entries map[string][]*engine.Result
	order   []string
	hits    int64
	misses  int64
}

// NewSessionCache builds a cache at the given resolution.
func NewSessionCache(steps, capacity int) *SessionCache {
	if steps <= 0 {
		steps = 350
	}
	return &SessionCache{
		Steps:    steps,
		Capacity: capacity,
		HitCost:  500 * time.Microsecond,
		entries:  map[string][]*engine.Result{},
	}
}

// Key derives the quantized cache key of a query event.
func (sc *SessionCache) Key(ev QueryEvent, dims []CrossfilterDim) string {
	key := fmt.Sprintf("m%d", ev.Moved)
	for d, r := range ev.Ranges {
		span := dims[d].Hi - dims[d].Lo
		if span <= 0 {
			span = 1
		}
		lo := int(math.Round((r[0] - dims[d].Lo) / span * float64(sc.Steps)))
		hi := int(math.Round((r[1] - dims[d].Lo) / span * float64(sc.Steps)))
		key += fmt.Sprintf("|%d:%d", lo, hi)
	}
	return key
}

// Stats returns hit and miss counts.
func (sc *SessionCache) Stats() (hits, misses int64) { return sc.hits, sc.misses }

// HitRate returns hits/(hits+misses).
func (sc *SessionCache) HitRate() float64 {
	if sc.hits+sc.misses == 0 {
		return 0
	}
	return float64(sc.hits) / float64(sc.hits+sc.misses)
}

// lookup returns a cached result set, counting the access.
func (sc *SessionCache) lookup(key string) ([]*engine.Result, bool) {
	res, ok := sc.entries[key]
	if ok {
		sc.hits++
	} else {
		sc.misses++
	}
	return res, ok
}

// store inserts a result set, evicting the oldest entry beyond capacity.
func (sc *SessionCache) store(key string, res []*engine.Result) {
	if _, exists := sc.entries[key]; !exists {
		sc.order = append(sc.order, key)
		if sc.Capacity > 0 && len(sc.order) > sc.Capacity {
			oldest := sc.order[0]
			sc.order = sc.order[1:]
			delete(sc.entries, oldest)
		}
	}
	sc.entries[key] = res
}

// ReplayWithReuse replays a workload through the session cache: hits are
// served client-side at HitCost, misses go to the backend. The returned
// result's latency series mixes both, which is how the reuse speedup shows
// up end to end.
func ReplayWithReuse(srv *engine.Server, events []QueryEvent, dims []CrossfilterDim, cache *SessionCache) (*ReplayResult, error) {
	res := &ReplayResult{Policy: "reuse", Offered: len(events)}
	for _, ev := range events {
		key := cache.Key(ev, dims)
		if _, ok := cache.lookup(key); ok {
			res.Executed++
			res.Issues = append(res.Issues, ev.At)
			res.Finishes = append(res.Finishes, ev.At+cache.HitCost)
			res.Latency = append(res.Latency, cache.HitCost)
			res.Exec = append(res.Exec, 0)
			continue
		}
		recs, err := srv.SubmitGroup(ev.At, ev.Stmts)
		if err != nil {
			return nil, err
		}
		stored := make([]*engine.Result, len(recs))
		for i := range recs {
			stored[i] = recs[i].Result
		}
		cache.store(key, stored)
		if len(recs) > 0 {
			r := recs[0]
			res.Executed++
			res.Issues = append(res.Issues, r.Issue)
			res.Finishes = append(res.Finishes, r.Finish)
			res.Latency = append(res.Latency, r.Latency())
			res.Exec = append(res.Exec, r.Exec)
		}
	}
	return res, nil
}
