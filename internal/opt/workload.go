// Package opt implements the behavior-driven optimizations the paper
// proposes and evaluates:
//
//   - Skip (case study 2, Algorithm 1): once a new query is issued, queued
//     predecessors are abandoned — a latest-only queue in front of the
//     backend.
//   - KL filtering (case study 2, Algorithm 2): approximate each query's
//     histogram client-side on a sample and only forward queries whose
//     Kullback–Leibler divergence from the last forwarded result exceeds a
//     threshold (KL>0 and KL>0.2 in the paper).
//   - Event fetch and timer fetch (case study 1): the two prefetching
//     strategies compared against lazy loading for inertial scrolling.
//   - Tile prefetchers and cache policies (Sections 3.1.1 and 8): LRU and
//     FIFO eviction versus prediction-driven prefetch for map tiles.
//   - Throttling and debouncing (Section 3.1.2): matching the frontend's
//     query issuing frequency to backend capacity.
package opt

import (
	"fmt"
	"time"

	"repro/internal/crossfilter"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// QueryEvent is one interaction instant and the backend queries it
// triggers. In an n-dimensional coordinated view each slider movement
// issues n−1 histogram queries concurrently.
type QueryEvent struct {
	At     time.Duration
	Stmts  []*sql.SelectStmt
	Ranges [][2]float64 // full filter state (per dimension) at this event
	Moved  int          // index of the dimension that moved
}

// CrossfilterDim names one filterable column and its domain for workload
// construction.
type CrossfilterDim struct {
	Column string
	Lo, Hi float64
}

// BuildCrossfilterWorkload turns a slider-event trace into the SQL workload
// the paper replays: for each slider event, one 20-bin histogram query per
// *other* dimension, with the WHERE clause carrying every dimension's
// current range.
func BuildCrossfilterWorkload(events []trace.SliderEvent, table string, dims []CrossfilterDim) ([]QueryEvent, error) {
	ranges := make([][2]float64, len(dims))
	for i, d := range dims {
		ranges[i] = [2]float64{d.Lo, d.Hi}
	}
	var out []QueryEvent
	for _, ev := range events {
		if ev.SliderIdx < 0 || ev.SliderIdx >= len(dims) {
			return nil, fmt.Errorf("opt: slider index %d out of range", ev.SliderIdx)
		}
		ranges[ev.SliderIdx] = [2]float64{ev.MinVal, ev.MaxVal}
		qe := QueryEvent{At: ev.At, Moved: ev.SliderIdx}
		qe.Ranges = append([][2]float64{}, ranges...)
		for target := range dims {
			if target == ev.SliderIdx {
				continue
			}
			stmt, err := HistogramQuery(table, dims, ranges, target, crossfilter.DefaultBins)
			if err != nil {
				return nil, err
			}
			qe.Stmts = append(qe.Stmts, stmt)
		}
		out = append(out, qe)
	}
	return out, nil
}

// HistogramQuery builds the paper's histogram query for one target
// dimension under the current ranges:
//
//	SELECT ROUND((col - lo) / ((hi - lo) / bins)), COUNT(*)
//	FROM table WHERE <all ranges> GROUP BY ... ORDER BY ...
func HistogramQuery(table string, dims []CrossfilterDim, ranges [][2]float64, target, bins int) (*sql.SelectStmt, error) {
	if len(dims) != len(ranges) {
		return nil, fmt.Errorf("opt: %d dims but %d ranges", len(dims), len(ranges))
	}
	d := dims[target]
	step := (d.Hi - d.Lo) / float64(bins)
	binExpr := fmt.Sprintf("ROUND((%s - %s) / %s)", d.Column, num(d.Lo), num(step))
	q := fmt.Sprintf("SELECT %s, COUNT(*) FROM %s WHERE ", binExpr, table)
	for i, dim := range dims {
		if i > 0 {
			q += " AND "
		}
		q += fmt.Sprintf("%s >= %s AND %s <= %s", dim.Column, num(ranges[i][0]), dim.Column, num(ranges[i][1]))
	}
	q += fmt.Sprintf(" GROUP BY %s ORDER BY %s", binExpr, binExpr)
	return sql.Parse(q)
}

// num renders a float as a SQL literal (negative values parenthesize
// naturally through the unary-minus grammar).
func num(f float64) string {
	return storage.NewFloat(f).String()
}
