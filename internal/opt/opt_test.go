package opt

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/widget"
)

var roadDims = []CrossfilterDim{
	{Column: "x", Lo: 8.146, Hi: 11.2616367163},
	{Column: "y", Lo: 56.582, Hi: 57.774},
	{Column: "z", Lo: -8.608, Hi: 137.361},
}

func sliderWorkload(t *testing.T, seed int64, adjustments int) []QueryEvent {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	domains := [][2]float64{}
	for _, d := range roadDims {
		domains = append(domains, [2]float64{d.Lo, d.Hi})
	}
	sess := behavior.SimulateSliderUser(rng, device.Mouse, domains, adjustments)
	events, err := BuildCrossfilterWorkload(sess.Events, "dataroad", roadDims)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty workload")
	}
	return events
}

func TestBuildCrossfilterWorkload(t *testing.T) {
	events := sliderWorkload(t, 1, 6)
	for _, ev := range events {
		if len(ev.Stmts) != 2 {
			t.Fatalf("event has %d stmts, want n-1=2", len(ev.Stmts))
		}
		if len(ev.Ranges) != 3 {
			t.Fatalf("event has %d ranges", len(ev.Ranges))
		}
	}
	// Bad slider index rejected.
	if _, err := BuildCrossfilterWorkload([]trace.SliderEvent{{SliderIdx: 9}}, "t", roadDims); err == nil {
		t.Error("bad slider index accepted")
	}
}

func TestHistogramQueryParsesAndRuns(t *testing.T) {
	roads := dataset.Roads(1, 3000)
	e := engine.New(engine.ProfileMemory)
	e.Register(roads)
	ranges := [][2]float64{{8.5, 10.5}, {56.582, 57.774}, {-8.608, 137.361}}
	stmt, err := HistogramQuery("dataroad", roadDims, ranges, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.UsedFastPath {
		t.Error("generated histogram query missed the fast path")
	}
	if len(res.Rows) == 0 {
		t.Error("no histogram rows")
	}
	// Mismatched dims/ranges rejected.
	if _, err := HistogramQuery("t", roadDims, ranges[:2], 0, 20); err == nil {
		t.Error("mismatched ranges accepted")
	}
}

func newServer(profile engine.Profile, rows int) *engine.Server {
	roads := dataset.Roads(1, rows)
	e := engine.New(profile)
	e.Register(roads)
	return &engine.Server{Engine: e, Network: time.Millisecond}
}

func TestReplayRawExecutesAll(t *testing.T) {
	events := sliderWorkload(t, 2, 4)
	srv := newServer(engine.ProfileMemory, 3000)
	res, err := ReplayRaw(srv, events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != len(events) || res.Skipped != 0 {
		t.Errorf("executed %d skipped %d of %d", res.Executed, res.Skipped, len(events))
	}
	if len(res.Issues) != res.Executed || len(res.Finishes) != res.Executed {
		t.Error("timing slices inconsistent")
	}
	for i := range res.Issues {
		if res.Finishes[i] <= res.Issues[i] {
			t.Fatal("finish before issue")
		}
	}
}

func TestReplaySkipDropsUnderLoad(t *testing.T) {
	events := sliderWorkload(t, 3, 8)
	// Disk profile on a large-enough table: execution ≫ issue interval.
	srv := newServer(engine.ProfileDisk, 60000)
	res, err := ReplaySkip(srv, events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Error("skip policy dropped nothing under an overloaded backend")
	}
	if res.Executed+res.Skipped != res.Offered {
		t.Errorf("executed %d + skipped %d != offered %d", res.Executed, res.Skipped, res.Offered)
	}
	// Skip must bound queueing: no executed query waits behind more than
	// one in-flight execution.
	rawSrv := newServer(engine.ProfileDisk, 60000)
	raw, err := ReplayRaw(rawSrv, events)
	if err != nil {
		t.Fatal(err)
	}
	maxSkip, maxRaw := maxLatency(res.Latency), maxLatency(raw.Latency)
	if maxSkip >= maxRaw {
		t.Errorf("skip max latency %v not below raw %v", maxSkip, maxRaw)
	}
}

func maxLatency(ls []time.Duration) time.Duration {
	var m time.Duration
	for _, l := range ls {
		if l > m {
			m = l
		}
	}
	return m
}

func TestKLFilterReducesQueries(t *testing.T) {
	events := sliderWorkload(t, 4, 10)
	sample := dataset.Roads(99, 4000)
	f0, err := NewKLFilter(0, sample, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(engine.ProfileMemory, 3000)
	res0, err := ReplayKL(srv, events, f0)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Skipped == 0 {
		t.Error("KL>0 skipped nothing; identical-result queries should drop")
	}
	if res0.Executed == 0 {
		t.Fatal("KL>0 executed nothing")
	}

	f2, err := NewKLFilter(0.2, sample, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newServer(engine.ProfileMemory, 3000)
	res2, err := ReplayKL(srv2, events, f2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Executed >= res0.Executed {
		t.Errorf("KL>0.2 executed %d, not below KL>0's %d", res2.Executed, res0.Executed)
	}
	if res0.Policy != "KL>0" || res2.Policy != "KL>0.2" {
		t.Errorf("policy names %q, %q", res0.Policy, res2.Policy)
	}
}

func TestLCVAccounting(t *testing.T) {
	events := sliderWorkload(t, 5, 6)
	slow := newServer(engine.ProfileDisk, 60000)
	fast := newServer(engine.ProfileMemory, 60000)
	resSlow, err := ReplayRaw(slow, events)
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := ReplayRaw(fast, events)
	if err != nil {
		t.Fatal(err)
	}
	if resSlow.LCV() <= resFast.LCV() {
		t.Errorf("disk LCV %d not above memory LCV %d", resSlow.LCV(), resFast.LCV())
	}
	if p := resSlow.LCVPercent(); p <= 0 || p > 1 {
		t.Errorf("LCVPercent = %v", p)
	}
}

// --- scroll prefetching ----------------------------------------------------

func scrollTrace(seed int64) []trace.ScrollEvent {
	rng := rand.New(rand.NewSource(seed))
	p := behavior.NewScrollerParams(rng)
	return behavior.SimulateScroller(rng, p, 1500).Events
}

func TestEventFetchInsensitiveToBatch(t *testing.T) {
	events := scrollTrace(6)
	exec := 80 * time.Millisecond
	var means []time.Duration
	for _, batch := range []int{12, 30, 58, 80} {
		r := SimulateEventFetch(events, 100, batch, exec)
		if r.Fetches == 0 {
			t.Fatalf("batch %d: no fetches", batch)
		}
		means = append(means, r.MeanWait())
	}
	// Figure 10: event fetch stays near the execution time at every batch.
	for i, m := range means {
		if m > 6*exec {
			t.Errorf("batch idx %d: mean wait %v far above exec %v", i, m, exec)
		}
	}
}

func TestTimerFetchLatencyCollapses(t *testing.T) {
	events := scrollTrace(7)
	exec := 80 * time.Millisecond
	small := SimulateTimerFetch(events, 100, 12, time.Second, exec)
	big := SimulateTimerFetch(events, 100, 200, time.Second, exec)
	if small.Violations == 0 {
		t.Skip("slow user: no violations at 12 tuples")
	}
	if big.Violations >= small.Violations {
		t.Errorf("violations did not collapse: %d → %d", small.Violations, big.Violations)
	}
	if big.MeanWait() >= small.MeanWait() && small.MeanWait() > 0 {
		t.Errorf("mean wait did not fall: %v → %v", small.MeanWait(), big.MeanWait())
	}
}

// TestTable8Shape reproduces the Table 8 contrast over a 15-user study:
// event fetch violates for nearly every user at every batch size; timer
// fetch violations collapse as the batch approaches the median of max
// scroll speed.
func TestTable8Shape(t *testing.T) {
	var traces [][]trace.ScrollEvent
	for u := 0; u < 15; u++ {
		traces = append(traces, scrollTrace(100+int64(u)))
	}
	exec := 80 * time.Millisecond
	batches := []int{12, 30, 58, 80}
	eventUsers := map[int]int{}
	timerUsers := map[int]int{}
	timerTotal := map[int]int{}
	for _, b := range batches {
		for _, tr := range traces {
			if SimulateEventFetch(tr, b, b, exec).Violated() {
				eventUsers[b]++
			}
			r := SimulateTimerFetch(tr, b, b, time.Second, exec)
			if r.Violated() {
				timerUsers[b]++
			}
			timerTotal[b] += r.Violations
		}
	}
	if eventUsers[12] < 12 {
		t.Errorf("event fetch @12: %d users violated, paper says ~all 15", eventUsers[12])
	}
	if timerUsers[80] > 2 {
		t.Errorf("timer fetch @80: %d users violated, paper says 0", timerUsers[80])
	}
	if timerUsers[12] <= timerUsers[58]-1 {
		t.Errorf("timer violations did not fall with batch: %v", timerUsers)
	}
	if timerTotal[12] <= timerTotal[80] {
		t.Errorf("timer total violations did not fall: %v", timerTotal)
	}
}

// --- caches and tile prefetching --------------------------------------------

func TestCachePolicies(t *testing.T) {
	for _, c := range []Cache{NewLRU(2), NewFIFO(2)} {
		if c.Get("a") {
			t.Errorf("%s: hit on empty cache", c.Name())
		}
		c.Put("a")
		c.Put("b")
		if !c.Get("a") || !c.Get("b") {
			t.Errorf("%s: resident keys missing", c.Name())
		}
		c.Put("c") // evicts per policy
		if c.Len() != 2 {
			t.Errorf("%s: len %d", c.Name(), c.Len())
		}
	}
	// LRU vs FIFO difference: after touching "a", inserting "c" evicts "b"
	// from LRU but "a" from FIFO.
	lru, fifo := NewLRU(2), NewFIFO(2)
	for _, c := range []Cache{lru, fifo} {
		c.Put("a")
		c.Put("b")
		c.Get("a")
		c.Put("c")
	}
	if !lru.Get("a") {
		t.Error("LRU evicted the recently used key")
	}
	if fifo.Get("a") {
		t.Error("FIFO kept the oldest key")
	}
	if HitRate(NewLRU(2)) != 0 {
		t.Error("hit rate on fresh cache != 0")
	}
}

func TestStepsFromTiles(t *testing.T) {
	mv := widget.NewMapView(12, 40.71, -74.0)
	set1 := mv.VisibleTiles()
	mv.Pan(512, 0)
	set2 := mv.VisibleTiles()
	mv.ZoomIn()
	set3 := mv.VisibleTiles()
	steps := StepsFromTiles([][]widget.Tile{set1, set2, set3})
	if steps[1].DTileX != 2 || steps[1].DTileY != 0 {
		t.Errorf("pan delta = (%d,%d), want (2,0)", steps[1].DTileX, steps[1].DTileY)
	}
	if steps[2].DZoom != 1 {
		t.Errorf("zoom delta = %d", steps[2].DZoom)
	}
}

// TestPredictivePrefetchBeatsEvictionOnly reproduces the §3.1.1 claim:
// prediction-driven prefetch outperforms pure LRU/FIFO eviction on a
// directional navigation trace.
func TestPredictivePrefetchBeatsEvictionOnly(t *testing.T) {
	// A steady eastward pan: highly predictable.
	mv := widget.NewMapView(12, 40.71, -74.0)
	var sets [][]widget.Tile
	for i := 0; i < 40; i++ {
		sets = append(sets, mv.VisibleTiles())
		mv.Pan(256, 0)
	}
	steps := StepsFromTiles(sets)

	base := EvaluateTilePolicy(steps, NewLRU(500), NoPrefetch{}, 0)
	momentum := EvaluateTilePolicy(steps, NewLRU(500), MomentumPrefetch{}, 60)
	markov := EvaluateTilePolicy(steps, NewLRU(500), MarkovPrefetch{}, 60)
	if momentum <= base {
		t.Errorf("momentum hit rate %v not above eviction-only %v", momentum, base)
	}
	if markov <= base {
		t.Errorf("markov hit rate %v not above eviction-only %v", markov, base)
	}
}

func TestNeighborPrefetchCoversPan(t *testing.T) {
	mv := widget.NewMapView(12, 40.71, -74.0)
	var sets [][]widget.Tile
	for i := 0; i < 20; i++ {
		sets = append(sets, mv.VisibleTiles())
		mv.Pan(128, 64)
	}
	steps := StepsFromTiles(sets)
	base := EvaluateTilePolicy(steps, NewLRU(1000), NoPrefetch{}, 0)
	nb := EvaluateTilePolicy(steps, NewLRU(1000), NeighborPrefetch{}, 80)
	if nb <= base {
		t.Errorf("neighbor hit rate %v not above baseline %v", nb, base)
	}
}

func TestPrefetchersEmptyHistory(t *testing.T) {
	for _, pf := range []TilePrefetcher{NoPrefetch{}, NeighborPrefetch{}, MomentumPrefetch{}, MarkovPrefetch{}} {
		if got := pf.Predict(nil, 10); len(got) != 0 {
			t.Errorf("%s predicted %d tiles from empty history", pf.Name(), len(got))
		}
	}
}

// --- throttle / debounce -----------------------------------------------------

func TestThrottle(t *testing.T) {
	times := []time.Duration{0, 5 * time.Millisecond, 12 * time.Millisecond, 40 * time.Millisecond, 45 * time.Millisecond}
	got := Throttle(times, 10*time.Millisecond)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Throttle = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Throttle = %v, want %v", got, want)
		}
	}
	all := Throttle(times, 0)
	if len(all) != len(times) {
		t.Error("zero gap did not pass everything")
	}
}

func TestDebounce(t *testing.T) {
	times := []time.Duration{0, 5 * time.Millisecond, 100 * time.Millisecond, 104 * time.Millisecond}
	got := Debounce(times, 50*time.Millisecond)
	// idx1 followed by 95ms gap → passes; idx3 is last → passes.
	want := []int{1, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Debounce = %v, want %v", got, want)
	}
	if got := Debounce(nil, time.Second); len(got) != 0 {
		t.Error("Debounce(nil) nonempty")
	}
}
