package opt

import (
	"sort"

	"repro/internal/widget"
)

// TileStep is one map query in a navigation trace: the viewport's visible
// tiles and how the viewport moved since the previous step.
type TileStep struct {
	Tiles  []widget.Tile
	Zoom   int
	DTileX int // viewport movement in tile units since the previous step
	DTileY int
	DZoom  int
}

// StepsFromTiles derives TileSteps (with movement deltas) from a sequence
// of visible-tile sets.
func StepsFromTiles(tileSets [][]widget.Tile) []TileStep {
	steps := make([]TileStep, len(tileSets))
	for i, tiles := range tileSets {
		steps[i] = TileStep{Tiles: tiles}
		if len(tiles) > 0 {
			steps[i].Zoom = tiles[0].Z
		}
		if i == 0 {
			continue
		}
		prev := steps[i-1]
		steps[i].DZoom = steps[i].Zoom - prev.Zoom
		if steps[i].DZoom == 0 && len(prev.Tiles) > 0 && len(tiles) > 0 {
			cx0, cy0 := tileCentroid(prev.Tiles)
			cx1, cy1 := tileCentroid(tiles)
			steps[i].DTileX = cx1 - cx0
			steps[i].DTileY = cy1 - cy0
		}
	}
	return steps
}

func tileCentroid(tiles []widget.Tile) (int, int) {
	var sx, sy int
	for _, t := range tiles {
		sx += t.X
		sy += t.Y
	}
	return sx / len(tiles), sy / len(tiles)
}

// TilePrefetcher predicts the tiles the user will need next, given the
// navigation history so far (history[len-1] is the current step).
type TilePrefetcher interface {
	Name() string
	Predict(history []TileStep, budget int) []widget.Tile
}

// NoPrefetch predicts nothing — the purely eviction-based baseline.
type NoPrefetch struct{}

// Name returns "none".
func (NoPrefetch) Name() string { return "none" }

// Predict returns no tiles.
func (NoPrefetch) Predict([]TileStep, int) []widget.Tile { return nil }

// NeighborPrefetch predicts the ring of tiles surrounding the current
// viewport plus the child tiles one zoom deeper under its center — the
// content-agnostic heuristic (cf. Scout's baselines).
type NeighborPrefetch struct{}

// Name returns "neighbor".
func (NeighborPrefetch) Name() string { return "neighbor" }

// Predict returns boundary neighbors and center children, budget-limited.
func (NeighborPrefetch) Predict(history []TileStep, budget int) []widget.Tile {
	if len(history) == 0 {
		return nil
	}
	cur := history[len(history)-1]
	have := tileSet(cur.Tiles)
	var out []widget.Tile
	// Ring around the viewport.
	for _, t := range cur.Tiles {
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			n := widget.Tile{Z: t.Z, X: t.X + d[0], Y: t.Y + d[1]}
			if !have[n] && n.X >= 0 && n.Y >= 0 {
				have[n] = true
				out = append(out, n)
			}
		}
	}
	// Children of the central tiles (anticipating a zoom-in).
	if len(cur.Tiles) > 0 {
		cx, cy := tileCentroid(cur.Tiles)
		for dx := 0; dx <= 1; dx++ {
			for dy := 0; dy <= 1; dy++ {
				out = append(out, widget.Tile{Z: cur.Zoom + 1, X: 2*cx + dx, Y: 2*cy + dy})
			}
		}
	}
	return capTiles(out, budget)
}

// MomentumPrefetch is the retrospective strategy (RAP-style): it averages
// the user's recent viewport movement and prefetches the viewport shifted
// one and two steps further along that trajectory.
type MomentumPrefetch struct {
	// Window is how many past steps inform the momentum estimate.
	Window int
}

// Name returns "momentum".
func (MomentumPrefetch) Name() string { return "momentum" }

// Predict shifts the current viewport along the recent movement vector.
func (m MomentumPrefetch) Predict(history []TileStep, budget int) []widget.Tile {
	if len(history) == 0 {
		return nil
	}
	w := m.Window
	if w <= 0 {
		w = 3
	}
	cur := history[len(history)-1]
	// Average recent same-zoom movement.
	var dx, dy, n int
	for i := len(history) - 1; i >= 0 && i > len(history)-1-w; i-- {
		if history[i].DZoom != 0 {
			break
		}
		dx += history[i].DTileX
		dy += history[i].DTileY
		n++
	}
	if n == 0 || (dx == 0 && dy == 0) {
		return NeighborPrefetch{}.Predict(history, budget)
	}
	dx = roundDiv(dx, n)
	dy = roundDiv(dy, n)
	have := tileSet(cur.Tiles)
	var out []widget.Tile
	for step := 1; step <= 2; step++ {
		for _, t := range cur.Tiles {
			p := widget.Tile{Z: t.Z, X: t.X + dx*step, Y: t.Y + dy*step}
			if !have[p] && p.X >= 0 && p.Y >= 0 {
				have[p] = true
				out = append(out, p)
			}
		}
	}
	return capTiles(out, budget)
}

// MarkovPrefetch learns a first-order model over navigation moves
// (quantized Δzoom and movement direction) from the history so far and
// prefetches the viewport transformed by the most probable next moves —
// the Markov-chain family of prefetchers the paper cites.
type MarkovPrefetch struct{}

// Name returns "markov".
func (MarkovPrefetch) Name() string { return "markov" }

type move struct {
	dz, sx, sy int
}

// Predict tallies observed moves following states like the current one and
// applies the most likely moves to the current viewport.
func (MarkovPrefetch) Predict(history []TileStep, budget int) []widget.Tile {
	if len(history) < 2 {
		return NeighborPrefetch{}.Predict(history, budget)
	}
	// First-order chain: condition on the previous move.
	counts := map[move]map[move]int{}
	var prev *move
	for i := 1; i < len(history); i++ {
		m := quantize(history[i])
		if prev != nil {
			if counts[*prev] == nil {
				counts[*prev] = map[move]int{}
			}
			counts[*prev][m]++
		}
		p := m
		prev = &p
	}
	cur := history[len(history)-1]
	state := quantize(cur)
	next := counts[state]
	if len(next) == 0 {
		return MomentumPrefetch{}.Predict(history, budget)
	}
	type scored struct {
		m move
		n int
	}
	var cands []scored
	for m, n := range next {
		cands = append(cands, scored{m, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].m != cands[j].m && lessMove(cands[i].m, cands[j].m)
	})
	have := tileSet(cur.Tiles)
	var out []widget.Tile
	for _, c := range cands {
		if len(c.m.apply(cur, have)) == 0 {
			continue
		}
		out = append(out, c.m.apply(cur, have)...)
		if len(out) >= budget {
			break
		}
	}
	return capTiles(out, budget)
}

func lessMove(a, b move) bool {
	if a.dz != b.dz {
		return a.dz < b.dz
	}
	if a.sx != b.sx {
		return a.sx < b.sx
	}
	return a.sy < b.sy
}

// apply transforms the current viewport by the move, returning unseen
// tiles.
func (m move) apply(cur TileStep, have map[widget.Tile]bool) []widget.Tile {
	var out []widget.Tile
	switch {
	case m.dz > 0:
		cx, cy := tileCentroid(cur.Tiles)
		for dx := 0; dx <= 1; dx++ {
			for dy := 0; dy <= 1; dy++ {
				out = append(out, widget.Tile{Z: cur.Zoom + 1, X: 2*cx + dx, Y: 2*cy + dy})
			}
		}
	case m.dz < 0:
		cx, cy := tileCentroid(cur.Tiles)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				t := widget.Tile{Z: cur.Zoom - 1, X: cx/2 + dx, Y: cy/2 + dy}
				if t.X >= 0 && t.Y >= 0 {
					out = append(out, t)
				}
			}
		}
	default:
		for _, t := range cur.Tiles {
			p := widget.Tile{Z: t.Z, X: t.X + m.sx, Y: t.Y + m.sy}
			if !have[p] && p.X >= 0 && p.Y >= 0 {
				out = append(out, p)
			}
		}
	}
	return out
}

func quantize(s TileStep) move {
	return move{dz: sign(s.DZoom), sx: sign(s.DTileX), sy: sign(s.DTileY)}
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func roundDiv(a, n int) int {
	if n == 0 {
		return 0
	}
	if a >= 0 {
		return (a + n/2) / n
	}
	return -((-a + n/2) / n)
}

func tileSet(tiles []widget.Tile) map[widget.Tile]bool {
	m := make(map[widget.Tile]bool, len(tiles))
	for _, t := range tiles {
		m[t] = true
	}
	return m
}

func capTiles(tiles []widget.Tile, budget int) []widget.Tile {
	if budget > 0 && len(tiles) > budget {
		return tiles[:budget]
	}
	return tiles
}

// EvaluateTilePolicy replays a navigation trace against a tile cache with a
// prefetcher and returns the cache hit rate over visible tiles — the §3.1.1
// cache-hit-rate metric, and the vehicle for the paper's claim that
// eviction-only policies lose to predictive prefetching.
func EvaluateTilePolicy(steps []TileStep, cache Cache, pf TilePrefetcher, budget int) float64 {
	for i, step := range steps {
		for _, t := range step.Tiles {
			if !cache.Get(t.String()) {
				cache.Put(t.String()) // fetched on demand
			}
		}
		for _, t := range pf.Predict(steps[:i+1], budget) {
			cache.Put(t.String())
		}
	}
	return HitRate(cache)
}
