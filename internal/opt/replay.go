package opt

import (
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/storage"

	cf "repro/internal/crossfilter"
)

// ReplayResult is the outcome of replaying a crossfilter workload against a
// backend under one policy.
type ReplayResult struct {
	Policy   string
	Offered  int // query events offered by the interface
	Executed int // events that reached the backend
	Skipped  int // events dropped by the policy

	// Per executed event (coordinated groups share timing):
	Issues   []time.Duration
	Finishes []time.Duration
	Latency  []time.Duration
	Exec     []time.Duration
}

// LCV returns the number of latency-constraint violations among executed
// queries, with the constraint evaluated against the *offered* event
// stream's end.
func (r *ReplayResult) LCV() int {
	return metrics.LCV(r.Issues, r.Finishes, 0)
}

// LCVPercent returns violations as a fraction of executed queries.
func (r *ReplayResult) LCVPercent() float64 {
	return metrics.LCVPercent(r.Issues, r.Finishes, 0)
}

// OverConstraint counts executed queries whose user-perceived latency
// exceeded metrics.DefaultConstraint — the same fixed wall-clock budget the
// serving layer reports, so simulated and served runs are comparable.
func (r *ReplayResult) OverConstraint() int {
	return metrics.OverConstraint(r.Latency, metrics.DefaultConstraint)
}

// ReplayRaw submits every query event (the paper's "raw" condition).
func ReplayRaw(srv *engine.Server, events []QueryEvent) (*ReplayResult, error) {
	res := &ReplayResult{Policy: "raw", Offered: len(events)}
	for _, ev := range events {
		if err := submitEvent(srv, ev, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ReplaySkip implements the paper's Skip optimization (Algorithm 1): while
// the backend is busy, newly issued events replace the waiting one, so at
// most one event ever queues and stale queries are abandoned.
func ReplaySkip(srv *engine.Server, events []QueryEvent) (*ReplayResult, error) {
	res := &ReplayResult{Policy: "skip", Offered: len(events)}
	var pending *QueryEvent
	for i := range events {
		ev := events[i]
		// If the backend freed up before this event, flush the waiting one.
		if pending != nil && srv.BusyUntil() <= ev.At {
			if err := submitEvent(srv, *pending, res); err != nil {
				return nil, err
			}
			pending = nil
		}
		if srv.BusyUntil() <= ev.At {
			if err := submitEvent(srv, ev, res); err != nil {
				return nil, err
			}
			continue
		}
		if pending != nil {
			res.Skipped++
		}
		pending = &ev
	}
	if pending != nil {
		if err := submitEvent(srv, *pending, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// KLFilter decides client-side whether a query's result would differ enough
// from the last forwarded one to be worth sending, using approximate
// histograms over a sample (Algorithm 2). Threshold 0 forwards only
// result-changing queries; 0.2 forwards only substantially different ones.
type KLFilter struct {
	Threshold float64
	// QuantLevels is the mass resolution of the approximation (default 64):
	// histograms are quantized to 1/QuantLevels before comparison, so
	// sub-resolution changes — e.g. gesture jitter moving a fraction of a
	// bin's mass — read as "result unchanged" and are dropped even at
	// threshold 0, which is where the paper's drastic KL>0 reduction of
	// noisy queries comes from.
	QuantLevels int

	sample *cf.Crossfilter
	// last admitted approximate histograms per dimension
	last [][]int64
}

// NewKLFilter builds a filter approximating results on a sample table. The
// sample should be small (the paper cites hash/sampling/wavelet sketches);
// a few thousand rows approximate 20-bin histogram shape well.
func NewKLFilter(threshold float64, sample *storage.Table, columns []string) (*KLFilter, error) {
	c, err := cf.New(sample, columns, cf.DefaultBins)
	if err != nil {
		return nil, err
	}
	f := &KLFilter{Threshold: threshold, QuantLevels: 64, sample: c}
	f.last = quantizeAll(c.Histograms(), f.QuantLevels)
	return f, nil
}

func quantizeAll(hs [][]int64, levels int) [][]int64 {
	out := make([][]int64, len(hs))
	for i, h := range hs {
		out[i] = metrics.QuantizeCounts(h, levels)
	}
	return out
}

// Admit updates the sample state with the event's filter ranges and reports
// whether the approximate result diverges from the last admitted one by
// more than the threshold. Admitted events update the reference.
func (f *KLFilter) Admit(ev QueryEvent) bool {
	for d := range ev.Ranges {
		f.sample.SetFilter(d, ev.Ranges[d][0], ev.Ranges[d][1])
	}
	cur := quantizeAll(f.sample.Histograms(), f.QuantLevels)
	maxKL := 0.0
	for d := range cur {
		if d == ev.Moved {
			// The moved dimension's own view is not re-queried.
			continue
		}
		if kl := metrics.KLDivergence(f.last[d], cur[d]); kl > maxKL {
			maxKL = kl
		}
	}
	if maxKL > f.Threshold {
		f.last = cur
		return true
	}
	return false
}

// ReplayKL replays the workload through a KLFilter: only admitted events
// reach the backend (which still queues FIFO).
func ReplayKL(srv *engine.Server, events []QueryEvent, filter *KLFilter) (*ReplayResult, error) {
	res := &ReplayResult{Policy: klName(filter.Threshold), Offered: len(events)}
	for _, ev := range events {
		if !filter.Admit(ev) {
			res.Skipped++
			continue
		}
		if err := submitEvent(srv, ev, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func klName(t float64) string {
	return "KL>" + storage.NewFloat(t).String()
}

func submitEvent(srv *engine.Server, ev QueryEvent, res *ReplayResult) error {
	recs, err := srv.SubmitGroup(ev.At, ev.Stmts)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	// Coordinated queries share timing; record the event once.
	r := recs[0]
	res.Executed++
	res.Issues = append(res.Issues, r.Issue)
	res.Finishes = append(res.Finishes, r.Finish)
	res.Latency = append(res.Latency, r.Latency())
	res.Exec = append(res.Exec, r.Exec)
	return nil
}
