package opt

import "time"

// Throttle enforces a minimum gap between forwarded events, matching the
// frontend's query issuing frequency to the backend's capacity (the
// "overwhelmed backend — need to throttle QIF" quadrant of Figure 3). It
// returns the indices of the events that pass.
func Throttle(times []time.Duration, minGap time.Duration) []int {
	if minGap <= 0 {
		out := make([]int, len(times))
		for i := range times {
			out[i] = i
		}
		return out
	}
	var out []int
	var last time.Duration
	first := true
	for i, t := range times {
		if first || t-last >= minGap {
			out = append(out, i)
			last = t
			first = false
		}
	}
	return out
}

// Debounce forwards an event only when it is followed by at least quiet
// time of silence (the final event always passes): the classic way to
// suppress a continuous gesture's intermediate states. It returns passing
// indices.
func Debounce(times []time.Duration, quiet time.Duration) []int {
	var out []int
	for i := range times {
		if i == len(times)-1 || times[i+1]-times[i] >= quiet {
			out = append(out, i)
		}
	}
	return out
}
