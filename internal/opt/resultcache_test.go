package opt

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/behavior"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestSessionCacheKeyQuantization(t *testing.T) {
	dims := roadDims
	sc := NewSessionCache(100, 0)
	base := QueryEvent{
		Moved:  0,
		Ranges: [][2]float64{{8.146, 10}, {56.582, 57.774}, {-8.608, 137.361}},
	}
	// A sub-quantum wiggle maps to the same key.
	wiggle := base
	wiggle.Ranges = append([][2]float64{}, base.Ranges...)
	wiggle.Ranges[0] = [2]float64{8.146, 10.001}
	if sc.Key(base, dims) != sc.Key(wiggle, dims) {
		t.Error("sub-quantum change produced a new key")
	}
	// A real move maps to a different key.
	moved := base
	moved.Ranges = append([][2]float64{}, base.Ranges...)
	moved.Ranges[0] = [2]float64{8.146, 10.5}
	if sc.Key(base, dims) == sc.Key(moved, dims) {
		t.Error("distinct ranges share a key")
	}
	// Different moved dimension → different key.
	other := base
	other.Moved = 1
	if sc.Key(base, dims) == sc.Key(other, dims) {
		t.Error("different moved dim shares a key")
	}
}

func TestSessionCacheCapacity(t *testing.T) {
	sc := NewSessionCache(10, 2)
	sc.store("a", nil)
	sc.store("b", nil)
	sc.store("c", nil) // evicts a
	if _, ok := sc.lookup("a"); ok {
		t.Error("capacity not enforced")
	}
	if _, ok := sc.lookup("c"); !ok {
		t.Error("newest entry evicted")
	}
	// Re-storing an existing key must not duplicate the order entry.
	sc.store("c", nil)
	sc.store("d", nil)
	if _, ok := sc.lookup("c"); !ok {
		t.Error("re-stored key evicted prematurely")
	}
	hits, misses := sc.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestReplayWithReuseLeapBeatsRaw(t *testing.T) {
	roads := dataset.Roads(1, 150000)
	rng := rand.New(rand.NewSource(5))
	domains := [][2]float64{}
	for _, d := range roadDims {
		domains = append(domains, [2]float64{d.Lo, d.Hi})
	}
	sess := behavior.SimulateSliderUser(rng, device.LeapMotion, domains, 5)
	events, err := BuildCrossfilterWorkload(sess.Events, "dataroad", roadDims)
	if err != nil {
		t.Fatal(err)
	}
	mkSrv := func() *engine.Server {
		e := engine.New(engine.ProfileDisk)
		e.Register(roads)
		return &engine.Server{Engine: e, Network: time.Millisecond}
	}
	raw, err := ReplayRaw(mkSrv(), events)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSessionCache(0, 0)
	reused, err := ReplayWithReuse(mkSrv(), events, roadDims, cache)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Executed != len(events) {
		t.Errorf("reuse executed %d of %d (every event must get a result)", reused.Executed, len(events))
	}
	if cache.HitRate() < 0.2 {
		t.Errorf("hit rate %.2f; leap jitter should revisit quantized states", cache.HitRate())
	}
	rawMean := metrics.Summarize(metrics.Durations(raw.Latency)).Mean
	reuseMean := metrics.Summarize(metrics.Durations(reused.Latency)).Mean
	if reuseMean >= rawMean {
		t.Errorf("reuse mean %.1fms not below raw %.1fms", reuseMean, rawMean)
	}
}

func TestReuseHitRateZeroOnDistinctQueries(t *testing.T) {
	// Monotone slider sweep: every quantized state is new.
	var events []QueryEvent
	var evs []trace.SliderEvent
	for i := 0; i < 50; i++ {
		evs = append(evs, trace.SliderEvent{
			At:        time.Duration(i) * 20 * time.Millisecond,
			SliderIdx: 0,
			MinVal:    8.146,
			MaxVal:    8.2 + float64(i)*0.05,
		})
	}
	events, err := BuildCrossfilterWorkload(evs, "dataroad", roadDims)
	if err != nil {
		t.Fatal(err)
	}
	roads := dataset.Roads(1, 5000)
	e := engine.New(engine.ProfileMemory)
	e.Register(roads)
	srv := &engine.Server{Engine: e}
	cache := NewSessionCache(0, 0)
	if _, err := ReplayWithReuse(srv, events, roadDims, cache); err != nil {
		t.Fatal(err)
	}
	if cache.HitRate() > 0.05 {
		t.Errorf("hit rate %.2f on a monotone sweep, want ~0", cache.HitRate())
	}
}

func TestResultLRU(t *testing.T) {
	c := NewResultLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("a = %v %v", v, ok)
	}
	// a is now most recent, so inserting c evicts b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recent entry evicted")
	}
	// Refreshing an existing key replaces the value without growing.
	c.Put("a", 9)
	if v, _ := c.Get("a"); v.(int) != 9 {
		t.Errorf("refresh lost: %v", v)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d/%d, want 3/2", hits, misses)
	}
	// Zero capacity stores nothing.
	off := NewResultLRU(0)
	off.Put("x", 1)
	if _, ok := off.Get("x"); ok || off.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

// TestKLFilterRidesDeltaPath: the KL admission filter's sample crossfilter
// updates through SetFilter, so the drag-style workloads it sees should run
// on the sorted-index delta path, not full scans.
func TestKLFilterRidesDeltaPath(t *testing.T) {
	roads := dataset.Roads(3, 20000)
	cols := []string{"x", "y", "z"}
	f, err := NewKLFilter(0.01, roads, cols)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 8.2, 10.0
	for i := 0; i < 20; i++ {
		ev := QueryEvent{
			Moved:  0,
			Ranges: [][2]float64{{lo + float64(i)*0.01, hi}, {56.5, 57.7}, {-10, 200}},
		}
		f.Admit(ev)
	}
	delta, _ := f.sample.ScanStats()
	if delta == 0 {
		t.Error("KL filter sample never took the delta path")
	}
}

// sizedVal reports a fixed size to byte-budgeted caches.
type sizedVal struct{ bytes int64 }

func (s sizedVal) ApproxBytes() int64 { return s.bytes }

// TestByteLRUBudget: the byte budget evicts least-recently-used entries,
// recency protects the working set, and the byte/eviction accounting is
// exact.
func TestByteLRUBudget(t *testing.T) {
	c := NewByteLRU(250, nil)
	var evicted []string
	c.SetOnEvict(func(key string, _ any) { evicted = append(evicted, key) })

	if !c.Put("a", sizedVal{100}) || !c.Put("b", sizedVal{100}) {
		t.Fatal("puts within budget refused")
	}
	if c.Bytes() != 200 || c.Len() != 2 {
		t.Fatalf("bytes/len = %d/%d, want 200/2", c.Bytes(), c.Len())
	}
	// a is LRU; touching it must make b the eviction victim instead.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if !c.Put("c", sizedVal{100}) {
		t.Fatal("c refused")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived the byte budget")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if c.Bytes() != 200 || c.Len() != 2 {
		t.Errorf("post-eviction bytes/len = %d/%d, want 200/2", c.Bytes(), c.Len())
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("onEvict saw %v, want [b]", evicted)
	}
	if c.MaxBytes() != 250 {
		t.Errorf("MaxBytes = %d", c.MaxBytes())
	}
}

// TestByteLRUOversized: a value larger than the entire budget is refused
// without disturbing the resident working set.
func TestByteLRUOversized(t *testing.T) {
	c := NewByteLRU(100, nil)
	if !c.Put("a", sizedVal{60}) {
		t.Fatal("a refused")
	}
	if c.Put("big", sizedVal{101}) {
		t.Error("oversized value accepted")
	}
	if c.Len() != 1 || c.Bytes() != 60 {
		t.Errorf("working set disturbed: len/bytes = %d/%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted to make room for a value that could never fit")
	}
	if c.Evictions() != 0 {
		t.Errorf("evictions = %d, want 0", c.Evictions())
	}
}

// TestByteLRUReplacement: refreshing a key re-charges the new size, fires
// the eviction callback for the displaced value, and can push other
// entries out when the entry grows.
func TestByteLRUReplacement(t *testing.T) {
	c := NewByteLRU(300, nil)
	calls := 0
	c.SetOnEvict(func(string, any) { calls++ })
	c.Put("k", sizedVal{100})
	c.Put("k", sizedVal{250})
	if c.Bytes() != 250 || c.Len() != 1 {
		t.Fatalf("after replacement bytes/len = %d/%d, want 250/1", c.Bytes(), c.Len())
	}
	if calls != 1 {
		t.Errorf("onEvict calls = %d, want 1 (the replaced value)", calls)
	}
	if c.Evictions() != 0 {
		t.Errorf("replacement counted as eviction")
	}
	c.Put("x", sizedVal{50})
	// Growing k to the full budget must evict x, not k itself.
	if !c.Put("k", sizedVal{300}) {
		t.Fatal("full-budget refresh refused")
	}
	if _, ok := c.Get("x"); ok {
		t.Error("x survived k growing to the full budget")
	}
	if c.Bytes() != 300 || c.Len() != 1 || c.Evictions() != 1 {
		t.Errorf("bytes/len/evictions = %d/%d/%d, want 300/1/1", c.Bytes(), c.Len(), c.Evictions())
	}
	if calls != 3 { // two replacements of k plus the eviction of x
		t.Errorf("onEvict calls = %d, want 3", calls)
	}
}

// TestByteLRUDefaultSize: values that don't implement Sized are charged
// the flat default, so entry pressure still exists under a byte budget.
func TestByteLRUDefaultSize(t *testing.T) {
	c := NewByteLRU(128, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2 (3 x 64 bytes over a 128-byte budget)", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("oldest opaque entry survived")
	}
	// Zero budget stores nothing.
	off := NewByteLRU(0, nil)
	if off.Put("x", sizedVal{1}) {
		t.Error("zero-budget cache stored an entry")
	}
}
