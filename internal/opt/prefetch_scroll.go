package opt

import (
	"time"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// ScrollFetchResult measures one prefetching strategy against one user's
// scroll trace (the paper's Figure 10 and Table 8).
type ScrollFetchResult struct {
	Strategy string
	Fetches  int
	// Violations counts scroll events at which the tuples scrolled exceeded
	// the tuples cached — the case study's latency-constraint definition.
	Violations int
	// Waits holds the wait experienced at each violation (time until the
	// cache covered the user's position).
	Waits []time.Duration
}

// Violated reports whether the user perceived any delay.
func (r *ScrollFetchResult) Violated() bool { return r.Violations > 0 }

// MeanWait returns the mean wait across violations (0 with none) — the
// latency series of Figure 10.
func (r *ScrollFetchResult) MeanWait() time.Duration {
	if len(r.Waits) == 0 {
		return 0
	}
	var sum time.Duration
	for _, w := range r.Waits {
		sum += w
	}
	return sum / time.Duration(len(r.Waits))
}

// SimulateEventFetch replays a scroll trace under event-driven prefetching:
// every scroll event checks whether the cached headroom has fallen below
// the strategy's cache limit and, if so, issues an asynchronous fetch of
// fetchTuples (landing exec later). Following the case study, the cache
// limit is the product of the tuples-to-fetch and the query execution time
// — about one tuple of headroom at 80 ms — so every flick's acceleration
// outruns the cache briefly and a violation waits roughly one execution
// time for the in-flight fetch. That is why the paper finds event fetch
// violating for all 15 users at every batch size while its latency stays
// flat near the execution time.
func SimulateEventFetch(events []trace.ScrollEvent, startCached, fetchTuples int, exec time.Duration) *ScrollFetchResult {
	res := &ScrollFetchResult{Strategy: "event"}
	headroom := int(float64(fetchTuples) * exec.Seconds())
	if headroom < 1 {
		headroom = 1
	}
	cached := startCached         // tuples materialized in cache
	inflight := []fetchInFlight{} // outstanding fetches
	covered := startCached        // cached + all in-flight
	for _, ev := range events {
		// Complete fetches that landed before this event.
		keep := inflight[:0]
		for _, f := range inflight {
			if f.done <= ev.At {
				cached += f.tuples
			} else {
				keep = append(keep, f)
			}
		}
		inflight = keep

		pos := ev.ScrollNum + 1 // tuples the user has scrolled past
		if pos > cached {
			res.Violations++
			res.Waits = append(res.Waits, waitFor(pos, cached, inflight, ev.At, fetchTuples, exec))
		}
		// One fetch per event when headroom is low (the per-event check the
		// paper calls a heavy burden on the browser).
		if covered-pos < headroom {
			inflight = append(inflight, fetchInFlight{done: ev.At + exec, tuples: fetchTuples})
			covered += fetchTuples
			res.Fetches++
		}
	}
	return res
}

type fetchInFlight struct {
	done   time.Duration
	tuples int
}

// waitFor computes how long the user at position pos waits from now until
// cached coverage reaches pos, given outstanding fetches; if those are
// insufficient, further sequential fetches are assumed.
func waitFor(pos, cached int, inflight []fetchInFlight, now time.Duration, fetchTuples int, exec time.Duration) time.Duration {
	covered := cached
	var last time.Duration
	for _, f := range inflight {
		covered += f.tuples
		if f.done > last {
			last = f.done
		}
		if covered >= pos {
			return f.done - now
		}
	}
	// Issue additional back-to-back fetches after the last outstanding one.
	for covered < pos {
		if last < now {
			last = now
		}
		last += exec
		covered += fetchTuples
	}
	return last - now
}

// SimulateTimerFetch replays a scroll trace under timer-driven prefetching
// as a discrete-event co-simulation: a tick fires every interval requesting
// fetchTuples tuples, which land exec later; scroll events interleave on
// the same virtual timeline. A violation waits for enough timer ticks to
// cover the deficit, which is why small batches produce the paper's
// tens-of-seconds waits while a batch at the median of maximum scroll speed
// reaches zero latency.
func SimulateTimerFetch(events []trace.ScrollEvent, startCached, fetchTuples int, interval, exec time.Duration) *ScrollFetchResult {
	res := &ScrollFetchResult{Strategy: "timer"}
	if len(events) == 0 || interval <= 0 || fetchTuples <= 0 {
		return res
	}
	var sched vclock.Scheduler
	cached := startCached
	end := events[len(events)-1].At

	// Timer ticks: the fetched batch arrives exec after each tick.
	for tick := interval; tick <= end; tick += interval {
		sched.At(tick+exec, func() { cached += fetchTuples })
		res.Fetches++
	}
	// Scroll events check the cache as they fire. Arrivals scheduled above
	// sort before events at the same instant (FIFO at equal times), which
	// matches a browser delivering the response before the next frame.
	for i := range events {
		ev := events[i]
		sched.At(ev.At, func() {
			pos := ev.ScrollNum + 1
			if pos <= cached {
				return
			}
			res.Violations++
			// The wait ends when enough ticks have landed to cover pos.
			deficit := pos - startCached
			ticks := (deficit + fetchTuples - 1) / fetchTuples
			ready := time.Duration(ticks)*interval + exec
			res.Waits = append(res.Waits, ready-ev.At)
		})
	}
	sched.Run()
	return res
}
