package opt

import "container/list"

// Cache is a fixed-capacity key cache with pluggable admission/eviction,
// used for query results and map tiles. Get reports a hit and updates
// recency (policy permitting); Put inserts.
type Cache interface {
	Name() string
	Get(key string) bool
	Put(key string)
	Len() int
	Stats() (hits, misses int64)
}

// HitRate returns hits/(hits+misses) for a cache, 0 before any access.
func HitRate(c Cache) float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// listCache implements LRU and FIFO over a linked list.
type listCache struct {
	name     string
	capacity int
	lru      bool
	ll       *list.List
	index    map[string]*list.Element
	hits     int64
	misses   int64
}

// NewLRU creates a least-recently-used cache.
func NewLRU(capacity int) Cache {
	return &listCache{name: "lru", capacity: capacity, lru: true, ll: list.New(), index: map[string]*list.Element{}}
}

// NewFIFO creates a first-in-first-out cache.
func NewFIFO(capacity int) Cache {
	return &listCache{name: "fifo", capacity: capacity, ll: list.New(), index: map[string]*list.Element{}}
}

func (c *listCache) Name() string { return c.name }

func (c *listCache) Len() int { return c.ll.Len() }

func (c *listCache) Stats() (int64, int64) { return c.hits, c.misses }

func (c *listCache) Get(key string) bool {
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	if c.lru {
		c.ll.MoveToFront(el)
	}
	return true
}

func (c *listCache) Put(key string) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.index[key]; ok {
		if c.lru {
			c.ll.MoveToFront(el)
		}
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(string))
	}
	c.index[key] = c.ll.PushFront(key)
}
