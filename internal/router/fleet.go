package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datacube"
	"repro/internal/shard"
)

// Config parameterizes a Fleet. The zero value of every tuning knob gets a
// production-shaped default; tests shrink the timing knobs to keep runs
// fast.
type Config struct {
	// Shards is the partition count — one shard child (per replica) each.
	Shards int
	// Replicas is the number of child processes per shard; 0 or 1 means
	// one. With 2+, brush legs route to a per-session affinity replica and
	// hedge to a warm sibling when the affinity replica is slow.
	Replicas int

	// Dataset, Rows, Seed, Mode, Encode describe the served partitioning;
	// children rebuild it deterministically from exactly these values.
	Dataset string
	Rows    int
	Seed    int64
	Mode    shard.Mode
	Encode  bool

	// SnapshotDir, when set, enables warm restarts: children try to mmap
	// their partition snapshot from this directory before falling back to
	// the deterministic rebuild, and cold builds write the snapshot for the
	// slot's next restart. Empty disables snapshots entirely.
	SnapshotDir string

	// ChildArgs is the argv exec'd for each child; empty means re-exec this
	// binary (os.Executable), which works for any host that calls
	// RunChildFromEnv first — including test binaries.
	ChildArgs []string
	// ChildStderr receives the children's stderr; nil discards it.
	ChildStderr io.Writer

	// HealthInterval is the probe cadence (default 50ms); HealthTimeout
	// bounds one probe (default 250ms — a dead child's socket accepts and
	// then hangs, so probes must time out, not error).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// FailThreshold is the consecutive probe failures after which a ready
	// child is killed and restarted (default 3).
	FailThreshold int
	// StartupTimeout bounds a child's build-to-ready window (default 60s).
	StartupTimeout time.Duration
	// BackoffBase/BackoffCap shape the capped jittered exponential restart
	// backoff (defaults 100ms / 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DarkAfter is the consecutive crash count (spawns that died before
	// StableAfter of readiness) that parks a replica dark (default 5);
	// DarkRetry is the slow revival cadence once dark (default 30s).
	DarkAfter   int
	DarkRetry   time.Duration
	StableAfter time.Duration
	// HedgeAfter is how long a gather leg waits on the affinity replica
	// before hedging to a warm sibling (default 25ms); RPCTimeout bounds a
	// leg when the caller brings no deadline (default 10s).
	HedgeAfter time.Duration
	RPCTimeout time.Duration
}

func (c *Config) normalize() error {
	if c.Shards < 1 {
		return fmt.Errorf("router: need at least 1 shard")
	}
	if c.Dataset == "" {
		c.Dataset = "road"
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	// Negative durations are rejected, not silently defaulted: a caller
	// computing a knob (say, a fraction of a deadline) that goes negative
	// has a bug upstream, and a "default" would hide it — worse, a negative
	// value that slipped past defaulting would feed rand.Int63n a
	// non-positive bound in the backoff jitter.
	for name, d := range map[string]time.Duration{
		"HealthInterval": c.HealthInterval,
		"HealthTimeout":  c.HealthTimeout,
		"StartupTimeout": c.StartupTimeout,
		"BackoffBase":    c.BackoffBase,
		"BackoffCap":     c.BackoffCap,
		"DarkRetry":      c.DarkRetry,
		"StableAfter":    c.StableAfter,
		"HedgeAfter":     c.HedgeAfter,
		"RPCTimeout":     c.RPCTimeout,
	} {
		if d < 0 {
			return fmt.Errorf("router: negative %s (%v)", name, d)
		}
	}
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	def(&c.HealthInterval, 50*time.Millisecond)
	def(&c.HealthTimeout, 250*time.Millisecond)
	def(&c.StartupTimeout, 60*time.Second)
	def(&c.BackoffBase, 100*time.Millisecond)
	def(&c.BackoffCap, 2*time.Second)
	def(&c.DarkRetry, 30*time.Second)
	def(&c.StableAfter, 2*time.Second)
	def(&c.HedgeAfter, 25*time.Millisecond)
	def(&c.RPCTimeout, 10*time.Second)
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.DarkAfter <= 0 {
		c.DarkAfter = 5
	}
	return nil
}

// Stats is a fleet counters snapshot.
type Stats struct {
	Shards    int   `json:"shards"`
	Replicas  int   `json:"replicas"`
	Records   int   `json:"records"`
	Spawns    int64 `json:"spawns"`
	Restarts  int64 `json:"restarts"`
	Darks     int64 `json:"dark_events"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// WarmStarts counts generations that came up from a mapped snapshot;
	// the restart-window stats aggregate observed down→ready latencies.
	WarmStarts     int64   `json:"warm_starts"`
	RestartWindows int64   `json:"restart_windows"`
	RestartMeanMS  float64 `json:"restart_mean_ms"`
	RestartMaxMS   float64 `json:"restart_max_ms"`
}

// Fleet supervises Shards×Replicas shard child processes and implements
// the serving layer's Gatherer over them: ScatterBrush fans one filter
// snapshot out (one leg per shard, with per-session affinity and hedging
// across replicas) and assembles the answers into a shard.Gather, so the
// serving layer's ladder sees exactly the coverage semantics the in-process
// coordinator gives it.
type Fleet struct {
	cfg  Config
	dims []datacube.Dim
	reps [][]*replica // [shard][replica]

	client       *http.Client // gather legs
	healthClient *http.Client // probes (separate pool: probes must not queue behind gathers)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool

	recordsMu    sync.Mutex
	shardRecords []int // -1 until the shard first reports
	totalRecords atomic.Int64
	recordsKnown atomic.Bool

	spawns    atomic.Int64
	restarts  atomic.Int64
	darks     atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	warmStarts     atomic.Int64
	restartCount   atomic.Int64
	restartTotalNS atomic.Int64
	restartMaxNS   atomic.Int64
}

// noteRestartWindow records one observed down→ready window.
func (f *Fleet) noteRestartWindow(w time.Duration) {
	f.restartCount.Add(1)
	f.restartTotalNS.Add(int64(w))
	for {
		cur := f.restartMaxNS.Load()
		if int64(w) <= cur || f.restartMaxNS.CompareAndSwap(cur, int64(w)) {
			return
		}
	}
}

// New builds the fleet: one pre-bound loopback listener per replica slot
// (held by the parent across child restarts) and one supervisor goroutine
// per slot, spawning immediately. Returns before any child is ready; use
// WaitReady to block for full coverage.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	dims, err := DatasetDims(cfg.Dataset, cfg.Seed, cfg.Rows)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Fleet{
		cfg:    cfg,
		dims:   dims,
		ctx:    ctx,
		cancel: cancel,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}},
		healthClient: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 2,
			IdleConnTimeout:     30 * time.Second,
		}},
		shardRecords: make([]int, cfg.Shards),
	}
	for i := range f.shardRecords {
		f.shardRecords[i] = -1
	}
	for s := 0; s < cfg.Shards; s++ {
		var row []*replica
		for i := 0; i < cfg.Replicas; i++ {
			rep, err := f.newReplica(s, i)
			if err != nil {
				f.Close()
				return nil, err
			}
			row = append(row, rep)
			f.wg.Add(1)
			go rep.supervise()
		}
		f.reps = append(f.reps, row)
	}
	return f, nil
}

// newReplica binds the slot's loopback listener and dups it for passing
// across exec. The net.Listener itself is closed right away — the dup keeps
// the socket open and LISTENING for the fleet's whole life, which is what
// lets connections queue in the kernel backlog while a child restarts.
func (f *Fleet) newReplica(shardIdx, idx int) (*replica, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("router: shard %d replica %d: %w", shardIdx, idx, err)
	}
	file, err := ln.(*net.TCPListener).File()
	addr := ln.Addr().String()
	ln.Close()
	if err != nil {
		return nil, fmt.Errorf("router: shard %d replica %d: dup listener: %w", shardIdx, idx, err)
	}
	return &replica{fleet: f, shard: shardIdx, idx: idx, addr: addr, ln: file}, nil
}

func (f *Fleet) replicas() int { return f.cfg.Replicas }

// Dims returns the global cube dimensions the fleet serves — what the
// serving layer passes as GatherDims.
func (f *Fleet) Dims() []datacube.Dim { return f.dims }

// Records returns the total record count across all shards (0 until every
// shard has reported once).
func (f *Fleet) Records() int { return int(f.totalRecords.Load()) }

// ShardRecords returns shard i's partition record count, or 0 if it has
// never reported — tests compute exact expected covered fractions from it.
func (f *Fleet) ShardRecords(i int) int {
	f.recordsMu.Lock()
	defer f.recordsMu.Unlock()
	if f.shardRecords[i] < 0 {
		return 0
	}
	return f.shardRecords[i]
}

// ReplicaAddr returns the stable address of a replica slot (chaos and tests
// target children through it).
func (f *Fleet) ReplicaAddr(shardIdx, idx int) string { return f.reps[shardIdx][idx].addr }

// ReplicaPID returns the replica's current child PID (0 while down).
func (f *Fleet) ReplicaPID(shardIdx, idx int) int { return f.reps[shardIdx][idx].currentPID() }

// AffinityReplica returns the replica index a session's gather legs prefer
// — a stable hash, so one session's brushes keep hitting the same warm
// replica (its kernel caches, its connection pool) across requests.
func (f *Fleet) AffinityReplica(shardIdx int, session string) int {
	if f.cfg.Replicas == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(session); i++ {
		h ^= uint64(session[i])
		h *= 1099511628211
	}
	h ^= uint64(shardIdx) * 0x9e3779b97f4a7c15
	return int(h % uint64(f.cfg.Replicas))
}

// noteShardRecords pins one shard's partition size the first time any of
// its replicas reports ready; once every shard is known the fleet total is
// published and coverage fractions become exact.
func (f *Fleet) noteShardRecords(shardIdx, records int) {
	f.recordsMu.Lock()
	defer f.recordsMu.Unlock()
	if f.shardRecords[shardIdx] < 0 {
		f.shardRecords[shardIdx] = records
	}
	total := 0
	for _, n := range f.shardRecords {
		if n < 0 {
			return
		}
		total += n
	}
	f.totalRecords.Store(int64(total))
	f.recordsKnown.Store(true)
}

// Health implements serve.HealthReporter: ready means every shard has at
// least one serving replica; the detail is the full per-replica breakdown.
func (f *Fleet) Health() (bool, any) {
	ready := true
	detail := make([]ReplicaHealth, 0, f.cfg.Shards*f.cfg.Replicas)
	for _, row := range f.reps {
		shardUp := false
		for _, rep := range row {
			h := rep.health()
			detail = append(detail, h)
			if h.State == StateReady.String() {
				shardUp = true
			}
		}
		if !shardUp {
			ready = false
		}
	}
	if !f.recordsKnown.Load() {
		ready = false
	}
	return ready, detail
}

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	s := Stats{
		Shards:         f.cfg.Shards,
		Replicas:       f.cfg.Replicas,
		Records:        f.Records(),
		Spawns:         f.spawns.Load(),
		Restarts:       f.restarts.Load(),
		Darks:          f.darks.Load(),
		Hedges:         f.hedges.Load(),
		HedgeWins:      f.hedgeWins.Load(),
		WarmStarts:     f.warmStarts.Load(),
		RestartWindows: f.restartCount.Load(),
		RestartMaxMS:   float64(f.restartMaxNS.Load()) / float64(time.Millisecond),
	}
	if s.RestartWindows > 0 {
		s.RestartMeanMS = float64(f.restartTotalNS.Load()) / float64(s.RestartWindows) / float64(time.Millisecond)
	}
	return s
}

// WaitReady blocks until every shard has a ready replica and the fleet's
// record total is pinned, or ctx expires.
func (f *Fleet) WaitReady(ctx context.Context) error {
	for {
		if ready, _ := f.Health(); ready {
			return nil
		}
		select {
		case <-ctx.Done():
			ready, detail := f.Health()
			if ready {
				return nil
			}
			return fmt.Errorf("router: fleet not ready: %w (%+v)", ctx.Err(), detail)
		case <-f.ctx.Done():
			return fmt.Errorf("router: fleet closed")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close stops the supervisors, kills and reaps every child, and releases
// the parent-held listeners. Idempotent; implements the Gatherer lifecycle
// the serving layer drives from Drain.
func (f *Fleet) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.cancel()
	f.wg.Wait()
	for _, row := range f.reps {
		for _, rep := range row {
			rep.ln.Close()
		}
	}
	f.client.CloseIdleConnections()
	f.healthClient.CloseIdleConnections()
}

// ScatterBrush implements the serving layer's Gatherer across the process
// boundary: one leg per shard (affinity replica first, hedged to a warm
// sibling when slow), answers merged into a shard.Gather whose coverage
// accounting is exactly the in-process coordinator's — a dead shard's
// records fall out of the covered fraction, and the serving ladder degrades
// on it the same way.
func (f *Fleet) ScatterBrush(ctx context.Context, session string, filters []*datacube.Range) (*shard.Gather, error) {
	if f.closed.Load() {
		return nil, fmt.Errorf("router: fleet closed")
	}
	if !f.recordsKnown.Load() {
		// Without every shard's record count the covered fraction of a
		// partial gather would be wrong; refuse rather than misreport.
		return nil, fmt.Errorf("router: fleet still coming up (coverage totals unknown)")
	}
	ranges := make([]*[2]float64, len(filters))
	for i, rg := range filters {
		if rg != nil {
			ranges[i] = &[2]float64{rg.Lo, rg.Hi}
		}
	}
	body, err := json.Marshal(partialRequest{Ranges: ranges})
	if err != nil {
		return nil, err
	}
	// Callers without a deadline (the ladder's no-deadlines baseline) still
	// must not hang on a dead shard forever: bound the legs by RPCTimeout.
	legCtx := ctx
	if legCtx == nil {
		legCtx = context.Background()
	}
	if _, ok := legCtx.Deadline(); !ok {
		var cancel context.CancelFunc
		legCtx, cancel = context.WithTimeout(legCtx, f.cfg.RPCTimeout)
		defer cancel()
	}

	answers := make([]*shard.Answer, f.cfg.Shards)
	errs := make([]error, f.cfg.Shards)
	var wg sync.WaitGroup
	for s := 0; s < f.cfg.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			answers[s], errs[s] = f.shardLeg(legCtx, s, session, body)
		}(s)
	}
	wg.Wait()
	return shard.NewGather(answers, errs, f.Records()), nil
}

// legResult tags a replica's answer with where it came from, so hedge wins
// are countable.
type legResult struct {
	ans    *shard.Answer
	err    error
	hedged bool
}

// shardLeg gathers one shard's partial: POST to the session's affinity
// replica, hedge to a warm sibling after HedgeAfter (or immediately when
// the primary fails fast), first success wins. Replicas that are not
// serving are skipped up front — supervision state is the router's cheap
// failure detector, saving the timeout on provably dead children.
func (f *Fleet) shardLeg(ctx context.Context, shardIdx int, session string, body []byte) (*shard.Answer, error) {
	order := f.legOrder(shardIdx, session)
	if len(order) == 0 {
		return nil, fmt.Errorf("router: shard %d has no serving replica", shardIdx)
	}
	ch := make(chan legResult, len(order))
	post := func(rep *replica, hedged bool) {
		ans, err := f.postPartial(ctx, rep, body)
		ch <- legResult{ans: ans, err: err, hedged: hedged}
	}
	go post(order[0], false)
	inflight := 1
	hedged := false

	var hedgeC <-chan time.Time
	if len(order) > 1 {
		delay := f.cfg.HedgeAfter
		if dl, ok := ctx.Deadline(); ok {
			// Never hedge later than half the remaining budget: a hedge
			// that cannot finish before the deadline is pure waste.
			if rem := time.Until(dl) / 2; rem < delay {
				delay = rem
			}
		}
		if delay < 0 {
			delay = 0
		}
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				if res.hedged {
					f.hedgeWins.Add(1)
				}
				return res.ans, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			inflight--
			if inflight > 0 {
				continue
			}
			if !hedged && len(order) > 1 {
				// The primary failed fast (connection reset by a dying
				// child) with the sibling never tried: fail over now.
				hedged = true
				f.hedges.Add(1)
				go post(order[1], true)
				inflight = 1
				continue
			}
			return nil, firstErr
		case <-hedgeC:
			hedgeC = nil
			if !hedged {
				hedged = true
				f.hedges.Add(1)
				go post(order[1], true)
				inflight++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// legOrder lists the shard's serving replicas, affinity replica first. A
// replica whose supervisor has it starting/restarting/dark is excluded; a
// ready-or-merely-unhealthy one still gets a chance (its probe failures may
// be a blip the RPC survives).
func (f *Fleet) legOrder(shardIdx int, session string) []*replica {
	row := f.reps[shardIdx]
	aff := f.AffinityReplica(shardIdx, session)
	order := make([]*replica, 0, len(row))
	for i := 0; i < len(row); i++ {
		rep := row[(aff+i)%len(row)]
		switch rep.getState() {
		case StateReady, StateUnhealthy:
			order = append(order, rep)
		}
	}
	return order
}

// postPartial runs one replica RPC and decodes the raw partial into a
// shard.Answer.
func (f *Fleet) postPartial(ctx context.Context, rep *replica, body []byte) (*shard.Answer, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+rep.addr+"/v1/partial", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("router: shard %d replica %d: %s: %s", rep.shard, rep.idx, resp.Status, msg)
	}
	var pr partialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	if pr.Shard != rep.shard {
		return nil, fmt.Errorf("router: shard %d replica %d answered as shard %d", rep.shard, rep.idx, pr.Shard)
	}
	return &shard.Answer{Records: pr.Records, Total: pr.Total, Histograms: pr.Histograms}, nil
}
