package router

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"time"
)

// State is a replica's supervision state.
type State int32

const (
	// StateStarting: the child is spawned (or spawning) and has not yet
	// answered ready; the dataset build is in flight.
	StateStarting State = iota
	// StateReady: the child answers /readyz and serves partials.
	StateReady
	// StateUnhealthy: consecutive health probes failed; the supervisor is
	// about to kill and restart the child.
	StateUnhealthy
	// StateRestarting: the child exited; the supervisor is waiting out the
	// backoff before the next spawn.
	StateRestarting
	// StateDark: the replica crash-looped — every recent spawn died before
	// stabilizing — so the supervisor stopped hot-looping and parked it,
	// re-probing only at the slow DarkRetry cadence. Routing skips dark
	// replicas; their shard's records fall out of coverage.
	StateDark
	// StateStopped: the fleet is closed.
	StateStopped
)

// String names the state for health reports.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateUnhealthy:
		return "unhealthy"
	case StateRestarting:
		return "restarting"
	case StateDark:
		return "dark"
	case StateStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// replica is one supervised shard child process slot: a stable address and
// parent-held listener, plus the mutable process state its supervisor
// goroutine drives.
type replica struct {
	fleet *Fleet
	shard int
	idx   int // replica index within the shard
	addr  string
	ln    *os.File // parent's dup of the listening socket, re-passed on every spawn

	mu             sync.Mutex
	state          State
	generation     int // increments per spawn; children echo it back
	pid            int
	consecFails    int
	lastTransition time.Time
	records        int
	lastErr        string
}

// setState transitions the replica, stamping the transition time. fails
// resets on every transition except unhealthy accrual, which is tracked
// separately via noteProbe.
func (r *replica) setState(s State, errText string) {
	r.mu.Lock()
	if r.state != s {
		r.lastTransition = time.Now()
	}
	r.state = s
	if errText != "" {
		r.lastErr = errText
	}
	r.mu.Unlock()
}

func (r *replica) getState() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *replica) currentPID() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pid
}

// ReplicaHealth is one replica's externally visible supervision state — the
// per-shard breakdown /readyz embeds.
type ReplicaHealth struct {
	Shard            int       `json:"shard"`
	Replica          int       `json:"replica"`
	State            string    `json:"state"`
	PID              int       `json:"pid,omitempty"`
	Generation       int       `json:"generation"`
	ConsecutiveFails int       `json:"consecutive_fails"`
	LastTransition   time.Time `json:"last_transition"`
	Records          int       `json:"records,omitempty"`
	LastError        string    `json:"last_error,omitempty"`
}

func (r *replica) health() ReplicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaHealth{
		Shard:            r.shard,
		Replica:          r.idx,
		State:            r.state.String(),
		PID:              r.pid,
		Generation:       r.generation,
		ConsecutiveFails: r.consecFails,
		LastTransition:   r.lastTransition,
		Records:          r.records,
		LastError:        r.lastErr,
	}
}

// spawn starts one child process generation: the spec rides ChildEnv, the
// pre-bound listener rides fd 3, and the child is hard-wired to die with
// the parent (pdeathsig on Linux) so no fleet crash strands shard
// processes.
func (r *replica) spawn() (*exec.Cmd, <-chan error, error) {
	f := r.fleet
	r.mu.Lock()
	r.generation++
	gen := r.generation
	r.mu.Unlock()

	spec := ChildSpec{
		Dataset:     f.cfg.Dataset,
		Rows:        f.cfg.Rows,
		Seed:        f.cfg.Seed,
		Shard:       r.shard,
		Of:          f.cfg.Shards,
		Mode:        f.cfg.Mode,
		Encode:      f.cfg.Encode,
		Parallelism: defaultParallelism(f.cfg.Shards * f.replicas()),
		Generation:  gen,
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	argv := f.cfg.ChildArgs
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, nil, fmt.Errorf("router: no child binary: %w", err)
		}
		argv = []string{exe}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), ChildEnv+"="+string(payload))
	cmd.ExtraFiles = []*os.File{r.ln}
	cmd.Stderr = f.cfg.ChildStderr
	setPdeathsig(cmd)
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	r.pid = cmd.Process.Pid
	r.mu.Unlock()
	f.spawns.Add(1)
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	return cmd, waitCh, nil
}

// probe health-checks the child over its own socket with a short timeout —
// a dead or frozen child hangs the connection (the parent-held listener
// keeps accepting), so probes must give up fast rather than block.
func (r *replica) probe() (ready bool, records int) {
	ctx, cancel := context.WithTimeout(r.fleet.ctx, r.fleet.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+r.addr+"/readyz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := r.fleet.healthClient.Do(req)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	var body childReady
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, 0
	}
	if resp.StatusCode != http.StatusOK || body.Status != "ready" || body.Shard != r.shard {
		return false, 0
	}
	return true, body.Records
}

// supervise is the replica's lifecycle loop: spawn → health-monitor →
// (kill|exit) → backoff → respawn, with crash-loop detection parking the
// replica dark instead of hot-looping. Runs until the fleet closes.
func (r *replica) supervise() {
	f := r.fleet
	defer f.wg.Done()
	crashes := 0
	for f.ctx.Err() == nil {
		r.setState(StateStarting, "")
		cmd, waitCh, err := r.spawn()
		if err != nil {
			crashes++
			r.setState(StateRestarting, err.Error())
			if r.parkOrBackoff(&crashes) {
				return
			}
			continue
		}

		born := time.Now()
		becameReady := false
		ticker := time.NewTicker(f.cfg.HealthInterval)
	monitor:
		for {
			select {
			case <-f.ctx.Done():
				ticker.Stop()
				r.terminate(cmd, waitCh)
				r.setState(StateStopped, "")
				return
			case err := <-waitCh:
				ticker.Stop()
				msg := "exited"
				if err != nil {
					msg = err.Error()
				}
				r.noteDown(msg)
				break monitor
			case <-ticker.C:
				ok, records := r.probe()
				if ok {
					r.noteReady(records, becameReady)
					becameReady = true
					continue
				}
				fails := r.noteFail()
				switch {
				case becameReady && fails >= f.cfg.FailThreshold:
					// Alive but not answering (frozen, wedged): treat like a
					// crash — kill it and let the exit arm restart it.
					r.setState(StateUnhealthy, "health checks failing")
					killProcess(cmd)
				case !becameReady && time.Since(born) > f.cfg.StartupTimeout:
					r.setState(StateUnhealthy, "startup timeout")
					killProcess(cmd)
				}
			}
		}

		// The child is gone. A spawn that served stably long enough resets
		// the crash-loop counter; anything else counts toward dark.
		if becameReady && time.Since(born) >= f.cfg.StableAfter {
			crashes = 0
		} else {
			crashes++
		}
		if f.ctx.Err() != nil {
			r.setState(StateStopped, "")
			return
		}
		f.restarts.Add(1)
		if r.parkOrBackoff(&crashes) {
			return
		}
	}
	r.setState(StateStopped, "")
}

// parkOrBackoff waits out the restart backoff — or, when the replica has
// crash-looped, parks it dark for the much longer DarkRetry. Reports true
// when the fleet closed during the wait.
func (r *replica) parkOrBackoff(crashes *int) bool {
	f := r.fleet
	var wait time.Duration
	if *crashes >= f.cfg.DarkAfter {
		r.setState(StateDark, "")
		f.darks.Add(1)
		wait = f.cfg.DarkRetry
		// One more chance per DarkRetry: leave the counter at the brink so
		// a failed revival parks again immediately instead of re-earning
		// DarkAfter fast crashes.
		*crashes = f.cfg.DarkAfter - 1
	} else {
		r.setState(StateRestarting, "")
		// Capped exponential backoff with full jitter: base·2^(crashes-1),
		// then a uniform draw over [backoff, 2·backoff) to decorrelate
		// replicas restarting off the same failure.
		backoff := f.cfg.BackoffBase
		for i := 1; i < *crashes; i++ {
			backoff *= 2
			if backoff >= f.cfg.BackoffCap {
				break
			}
		}
		if backoff > f.cfg.BackoffCap {
			backoff = f.cfg.BackoffCap
		}
		wait = backoff + time.Duration(rand.Int63n(int64(backoff)))
	}
	select {
	case <-f.ctx.Done():
		r.setState(StateStopped, "")
		return true
	case <-time.After(wait):
		return false
	}
}

// noteReady marks the replica serving and pins its record count; first
// readiness of a generation reports records to the fleet's coverage total.
func (r *replica) noteReady(records int, wasReady bool) {
	r.mu.Lock()
	r.consecFails = 0
	if r.state != StateReady {
		r.lastTransition = time.Now()
	}
	r.state = StateReady
	r.records = records
	r.lastErr = ""
	r.mu.Unlock()
	if !wasReady {
		r.fleet.noteShardRecords(r.shard, records)
	}
}

// noteFail accrues one failed health probe and returns the consecutive
// count. The state only flips once the supervisor decides to act — a single
// missed probe under load is not an incident.
func (r *replica) noteFail() int {
	r.mu.Lock()
	r.consecFails++
	n := r.consecFails
	r.mu.Unlock()
	return n
}

// noteDown marks the replica's process gone.
func (r *replica) noteDown(msg string) {
	r.mu.Lock()
	if r.state != StateRestarting {
		r.lastTransition = time.Now()
	}
	r.state = StateRestarting
	r.pid = 0
	r.lastErr = msg
	r.mu.Unlock()
}

// terminate ends the current child on fleet close: SIGKILL (children are
// stateless — there is nothing to flush) and reap. SIGKILL also takes down
// SIGSTOPped children, which a graceful signal would leave frozen forever.
func (r *replica) terminate(cmd *exec.Cmd, waitCh <-chan error) {
	killProcess(cmd)
	<-waitCh
	r.mu.Lock()
	r.pid = 0
	r.mu.Unlock()
}

// killProcess SIGKILLs the child if it is still running; errors (already
// exited) are irrelevant.
func killProcess(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}
