package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"time"
)

// State is a replica's supervision state.
type State int32

const (
	// StateStarting: the child is spawned (or spawning) and has not yet
	// answered ready; the dataset build is in flight.
	StateStarting State = iota
	// StateReady: the child answers /readyz and serves partials.
	StateReady
	// StateUnhealthy: consecutive health probes failed; the supervisor is
	// about to kill and restart the child.
	StateUnhealthy
	// StateRestarting: the child exited; the supervisor is waiting out the
	// backoff before the next spawn.
	StateRestarting
	// StateDark: the replica crash-looped — every recent spawn died before
	// stabilizing — so the supervisor stopped hot-looping and parked it,
	// re-probing only at the slow DarkRetry cadence. Routing skips dark
	// replicas; their shard's records fall out of coverage.
	StateDark
	// StateStopped: the fleet is closed.
	StateStopped
)

// String names the state for health reports.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateUnhealthy:
		return "unhealthy"
	case StateRestarting:
		return "restarting"
	case StateDark:
		return "dark"
	case StateStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// replica is one supervised shard child process slot: a stable address and
// parent-held listener, plus the mutable process state its supervisor
// goroutine drives.
type replica struct {
	fleet *Fleet
	shard int
	idx   int // replica index within the shard
	addr  string
	ln    *os.File // parent's dup of the listening socket, re-passed on every spawn

	mu             sync.Mutex
	state          State
	generation     int // increments per spawn; children echo it back
	pid            int
	consecFails    int
	lastTransition time.Time
	records        int
	lastErr        string
	warmStart      bool      // current generation came up from a snapshot
	downAt         time.Time // when the previous child was observed gone
	lastRestart    time.Duration
}

// setState transitions the replica, stamping the transition time. fails
// resets on every transition except unhealthy accrual, which is tracked
// separately via noteProbe.
func (r *replica) setState(s State, errText string) {
	r.mu.Lock()
	if r.state != s {
		r.lastTransition = time.Now()
	}
	r.state = s
	if errText != "" {
		r.lastErr = errText
	}
	r.mu.Unlock()
}

func (r *replica) getState() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *replica) currentPID() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pid
}

// ReplicaHealth is one replica's externally visible supervision state — the
// per-shard breakdown /readyz embeds.
type ReplicaHealth struct {
	Shard            int       `json:"shard"`
	Replica          int       `json:"replica"`
	State            string    `json:"state"`
	PID              int       `json:"pid,omitempty"`
	Generation       int       `json:"generation"`
	ConsecutiveFails int       `json:"consecutive_fails"`
	LastTransition   time.Time `json:"last_transition"`
	Records          int       `json:"records,omitempty"`
	LastError        string    `json:"last_error,omitempty"`
	// WarmStart reports the current generation came up from a mapped
	// snapshot; LastRestartMS is the last observed down→ready window.
	WarmStart     bool    `json:"warm_start,omitempty"`
	LastRestartMS float64 `json:"last_restart_ms,omitempty"`
}

func (r *replica) health() ReplicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaHealth{
		Shard:            r.shard,
		Replica:          r.idx,
		State:            r.state.String(),
		PID:              r.pid,
		Generation:       r.generation,
		ConsecutiveFails: r.consecFails,
		LastTransition:   r.lastTransition,
		Records:          r.records,
		LastError:        r.lastErr,
		WarmStart:        r.warmStart,
		LastRestartMS:    float64(r.lastRestart) / float64(time.Millisecond),
	}
}

// spawn starts one child process generation: the spec rides ChildEnv, the
// pre-bound listener rides fd 3, and the child is hard-wired to die with
// the parent (pdeathsig on Linux) so no fleet crash strands shard
// processes.
func (r *replica) spawn() (*exec.Cmd, <-chan error, error) {
	f := r.fleet
	r.mu.Lock()
	r.generation++
	gen := r.generation
	r.mu.Unlock()

	spec := ChildSpec{
		Dataset:     f.cfg.Dataset,
		Rows:        f.cfg.Rows,
		Seed:        f.cfg.Seed,
		Shard:       r.shard,
		Of:          f.cfg.Shards,
		Mode:        f.cfg.Mode,
		Encode:      f.cfg.Encode,
		Parallelism: defaultParallelism(f.cfg.Shards * f.replicas()),
		Generation:  gen,
		SnapshotDir: f.cfg.SnapshotDir,
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	argv := f.cfg.ChildArgs
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, nil, fmt.Errorf("router: no child binary: %w", err)
		}
		argv = []string{exe}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), ChildEnv+"="+string(payload))
	cmd.ExtraFiles = []*os.File{r.ln}
	cmd.Stderr = f.cfg.ChildStderr
	setPdeathsig(cmd)
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	r.pid = cmd.Process.Pid
	r.mu.Unlock()
	f.spawns.Add(1)
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	return cmd, waitCh, nil
}

// probe health-checks the child over its own socket with a short timeout —
// a dead or frozen child hangs the connection (the parent-held listener
// keeps accepting), so probes must give up fast rather than block. errMsg
// carries the failure detail the health report surfaces as last_error.
func (r *replica) probe() (ready bool, body childReady, errMsg string) {
	ctx, cancel := context.WithTimeout(r.fleet.ctx, r.fleet.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+r.addr+"/readyz", nil)
	if err != nil {
		return false, body, err.Error()
	}
	resp, err := r.fleet.healthClient.Do(req)
	if err != nil {
		return false, body, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Status first: a non-200 is "not ready" no matter what the body
		// holds, and the status itself is the detail worth reporting — a
		// 503 with a non-JSON body must not masquerade as a decode failure.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return false, body, fmt.Sprintf("readyz %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, body, "readyz decode: " + err.Error()
	}
	if body.Status != "ready" || body.Shard != r.shard {
		return false, body, fmt.Sprintf("readyz: status %q from shard %d", body.Status, body.Shard)
	}
	return true, body, ""
}

// supervise is the replica's lifecycle loop: spawn → health-monitor →
// (kill|exit) → backoff → respawn, with crash-loop detection parking the
// replica dark instead of hot-looping. Runs until the fleet closes.
func (r *replica) supervise() {
	f := r.fleet
	defer f.wg.Done()
	crashes := 0
	for f.ctx.Err() == nil {
		r.setState(StateStarting, "")
		cmd, waitCh, err := r.spawn()
		if err != nil {
			crashes++
			r.setState(StateRestarting, err.Error())
			if r.parkOrBackoff(&crashes) {
				return
			}
			continue
		}

		born := time.Now()
		becameReady := false
		// Probe immediately after spawn: a fast child (warm start, small
		// dataset) must become routable in milliseconds, not after a full
		// HealthInterval tick. Until first readiness the re-probe delay
		// ramps exponentially from 1ms up to HealthInterval — cheap while
		// the answer is "building", prompt the moment it flips — then
		// settles into the steady HealthInterval cadence.
		startupDelay := time.Duration(0)
		timer := time.NewTimer(0)
	monitor:
		for {
			select {
			case <-f.ctx.Done():
				timer.Stop()
				r.terminate(cmd, waitCh)
				r.setState(StateStopped, "")
				return
			case err := <-waitCh:
				timer.Stop()
				msg := "exited"
				if err != nil {
					msg = err.Error()
				}
				r.noteDown(msg)
				break monitor
			case <-timer.C:
				ok, body, errMsg := r.probe()
				if ok {
					r.noteReady(body, becameReady)
					becameReady = true
					timer.Reset(f.cfg.HealthInterval)
					continue
				}
				fails := r.noteFail(errMsg)
				switch {
				case becameReady && fails >= f.cfg.FailThreshold:
					// Alive but not answering (frozen, wedged): treat like a
					// crash — kill it and let the exit arm restart it.
					r.setState(StateUnhealthy, "health checks failing")
					killProcess(cmd)
				case !becameReady && time.Since(born) > f.cfg.StartupTimeout:
					r.setState(StateUnhealthy, "startup timeout")
					killProcess(cmd)
				}
				if becameReady {
					timer.Reset(f.cfg.HealthInterval)
				} else {
					if startupDelay == 0 {
						startupDelay = time.Millisecond
					} else if startupDelay < f.cfg.HealthInterval {
						startupDelay *= 2
					}
					if startupDelay > f.cfg.HealthInterval {
						startupDelay = f.cfg.HealthInterval
					}
					timer.Reset(startupDelay)
				}
			}
		}

		// The child is gone. A spawn that served stably long enough resets
		// the crash-loop counter; anything else counts toward dark.
		if becameReady && time.Since(born) >= f.cfg.StableAfter {
			crashes = 0
		} else {
			crashes++
		}
		if f.ctx.Err() != nil {
			r.setState(StateStopped, "")
			return
		}
		f.restarts.Add(1)
		if r.parkOrBackoff(&crashes) {
			return
		}
	}
	r.setState(StateStopped, "")
}

// parkOrBackoff waits out the restart backoff — or, when the replica has
// crash-looped, parks it dark for the much longer DarkRetry. Reports true
// when the fleet closed during the wait.
func (r *replica) parkOrBackoff(crashes *int) bool {
	f := r.fleet
	var wait time.Duration
	if *crashes >= f.cfg.DarkAfter {
		r.setState(StateDark, "")
		f.darks.Add(1)
		wait = f.cfg.DarkRetry
		// One more chance per DarkRetry: leave the counter at the brink so
		// a failed revival parks again immediately instead of re-earning
		// DarkAfter fast crashes.
		*crashes = f.cfg.DarkAfter - 1
	} else {
		r.setState(StateRestarting, "")
		wait = backoffWait(f.cfg.BackoffBase, f.cfg.BackoffCap, *crashes)
	}
	select {
	case <-f.ctx.Done():
		r.setState(StateStopped, "")
		return true
	case <-time.After(wait):
		return false
	}
}

// backoffWait computes the capped exponential restart backoff with full
// jitter: base·2^(crashes-1) capped at cap, then a uniform draw over
// [wait, 2·wait) to decorrelate replicas restarting off the same failure.
// A non-positive base is clamped to 1ms — callers can legitimately hand a
// zeroed config straight through, and rand.Int63n panics on n <= 0.
func backoffWait(base, cap time.Duration, crashes int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	backoff := base
	for i := 1; i < crashes; i++ {
		backoff *= 2
		if backoff >= cap {
			break
		}
	}
	if backoff > cap {
		backoff = cap
	}
	return backoff + time.Duration(rand.Int63n(int64(backoff)))
}

// noteReady marks the replica serving and pins its record count; first
// readiness of a generation reports records to the fleet's coverage total,
// counts the warm start, and closes out the down→ready restart window.
func (r *replica) noteReady(body childReady, wasReady bool) {
	r.mu.Lock()
	r.consecFails = 0
	if r.state != StateReady {
		r.lastTransition = time.Now()
	}
	r.state = StateReady
	r.records = body.Records
	r.lastErr = ""
	r.warmStart = body.WarmStart
	var window time.Duration
	if !wasReady && !r.downAt.IsZero() {
		window = time.Since(r.downAt)
		r.lastRestart = window
		r.downAt = time.Time{}
	}
	r.mu.Unlock()
	if !wasReady {
		r.fleet.noteShardRecords(r.shard, body.Records)
		if body.WarmStart {
			r.fleet.warmStarts.Add(1)
		}
		if window > 0 {
			r.fleet.noteRestartWindow(window)
		}
	}
}

// noteFail accrues one failed health probe and returns the consecutive
// count. The state only flips once the supervisor decides to act — a single
// missed probe under load is not an incident — but the probe's failure
// detail is surfaced right away so /readyz explains a stuck replica.
func (r *replica) noteFail(errMsg string) int {
	r.mu.Lock()
	r.consecFails++
	n := r.consecFails
	if errMsg != "" {
		r.lastErr = errMsg
	}
	r.mu.Unlock()
	return n
}

// noteDown marks the replica's process gone and opens the restart window
// that noteReady closes at the next generation's first readiness.
func (r *replica) noteDown(msg string) {
	r.mu.Lock()
	if r.state != StateRestarting {
		r.lastTransition = time.Now()
	}
	r.state = StateRestarting
	r.pid = 0
	r.lastErr = msg
	if r.downAt.IsZero() {
		r.downAt = time.Now()
	}
	r.mu.Unlock()
}

// terminate ends the current child on fleet close: SIGKILL (children are
// stateless — there is nothing to flush) and reap. SIGKILL also takes down
// SIGSTOPped children, which a graceful signal would leave frozen forever.
func (r *replica) terminate(cmd *exec.Cmd, waitCh <-chan error) {
	killProcess(cmd)
	<-waitCh
	r.mu.Lock()
	r.pid = 0
	r.mu.Unlock()
}

// killProcess SIGKILLs the child if it is still running; errors (already
// exited) are irrelevant.
func killProcess(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}
