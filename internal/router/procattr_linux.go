//go:build linux

package router

import (
	"os/exec"
	"syscall"
)

// setPdeathsig wires the kernel to SIGKILL the child the moment its parent
// dies — the last-ditch orphan guard behind the supervisor's own cleanup.
// SIGKILL rather than SIGTERM because a child frozen by SIGSTOP chaos would
// never handle anything gentler.
func setPdeathsig(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Pdeathsig = syscall.SIGKILL
}
