// Package router is the multi-process sharding layer: a Fleet supervises N
// idevald shard child processes (spawn, health-check, restart with capped
// jittered backoff, crash-loop darkening), routes brush traffic with
// per-session replica affinity, and gathers per-shard partial histograms
// with merge-by-addition exactly as internal/shard does in-process — so the
// serving layer's coalescing, degradation ladder, and metrics work
// unchanged across the process boundary.
//
// The process model is socket-activation style: the parent creates each
// replica's listener once and passes a dup across exec, so a shard's
// address is stable across restarts and the parent-held socket keeps
// accepting (into the kernel backlog) while a child is down — a restarting
// shard picks its pending connections back up instead of refusing them.
// Children are stateless: each one deterministically rebuilds the full
// dataset from (dataset, seed, rows), partitions it exactly as
// shard.Partition does, keeps only its own partition, and serves raw
// unscaled partial histograms. Statelessness is what makes SIGKILL a
// recoverable event rather than data loss, and determinism is what makes a
// restarted shard re-fence onto exactly the records it owned before. With a
// SnapshotDir configured, the rebuild is a cold path only: the first build
// of a slot persists the partition as an mmap-able colstore snapshot, and
// every later restart maps it read-only and is ready in O(columns) — the
// fence (dataset, seed, rows, mode, shard, encode) plus the snapshot
// checksum guarantee a warm start serves byte-identical answers or falls
// back to the rebuild.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/colstore"
	"repro/internal/crossfilter"
	"repro/internal/datacube"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/storage"
)

// ChildEnv is the environment variable that flips a binary into shard-child
// mode: when set, the process is a re-exec'd shard child and must serve its
// partition instead of running its own main. cmd/idevald, cmd/loadgen, and
// the router test binaries all call RunChildFromEnv first thing, so any of
// them can host a child.
const ChildEnv = "IDEVAL_ROUTER_CHILD"

// childListenFD is the file descriptor number the parent passes the
// pre-bound listener on (the first ExtraFiles slot after stdio).
const childListenFD = 3

// ChildSpec tells a shard child which partition it owns. It rides ChildEnv
// as JSON across exec.
type ChildSpec struct {
	Dataset     string     `json:"dataset"`
	Rows        int        `json:"rows"`
	Seed        int64      `json:"seed"`
	Shard       int        `json:"shard"`
	Of          int        `json:"of"`
	Mode        shard.Mode `json:"mode"`
	Encode      bool       `json:"encode,omitempty"`
	Parallelism int        `json:"parallelism,omitempty"`
	Generation  int        `json:"generation"`

	// SnapshotDir, when set, enables warm restarts: the child first tries
	// to mmap its partition snapshot from this directory (falling back to
	// the deterministic rebuild on any mismatch), and a cold build writes
	// the snapshot for the slot's next restart.
	SnapshotDir string `json:"snapshot_dir,omitempty"`
}

// RunChildFromEnv checks ChildEnv and, when set, runs the shard child until
// it is killed or told to stop. The bool reports whether child mode was
// engaged at all; hosts exit after it returns true.
func RunChildFromEnv() (bool, error) {
	raw := os.Getenv(ChildEnv)
	if raw == "" {
		return false, nil
	}
	var spec ChildSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return true, fmt.Errorf("router child: bad spec: %w", err)
	}
	return true, runChild(spec)
}

// partialRequest is the router→child brush RPC: one range per served
// dimension, nil entries unfiltered — the wire form of the serving layer's
// BrushRequest ranges.
type partialRequest struct {
	Ranges []*[2]float64 `json:"ranges"`
}

// partialResponse is one shard's raw, UNSCALED contribution: its partition
// record count, the filtered total, and one histogram per dimension. The
// router merges these by addition into a shard.Gather; scaling for partial
// coverage happens once, at the serving layer, exactly as in-process.
type partialResponse struct {
	Shard      int       `json:"shard"`
	Generation int       `json:"generation"`
	Records    int       `json:"records"`
	Total      int64     `json:"total"`
	Histograms [][]int64 `json:"histograms"`
}

// childReady is the child's /readyz body.
type childReady struct {
	Status     string `json:"status"` // "building" or "ready"
	Shard      int    `json:"shard"`
	Of         int    `json:"of"`
	Generation int    `json:"generation"`
	Records    int    `json:"records"`
	// WarmStart reports that this child came up from a mapped snapshot
	// rather than a rebuild; BuildMS is the build-to-ready wall time.
	WarmStart bool    `json:"warm_start,omitempty"`
	BuildMS   float64 `json:"build_ms,omitempty"`
}

// child is the shard-child server state.
type child struct {
	spec   ChildSpec
	dims   []datacube.Dim
	prefix *datacube.PrefixCube
	rows   int // partition rows

	// warm/buildMS describe how the partition came up; snap keeps a
	// warm-started child's mapping (and every view into it) alive for the
	// process lifetime — exit unmaps it.
	warm    bool
	buildMS float64
	snap    *colstore.Snapshot

	ready atomic.Bool
	// blackholeUntil (unix nanos) gates every data endpoint: while set in
	// the future, requests are held unanswered — the listener-blackhole
	// chaos mode. /chaosctl itself is exempt so the hold can be set and
	// lifted.
	blackholeUntil atomic.Int64
}

// runChild serves the child's partition on the inherited listener until
// SIGTERM/SIGINT. The HTTP server starts before the dataset build so health
// probes get a real "building" answer instead of a connection that hangs in
// a backlog.
func runChild(spec ChildSpec) error {
	f := os.NewFile(uintptr(childListenFD), "router-listener")
	if f == nil {
		return fmt.Errorf("router child: no inherited listener on fd %d", childListenFD)
	}
	ln, err := net.FileListener(f)
	if err != nil {
		return fmt.Errorf("router child: inherited fd %d: %w", childListenFD, err)
	}
	f.Close()

	c := &child{spec: spec}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/partial", c.handlePartial)
	mux.HandleFunc("/readyz", c.handleReadyz)
	mux.HandleFunc("/healthz", c.handleReadyz)
	mux.HandleFunc("/chaosctl", c.handleChaosctl)
	srv := &http.Server{Handler: c.gate(mux)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	buildErr := make(chan error, 1)
	go func() { buildErr <- c.build() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-buildErr:
		if err != nil {
			srv.Close()
			return err
		}
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		return srv.Close()
	}
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return srv.Close()
		}
		return nil
	}
}

// build brings the child's partition up, preferring the warm path: map the
// slot's snapshot and reconstruct the colstore views and prefix cube
// zero-copy in O(columns). Any snapshot problem — absent file, checksum
// failure, fence mismatch — falls back to the deterministic cold path: the
// child reconstructs the full dataset, partitions it the way every sibling
// does, and keeps only its own share (the re-fencing step that makes a
// restart land on exactly the records the dead instance owned), then
// writes the snapshot so the next restart of this slot is warm.
func (c *child) build() error {
	start := time.Now()
	if c.spec.SnapshotDir != "" {
		if ws, err := tryWarmStart(c.spec); err == nil {
			c.dims = ws.dims
			c.prefix = ws.prefix
			c.rows = ws.snap.Rows()
			c.snap = ws.snap
			c.warm = true
			c.buildMS = float64(time.Since(start)) / float64(time.Millisecond)
			c.ready.Store(true)
			return nil
		} else if !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "router child: falling back to rebuild: %v\n", err)
		}
	}
	table, dims, err := datasetTable(c.spec.Dataset, c.spec.Seed, c.spec.Rows)
	if err != nil {
		return err
	}
	part, err := shard.PartitionOne(table, dims, c.spec.Of, c.spec.Shard, c.spec.Mode, "")
	if err != nil {
		return err
	}
	if c.spec.Encode {
		par := c.spec.Parallelism
		if par <= 0 {
			par = 1
		}
		part, err = colstore.Freeze(part, &colstore.Options{Parallelism: par})
		if err != nil {
			return fmt.Errorf("router child: freeze: %w", err)
		}
	}
	prefix, err := datacube.BuildPrefix(part, dims, c.spec.Parallelism)
	if err != nil {
		return err
	}
	if c.spec.SnapshotDir != "" {
		if err := writeChildSnapshot(c.spec, part, dims, prefix); err != nil {
			// Best-effort: a failed write costs the next restart its warm
			// path, nothing else.
			fmt.Fprintf(os.Stderr, "router child: snapshot write failed: %v\n", err)
		}
	}
	c.dims = dims
	c.prefix = prefix
	c.rows = part.NumRows()
	c.buildMS = float64(time.Since(start)) / float64(time.Millisecond)
	c.ready.Store(true)
	return nil
}

// datasetTable builds the named dataset at (seed, rows) and its GLOBAL cube
// dimensions — the same domains every sibling and the parent use, because
// bin edges must agree across shards or histogram addition is meaningless.
func datasetTable(ds string, seed int64, rows int) (*storage.Table, []datacube.Dim, error) {
	switch ds {
	case "road":
		if rows <= 0 {
			rows = dataset.RoadCount
		}
		return dataset.Roads(seed, rows), serve.RoadCubeDims(), nil
	case "listings":
		if rows <= 0 {
			rows = dataset.DefaultListingCount
		}
		table := dataset.Listings(seed, rows)
		dims, err := listingsDims(table)
		return table, dims, err
	default:
		return nil, nil, fmt.Errorf("router: unknown dataset %q", ds)
	}
}

// listingsDims derives the listings cube dimensions from the full table's
// min/max — which is why a child builds the full table before partitioning:
// global domains cannot be computed from one partition.
func listingsDims(table *storage.Table) ([]datacube.Dim, error) {
	dims := make([]datacube.Dim, 0, 3)
	for _, name := range []string{"lat", "lng", "price"} {
		lo, hi, ok := table.MinMax(name)
		if !ok {
			return nil, fmt.Errorf("router: listings table lacks column %q", name)
		}
		dims = append(dims, datacube.Dim{Name: name, Lo: lo, Hi: hi, Bins: crossfilter.DefaultBins})
	}
	return dims, nil
}

// DatasetDims returns the global cube dimensions the fleet serves for a
// dataset — what the parent passes to serve.Config.GatherDims. For road the
// domains are constants; listings costs one throwaway table build.
func DatasetDims(ds string, seed int64, rows int) ([]datacube.Dim, error) {
	if ds == "road" {
		return serve.RoadCubeDims(), nil
	}
	_, dims, err := datasetTable(ds, seed, rows)
	return dims, err
}

// gate applies the blackhole hold to every endpoint except /chaosctl: held
// requests are parked unanswered until the hold lifts or the client gives
// up, which is exactly what a partitioned-but-alive shard looks like from
// the router.
func (c *child) gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/chaosctl" {
			if until := c.blackholeUntil.Load(); until > 0 {
				if hold := time.Until(time.Unix(0, until)); hold > 0 {
					select {
					case <-time.After(hold):
					case <-r.Context().Done():
						return
					}
				}
			}
		}
		next.ServeHTTP(w, r)
	})
}

func (c *child) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := childReady{
		Status:     "building",
		Shard:      c.spec.Shard,
		Of:         c.spec.Of,
		Generation: c.spec.Generation,
	}
	status := http.StatusServiceUnavailable
	if c.ready.Load() {
		body.Status = "ready"
		body.Records = c.rows
		body.WarmStart = c.warm
		body.BuildMS = c.buildMS
		status = http.StatusOK
	}
	writeJSON(w, status, body)
}

// handlePartial answers one brush scatter leg: per-dimension histograms
// over this partition plus the filtered count, raw and unscaled.
func (c *child) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !c.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, "building")
		return
	}
	var req partialRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "want JSON {ranges}")
		return
	}
	if len(req.Ranges) != len(c.dims) {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("want %d ranges, got %d", len(c.dims), len(req.Ranges)))
		return
	}
	filters := make([]*datacube.Range, len(req.Ranges))
	buf := make([]datacube.Range, len(req.Ranges))
	for i, rg := range req.Ranges {
		if rg != nil {
			buf[i] = datacube.Range{Lo: rg[0], Hi: rg[1]}
			filters[i] = &buf[i]
		}
	}
	resp := partialResponse{
		Shard:      c.spec.Shard,
		Generation: c.spec.Generation,
		Records:    c.rows,
		Histograms: make([][]int64, len(c.dims)),
	}
	bins := 0
	for _, d := range c.dims {
		bins += d.Bins
	}
	backing := make([]int64, bins)
	for i, d := range c.dims {
		resp.Histograms[i] = backing[:d.Bins:d.Bins]
		backing = backing[d.Bins:]
		if err := c.prefix.HistogramInto(i, filters, resp.Histograms[i]); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	total, err := c.prefix.Count(filters)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp.Total = total
	writeJSON(w, http.StatusOK, resp)
}

// handleChaosctl arms the listener blackhole: POST /chaosctl?blackhole_ms=N
// holds every other endpoint unanswered for N milliseconds (0 lifts it).
// Exempt from its own gate, so chaos can always be lifted.
func (c *child) handleChaosctl(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ms, err := time.ParseDuration(r.URL.Query().Get("blackhole_ms") + "ms")
	if err != nil || ms < 0 {
		httpError(w, http.StatusBadRequest, "want ?blackhole_ms=N")
		return
	}
	until := int64(0)
	if ms > 0 {
		until = time.Now().Add(ms).UnixNano()
	}
	c.blackholeUntil.Store(until)
	writeJSON(w, http.StatusOK, map[string]any{"blackhole_ms": ms.Milliseconds()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// defaultParallelism sizes a child's build parallelism: an even split of
// the machine across the fleet, floored at 1.
func defaultParallelism(of int) int {
	if of < 1 {
		of = 1
	}
	p := runtime.GOMAXPROCS(0) / of
	if p < 1 {
		p = 1
	}
	return p
}
