//go:build !linux

package router

import "os/exec"

// setPdeathsig is a no-op off Linux: there is no parent-death signal, so
// orphan cleanup relies on the supervisor's terminate path alone.
func setPdeathsig(_ *exec.Cmd) {}
