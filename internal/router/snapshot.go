package router

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/colstore"
	"repro/internal/datacube"
	"repro/internal/storage"
)

// Warm-restart snapshots: the first child to cold-build a partition writes
// it — frozen columns plus the integrated prefix-cube grid — to one
// colstore snapshot file per (shard, spec). Every later spawn of that slot
// mmaps the file read-only and is ready in O(columns): no 50M-row
// regeneration, no re-partition, no re-encode, no cube counting pass.
//
// Correctness is fenced twice. The colstore layer rejects structural damage
// (bad magic, version skew, truncation, any checksum mismatch — a torn
// concurrent write loses the CRC race and reads as corrupt). On top of
// that, the fence map pins the serving contract: dataset, seed, rows,
// partition mode, shard/of, and encode flag must all equal the child's
// spec, so a snapshot left over from a different run shape is refused even
// though the file itself is intact. Any refusal at either layer falls back
// to the deterministic rebuild path — the pre-snapshot behavior — and the
// rebuild then rewrites the snapshot for the next restart.

// snapDimsSection holds the shard's cube dimensions as JSON — global
// domains, so a warm-started child never needs the full table to derive
// them (the listings dataset computes domains from the unpartitioned
// table, which is exactly the O(rows) work warm start exists to skip).
const snapDimsSection = "dims"

// snapPrefixSection holds the shard's integrated prefix-cube grid.
const snapPrefixSection = "prefix"

// childFence is the warm-start contract a snapshot must match before a
// child trusts it: every spec field that changes what the partition
// contains or how it is encoded.
func childFence(spec ChildSpec) map[string]string {
	return map[string]string{
		"dataset": spec.Dataset,
		"rows":    strconv.Itoa(spec.Rows),
		"seed":    strconv.FormatInt(spec.Seed, 10),
		"mode":    spec.Mode.String(),
		"shard":   strconv.Itoa(spec.Shard),
		"of":      strconv.Itoa(spec.Of),
		"encode":  strconv.FormatBool(spec.Encode),
	}
}

// snapshotPath names a spec's snapshot file. The fence fields ride the
// name too, so distinct run shapes sharing one directory never collide —
// but the name is advisory; trust comes from the fence check inside.
func snapshotPath(dir string, spec ChildSpec) string {
	enc := 0
	if spec.Encode {
		enc = 1
	}
	return filepath.Join(dir, fmt.Sprintf("%s-r%d-seed%d-%s-s%dof%d-e%d.snap",
		spec.Dataset, spec.Rows, spec.Seed, spec.Mode, spec.Shard, spec.Of, enc))
}

// fenceMatches reports whether a snapshot's stored fence equals the spec's.
func fenceMatches(got, want map[string]string) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// warmState is a successfully fenced snapshot, ready to serve: the mapped
// table and the prefix cube reconstructed over the mapped grid. The
// Snapshot must stay open for the child's lifetime.
type warmState struct {
	snap   *colstore.Snapshot
	table  *storage.Table
	dims   []datacube.Dim
	prefix *datacube.PrefixCube
}

// tryWarmStart opens, verifies, and reconstructs the spec's snapshot. Every
// failure is returned for the caller's fallback ladder; only a fully
// verified snapshot produces a warmState.
func tryWarmStart(spec ChildSpec) (*warmState, error) {
	path := snapshotPath(spec.SnapshotDir, spec)
	snap, err := colstore.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			snap.Close()
		}
	}()
	if !fenceMatches(snap.Fence(), childFence(spec)) {
		return nil, fmt.Errorf("router child: snapshot %s: fence mismatch (stale run shape)", path)
	}
	dimsJSON, have := snap.SectionJSON(snapDimsSection)
	if !have {
		return nil, fmt.Errorf("router child: snapshot %s: no %q section", path, snapDimsSection)
	}
	var dims []datacube.Dim
	if err := json.Unmarshal(dimsJSON, &dims); err != nil {
		return nil, fmt.Errorf("router child: snapshot %s: dims: %w", path, err)
	}
	sums, have := snap.SectionInt64(snapPrefixSection)
	if !have {
		return nil, fmt.Errorf("router child: snapshot %s: no %q section", path, snapPrefixSection)
	}
	prefix, err := datacube.NewPrefixFromSums(dims, snap.Rows(), sums)
	if err != nil {
		return nil, fmt.Errorf("router child: snapshot %s: %w", path, err)
	}
	ok = true
	return &warmState{snap: snap, table: snap.Table(), dims: dims, prefix: prefix}, nil
}

// writeChildSnapshot persists a cold build for the slot's next restart:
// the (frozen or raw) partition columns, the cube dimensions, and the
// integrated prefix grid, atomically renamed into place. Concurrent
// replicas of the same shard write identical bytes through unique temp
// files, so the race is harmless.
func writeChildSnapshot(spec ChildSpec, part *storage.Table, dims []datacube.Dim, prefix *datacube.PrefixCube) error {
	dimsJSON, err := json.Marshal(dims)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(spec.SnapshotDir, 0o755); err != nil {
		return err
	}
	return colstore.WriteSnapshot(snapshotPath(spec.SnapshotDir, spec), part, childFence(spec),
		[]colstore.SnapshotSection{
			{Name: snapDimsSection, JSON: dimsJSON},
			{Name: snapPrefixSection, Int64s: prefix.Sums()},
		})
}
