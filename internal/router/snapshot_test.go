package router

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/serve"
)

// TestFleetSnapshotWarmStartMatchesRebuild is the tentpole differential: a
// fleet whose children warm-start from mmap'd snapshots must answer every
// brush byte-identical to the rebuild-path fleet that wrote those
// snapshots, at S ∈ {2, 4}. The first fleet cold-builds (no snapshots
// exist yet) and persists them on the way up; the second fleet maps them.
func TestFleetSnapshotWarmStartMatchesRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	for _, s := range []int{2, 4} {
		t.Run(fmt.Sprintf("S%d", s), func(t *testing.T) {
			dir := t.TempDir()
			cold, coldTS := fleetServer(t,
				Config{Shards: s, Encode: true, SnapshotDir: dir},
				serve.Config{Workers: 2})
			if got := cold.Stats().WarmStarts; got != 0 {
				t.Fatalf("first fleet warm-started %d children with no snapshots on disk", got)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != s {
				t.Fatalf("cold fleet left %d snapshot files, want %d", len(entries), s)
			}
			for _, e := range entries {
				if !strings.HasSuffix(e.Name(), ".snap") {
					t.Fatalf("unexpected file in snapshot dir: %s", e.Name())
				}
			}

			warm, warmTS := fleetServer(t,
				Config{Shards: s, Encode: true, SnapshotDir: dir},
				serve.Config{Workers: 2})
			if got := warm.Stats().WarmStarts; got != int64(s) {
				t.Fatalf("warm fleet warm-started %d of %d children", got, s)
			}
			_, detail := warm.Health()
			for _, h := range detail.([]ReplicaHealth) {
				if !h.WarmStart {
					t.Fatalf("replica health does not report warm start: %+v", h)
				}
			}

			rng := rand.New(rand.NewSource(int64(7100 + s)))
			session := fmt.Sprintf("warm-%d", s)
			for seq := int64(0); seq < 12; seq++ {
				req := serve.BrushRequest{Session: session, Seq: seq, Ranges: randomRanges(rng)}
				st1, body1 := postJSON(t, coldTS.URL+"/v1/brush", req)
				st2, body2 := postJSON(t, warmTS.URL+"/v1/brush", req)
				if st1 != http.StatusOK || st2 != http.StatusOK {
					t.Fatalf("seq %d: status %d vs %d (%s)", seq, st1, st2, body2)
				}
				if !bytes.Equal(body1, body2) {
					t.Fatalf("seq %d: warm-start brush differs:\n%s\nvs rebuild:\n%s", seq, body2, body1)
				}
			}
		})
	}
}

// TestFleetSnapshotCorruptionFallsBack flips one byte in a shard's
// snapshot: that child must refuse the file, fall back to the rebuild
// path, and still serve answers byte-identical to an untouched fleet —
// while the sibling shard still warm-starts.
func TestFleetSnapshotCorruptionFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	dir := t.TempDir()
	cold, coldTS := fleetServer(t,
		Config{Shards: 2, SnapshotDir: dir},
		serve.Config{Workers: 2})
	_ = cold

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 snapshots, got %d", len(entries))
	}
	// Corrupt the middle of the first shard's file — deep in column data,
	// where only the checksum can catch it.
	victim := filepath.Join(dir, entries[0].Name())
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	mixed, mixedTS := fleetServer(t,
		Config{Shards: 2, SnapshotDir: dir},
		serve.Config{Workers: 2})
	if got := mixed.Stats().WarmStarts; got != 1 {
		t.Fatalf("warm starts = %d, want exactly 1 (corrupted shard must rebuild)", got)
	}

	rng := rand.New(rand.NewSource(55))
	for seq := int64(0); seq < 8; seq++ {
		req := serve.BrushRequest{Session: "corrupt", Seq: seq, Ranges: randomRanges(rng)}
		st1, body1 := postJSON(t, coldTS.URL+"/v1/brush", req)
		st2, body2 := postJSON(t, mixedTS.URL+"/v1/brush", req)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("seq %d: status %d vs %d", seq, st1, st2)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("seq %d: fallback fleet diverged", seq)
		}
	}

	// The rebuild must also have healed the snapshot on disk: the rewritten
	// file has to verify again.
	healed, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(healed, buf) {
		t.Fatal("corrupted snapshot was not rewritten by the rebuild path")
	}
}

// TestFleetSnapshotFenceMismatchRebuilds: snapshots written under one seed
// must be refused by a fleet running another — the fence, not the
// filename, is the authority. (Distinct seeds get distinct filenames, so
// this test forges the name collision by renaming.)
func TestFleetSnapshotFenceMismatchRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	dir := t.TempDir()
	_, _ = fleetServer(t,
		Config{Shards: 2, Seed: 1, SnapshotDir: dir},
		serve.Config{Workers: 2})

	// Rename every seed-1 snapshot to the name a seed-2 fleet will look
	// for, simulating a stale-but-plausible file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		from := filepath.Join(dir, e.Name())
		to := filepath.Join(dir, strings.Replace(e.Name(), "seed1", "seed2", 1))
		if from == to {
			t.Fatalf("snapshot name %q does not embed the seed", e.Name())
		}
		if err := os.Rename(from, to); err != nil {
			t.Fatal(err)
		}
	}

	stale, _ := fleetServer(t,
		Config{Shards: 2, Seed: 2, SnapshotDir: dir},
		serve.Config{Workers: 2})
	if got := stale.Stats().WarmStarts; got != 0 {
		t.Fatalf("fleet warm-started %d children from another seed's snapshots", got)
	}
}

// TestFirstProbeImmediate is the regression test for the first-probe
// latency bug: the supervisor used to wait a full HealthInterval before
// the first /readyz probe, so a child that built in milliseconds still
// took HealthInterval to become routable. With a deliberately huge
// interval, the fleet must still be ready almost immediately.
func TestFirstProbeImmediate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	interval := 10 * time.Second
	start := time.Now()
	f, err := New(Config{Shards: 1, Rows: 2000, Seed: 1, HealthInterval: interval, ChildStderr: os.Stderr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= interval {
		t.Fatalf("ready took %v with HealthInterval %v — first probe waited out the tick", elapsed, interval)
	}
}

// TestProbeSurfacesHTTPStatus: a probe hitting a non-200 must report the
// status (and body) as the failure detail — not a JSON decode error from
// reading the body first — and a 200 with a garbage body must name the
// decode failure.
func TestProbeSurfacesHTTPStatus(t *testing.T) {
	serveWith := func(status int, body string) *replica {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
			fmt.Fprint(w, body)
		}))
		t.Cleanup(ts.Close)
		f := &Fleet{
			cfg:          Config{HealthTimeout: time.Second},
			ctx:          context.Background(),
			healthClient: ts.Client(),
		}
		return &replica{fleet: f, shard: 0, addr: strings.TrimPrefix(ts.URL, "http://")}
	}

	ok, _, errMsg := serveWith(http.StatusServiceUnavailable, "<html>overloaded</html>").probe()
	if ok {
		t.Fatal("503 probe reported ready")
	}
	if !strings.Contains(errMsg, "readyz 503") || !strings.Contains(errMsg, "overloaded") {
		t.Fatalf("503 error detail %q does not surface the status", errMsg)
	}
	if strings.Contains(errMsg, "decode") {
		t.Fatalf("503 with non-JSON body misreported as decode failure: %q", errMsg)
	}

	ok, _, errMsg = serveWith(http.StatusOK, "not json").probe()
	if ok {
		t.Fatal("garbage-body probe reported ready")
	}
	if !strings.Contains(errMsg, "decode") {
		t.Fatalf("garbage 200 body error %q does not name the decode failure", errMsg)
	}

	// The failure detail must land in last_error via noteFail.
	rep := serveWith(http.StatusServiceUnavailable, "building")
	_, _, errMsg = rep.probe()
	rep.noteFail(errMsg)
	if h := rep.health(); !strings.Contains(h.LastError, "readyz 503") {
		t.Fatalf("last_error = %q, want probe status detail", h.LastError)
	}
}

// TestBackoffWaitClamp: an explicit zero or negative BackoffBase must not
// panic the jitter draw, and the cap must hold at any crash count.
func TestBackoffWaitClamp(t *testing.T) {
	for _, base := range []time.Duration{0, -time.Second, time.Millisecond} {
		for _, cap := range []time.Duration{0, -time.Second, 40 * time.Millisecond} {
			for crashes := 0; crashes < 70; crashes++ {
				w := backoffWait(base, cap, crashes)
				if w <= 0 {
					t.Fatalf("backoffWait(%v, %v, %d) = %v", base, cap, crashes, w)
				}
			}
		}
	}
	for crashes := 0; crashes < 70; crashes++ {
		if w := backoffWait(10*time.Millisecond, 40*time.Millisecond, crashes); w >= 80*time.Millisecond {
			t.Fatalf("crashes=%d: wait %v exceeds 2×cap", crashes, w)
		}
	}
}

// TestConfigValidation: negative durations are config bugs and must be
// rejected up front; zero still means "use the default".
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 1, BackoffBase: -time.Second}); err == nil {
		t.Fatal("negative BackoffBase accepted")
	}
	if _, err := New(Config{Shards: 1, HealthInterval: -1}); err == nil {
		t.Fatal("negative HealthInterval accepted")
	}
	c := Config{Shards: 1}
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	if c.BackoffBase != 100*time.Millisecond || c.HealthInterval != 50*time.Millisecond {
		t.Fatalf("zero knobs not defaulted: %+v", c)
	}
}
