package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/serve"
)

// TestMain is the child hook: when the supervisor re-execs this test binary
// with ChildEnv set, the process is a shard child, not a test run. This is
// what lets the whole fleet — parent and children — run under one -race
// build with no external binary to compile.
func TestMain(m *testing.M) {
	if ok, err := RunChildFromEnv(); ok {
		if err != nil {
			fmt.Fprintln(os.Stderr, "router child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const testRows = 20000

// oracleServer builds the single-process S=1 road server every differential
// test compares against.
func oracleServer(t *testing.T, scfg serve.Config) *httptest.Server {
	t.Helper()
	backends, err := serve.RoadBackends(1, testRows, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(backends, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		drain(t, srv)
	})
	return ts
}

// fleetServer builds a fleet and the serving frontend routed through it.
// Drain (via cleanup) closes the fleet, which kills and reaps the children;
// CheckChildren then asserts none leaked.
func fleetServer(t *testing.T, fcfg Config, scfg serve.Config) (*Fleet, *httptest.Server) {
	t.Helper()
	if fcfg.Rows == 0 {
		fcfg.Rows = testRows
	}
	if fcfg.Seed == 0 {
		fcfg.Seed = 1
	}
	fcfg.ChildStderr = os.Stderr
	f, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		f.Close()
		t.Fatal(err)
	}
	scfg.Gatherer = f
	scfg.GatherDims = f.Dims()
	srv, err := serve.New(serve.Backends{}, scfg)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		drain(t, srv) // Drain closes the Gatherer, i.e. the fleet
	})
	return f, ts
}

func drain(t *testing.T, srv *serve.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Error(err)
	}
}

func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// randomRanges draws one brush filter state over the road dims.
func randomRanges(rng *rand.Rand) []*[2]float64 {
	dims := serve.RoadCubeDims()
	ranges := make([]*[2]float64, len(dims))
	for i, d := range dims {
		if rng.Intn(4) == 0 {
			continue
		}
		lo := d.Lo + rng.Float64()*(d.Hi-d.Lo)
		ranges[i] = &[2]float64{lo, lo + rng.Float64()*(d.Hi-lo)}
	}
	return ranges
}

// TestFleetMatchesSingleProcessOracle is the acceptance differential: the
// multi-process router at S ∈ {2, 4} must answer every brush byte-identical
// to the single-process S=1 oracle — full coverage is the exact answer, and
// merge-by-addition across process boundaries is the same merge as
// in-process.
func TestFleetMatchesSingleProcessOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	oracle := oracleServer(t, serve.Config{Workers: 2})

	for _, s := range []int{2, 4} {
		t.Run(fmt.Sprintf("S%d", s), func(t *testing.T) {
			_, routed := fleetServer(t, Config{Shards: s}, serve.Config{Workers: 2})
			rng := rand.New(rand.NewSource(int64(9000 + s)))
			session := fmt.Sprintf("diff-%d", s)
			for seq := int64(0); seq < 12; seq++ {
				req := serve.BrushRequest{Session: session, Seq: seq, Ranges: randomRanges(rng)}
				st1, body1 := postJSON(t, oracle.URL+"/v1/brush", req)
				st2, body2 := postJSON(t, routed.URL+"/v1/brush", req)
				if st1 != http.StatusOK || st2 != http.StatusOK {
					t.Fatalf("seq %d: status %d vs %d (%s)", seq, st1, st2, body2)
				}
				if !bytes.Equal(body1, body2) {
					t.Fatalf("seq %d: routed brush differs:\n%s\nvs oracle:\n%s", seq, body2, body1)
				}
			}
		})
	}
}

// TestFleetKillPartialThenRestartExact is the robustness acceptance: kill a
// shard child mid-run and the very next brush is a degraded partial whose
// covered fraction is exactly the surviving shard's record share — not
// approximately, exactly, because coverage accounting is record-based. When
// the supervisor restarts the child and it re-fences onto its partition,
// the next brush is exact again.
func TestFleetKillPartialThenRestartExact(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	f, ts := fleetServer(t,
		Config{Shards: 2, BackoffBase: 20 * time.Millisecond, BackoffCap: 100 * time.Millisecond},
		// BrushCacheSize -1: no cache tier, so a partial gather MUST surface
		// as the partial tier instead of hiding behind a cached exact hit.
		serve.Config{Workers: 2, Deadlines: true, DegradeAfter: 2 * time.Second, BrushCacheSize: -1})

	rng := rand.New(rand.NewSource(42))
	ranges := randomRanges(rng)
	brush := func(seq int64) serve.BrushResponse {
		st, body := postJSON(t, ts.URL+"/v1/brush",
			serve.BrushRequest{Session: "kill", Seq: seq, Ranges: ranges})
		if st != http.StatusOK {
			t.Fatalf("seq %d: status %d: %s", seq, st, body)
		}
		var resp serve.BrushResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	before := brush(0)
	if before.Degraded || before.Tier != "exact" {
		t.Fatalf("healthy fleet answered tier %q degraded=%v", before.Tier, before.Degraded)
	}

	// SIGKILL shard 1's only replica and wait for the supervisor to notice
	// (so the leg is skipped as down, not left to hang in the dead child's
	// listener backlog — that path is the chaos test's job).
	pid := f.ReplicaPID(1, 0)
	if pid == 0 {
		t.Fatal("shard 1 has no pid")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitState(t, f, 1, 0, func(s State) bool { return s != StateReady })

	during := brush(1)
	if !during.Degraded || during.Tier != "partial" {
		t.Fatalf("brush with shard 1 dead: tier %q degraded=%v", during.Tier, during.Degraded)
	}
	want := float64(f.ShardRecords(0)) / float64(f.ShardRecords(0)+f.ShardRecords(1))
	if during.SampleFraction != want {
		t.Fatalf("covered fraction %v, want exactly %v", during.SampleFraction, want)
	}

	// The supervisor restarts the child; the rebuilt partition must be the
	// same records, so the answer snaps back to exact — identical to before.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	after := brush(2)
	if after.Degraded || after.Tier != "exact" {
		t.Fatalf("post-restart brush: tier %q degraded=%v", after.Tier, after.Degraded)
	}
	if after.Total != before.Total || fmt.Sprint(after.Histograms) != fmt.Sprint(before.Histograms) {
		t.Fatalf("post-restart answer differs from pre-kill exact answer")
	}
	if got := f.Stats().Restarts; got < 1 {
		t.Fatalf("restarts = %d, want >= 1", got)
	}
}

// TestFleetHedgesAroundSlowReplica: with two replicas per shard, a
// blackholed (alive but unresponsive) affinity replica must not stall the
// gather — after HedgeAfter the leg races a sibling and the answer is still
// exact and on time.
func TestFleetHedgesAroundSlowReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	f, ts := fleetServer(t,
		Config{Shards: 1, Replicas: 2, HedgeAfter: 10 * time.Millisecond, RPCTimeout: 5 * time.Second},
		serve.Config{Workers: 2})

	const session = "hedge"
	aff := f.AffinityReplica(0, session)
	// Hold the affinity replica's data endpoints for 1.5s — longer than any
	// reasonable hedge path, much shorter than RPCTimeout.
	resp, err := http.Post("http://"+f.ReplicaAddr(0, aff)+"/chaosctl?blackhole_ms=1500", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	st, body := postJSON(t, ts.URL+"/v1/brush",
		serve.BrushRequest{Session: session, Seq: 0, Ranges: randomRanges(rng)})
	elapsed := time.Since(start)
	if st != http.StatusOK {
		t.Fatalf("status %d: %s", st, body)
	}
	var br serve.BrushResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Degraded {
		t.Fatalf("hedged gather degraded: %s", body)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged gather took %v — waited out the blackhole instead of hedging", elapsed)
	}
	stats := f.Stats()
	if stats.Hedges < 1 || stats.HedgeWins < 1 {
		t.Fatalf("hedges=%d hedge_wins=%d, want both >= 1", stats.Hedges, stats.HedgeWins)
	}
}

// TestFleetCrashLoopGoesDark: a replica whose child can never come up must
// stop hot-looping — after DarkAfter consecutive crashes the supervisor
// parks it dark and the fleet reports not-ready instead of burning CPU on
// doomed respawns.
func TestFleetCrashLoopGoesDark(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	f, err := New(Config{
		Shards:      1,
		Rows:        1000,
		Seed:        1,
		ChildArgs:   []string{"/bin/false"}, // exits 1 instantly, every time
		BackoffBase: 2 * time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
		DarkAfter:   3,
		DarkRetry:   time.Hour, // park firmly; the test asserts the parked state
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	waitState(t, f, 0, 0, func(s State) bool { return s == StateDark })
	if ready, _ := f.Health(); ready {
		t.Fatal("fleet with a dark shard reports ready")
	}
	if got := f.Stats().Darks; got < 1 {
		t.Fatalf("dark events = %d, want >= 1", got)
	}
	if _, err := f.ScatterBrush(context.Background(), "s", nil); err == nil {
		t.Fatal("ScatterBrush on a never-ready fleet must error, not fabricate coverage")
	}
	h := f.reps[0][0].health()
	if h.State != "dark" || h.LastError == "" {
		t.Fatalf("dark replica health = %+v", h)
	}
}

// TestFleetReadyzPerShardHealth: /readyz on a fleet-backed server embeds
// the per-shard supervision breakdown — state, pid, generation, failure
// counters, last transition — and flips to 503 with status shard_down when
// a shard loses its last serving replica.
func TestFleetReadyzPerShardHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	f, ts := fleetServer(t,
		Config{Shards: 2, Rows: 5000, BackoffBase: 250 * time.Millisecond, BackoffCap: time.Second},
		serve.Config{Workers: 2})

	readyz := func() (int, string, []ReplicaHealth) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string          `json:"status"`
			Shards []ReplicaHealth `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status, body.Shards
	}

	st, status, shards := readyz()
	if st != http.StatusOK || status != "ready" {
		t.Fatalf("healthy readyz: %d %q", st, status)
	}
	if len(shards) != 2 {
		t.Fatalf("want 2 replica entries, got %d", len(shards))
	}
	for i, h := range shards {
		if h.Shard != i || h.State != "ready" || h.PID == 0 || h.Generation < 1 ||
			h.Records == 0 || h.LastTransition.IsZero() {
			t.Fatalf("replica %d health incomplete: %+v", i, h)
		}
	}

	// Kill shard 0 and catch readyz while it is down: 503, shard_down, and
	// the breakdown says exactly which replica is out and why.
	if err := syscall.Kill(f.ReplicaPID(0, 0), syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitState(t, f, 0, 0, func(s State) bool { return s != StateReady })
	st, status, shards = readyz()
	if st != http.StatusServiceUnavailable || status != "shard_down" {
		t.Fatalf("readyz with shard 0 down: %d %q", st, status)
	}
	if shards[0].State == "ready" {
		t.Fatalf("down replica still reported ready: %+v", shards[0])
	}
}

// TestFleetChaosScheduleRecovers runs the deterministic prockill schedule
// against a live fleet while brush traffic flows: every response must be
// well-formed (exact or honestly degraded, never a hang), and once the
// schedule drains and the supervisor re-fences the children, answers are
// exact again.
func TestFleetChaosScheduleRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	leakcheck.Check(t)
	leakcheck.CheckChildren(t)
	f, ts := fleetServer(t,
		Config{Shards: 2, BackoffBase: 20 * time.Millisecond, BackoffCap: 100 * time.Millisecond},
		serve.Config{Workers: 2, Deadlines: true, DegradeAfter: 300 * time.Millisecond, BrushCacheSize: -1})

	rng := rand.New(rand.NewSource(3))
	ranges := randomRanges(rng)
	exact := func(seq int64) serve.BrushResponse {
		st, body := postJSON(t, ts.URL+"/v1/brush",
			serve.BrushRequest{Session: "chaos", Seq: seq, Ranges: ranges})
		if st != http.StatusOK {
			t.Fatalf("seq %d: status %d: %s", seq, st, body)
		}
		var resp serve.BrushResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	before := exact(0)
	if before.Degraded {
		t.Fatal("healthy fleet degraded")
	}

	profile, ok := fault.ProcProfileByName("prockill")
	if !ok {
		t.Fatal("prockill profile missing")
	}
	events := profile.Schedule(11, 2, 1300*time.Millisecond)
	if len(events) == 0 {
		t.Fatal("empty chaos schedule")
	}
	done := make(chan ChaosReport, 1)
	go func() { done <- f.RunChaos(context.Background(), events) }()

	// Brush through the storm. Some answers are exact, some degraded
	// partials, and a fully-uncovered instant may 500 — but nothing hangs
	// past the deadline budget and nothing panics.
	seq := int64(1)
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		st, body := postJSON(t, ts.URL+"/v1/brush",
			serve.BrushRequest{Session: "chaos", Seq: seq, Ranges: ranges})
		if st != http.StatusOK && st < 500 {
			t.Fatalf("seq %d: unexpected status %d: %s", seq, st, body)
		}
		seq++
		time.Sleep(40 * time.Millisecond)
	}
	report := <-done
	if report.Kills < 1 {
		t.Fatalf("chaos report %+v: want at least one kill", report)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	after := exact(seq)
	if after.Degraded || after.Total != before.Total {
		t.Fatalf("post-chaos answer not exact: degraded=%v total=%d want %d",
			after.Degraded, after.Total, before.Total)
	}
	if got := f.Stats().Restarts; got < 1 {
		t.Fatalf("restarts = %d, want >= 1 after kills", got)
	}
}

// waitState polls a replica's supervision state until cond holds.
func waitState(t *testing.T, f *Fleet, shard, idx int, cond func(State) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if cond(f.reps[shard][idx].getState()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d/%d stuck in %v", shard, idx, f.reps[shard][idx].getState())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
