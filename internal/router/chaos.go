package router

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"syscall"
	"time"

	"repro/internal/fault"
)

// ChaosReport tallies what a chaos run actually did to the fleet.
type ChaosReport struct {
	Kills      int `json:"kills"`
	Stops      int `json:"stops"`
	Blackholes int `json:"blackholes"`
	Skipped    int `json:"skipped"` // events whose target had no live child at fire time
}

// RunChaos executes a deterministic process-fault schedule against the
// fleet's real children: SIGKILL for crashes, SIGSTOP+SIGCONT for freezes,
// and child-side listener blackholes for network partitions. Events target
// each shard's replica 0 — the slot most sessions' affinity hashes onto —
// so the schedule exercises failover, not just spare capacity. Blocks until
// the schedule is drained or ctx is cancelled; every SIGSTOP is paired with
// a SIGCONT before return, so no child is left frozen.
func (f *Fleet) RunChaos(ctx context.Context, events []fault.ProcEvent) ChaosReport {
	var rep ChaosReport
	start := time.Now()
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, ev := range events {
		if d := ev.At - time.Since(start); d > 0 {
			select {
			case <-ctx.Done():
				return rep
			case <-time.After(d):
			}
		}
		if ev.Shard < 0 || ev.Shard >= f.cfg.Shards {
			rep.Skipped++
			continue
		}
		target := f.reps[ev.Shard][0]
		switch ev.Kind {
		case fault.ProcKill:
			pid := target.currentPID()
			if pid == 0 || syscall.Kill(pid, syscall.SIGKILL) != nil {
				rep.Skipped++
				continue
			}
			rep.Kills++
		case fault.ProcStop:
			pid := target.currentPID()
			if pid == 0 || syscall.Kill(pid, syscall.SIGSTOP) != nil {
				rep.Skipped++
				continue
			}
			rep.Stops++
			wg.Add(1)
			go func(pid int, pause time.Duration) {
				defer wg.Done()
				select {
				case <-ctx.Done():
				case <-time.After(pause):
				}
				// Unconditional: a frozen child must never outlive the run.
				// If the supervisor SIGKILLed it meanwhile the signal just
				// errors on a reaped pid, which is fine.
				_ = syscall.Kill(pid, syscall.SIGCONT)
			}(pid, ev.Pause)
		case fault.ProcBlackhole:
			if err := f.blackhole(ctx, target, ev.Pause); err != nil {
				rep.Skipped++
				continue
			}
			rep.Blackholes++
		default:
			rep.Skipped++
		}
	}
	return rep
}

// blackhole asks the child itself to stop answering for the window: every
// endpoint except the chaos control hangs, so from the router the replica
// looks partitioned — probes time out, gather legs hedge away — while the
// process stays healthy underneath.
func (f *Fleet) blackhole(ctx context.Context, rep *replica, window time.Duration) error {
	url := fmt.Sprintf("http://%s/chaosctl?blackhole_ms=%d", rep.addr, window.Milliseconds())
	cctx, cancel := context.WithTimeout(ctx, f.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.healthClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaosctl: %s", resp.Status)
	}
	return nil
}
