package planner

import (
	"math"
	"testing"
	"time"

	"repro/internal/taxonomy"
)

// TestDefaultModelReproducesCrossover: the seeded calibration embeds
// crossfilter's DefaultCrossover — the delta scan wins exactly when the
// changed fraction is at most calCrossFull/calCrossDelta = 0.25.
func TestDefaultModelReproducesCrossover(t *testing.T) {
	if got := calCrossFullNS / calCrossDeltaNS; got != taxonomy.CrossoverFraction {
		t.Fatalf("seed ratio = %v, want taxonomy.CrossoverFraction = %v", got, taxonomy.CrossoverFraction)
	}
	m := DefaultModel()
	const n = 400000
	for _, tc := range []struct {
		frac  float64
		delta bool
	}{
		{0.01, true}, {0.10, true}, {0.20, true}, {0.249, true},
		{0.251, false}, {0.30, false}, {0.50, false}, {1.0, false},
	} {
		if got := m.ChooseDelta(int(tc.frac*n), n); got != tc.delta {
			t.Errorf("ChooseDelta(%.0f%%) = %v, want %v", 100*tc.frac, got, tc.delta)
		}
	}
}

// TestFitReproducesCrossover: a model refitted from a synthetic
// (units, latency) sweep — the BENCH_brush.json-style calibration path —
// recovers the same delta/full break-even the DefaultCrossover heuristic
// hard-codes.
func TestFitReproducesCrossover(t *testing.T) {
	m := DefaultModel()
	// Wipe the seeds so the fit, not the default, is what's under test.
	m.SetCoeffs(CrossFull, Coeff{})
	m.SetCoeffs(CrossDelta, Coeff{})
	var full, delta []CalPoint
	for _, units := range []float64{1e3, 5e3, 2e4, 1e5, 4e5} {
		full = append(full, CalPoint{Units: units, NS: 130 + 4.75*units})
		delta = append(delta, CalPoint{Units: units, NS: 130 + 19.0*units})
	}
	m.Fit(CrossFull, full)
	m.Fit(CrossDelta, delta)
	if c := m.Coeffs(CrossFull); math.Abs(c.PerUnitNS-4.75) > 1e-6 || math.Abs(c.FixedNS-130) > 1e-3 {
		t.Fatalf("CrossFull fit = %+v, want {130 4.75}", c)
	}
	if c := m.Coeffs(CrossDelta); math.Abs(c.PerUnitNS-19.0) > 1e-6 {
		t.Fatalf("CrossDelta fit = %+v, want slope 19", c)
	}
	const n = 400000
	for frac := 0.02; frac <= 0.6; frac += 0.02 {
		if frac > 0.24 && frac < 0.26 {
			continue // the break-even itself
		}
		want := frac < taxonomy.CrossoverFraction
		if got := m.ChooseDelta(int(frac*n), n); got != want {
			t.Errorf("fitted ChooseDelta(%.0f%%) = %v, want %v (DefaultCrossover-equivalent)", 100*frac, got, want)
		}
	}
}

// TestFitDegenerate: under-determined calibration inputs degrade safely —
// no points is a no-op, one point or same-size points pin only the slope,
// and a decreasing sweep clamps the slope at zero instead of predicting
// negative marginal cost.
func TestFitDegenerate(t *testing.T) {
	m := DefaultModel()
	before := m.Coeffs(PrefixCube)
	m.Fit(PrefixCube, nil)
	if m.Coeffs(PrefixCube) != before {
		t.Error("empty fit changed coefficients")
	}

	m.Fit(PrefixCube, []CalPoint{{Units: 1000, NS: before.FixedNS + 5000}})
	if c := m.Coeffs(PrefixCube); math.Abs(c.PerUnitNS-5.0) > 1e-9 || c.FixedNS != before.FixedNS {
		t.Errorf("single-point fit = %+v, want slope 5 through seed fixed %v", c, before.FixedNS)
	}

	m.Fit(DenseCube, []CalPoint{{Units: 100, NS: 350}, {Units: 100, NS: 450}})
	if c := m.Coeffs(DenseCube); math.Abs(c.PerUnitNS-(400.0-calFixedNS)/100) > 1e-9 {
		t.Errorf("same-size fit = %+v", c)
	}

	m.Fit(EngineScan, []CalPoint{{Units: 100, NS: 900}, {Units: 1000, NS: 100}})
	if c := m.Coeffs(EngineScan); c.PerUnitNS != 0 {
		t.Errorf("decreasing sweep fitted negative slope: %+v", c)
	}
	if est := m.Estimate(EngineScan, -5); est != m.Coeffs(EngineScan).FixedNS {
		t.Errorf("negative units not clamped: %v", est)
	}
}

// TestChooseNeverSelectsAbsent: the model only picks among the candidates
// the caller enumerated — a structure whose index doesn't exist is not a
// candidate and can never be selected, no matter how cheap its
// coefficients claim it is.
func TestChooseNeverSelectsAbsent(t *testing.T) {
	m := DefaultModel()
	// Make the absent structure infinitely attractive.
	m.SetCoeffs(MatIndex, Coeff{})
	if s, _ := m.Choose([]Candidate{{PrefixCube, 200}, {EngineScan, 1e6}}); s != PrefixCube {
		t.Errorf("chose %v without it being a candidate (want prefix-cube)", s)
	}
	// Every non-empty subset of structures: the choice is a member.
	all := Structures()
	for mask := 1; mask < 1<<len(all); mask++ {
		var cands []Candidate
		for i, s := range all {
			if mask&(1<<i) != 0 {
				cands = append(cands, Candidate{s, float64(1000 * (i + 1))})
			}
		}
		got, _ := m.Choose(cands)
		member := false
		for _, c := range cands {
			if c.S == got {
				member = true
			}
		}
		if !member {
			t.Fatalf("mask %b: chose %v outside the candidate set", mask, got)
		}
	}
	if s, ns := m.Choose(nil); s != -1 || ns != 0 {
		t.Errorf("empty candidates = (%v, %v), want (-1, 0)", s, ns)
	}
	// Ties break toward the earlier candidate.
	m.SetCoeffs(DenseCube, Coeff{FixedNS: 100, PerUnitNS: 1})
	m.SetCoeffs(PrefixCube, Coeff{FixedNS: 100, PerUnitNS: 1})
	if s, _ := m.Choose([]Candidate{{DenseCube, 10}, {PrefixCube, 10}}); s != DenseCube {
		t.Errorf("tie broke to %v, want the earlier candidate", s)
	}
}

// TestObserveAdapts: online observations move the break-even to where the
// host actually is — a machine whose permuted access is cheap shifts the
// delta/full crossover well past the seeded 0.25.
func TestObserveAdapts(t *testing.T) {
	m := DefaultModel()
	const n = 400000
	if m.ChooseDelta(n/2, n) {
		t.Fatal("seeded model should pick full at 50%")
	}
	// Observed delta scans at ~2 ns/record (vs the seeded 19).
	fixed := m.Coeffs(CrossDelta).FixedNS
	for i := 0; i < 60; i++ {
		units := 1e5
		m.Observe(CrossDelta, units, time.Duration(fixed+2*units)*time.Nanosecond)
	}
	if per := m.Coeffs(CrossDelta).PerUnitNS; math.Abs(per-2.0) > 0.1 {
		t.Fatalf("EWMA slope = %v, want ~2", per)
	}
	if !m.ChooseDelta(n/2, n) {
		t.Error("adapted model still refuses the delta path at 50%")
	}
	// Degenerate observations are ignored.
	before := m.Coeffs(CrossDelta)
	m.Observe(CrossDelta, 0, time.Millisecond)
	m.Observe(CrossDelta, 100, 0)
	if m.Coeffs(CrossDelta) != before {
		t.Error("zero-unit or zero-duration observation moved the model")
	}
}

// TestStructureNames: the enum speaks taxonomy's vocabulary, one name per
// structure, so planner_choice_total labels join against the advisor's
// decision table.
func TestStructureNames(t *testing.T) {
	want := map[Structure]string{
		EngineScan: taxonomy.StructEngineScan,
		CrossFull:  taxonomy.StructFullScan,
		CrossDelta: taxonomy.StructDeltaScan,
		DenseCube:  taxonomy.StructDenseCube,
		PrefixCube: taxonomy.StructPrefixCube,
		MatIndex:   taxonomy.StructMatIndex,
	}
	seen := map[string]bool{}
	for _, s := range Structures() {
		name := s.String()
		if name != want[s] {
			t.Errorf("%d.String() = %q, want %q", s, name, want[s])
		}
		if seen[name] {
			t.Errorf("duplicate structure name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != int(numStructures) {
		t.Errorf("%d distinct names for %d structures", len(seen), numStructures)
	}
}

// TestAdvisorAgreesWithModel: taxonomy's decision table and the cost
// model's arithmetic pick the same structure on the canonical scenarios —
// the advisor is the human-readable form of the model, not a second
// policy.
func TestAdvisorAgreesWithModel(t *testing.T) {
	m := DefaultModel()
	const (
		rows     = 434874
		nd       = 3
		sumBins  = 60.0         // Σ bins at 20 bins per dimension
		prefUnit = 60*4 + 8     // Σ bins·2^(d-1) + 2^d
		boxCells = 20 * 20 * 20 // unfiltered box
	)
	scanUnits := float64(rows * nd)

	// Drag with a materialized index: both say mat-index.
	adv := taxonomy.AdviseStructure(taxonomy.StructureQuery{
		Selection: taxonomy.SelectionDrag, Dims: nd, Rows: rows,
		HasMatIndex: true, HasPrefixCube: true, HasDenseCube: true, HasSortedIndex: true,
	})
	got, _ := m.Choose([]Candidate{
		{MatIndex, sumBins}, {PrefixCube, prefUnit}, {DenseCube, boxCells * nd}, {EngineScan, scanUnits},
	})
	if adv.Structure != taxonomy.StructMatIndex || got.String() != adv.Structure {
		t.Errorf("drag+index: advisor %q, model %q", adv.Structure, got)
	}

	// Drag without an index: both land on the prefix cube, and the advisor
	// wants a materialization kicked off.
	adv = taxonomy.AdviseStructure(taxonomy.StructureQuery{
		Selection: taxonomy.SelectionDrag, Dims: nd, Rows: rows,
		HasPrefixCube: true, HasDenseCube: true, HasSortedIndex: true,
	})
	got, _ = m.Choose([]Candidate{
		{PrefixCube, prefUnit}, {DenseCube, boxCells * nd}, {EngineScan, scanUnits},
	})
	if adv.Structure != taxonomy.StructPrefixCube || got.String() != adv.Structure || !adv.Materialize {
		t.Errorf("drag no-index: advisor %+v, model %q", adv, got)
	}

	// Value-precision drag, no cubes: the delta fraction decides, and the
	// model's ChooseDelta agrees on both sides of the crossover.
	for _, tc := range []struct {
		frac float64
		want string
	}{
		{0.10, taxonomy.StructDeltaScan},
		{0.40, taxonomy.StructFullScan},
	} {
		adv = taxonomy.AdviseStructure(taxonomy.StructureQuery{
			Selection: taxonomy.SelectionDrag, Dims: nd, Rows: rows,
			HasSortedIndex: true, DeltaFraction: tc.frac,
		})
		if adv.Structure != tc.want {
			t.Errorf("Δ=%.2f: advisor %q, want %q", tc.frac, adv.Structure, tc.want)
		}
		if wantDelta := tc.want == taxonomy.StructDeltaScan; m.ChooseDelta(int(tc.frac*rows), rows) != wantDelta {
			t.Errorf("Δ=%.2f: ChooseDelta disagrees with the advisor", tc.frac)
		}
	}

	// Cold query, nothing built: engine scan — the only structure with no
	// precomputation, so it is always a candidate and always last resort.
	adv = taxonomy.AdviseStructure(taxonomy.StructureQuery{Selection: taxonomy.SelectionCold, Dims: nd, Rows: rows})
	got, _ = m.Choose([]Candidate{{EngineScan, scanUnits}})
	if adv.Structure != taxonomy.StructEngineScan || got != EngineScan {
		t.Errorf("cold: advisor %q, model %q", adv.Structure, got)
	}
}
