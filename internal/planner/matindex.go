// Materialized per-selection indexes: the structure the planner builds for
// hot drag templates. A template fixes which dimension is moving and the
// bin boxes of every other (fixed) filter; within it, only the moved
// dimension's predicate window changes. The index pre-aggregates the
// backing table along the moved axis so that every query matching the
// template — any position of the moving window — is answered in
// O(Σ bins) array reads, with results bit-identical to the prefix cube's.
//
// Layout, for moved dimension m with B_m bins over d dimensions:
//
//   - passAll[b]: records in moved-bin b passing every fixed filter. The
//     moved dimension's own histogram is this vector masked to its box.
//   - prefAll[i]: exclusive prefix sums of passAll, so the filtered total
//     is prefAll[hi+1] - prefAll[lo].
//   - per view dimension v ≠ m, view[v] is a (B_m+1) × B_v matrix,
//     prefix-summed along the moved axis, of records passing every fixed
//     filter *except v's own* (crossfilter-style exclusion is not wanted
//     here — v's own filter is applied afterwards by masking the result to
//     v's box, exactly how the cube family treats the target dimension).
//     hist[v][b] = view[v][hi+1][b] - view[v][lo][b] inside v's box.
//
// One 3-dim 20-bin template costs ~7 KB; the shared byte-budgeted store
// bounds how many coexist.

package planner

import (
	"context"
	"fmt"

	"repro/internal/datacube"
	"repro/internal/morsel"
	"repro/internal/storage"
)

// MatIndex is one materialized template. Immutable once built; safe for
// concurrent readers.
type TemplateIndex struct {
	dims  []datacube.Dim
	moved int
	// fixedLo/fixedHi are the template's fixed-filter bin boxes; the moved
	// dimension's entry is the full bin range (its box is per-query).
	fixedLo, fixedHi []int

	passAll []int64   // len Bins(moved)
	prefAll []int64   // len Bins(moved)+1
	views   [][]int64 // per dim: nil for moved, else (B_m+1)*B_v prefix matrix
}

// TemplateOf derives the template identity of a brush snapshot: the moved
// dimension plus the bin boxes of every fixed filter. ok is false when
// moved is out of range — a malformed request has no template. The moved
// dimension's own range is excluded from identity (it is the part that
// moves), so every step of a drag maps to one template.
func TemplateOf(dims []datacube.Dim, moved int, filters []*datacube.Range) (lo, hi []int, ok bool) {
	if moved < 0 || moved >= len(dims) || len(filters) != len(dims) {
		return nil, nil, false
	}
	lo = make([]int, len(dims))
	hi = make([]int, len(dims))
	for i, d := range dims {
		lo[i], hi[i] = 0, d.Bins-1
		if i != moved && filters[i] != nil {
			lo[i], hi[i] = BinRange(d, *filters[i])
		}
	}
	lo[moved], hi[moved] = 0, dims[moved].Bins-1
	return lo, hi, true
}

// BinRange converts a domain range to the dimension's inclusive bin
// interval under the cube family's half-open-upper convention. It is
// datacube's binRange, re-derived here from the public bin geometry so
// every structure the planner coordinates resolves ranges identically.
func BinRange(d datacube.Dim, r datacube.Range) (lo, hi int) {
	lo = binOf(d, r.Lo)
	hi = binOf(d, r.Hi)
	if hi > lo && d.Lo+(d.Hi-d.Lo)*float64(hi)/float64(d.Bins) == r.Hi {
		hi--
	}
	return lo, hi
}

// binOf maps a value into the dimension's bins, clamping the domain edges
// — the same arithmetic as datacube.Dim.binOf.
func binOf(d datacube.Dim, v float64) int {
	if d.Hi <= d.Lo {
		return 0
	}
	b := int((v - d.Lo) / (d.Hi - d.Lo) * float64(d.Bins))
	if b < 0 {
		b = 0
	}
	if b >= d.Bins {
		b = d.Bins - 1
	}
	return b
}

// BuildMatIndex scans the backing table once, morsel-parallel, and
// assembles the template's index. binFns is one bin-of-row function per
// dimension (colstore-aware; see newBinners). Workers accumulate into
// private partials merged by addition, so the index is identical at every
// parallelism level. A cancelled ctx aborts at morsel granularity.
func BuildTemplateIndex(ctx context.Context, tbl *storage.Table, dims []datacube.Dim, moved int,
	fixedLo, fixedHi []int, binFns []func(row int) int, parallelism int) (*TemplateIndex, error) {
	if moved < 0 || moved >= len(dims) {
		return nil, fmt.Errorf("planner: moved dimension %d of %d", moved, len(dims))
	}
	nd := len(dims)
	bm := dims[moved].Bins
	idx := &TemplateIndex{
		dims:    dims,
		moved:   moved,
		fixedLo: append([]int(nil), fixedLo...),
		fixedHi: append([]int(nil), fixedHi...),
		passAll: make([]int64, bm),
		views:   make([][]int64, nd),
	}
	viewLen := make([]int, nd)
	for v := 0; v < nd; v++ {
		if v != moved {
			viewLen[v] = (bm + 1) * dims[v].Bins
			idx.views[v] = make([]int64, viewLen[v])
		}
	}

	n := tbl.NumRows()
	workers := 1
	if parallelism != 1 && n >= 2*morsel.Size {
		workers = morsel.Workers(parallelism, n)
	}
	passParts := make([][]int64, workers)
	viewParts := make([][][]int64, workers)
	for w := 0; w < workers; w++ {
		if w == 0 {
			passParts[0] = idx.passAll
			viewParts[0] = idx.views
			continue
		}
		passParts[w] = make([]int64, bm)
		vp := make([][]int64, nd)
		for v := 0; v < nd; v++ {
			if v != moved {
				vp[v] = make([]int64, viewLen[v])
			}
		}
		viewParts[w] = vp
	}

	err := morsel.RunCtx(ctx, n, workers, func(w, _, lo, hi int) {
		idx.countRows(binFns, passParts[w], viewParts[w], lo, hi)
	})
	if err != nil {
		return nil, fmt.Errorf("planner: index build aborted: %w", err)
	}
	for w := 1; w < workers; w++ {
		for b, v := range passParts[w] {
			idx.passAll[b] += v
		}
		for vd := 0; vd < nd; vd++ {
			if vd == moved {
				continue
			}
			dst := idx.views[vd]
			for i, v := range viewParts[w][vd] {
				dst[i] += v
			}
		}
	}

	// Prefix-sum along the moved axis: row i of each view becomes the
	// count over moved bins [0, i), so a moved box [lo, hi] is one row
	// difference.
	idx.prefAll = make([]int64, bm+1)
	for b := 0; b < bm; b++ {
		idx.prefAll[b+1] = idx.prefAll[b] + idx.passAll[b]
	}
	for vd := 0; vd < nd; vd++ {
		if vd == moved {
			continue
		}
		bv := dims[vd].Bins
		m := idx.views[vd]
		// Rows were scattered at moved-bin+1; integrate downward.
		for row := 1; row <= bm; row++ {
			base, prev := row*bv, (row-1)*bv
			for b := 0; b < bv; b++ {
				m[base+b] += m[prev+b]
			}
		}
	}
	return idx, nil
}

// countRows bins rows [lo, hi) into the worker's partials. A row enters
// passAll (and every view) when all fixed filters pass, and enters view v
// alone when v's fixed filter is the only failure — the
// all-filters-but-v's-own count the view needs.
func (x *TemplateIndex) countRows(binFns []func(row int) int, passAll []int64, views [][]int64, lo, hi int) {
	nd := len(x.dims)
	var bins [32]int
	bv := make([]int, nd)
	for v := 0; v < nd; v++ {
		bv[v] = x.dims[v].Bins
	}
	for row := lo; row < hi; row++ {
		fails, failDim := 0, -1
		for i := 0; i < nd; i++ {
			b := binFns[i](row)
			bins[i] = b
			if i != x.moved && (b < x.fixedLo[i] || b > x.fixedHi[i]) {
				fails++
				if fails > 1 {
					break
				}
				failDim = i
			}
		}
		if fails > 1 {
			continue
		}
		bm := bins[x.moved]
		if fails == 1 {
			// Only failDim's own filter rejects the row: it still counts
			// toward failDim's view (which excludes that filter).
			views[failDim][(bm+1)*bv[failDim]+bins[failDim]]++
			continue
		}
		passAll[bm]++
		for v := 0; v < nd; v++ {
			if v != x.moved {
				views[v][(bm+1)*bv[v]+bins[v]]++
			}
		}
	}
}

// Matches reports whether a brush snapshot belongs to this template: same
// moved dimension and identical fixed bin boxes (the moved window is
// free).
func (x *TemplateIndex) Matches(moved int, filters []*datacube.Range) bool {
	if moved != x.moved || len(filters) != len(x.dims) {
		return false
	}
	for i, d := range x.dims {
		if i == moved {
			continue
		}
		lo, hi := 0, d.Bins-1
		if filters[i] != nil {
			lo, hi = BinRange(d, *filters[i])
		}
		if lo != x.fixedLo[i] || hi != x.fixedHi[i] {
			return false
		}
	}
	return true
}

// AnswerInto computes every dimension's histogram and the filtered total
// for a snapshot matching the template, into hists (one pre-sized slice
// per dimension). Results are bit-identical to the prefix cube's: each
// histogram applies all filters including the target's own box mask, and
// an empty box anywhere zeroes everything.
func (x *TemplateIndex) AnswerInto(filters []*datacube.Range, hists [][]int64) (int64, error) {
	nd := len(x.dims)
	if len(filters) != nd || len(hists) != nd {
		return 0, fmt.Errorf("planner: %d filters / %d hists for %d dimensions", len(filters), len(hists), nd)
	}
	var loBuf, hiBuf [32]int
	lo, hi := loBuf[:nd], hiBuf[:nd]
	empty := false
	for i, d := range x.dims {
		if len(hists[i]) != d.Bins {
			return 0, fmt.Errorf("planner: hist %d has %d bins, want %d", i, len(hists[i]), d.Bins)
		}
		for b := range hists[i] {
			hists[i][b] = 0
		}
		lo[i], hi[i] = 0, d.Bins-1
		if filters[i] != nil {
			lo[i], hi[i] = BinRange(d, *filters[i])
			if lo[i] > hi[i] {
				empty = true
			}
		}
	}
	if empty {
		return 0, nil
	}
	m := x.moved
	loM, hiM := lo[m], hi[m]
	// Moved dimension: passAll already applies every fixed filter; its own
	// filter is the box mask.
	hm := hists[m]
	for b := loM; b <= hiM; b++ {
		hm[b] = x.passAll[b]
	}
	total := x.prefAll[hiM+1] - x.prefAll[loM]
	// Views: one row difference per dimension, masked to its own box.
	for v := 0; v < nd; v++ {
		if v == m {
			continue
		}
		bv := x.dims[v].Bins
		top := x.views[v][(hiM+1)*bv : (hiM+2)*bv]
		bot := x.views[v][loM*bv : (loM+1)*bv]
		hv := hists[v]
		for b := lo[v]; b <= hi[v]; b++ {
			hv[b] = top[b] - bot[b]
		}
	}
	return total, nil
}

// AnswerUnits is the work-unit count of one AnswerInto — the Σ bins the
// cost model prices.
func (x *TemplateIndex) AnswerUnits() float64 {
	u := 0
	for _, d := range x.dims {
		u += d.Bins
	}
	return float64(u)
}

// ApproxBytes reports the index's resident size for the byte-budgeted
// store (opt.Sized).
func (x *TemplateIndex) ApproxBytes() int64 {
	n := int64(len(x.passAll) + len(x.prefAll))
	for _, v := range x.views {
		n += int64(len(v))
	}
	return 8*n + 256 // slices + struct and box overhead
}

// Moved returns the template's moving dimension.
func (x *TemplateIndex) Moved() int { return x.moved }
