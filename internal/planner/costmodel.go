// Package planner is the selection-aware materialization planner: a
// per-structure cost model seeded from BENCH_brush.json-style calibration
// and refined online from observed execute latencies, choosing the
// cheapest available answer structure for every brush query, plus a
// hot-template detector that materializes dedicated per-selection indexes
// (matindex.go) for the drag patterns a session keeps re-issuing — the
// Mosaic Selections idea applied to this repo's five answer structures.
//
// The policy surface (which structure a given interaction class should
// ride, and why) lives in internal/taxonomy's advisor; this package is the
// executable form of that table, with the crossover constants replaced by
// fitted linear models.
package planner

import (
	"sync"
	"time"

	"repro/internal/taxonomy"
)

// Structure enumerates the answer structures the planner chooses among.
// The first two exist at the crossfilter layer (value-precision filtering);
// the rest answer the serving layer's bin-space brush queries and are
// interchangeable bit for bit.
type Structure int

// Answer structures, in rough order of construction cost.
const (
	// EngineScan is the bin-box table scan: one pass over the backing
	// table binning every row — the differential oracle, and the only
	// structure that needs no precomputation.
	EngineScan Structure = iota
	// CrossFull is crossfilter's morsel-parallel full reconcile scan.
	CrossFull
	// CrossDelta is crossfilter's sorted-index delta scan (O(Δ log n)).
	CrossDelta
	// DenseCube walks the dense cube's filtered cell box.
	DenseCube
	// PrefixCube differences the summed-area cube's corners.
	PrefixCube
	// MatIndex is a planner-materialized per-selection index: the moved
	// dimension's axis prefix-summed against every view, so one template's
	// drag steps cost O(Σ bins) regardless of dimensionality.
	MatIndex

	numStructures
)

// String names the structure with taxonomy's canonical identifiers, so the
// planner's metrics and the advisor's decision table speak one vocabulary.
func (s Structure) String() string {
	switch s {
	case EngineScan:
		return taxonomy.StructEngineScan
	case CrossFull:
		return taxonomy.StructFullScan
	case CrossDelta:
		return taxonomy.StructDeltaScan
	case DenseCube:
		return taxonomy.StructDenseCube
	case PrefixCube:
		return taxonomy.StructPrefixCube
	case MatIndex:
		return taxonomy.StructMatIndex
	default:
		return "unknown"
	}
}

// Structures returns every structure in declaration order — the stable
// series set for the planner_choice_total exposition.
func Structures() []Structure {
	out := make([]Structure, numStructures)
	for i := range out {
		out[i] = Structure(i)
	}
	return out
}

// Coeff is one structure's linear cost model: predicted latency in
// nanoseconds for a query touching `units` of the structure's work unit
// (rows scanned, records reconciled, cells walked, corner differences).
type Coeff struct {
	FixedNS   float64 // per-query overhead
	PerUnitNS float64 // marginal cost per work unit
}

// Estimate predicts the latency of units of work, in nanoseconds.
func (c Coeff) Estimate(units float64) float64 {
	if units < 0 {
		units = 0
	}
	return c.FixedNS + c.PerUnitNS*units
}

// CalPoint is one calibration observation: a measured latency at a known
// work size.
type CalPoint struct {
	Units float64
	NS    float64
}

// CostModel predicts per-structure query latency from seeded calibration,
// optionally refitted from measured points, and refined online by an EWMA
// over observed executions. Safe for concurrent use.
type CostModel struct {
	mu     sync.Mutex
	coeffs [numStructures]Coeff
}

// Default per-unit costs, distilled from BENCH_brush.json at 434874 rows:
// the crossfilter full scan took 2.06 ms (≈4.7 ns/row), the delta scan
// ~19 ns per reconciled record (the 0.25 crossover's other side), the
// prefix cube 572 ns over ~250 corner differences (≈2.3 ns each), and the
// dense cube 35.5 µs over ~24k cell walks (≈1.5 ns each). The raw bin-box
// table scan pays roughly an L2 miss per row across d columns.
const (
	calScanPerRowDimNS = 2.8
	calCrossFullNS     = 4.75
	calCrossDeltaNS    = 19.0
	calDenseCellNS     = 1.5
	calPrefixDiffNS    = 2.3
	calMatIndexAddNS   = 2.3
	calFixedNS         = 150 // per-query overhead shared by the cheap structures
)

// DefaultModel returns the model seeded from the BENCH_brush.json
// calibration. The seeds reproduce the repo's historical heuristics —
// crossfilter's DefaultCrossover falls out as calCrossFull/calCrossDelta =
// 0.25 — and the Observe feedback loop corrects them for the host at hand.
func DefaultModel() *CostModel {
	m := &CostModel{}
	m.coeffs[EngineScan] = Coeff{FixedNS: calFixedNS, PerUnitNS: calScanPerRowDimNS}
	m.coeffs[CrossFull] = Coeff{FixedNS: calFixedNS, PerUnitNS: calCrossFullNS}
	m.coeffs[CrossDelta] = Coeff{FixedNS: calFixedNS, PerUnitNS: calCrossDeltaNS}
	m.coeffs[DenseCube] = Coeff{FixedNS: calFixedNS, PerUnitNS: calDenseCellNS}
	m.coeffs[PrefixCube] = Coeff{FixedNS: calFixedNS, PerUnitNS: calPrefixDiffNS}
	m.coeffs[MatIndex] = Coeff{FixedNS: calFixedNS, PerUnitNS: calMatIndexAddNS}
	return m
}

// Coeffs returns the structure's current coefficients.
func (m *CostModel) Coeffs(s Structure) Coeff {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coeffs[s]
}

// SetCoeffs pins the structure's coefficients (tests, explicit
// calibration).
func (m *CostModel) SetCoeffs(s Structure, c Coeff) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coeffs[s] = c
}

// Fit replaces the structure's coefficients with the least-squares line
// through measured (units, ns) points — the offline calibration path fed
// by BENCH_brush.json-style sweeps. Fewer than two distinct sizes cannot
// identify both coefficients; one point pins the per-unit slope through
// the origin-plus-seed-fixed, zero points are a no-op. A fitted negative
// coefficient is clamped to zero: cost never decreases with work.
func (m *CostModel) Fit(s Structure, pts []CalPoint) {
	if len(pts) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(pts) == 1 {
		if pts[0].Units > 0 {
			per := (pts[0].NS - m.coeffs[s].FixedNS) / pts[0].Units
			if per < 0 {
				per = 0
			}
			m.coeffs[s].PerUnitNS = per
		}
		return
	}
	var n, sumX, sumY, sumXX, sumXY float64
	for _, p := range pts {
		n++
		sumX += p.Units
		sumY += p.NS
		sumXX += p.Units * p.Units
		sumXY += p.Units * p.NS
	}
	det := n*sumXX - sumX*sumX
	if det == 0 {
		// All points share one size: only the total at that size is
		// identified; keep the seed split and scale the slope.
		if sumX > 0 {
			per := (sumY - n*m.coeffs[s].FixedNS) / sumX
			if per < 0 {
				per = 0
			}
			m.coeffs[s].PerUnitNS = per
		}
		return
	}
	slope := (n*sumXY - sumX*sumY) / det
	fixed := (sumY - slope*sumX) / n
	if slope < 0 {
		slope = 0
	}
	if fixed < 0 {
		fixed = 0
	}
	m.coeffs[s] = Coeff{FixedNS: fixed, PerUnitNS: slope}
}

// obsAlpha is the EWMA weight of one online observation against the
// accumulated estimate — heavy enough to adapt to the host within tens of
// queries, light enough that one descheduled outlier doesn't flip
// decisions.
const obsAlpha = 0.2

// Observe refines the structure's per-unit cost from one measured
// execution. Only the slope adapts: the fixed overhead is dominated by
// work the planner can't change (allocation, dispatch) and folding jitter
// into it would let tiny queries swing the model wildly.
func (m *CostModel) Observe(s Structure, units float64, d time.Duration) {
	if units <= 0 || d <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	per := (float64(d.Nanoseconds()) - m.coeffs[s].FixedNS) / units
	if per < 0 {
		per = 0
	}
	m.coeffs[s].PerUnitNS = (1-obsAlpha)*m.coeffs[s].PerUnitNS + obsAlpha*per
}

// Estimate predicts the structure's latency for units of work, in
// nanoseconds.
func (m *CostModel) Estimate(s Structure, units float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coeffs[s].Estimate(units)
}

// Candidate is one available structure with the work units this query
// would cost on it. Callers enumerate only structures that exist — an
// absent index is simply not a candidate, so the model can never select
// it.
type Candidate struct {
	S     Structure
	Units float64
}

// Choose returns the candidate with the lowest predicted latency, and the
// prediction. Ties break toward the earlier candidate. An empty candidate
// list returns (-1, 0).
func (m *CostModel) Choose(cands []Candidate) (Structure, float64) {
	if len(cands) == 0 {
		return -1, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	best, bestNS := cands[0].S, m.coeffs[cands[0].S].Estimate(cands[0].Units)
	for _, c := range cands[1:] {
		if ns := m.coeffs[c.S].Estimate(c.Units); ns < bestNS {
			best, bestNS = c.S, ns
		}
	}
	return best, bestNS
}

// ChooseDelta implements crossfilter.ScanChooser: the delta scan wins when
// reconciling `changed` records is predicted cheaper than a full scan over
// all `total` records. With the default calibration this reproduces
// crossfilter's DefaultCrossover = 0.25 exactly; online observations move
// the break-even to wherever this host's memory system puts it.
func (m *CostModel) ChooseDelta(changed, total int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coeffs[CrossDelta].Estimate(float64(changed)) <= m.coeffs[CrossFull].Estimate(float64(total))
}
