package planner

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/crossfilter"
	"repro/internal/datacube"
	"repro/internal/dataset"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

// testTable builds the differential fixture: the road dataset under three
// deliberately unequal bin counts (equal bins would hide transposed-axis
// bugs in the view matrices).
func testTable(t testing.TB, rows int) (*storage.Table, []datacube.Dim) {
	t.Helper()
	tbl := dataset.Roads(7, rows)
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	dims := []datacube.Dim{
		{Name: "x", Lo: lonLo, Hi: lonHi, Bins: 16},
		{Name: "y", Lo: latLo, Hi: latHi, Bins: 12},
		{Name: "z", Lo: altLo, Hi: altHi, Bins: 20},
	}
	return tbl, dims
}

func newHists(dims []datacube.Dim) [][]int64 {
	h := make([][]int64, len(dims))
	for d := range h {
		h[d] = make([]int64, dims[d].Bins)
	}
	return h
}

// oraBin is the oracle's own copy of the bin arithmetic — written out
// independently so a bug in the production binOf cannot cancel against
// itself.
func oraBin(d datacube.Dim, v float64) int {
	if d.Hi <= d.Lo {
		return 0
	}
	b := int((v - d.Lo) / (d.Hi - d.Lo) * float64(d.Bins))
	if b < 0 {
		return 0
	}
	if b >= d.Bins {
		return d.Bins - 1
	}
	return b
}

func oraBinRange(d datacube.Dim, r datacube.Range) (int, int) {
	lo, hi := oraBin(d, r.Lo), oraBin(d, r.Hi)
	if hi > lo && d.Lo+(d.Hi-d.Lo)*float64(hi)/float64(d.Bins) == r.Hi {
		hi--
	}
	return lo, hi
}

// oracleAnswer is the single-threaded reference: one plain loop over every
// row, no morsels, no precomputed structures. Everything the planner
// returns must match it bit for bit.
func oracleAnswer(tbl *storage.Table, dims []datacube.Dim, filters []*datacube.Range) (int64, [][]int64) {
	nd := len(dims)
	hists := newHists(dims)
	lo, hi := make([]int, nd), make([]int, nd)
	for i, d := range dims {
		lo[i], hi[i] = 0, d.Bins-1
		if filters[i] != nil {
			lo[i], hi[i] = oraBinRange(d, *filters[i])
			if lo[i] > hi[i] {
				return 0, hists
			}
		}
	}
	cols := make([]*storage.Column, nd)
	for i, d := range dims {
		cols[i] = tbl.Column(d.Name)
	}
	var total int64
	bins := make([]int, nd)
	for row := 0; row < tbl.NumRows(); row++ {
		pass := true
		for i, d := range dims {
			b := oraBin(d, cols[i].Float(row))
			if b < lo[i] || b > hi[i] {
				pass = false
				break
			}
			bins[i] = b
		}
		if !pass {
			continue
		}
		total++
		for i := range dims {
			hists[i][bins[i]]++
		}
	}
	return total, hists
}

func compareAnswer(t *testing.T, tag string, wantTotal, gotTotal int64, want, got [][]int64) {
	t.Helper()
	if wantTotal != gotTotal {
		t.Fatalf("%s: total = %d, oracle %d", tag, gotTotal, wantTotal)
	}
	for d := range want {
		for b := range want[d] {
			if want[d][b] != got[d][b] {
				t.Fatalf("%s: hist[%d][%d] = %d, oracle %d", tag, d, b, got[d][b], want[d][b])
			}
		}
	}
}

// forceModel pins one structure as free and every other as astronomically
// expensive, so the differential suite can put each executor on the hook
// by name.
func forceModel(s Structure) *CostModel {
	m := DefaultModel()
	for _, o := range Structures() {
		c := Coeff{FixedNS: 1e15, PerUnitNS: 1e15}
		if o == s {
			c = Coeff{}
		}
		m.SetCoeffs(o, c)
	}
	return m
}

// dragStep is a template-stable drag snapshot: fixed sub-range filters on
// every dimension except moved, whose quarter-width window slides with
// step.
func dragStep(dims []datacube.Dim, moved, step, steps int) []*datacube.Range {
	filters := make([]*datacube.Range, len(dims))
	for i, d := range dims {
		span := d.Hi - d.Lo
		var r datacube.Range
		if i == moved {
			lo := d.Lo + span*0.75*float64(step%steps)/float64(steps)
			r = datacube.Range{Lo: lo, Hi: lo + span*0.25}
		} else {
			r = datacube.Range{Lo: d.Lo + span*0.2, Hi: d.Lo + span*0.8}
		}
		rr := r
		filters[i] = &rr
	}
	return filters
}

// randomFilters draws a brush snapshot that exercises the edge cases: nil
// (unfiltered) dimensions, full-domain ranges, degenerate points, inverted
// (empty) ranges, and out-of-domain endpoints that must clamp.
func randomFilters(rng *rand.Rand, dims []datacube.Dim) []*datacube.Range {
	filters := make([]*datacube.Range, len(dims))
	for i, d := range dims {
		span := d.Hi - d.Lo
		switch rng.Intn(10) {
		case 0: // unfiltered
			filters[i] = nil
		case 1: // whole domain
			filters[i] = &datacube.Range{Lo: d.Lo, Hi: d.Hi}
		case 2: // inverted: an empty selection zeroes the whole answer
			filters[i] = &datacube.Range{Lo: d.Lo + span*0.7, Hi: d.Lo + span*0.3}
		case 3: // degenerate point
			v := d.Lo + span*rng.Float64()
			filters[i] = &datacube.Range{Lo: v, Hi: v}
		case 4: // spills past the domain edges: clamps
			filters[i] = &datacube.Range{Lo: d.Lo - span, Hi: d.Hi + span}
		default:
			a := d.Lo + span*rng.Float64()
			b := d.Lo + span*rng.Float64()
			if a > b {
				a, b = b, a
			}
			filters[i] = &datacube.Range{Lo: a, Hi: b}
		}
	}
	return filters
}

// TestPlannerDifferential: every executor the planner can choose —
// engine scan, dense cube, prefix cube, and the materialized template
// index — answers randomized brushes bit-identically to the serial
// oracle, at every parallelism level.
func TestPlannerDifferential(t *testing.T) {
	tbl, dims := testTable(t, 30000)
	cube, err := datacube.BuildWith(tbl, dims, 0)
	if err != nil {
		t.Fatal(err)
	}
	prefix := datacube.NewPrefix(cube)

	for _, par := range []int{1, 2, 4, 8} {
		for _, forced := range []Structure{EngineScan, DenseCube, PrefixCube, MatIndex} {
			t.Run(fmt.Sprintf("%s/p%d", forced, par), func(t *testing.T) {
				pl, err := New(tbl, cube, dims, Config{
					Model: forceModel(forced), Prefix: prefix,
					Parallelism: par, HotStreak: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer pl.Close()

				rng := rand.New(rand.NewSource(int64(100*par) + int64(forced)))
				hists := newHists(dims)
				session := fmt.Sprintf("s-%v-%d", forced, par)
				const steps = 24
				for step := 0; step < steps; step++ {
					var filters []*datacube.Range
					if forced == MatIndex {
						// A stable template, so the index materializes and
						// the back half of the loop runs on it.
						filters = dragStep(dims, 0, step, steps)
					} else {
						filters = randomFilters(rng, dims)
					}
					total, choice, err := pl.Answer(session, 0, filters, hists)
					if err != nil {
						t.Fatal(err)
					}
					wantTotal, want := oracleAnswer(tbl, dims, filters)
					compareAnswer(t, fmt.Sprintf("step %d (%v)", step, choice), wantTotal, total, want, hists)
					if forced == MatIndex && step == steps/2 {
						pl.WaitBuilds()
					}
				}
				st := pl.Stats()
				if forced == MatIndex {
					if st.Materializations != 1 {
						t.Errorf("materializations = %d, want 1", st.Materializations)
					}
					if st.Choices[taxonomy.StructMatIndex] == 0 {
						t.Error("mat-index never chosen after the swap-in")
					}
				} else if st.Choices[forced.String()] != steps {
					t.Errorf("choices[%v] = %d, want %d", forced, st.Choices[forced.String()], steps)
				}
			})
		}
	}
}

// TestPlannerSwapInMidSession: concurrent drag sessions under the default
// model, each racing its own template's background materialization — every
// answer, before, during, and after the swap-in, matches the oracle.
// Run under -race this is the suite's main concurrency proof.
func TestPlannerSwapInMidSession(t *testing.T) {
	tbl, dims := testTable(t, 12000)
	cube, err := datacube.BuildWith(tbl, dims, 0)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(tbl, cube, dims, Config{
		Prefix: datacube.NewPrefix(cube), HotStreak: 3, MaxBuilds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	const steps = 40
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for moved := 0; moved < len(dims); moved++ {
		wg.Add(1)
		go func(moved int) {
			defer wg.Done()
			hists := newHists(dims)
			session := fmt.Sprintf("dragger-%d", moved)
			for step := 0; step < steps; step++ {
				filters := dragStep(dims, moved, step, steps)
				total, _, err := pl.Answer(session, moved, filters, hists)
				if err != nil {
					errs <- err
					return
				}
				wantTotal, want := oracleAnswer(tbl, dims, filters)
				if wantTotal != total {
					errs <- fmt.Errorf("moved %d step %d: total %d, oracle %d", moved, step, total, wantTotal)
					return
				}
				for d := range want {
					for b := range want[d] {
						if want[d][b] != hists[d][b] {
							errs <- fmt.Errorf("moved %d step %d: hist[%d][%d] = %d, oracle %d",
								moved, step, d, b, hists[d][b], want[d][b])
							return
						}
					}
				}
			}
		}(moved)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	pl.WaitBuilds()
	st := pl.Stats()
	if st.Materializations == 0 {
		t.Error("no template materialized across three sustained drags")
	}
	if st.IndexCount != st.Materializations-st.Evictions {
		t.Errorf("index accounting: count %d, built %d, evicted %d", st.IndexCount, st.Materializations, st.Evictions)
	}
}

// TestPlannerBudgetEviction: a budget sized for two indexes under four hot
// templates forces evictions; the accounting stays exact and the answers
// stay oracle-identical after the churn.
func TestPlannerBudgetEviction(t *testing.T) {
	tbl, dims := testTable(t, 8000)
	prefix, err := datacube.BuildPrefix(tbl, dims, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One index for these dims costs ~4.9 KB (see ApproxBytes); give the
	// store room for two.
	pl, err := New(tbl, nil, dims, Config{Prefix: prefix, HotStreak: 1, Budget: 10 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	hists := newHists(dims)
	for tpl := 0; tpl < 4; tpl++ {
		session := fmt.Sprintf("tpl-%d", tpl)
		for step := 0; step < 3; step++ {
			// Each template pins a different fixed box on the non-moved dims.
			filters := dragStep(dims, 0, step, 8)
			for i := 1; i < len(dims); i++ {
				span := dims[i].Hi - dims[i].Lo
				filters[i].Lo = dims[i].Lo + span*0.1*float64(tpl)
			}
			total, _, err := pl.Answer(session, 0, filters, hists)
			if err != nil {
				t.Fatal(err)
			}
			wantTotal, want := oracleAnswer(tbl, dims, filters)
			compareAnswer(t, fmt.Sprintf("tpl %d step %d", tpl, step), wantTotal, total, want, hists)
		}
		pl.WaitBuilds()
	}
	st := pl.Stats()
	if st.Materializations != 4 {
		t.Fatalf("materializations = %d, want 4", st.Materializations)
	}
	if st.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 (four indexes through a two-index budget)", st.Evictions)
	}
	if st.IndexCount != st.Materializations-st.Evictions {
		t.Errorf("index count %d != built %d - evicted %d", st.IndexCount, st.Materializations, st.Evictions)
	}
	if st.IndexBytes < 0 || st.IndexBytes > st.BudgetBytes || st.StoreBytes > st.BudgetBytes {
		t.Errorf("byte accounting out of bounds: index %d, store %d, budget %d",
			st.IndexBytes, st.StoreBytes, st.BudgetBytes)
	}
	// The store keeps answering correctly after the churn.
	filters := dragStep(dims, 0, 5, 8)
	total, _, err := pl.Answer("after", 0, filters, hists)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal, want := oracleAnswer(tbl, dims, filters)
	compareAnswer(t, "post-eviction", wantTotal, total, want, hists)
}

// TestPlannerLazyPrefix: with LazyPrefix the cube is built in the
// background on first demand; answers before, during, and after the build
// are oracle-identical, and the build happens exactly once.
func TestPlannerLazyPrefix(t *testing.T) {
	tbl, dims := testTable(t, 10000)
	cube, err := datacube.BuildWith(tbl, dims, 0)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(tbl, cube, dims, Config{LazyPrefix: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()

	hists := newHists(dims)
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 10; step++ {
		filters := randomFilters(rng, dims)
		total, _, err := pl.Answer("lazy", 0, filters, hists)
		if err != nil {
			t.Fatal(err)
		}
		wantTotal, want := oracleAnswer(tbl, dims, filters)
		compareAnswer(t, fmt.Sprintf("lazy step %d", step), wantTotal, total, want, hists)
		if step == 4 {
			pl.WaitBuilds()
		}
	}
	if n := pl.Stats().PrefixBuilds; n != 1 {
		t.Errorf("prefix builds = %d, want 1", n)
	}

	// Without any structure source the constructor refuses.
	if _, err := New(tbl, nil, dims, Config{}); err == nil {
		t.Error("New accepted a config with no prefix, no cube, and LazyPrefix off")
	}
}

// TestTemplateIndexUnits: the index answers exactly what it claims to
// cost, sizes itself plausibly, and Matches tracks template identity.
func TestTemplateIndexUnits(t *testing.T) {
	tbl, dims := testTable(t, 5000)
	filters := dragStep(dims, 1, 0, 8)
	lo, hi, ok := TemplateOf(dims, 1, filters)
	if !ok {
		t.Fatal("TemplateOf rejected a valid drag snapshot")
	}
	if lo[1] != 0 || hi[1] != dims[1].Bins-1 {
		t.Fatalf("moved slot not full-range: [%d,%d]", lo[1], hi[1])
	}
	fns, err := binners(tbl, dims)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildTemplateIndex(nil, tbl, dims, 1, lo, hi, fns, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(16 + 12 + 20); idx.AnswerUnits() != want {
		t.Errorf("AnswerUnits = %v, want %v (Σ bins)", idx.AnswerUnits(), want)
	}
	if idx.ApproxBytes() <= 0 {
		t.Errorf("ApproxBytes = %d", idx.ApproxBytes())
	}
	if idx.Moved() != 1 {
		t.Errorf("Moved = %d", idx.Moved())
	}
	if !idx.Matches(1, filters) {
		t.Error("index rejects its own template")
	}
	if idx.Matches(0, filters) {
		t.Error("index matches a different moved dimension")
	}
	other := dragStep(dims, 1, 0, 8)
	other[0].Lo = dims[0].Lo // widened fixed box: different template
	if idx.Matches(1, other) {
		t.Error("index matches a different fixed box")
	}

	// The moved window itself may vary freely, including to empty.
	hists := newHists(dims)
	empty := dragStep(dims, 1, 0, 8)
	empty[1] = &datacube.Range{Lo: dims[1].Hi, Hi: dims[1].Lo}
	total, err := idx.AnswerInto(empty, hists)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("empty moved window: total = %d", total)
	}
	for d := range hists {
		for b, v := range hists[d] {
			if v != 0 {
				t.Fatalf("empty moved window: hist[%d][%d] = %d", d, b, v)
			}
		}
	}

	// TemplateOf rejects malformed input.
	if _, _, ok := TemplateOf(dims, -1, filters); ok {
		t.Error("TemplateOf accepted moved = -1")
	}
	if _, _, ok := TemplateOf(dims, len(dims), filters); ok {
		t.Error("TemplateOf accepted moved past the last dimension")
	}
	if _, _, ok := TemplateOf(dims, 0, filters[:1]); ok {
		t.Error("TemplateOf accepted a short filter slice")
	}
}

// TestBinRangeEdges: the re-derived bin arithmetic honors the cube
// family's half-open-upper convention at the awkward spots.
func TestBinRangeEdges(t *testing.T) {
	d := datacube.Dim{Name: "v", Lo: 0, Hi: 10, Bins: 10}
	for _, tc := range []struct {
		r      datacube.Range
		lo, hi int
	}{
		{datacube.Range{Lo: 0, Hi: 10}, 0, 9},    // whole domain
		{datacube.Range{Lo: 0, Hi: 5}, 0, 4},     // upper edge on a boundary: exclusive
		{datacube.Range{Lo: 2.5, Hi: 2.5}, 2, 2}, // point
		{datacube.Range{Lo: 7, Hi: 3}, 7, 3},     // inverted: lo > hi marks empty
		{datacube.Range{Lo: -5, Hi: 50}, 0, 9},   // clamps
	} {
		lo, hi := BinRange(d, tc.r)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("BinRange(%v) = [%d,%d], want [%d,%d]", tc.r, lo, hi, tc.lo, tc.hi)
		}
	}
	flat := datacube.Dim{Name: "flat", Lo: 3, Hi: 3, Bins: 5}
	if lo, hi := BinRange(flat, datacube.Range{Lo: 0, Hi: 9}); lo != 0 || hi != 0 {
		t.Errorf("degenerate dim: [%d,%d], want [0,0]", lo, hi)
	}
}

// TestScanChooserDifferential: crossfilter driven by the cost model's
// ChooseDelta returns histograms and totals bit-identical to an unwired
// crossfilter across a drag-plus-jump workload, while actually exercising
// both scan paths.
func TestScanChooserDifferential(t *testing.T) {
	tbl, _ := testTable(t, 20000)
	names := []string{"x", "y", "z"}
	withChooser, err := crossfilter.New(tbl, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := crossfilter.New(tbl, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	withChooser.SetScanChooser(DefaultModel())

	check := func(tag string) {
		t.Helper()
		if a, b := withChooser.Total(), plain.Total(); a != b {
			t.Fatalf("%s: total %d vs %d", tag, a, b)
		}
		for d := range names {
			a, b := withChooser.Histogram(d), plain.Histogram(d)
			for bin := range a {
				if a[bin] != b[bin] {
					t.Fatalf("%s: hist[%d][%d] = %d vs %d", tag, d, bin, a[bin], b[bin])
				}
			}
		}
	}

	lonLo, lonHi, latLo, latHi, _, _ := dataset.RoadBounds()
	// A drag: small per-step deltas ride the sorted-index path.
	for i := 0; i < 15; i++ {
		lo := lonLo + float64(i)*0.01
		withChooser.SetFilter(0, lo, lonHi-1)
		plain.SetFilter(0, lo, lonHi-1)
		check(fmt.Sprintf("drag %d", i))
	}
	// Jumps: page-wide changes flip most records and take the full scan.
	for i, r := range [][2]float64{{latLo, latLo + 0.1}, {latLo, latHi}, {latLo + 0.5, latLo + 0.6}} {
		withChooser.SetFilter(1, r[0], r[1])
		plain.SetFilter(1, r[0], r[1])
		check(fmt.Sprintf("jump %d", i))
	}
	withChooser.ClearFilter(0)
	plain.ClearFilter(0)
	check("clear")

	delta, full := withChooser.ScanStats()
	if delta == 0 || full == 0 {
		t.Errorf("chooser never split paths: delta %d, full %d", delta, full)
	}
}
