package planner

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/datacube"
	"repro/internal/morsel"
	"repro/internal/opt"
	"repro/internal/storage"
)

// Config tunes a Planner. The zero value means: default cost model, 64 MB
// byte budget, hot streak of 8, eager prefix cube required from the
// caller, GOMAXPROCS build parallelism, one background build at a time.
type Config struct {
	// Model predicts per-structure latency; nil means DefaultModel().
	Model *CostModel
	// Budget bounds the shared store (materialized indexes + cached
	// results) in approximate resident bytes; <= 0 means DefaultBudget.
	Budget int64
	// HotStreak is how many consecutive same-template queries a session
	// must issue before its template is materialized; <= 0 means
	// DefaultHotStreak.
	HotStreak int
	// Prefix installs an eagerly built summed-area cube. Leave nil with
	// LazyPrefix to defer that build off the startup path.
	Prefix *datacube.PrefixCube
	// LazyPrefix builds the prefix cube asynchronously on first demand
	// instead of requiring it up front.
	LazyPrefix bool
	// Parallelism caps background build workers; <= 0 means GOMAXPROCS.
	Parallelism int
	// MaxBuilds caps concurrent background materializations; <= 0 means 1.
	MaxBuilds int
}

// Defaults for Config's zero fields.
const (
	DefaultBudget    = 64 << 20
	DefaultHotStreak = 8
)

// maxSessions bounds the per-session template-tracking map; past it the
// map resets wholesale (streaks restart, indexes stay cached in the
// store), so an adversarial session-id stream cannot grow memory.
const maxSessions = 8192

// session is one client's drag-detection state: the last template seen,
// how many consecutive queries matched it, and a cached pointer to its
// materialized index so the hot path touches no locks or map lookups
// while the template holds.
type session struct {
	mu         sync.Mutex
	hasTpl     bool
	moved      int
	tplLo      []int
	tplHi      []int
	streak     int
	key        string         // template store key ("ix|..."), built on template change
	idx        *TemplateIndex // cached swap-in, revalidated against evictEpoch
	epoch      uint64
	lastLookup int // streak value at the last store lookup, to avoid one per query
}

// Planner picks the cheapest available answer structure per brush query
// and materializes per-selection indexes for templates a session keeps
// re-issuing. Safe for concurrent use.
type Planner struct {
	tbl    *storage.Table
	cube   *datacube.Cube
	dims   []datacube.Dim
	binFns []func(row int) int
	model  *CostModel

	prefix         atomic.Pointer[datacube.PrefixCube]
	lazyPrefix     bool
	prefixBuilding atomic.Bool
	prefixBuilds   atomic.Int64

	// store is the single byte-budgeted LRU shared by materialized
	// indexes ("ix|" keys) and caller-cached results, guarded by storeMu.
	storeMu sync.Mutex
	store   *opt.ResultLRU

	buildMu  sync.Mutex
	building map[string]bool
	closed   bool
	wg       sync.WaitGroup
	sem      chan struct{}

	sessMu   sync.Mutex
	sessions map[string]*session

	hotStreak   int
	parallelism int

	matUnits    float64 // Σ bins: one MatIndex answer
	prefixUnits float64 // Σ bins·2^(d-1) + 2^d: one prefix-cube answer
	scanUnits   float64 // rows·dims: one engine scan

	choices          [numStructures]atomic.Int64
	materializations atomic.Int64
	evictEpoch       atomic.Uint64
	indexCount       atomic.Int64
	indexBytes       atomic.Int64
}

// New builds a planner over the backing table and its cube dimensions.
// cube may be nil (no dense-cube candidate); a prefix cube comes from
// cfg.Prefix or, with cfg.LazyPrefix, is built in the background on first
// demand. Every dimension must name a numeric column of tbl.
func New(tbl *storage.Table, cube *datacube.Cube, dims []datacube.Dim, cfg Config) (*Planner, error) {
	if tbl == nil {
		return nil, fmt.Errorf("planner: nil table")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("planner: no dimensions")
	}
	if len(dims) > 32 {
		return nil, fmt.Errorf("planner: at most 32 dimensions (got %d)", len(dims))
	}
	if cfg.Prefix == nil && !cfg.LazyPrefix && cube == nil {
		// Workable (engine scan always answers) but almost certainly a
		// wiring mistake: the planner would never beat the legacy path.
		return nil, fmt.Errorf("planner: no prefix cube, no dense cube, and LazyPrefix off")
	}
	p := &Planner{
		tbl:         tbl,
		cube:        cube,
		dims:        dims,
		model:       cfg.Model,
		lazyPrefix:  cfg.LazyPrefix,
		building:    map[string]bool{},
		sessions:    map[string]*session{},
		hotStreak:   cfg.HotStreak,
		parallelism: cfg.Parallelism,
	}
	if p.model == nil {
		p.model = DefaultModel()
	}
	if p.hotStreak <= 0 {
		p.hotStreak = DefaultHotStreak
	}
	if p.parallelism <= 0 {
		p.parallelism = runtime.GOMAXPROCS(0)
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	p.store = opt.NewByteLRU(budget, nil)
	p.store.SetOnEvict(func(key string, val any) {
		if strings.HasPrefix(key, ixPrefix) {
			if idx, ok := val.(*TemplateIndex); ok {
				p.indexCount.Add(-1)
				p.indexBytes.Add(-idx.ApproxBytes())
			}
			p.evictEpoch.Add(1)
		}
	})
	maxBuilds := cfg.MaxBuilds
	if maxBuilds <= 0 {
		maxBuilds = 1
	}
	p.sem = make(chan struct{}, maxBuilds)
	if cfg.Prefix != nil {
		p.prefix.Store(cfg.Prefix)
	}
	fns, err := binners(tbl, dims)
	if err != nil {
		return nil, err
	}
	p.binFns = fns

	nd := len(dims)
	for _, d := range dims {
		p.matUnits += float64(d.Bins)
		p.prefixUnits += float64(d.Bins) * float64(int(1)<<(nd-1))
	}
	p.prefixUnits += float64(int(1) << nd)
	p.scanUnits = float64(tbl.NumRows()) * float64(nd)
	return p, nil
}

// binners compiles one bin-of-row function per dimension, with the same
// colstore awareness as the cube builds (code LUT for coded columns,
// borrowed raw slice for frozen floats, Float fallback) — one binning
// definition across every structure is what makes them interchangeable
// bit for bit.
func binners(tbl *storage.Table, dims []datacube.Dim) ([]func(row int) int, error) {
	n := tbl.NumRows()
	fns := make([]func(row int) int, len(dims))
	for i, d := range dims {
		col := tbl.Column(d.Name)
		if col == nil || col.Type == storage.String {
			return nil, fmt.Errorf("planner: no numeric column %q", d.Name)
		}
		d := d
		if enc, ok := colstore.Of(col); ok && n > 0 {
			if coded, isCoded := enc.(colstore.Coded); isCoded && coded.CodeSpan() < 1<<22 {
				codes := coded.Codes()
				lut := make([]int32, coded.CodeSpan()+1)
				for code := range lut {
					lut[code] = int32(binOf(d, coded.DecodeFloat(uint64(code))))
				}
				fns[i] = func(row int) int { return int(lut[codes.Get(row)]) }
				continue
			}
			if fs, ok := colstore.FloatSliceOf(col); ok {
				fns[i] = func(row int) int { return binOf(d, fs[row]) }
				continue
			}
		}
		fns[i] = func(row int) int { return binOf(d, col.Float(row)) }
	}
	return fns, nil
}

// ixPrefix namespaces materialized indexes inside the shared store.
const ixPrefix = "ix|"

// Model returns the planner's cost model (shared with crossfilter's
// ScanChooser wiring).
func (p *Planner) Model() *CostModel { return p.model }

// Dims returns the planner's dimension descriptors.
func (p *Planner) Dims() []datacube.Dim { return p.dims }

// CacheGet reads a caller-cached value from the shared byte-budgeted
// store.
func (p *Planner) CacheGet(key string) (any, bool) {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	return p.store.Get(key)
}

// CachePut stores a caller value in the shared store, under the same byte
// budget the materialized indexes draw from. Reports whether it fit.
func (p *Planner) CachePut(key string, val any) bool {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	return p.store.Put(key, val)
}

// Answer computes every dimension's filtered histogram plus the filtered
// total into hists (one pre-sized slice per dimension), via the cheapest
// structure the cost model predicts among those that exist right now.
// sessionID scopes drag detection; moved is the dimension the client is
// dragging (any out-of-range value disables template tracking for this
// query — it is wire input, not trusted). The result is bit-identical
// across every structure, so the choice is invisible in the response.
func (p *Planner) Answer(sessionID string, moved int, filters []*datacube.Range, hists [][]int64) (int64, Structure, error) {
	nd := len(p.dims)
	if len(filters) != nd || len(hists) != nd {
		return 0, -1, fmt.Errorf("planner: %d filters / %d hists for %d dimensions", len(filters), len(hists), nd)
	}
	var loBuf, hiBuf [32]int
	lo, hi := loBuf[:nd], hiBuf[:nd]
	empty := false
	boxCells := 1
	for i, d := range p.dims {
		if len(hists[i]) != d.Bins {
			return 0, -1, fmt.Errorf("planner: hist %d has %d bins, want %d", i, len(hists[i]), d.Bins)
		}
		lo[i], hi[i] = 0, d.Bins-1
		if filters[i] != nil {
			lo[i], hi[i] = BinRange(d, *filters[i])
			if lo[i] > hi[i] {
				empty = true
			}
		}
		if !empty {
			boxCells *= hi[i] - lo[i] + 1
		}
	}
	if empty {
		boxCells = 0
	}

	idx := p.trackTemplate(sessionID, moved, filters)
	if p.lazyPrefix && p.prefix.Load() == nil {
		p.maybeBuildPrefix()
	}

	var cands [4]Candidate
	n := 0
	if idx != nil {
		cands[n] = Candidate{MatIndex, p.matUnits}
		n++
	}
	if p.prefix.Load() != nil {
		cands[n] = Candidate{PrefixCube, p.prefixUnits}
		n++
	}
	if p.cube != nil {
		cands[n] = Candidate{DenseCube, float64(boxCells * nd)}
		n++
	}
	cands[n] = Candidate{EngineScan, p.scanUnits}
	n++

	choice, _ := p.model.Choose(cands[:n])
	units := 0.0
	for _, c := range cands[:n] {
		if c.S == choice {
			units = c.Units
			break
		}
	}

	start := time.Now()
	var total int64
	var err error
	switch choice {
	case MatIndex:
		total, err = idx.AnswerInto(filters, hists)
	case PrefixCube:
		pc := p.prefix.Load()
		for d := 0; d < nd && err == nil; d++ {
			err = pc.HistogramInto(d, filters, hists[d])
		}
		if err == nil {
			total, err = pc.Count(filters)
		}
	case DenseCube:
		for d := 0; d < nd && err == nil; d++ {
			err = p.cube.HistogramInto(d, filters, hists[d])
		}
		if err == nil {
			for _, v := range hists[0] {
				total += v
			}
		}
	default:
		total = p.scanAnswer(lo, hi, boxCells == 0, hists)
	}
	if err != nil {
		return 0, choice, err
	}
	p.model.Observe(choice, units, time.Since(start))
	p.choices[choice].Add(1)
	return total, choice, nil
}

// trackTemplate advances sessionID's drag detection for this query and
// returns the template's materialized index if one is ready, else nil
// (possibly after kicking off a background build).
func (p *Planner) trackTemplate(sessionID string, moved int, filters []*datacube.Range) *TemplateIndex {
	if moved < 0 || moved >= len(p.dims) {
		return nil
	}
	tplLo, tplHi, ok := TemplateOf(p.dims, moved, filters)
	if !ok {
		return nil
	}
	sess := p.getSession(sessionID)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.hasTpl && sess.moved == moved && eqInts(sess.tplLo, tplLo) && eqInts(sess.tplHi, tplHi) {
		sess.streak++
	} else {
		sess.hasTpl = true
		sess.moved = moved
		sess.tplLo, sess.tplHi = tplLo, tplHi
		sess.streak = 1
		sess.key = templateKey(moved, tplLo, tplHi)
		sess.idx = nil
		sess.lastLookup = 0
	}
	if sess.idx != nil {
		// Revalidate the cached pointer only when an eviction happened
		// since it was taken; the common drag step pays one atomic load.
		if e := p.evictEpoch.Load(); e != sess.epoch {
			sess.idx, sess.epoch = p.lookupIndex(sess.key)
		}
		return sess.idx
	}
	if sess.streak < p.hotStreak {
		return nil
	}
	// Hot template without a cached index: look for one (at most once per
	// query is fine — the streak gate means this path is rare), and build
	// it if the store has none.
	if sess.streak > sess.lastLookup {
		sess.lastLookup = sess.streak
		sess.idx, sess.epoch = p.lookupIndex(sess.key)
		if sess.idx == nil {
			p.maybeMaterialize(sess.key, moved, tplLo, tplHi)
		}
	}
	return sess.idx
}

// lookupIndex fetches a materialized index from the shared store,
// returning the eviction epoch observed before the read (so a
// concurrent eviction forces the next revalidation rather than being
// missed).
func (p *Planner) lookupIndex(key string) (*TemplateIndex, uint64) {
	epoch := p.evictEpoch.Load()
	p.storeMu.Lock()
	v, ok := p.store.Get(key)
	p.storeMu.Unlock()
	if !ok {
		return nil, epoch
	}
	idx, _ := v.(*TemplateIndex)
	return idx, epoch
}

// getSession returns sessionID's tracking state, creating it on first
// sight and resetting the whole map past maxSessions.
func (p *Planner) getSession(id string) *session {
	p.sessMu.Lock()
	defer p.sessMu.Unlock()
	if s, ok := p.sessions[id]; ok {
		return s
	}
	if len(p.sessions) >= maxSessions {
		p.sessions = map[string]*session{}
	}
	s := &session{}
	p.sessions[id] = s
	return s
}

// maybeMaterialize starts a single-flight background build of the
// template's index. The hot path never blocks on it: queries keep riding
// the current best structure until the built index lands in the store.
func (p *Planner) maybeMaterialize(key string, moved int, tplLo, tplHi []int) {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	if p.closed || p.building[key] {
		return
	}
	p.building[key] = true
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		idx, err := BuildTemplateIndex(context.Background(), p.tbl, p.dims, moved, tplLo, tplHi, p.binFns, p.parallelism)
		if err == nil {
			p.storeMu.Lock()
			if p.store.Put(key, idx) {
				p.indexCount.Add(1)
				p.indexBytes.Add(idx.ApproxBytes())
				p.materializations.Add(1)
			}
			p.storeMu.Unlock()
		}
		p.buildMu.Lock()
		delete(p.building, key)
		p.buildMu.Unlock()
	}()
}

// maybeBuildPrefix starts the single-flight deferred prefix-cube build:
// from the dense cube when one exists (an O(cells) integration), else a
// full table build. Queries ride the other structures until the swap-in.
func (p *Planner) maybeBuildPrefix() {
	if !p.prefixBuilding.CompareAndSwap(false, true) {
		return
	}
	p.buildMu.Lock()
	if p.closed {
		p.buildMu.Unlock()
		p.prefixBuilding.Store(false)
		return
	}
	p.wg.Add(1)
	p.buildMu.Unlock()
	go func() {
		defer p.wg.Done()
		var pc *datacube.PrefixCube
		if p.cube != nil {
			pc = datacube.NewPrefix(p.cube)
		} else {
			pc, _ = datacube.BuildPrefix(p.tbl, p.dims, p.parallelism)
		}
		if pc != nil {
			p.prefix.Store(pc)
			p.prefixBuilds.Add(1)
		}
	}()
}

// scanAnswer is the engine-scan executor (and differential oracle's
// production twin): one morsel-parallel pass binning every row, counting
// rows inside the full bin box into the total and into every dimension's
// histogram. Per-worker partials merge by addition, so the answer is
// identical at every parallelism level.
func (p *Planner) scanAnswer(lo, hi []int, empty bool, hists [][]int64) int64 {
	nd := len(p.dims)
	for d := range hists {
		for b := range hists[d] {
			hists[d][b] = 0
		}
	}
	if empty {
		return 0
	}
	offs := make([]int, nd)
	totBins := 0
	for d, dim := range p.dims {
		offs[d] = totBins
		totBins += dim.Bins
	}
	n := p.tbl.NumRows()
	workers := 1
	if p.parallelism != 1 && n >= 2*morsel.Size {
		workers = morsel.Workers(p.parallelism, n)
	}
	parts := make([][]int64, workers)
	totals := make([]int64, workers)
	for w := range parts {
		parts[w] = make([]int64, totBins)
	}
	morsel.Run(n, workers, func(w, _, rlo, rhi int) {
		var bins [32]int
		flat := parts[w]
		var tot int64
		for row := rlo; row < rhi; row++ {
			pass := true
			for i := 0; i < nd; i++ {
				b := p.binFns[i](row)
				if b < lo[i] || b > hi[i] {
					pass = false
					break
				}
				bins[i] = b
			}
			if !pass {
				continue
			}
			tot++
			for i := 0; i < nd; i++ {
				flat[offs[i]+bins[i]]++
			}
		}
		totals[w] += tot
	})
	var total int64
	for w := 0; w < workers; w++ {
		total += totals[w]
		for d := 0; d < nd; d++ {
			hv := hists[d]
			part := parts[w][offs[d] : offs[d]+len(hv)]
			for b, v := range part {
				hv[b] += v
			}
		}
	}
	return total
}

// WaitBuilds blocks until every background build in flight has finished —
// the determinism hook for tests and benchmarks that need the swap-in to
// have happened.
func (p *Planner) WaitBuilds() { p.wg.Wait() }

// Close stops accepting new background builds and waits for in-flight
// ones, so a draining server leaks no goroutines.
func (p *Planner) Close() {
	p.buildMu.Lock()
	p.closed = true
	p.buildMu.Unlock()
	p.wg.Wait()
}

// templateKey renders a template identity for the shared store:
// "ix|m<moved>|lo:hi|..." with "_" for the moved dimension's slot.
func templateKey(moved int, lo, hi []int) string {
	b := make([]byte, 0, 8+8*len(lo))
	b = append(b, ixPrefix...)
	b = append(b, 'm')
	b = strconv.AppendInt(b, int64(moved), 10)
	for i := range lo {
		b = append(b, '|')
		if i == moved {
			b = append(b, '_')
			continue
		}
		b = strconv.AppendInt(b, int64(lo[i]), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(hi[i]), 10)
	}
	return string(b)
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of the planner's decisions and
// materialization economy, embedded in the serving layer's /metrics JSON.
type Stats struct {
	Choices          map[string]int64 `json:"choices"`
	Materializations int64            `json:"materializations"`
	PrefixBuilds     int64            `json:"prefix_builds"`
	IndexCount       int64            `json:"index_count"`
	IndexBytes       int64            `json:"index_bytes"`
	StoreBytes       int64            `json:"store_bytes"`
	BudgetBytes      int64            `json:"budget_bytes"`
	Evictions        int64            `json:"evictions"`
}

// Stats snapshots the planner's counters. Every structure appears in
// Choices (zero-valued when never chosen) so metric series are stable.
func (p *Planner) Stats() *Stats {
	st := &Stats{
		Choices:          make(map[string]int64, numStructures),
		Materializations: p.materializations.Load(),
		PrefixBuilds:     p.prefixBuilds.Load(),
		IndexCount:       p.indexCount.Load(),
		IndexBytes:       p.indexBytes.Load(),
	}
	for _, s := range Structures() {
		st.Choices[s.String()] = p.choices[s].Load()
	}
	p.storeMu.Lock()
	st.StoreBytes = p.store.Bytes()
	st.BudgetBytes = p.store.MaxBytes()
	st.Evictions = p.store.Evictions()
	p.storeMu.Unlock()
	return st
}
