package hci

import (
	"testing"
	"time"
)

func TestIDBits(t *testing.T) {
	if got := ID(0, 10); got != 0 {
		t.Errorf("ID(0,·) = %v", got)
	}
	if got := ID(10, 0); got != 0 {
		t.Errorf("ID(·,0) = %v", got)
	}
	if got := ID(10, 10); got != 1 { // log2(2)
		t.Errorf("ID(10,10) = %v, want 1", got)
	}
	if got := ID(70, 10); got != 3 { // log2(8)
		t.Errorf("ID(70,10) = %v, want 3", got)
	}
}

func TestMovementTimeMonotone(t *testing.T) {
	short := FittsMouse.MovementTime(50, 20)
	long := FittsMouse.MovementTime(800, 20)
	narrow := FittsMouse.MovementTime(800, 4)
	if !(short < long && long < narrow) {
		t.Errorf("movement times not monotone: %v, %v, %v", short, long, narrow)
	}
	// Intercept-only at zero distance.
	if got := FittsMouse.MovementTime(0, 20); got != FittsMouse.A {
		t.Errorf("zero-distance MT = %v, want intercept %v", got, FittsMouse.A)
	}
}

func TestDeviceOrdering(t *testing.T) {
	// For the same task, gesture devices are slowest.
	d, w := 300.0, 15.0
	mouse := FittsMouse.MovementTime(d, w)
	gesture := FittsGesture.MovementTime(d, w)
	if gesture <= mouse {
		t.Errorf("gesture %v not slower than mouse %v", gesture, mouse)
	}
}

func TestKLMEstimate(t *testing.T) {
	klm := DefaultKLM()
	// Point and click: M + P + K.
	got := klm.Estimate([]KLMOperator{M, P, K})
	want := klm.M + klm.P + klm.K
	if got != want {
		t.Errorf("M+P+K = %v, want %v", got, want)
	}
	// System response consumed in order; missing responses are zero.
	got = klm.Estimate([]KLMOperator{K, R, R}, 2*time.Second)
	if got != klm.K+2*time.Second {
		t.Errorf("with responses = %v", got)
	}
	if klm.Estimate(nil) != 0 {
		t.Error("empty sequence nonzero")
	}
	// All operators have names.
	for _, op := range []KLMOperator{K, P, H, M, D, R} {
		if op.String() == "" {
			t.Error("unnamed operator")
		}
	}
}

func TestTypeText(t *testing.T) {
	klm := DefaultKLM()
	got := klm.TypeText("abc")
	want := klm.M + 3*klm.K
	if got != want {
		t.Errorf("TypeText(abc) = %v, want %v", got, want)
	}
	if klm.TypeText("") != klm.M {
		t.Error("empty text should still cost the mental operator")
	}
}
