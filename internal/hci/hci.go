// Package hci implements the interaction-timing models the paper's
// simulation methodology relies on (§4.1.3): "The time for each interaction
// can then be estimated via various HCI models such as Fitts', GOMS and
// ACT-R." Behavior simulators use these to put realistic durations on
// aimed movements and composite operations instead of arbitrary constants.
package hci

import (
	"fmt"
	"math"
	"time"
)

// FittsParams are the regression coefficients of Fitts' law,
// MT = A + B·log2(D/W + 1) (the Shannon formulation). Coefficients vary by
// device; the presets follow published pointing studies (mouse ≈ the
// original desktop regressions, touch per FFitts-style studies, gesture
// devices markedly slower).
type FittsParams struct {
	A time.Duration // intercept: reaction + start/stop cost
	B time.Duration // slope per bit of index of difficulty
}

// Device presets for Fitts' law.
var (
	FittsMouse   = FittsParams{A: 100 * time.Millisecond, B: 120 * time.Millisecond}
	FittsTouch   = FittsParams{A: 80 * time.Millisecond, B: 150 * time.Millisecond}
	FittsGesture = FittsParams{A: 200 * time.Millisecond, B: 300 * time.Millisecond}
)

// ID returns Fitts' index of difficulty in bits for a movement of distance
// d to a target of width w (same units). Degenerate targets (w <= 0) and
// non-positive distances clamp to zero bits.
func ID(d, w float64) float64 {
	if w <= 0 || d <= 0 {
		return 0
	}
	return math.Log2(d/w + 1)
}

// MovementTime predicts the aimed-movement time for distance d to a target
// of width w.
func (p FittsParams) MovementTime(d, w float64) time.Duration {
	return p.A + time.Duration(float64(p.B)*ID(d, w))
}

// KLMOperator is one keystroke-level-model operator.
type KLMOperator int

// The classic KLM operators (Card, Moran & Newell).
const (
	K KLMOperator = iota // keystroke or button press
	P                    // point with a pointing device
	H                    // home hands between devices
	M                    // mental preparation
	D                    // drawing (per segment; approximation)
	R                    // system response (supplied by the caller)
)

// String names the operator.
func (o KLMOperator) String() string {
	switch o {
	case K:
		return "K"
	case P:
		return "P"
	case H:
		return "H"
	case M:
		return "M"
	case D:
		return "D"
	case R:
		return "R"
	default:
		return fmt.Sprintf("KLMOperator(%d)", int(o))
	}
}

// KLMTimes holds per-operator durations. Zero-value fields fall back to the
// standard estimates via DefaultKLM.
type KLMTimes struct {
	K, P, H, M, D time.Duration
}

// DefaultKLM returns the canonical operator times: K=280ms (average typist),
// P=1.1s, H=400ms, M=1.35s, D=900ms per segment.
func DefaultKLM() KLMTimes {
	return KLMTimes{
		K: 280 * time.Millisecond,
		P: 1100 * time.Millisecond,
		H: 400 * time.Millisecond,
		M: 1350 * time.Millisecond,
		D: 900 * time.Millisecond,
	}
}

// Estimate sums a KLM operator sequence; R operators take their durations
// from responses, consumed in order. Missing response durations count as
// zero (an instantaneous system).
func (t KLMTimes) Estimate(ops []KLMOperator, responses ...time.Duration) time.Duration {
	var total time.Duration
	ri := 0
	for _, op := range ops {
		switch op {
		case K:
			total += t.K
		case P:
			total += t.P
		case H:
			total += t.H
		case M:
			total += t.M
		case D:
			total += t.D
		case R:
			if ri < len(responses) {
				total += responses[ri]
				ri++
			}
		}
	}
	return total
}

// TypeText estimates typing a string as one M plus one K per rune — the
// standard KLM encoding of a text-box query.
func (t KLMTimes) TypeText(s string) time.Duration {
	ops := []KLMOperator{M}
	for range s {
		ops = append(ops, K)
	}
	return t.Estimate(ops)
}
