package trace

import (
	"testing"
	"time"
)

func TestScrollTimes(t *testing.T) {
	evs := []ScrollEvent{
		{At: 10 * time.Millisecond},
		{At: 30 * time.Millisecond},
	}
	got := ScrollTimes(evs)
	if len(got) != 2 || got[0] != 10*time.Millisecond || got[1] != 30*time.Millisecond {
		t.Errorf("ScrollTimes = %v", got)
	}
	if len(ScrollTimes(nil)) != 0 {
		t.Error("ScrollTimes(nil) nonempty")
	}
}

func TestSliderTimes(t *testing.T) {
	evs := []SliderEvent{
		{At: time.Second, SliderIdx: 1, MinVal: 0, MaxVal: 5},
		{At: 2 * time.Second},
	}
	got := SliderTimes(evs)
	if len(got) != 2 || got[0] != time.Second {
		t.Errorf("SliderTimes = %v", got)
	}
}

func TestSpan(t *testing.T) {
	if Span(nil) != 0 {
		t.Error("Span(nil) != 0")
	}
	if Span([]time.Duration{time.Second}) != 0 {
		t.Error("Span(single) != 0")
	}
	ts := []time.Duration{time.Second, 3 * time.Second, 9 * time.Second}
	if Span(ts) != 8*time.Second {
		t.Errorf("Span = %v", Span(ts))
	}
}
