// Package trace defines the interaction-trace record types the case
// studies collect and analyze, mirroring the paper's Table 5:
//
//   - inertial scrolling: {timestamp, scrollTop, scrollNum, delta}
//   - crossfiltering:     {timestamp, minVal, maxVal, sliderIdx}
//   - pointer devices:    {timestamp, x, y} samples (Figure 11)
//
// The composite-interface case study's HTTP-request-shaped records live in
// internal/session, next to the exploration-process model that produces
// them.
package trace

import "time"

// ScrollEvent is one scroll/wheel event from the inertial-scrolling study.
type ScrollEvent struct {
	At        time.Duration
	ScrollTop float64 // pixels scrolled from the top
	ScrollNum int     // number of tuples scrolled past so far
	Delta     float64 // accelerated scroll amount of this event (wheel delta)
}

// SelectEvent records the user selecting a tuple while scrolling.
type SelectEvent struct {
	At         time.Duration
	TupleIndex int
	// Backscrolled reports that the user overshot the tuple and had to
	// scroll back up to select it.
	Backscrolled bool
}

// SliderEvent is one slider manipulation from the crossfiltering study: the
// filtered range of one slider at one instant.
type SliderEvent struct {
	At        time.Duration
	SliderIdx int
	MinVal    float64
	MaxVal    float64
}

// PointerSample is one raw device sample (Figure 11's traces).
type PointerSample struct {
	At time.Duration
	X  float64
	Y  float64
}

// ScrollTimes extracts issue timestamps from scroll events.
func ScrollTimes(evs []ScrollEvent) []time.Duration {
	out := make([]time.Duration, len(evs))
	for i, e := range evs {
		out[i] = e.At
	}
	return out
}

// SliderTimes extracts issue timestamps from slider events.
func SliderTimes(evs []SliderEvent) []time.Duration {
	out := make([]time.Duration, len(evs))
	for i, e := range evs {
		out[i] = e.At
	}
	return out
}

// Span returns last−first of a nondecreasing timestamp sequence, 0 for
// fewer than two events.
func Span(times []time.Duration) time.Duration {
	if len(times) < 2 {
		return 0
	}
	return times[len(times)-1] - times[0]
}
