package colstore

import (
	"sort"

	"repro/internal/storage"
)

// DictColumn is the sorted-dictionary encoding: the column's distinct
// values, sorted ascending, with each row storing the bit-packed index of
// its value. Sorting the dictionary makes codes order-preserving, which is
// the whole trick — a range predicate over values maps to an interval of
// codes (two binary searches over the dictionary, once per query), so the
// scan compares packed codes and never touches a value.
//
// Exactly one of fvals/ivals/svals is populated, matching typ. Float
// dictionaries are deduplicated by bit pattern, not by ==: -0.0 and +0.0
// get adjacent codes (CodeRange spans both), so decoding reproduces the
// original bits and encoded results stay byte-identical to plain ones.
// NaN never reaches a dictionary — Freeze keeps NaN-containing columns
// Plain, because NaN has no position in a sorted order.
type DictColumn struct {
	typ   storage.Type
	codes *PackedInts
	fvals []float64
	ivals []int64
	svals []string

	plainBytes int64
	dictBytes  int64
}

func (c *DictColumn) card() int {
	switch c.typ {
	case storage.Float64:
		return len(c.fvals)
	case storage.Int64:
		return len(c.ivals)
	default:
		return len(c.svals)
	}
}

// keyFloat is the float64 image of dictionary entry k, the ordering the
// numeric kernels and the plain oracle both compare in.
func (c *DictColumn) keyFloat(k int) float64 {
	if c.typ == storage.Float64 {
		return c.fvals[k]
	}
	return float64(c.ivals[k])
}

func (c *DictColumn) Len() int { return c.codes.Len() }

func (c *DictColumn) Value(i int) storage.Value {
	code := c.codes.Get(i)
	switch c.typ {
	case storage.Float64:
		return storage.NewFloat(c.fvals[code])
	case storage.Int64:
		return storage.NewInt(c.ivals[code])
	default:
		return storage.NewString(c.svals[code])
	}
}

func (c *DictColumn) Float(i int) float64 {
	if c.typ == storage.String {
		panic("storage: Float on a TEXT column (string columns have no numeric form; use Value)")
	}
	return c.keyFloat(int(c.codes.Get(i)))
}

func (c *DictColumn) EncodedBytes() int64  { return c.codes.Bytes() + c.dictBytes }
func (c *DictColumn) EncodingName() string { return Dict.String() }
func (c *DictColumn) Encoding() Encoding   { return Dict }
func (c *DictColumn) Type() storage.Type   { return c.typ }
func (c *DictColumn) PlainBytes() int64    { return c.plainBytes }

// Codes returns the packed per-row codes.
func (c *DictColumn) Codes() *PackedInts { return c.codes }

// CodeSpan returns the maximum code (cardinality − 1; 0 when empty).
func (c *DictColumn) CodeSpan() uint64 {
	if n := c.card(); n > 0 {
		return uint64(n - 1)
	}
	return 0
}

// DecodeFloat returns the float64 image of a code.
func (c *DictColumn) DecodeFloat(code uint64) float64 { return c.keyFloat(int(code)) }

// CodeRange maps [lo, hi] to the inclusive code interval whose values fall
// in the range. NaN bounds produce an empty interval (both searches fail
// their NaN comparison), matching the select-nothing contract.
func (c *DictColumn) CodeRange(lo, hi float64) (cLo, cHi uint64, ok bool) {
	if c.typ == storage.String {
		panic("colstore: CodeRange on a TEXT column")
	}
	n := c.card()
	l := sort.Search(n, func(k int) bool { return c.keyFloat(k) >= lo })
	h := sort.Search(n, func(k int) bool { return c.keyFloat(k) > hi })
	if l >= h {
		return 0, 0, false
	}
	return uint64(l), uint64(h - 1), true
}

func (c *DictColumn) FilterRange(lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	if c.typ == storage.String {
		panic("colstore: FilterRange on a TEXT column")
	}
	cLo, cHi, ok := c.CodeRange(lo, hi)
	if !ok {
		dst.ZeroRange(r0, r1)
		return
	}
	filterCodes(c.codes, cLo, cHi, r0, r1, dst, and)
}

func (c *DictColumn) FilterEqual(v storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	c.FilterIn([]storage.Value{v}, r0, r1, dst, and)
}

func (c *DictColumn) FilterIn(vals []storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	// Membership becomes a bitset over code space, then one pass over the
	// packed codes — the in-set-over-dictionary-codes kernel.
	set := make([]uint64, (c.card()+63)/64)
	any := false
	for _, v := range vals {
		if c.typ == storage.String {
			if v.Type != storage.String {
				continue
			}
			k := sort.SearchStrings(c.svals, v.S)
			if k < len(c.svals) && c.svals[k] == v.S {
				set[k>>6] |= 1 << (uint(k) & 63)
				any = true
			}
			continue
		}
		x := v.AsFloat()
		if cLo, cHi, ok := c.CodeRange(x, x); ok {
			for k := cLo; k <= cHi; k++ {
				set[k>>6] |= 1 << (k & 63)
				any = true
			}
		}
	}
	if !any {
		dst.ZeroRange(r0, r1)
		return
	}
	filterCodesInSet(c.codes, set, r0, r1, dst, and)
}
