package colstore

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/morsel"
	"repro/internal/storage"
)

// Options tunes Freeze's encoding selection.
type Options struct {
	// Parallelism is the worker count for code packing; <= 0 means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// MaxDictCard caps dictionary cardinality; distinct-value collection
	// bails out early past it and the column stays Plain (or ForPacked).
	// 0 means DefaultMaxDictCard.
	MaxDictCard int
	// MinRatio is the minimum plain/encoded byte ratio an encoding must
	// achieve to displace Plain — compressing 3% is not worth the decode
	// arithmetic. 0 means DefaultMinRatio.
	MinRatio float64
}

// DefaultMaxDictCard bounds dictionaries at 2M entries (16 MB of float64
// dictionary), far past any real categorical or quantized column.
const DefaultMaxDictCard = 1 << 21

// DefaultMinRatio requires an encoding to save at least ~13% over plain.
const DefaultMinRatio = 1.15

func (o *Options) normalized() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Parallelism <= 0 {
		out.Parallelism = runtime.GOMAXPROCS(0)
	}
	if out.MaxDictCard <= 0 {
		out.MaxDictCard = DefaultMaxDictCard
	}
	if out.MinRatio <= 0 {
		out.MinRatio = DefaultMinRatio
	}
	return out
}

// Freeze returns a new table with the same name, schema, and row contents
// whose columns are encoded into their cheapest exact representation —
// sorted-dictionary codes, frame-of-reference packed ints, or plain
// passthrough. The frozen table is immutable (appends error) and reads
// back bit-identically to the source through the storage.Column surface,
// so every existing consumer works on it unchanged; scan hot paths
// type-assert Of(col) for the vectorized kernels. Already-frozen columns
// pass through untouched, making Freeze idempotent.
func Freeze(t *storage.Table, opts *Options) (*storage.Table, error) {
	if t == nil {
		return nil, fmt.Errorf("colstore: nil table")
	}
	o := opts.normalized()
	out := &storage.Table{
		Name:     t.Name,
		Schema:   t.Schema,
		Columns:  make([]*storage.Column, len(t.Columns)),
		PageRows: t.PageRows,
	}
	for i, col := range t.Columns {
		if col.Enc != nil {
			out.Columns[i] = col
			continue
		}
		out.Columns[i] = &storage.Column{Type: col.Type, Enc: encodeColumn(col, &o)}
	}
	return out, nil
}

// IsFrozen reports whether every column of the table is colstore-encoded.
func IsFrozen(t *storage.Table) bool {
	if t == nil || len(t.Columns) == 0 {
		return false
	}
	for _, col := range t.Columns {
		if _, ok := Of(col); !ok {
			return false
		}
	}
	return true
}

// encodeColumn picks and builds the encoding for one raw column.
func encodeColumn(col *storage.Column, o *Options) Column {
	switch col.Type {
	case storage.Float64:
		return encodeFloats(col.Floats, o)
	case storage.Int64:
		return encodeInts(col.Ints, o)
	default:
		return encodeStrings(col.Strings, o)
	}
}

// encodeFloats dictionary-encodes a float column when its cardinality and
// the resulting bytes justify it. Distinct values are keyed by bit
// pattern (so -0.0 and +0.0 decode back exactly) and NaN disqualifies the
// column — NaN has no sorted position, and the kernels' compare semantics
// already match the oracle through the Plain path.
func encodeFloats(vals []float64, o *Options) Column {
	plainBytes := int64(len(vals)) * 8
	distinct := make(map[uint64]uint32, 1024)
	for _, v := range vals {
		if math.IsNaN(v) {
			return NewPlainFloats(vals)
		}
		bits := math.Float64bits(v)
		if _, ok := distinct[bits]; !ok {
			if len(distinct) >= o.MaxDictCard {
				return NewPlainFloats(vals)
			}
			distinct[bits] = 0
		}
	}
	card := len(distinct)
	dict := make([]float64, 0, card)
	for bits := range distinct {
		dict = append(dict, math.Float64frombits(bits))
	}
	sort.Slice(dict, func(a, b int) bool {
		x, y := dict[a], dict[b]
		if x != y {
			return x < y
		}
		// Only ±0.0 compares equal with distinct bits; put -0.0 first so
		// the dictionary is deterministic.
		return math.Signbit(x) && !math.Signbit(y)
	})
	width := WidthFor(uint64(maxInt(card-1, 0)))
	c := &DictColumn{
		typ:        storage.Float64,
		fvals:      dict,
		plainBytes: plainBytes,
		dictBytes:  int64(card) * 8,
	}
	if float64(plainBytes) < o.MinRatio*float64(packedBytes(len(vals), width)+c.dictBytes) {
		return NewPlainFloats(vals)
	}
	for code, v := range dict {
		distinct[math.Float64bits(v)] = uint32(code)
	}
	c.codes = packCodes(len(vals), width, o.Parallelism, func(i int) uint64 {
		return uint64(distinct[math.Float64bits(vals[i])])
	})
	return c
}

// encodeInts picks between frame-of-reference packing (contiguous-ish
// ranges), a dictionary (low cardinality over a wide or huge-magnitude
// range), and plain. ForPacked requires every value within ±2^52 — the
// magnitude where float64(int64) stays exact, which the bound translation
// depends on — and a useful width.
func encodeInts(vals []int64, o *Options) Column {
	plainBytes := int64(len(vals)) * 8
	if len(vals) == 0 {
		return NewPlainInts(vals)
	}
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var forBytes int64 = math.MaxInt64
	var forWidth uint
	span := uint64(maxV) - uint64(minV)
	if minV >= -forMaxMagnitude && maxV <= forMaxMagnitude {
		if w := WidthFor(span); w <= forMaxWidth {
			forWidth = w
			forBytes = packedBytes(len(vals), w)
		}
	}

	var dictBytes int64 = math.MaxInt64
	var dict []int64
	distinct := make(map[int64]uint32, 1024)
	for _, v := range vals {
		if _, ok := distinct[v]; !ok {
			if len(distinct) >= o.MaxDictCard {
				distinct = nil
				break
			}
			distinct[v] = 0
		}
	}
	if distinct != nil {
		dict = make([]int64, 0, len(distinct))
		for v := range distinct {
			dict = append(dict, v)
		}
		sort.Slice(dict, func(a, b int) bool { return dict[a] < dict[b] })
		dictBytes = packedBytes(len(vals), WidthFor(uint64(maxInt(len(dict)-1, 0)))) + int64(len(dict))*8
	}

	best := minInt64(forBytes, dictBytes)
	if float64(plainBytes) < o.MinRatio*float64(best) {
		return NewPlainInts(vals)
	}
	if forBytes <= dictBytes {
		c := &ForColumn{ref: minV, span: span}
		c.codes = packCodes(len(vals), forWidth, o.Parallelism, func(i int) uint64 {
			return uint64(vals[i]) - uint64(minV)
		})
		return c
	}
	for code, v := range dict {
		distinct[v] = uint32(code)
	}
	c := &DictColumn{
		typ:        storage.Int64,
		ivals:      dict,
		plainBytes: plainBytes,
		dictBytes:  int64(len(dict)) * 8,
	}
	c.codes = packCodes(len(vals), WidthFor(uint64(maxInt(len(dict)-1, 0))), o.Parallelism, func(i int) uint64 {
		return uint64(distinct[vals[i]])
	})
	return c
}

// encodeStrings dictionary-encodes a string column unless its cardinality
// approaches the row count, where a dictionary would just duplicate it.
func encodeStrings(vals []string, o *Options) Column {
	distinct := make(map[string]uint32, 1024)
	for _, v := range vals {
		if _, ok := distinct[v]; !ok {
			if len(distinct) >= o.MaxDictCard {
				return NewPlainStrings(vals)
			}
			distinct[v] = 0
		}
	}
	dict := make([]string, 0, len(distinct))
	var dataBytes int64
	for v := range distinct {
		dict = append(dict, v)
		dataBytes += int64(len(v))
	}
	sort.Strings(dict)
	width := WidthFor(uint64(maxInt(len(dict)-1, 0)))
	c := &DictColumn{
		typ:        storage.String,
		svals:      dict,
		plainBytes: stringHeaderBytes*int64(len(vals)) + dataBytes,
		dictBytes:  stringHeaderBytes*int64(len(dict)) + dataBytes,
	}
	if float64(c.plainBytes) < o.MinRatio*float64(packedBytes(len(vals), width)+c.dictBytes) {
		return NewPlainStrings(vals)
	}
	for code, v := range dict {
		distinct[v] = uint32(code)
	}
	c.codes = packCodes(len(vals), width, o.Parallelism, func(i int) uint64 {
		return uint64(distinct[vals[i]])
	})
	return c
}

// stringHeaderBytes is a Go string header (pointer + length). Plain-bytes
// accounting for string columns counts one header per row plus each
// distinct string's payload once — the fully-shared-backing assumption,
// which understates (never inflates) the compression ratio.
const stringHeaderBytes = 16

// plainStringBytes is the equivalent-plain footprint of a string slice.
func plainStringBytes(vals []string) int64 {
	seen := make(map[string]struct{}, 1024)
	var data int64
	for _, v := range vals {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			data += int64(len(v))
		}
	}
	return stringHeaderBytes*int64(len(vals)) + data
}

// packedBytes is the byte footprint of n elements packed at width.
func packedBytes(n int, width uint) int64 {
	nbits := uint64(n) * uint64(width)
	nwords := (nbits+63)/64 + 1
	if nwords < 2 {
		nwords = 2
	}
	return int64(nwords) * 8
}

// packCodes fills a packed array morsel-parallel: morsel boundaries are
// 64-element-aligned, so workers touch disjoint words (see NewPackedZero).
func packCodes(n int, width uint, parallelism int, codeOf func(i int) uint64) *PackedInts {
	p := NewPackedZero(n, width)
	workers := 1
	if parallelism > 1 && n >= 2*morsel.Size {
		workers = morsel.Workers(parallelism, n)
	}
	morsel.Run(n, workers, func(_, _, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.Put(i, codeOf(i))
		}
	})
	return p
}

// ColumnStats describes one column's encoded footprint.
type ColumnStats struct {
	Name        string  `json:"name"`
	Encoding    string  `json:"encoding"`
	Bytes       int64   `json:"bytes"`
	PlainBytes  int64   `json:"plain_bytes"`
	Ratio       float64 `json:"ratio"`
	Cardinality int     `json:"cardinality,omitempty"` // dictionary entries; 0 = not dictionary-coded
	BitWidth    uint    `json:"bit_width,omitempty"`   // packed code width; 0 = unpacked
}

// TableStats aggregates per-column footprints; Ratio is the table-level
// compression factor (plain bytes over encoded bytes).
type TableStats struct {
	Table        string        `json:"table"`
	Rows         int           `json:"rows"`
	Columns      []ColumnStats `json:"columns"`
	EncodedBytes int64         `json:"encoded_bytes"`
	PlainBytes   int64         `json:"plain_bytes"`
	Ratio        float64       `json:"ratio"`
}

// StatsOf computes the byte footprint of every column. Unfrozen columns
// report their raw slice footprint under the "plain" encoding, so the
// stats surface works before and after Freeze.
func StatsOf(t *storage.Table) TableStats {
	st := TableStats{Table: t.Name, Rows: t.NumRows()}
	for i, col := range t.Columns {
		cs := ColumnStats{Name: t.Schema[i].Name, Encoding: Plain.String()}
		if enc, ok := Of(col); ok {
			cs.Encoding = enc.EncodingName()
			cs.Bytes = enc.EncodedBytes()
			cs.PlainBytes = enc.PlainBytes()
			if d, ok := enc.(*DictColumn); ok {
				cs.Cardinality = d.card()
				cs.BitWidth = d.codes.Width()
			}
			if f, ok := enc.(*ForColumn); ok {
				cs.BitWidth = f.codes.Width()
			}
		} else {
			switch col.Type {
			case storage.Float64:
				cs.Bytes = int64(len(col.Floats)) * 8
			case storage.Int64:
				cs.Bytes = int64(len(col.Ints)) * 8
			default:
				cs.Bytes = plainStringBytes(col.Strings)
			}
			cs.PlainBytes = cs.Bytes
		}
		if cs.Bytes > 0 {
			cs.Ratio = float64(cs.PlainBytes) / float64(cs.Bytes)
		}
		st.Columns = append(st.Columns, cs)
		st.EncodedBytes += cs.Bytes
		st.PlainBytes += cs.PlainBytes
	}
	if st.EncodedBytes > 0 {
		st.Ratio = float64(st.PlainBytes) / float64(st.EncodedBytes)
	}
	return st
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
