package colstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/storage"
)

// Snapshot file layout — a versioned, checksummed, mmap-friendly dump of a
// frozen table plus caller-supplied sections (e.g. a shard's prefix-cube
// matrices). The design goal is warm restart in O(columns), not O(rows):
// a reader maps the file once and reconstructs every column by pointing the
// existing encodings at the mapped words — no decode pass, no re-encode, no
// row loop. Only string payloads (dictionaries, plain TEXT columns) are
// materialized, because Go strings cannot alias a file.
//
//	offset  0: magic "IDESNAP1" (8 bytes)
//	offset  8: format version  (uint32 LE)
//	offset 12: meta length     (uint32 LE)
//	offset 16: data length     (uint64 LE)
//	offset 24: checksum        (uint64 LE, CRC64-ECMA over file[32:])
//	offset 32: meta JSON (snapMeta), then zero padding to 8-byte alignment
//	then    : data region — per-column payloads and extra sections, each
//	          8-byte aligned, in the order meta declares them
//
// All multi-byte payloads are little-endian. On little-endian hosts (every
// deployment target) numeric regions are reinterpreted in place via
// unsafe.Slice; big-endian hosts fall back to a copy decode, so the format
// is portable even though the fast path is a cast.
//
// Integrity is all-or-nothing: the checksum covers the meta block and the
// entire data region, the header lengths must reconcile exactly with the
// file size, and any mismatch fails Open — a torn, truncated, or corrupted
// snapshot is rejected up front rather than serving wrong records. Callers
// layer semantic fencing on top via the Fence map (dataset, seed, rows,
// partition mode, …), which rides the checksummed meta block.

// SnapshotMagic identifies a colstore snapshot file.
const SnapshotMagic = "IDESNAP1"

// SnapshotVersion is the current format version; Open rejects others.
const SnapshotVersion = 1

// snapHeaderSize is the fixed header length in bytes.
const snapHeaderSize = 32

var crcTable = crc64.MakeTable(crc64.ECMA)

// hostLittleEndian reports whether numeric regions can alias the file bytes.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// snapRegion locates one payload inside the data region. Offsets are always
// multiples of 8 so reinterpreted slices stay aligned.
type snapRegion struct {
	Off uint64 `json:"off"`
	Len uint64 `json:"len"`
}

// snapColumn describes one column's encoding and payload locations.
type snapColumn struct {
	Name     string `json:"name"`
	Type     string `json:"type"`     // "int64" | "float64" | "string"
	Encoding string `json:"encoding"` // "plain" | "dict" | "for"
	Rows     int    `json:"rows"`

	Width      uint   `json:"width,omitempty"` // packed code width
	Card       int    `json:"card,omitempty"`  // dictionary entries
	Ref        int64  `json:"ref,omitempty"`   // ForPacked frame of reference
	Span       uint64 `json:"span,omitempty"`  // ForPacked max code
	PlainBytes int64  `json:"plain_bytes,omitempty"`
	DictBytes  int64  `json:"dict_bytes,omitempty"`

	Codes snapRegion `json:"codes,omitempty"` // packed words
	Dict  snapRegion `json:"dict,omitempty"`  // dictionary payload
	Plain snapRegion `json:"plain,omitempty"` // raw passthrough payload
}

// snapSection describes one extra section.
type snapSection struct {
	Name   string     `json:"name"`
	Kind   string     `json:"kind"` // "int64" | "json"
	Region snapRegion `json:"region"`
}

// snapMeta is the checksummed metadata block.
type snapMeta struct {
	Table    string            `json:"table"`
	Rows     int               `json:"rows"`
	PageRows int               `json:"page_rows,omitempty"`
	Fence    map[string]string `json:"fence,omitempty"`
	Columns  []snapColumn      `json:"columns"`
	Sections []snapSection     `json:"sections,omitempty"`
}

// SnapshotSection is one caller-supplied extra payload: exactly one of
// Int64s or JSON is used. Routers store a shard's prefix-cube sums as an
// int64 section and its cube dimensions as a JSON section.
type SnapshotSection struct {
	Name   string
	Int64s []int64
	JSON   []byte
}

func typeName(t storage.Type) (string, error) {
	switch t {
	case storage.Int64:
		return "int64", nil
	case storage.Float64:
		return "float64", nil
	case storage.String:
		return "string", nil
	}
	return "", fmt.Errorf("colstore: snapshot: unknown column type %v", t)
}

func typeFromName(s string) (storage.Type, error) {
	switch s {
	case "int64":
		return storage.Int64, nil
	case "float64":
		return storage.Float64, nil
	case "string":
		return storage.String, nil
	}
	return 0, fmt.Errorf("colstore: snapshot: unknown column type %q", s)
}

// snapColumnView is the writer's per-column plan: the descriptor plus the
// payloads to stream.
type snapColumnView struct {
	desc       snapColumn
	codes      []uint64 // packed words
	dictFloats []float64
	dictInts   []int64
	dictStrs   []byte // pre-encoded string payload
	plainF     []float64
	plainI     []int64
	plainS     []byte // pre-encoded string payload
}

// encodeStringPayload packs strings as uvarint length + bytes each.
func encodeStringPayload(vals []string) []byte {
	size := 0
	var tmp [binary.MaxVarintLen64]byte
	for _, s := range vals {
		size += binary.PutUvarint(tmp[:], uint64(len(s))) + len(s)
	}
	out := make([]byte, 0, size)
	for _, s := range vals {
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		out = append(out, tmp[:n]...)
		out = append(out, s...)
	}
	return out
}

// decodeStringPayload reverses encodeStringPayload into exactly n strings.
func decodeStringPayload(b []byte, n int) ([]string, error) {
	out := make([]string, 0, n)
	for len(out) < n {
		l, k := binary.Uvarint(b)
		if k <= 0 || l > uint64(len(b)-k) {
			return nil, fmt.Errorf("colstore: snapshot: truncated string payload")
		}
		out = append(out, string(b[k:k+int(l)]))
		b = b[k+int(l):]
	}
	return out, nil
}

// planColumn builds the write plan for one column. Unfrozen columns are
// written as plain passthrough (no encode decision is made at snapshot
// time); frozen columns dump their exact representation.
func planColumn(name string, col *storage.Column) (*snapColumnView, error) {
	tn, err := typeName(col.Type)
	if err != nil {
		return nil, err
	}
	v := &snapColumnView{desc: snapColumn{Name: name, Type: tn, Rows: col.Len()}}
	enc, frozen := Of(col)
	if !frozen {
		v.desc.Encoding = Plain.String()
		switch col.Type {
		case storage.Float64:
			v.plainF = col.Floats
		case storage.Int64:
			v.plainI = col.Ints
		default:
			v.plainS = encodeStringPayload(col.Strings)
		}
		return v, nil
	}
	switch c := enc.(type) {
	case *PlainFloats:
		v.desc.Encoding = Plain.String()
		v.plainF = c.vals
	case *PlainInts:
		v.desc.Encoding = Plain.String()
		v.plainI = c.vals
	case *PlainStrings:
		v.desc.Encoding = Plain.String()
		v.desc.PlainBytes = c.plainBytes
		v.plainS = encodeStringPayload(c.vals)
	case *ForColumn:
		v.desc.Encoding = ForPacked.String()
		v.desc.Width = c.codes.Width()
		v.desc.Ref = c.ref
		v.desc.Span = c.span
		v.codes = c.codes.words
	case *DictColumn:
		v.desc.Encoding = Dict.String()
		v.desc.Width = c.codes.Width()
		v.desc.Card = c.card()
		v.desc.PlainBytes = c.plainBytes
		v.desc.DictBytes = c.dictBytes
		v.codes = c.codes.words
		switch c.typ {
		case storage.Float64:
			v.dictFloats = c.fvals
		case storage.Int64:
			v.dictInts = c.ivals
		default:
			v.dictStrs = encodeStringPayload(c.svals)
		}
	default:
		return nil, fmt.Errorf("colstore: snapshot: column %q has unsupported encoding %T", name, enc)
	}
	return v, nil
}

// pad8 rounds up to the next multiple of 8.
func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// regionFor reserves a region of size bytes at the running offset.
func regionFor(off *uint64, size uint64) snapRegion {
	r := snapRegion{Off: *off, Len: size}
	*off = pad8(*off + size)
	return r
}

// snapWriter streams the data region, feeding the checksum.
type snapWriter struct {
	w   io.Writer
	crc uint64
	off uint64
	buf []byte
}

func (sw *snapWriter) write(b []byte) error {
	sw.crc = crc64.Update(sw.crc, crcTable, b)
	n, err := sw.w.Write(b)
	sw.off += uint64(n)
	return err
}

// writeWords streams a numeric slice as little-endian bytes: a direct cast
// on little-endian hosts, an encode loop elsewhere.
func writeWords[T uint64 | int64 | float64](sw *snapWriter, vals []T) error {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		b := unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*8)
		return sw.write(b)
	}
	if sw.buf == nil {
		sw.buf = make([]byte, 1<<16)
	}
	b := sw.buf[:0]
	for _, v := range vals {
		var u uint64
		switch x := any(v).(type) {
		case uint64:
			u = x
		case int64:
			u = uint64(x)
		case float64:
			u = math.Float64bits(x)
		}
		b = binary.LittleEndian.AppendUint64(b, u)
		if len(b)+8 > cap(b) {
			if err := sw.write(b); err != nil {
				return err
			}
			b = sw.buf[:0]
		}
	}
	return sw.write(b)
}

var zeroPad [8]byte

// padTo writes zero bytes until the running offset reaches target.
func (sw *snapWriter) padTo(target uint64) error {
	if sw.off > target {
		return fmt.Errorf("colstore: snapshot: writer overran region plan (%d > %d)", sw.off, target)
	}
	for sw.off < target {
		n := target - sw.off
		if n > 8 {
			n = 8
		}
		if err := sw.write(zeroPad[:n]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot atomically serializes a table (frozen or not — unfrozen
// columns are written as plain passthrough) plus extra sections to path:
// the file is staged under a temporary name in the same directory and
// renamed into place, so readers never observe a partial write and
// concurrent writers of identical content race harmlessly. fence is an
// arbitrary caller contract stored in the checksummed meta block; Open
// returns it for the caller to verify before trusting the contents.
func WriteSnapshot(path string, t *storage.Table, fence map[string]string, sections []SnapshotSection) (err error) {
	if t == nil {
		return fmt.Errorf("colstore: snapshot: nil table")
	}
	meta := snapMeta{Table: t.Name, Rows: t.NumRows(), PageRows: t.PageRows, Fence: fence}
	views := make([]*snapColumnView, len(t.Columns))
	var off uint64
	for i, col := range t.Columns {
		v, err := planColumn(t.Schema[i].Name, col)
		if err != nil {
			return err
		}
		if col.Len() != meta.Rows {
			return fmt.Errorf("colstore: snapshot: column %q has %d rows, table has %d",
				t.Schema[i].Name, col.Len(), meta.Rows)
		}
		if len(v.codes) > 0 {
			v.desc.Codes = regionFor(&off, uint64(len(v.codes))*8)
		}
		switch {
		case v.dictFloats != nil:
			v.desc.Dict = regionFor(&off, uint64(len(v.dictFloats))*8)
		case v.dictInts != nil:
			v.desc.Dict = regionFor(&off, uint64(len(v.dictInts))*8)
		case v.dictStrs != nil:
			v.desc.Dict = regionFor(&off, uint64(len(v.dictStrs)))
		}
		switch {
		case v.plainF != nil:
			v.desc.Plain = regionFor(&off, uint64(len(v.plainF))*8)
		case v.plainI != nil:
			v.desc.Plain = regionFor(&off, uint64(len(v.plainI))*8)
		case v.plainS != nil:
			v.desc.Plain = regionFor(&off, uint64(len(v.plainS)))
		}
		views[i] = v
		meta.Columns = append(meta.Columns, v.desc)
	}
	for _, s := range sections {
		if s.Int64s != nil && s.JSON != nil {
			return fmt.Errorf("colstore: snapshot: section %q has both int64 and JSON payloads", s.Name)
		}
		sec := snapSection{Name: s.Name, Kind: "int64"}
		if s.JSON != nil {
			sec.Kind = "json"
			sec.Region = regionFor(&off, uint64(len(s.JSON)))
		} else {
			sec.Region = regionFor(&off, uint64(len(s.Int64s))*8)
		}
		meta.Sections = append(meta.Sections, sec)
	}
	dataLen := off

	metaBytes, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	if len(metaBytes) > math.MaxUint32 {
		return fmt.Errorf("colstore: snapshot: meta block too large")
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	// Header placeholder first; the checksum is patched in once the body has
	// streamed through the CRC.
	if _, err = tmp.Write(make([]byte, snapHeaderSize)); err != nil {
		return err
	}
	sw := &snapWriter{w: tmp}
	if err = sw.write(metaBytes); err != nil {
		return err
	}
	if err = sw.padTo(pad8(uint64(len(metaBytes)))); err != nil {
		return err
	}
	dataBase := sw.off
	for _, v := range views {
		if len(v.codes) > 0 {
			if err = writeWords(sw, v.codes); err != nil {
				return err
			}
			if err = sw.padTo(dataBase + v.desc.Codes.Off + pad8(v.desc.Codes.Len)); err != nil {
				return err
			}
		}
		if v.dictFloats != nil || v.dictInts != nil || v.dictStrs != nil {
			switch {
			case v.dictFloats != nil:
				err = writeWords(sw, v.dictFloats)
			case v.dictInts != nil:
				err = writeWords(sw, v.dictInts)
			default:
				err = sw.write(v.dictStrs)
			}
			if err != nil {
				return err
			}
			if err = sw.padTo(dataBase + v.desc.Dict.Off + pad8(v.desc.Dict.Len)); err != nil {
				return err
			}
		}
		if v.plainF != nil || v.plainI != nil || v.plainS != nil {
			switch {
			case v.plainF != nil:
				err = writeWords(sw, v.plainF)
			case v.plainI != nil:
				err = writeWords(sw, v.plainI)
			default:
				err = sw.write(v.plainS)
			}
			if err != nil {
				return err
			}
			if err = sw.padTo(dataBase + v.desc.Plain.Off + pad8(v.desc.Plain.Len)); err != nil {
				return err
			}
		}
	}
	for i, s := range sections {
		if s.JSON != nil {
			err = sw.write(s.JSON)
		} else {
			err = writeWords(sw, s.Int64s)
		}
		if err != nil {
			return err
		}
		reg := meta.Sections[i].Region
		if err = sw.padTo(dataBase + reg.Off + pad8(reg.Len)); err != nil {
			return err
		}
	}
	if sw.off != dataBase+dataLen {
		return fmt.Errorf("colstore: snapshot: wrote %d data bytes, planned %d", sw.off-dataBase, dataLen)
	}

	var header [snapHeaderSize]byte
	copy(header[:8], SnapshotMagic)
	binary.LittleEndian.PutUint32(header[8:], SnapshotVersion)
	binary.LittleEndian.PutUint32(header[12:], uint32(len(metaBytes)))
	binary.LittleEndian.PutUint64(header[16:], dataLen)
	binary.LittleEndian.PutUint64(header[24:], sw.crc)
	if _, err = tmp.WriteAt(header[:], 0); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Snapshot is an opened snapshot file: the reconstructed table plus the
// extra sections, all viewing the mapped (or loaded) file bytes. The
// Snapshot must outlive every structure served from it — Close unmaps the
// region and leaves the views dangling.
type Snapshot struct {
	table    *storage.Table
	fence    map[string]string
	sections map[string]snapSection
	data     []byte // the data region (slice of buf)
	buf      []byte // the whole file
	mapped   bool
	path     string
}

// OpenSnapshot maps path read-only, verifies magic, version, structural
// lengths, and the body checksum, and reconstructs the table zero-copy.
// Any inconsistency — truncation, corruption, foreign file, future version
// — is an error; the caller's fallback ladder decides what to do next.
func OpenSnapshot(path string) (*Snapshot, error) {
	buf, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	s, err := openSnapshotBytes(buf, mapped, path)
	if err != nil {
		unmapFile(buf, mapped)
		return nil, err
	}
	return s, nil
}

func openSnapshotBytes(buf []byte, mapped bool, path string) (*Snapshot, error) {
	if len(buf) < snapHeaderSize {
		return nil, fmt.Errorf("colstore: snapshot %s: short file (%d bytes)", path, len(buf))
	}
	if string(buf[:8]) != SnapshotMagic {
		return nil, fmt.Errorf("colstore: snapshot %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != SnapshotVersion {
		return nil, fmt.Errorf("colstore: snapshot %s: format version %d, want %d", path, v, SnapshotVersion)
	}
	metaLen := uint64(binary.LittleEndian.Uint32(buf[12:]))
	dataLen := binary.LittleEndian.Uint64(buf[16:])
	sum := binary.LittleEndian.Uint64(buf[24:])
	metaEnd := snapHeaderSize + metaLen
	dataBase := pad8(metaEnd)
	if metaEnd < snapHeaderSize || dataBase+dataLen != uint64(len(buf)) || metaEnd > uint64(len(buf)) {
		return nil, fmt.Errorf("colstore: snapshot %s: header lengths do not reconcile with %d-byte file", path, len(buf))
	}
	if got := crc64.Checksum(buf[snapHeaderSize:], crcTable); got != sum {
		return nil, fmt.Errorf("colstore: snapshot %s: checksum mismatch (file %x, computed %x)", path, sum, got)
	}
	var meta snapMeta
	if err := json.Unmarshal(buf[snapHeaderSize:metaEnd], &meta); err != nil {
		return nil, fmt.Errorf("colstore: snapshot %s: meta: %w", path, err)
	}
	data := buf[dataBase:]

	table := &storage.Table{Name: meta.Table, PageRows: meta.PageRows}
	if table.PageRows <= 0 {
		table.PageRows = storage.DefaultPageRows
	}
	for _, sc := range meta.Columns {
		typ, err := typeFromName(sc.Type)
		if err != nil {
			return nil, err
		}
		if sc.Rows != meta.Rows {
			return nil, fmt.Errorf("colstore: snapshot %s: column %q rows %d != table rows %d", path, sc.Name, sc.Rows, meta.Rows)
		}
		enc, err := columnFromSnap(sc, typ, data)
		if err != nil {
			return nil, fmt.Errorf("colstore: snapshot %s: %w", path, err)
		}
		table.Schema = append(table.Schema, storage.ColumnDef{Name: sc.Name, Type: typ})
		table.Columns = append(table.Columns, &storage.Column{Type: typ, Enc: enc})
	}
	s := &Snapshot{
		table:    table,
		fence:    meta.Fence,
		sections: make(map[string]snapSection, len(meta.Sections)),
		data:     data,
		buf:      buf,
		mapped:   mapped,
		path:     path,
	}
	for _, sec := range meta.Sections {
		if _, err := region(data, sec.Region); err != nil {
			return nil, fmt.Errorf("colstore: snapshot %s: section %q: %w", path, sec.Name, err)
		}
		s.sections[sec.Name] = sec
	}
	return s, nil
}

// region bounds-checks and returns one payload's bytes.
func region(data []byte, r snapRegion) ([]byte, error) {
	if r.Off%8 != 0 {
		return nil, fmt.Errorf("misaligned region at %d", r.Off)
	}
	end := r.Off + r.Len
	if end < r.Off || end > uint64(len(data)) {
		return nil, fmt.Errorf("region [%d,%d) outside %d-byte data", r.Off, end, len(data))
	}
	return data[r.Off:end], nil
}

// u64Region reinterprets a region as []uint64 — zero-copy on little-endian
// hosts, a copy decode elsewhere.
func u64Region(data []byte, r snapRegion) ([]uint64, error) {
	b, err := region(data, r)
	if err != nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("region length %d not word-aligned", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, nil
}

func i64Region(data []byte, r snapRegion) ([]int64, error) {
	u, err := u64Region(data, r)
	if err != nil || u == nil {
		return nil, err
	}
	if hostLittleEndian {
		return unsafe.Slice((*int64)(unsafe.Pointer(&u[0])), len(u)), nil
	}
	out := make([]int64, len(u))
	for i, v := range u {
		out[i] = int64(v)
	}
	return out, nil
}

func f64Region(data []byte, r snapRegion) ([]float64, error) {
	u, err := u64Region(data, r)
	if err != nil || u == nil {
		return nil, err
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&u[0])), len(u)), nil
	}
	out := make([]float64, len(u))
	for i, v := range u {
		out[i] = math.Float64frombits(v)
	}
	return out, nil
}

// packedFromWords rebuilds a PackedInts view over snapshot words, verifying
// the word count matches the (rows, width) geometry exactly.
func packedFromWords(words []uint64, width uint, n int) (*PackedInts, error) {
	if width > 64 {
		return nil, fmt.Errorf("bit width %d out of range", width)
	}
	if want := packedBytes(n, width) / 8; int64(len(words)) != want {
		return nil, fmt.Errorf("packed words: have %d, want %d for %d rows at width %d", len(words), want, n, width)
	}
	var mask uint64
	if width > 0 {
		mask = ^uint64(0) >> (64 - width)
	}
	return &PackedInts{words: words, width: width, mask: mask, n: n}, nil
}

// columnFromSnap reconstructs one encoded column view over the data region.
func columnFromSnap(sc snapColumn, typ storage.Type, data []byte) (Column, error) {
	switch sc.Encoding {
	case Plain.String():
		switch typ {
		case storage.Float64:
			vals, err := f64Region(data, sc.Plain)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", sc.Name, err)
			}
			if len(vals) != sc.Rows {
				return nil, fmt.Errorf("column %q: %d plain values for %d rows", sc.Name, len(vals), sc.Rows)
			}
			return NewPlainFloats(vals), nil
		case storage.Int64:
			vals, err := i64Region(data, sc.Plain)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", sc.Name, err)
			}
			if len(vals) != sc.Rows {
				return nil, fmt.Errorf("column %q: %d plain values for %d rows", sc.Name, len(vals), sc.Rows)
			}
			return NewPlainInts(vals), nil
		default:
			b, err := region(data, sc.Plain)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", sc.Name, err)
			}
			vals, err := decodeStringPayload(b, sc.Rows)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", sc.Name, err)
			}
			c := NewPlainStrings(vals)
			if sc.PlainBytes > 0 {
				c.plainBytes = sc.PlainBytes
			}
			return c, nil
		}
	case ForPacked.String():
		if typ != storage.Int64 {
			return nil, fmt.Errorf("column %q: for-packed %s column", sc.Name, sc.Type)
		}
		words, err := u64Region(data, sc.Codes)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", sc.Name, err)
		}
		codes, err := packedFromWords(words, sc.Width, sc.Rows)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", sc.Name, err)
		}
		return &ForColumn{ref: sc.Ref, span: sc.Span, codes: codes}, nil
	case Dict.String():
		words, err := u64Region(data, sc.Codes)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", sc.Name, err)
		}
		codes, err := packedFromWords(words, sc.Width, sc.Rows)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", sc.Name, err)
		}
		if sc.Rows > 0 && sc.Card <= 0 {
			return nil, fmt.Errorf("column %q: dictionary with no entries for %d rows", sc.Name, sc.Rows)
		}
		c := &DictColumn{typ: typ, codes: codes, plainBytes: sc.PlainBytes, dictBytes: sc.DictBytes}
		switch typ {
		case storage.Float64:
			c.fvals, err = f64Region(data, sc.Dict)
		case storage.Int64:
			c.ivals, err = i64Region(data, sc.Dict)
		default:
			var b []byte
			b, err = region(data, sc.Dict)
			if err == nil {
				c.svals, err = decodeStringPayload(b, sc.Card)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", sc.Name, err)
		}
		if got := c.card(); got != sc.Card {
			return nil, fmt.Errorf("column %q: dictionary has %d entries, meta says %d", sc.Name, got, sc.Card)
		}
		return c, nil
	}
	return nil, fmt.Errorf("column %q: unknown encoding %q", sc.Name, sc.Encoding)
}

// Table returns the reconstructed frozen table. Its columns alias the
// snapshot's mapped bytes; do not use it after Close.
func (s *Snapshot) Table() *storage.Table { return s.table }

// Fence returns the caller contract stored at write time (nil-safe).
func (s *Snapshot) Fence() map[string]string { return s.fence }

// Rows returns the table's row count.
func (s *Snapshot) Rows() int { return s.table.NumRows() }

// Mapped reports whether the snapshot is served from an mmap region (true)
// or a heap copy (the non-unix fallback).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Bytes returns the snapshot file's total size.
func (s *Snapshot) Bytes() int64 { return int64(len(s.buf)) }

// SectionInt64 returns a named int64 section, aliasing the mapped bytes.
func (s *Snapshot) SectionInt64(name string) ([]int64, bool) {
	sec, ok := s.sections[name]
	if !ok || sec.Kind != "int64" {
		return nil, false
	}
	vals, err := i64Region(s.data, sec.Region)
	if err != nil {
		return nil, false
	}
	return vals, true
}

// SectionJSON returns a named JSON section's raw bytes.
func (s *Snapshot) SectionJSON(name string) ([]byte, bool) {
	sec, ok := s.sections[name]
	if !ok || sec.Kind != "json" {
		return nil, false
	}
	b, err := region(s.data, sec.Region)
	if err != nil {
		return nil, false
	}
	return b, true
}

// Close releases the mapping. Every table, column, and section view handed
// out by this snapshot is invalid afterwards.
func (s *Snapshot) Close() error {
	if s.buf == nil {
		return nil
	}
	buf, mapped := s.buf, s.mapped
	s.buf, s.data, s.table, s.sections = nil, nil, nil, nil
	return unmapFile(buf, mapped)
}
