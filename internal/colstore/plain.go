package colstore

import (
	"repro/internal/storage"
)

// PlainFloats is the passthrough encoding for incompressible float64
// columns (high-cardinality or NaN-containing). It exists so that a frozen
// table is uniformly colstore-backed: consumers type-assert one interface
// and every column answers, compressed or not.
type PlainFloats struct {
	vals []float64
}

// NewPlainFloats wraps a float64 slice (borrowed, not copied).
func NewPlainFloats(vals []float64) *PlainFloats { return &PlainFloats{vals: vals} }

func (c *PlainFloats) Len() int                  { return len(c.vals) }
func (c *PlainFloats) Value(i int) storage.Value { return storage.NewFloat(c.vals[i]) }
func (c *PlainFloats) Float(i int) float64       { return c.vals[i] }
func (c *PlainFloats) EncodedBytes() int64       { return int64(len(c.vals)) * 8 }
func (c *PlainFloats) EncodingName() string      { return Plain.String() }
func (c *PlainFloats) Encoding() Encoding        { return Plain }
func (c *PlainFloats) Type() storage.Type        { return storage.Float64 }
func (c *PlainFloats) PlainBytes() int64         { return int64(len(c.vals)) * 8 }

// RawFloats exposes the backing slice (FloatSlice capability).
func (c *PlainFloats) RawFloats() []float64 { return c.vals }

func (c *PlainFloats) FilterRange(lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	filterFloats(c.vals, lo, hi, r0, r1, dst, and)
}

func (c *PlainFloats) FilterEqual(v storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	x := v.AsFloat()
	filterFloats(c.vals, x, x, r0, r1, dst, and)
}

func (c *PlainFloats) FilterIn(vals []storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	filterAnyFloat(c.vals, nil, vals, r0, r1, dst, and)
}

// PlainInts is the passthrough encoding for int64 columns whose value
// range defeats frame-of-reference packing (width >= 64 bits, or
// magnitudes past 2^52 where the float64 image — what every scan compares
// — goes inexact).
type PlainInts struct {
	vals []int64
}

// NewPlainInts wraps an int64 slice (borrowed, not copied).
func NewPlainInts(vals []int64) *PlainInts { return &PlainInts{vals: vals} }

func (c *PlainInts) Len() int                  { return len(c.vals) }
func (c *PlainInts) Value(i int) storage.Value { return storage.NewInt(c.vals[i]) }
func (c *PlainInts) Float(i int) float64       { return float64(c.vals[i]) }
func (c *PlainInts) EncodedBytes() int64       { return int64(len(c.vals)) * 8 }
func (c *PlainInts) EncodingName() string      { return Plain.String() }
func (c *PlainInts) Encoding() Encoding        { return Plain }
func (c *PlainInts) Type() storage.Type        { return storage.Int64 }
func (c *PlainInts) PlainBytes() int64         { return int64(len(c.vals)) * 8 }

func (c *PlainInts) FilterRange(lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	filterInts(c.vals, lo, hi, r0, r1, dst, and)
}

func (c *PlainInts) FilterEqual(v storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	x := v.AsFloat()
	filterInts(c.vals, x, x, r0, r1, dst, and)
}

func (c *PlainInts) FilterIn(vals []storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	filterAnyFloat(nil, c.vals, vals, r0, r1, dst, and)
}

// PlainStrings is the passthrough encoding for string columns whose
// cardinality defeats dictionary coding (near-distinct values, where a
// dictionary would just duplicate the column). Numeric-range kernels
// panic, mirroring storage.Column.Float's TEXT contract; equality and
// in-set kernels compare strings directly.
type PlainStrings struct {
	vals       []string
	plainBytes int64
}

// NewPlainStrings wraps a string slice (borrowed, not copied).
func NewPlainStrings(vals []string) *PlainStrings {
	return &PlainStrings{vals: vals, plainBytes: plainStringBytes(vals)}
}

func (c *PlainStrings) Len() int                  { return len(c.vals) }
func (c *PlainStrings) Value(i int) storage.Value { return storage.NewString(c.vals[i]) }
func (c *PlainStrings) Float(i int) float64 {
	panic("storage: Float on a TEXT column (string columns have no numeric form; use Value)")
}
func (c *PlainStrings) EncodedBytes() int64  { return c.plainBytes }
func (c *PlainStrings) EncodingName() string { return Plain.String() }
func (c *PlainStrings) Encoding() Encoding   { return Plain }
func (c *PlainStrings) Type() storage.Type   { return storage.String }
func (c *PlainStrings) PlainBytes() int64    { return c.plainBytes }

func (c *PlainStrings) FilterRange(lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	panic("colstore: FilterRange on a TEXT column")
}

func (c *PlainStrings) FilterEqual(v storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	c.FilterIn([]storage.Value{v}, r0, r1, dst, and)
}

func (c *PlainStrings) FilterIn(vals []storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	set := make([]string, 0, len(vals))
	for _, v := range vals {
		if v.Type == storage.String {
			set = append(set, v.S)
		}
	}
	for base := r0; base < r1; base += 64 {
		end := base + 64
		if end > r1 {
			end = r1
		}
		var sel uint64
		for i := base; i < end; i++ {
			var hit uint64
			for _, x := range set {
				hit |= b2u(c.vals[i] == x)
			}
			sel |= hit << uint(i-base)
		}
		storeWord(dst, base, sel, and)
	}
}

// filterAnyFloat selects rows whose float64 image equals any of vals —
// the in-set kernel for unencoded numerics. Exactly one of fvals/ivals is
// non-nil.
func filterAnyFloat(fvals []float64, ivals []int64, vals []storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	set := make([]float64, len(vals))
	for i, v := range vals {
		set[i] = v.AsFloat()
	}
	for base := r0; base < r1; base += 64 {
		end := base + 64
		if end > r1 {
			end = r1
		}
		var sel uint64
		for i := base; i < end; i++ {
			var v float64
			if fvals != nil {
				v = fvals[i]
			} else {
				v = float64(ivals[i])
			}
			var hit uint64
			for _, x := range set {
				hit |= b2u(v == x)
			}
			sel |= hit << uint(i-base)
		}
		storeWord(dst, base, sel, and)
	}
}
