//go:build unix

package colstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned bool reports whether the bytes
// are a kernel mapping (true) or a heap copy: empty files fall back to a
// heap slice because mmap of length 0 is an error on Linux.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, fmt.Errorf("colstore: snapshot %s: empty file", path)
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("colstore: snapshot %s: %d bytes exceeds address space", path, size)
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("colstore: snapshot %s: mmap: %w", path, err)
	}
	return buf, true, nil
}

// unmapFile releases a mapFile result.
func unmapFile(buf []byte, mapped bool) error {
	if !mapped || buf == nil {
		return nil
	}
	return syscall.Munmap(buf)
}
