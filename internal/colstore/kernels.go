package colstore

import (
	"math"
	"math/bits"

	"repro/internal/morsel"
)

// The shared kernel inner loops. Each builds one 64-row selection word in
// a register — branchless compares ORed into place — and stores (or ANDs)
// it with a single write, so a worker filtering a morsel-aligned row range
// owns its bitmap words exclusively.

// storeWord commits one built selection word covering rows [base, base+64).
func storeWord(dst *Bitmap, base int, sel uint64, and bool) {
	w := base >> 6
	if and {
		dst.words[w] &= sel
	} else {
		dst.words[w] = sel
	}
}

// filterCodes selects rows whose packed code lies in [cLo, cHi]. The
// in-range test is one unsigned subtract-compare: c-cLo wraps above span
// for every c < cLo.
//
// An AND pass walks only the set bits of each destination word instead of
// re-extracting all 64 codes: rows a previous predicate already rejected
// cannot come back, so the work of a conjunction shrinks with its running
// selectivity — the bitmap analog of the scalar loop's short-circuit.
func filterCodes(p *PackedInts, cLo, cHi uint64, r0, r1 int, dst *Bitmap, and bool) {
	if cHi < cLo {
		dst.ZeroRange(r0, r1)
		return
	}
	span := cHi - cLo
	width, mask, words := uint64(p.width), p.mask, p.words
	if and {
		for base := r0; base < r1; base += 64 {
			x := dst.words[base>>6]
			if x == 0 {
				continue
			}
			var sel uint64
			for x != 0 {
				i := bits.TrailingZeros64(x)
				x &= x - 1
				bit := uint64(base+i) * width
				w, off := bit>>6, uint(bit&63)
				c := (words[w]>>off | words[w+1]<<(64-off)) & mask
				sel |= b2u(c-cLo <= span) << uint(i)
			}
			dst.words[base>>6] &= sel
		}
		return
	}
	bit := uint64(r0) * width
	for base := r0; base < r1; base += 64 {
		end := base + 64
		if end > r1 {
			end = r1
		}
		var sel uint64
		for i := base; i < end; i++ {
			w, off := bit>>6, uint(bit&63)
			c := (words[w]>>off | words[w+1]<<(64-off)) & mask
			sel |= b2u(c-cLo <= span) << uint(i-base)
			bit += width
		}
		storeWord(dst, base, sel, false)
	}
}

// filterCodesInSet selects rows whose packed code is a member of set, a
// bitset over code values.
func filterCodesInSet(p *PackedInts, set []uint64, r0, r1 int, dst *Bitmap, and bool) {
	width, mask, words := uint64(p.width), p.mask, p.words
	if and {
		for base := r0; base < r1; base += 64 {
			x := dst.words[base>>6]
			if x == 0 {
				continue
			}
			var sel uint64
			for x != 0 {
				i := bits.TrailingZeros64(x)
				x &= x - 1
				bit := uint64(base+i) * width
				w, off := bit>>6, uint(bit&63)
				c := (words[w]>>off | words[w+1]<<(64-off)) & mask
				sel |= (set[c>>6] >> (c & 63) & 1) << uint(i)
			}
			dst.words[base>>6] &= sel
		}
		return
	}
	bit := uint64(r0) * width
	for base := r0; base < r1; base += 64 {
		end := base + 64
		if end > r1 {
			end = r1
		}
		var sel uint64
		for i := base; i < end; i++ {
			w, off := bit>>6, uint(bit&63)
			c := (words[w]>>off | words[w+1]<<(64-off)) & mask
			sel |= (set[c>>6] >> (c & 63) & 1) << uint(i-base)
			bit += width
		}
		storeWord(dst, base, sel, false)
	}
}

// filterFloats selects rows of a raw float64 slice in [lo, hi]. NaN values
// fail both compares, NaN bounds fail every row — matching the oracle's
// comparison semantics exactly.
func filterFloats(vals []float64, lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	if and {
		for base := r0; base < r1; base += 64 {
			x := dst.words[base>>6]
			if x == 0 {
				continue
			}
			var sel uint64
			for x != 0 {
				i := bits.TrailingZeros64(x)
				x &= x - 1
				v := vals[base+i]
				sel |= (b2u(v >= lo) & b2u(v <= hi)) << uint(i)
			}
			dst.words[base>>6] &= sel
		}
		return
	}
	for base := r0; base < r1; base += 64 {
		end := base + 64
		if end > r1 {
			end = r1
		}
		var sel uint64
		for i := base; i < end; i++ {
			v := vals[i]
			sel |= (b2u(v >= lo) & b2u(v <= hi)) << uint(i-base)
		}
		storeWord(dst, base, sel, false)
	}
}

// filterInts selects rows of a raw int64 slice whose float64 image lies in
// [lo, hi] — the conversion the plain oracle applies before comparing.
func filterInts(vals []int64, lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	if and {
		for base := r0; base < r1; base += 64 {
			x := dst.words[base>>6]
			if x == 0 {
				continue
			}
			var sel uint64
			for x != 0 {
				i := bits.TrailingZeros64(x)
				x &= x - 1
				v := float64(vals[base+i])
				sel |= (b2u(v >= lo) & b2u(v <= hi)) << uint(i)
			}
			dst.words[base>>6] &= sel
		}
		return
	}
	for base := r0; base < r1; base += 64 {
		end := base + 64
		if end > r1 {
			end = r1
		}
		var sel uint64
		for i := base; i < end; i++ {
			v := float64(vals[i])
			sel |= (b2u(v >= lo) & b2u(v <= hi)) << uint(i-base)
		}
		storeWord(dst, base, sel, false)
	}
}

// RangePred is one conjunctive closed-range predicate for Select.
type RangePred struct {
	Col    Column
	Lo, Hi float64
}

// Select evaluates the conjunction of range predicates over all n rows
// with morsel parallelism, writing the selection into a fresh bitmap.
// With no predicates every row is selected. parallelism <= 1 is the
// serial oracle; results are identical at every level because each worker
// owns disjoint morsel-aligned word ranges.
func Select(n int, preds []RangePred, parallelism int) *Bitmap {
	dst := NewBitmap(n)
	workers := 1
	if parallelism > 1 && n >= 2*morsel.Size {
		workers = morsel.Workers(parallelism, n)
	}
	morsel.Run(n, workers, func(_, _, lo, hi int) {
		if len(preds) == 0 {
			fillRange(dst, lo, hi)
			return
		}
		for k, p := range preds {
			p.Col.FilterRange(p.Lo, p.Hi, lo, hi, dst, k > 0)
		}
	})
	return dst
}

// fillRange sets every bit in [r0, r1); r0 must be 64-aligned.
func fillRange(dst *Bitmap, r0, r1 int) {
	for base := r0; base < r1; base += 64 {
		sel := ^uint64(0)
		if r1-base < 64 {
			sel = ^uint64(0) >> uint(64-(r1-base))
		}
		dst.words[base>>6] = sel
	}
}

// nanRange reports whether a closed range is the select-nothing range.
func nanRange(lo, hi float64) bool {
	return math.IsNaN(lo) || math.IsNaN(hi)
}
