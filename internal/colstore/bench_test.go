package colstore

import (
	"math/rand"
	"testing"
)

// benchPacked builds n packed codes of the given width.
func benchPacked(n int, width uint) *PackedInts {
	rng := rand.New(rand.NewSource(int64(width)))
	vals := make([]uint64, n)
	max := uint64(1)<<width - 1
	for i := range vals {
		vals[i] = rng.Uint64() & max
	}
	return PackInts(vals, width)
}

func benchFilterCodes(b *testing.B, width uint, and bool) {
	const n = 1 << 20
	p := benchPacked(n, width)
	dst := NewBitmap(n)
	if and {
		// A half-dense prior selection: the AND pass walks its set bits.
		for w := range dst.words {
			dst.words[w] = 0x5555555555555555
		}
	}
	max := uint64(1)<<width - 1
	cLo, cHi := max/4, 3*max/4
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filterCodes(p, cLo, cHi, 0, n, dst, and)
		if and {
			// Restore the prior selection so every iteration does the
			// same work (the AND pass clears bits).
			for w := range dst.words {
				dst.words[w] = 0x5555555555555555
			}
		}
	}
}

func BenchmarkFilterCodesW4(b *testing.B)     { benchFilterCodes(b, 4, false) }
func BenchmarkFilterCodesW16(b *testing.B)    { benchFilterCodes(b, 16, false) }
func BenchmarkFilterCodesW24(b *testing.B)    { benchFilterCodes(b, 24, false) }
func BenchmarkFilterCodesAndW16(b *testing.B) { benchFilterCodes(b, 16, true) }

func BenchmarkFilterFloats(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	dst := NewBitmap(n)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filterFloats(vals, 0.25, 0.75, 0, n, dst, false)
	}
}

func BenchmarkPackedGet(b *testing.B) {
	const n = 1 << 20
	p := benchPacked(n, 16)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Get(i & (n - 1))
	}
	_ = sink
}
