//go:build !unix

package colstore

import (
	"fmt"
	"os"
)

// mapFile loads path into the heap on platforms without syscall.Mmap. The
// snapshot still avoids the O(rows) rebuild — one sequential read replaces
// the generate/partition/encode pipeline — it just isn't shared or lazy.
func mapFile(path string) ([]byte, bool, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(buf) == 0 {
		return nil, false, fmt.Errorf("colstore: snapshot %s: empty file", path)
	}
	return buf, false, nil
}

// unmapFile releases a mapFile result (a no-op for heap buffers).
func unmapFile(buf []byte, mapped bool) error { return nil }
