// Package colstore implements compressed columnar storage with vectorized
// filter kernels — the encoding layer under internal/storage that makes
// 50–100M-row interactive workloads fit in memory and scan at cache
// bandwidth.
//
// Three encodings cover the repo's data shapes:
//
//   - Dict: an order-preserving sorted dictionary of the distinct values
//     (strings, ints, or low-cardinality floats — quantized coordinates,
//     categories) with per-row codes bit-packed at minimal width. Because
//     codes preserve value order, a range predicate over values becomes a
//     code interval found by two binary searches over the dictionary, and
//     the scan never materializes a value.
//   - ForPacked: frame-of-reference bit-packed int64 — value = ref + code,
//     codes packed at the width of (max − min). Range predicates translate
//     to code intervals by exact ceil/floor arithmetic.
//   - Plain: raw float64/int64 passthrough for incompressible data (and
//     NaN-containing floats, which no order-preserving code can represent).
//
// Every encoding satisfies the predicate-kernel contract: FilterRange /
// FilterEqual / FilterIn scan rows [r0, r1) directly over the packed words
// and emit 64-bit-word selection bitmaps, building each output word in a
// register with branchless compares. Kernels over disjoint morsel-aligned
// row ranges write disjoint bitmap words (morsel.Size is a multiple of
// 64), so morsel-parallel execution needs no synchronization; the
// differential suite proves every kernel byte-identical to the unpacked
// oracle under -race.
//
// Exactness is load-bearing, not best-effort: Freeze only selects an
// encoding when decoding reproduces the original value bit-for-bit (Dict
// keys on the float's bit pattern, ForPacked refuses magnitudes where
// float64(int) rounds), so encoded scans are proven byte-identical to
// plain scans, never approximately equal.
package colstore

import (
	"math"

	"repro/internal/storage"
)

// Encoding identifies a column's physical representation.
type Encoding uint8

const (
	// Plain is the raw-slice passthrough encoding.
	Plain Encoding = iota
	// Dict is the sorted-dictionary + bit-packed-code encoding.
	Dict
	// ForPacked is frame-of-reference bit-packed int64.
	ForPacked
)

// String returns the encoding's stats name.
func (e Encoding) String() string {
	switch e {
	case Dict:
		return "dict"
	case ForPacked:
		return "for"
	default:
		return "plain"
	}
}

// Column is the encoding-aware column interface: the storage.Encoded read
// surface plus the vectorized predicate kernels. All kernels take closed
// value ranges [lo, hi] (see RangeFromOp for translating strict
// comparisons) and write selection bitmaps; and=false stores the
// selection over [r0, r1), and=true intersects it with dst's current
// contents. r0 must be a multiple of 64 and r1 a multiple of 64 or the
// row count — the morsel alignment the bitmap's word-ownership contract
// relies on. Numeric kernels compare the row's float64 image (exactly
// what the plain oracle compares); NaN bounds select nothing.
type Column interface {
	storage.Encoded
	// Encoding identifies the physical representation.
	Encoding() Encoding
	// Type returns the column's logical storage type.
	Type() storage.Type
	// PlainBytes is the byte footprint of the equivalent unencoded column,
	// the denominator of the compression ratio.
	PlainBytes() int64
	// FilterRange selects rows whose value lies in [lo, hi]. Panics on
	// string columns, which have no numeric order here (same contract as
	// storage.Column.Float).
	FilterRange(lo, hi float64, r0, r1 int, dst *Bitmap, and bool)
	// FilterEqual selects rows equal to v: numeric columns compare the
	// float64 image, string columns compare the string.
	FilterEqual(v storage.Value, r0, r1 int, dst *Bitmap, and bool)
	// FilterIn selects rows whose value equals any element of vals.
	FilterIn(vals []storage.Value, r0, r1 int, dst *Bitmap, and bool)
}

// Coded is implemented by encodings whose per-row representation is an
// order-preserving small-integer code (Dict over numerics, ForPacked).
// Consumers like crossfilter exploit it to run entirely in code space:
// filter bounds translate once per update, and per-record work is a
// packed-code read plus a table lookup.
type Coded interface {
	Column
	// Codes returns the packed per-row codes (shared, do not modify).
	Codes() *PackedInts
	// CodeSpan returns the maximum code value (codes occupy [0, CodeSpan]).
	CodeSpan() uint64
	// CodeRange maps the closed value range [lo, hi] to the inclusive code
	// interval selecting exactly the rows the plain oracle would select;
	// ok=false means no code's value falls in the range.
	CodeRange(lo, hi float64) (cLo, cHi uint64, ok bool)
	// DecodeFloat returns the float64 image of a code.
	DecodeFloat(code uint64) float64
}

// FloatSlice is implemented by encodings backed by a raw float64 slice
// (the Plain float passthrough); consumers that would otherwise decode a
// full copy borrow the slice instead.
type FloatSlice interface {
	RawFloats() []float64
}

// Of returns the colstore view of a storage column, or ok=false if the
// column is not frozen into a colstore encoding.
func Of(c *storage.Column) (Column, bool) {
	if c == nil || c.Enc == nil {
		return nil, false
	}
	col, ok := c.Enc.(Column)
	return col, ok
}

// FloatSliceOf returns the raw float64 slice backing a frozen plain-float
// column, for consumers that would otherwise decode a full copy; ok=false
// when the column is unfrozen or not slice-backed.
func FloatSliceOf(c *storage.Column) ([]float64, bool) {
	if c == nil || c.Enc == nil {
		return nil, false
	}
	fs, ok := c.Enc.(FloatSlice)
	if !ok {
		return nil, false
	}
	return fs.RawFloats(), true
}

// RangeFromOp converts one comparison `value op x` (op ∈ {">=", "<=", ">",
// "<"}) into closed bounds [lo, hi] such that, for every non-NaN value v,
// v satisfies the comparison iff lo <= v <= hi. Strict bounds move one ULP
// inward: v > x ⟺ v >= nextafter(x, +Inf) over the float64 total order.
// A comparison no value satisfies (x NaN, or v > +Inf) returns NaN
// bounds, which every kernel treats as select-nothing. Conjunctions
// intersect bounds with IntersectRange.
func RangeFromOp(op string, x float64) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if math.IsNaN(x) {
		return math.NaN(), math.NaN()
	}
	switch op {
	case ">=":
		lo = x
	case ">":
		if math.IsInf(x, 1) {
			return math.NaN(), math.NaN()
		}
		lo = math.Nextafter(x, math.Inf(1))
	case "<=":
		hi = x
	case "<":
		if math.IsInf(x, -1) {
			return math.NaN(), math.NaN()
		}
		hi = math.Nextafter(x, math.Inf(-1))
	}
	return lo, hi
}

// IntersectRange intersects two closed ranges; an empty intersection
// yields NaN bounds (select-nothing).
func IntersectRange(lo1, hi1, lo2, hi2 float64) (lo, hi float64) {
	lo = math.Max(lo1, lo2)
	hi = math.Min(hi1, hi2)
	if math.IsNaN(lo1) || math.IsNaN(hi1) || math.IsNaN(lo2) || math.IsNaN(hi2) || lo > hi {
		return math.NaN(), math.NaN()
	}
	return lo, hi
}

// b2u is the branchless bool→bit conversion the kernel loops build
// selection words from; the compiler lowers it to SETcc, not a branch.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
