package colstore

import (
	"math"

	"repro/internal/storage"
)

// forMaxMagnitude bounds the values frame-of-reference packing accepts:
// within ±2^52 every int64 has an exact float64 image, so the ceil/floor
// bound translation in CodeRange reproduces the plain oracle's float
// comparisons bit-for-bit. Beyond it the column stays Plain.
const forMaxMagnitude = int64(1) << 52

// forMaxWidth caps the packed code width; above it the space win is too
// small to justify the decode arithmetic over an 8-byte raw read.
const forMaxWidth = 48

// ForColumn is frame-of-reference bit-packed int64: row i's value is
// ref + code(i), with codes packed at the width of (max − min). Codes are
// trivially order-preserving (adding a constant preserves order), so range
// predicates translate to code intervals with two integer ceil/floor
// computations — no dictionary, no search.
type ForColumn struct {
	ref   int64 // minimum value; codes span [0, spanMax]
	span  uint64
	codes *PackedInts
}

func (c *ForColumn) Len() int { return c.codes.Len() }

func (c *ForColumn) value(i int) int64 { return c.ref + int64(c.codes.Get(i)) }

func (c *ForColumn) Value(i int) storage.Value { return storage.NewInt(c.value(i)) }
func (c *ForColumn) Float(i int) float64       { return float64(c.value(i)) }
func (c *ForColumn) EncodedBytes() int64       { return c.codes.Bytes() }
func (c *ForColumn) EncodingName() string      { return ForPacked.String() }
func (c *ForColumn) Encoding() Encoding        { return ForPacked }
func (c *ForColumn) Type() storage.Type        { return storage.Int64 }
func (c *ForColumn) PlainBytes() int64         { return int64(c.codes.Len()) * 8 }

// Codes returns the packed per-row codes.
func (c *ForColumn) Codes() *PackedInts { return c.codes }

// CodeSpan returns the maximum code (max − min).
func (c *ForColumn) CodeSpan() uint64 { return c.span }

// DecodeFloat returns the float64 image of a code.
func (c *ForColumn) DecodeFloat(code uint64) float64 {
	return float64(c.ref + int64(code))
}

// CodeRange maps the closed value range [lo, hi] to the inclusive code
// interval. An integer value v satisfies float64(v) >= lo iff
// v >= ceil(lo) (exact because every value is within ±2^52), so the
// interval is [ceil(lo)−ref, floor(hi)−ref] clamped to the code span.
func (c *ForColumn) CodeRange(lo, hi float64) (cLo, cHi uint64, ok bool) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, 0, false
	}
	minV, maxV := float64(c.ref), float64(c.ref+int64(c.span))
	if lo > maxV || hi < minV {
		return 0, 0, false
	}
	var l, h uint64
	if lo > minV {
		l = uint64(int64(math.Ceil(lo)) - c.ref)
	}
	h = c.span
	if hi < maxV {
		h = uint64(int64(math.Floor(hi)) - c.ref)
	}
	if h < l { // an empty integer gap like [3.2, 3.8]
		return 0, 0, false
	}
	return l, h, true
}

func (c *ForColumn) FilterRange(lo, hi float64, r0, r1 int, dst *Bitmap, and bool) {
	cLo, cHi, ok := c.CodeRange(lo, hi)
	if !ok {
		dst.ZeroRange(r0, r1)
		return
	}
	filterCodes(c.codes, cLo, cHi, r0, r1, dst, and)
}

func (c *ForColumn) FilterEqual(v storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	x := v.AsFloat()
	c.FilterRange(x, x, r0, r1, dst, and)
}

func (c *ForColumn) FilterIn(vals []storage.Value, r0, r1 int, dst *Bitmap, and bool) {
	// Small spans get the bitset kernel; a sparse in-set over a huge span
	// falls back to ORing per-value equality selections.
	if c.span < 1<<22 {
		set := make([]uint64, (c.span+64)/64)
		any := false
		for _, v := range vals {
			if cLo, cHi, ok := c.CodeRange(v.AsFloat(), v.AsFloat()); ok {
				for k := cLo; k <= cHi; k++ {
					set[k>>6] |= 1 << (k & 63)
					any = true
				}
			}
		}
		if !any {
			dst.ZeroRange(r0, r1)
			return
		}
		filterCodesInSet(c.codes, set, r0, r1, dst, and)
		return
	}
	scratch := NewBitmap(dst.Len())
	acc := NewBitmap(dst.Len())
	for _, v := range vals {
		c.FilterEqual(v, r0, r1, scratch, false)
		for w := r0 >> 6; w<<6 < r1; w++ {
			acc.words[w] |= scratch.words[w]
		}
	}
	if and {
		for w := r0 >> 6; w<<6 < r1; w++ {
			dst.words[w] &= acc.words[w]
		}
	} else {
		for w := r0 >> 6; w<<6 < r1; w++ {
			dst.words[w] = acc.words[w]
		}
	}
}
