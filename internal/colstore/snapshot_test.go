package colstore

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// snapTestTable builds a table covering every encoding Freeze can pick:
// a low-cardinality float (dict, with NaN-free ±0.0 entries), a
// high-cardinality float (plain), a dense int run (for-packed), a
// low-cardinality string (dict), and a NaN-containing float (plain).
func snapTestTable(t *testing.T, rows int, seed int64) *storage.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := storage.NewTable("snaptest", storage.Schema{
		{Name: "qf", Type: storage.Float64},
		{Name: "hf", Type: storage.Float64},
		{Name: "seq", Type: storage.Int64},
		{Name: "cat", Type: storage.String},
		{Name: "nanf", Type: storage.Float64},
	})
	cats := []string{"alpha", "beta", "gamma", "", "delta-with-a-longer-name"}
	quant := []float64{-2.5, -0.0, 0.0, 1.25, 3.75, math.Inf(-1), math.Inf(1)}
	for i := 0; i < rows; i++ {
		nan := rng.Float64()
		if i%17 == 0 {
			nan = math.NaN()
		}
		tbl.MustAppendRow(
			storage.NewFloat(quant[rng.Intn(len(quant))]),
			storage.NewFloat(rng.NormFloat64()*1e6),
			storage.NewInt(int64(1000+i*3)),
			storage.NewString(cats[rng.Intn(len(cats))]),
			storage.NewFloat(nan),
		)
	}
	return tbl
}

// requireSameTable asserts every value of b reads back bit-identical to a
// through the storage surface — the byte-compare the snapshot round trip
// must pass, including NaN and ±0.0 bit patterns.
func requireSameTable(t *testing.T, a, b *storage.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows: %d vs %d", a.NumRows(), b.NumRows())
	}
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("columns: %d vs %d", len(a.Columns), len(b.Columns))
	}
	for ci := range a.Columns {
		ca, cb := a.Columns[ci], b.Columns[ci]
		if ca.Type != cb.Type {
			t.Fatalf("column %d type: %v vs %v", ci, ca.Type, cb.Type)
		}
		for i := 0; i < ca.Len(); i++ {
			va, vb := ca.Value(i), cb.Value(i)
			switch ca.Type {
			case storage.Float64:
				if math.Float64bits(va.F) != math.Float64bits(vb.F) {
					t.Fatalf("column %d row %d: %x vs %x", ci, i, math.Float64bits(va.F), math.Float64bits(vb.F))
				}
			case storage.Int64:
				if va.I != vb.I {
					t.Fatalf("column %d row %d: %d vs %d", ci, i, va.I, vb.I)
				}
			default:
				if va.S != vb.S {
					t.Fatalf("column %d row %d: %q vs %q", ci, i, va.S, vb.S)
				}
			}
		}
	}
}

func writeTestSnapshot(t *testing.T, tbl *storage.Table, fence map[string]string, sections []SnapshotSection) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := WriteSnapshot(path, tbl, fence, sections); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return path
}

func TestSnapshotRoundTripFrozen(t *testing.T) {
	tbl := snapTestTable(t, 4000, 7)
	frozen, err := Freeze(tbl, &Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The test table must actually exercise dict, for-packed, AND plain, or
	// the round trip proves less than it claims.
	seen := map[Encoding]bool{}
	for _, col := range frozen.Columns {
		enc, ok := Of(col)
		if !ok {
			t.Fatal("freeze left an unencoded column")
		}
		seen[enc.Encoding()] = true
	}
	for _, e := range []Encoding{Plain, Dict, ForPacked} {
		if !seen[e] {
			t.Fatalf("test table never produced %s encoding", e)
		}
	}

	fence := map[string]string{"dataset": "snaptest", "seed": "7"}
	sums := []int64{0, 1, 2, 3, 1 << 40}
	path := writeTestSnapshot(t, frozen, fence, []SnapshotSection{
		{Name: "prefix", Int64s: sums},
		{Name: "dims", JSON: []byte(`[{"Name":"qf","Bins":20}]`)},
	})
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer snap.Close()

	requireSameTable(t, tbl, snap.Table())
	if !IsFrozen(snap.Table()) {
		t.Fatal("snapshot table is not fully encoded")
	}
	// Encodings must survive, not just values: a dict column that came back
	// plain would serve correct answers slowly and silently.
	for ci, col := range frozen.Columns {
		want, _ := Of(col)
		got, _ := Of(snap.Table().Columns[ci])
		if want.Encoding() != got.Encoding() {
			t.Fatalf("column %d encoding %s came back %s", ci, want.Encoding(), got.Encoding())
		}
	}
	if got := snap.Fence(); got["dataset"] != "snaptest" || got["seed"] != "7" {
		t.Fatalf("fence round trip: %v", got)
	}
	gotSums, ok := snap.SectionInt64("prefix")
	if !ok || len(gotSums) != len(sums) {
		t.Fatalf("prefix section: ok=%v len=%d", ok, len(gotSums))
	}
	for i := range sums {
		if gotSums[i] != sums[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, gotSums[i], sums[i])
		}
	}
	if js, ok := snap.SectionJSON("dims"); !ok || string(js) != `[{"Name":"qf","Bins":20}]` {
		t.Fatalf("dims section: ok=%v %q", ok, js)
	}
	if _, ok := snap.SectionInt64("dims"); ok {
		t.Fatal("JSON section answered as int64")
	}
	if _, ok := snap.SectionInt64("missing"); ok {
		t.Fatal("missing section answered")
	}
}

func TestSnapshotRoundTripUnfrozen(t *testing.T) {
	tbl := snapTestTable(t, 500, 11)
	path := writeTestSnapshot(t, tbl, nil, nil)
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer snap.Close()
	requireSameTable(t, tbl, snap.Table())
}

func TestSnapshotFilterKernelsOverMapped(t *testing.T) {
	// The mapped columns must not only read back — the vectorized kernels
	// must run over them (the zero-copy slices alias the file), agreeing
	// with the original frozen columns bit for bit.
	tbl := snapTestTable(t, 3000, 13)
	frozen, err := Freeze(tbl, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := writeTestSnapshot(t, frozen, nil, nil)
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	n := tbl.NumRows()
	for ci, col := range frozen.Columns {
		if col.Type == storage.String {
			continue
		}
		want, _ := Of(col)
		got, _ := Of(snap.Table().Columns[ci])
		a, b := NewBitmap(n), NewBitmap(n)
		want.FilterRange(-1e5, 1e5, 0, n, a, false)
		got.FilterRange(-1e5, 1e5, 0, n, b, false)
		for i := 0; i < n; i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("column %d row %d: mapped kernel diverged", ci, i)
			}
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	tbl := snapTestTable(t, 200, 3)
	frozen, err := Freeze(tbl, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := writeTestSnapshot(t, frozen, map[string]string{"k": "v"}, []SnapshotSection{{Name: "s", Int64s: []int64{1, 2}}})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		buf := append([]byte(nil), orig...)
		buf = mutate(buf)
		p := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if snap, err := OpenSnapshot(p); err == nil {
			snap.Close()
			t.Fatalf("%s: corrupted snapshot accepted", name)
		}
	}

	check("truncated-header", func(b []byte) []byte { return b[:16] })
	check("truncated-half", func(b []byte) []byte { return b[:len(b)/2] })
	check("truncated-1", func(b []byte) []byte { return b[:len(b)-1] })
	check("extended", func(b []byte) []byte { return append(b, 0) })
	check("bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	check("bad-version", func(b []byte) []byte { b[8] ^= 0xff; return b })
	check("empty", func(b []byte) []byte { return b[:0] })
	// Every single-byte flip past the header must be caught by the CRC (a
	// header flip is caught by magic/version/length reconciliation or the
	// stored-checksum comparison).
	stride := len(orig)/97 + 1
	for off := 0; off < len(orig); off += stride {
		off := off
		check("flip", func(b []byte) []byte { b[off] ^= 0x01; return b })
	}
}

func TestSnapshotRejectsMissingFile(t *testing.T) {
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSnapshotAtomicOverwrite(t *testing.T) {
	// Two sequential writes to one path must leave a single valid file and
	// no temp litter — the rename-into-place contract concurrent replica
	// writers rely on.
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.snap")
	tbl := snapTestTable(t, 100, 5)
	for i := 0; i < 2; i++ {
		if err := WriteSnapshot(path, tbl, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "shard.snap" {
		t.Fatalf("directory not clean after writes: %v", entries)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	requireSameTable(t, tbl, snap.Table())
}

// FuzzSnapshotRoundTrip freezes an arbitrary table (bytes drive row count,
// float values including NaN/±0.0, int values, and string shapes), writes
// a snapshot, reopens it, and byte-compares every value — then flips one
// arbitrary byte and requires the reopen to fail.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(40), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(99), uint8(0), []byte{})
	f.Add(int64(-7), uint8(200), []byte{0xff, 0x00, 0x80, 0x7f})
	f.Fuzz(func(t *testing.T, seed int64, rowsByte uint8, raw []byte) {
		rows := int(rowsByte)
		rng := rand.New(rand.NewSource(seed))
		tbl := storage.NewTable("fuzz", storage.Schema{
			{Name: "f", Type: storage.Float64},
			{Name: "i", Type: storage.Int64},
			{Name: "s", Type: storage.String},
		})
		specials := []float64{math.NaN(), math.Copysign(0, -1), 0, math.Inf(1), math.Inf(-1), 1.5}
		for r := 0; r < rows; r++ {
			var fv float64
			if len(raw) > 0 && raw[r%len(raw)]%3 == 0 {
				fv = specials[rng.Intn(len(specials))]
			} else {
				fv = rng.NormFloat64()
			}
			var sv string
			if len(raw) > 0 {
				k := r % len(raw)
				sv = string(raw[k : k+1+rng.Intn(len(raw)-k)])
			}
			tbl.MustAppendRow(storage.NewFloat(fv), storage.NewInt(rng.Int63n(1<<20)-1<<19), storage.NewString(sv))
		}
		frozen, err := Freeze(tbl, &Options{Parallelism: 1, MaxDictCard: 64})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := WriteSnapshot(path, frozen, map[string]string{"seed": "x"}, nil); err != nil {
			t.Fatalf("write: %v", err)
		}
		snap, err := OpenSnapshot(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		requireSameTable(t, tbl, snap.Table())
		snap.Close()

		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) > 0 {
			off := int(uint(seed) % uint(len(buf)))
			buf[off] ^= 0x40
			bad := filepath.Join(t.TempDir(), "bad.snap")
			if err := os.WriteFile(bad, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			if s, err := OpenSnapshot(bad); err == nil {
				s.Close()
				t.Fatalf("flip at %d accepted", off)
			}
		}
	})
}
