package colstore

import (
	"fmt"
	"math/bits"
)

// PackedInts stores n unsigned integers of one fixed bit width, packed
// contiguously into 64-bit words. One padding word is appended so that any
// element can be extracted by reading two adjacent words and shifting —
// no bounds branch, no per-element width branch — which is what keeps the
// filter kernels' inner loops branchless:
//
//	c := (words[w]>>off | words[w+1]<<(64-off)) & mask
//
// (Go defines shifts by >= 64 to yield 0, so the off == 0 case needs no
// special handling.) Width 0 is the constant column: no payload bits, all
// elements decode to 0.
type PackedInts struct {
	words []uint64
	width uint
	mask  uint64
	n     int
}

// PackInts packs vals at the given width (0..64). Every value must fit:
// values with bits above width panic, because silently truncating a code
// would decode to the wrong value — an invariant violation, not an input
// error.
func PackInts(vals []uint64, width uint) *PackedInts {
	p := NewPackedZero(len(vals), width)
	for i, v := range vals {
		p.Put(i, v)
	}
	return p
}

// NewPackedZero allocates a packed array of n zero elements at the given
// width, ready for Put. Builders filling disjoint 64-row-aligned element
// ranges may Put concurrently: an element range starting at a multiple of
// 64 starts at a word boundary for every width.
func NewPackedZero(n int, width uint) *PackedInts {
	if width > 64 {
		panic(fmt.Sprintf("colstore: bit width %d out of range", width))
	}
	var mask uint64
	if width > 0 {
		mask = ^uint64(0) >> (64 - width)
	}
	nbits := uint64(n) * uint64(width)
	nwords := (nbits+63)/64 + 1
	if nwords < 2 {
		nwords = 2 // Get always reads two words, even at width 0
	}
	return &PackedInts{
		words: make([]uint64, nwords),
		width: width,
		mask:  mask,
		n:     n,
	}
}

// Put sets element i, which must currently be zero (words are OR-filled).
func (p *PackedInts) Put(i int, v uint64) {
	if v&^p.mask != 0 {
		panic(fmt.Sprintf("colstore: value %d exceeds %d-bit width", v, p.width))
	}
	if p.width == 0 {
		return
	}
	bit := uint64(i) * uint64(p.width)
	w, off := bit>>6, uint(bit&63)
	p.words[w] |= v << off
	if off+p.width > 64 {
		p.words[w+1] |= v >> (64 - off)
	}
}

// Get extracts element i.
func (p *PackedInts) Get(i int) uint64 {
	bit := uint64(i) * uint64(p.width)
	w, off := bit>>6, uint(bit&63)
	return (p.words[w]>>off | p.words[w+1]<<(64-off)) & p.mask
}

// Len returns the element count.
func (p *PackedInts) Len() int { return p.n }

// Width returns the per-element bit width.
func (p *PackedInts) Width() uint { return p.width }

// Bytes returns the resident byte footprint of the packed words.
func (p *PackedInts) Bytes() int64 { return int64(len(p.words)) * 8 }

// WidthFor returns the minimal bit width that represents max (0 for 0).
func WidthFor(max uint64) uint {
	return uint(bits.Len64(max))
}
