package colstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []uint{0, 1, 3, 7, 8, 13, 16, 21, 32, 48, 63, 64} {
		n := 500 + rng.Intn(200)
		vals := make([]uint64, n)
		var mask uint64
		if width > 0 {
			mask = ^uint64(0) >> (64 - width)
		}
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		p := PackInts(vals, width)
		if p.Len() != n || p.Width() != width {
			t.Fatalf("width %d: Len/Width = %d/%d", width, p.Len(), p.Width())
		}
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("width %d: Get(%d) = %d, want %d", width, i, got, want)
			}
		}
	}
}

func TestPackedEmptyAndZeroWidth(t *testing.T) {
	for _, tc := range []struct {
		n     int
		width uint
	}{{0, 0}, {0, 17}, {5, 0}} {
		p := NewPackedZero(tc.n, tc.width)
		for i := 0; i < tc.n; i++ {
			if p.Get(i) != 0 {
				t.Fatalf("n=%d width=%d: Get(%d) != 0", tc.n, tc.width, i)
			}
		}
		if len(p.words) < 2 {
			t.Fatalf("n=%d width=%d: %d words; Get needs two", tc.n, tc.width, len(p.words))
		}
	}
}

func TestPackedPutOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of an over-width value did not panic")
		}
	}()
	NewPackedZero(4, 3).Put(0, 8)
}

func TestBitmapBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1000
	b := NewBitmap(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
			ref[i] = true
		}
	}
	want := 0
	for i, v := range ref {
		if v {
			want++
		}
		if b.Get(i) != v {
			t.Fatalf("Get(%d) = %v, want %v", i, b.Get(i), v)
		}
	}
	if b.Count() != want {
		t.Fatalf("Count = %d, want %d", b.Count(), want)
	}
	for trial := 0; trial < 200; trial++ {
		r0, r1 := rng.Intn(n+1), rng.Intn(n+1)
		if r0 > r1 {
			r0, r1 = r1, r0
		}
		cnt := 0
		for i := r0; i < r1; i++ {
			if ref[i] {
				cnt++
			}
		}
		if got := b.CountRange(r0, r1); got != cnt {
			t.Fatalf("CountRange(%d, %d) = %d, want %d", r0, r1, got, cnt)
		}
	}
	var visited []int
	b.ForEachSet(0, n, func(i int) { visited = append(visited, i) })
	j := 0
	for i, v := range ref {
		if !v {
			continue
		}
		if j >= len(visited) || visited[j] != i {
			t.Fatalf("ForEachSet order mismatch at set-bit %d", j)
		}
		j++
	}
	if j != len(visited) {
		t.Fatalf("ForEachSet visited %d rows, want %d", len(visited), j)
	}
}

func TestRangeFromOpMatchesComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := []float64{0, -0.0, 1, -1, 0.1, -2.5, math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64}
	for i := 0; i < 50; i++ {
		xs = append(xs, rng.NormFloat64()*100)
	}
	vs := append([]float64{}, xs...)
	for _, op := range []string{">=", "<=", ">", "<"} {
		for _, x := range xs {
			lo, hi := RangeFromOp(op, x)
			for _, v := range vs {
				if math.IsNaN(v) {
					continue // NaN values are filtered by kernels, not the transform
				}
				var want bool
				switch op {
				case ">=":
					want = v >= x
				case "<=":
					want = v <= x
				case ">":
					want = v > x
				case "<":
					want = v < x
				}
				got := v >= lo && v <= hi
				if got != want {
					t.Fatalf("RangeFromOp(%q, %v) = [%v, %v]: v=%v selected=%v, want %v", op, x, lo, hi, v, got, want)
				}
			}
		}
	}
}

func TestIntersectRange(t *testing.T) {
	if lo, hi := IntersectRange(0, 10, 5, 20); lo != 5 || hi != 10 {
		t.Fatalf("IntersectRange = [%v, %v], want [5, 10]", lo, hi)
	}
	if lo, hi := IntersectRange(0, 1, 2, 3); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatalf("disjoint ranges should intersect to NaN, got [%v, %v]", lo, hi)
	}
	if lo, _ := IntersectRange(math.NaN(), math.NaN(), 0, 1); !math.IsNaN(lo) {
		t.Fatal("NaN input should stay NaN")
	}
}

// rawTable builds an unfrozen table directly from slices.
func rawTable(name string, cols map[string]interface{}, order []string) *storage.Table {
	t := &storage.Table{Name: name, PageRows: storage.DefaultPageRows}
	for _, cn := range order {
		switch vals := cols[cn].(type) {
		case []float64:
			t.Schema = append(t.Schema, storage.ColumnDef{Name: cn, Type: storage.Float64})
			t.Columns = append(t.Columns, &storage.Column{Type: storage.Float64, Floats: vals})
		case []int64:
			t.Schema = append(t.Schema, storage.ColumnDef{Name: cn, Type: storage.Int64})
			t.Columns = append(t.Columns, &storage.Column{Type: storage.Int64, Ints: vals})
		case []string:
			t.Schema = append(t.Schema, storage.ColumnDef{Name: cn, Type: storage.String})
			t.Columns = append(t.Columns, &storage.Column{Type: storage.String, Strings: vals})
		}
	}
	return t
}

func TestFreezeEncodingSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 4000
	lowCardF := make([]float64, n) // quantized → dict
	highCardF := make([]float64, n)
	nanF := make([]float64, n)
	walkI := make([]int64, n) // narrow range → for
	hugeI := make([]int64, n) // distinct values past ±2^52 → plain
	cat := make([]string, n)  // low cardinality → dict
	names := []string{"alpha", "beta", "gamma", "delta"}
	for i := range lowCardF {
		lowCardF[i] = float64(rng.Intn(100)) / 100
		highCardF[i] = rng.NormFloat64()
		nanF[i] = rng.NormFloat64()
		walkI[i] = int64(1000 + rng.Intn(512))
		hugeI[i] = (int64(1) << 53) + int64(i)*4096
		cat[i] = names[rng.Intn(len(names))]
	}
	nanF[n/2] = math.NaN()

	tbl := rawTable("sel", map[string]interface{}{
		"lowf": lowCardF, "highf": highCardF, "nanf": nanF,
		"walk": walkI, "huge": hugeI, "cat": cat,
	}, []string{"lowf", "highf", "nanf", "walk", "huge", "cat"})
	frozen, err := Freeze(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Encoding{
		"lowf": Dict, "highf": Plain, "nanf": Plain,
		"walk": ForPacked, "huge": Plain, "cat": Dict,
	}
	for cn, enc := range want {
		col, ok := Of(frozen.Column(cn))
		if !ok {
			t.Fatalf("column %q not encoded", cn)
		}
		if col.Encoding() != enc {
			t.Fatalf("column %q: encoding %v, want %v", cn, col.Encoding(), enc)
		}
	}
	if !IsFrozen(frozen) {
		t.Fatal("IsFrozen(frozen) = false")
	}
	if IsFrozen(tbl) {
		t.Fatal("IsFrozen(raw) = true")
	}

	// Frozen reads are bit-identical through the storage surface.
	for _, cn := range []string{"lowf", "highf", "nanf", "walk", "huge", "cat"} {
		raw, froze := tbl.Column(cn), frozen.Column(cn)
		if raw.Len() != froze.Len() {
			t.Fatalf("column %q: Len %d vs %d", cn, raw.Len(), froze.Len())
		}
		for i := 0; i < n; i++ {
			a, b := raw.Value(i), froze.Value(i)
			if a.Type != b.Type || a.S != b.S ||
				math.Float64bits(a.F) != math.Float64bits(b.F) || a.I != b.I {
				t.Fatalf("column %q row %d: %v vs %v", cn, i, a, b)
			}
		}
	}

	// Idempotent: refreezing shares the encoded columns.
	again, err := Freeze(frozen, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frozen.Columns {
		if again.Columns[i] != frozen.Columns[i] {
			t.Fatalf("refreeze rebuilt column %d", i)
		}
	}

	// Frozen tables refuse appends.
	if err := frozen.AppendRow(storage.NewFloat(1), storage.NewFloat(1), storage.NewFloat(1),
		storage.NewInt(1), storage.NewInt(1), storage.NewString("x")); err == nil {
		t.Fatal("AppendRow on a frozen table succeeded")
	}

	st := StatsOf(frozen)
	if st.Rows != n || len(st.Columns) != 6 {
		t.Fatalf("StatsOf: rows=%d cols=%d", st.Rows, len(st.Columns))
	}
	if st.Ratio <= 1 {
		t.Fatalf("StatsOf ratio %v, want > 1 for this mostly-compressible table", st.Ratio)
	}
	var total int64
	for _, cs := range st.Columns {
		if cs.Bytes <= 0 || cs.PlainBytes <= 0 {
			t.Fatalf("column %q: bytes=%d plain=%d", cs.Name, cs.Bytes, cs.PlainBytes)
		}
		total += cs.Bytes
	}
	if total != st.EncodedBytes {
		t.Fatalf("EncodedBytes %d != column sum %d", st.EncodedBytes, total)
	}
}

func TestFreezeSignedZeroExactness(t *testing.T) {
	vals := []float64{0, -0.0, 1, -0.0, 0, 2, 0, -0.0}
	tbl := rawTable("zeros", map[string]interface{}{"v": vals}, []string{"v"})
	frozen, err := Freeze(tbl, &Options{MinRatio: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := Of(frozen.Column("v"))
	if col.Encoding() != Dict {
		t.Fatalf("encoding %v, want Dict", col.Encoding())
	}
	for i, want := range vals {
		got := frozen.Column("v").Float(i)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: %v (bits %x) != %v (bits %x)", i, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	// A range containing zero selects both signed-zero codes.
	bm := NewBitmap(len(vals))
	col.FilterRange(-0.5, 0.5, 0, len(vals), bm, false)
	for i, v := range vals {
		if bm.Get(i) != (v == 0) {
			t.Fatalf("row %d (v=%v): selected=%v", i, v, bm.Get(i))
		}
	}
}

func TestStorageFloatPanicsOnText(t *testing.T) {
	col := &storage.Column{Type: storage.String, Strings: []string{"a"}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Float on a TEXT column did not panic")
			}
		}()
		col.Float(0)
	}()
	if _, err := col.FloatAt(0); err == nil {
		t.Fatal("FloatAt on a TEXT column returned no error")
	}
	num := &storage.Column{Type: storage.Float64, Floats: []float64{2.5}}
	if v, err := num.FloatAt(0); err != nil || v != 2.5 {
		t.Fatalf("FloatAt = %v, %v", v, err)
	}
}
