package colstore

import (
	"encoding/binary"
	"testing"
)

// FuzzPackRoundTrip feeds arbitrary bytes through bit-packed encode/decode:
// the first byte selects the width, the rest become values masked to it.
// Every element must read back exactly, from Get and through a filterCodes
// full-range scan — the invariant the whole encoding layer stands on.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0})
	f.Add([]byte{64, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{13, 0xab, 0xcd, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		width := uint(data[0]) % 65
		data = data[1:]
		var mask uint64
		if width > 0 {
			mask = ^uint64(0) >> (64 - width)
		}
		n := len(data) / 8
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(data[i*8:]) & mask
		}
		p := PackInts(vals, width)
		if p.Len() != n {
			t.Fatalf("Len = %d, want %d", p.Len(), n)
		}
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("width %d: Get(%d) = %d, want %d", width, i, got, want)
			}
		}
		if n == 0 {
			return
		}
		// The branchless kernel must agree with Get on membership of a
		// random-ish code interval taken from the data itself.
		cLo := vals[0]
		cHi := vals[n-1]
		if cHi < cLo {
			cLo, cHi = cHi, cLo
		}
		bm := NewBitmap(n)
		filterCodes(p, cLo, cHi, 0, n, bm, false)
		for i, v := range vals {
			want := v >= cLo && v <= cHi
			if bm.Get(i) != want {
				t.Fatalf("width %d: filterCodes row %d = %v, want %v", width, i, bm.Get(i), want)
			}
		}
	})
}
