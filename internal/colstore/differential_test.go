package colstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// The differential suite: every kernel over every encoding must select
// exactly the rows a scalar oracle loop over the original values selects,
// for randomized data shapes and randomized predicates (including strict
// comparisons through RangeFromOp), at parallelism 1, 4, and 8. Run under
// -race this also proves the morsel-parallel word-ownership contract.

// diffColumn is one randomized column plus its oracle view.
type diffColumn struct {
	name   string
	typ    storage.Type
	fvals  []float64 // float64 image per row (numeric columns)
	svals  []string  // string columns
	lo, hi float64   // sensible predicate range for this column's data
}

// genColumns builds a table of every encoding-triggering shape at once.
func genColumns(rng *rand.Rand, n int, withNaN bool) ([]diffColumn, *storage.Table) {
	quant := make([]float64, n) // low-cardinality floats → dict
	dense := make([]float64, n) // high-cardinality floats → plain
	walk := make([]int64, n)    // narrow int range → for
	sparse := make([]int64, n)  // low-card ints over wide range → dict
	big := make([]int64, n)     // distinct values past ±2^52 → plain ints
	cat := make([]string, n)    // categories → string dict
	names := []string{"car", "bus", "bike", "walk", "tram", "rail"}
	v := int64(5000)
	for i := 0; i < n; i++ {
		quant[i] = float64(rng.Intn(500)-250) / 100
		dense[i] = rng.NormFloat64() * 10
		v += int64(rng.Intn(21) - 10)
		walk[i] = v
		sparse[i] = int64(rng.Intn(40)) * 1_000_000_007
		big[i] = (int64(1) << 53) + int64(i)*4096
		cat[i] = names[rng.Intn(len(names))]
	}
	if withNaN {
		for i := 0; i < n/50+1; i++ {
			dense[rng.Intn(n)] = math.NaN()
		}
	}
	cols := []diffColumn{
		{name: "quant", typ: storage.Float64, fvals: quant, lo: -2.5, hi: 2.5},
		{name: "dense", typ: storage.Float64, fvals: dense, lo: -30, hi: 30},
		{name: "walk", typ: storage.Int64, fvals: intImage(walk), lo: 3000, hi: 8000},
		{name: "sparse", typ: storage.Int64, fvals: intImage(sparse), lo: 0, hi: 40_000_000_000},
		{name: "big", typ: storage.Int64, fvals: intImage(big), lo: float64(int64(1) << 53), hi: float64(int64(1)<<53 + 1<<24)},
		{name: "cat", typ: storage.String, svals: cat},
	}
	tbl := rawTable("diff", map[string]interface{}{
		"quant": quant, "dense": dense, "walk": walk, "sparse": sparse, "big": big, "cat": cat,
	}, []string{"quant", "dense", "walk", "sparse", "big", "cat"})
	return cols, tbl
}

func intImage(vals []int64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(v)
	}
	return out
}

// assertBitmap compares a kernel-produced bitmap to a per-row oracle
// predicate over [0, n).
func assertBitmap(t *testing.T, what string, bm *Bitmap, n int, oracle func(i int) bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		if bm.Get(i) != oracle(i) {
			t.Fatalf("%s: row %d selected=%v, oracle=%v", what, i, bm.Get(i), oracle(i))
		}
	}
	// Bits past n in the final word must be zero (the kernel contract).
	if n%64 != 0 {
		last := bm.Words()[len(bm.Words())-1]
		if last>>(uint(n)&63) != 0 {
			t.Fatalf("%s: bits past row %d are set in the final word", what, n)
		}
	}
}

func TestDifferentialFilterRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{130, 50_000} {
		cols, tbl := genColumns(rng, n, true)
		frozen, err := Freeze(tbl, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, dc := range cols {
			if dc.typ == storage.String {
				continue
			}
			col, ok := Of(frozen.Column(dc.name))
			if !ok {
				t.Fatalf("column %q not encoded", dc.name)
			}
			for trial := 0; trial < 40; trial++ {
				op := []string{">=", "<=", ">", "<"}[rng.Intn(4)]
				x := dc.lo + rng.Float64()*(dc.hi-dc.lo)
				lo, hi := RangeFromOp(op, x)
				bm := NewBitmap(n)
				col.FilterRange(lo, hi, 0, n, bm, false)
				assertBitmap(t, dc.name+" "+op, bm, n, func(i int) bool {
					v := dc.fvals[i]
					switch op {
					case ">=":
						return v >= x
					case "<=":
						return v <= x
					case ">":
						return v > x
					default:
						return v < x
					}
				})
			}
			// Degenerate bounds: empty, everything, NaN.
			for _, b := range [][2]float64{{1, -1}, {math.Inf(-1), math.Inf(1)}, {math.NaN(), math.NaN()}} {
				bm := NewBitmap(n)
				bm.Set(0) // stale bit: and=false must overwrite it
				col.FilterRange(b[0], b[1], 0, n, bm, false)
				lo, hi := b[0], b[1]
				assertBitmap(t, dc.name+" degenerate", bm, n, func(i int) bool {
					v := dc.fvals[i]
					return v >= lo && v <= hi
				})
			}
		}
	}
}

func TestDifferentialSelectParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 50_000 // > 2 morsels, non-64-multiple tail
	cols, tbl := genColumns(rng, n, true)
	frozen, err := Freeze(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	numeric := cols[:5]
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(3)
		var preds []RangePred
		var oracle []func(i int) bool
		for j := 0; j < k; j++ {
			dc := numeric[rng.Intn(len(numeric))]
			col, _ := Of(frozen.Column(dc.name))
			op := []string{">=", "<=", ">", "<"}[rng.Intn(4)]
			x := dc.lo + rng.Float64()*(dc.hi-dc.lo)
			lo, hi := RangeFromOp(op, x)
			preds = append(preds, RangePred{Col: col, Lo: lo, Hi: hi})
			fv := dc.fvals
			oracle = append(oracle, func(i int) bool {
				v := fv[i]
				switch op {
				case ">=":
					return v >= x
				case "<=":
					return v <= x
				case ">":
					return v > x
				default:
					return v < x
				}
			})
		}
		want := func(i int) bool {
			for _, f := range oracle {
				if !f(i) {
					return false
				}
			}
			return true
		}
		ref := Select(n, preds, 1)
		assertBitmap(t, "select serial", ref, n, want)
		for _, p := range []int{4, 8} {
			got := Select(n, preds, p)
			for w := range ref.Words() {
				if got.Words()[w] != ref.Words()[w] {
					t.Fatalf("trial %d P=%d: word %d differs from serial", trial, p, w)
				}
			}
		}
	}
	// No predicates selects everything at every parallelism.
	for _, p := range []int{1, 4, 8} {
		all := Select(n, nil, p)
		if all.Count() != n {
			t.Fatalf("P=%d: empty conjunction selected %d of %d", p, all.Count(), n)
		}
	}
}

func TestDifferentialFilterEqualAndIn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20_000
	cols, tbl := genColumns(rng, n, false)
	frozen, err := Freeze(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range cols {
		col, ok := Of(frozen.Column(dc.name))
		if !ok {
			t.Fatalf("column %q not encoded", dc.name)
		}
		for trial := 0; trial < 20; trial++ {
			if dc.typ == storage.String {
				row := rng.Intn(n)
				needle := dc.svals[row]
				bm := NewBitmap(n)
				col.FilterEqual(storage.NewString(needle), 0, n, bm, false)
				assertBitmap(t, dc.name+" eq", bm, n, func(i int) bool { return dc.svals[i] == needle })
				set := []storage.Value{storage.NewString(needle), storage.NewString("no-such"), storage.NewString(dc.svals[rng.Intn(n)])}
				bm2 := NewBitmap(n)
				col.FilterIn(set, 0, n, bm2, false)
				assertBitmap(t, dc.name+" in", bm2, n, func(i int) bool {
					for _, v := range set {
						if dc.svals[i] == v.S {
							return true
						}
					}
					return false
				})
				continue
			}
			// Mix present values with absent ones.
			x := dc.fvals[rng.Intn(n)]
			if trial%3 == 0 {
				x += 0.5
			}
			bm := NewBitmap(n)
			col.FilterEqual(storage.NewFloat(x), 0, n, bm, false)
			assertBitmap(t, dc.name+" eq", bm, n, func(i int) bool { return dc.fvals[i] == x })

			set := []storage.Value{
				storage.NewFloat(dc.fvals[rng.Intn(n)]),
				storage.NewFloat(dc.fvals[rng.Intn(n)] + 0.25),
				storage.NewFloat(dc.fvals[rng.Intn(n)]),
			}
			bm2 := NewBitmap(n)
			col.FilterIn(set, 0, n, bm2, false)
			assertBitmap(t, dc.name+" in", bm2, n, func(i int) bool {
				for _, v := range set {
					if dc.fvals[i] == v.F {
						return true
					}
				}
				return false
			})
		}
	}
}

func TestDifferentialAndIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 10_000
	cols, tbl := genColumns(rng, n, true)
	frozen, err := Freeze(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Of(frozen.Column(cols[0].name))
	b, _ := Of(frozen.Column(cols[2].name))
	for trial := 0; trial < 30; trial++ {
		aLo := cols[0].lo + rng.Float64()*(cols[0].hi-cols[0].lo)
		bHi := cols[2].lo + rng.Float64()*(cols[2].hi-cols[2].lo)
		bm := NewBitmap(n)
		a.FilterRange(aLo, math.Inf(1), 0, n, bm, false)
		b.FilterRange(math.Inf(-1), bHi, 0, n, bm, true)
		assertBitmap(t, "and-chain", bm, n, func(i int) bool {
			return cols[0].fvals[i] >= aLo && cols[2].fvals[i] <= bHi
		})
		// A select-nothing AND zeroes everything previously selected.
		bm2 := NewBitmap(n)
		a.FilterRange(math.Inf(-1), math.Inf(1), 0, n, bm2, false)
		b.FilterRange(math.NaN(), math.NaN(), 0, n, bm2, true)
		if bm2.Count() != 0 {
			t.Fatalf("NaN AND left %d rows selected", bm2.Count())
		}
	}
}
