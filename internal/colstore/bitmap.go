package colstore

import "math/bits"

// Bitmap is a selection bitmap over row IDs: bit i set means row i passes
// the predicate. Storage is 64-bit words, the unit the filter kernels
// produce — a kernel builds each word in a register and stores it with one
// write, so conjunctions AND whole words and counting is a popcount walk.
//
// Concurrency contract: kernels write disjoint word ranges. Morsel
// boundaries (internal/morsel, 16384 rows) are multiples of 64, so
// morsel-parallel kernels over disjoint row ranges touch disjoint words
// with no synchronization. Bits at positions >= Len() in the final word
// are always zero.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap allocates a zeroed bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words for kernel writes and manual iteration.
// Word w covers rows [64w, 64w+64).
func (b *Bitmap) Words() []uint64 { return b.words }

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]>>(uint(i)&63)&1 != 0
}

// Set selects row i (not for use concurrently with kernels).
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Count returns the number of selected rows.
func (b *Bitmap) Count() int { return b.CountRange(0, b.n) }

// CountRange returns the number of selected rows in [r0, r1).
func (b *Bitmap) CountRange(r0, r1 int) int {
	if r1 > b.n {
		r1 = b.n
	}
	if r0 >= r1 {
		return 0
	}
	w0, w1 := r0>>6, (r1-1)>>6
	first := ^uint64(0) << (uint(r0) & 63)
	last := ^uint64(0) >> (63 - (uint(r1-1) & 63))
	if w0 == w1 {
		return bits.OnesCount64(b.words[w0] & first & last)
	}
	n := bits.OnesCount64(b.words[w0] & first)
	for w := w0 + 1; w < w1; w++ {
		n += bits.OnesCount64(b.words[w])
	}
	return n + bits.OnesCount64(b.words[w1]&last)
}

// ForEachSet calls fn for every selected row in [r0, r1), ascending.
// r0 must be a multiple of 64 (the kernel alignment contract).
func (b *Bitmap) ForEachSet(r0, r1 int, fn func(i int)) {
	if r1 > b.n {
		r1 = b.n
	}
	for w := r0 >> 6; w<<6 < r1; w++ {
		x := b.words[w]
		base := w << 6
		for x != 0 {
			i := base + bits.TrailingZeros64(x)
			if i >= r1 {
				break
			}
			fn(i)
			x &= x - 1
		}
	}
}

// ZeroRange clears rows [r0, r1). r0 must be a multiple of 64; the partial
// final word is cleared entirely (bits past r1 are zero by the kernel
// contract, so nothing meaningful is lost).
func (b *Bitmap) ZeroRange(r0, r1 int) {
	if r1 > b.n {
		r1 = b.n
	}
	for w := r0 >> 6; w<<6 < r1; w++ {
		b.words[w] = 0
	}
}
