package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/behavior"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/opt"
)

// LoadConfig drives N concurrent synthetic users against a serving
// endpoint over real HTTP. Each user is a behavior.SimulateSliderUser
// brushing trace whose virtual-clock think times are mapped to wall clock
// by TimeScale, reproducing the paper's workload-first discipline: the
// offered load comes from interaction models, not an open-loop generator.
type LoadConfig struct {
	BaseURL string
	Client  *http.Client

	Users       int
	Adjustments int // slider adjustments per user's session
	MaxEvents   int // cap on brush events per user (0 = uncapped)
	Seed        int64
	TimeScale   float64 // virtual think time → wall clock multiplier (1 = real time)

	// Dims are the brushable dimensions (the cube's, in order).
	Dims []opt.CrossfilterDim
	// SQLEvery issues a SQL histogram query alongside every Nth brush
	// (0 = brush-only). Table names the SQL table.
	SQLEvery int
	Table    string

	// MaxRetries re-issues a request answered 429 or 503 up to this many
	// times with capped jittered backoff, honoring the server's Retry-After
	// hint (scaled by TimeScale like think times). 0 means the default of
	// 3; negative disables retries.
	MaxRetries int
	RetryBase  time.Duration // first backoff step (0 = 4ms)
	RetryCap   time.Duration // backoff and hint ceiling (0 = 200ms)
}

// UserResult is one synthetic user's outcome.
type UserResult struct {
	Session    string
	Issued     int
	Responded  int // every issued request got an HTTP response
	OK         int
	Shed       int
	Errors     int
	Retries    int // re-issues after 429/503 responses
	Giveups    int // requests still 429/503 after exhausting retries
	MaxSeq     int64
	FinalSeq   int64 // highest applied_seq observed
	GotLatest  bool  // the session's latest state was executed
	Latencies  []time.Duration
	IssueTimes []time.Duration // wall offsets, for client-side QIF
}

// LoadReport aggregates a run: client-side counts and percentiles plus the
// server's own /metrics snapshot, which is where executed, coalesced,
// shed, and LCV live.
type LoadReport struct {
	Users     []UserResult
	Issued    int
	Responded int
	OK        int
	Shed      int
	Errors    int
	Retries   int
	Giveups   int
	QIFPerSec float64
	P50MS     float64
	P95MS     float64
	P99MS     float64
	Wall      time.Duration
	Server    Stats
}

// RunLoad executes the configured load and gathers the report. Every
// request receives exactly one response; shed (429) brushes carrying a
// user's final state are retried with backoff so each session's latest
// result is eventually served, the way a real frontend re-issues its
// settle query.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Users <= 0 || cfg.BaseURL == "" || len(cfg.Dims) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs BaseURL, Users, Dims")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Adjustments <= 0 {
		cfg.Adjustments = 4
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 3
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 4 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 200 * time.Millisecond
	}

	report := &LoadReport{Users: make([]UserResult, cfg.Users)}
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			report.Users[u] = runUser(cfg, u, start)
		}(u)
	}
	wg.Wait()
	report.Wall = time.Since(start)

	var lats []float64
	var issues []time.Duration
	for _, ur := range report.Users {
		report.Issued += ur.Issued
		report.Responded += ur.Responded
		report.OK += ur.OK
		report.Shed += ur.Shed
		report.Errors += ur.Errors
		report.Retries += ur.Retries
		report.Giveups += ur.Giveups
		lats = append(lats, metrics.Durations(ur.Latencies)...)
		issues = append(issues, ur.IssueTimes...)
	}
	if len(lats) > 0 {
		report.P50MS = metrics.Percentile(lats, 50)
		report.P95MS = metrics.Percentile(lats, 95)
		report.P99MS = metrics.Percentile(lats, 99)
	}
	sort.Slice(issues, func(i, j int) bool { return issues[i] < issues[j] })
	report.QIFPerSec = metrics.MeasureQIF(issues).PerSecond

	stats, err := FetchStats(cfg.Client, cfg.BaseURL)
	if err != nil {
		return report, fmt.Errorf("serve: loadgen: fetch /metrics: %w", err)
	}
	report.Server = *stats
	return report, nil
}

// runUser replays one synthetic user's brushing trace over wall clock.
// Requests are issued asynchronously — the slider keeps moving whether or
// not the previous result arrived, which is exactly what makes server-side
// coalescing matter.
func runUser(cfg LoadConfig, u int, start time.Time) UserResult {
	res := UserResult{Session: fmt.Sprintf("user-%d", u), FinalSeq: -1}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(u)*7919))

	domains := make([][2]float64, len(cfg.Dims))
	ranges := make([]*[2]float64, len(cfg.Dims))
	for i, d := range cfg.Dims {
		domains[i] = [2]float64{d.Lo, d.Hi}
	}
	sess := behavior.SimulateSliderUser(rng, device.Mouse, domains, cfg.Adjustments)
	events := sess.Events
	if cfg.MaxEvents > 0 && len(events) > cfg.MaxEvents {
		events = events[:cfg.MaxEvents]
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(status int, appliedSeq int64, latency time.Duration, retries int) {
		mu.Lock()
		defer mu.Unlock()
		res.Responded++
		res.Retries += retries
		switch {
		case status == http.StatusOK:
			res.OK++
			res.Latencies = append(res.Latencies, latency)
			if appliedSeq > res.FinalSeq {
				res.FinalSeq = appliedSeq
			}
		case status == http.StatusTooManyRequests:
			res.Shed++
			if cfg.MaxRetries > 0 {
				res.Giveups++
			}
		default:
			res.Errors++
			if status == http.StatusServiceUnavailable && cfg.MaxRetries > 0 {
				res.Giveups++
			}
		}
	}

	var prev time.Duration
	for i, ev := range events {
		gap := time.Duration(float64(ev.At-prev) * cfg.TimeScale)
		prev = ev.At
		if gap > 0 {
			time.Sleep(gap)
		}
		if ev.SliderIdx >= 0 && ev.SliderIdx < len(ranges) {
			ranges[ev.SliderIdx] = &[2]float64{ev.MinVal, ev.MaxVal}
		}
		seq := int64(i)
		req := BrushRequest{Session: res.Session, Seq: seq, Moved: ev.SliderIdx}
		req.Ranges = snapshotRanges(ranges)
		mu.Lock()
		res.Issued++
		res.MaxSeq = seq
		res.IssueTimes = append(res.IssueTimes, time.Since(start))
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			status, appliedSeq, retries := postBrush(cfg, req)
			record(status, appliedSeq, time.Since(t0), retries)
		}()

		if cfg.SQLEvery > 0 && i%cfg.SQLEvery == 0 && cfg.Table != "" {
			sqlSeq := seq
			stmtRanges := make([][2]float64, len(cfg.Dims))
			for d := range cfg.Dims {
				stmtRanges[d] = domains[d]
				if ranges[d] != nil {
					stmtRanges[d] = *ranges[d]
				}
			}
			mu.Lock()
			res.Issued++
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				status, retries := postSQL(cfg, res.Session, sqlSeq, stmtRanges)
				record(status, -1, time.Since(t0), retries)
			}()
		}
	}
	wg.Wait()

	// Settle: if the user's final state was shed at admission, re-issue it
	// until served — the frontend's "last brush wins" retry.
	for attempt := 0; res.FinalSeq < res.MaxSeq && attempt < 50; attempt++ {
		time.Sleep(5 * time.Millisecond)
		seq := res.MaxSeq + 1 + int64(attempt)
		req := BrushRequest{Session: res.Session, Seq: seq, Moved: 0, Ranges: snapshotRanges(ranges)}
		mu.Lock()
		res.Issued++
		res.MaxSeq = seq
		mu.Unlock()
		t0 := time.Now()
		status, appliedSeq, retries := postBrush(cfg, req)
		record(status, appliedSeq, time.Since(t0), retries)
	}
	res.GotLatest = res.FinalSeq >= res.MaxSeq
	return res
}

func snapshotRanges(ranges []*[2]float64) []*[2]float64 {
	out := make([]*[2]float64, len(ranges))
	for i, r := range ranges {
		if r != nil {
			c := *r
			out[i] = &c
		}
	}
	return out
}

// postRetry issues do() and, on 429/503, re-issues it up to cfg.MaxRetries
// times with capped jittered exponential backoff, honoring the server's
// Retry-After hint scaled into the loadgen's compressed clock. It returns
// the final response (body open; nil on transport error) and the number of
// retries consumed.
func postRetry(cfg LoadConfig, do func() (*http.Response, error)) (*http.Response, int) {
	retries := 0
	for attempt := 0; ; attempt++ {
		resp, err := do()
		if err != nil {
			return nil, retries
		}
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= cfg.MaxRetries {
			return resp, retries
		}
		hint := retryAfterHint(resp, cfg.TimeScale)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		retries++
		time.Sleep(retryWait(cfg, attempt, hint))
	}
}

// retryAfterHint parses a Retry-After header and scales it by TimeScale —
// the synthetic clock compresses think time, so it compresses server
// pushback the same way. Both RFC 9110 forms are accepted: delay-seconds
// and HTTP-date (the span from now to the date).
func retryAfterHint(resp *http.Response, scale float64) time.Duration {
	return retryAfterHintAt(resp.Header.Get("Retry-After"), time.Now(), scale)
}

// retryAfterHintAt is retryAfterHint against an explicit clock, so the
// HTTP-date arithmetic is testable without racing wall time. Malformed,
// empty, or already-elapsed values hint nothing.
func retryAfterHintAt(header string, now time.Time, scale float64) time.Duration {
	header = strings.TrimSpace(header)
	if header == "" {
		return 0
	}
	if secs, err := strconv.Atoi(header); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(float64(secs) * float64(time.Second) * scale)
	}
	// http.ParseTime tries the three date layouts RFC 9110 admits
	// (IMF-fixdate, RFC 850, ANSI C asctime).
	if at, err := http.ParseTime(header); err == nil {
		if d := at.Sub(now); d > 0 {
			return time.Duration(float64(d) * scale)
		}
	}
	return 0
}

// retryWait computes the backoff for one retry: jittered exponential from
// RetryBase, floored at the server's scaled Retry-After hint, ceilinged at
// RetryCap.
func retryWait(cfg LoadConfig, attempt int, hint time.Duration) time.Duration {
	backoff := cfg.RetryBase << uint(attempt)
	if backoff > cfg.RetryCap {
		backoff = cfg.RetryCap
	}
	wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
	if wait < hint {
		wait = hint
	}
	if wait > cfg.RetryCap {
		wait = cfg.RetryCap
	}
	return wait
}

// postBrush issues one brush (with retries) and returns the HTTP status,
// applied sequence (-1 when unavailable), and retry count. Transport errors
// read as status 0.
func postBrush(cfg LoadConfig, req BrushRequest) (int, int64, int) {
	body, _ := json.Marshal(req)
	resp, retries := postRetry(cfg, func() (*http.Response, error) {
		return cfg.Client.Post(cfg.BaseURL+"/v1/brush", "application/json", bytes.NewReader(body))
	})
	if resp == nil {
		return 0, -1, retries
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, -1, retries
	}
	var br BrushResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return 0, -1, retries
	}
	return resp.StatusCode, br.AppliedSeq, retries
}

// postSQL issues the paper's filtered-histogram SQL query for the first
// dimension under the current ranges, with the same retry policy.
func postSQL(cfg LoadConfig, session string, seq int64, ranges [][2]float64) (int, int) {
	stmt, err := opt.HistogramQuery(cfg.Table, cfg.Dims, ranges, 0, 20)
	if err != nil {
		return 0, 0
	}
	body, _ := json.Marshal(QueryRequest{Session: session, Seq: seq, SQL: stmt.String()})
	resp, retries := postRetry(cfg, func() (*http.Response, error) {
		return cfg.Client.Post(cfg.BaseURL+"/v1/query", "application/json", bytes.NewReader(body))
	})
	if resp == nil {
		return 0, retries
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, retries
}

// FetchStats pulls the server's /metrics snapshot.
func FetchStats(client *http.Client, baseURL string) (*Stats, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
