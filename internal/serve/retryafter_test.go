package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterHint covers both RFC 9110 Retry-After forms — delay-seconds
// and HTTP-date — against a fixed clock, plus the malformed and elapsed
// cases that must hint nothing. The router's 503s carry Retry-After, so the
// load generator has to be spec-clean about what it honors.
func TestRetryAfterHint(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		scale  float64
		want   time.Duration
	}{
		{name: "seconds", header: "2", scale: 1, want: 2 * time.Second},
		{name: "seconds scaled", header: "10", scale: 0.1, want: time.Second},
		{name: "seconds padded", header: "  3 ", scale: 1, want: 3 * time.Second},
		{name: "zero seconds", header: "0", scale: 1, want: 0},
		{name: "negative seconds", header: "-5", scale: 1, want: 0},
		{name: "imf fixdate", header: now.Add(90 * time.Second).Format(http.TimeFormat), scale: 1, want: 90 * time.Second},
		{name: "imf fixdate scaled", header: now.Add(100 * time.Second).Format(http.TimeFormat), scale: 0.25, want: 25 * time.Second},
		{name: "rfc850 date", header: now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 MST"), scale: 1, want: 30 * time.Second},
		{name: "asctime date", header: now.Add(45 * time.Second).Format(time.ANSIC), scale: 1, want: 45 * time.Second},
		{name: "date in the past", header: now.Add(-time.Minute).Format(http.TimeFormat), scale: 1, want: 0},
		{name: "date equal to now", header: now.Format(http.TimeFormat), scale: 1, want: 0},
		{name: "empty", header: "", scale: 1, want: 0},
		{name: "garbage", header: "soon", scale: 1, want: 0},
		{name: "float seconds rejected", header: "1.5", scale: 1, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterHintAt(tc.header, now, tc.scale); got != tc.want {
				t.Fatalf("retryAfterHintAt(%q, scale %g) = %v, want %v", tc.header, tc.scale, got, tc.want)
			}
		})
	}
}
