package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/fault"
	"repro/internal/leakcheck"
)

// newChaosServer is newTestServer with a fault injector and robustness
// config under test control.
func newChaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, cfg)
}

// brushRanges builds a 3-dim ranges snapshot brushing only dimension 0.
func brushRanges(lo, hi float64) []*[2]float64 {
	return []*[2]float64{{lo, hi}, nil, nil}
}

// decodeBrush decodes a brush response body.
func decodeBrush(t *testing.T, body []byte) BrushResponse {
	t.Helper()
	var br BrushResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("brush response %s: %v", body, err)
	}
	return br
}

// TestBrushExactWhenBudgetAmple: with deadlines on, no faults, and a
// generous budget, every brush answers from the exact tier and nothing is
// marked degraded.
func TestBrushExactWhenBudgetAmple(t *testing.T) {
	srv, ts := newChaosServer(t, Config{
		Workers:   2,
		Deadlines: true,
		// Default DegradeAfter (constraint/2 = 250ms) dwarfs a 20k-row scan.
	})
	for seq := int64(0); seq < 3; seq++ {
		resp, body := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
			Session: "ample", Seq: seq, Ranges: brushRanges(8.2+float64(seq)*0.01, 10.5),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seq %d: status %d, body %s", seq, resp.StatusCode, body)
		}
		br := decodeBrush(t, body)
		if br.Tier != "exact" || br.Degraded {
			t.Fatalf("seq %d: tier %q degraded=%v, want exact/false", seq, br.Tier, br.Degraded)
		}
	}
	if st := srv.Stats(); st.Degraded != 0 || st.Deadlines != 0 {
		t.Fatalf("degraded=%d deadlines=%d, want 0/0", st.Degraded, st.Deadlines)
	}
}

// TestBrushDegradesUnderStall: an always-stalling backend blows the budget
// on every brush; the ladder answers with a partial sample marked degraded
// — bounded work inside the deadline instead of a 300ms stall served in
// full — and still carries the applied sequence.
func TestBrushDegradesUnderStall(t *testing.T) {
	stallAll := fault.New(fault.Profile{Name: "stall-all", StallProb: 1, StallDelay: 300 * time.Millisecond}, 11)
	srv, ts := newChaosServer(t, Config{
		Workers:          2,
		Deadlines:        true,
		DegradeAfter:     15 * time.Millisecond,
		Fault:            stallAll,
		BreakerThreshold: -1,
	})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
		Session: "stalled", Seq: 0, Ranges: brushRanges(8.2, 10.5),
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	br := decodeBrush(t, body)
	if br.Tier != "partial" || !br.Degraded {
		t.Fatalf("tier %q degraded=%v, want partial/true", br.Tier, br.Degraded)
	}
	if br.SampleFraction <= 0 || br.SampleFraction > 1 {
		t.Fatalf("sample fraction = %v", br.SampleFraction)
	}
	if br.AppliedSeq != 0 {
		t.Fatalf("applied seq = %d, want 0", br.AppliedSeq)
	}
	if br.Total <= 0 {
		t.Fatalf("degraded total = %d, want > 0", br.Total)
	}
	// The stall was cut at the deadline, not served in full.
	if elapsed > 200*time.Millisecond {
		t.Fatalf("degraded brush took %v: stall not cut by deadline", elapsed)
	}
	st := srv.Stats()
	if st.Degraded == 0 || st.Deadlines == 0 {
		t.Fatalf("degraded=%d deadlines=%d, want both > 0", st.Degraded, st.Deadlines)
	}
}

// TestBrushCacheTier: with the budget already blown, a brush whose exact
// ranges were answered before is served from the result cache — exact data,
// not marked degraded.
func TestBrushCacheTier(t *testing.T) {
	leakcheck.Check(t)
	stallAll := fault.New(fault.Profile{Name: "stall-all", StallProb: 1, StallDelay: 300 * time.Millisecond}, 12)
	backends, err := RoadBackends(1, testRows, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(backends, Config{
		Workers:          1,
		Deadlines:        true,
		DegradeAfter:     10 * time.Millisecond,
		Fault:            stallAll,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainForTest(t, srv)

	req := BrushRequest{Session: "cached", Seq: 7, Ranges: brushRanges(8.2, 10.5)}
	srv.cacheBrush(req, &BrushResponse{AppliedSeq: 3, Total: 42, Tier: "exact"})

	// earliest far in the past: the exact tier's budget is already blown.
	resp, err := srv.execBrushLadder(req, time.Now().Add(-time.Second), func(obsv.Stage) {})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tier != "cache" || resp.Degraded {
		t.Fatalf("tier %q degraded=%v, want cache/false", resp.Tier, resp.Degraded)
	}
	if resp.AppliedSeq != 7 {
		t.Fatalf("applied seq = %d, want the request's own 7", resp.AppliedSeq)
	}
	if resp.Total != 42 {
		t.Fatalf("total = %d, want the cached 42", resp.Total)
	}
	if st := srv.Stats(); st.BrushCacheHits != 1 {
		t.Fatalf("brush cache hits = %d, want 1", st.BrushCacheHits)
	}
}

// TestQueryDegradesUnderStall: a histogram-shaped SQL query under an
// always-stalling backend comes back 200 with a scaled sample estimate
// instead of 503.
func TestQueryDegradesUnderStall(t *testing.T) {
	stallAll := fault.New(fault.Profile{Name: "stall-all", StallProb: 1, StallDelay: 300 * time.Millisecond}, 13)
	_, ts := newChaosServer(t, Config{
		Workers:          2,
		Deadlines:        true,
		DegradeAfter:     15 * time.Millisecond,
		Fault:            stallAll,
		BreakerThreshold: -1,
	})
	resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Session: "sql", Seq: 0,
		SQL: "SELECT ROUND((y - 56) / 0.05), COUNT(*) FROM dataroad WHERE x >= 8.2 AND x <= 10.5 GROUP BY ROUND((y - 56) / 0.05) ORDER BY ROUND((y - 56) / 0.05)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Degraded || qr.SampleFraction <= 0 {
		t.Fatalf("degraded=%v fraction=%v, want degraded sample", qr.Degraded, qr.SampleFraction)
	}
	if len(qr.Rows) == 0 {
		t.Fatal("degraded query returned no rows")
	}

	// A non-histogram query has no degraded tier: 503 with a retry hint.
	resp, _ = postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Session: "sql", Seq: 1, SQL: "SELECT x, y FROM dataroad ORDER BY x, y LIMIT 5",
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("non-degradable query status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestBreakerOpensAndReadyzReports: consecutive injected errors trip the
// circuit breaker; further requests are rejected 503 + Retry-After at
// admission, /readyz reports not-ready while /healthz stays alive, and the
// half-open probe closes the breaker once the fault clears.
func TestBreakerOpensAndReadyzReports(t *testing.T) {
	errAll := fault.New(fault.Profile{Name: "err-all", ErrProb: 1}, 14)
	srv, ts := newChaosServer(t, Config{
		Workers:          2,
		Fault:            errAll,
		MaxRetries:       -1, // no retries: each request is one failure
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	sql := "SELECT x, y FROM dataroad ORDER BY x, y LIMIT 5" // no degraded tier
	for seq := int64(0); seq < 2; seq++ {
		resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Session: "trip", Seq: seq, SQL: sql})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("seq %d: status %d, want 503", seq, resp.StatusCode)
		}
	}

	// Breaker open: rejected at admission with a retry hint.
	resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Session: "trip", Seq: 2, SQL: sql})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s, want 503 from open breaker", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker rejection without Retry-After")
	}
	st := srv.Stats()
	if st.BreakerTrips != 1 || st.BreakerRejects == 0 {
		t.Fatalf("trips=%d rejects=%d, want 1/>0", st.BreakerTrips, st.BreakerRejects)
	}

	// Liveness vs readiness split.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 while breaker open", hz.StatusCode)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rzBody struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(rz.Body).Decode(&rzBody); err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable || rzBody.Status != "breaker_open" {
		t.Fatalf("readyz = %d %q, want 503 breaker_open", rz.StatusCode, rzBody.Status)
	}

	// Fault clears; after the cooldown the half-open probe closes the
	// breaker and service resumes.
	errAll.SetProfile(fault.Profile{Name: "clean"})
	time.Sleep(120 * time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/v1/query", QueryRequest{Session: "trip", Seq: 3, SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d, body %s", resp.StatusCode, body)
	}
	rz2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz2.Body.Close()
	if rz2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery readyz = %d, want 200", rz2.StatusCode)
	}
}

// TestDrainFlushesPendingBrush: a brush parked behind an in-progress
// execution when Drain starts is flushed — answered 200 with its own seq —
// not dropped with a 503.
func TestDrainFlushesPendingBrush(t *testing.T) {
	srv, ts := newChaosServer(t, Config{Workers: 1, ExecDelay: 80 * time.Millisecond})

	type result struct {
		status int
		br     BrushResponse
	}
	post := func(seq int64) chan result {
		ch := make(chan result, 1)
		go func() {
			resp, body := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
				Session: "flush", Seq: seq, Ranges: brushRanges(8.2+float64(seq)*0.05, 10.5),
			})
			r := result{status: resp.StatusCode}
			if resp.StatusCode == http.StatusOK {
				r.br = decodeBrush(t, body)
			}
			ch <- r
		}()
		return ch
	}

	first := post(0)
	time.Sleep(25 * time.Millisecond) // reaches the worker: session running
	second := post(1)                 // parks behind it, no fresh admission
	time.Sleep(10 * time.Millisecond)

	drainForTest(t, srv)

	r0, r1 := <-first, <-second
	if r0.status != http.StatusOK {
		t.Fatalf("in-flight brush status = %d, want 200", r0.status)
	}
	if r1.status != http.StatusOK {
		t.Fatalf("parked brush status = %d, want 200 (flushed, not dropped)", r1.status)
	}
	if r1.br.AppliedSeq != 1 {
		t.Fatalf("parked brush applied seq = %d, want 1", r1.br.AppliedSeq)
	}
}

// TestChaosLCVBound is the robustness acceptance test: under the stall
// fault profile, a fixed-cadence brushing workload must hold LCV at or
// under 5% with deadline-aware degradation, while the same workload and
// fault seed without deadlines blows past 20% — the paper's argument that
// a bounded-latency degraded answer beats an unbounded exact one.
func TestChaosLCVBound(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos LCV integration in -short mode")
	}
	stall, ok := fault.ProfileByName("stall")
	if !ok {
		t.Fatal("no stall profile")
	}

	run := func(deadlines bool) Stats {
		srv, ts := newChaosServer(t, Config{
			Workers:          4,
			Deadlines:        deadlines,
			DegradeAfter:     15 * time.Millisecond,
			Fault:            fault.New(stall, 99),
			BreakerThreshold: -1, // isolate the deadline effect
		})
		const sessions, events = 4, 30
		const gap = 40 * time.Millisecond
		var wg sync.WaitGroup
		for u := 0; u < sessions; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				session := "lcv-" + string(rune('a'+u))
				var rwg sync.WaitGroup
				for i := 0; i < events; i++ {
					req := BrushRequest{
						Session: session, Seq: int64(i),
						Ranges: brushRanges(8.2+float64(i)*0.01+float64(u)*0.002, 10.5),
					}
					rwg.Add(1)
					go func() {
						defer rwg.Done()
						resp, _ := postJSON(t, ts.URL+"/v1/brush", req)
						_ = resp
					}()
					time.Sleep(gap)
				}
				rwg.Wait()
			}(u)
		}
		wg.Wait()
		return srv.Stats()
	}

	withDeadlines := run(true)
	baseline := run(false)

	t.Logf("deadlines on:  lcv=%d/%d (%.1f%%) degraded=%d deadline_exceeded=%d p99=%.1fms",
		withDeadlines.LCV, withDeadlines.Issued, 100*withDeadlines.LCVPercent,
		withDeadlines.Degraded, withDeadlines.Deadlines, withDeadlines.P99MS)
	t.Logf("deadlines off: lcv=%d/%d (%.1f%%) p99=%.1fms",
		baseline.LCV, baseline.Issued, 100*baseline.LCVPercent, baseline.P99MS)

	if withDeadlines.LCVPercent > 0.05 {
		t.Errorf("deadline-aware LCV = %.1f%%, want <= 5%%", 100*withDeadlines.LCVPercent)
	}
	if baseline.LCVPercent < 0.20 {
		t.Errorf("baseline LCV = %.1f%%, want > 20%% (stall profile should collapse it)",
			100*baseline.LCVPercent)
	}
	if withDeadlines.Degraded == 0 {
		t.Error("deadline run never degraded: the ladder was not exercised")
	}
}

// drainForTest drains a server the test built directly (no httptest wrapper).
func drainForTest(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStallAttribution: with the chaos "stall" profile served in full
// (deadlines off — the baseline that eats the whole 900ms), a session
// pacing ahead of its stalled requests racks up LCV violations, and the
// tracer must attribute them to the execute stage: the stall happens
// inside the backend, and lcv_by_stage is what says so. This is the
// attribution acceptance check — before stage tracing, all an operator saw
// was the violation count.
func TestChaosStallAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration in -short mode")
	}
	stallProfile := fault.Profiles[2]
	if stallProfile.Name != "stall" {
		t.Fatalf("fault.Profiles[2] = %q, want the stall profile", stallProfile.Name)
	}
	srv, ts := newChaosServer(t, Config{
		// Enough workers that stalled requests occupy workers, not the
		// queue: the violation's time must land in execute, and the test
		// must not manufacture queue-dominant violations of its own.
		Workers:          16,
		QueueDepth:       64,
		Fault:            fault.New(stallProfile, 99),
		BreakerThreshold: -1,
	})
	// One session issues 40 queries 10ms apart: a stalled query (900ms) is
	// still in flight across many subsequent issues, so it is counted as a
	// violation; an unstalled one (~1ms) finishes before the next issue.
	const n = 40
	var wg sync.WaitGroup
	var transportErrs atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seq int64) {
			defer wg.Done()
			body, _ := json.Marshal(QueryRequest{
				Session: "staller", Seq: seq,
				SQL: "SELECT COUNT(*) FROM dataroad WHERE x >= 9",
			})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				transportErrs.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(int64(i))
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	if transportErrs.Load() != 0 {
		t.Fatalf("%d transport errors", transportErrs.Load())
	}

	st := srv.Stats()
	if st.LCV == 0 {
		t.Fatal("stall run produced no LCV violations; pacing vs stall delay broke")
	}
	exec, ok := st.LCVByStage["execute"]
	if !ok || exec == 0 {
		t.Fatalf("lcv_by_stage lacks execute: %v", st.LCVByStage)
	}
	for stage, count := range st.LCVByStage {
		if stage != "execute" && count > exec {
			t.Errorf("lcv_by_stage[%s] = %d > execute's %d: stall not attributed to the backend",
				stage, count, exec)
		}
	}
	if es := st.Stages["execute"]; es.MaxMS < 500 {
		t.Errorf("execute stage max %.1fms, want >= 500ms (the stall must appear in the stage histogram)", es.MaxMS)
	}
	t.Logf("lcv=%d lcv_by_stage=%v execute p99=%.1fms", st.LCV, st.LCVByStage, st.Stages["execute"].P99MS)
}
