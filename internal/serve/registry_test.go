package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fillRegistry loads n latency samples spread over [0, 400) ms.
func fillRegistry(r *Registry, n int) {
	for i := 0; i < n; i++ {
		r.recordLatency(time.Duration(i%400) * time.Millisecond)
	}
}

// TestSnapshotDoesNotStallRecorders is the sort-under-lock regression
// test: while snapshot runs against a heavily-loaded registry, a
// request-path recorder must never wait on r.mu for anything like the
// cost of sorting a reservoir. Before the fix, snapshot held the mutex
// through four copy+sorts of up to 2^18 samples (tens of milliseconds);
// with the histogram registry, recording is lock-free and the mutex
// covers only an O(1) QIF read, so the worst recorder stall is
// scheduling noise.
func TestSnapshotDoesNotStallRecorders(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive lock-hold test in -short mode")
	}
	r := NewRegistry(0)
	fillRegistry(r, 1<<18)

	var stop atomic.Bool
	var worst atomic.Int64 // ns
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			t0 := time.Now()
			r.recordLatency(5 * time.Millisecond)
			if d := int64(time.Since(t0)); d > worst.Load() {
				worst.Store(d)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		_ = r.snapshot(0, 0)
	}
	stop.Store(true)
	wg.Wait()

	// Sorting 2^18 floats costs ~15-30ms; four sorts under the lock made
	// recorder stalls of ~100ms routine. 10ms is far above any copy-out
	// or scheduling noise and far below the old sort-under-lock cost.
	if w := time.Duration(worst.Load()); w > 10*time.Millisecond {
		t.Errorf("recorder stalled %v behind a scrape, want < 10ms (sort must not run under r.mu)", w)
	} else {
		t.Logf("worst recorder stall behind 50 scrapes: %v", w)
	}
}

// TestQIFWindowed: the issuing rate must describe the recent window, not
// the lifetime span. A burst long past followed by a fresh burst reports
// the recent rate once the ring has rotated the idle gap out.
func TestQIFWindowed(t *testing.T) {
	r := NewRegistry(0)
	base := time.Unix(1000, 0)
	// Old burst: qifWindow issues at 1/ms, then an hour of silence, then a
	// fresh full window at 1/ms. A lifetime QIF would be ~2·qifWindow over
	// an hour (~2.3/s); the windowed QIF must report ~1000/s.
	for i := 0; i < qifWindow; i++ {
		r.recordIssue(base.Add(time.Duration(i) * time.Millisecond))
	}
	late := base.Add(time.Hour)
	for i := 0; i < qifWindow; i++ {
		r.recordIssue(late.Add(time.Duration(i) * time.Millisecond))
	}
	s := r.snapshot(0, 0)
	if s.QIFPerSec < 900 || s.QIFPerSec > 1100 {
		t.Errorf("windowed QIF = %.1f/s, want ~1000/s (lifetime span must not dilute it)", s.QIFPerSec)
	}
	if s.QIFWindow != qifWindow {
		t.Errorf("QIFWindow = %d, want %d", s.QIFWindow, qifWindow)
	}
	if s.Issued != 2*qifWindow {
		t.Errorf("Issued = %d, want %d", s.Issued, 2*qifWindow)
	}
}

// TestLatencySampleAccounting: operators can tell when the latency window
// rotated because samples and dropped are exposed.
func TestLatencySampleAccounting(t *testing.T) {
	r := NewRegistry(0)
	fillRegistry(r, 1000)
	s := r.snapshot(0, 0)
	if s.LatencySamples != 1000 {
		t.Errorf("LatencySamples = %d, want 1000", s.LatencySamples)
	}
	if s.LatencyDropped != 0 {
		t.Errorf("LatencyDropped = %d, want 0 before rotation", s.LatencyDropped)
	}
}

// BenchmarkSnapshot measures scrape cost across reservoir fills. The
// interesting number is not the total (sorting outside the lock still
// costs O(n log n)) but that RecordLatencyDuringScrape below stays flat.
func BenchmarkSnapshot(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15, 1 << 18} {
		b.Run(sizeName(n), func(b *testing.B) {
			r := NewRegistry(0)
			fillRegistry(r, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.snapshot(0, 0)
			}
		})
	}
}

// BenchmarkRecordLatencyDuringScrape measures the request path's latency
// recording while a scraper loops snapshots — the contention the
// sort-under-lock bug inflicted. Time/op must be independent of the
// sample count.
func BenchmarkRecordLatencyDuringScrape(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 18} {
		b.Run(sizeName(n), func(b *testing.B) {
			r := NewRegistry(0)
			fillRegistry(r, n)
			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					_ = r.snapshot(0, 0)
				}
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					r.recordLatency(3 * time.Millisecond)
				}
			})
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "n1M"
	case n == 1<<18:
		return "n256k"
	case n == 1<<15:
		return "n32k"
	default:
		return "n4k"
	}
}
