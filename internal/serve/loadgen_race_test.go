package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/leakcheck"
)

// TestLoadgenRace is the serving subsystem's integration proof, meant to
// run under -race: 32 concurrent synthetic users drive the road dataset
// through the full HTTP stack for over a thousand queries. Every issued
// request must receive a response, per-session applied sequence numbers
// must never regress, every session must end holding its latest result,
// and coalescing must have actually saved backend executions.
func TestLoadgenRace(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen integration in -short mode")
	}
	leakcheck.Check(t)
	backends, err := RoadBackends(1, 50000, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(backends, Config{Workers: 4, QueueDepth: 8, ExecDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})

	const users, maxEvents = 32, 40
	report, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Users:       users,
		Adjustments: 4,
		MaxEvents:   maxEvents,
		Seed:        7,
		TimeScale:   0.02,
		Dims:        RoadLoadDims(),
		SQLEvery:    10,
		Table:       "dataroad",
	})
	if err != nil {
		t.Fatal(err)
	}

	if report.Issued < 1000 {
		t.Errorf("issued %d queries, want >= 1000 (acceptance floor)", report.Issued)
	}
	if report.Responded != report.Issued {
		t.Errorf("dropped responses: issued %d, responded %d", report.Issued, report.Responded)
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d, want 0", report.Errors)
	}
	if report.Server.Regressions != 0 {
		t.Errorf("per-session sequence regressions = %d, want 0", report.Server.Regressions)
	}
	for _, u := range report.Users {
		if !u.GotLatest {
			t.Errorf("%s: final applied seq %d < latest issued %d", u.Session, u.FinalSeq, u.MaxSeq)
		}
	}
	if report.Server.Executed >= report.Server.Issued {
		t.Errorf("executed %d >= issued %d: coalescing saved nothing",
			report.Server.Executed, report.Server.Issued)
	}
	if report.Server.Coalesced == 0 {
		t.Error("coalesced counter is zero")
	}
	t.Logf("issued=%d executed=%d coalesced=%d shed=%d lcv=%d (%.1f%%) qif=%.1f/s p95=%.1fms wall=%v",
		report.Issued, report.Server.Executed, report.Server.Coalesced, report.Server.Shed,
		report.Server.LCV, 100*report.Server.LCVPercent, report.QIFPerSec, report.P95MS, report.Wall)
}
