package serve

import (
	"testing"
	"time"
)

func TestBreakerTripAndRecover(t *testing.T) {
	b := newBreaker(3, 100*time.Millisecond)
	now := time.Unix(0, 0)

	for i := 0; i < 3; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.failure(now)
	}
	ok, ra := b.allow(now)
	if ok {
		t.Fatal("breaker did not open after threshold failures")
	}
	if ra < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s floor", ra)
	}

	// After the cooldown exactly one probe is admitted.
	later := now.Add(150 * time.Millisecond)
	if ok, _ := b.allow(later); !ok {
		t.Fatal("half-open breaker rejected the probe")
	}
	if ok, _ := b.allow(later); ok {
		t.Fatal("half-open breaker admitted a second probe")
	}

	// Probe failure reopens; probe success closes.
	b.failure(later)
	if ok, _ := b.allow(later.Add(50 * time.Millisecond)); ok {
		t.Fatal("reopened breaker admitted a request inside cooldown")
	}
	probe := later.Add(300 * time.Millisecond)
	if ok, _ := b.allow(probe); !ok {
		t.Fatal("second probe rejected")
	}
	b.success()
	if ok, _ := b.allow(probe); !ok {
		t.Fatal("closed breaker rejected after successful probe")
	}
	trips, rejects := b.stats()
	if trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
	if rejects == 0 {
		t.Fatal("rejects not counted")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second)
	for i := 0; i < 100; i++ {
		b.failure(time.Unix(0, 0))
	}
	if ok, _ := b.allow(time.Unix(0, 0)); !ok {
		t.Fatal("disabled breaker rejected")
	}
	var nilB *breaker
	if ok, _ := nilB.allow(time.Unix(0, 0)); !ok {
		t.Fatal("nil breaker rejected")
	}
	nilB.success()
	nilB.failure(time.Unix(0, 0))
}
