package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// TestBreakerHalfOpenConcurrentProbes pins the half-open single-probe
// contract under contention: with the cooldown elapsed, N goroutines racing
// allow() must admit exactly one probe — a thundering herd through a
// half-open breaker would re-stampede the backend the breaker exists to
// protect. Runs under -race in CI; the loop repeats the transition so the
// race detector sees many interleavings.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	leakcheck.Check(t)
	const racers = 32
	for round := 0; round < 50; round++ {
		b := newBreaker(1, time.Millisecond)
		now := time.Unix(0, int64(round)*int64(time.Second))
		b.failure(now) // threshold 1: opens immediately
		probeAt := now.Add(2 * time.Millisecond)

		var admitted atomic.Int32
		var start, wg sync.WaitGroup
		start.Add(1)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start.Wait()
				if ok, _ := b.allow(probeAt); ok {
					admitted.Add(1)
				}
			}()
		}
		start.Done()
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d probes admitted through the half-open breaker, want exactly 1", round, n)
		}

		// The losing racers must have been turned away with the cooldown as
		// the hint, and a failed probe must swing straight back to open for
		// everyone.
		b.failure(probeAt)
		var rejected atomic.Int32
		wg = sync.WaitGroup{}
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if ok, _ := b.allow(probeAt.Add(100 * time.Microsecond)); !ok {
					rejected.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := rejected.Load(); n != racers {
			t.Fatalf("round %d: reopened breaker admitted %d requests inside cooldown", round, racers-n)
		}

		// A successful probe closes it for everyone.
		secondProbe := probeAt.Add(2 * time.Millisecond)
		if ok, _ := b.allow(secondProbe); !ok {
			t.Fatalf("round %d: second probe rejected", round)
		}
		b.success()
		var closed atomic.Int32
		wg = sync.WaitGroup{}
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if ok, _ := b.allow(secondProbe); ok {
					closed.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := closed.Load(); n != racers {
			t.Fatalf("round %d: closed breaker rejected %d of %d requests", round, racers-int(n), racers)
		}
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	b := newBreaker(3, 100*time.Millisecond)
	now := time.Unix(0, 0)

	for i := 0; i < 3; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.failure(now)
	}
	ok, ra := b.allow(now)
	if ok {
		t.Fatal("breaker did not open after threshold failures")
	}
	if ra < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s floor", ra)
	}

	// After the cooldown exactly one probe is admitted.
	later := now.Add(150 * time.Millisecond)
	if ok, _ := b.allow(later); !ok {
		t.Fatal("half-open breaker rejected the probe")
	}
	if ok, _ := b.allow(later); ok {
		t.Fatal("half-open breaker admitted a second probe")
	}

	// Probe failure reopens; probe success closes.
	b.failure(later)
	if ok, _ := b.allow(later.Add(50 * time.Millisecond)); ok {
		t.Fatal("reopened breaker admitted a request inside cooldown")
	}
	probe := later.Add(300 * time.Millisecond)
	if ok, _ := b.allow(probe); !ok {
		t.Fatal("second probe rejected")
	}
	b.success()
	if ok, _ := b.allow(probe); !ok {
		t.Fatal("closed breaker rejected after successful probe")
	}
	trips, rejects := b.stats()
	if trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
	if rejects == 0 {
		t.Fatal("rejects not counted")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second)
	for i := 0; i < 100; i++ {
		b.failure(time.Unix(0, 0))
	}
	if ok, _ := b.allow(time.Unix(0, 0)); !ok {
		t.Fatal("disabled breaker rejected")
	}
	var nilB *breaker
	if ok, _ := nilB.allow(time.Unix(0, 0)); !ok {
		t.Fatal("nil breaker rejected")
	}
	nilB.success()
	nilB.failure(time.Unix(0, 0))
}
