package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datacube"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/tracefmt"
)

// testRows keeps unit-test datasets small and fast.
const testRows = 20000

// newTestServer builds a road-backed server plus an httptest frontend.
// Every test through here doubles as a goroutine-leak check: leakcheck is
// registered before the server cleanup, so it runs after Drain and asserts
// the worker pool actually exited.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	leakcheck.Check(t)
	backends, err := RoadBackends(1, testRows, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestQueryHandler(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Session: "s1", Seq: 0, SQL: "SELECT COUNT(*) FROM dataroad",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || len(qr.Rows[0]) != 1 {
		t.Fatalf("rows = %v", qr.Rows)
	}
	if got := qr.Rows[0][0].(float64); got != testRows {
		t.Errorf("COUNT(*) = %v, want %d", got, testRows)
	}

	// Bad SQL is a 400, not a 500 or a hang.
	resp, _ = postJSON(t, ts.URL+"/v1/query", QueryRequest{Session: "s1", Seq: 1, SQL: "SELECT FROM"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad SQL status = %d", resp.StatusCode)
	}

	st := srv.Stats()
	if st.Issued != 2 || st.Executed != 2 {
		t.Errorf("issued %d executed %d, want 2/2", st.Issued, st.Executed)
	}
	if st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
}

func TestBrushHandlerMatchesCube(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	lo, hi := 9.0, 10.5
	ranges := []*[2]float64{{lo, hi}, nil, nil}
	resp, body := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
		Session: "s1", Seq: 0, Ranges: ranges, Moved: 0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var br BrushResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.AppliedSeq != 0 || br.Coalesced {
		t.Errorf("applied %d coalesced %v", br.AppliedSeq, br.Coalesced)
	}

	filters := []*datacube.Range{{Lo: lo, Hi: hi}, nil, nil}
	for d := 0; d < srv.cube.NumDims(); d++ {
		want, err := srv.cube.Histogram(d, filters)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(br.Histograms[d]) != fmt.Sprint(want) {
			t.Errorf("dim %d histogram mismatch", d)
		}
	}
	wantTotal, _ := srv.cube.Count(filters)
	if br.Total != wantTotal {
		t.Errorf("total = %d, want %d", br.Total, wantTotal)
	}

	// Wrong arity is rejected up front.
	resp, _ = postJSON(t, ts.URL+"/v1/brush", BrushRequest{Session: "s1", Seq: 1, Ranges: ranges[:1]})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad arity status = %d", resp.StatusCode)
	}
}

func TestTilesHandler(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Zoom-0 tile 0/0/0 covers the whole mercator world: every road point.
	resp, err := http.Get(ts.URL + "/v1/tiles?session=s1&seq=3&z=0&x=0&y=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var tr TileResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count != testRows {
		t.Errorf("world tile count = %d, want %d", tr.Count, testRows)
	}
	if tr.Key != "0/0/0" || tr.Seq != 3 {
		t.Errorf("key %q seq %d", tr.Key, tr.Seq)
	}

	// A tile on the far side of the planet holds nothing.
	resp2, err := http.Get(ts.URL + "/v1/tiles?session=s1&key=4/1/7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tr2 TileResponse
	if err := json.NewDecoder(resp2.Body).Decode(&tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.Count != 0 {
		t.Errorf("antipodal tile count = %d, want 0", tr2.Count)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	st, err := FetchStats(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.ConstraintMS != 500 {
		t.Errorf("default constraint = %vms, want 500", st.ConstraintMS)
	}
}

// TestShedUnderOverload drives more concurrent queries than worker pool +
// queue can hold: the surplus must shed fast with 429 and count in the
// registry, and every accepted query must still complete.
func TestShedUnderOverload(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, ExecDelay: 30 * time.Millisecond})

	const n = 24
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct sessions: no coalescing, pure admission pressure.
			resp, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{
				Session: fmt.Sprintf("s%d", i), Seq: 0, SQL: "SELECT COUNT(*) FROM dataroad",
			})
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for _, s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", s)
		}
	}
	if shed == 0 {
		t.Fatal("no requests shed under overload")
	}
	if ok == 0 {
		t.Fatal("no requests served under overload")
	}
	st := srv.Stats()
	if st.Shed != int64(shed) {
		t.Errorf("registry shed = %d, want %d", st.Shed, shed)
	}
	if st.Issued != n {
		t.Errorf("issued = %d, want %d", st.Issued, n)
	}
	if st.Executed != int64(ok) {
		t.Errorf("executed = %d, want %d", st.Executed, ok)
	}
}

// TestBrushCoalescing issues a burst of brushes on one session against a
// slow single worker: the stale ones must be superseded (executed count
// well below issued), every caller must get a response, and every response
// must carry the state of a snapshot at least as new as its own.
func TestBrushCoalescing(t *testing.T) {
	var logBuf bytes.Buffer
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ExecDelay: 40 * time.Millisecond, Log: &logBuf})

	const n = 10
	type out struct {
		status  int
		applied int64
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := 8.2 + 0.1*float64(i)
			resp, body := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
				Session: "brusher", Seq: int64(i),
				Ranges: []*[2]float64{{lo, lo + 1}, nil, nil}, Moved: 0,
			})
			var br BrushResponse
			_ = json.Unmarshal(body, &br)
			outs[i] = out{resp.StatusCode, br.AppliedSeq}
		}(i)
		time.Sleep(5 * time.Millisecond) // stagger issues inside one execution window
	}
	wg.Wait()

	var maxApplied int64 = -1
	for i, o := range outs {
		if o.status != http.StatusOK {
			t.Fatalf("brush %d status = %d", i, o.status)
		}
		if o.applied < int64(i) {
			t.Errorf("brush %d applied stale seq %d", i, o.applied)
		}
		if o.applied > maxApplied {
			maxApplied = o.applied
		}
	}
	if maxApplied != n-1 {
		t.Errorf("latest applied = %d, want %d (session must receive its latest result)", maxApplied, n-1)
	}

	st := srv.Stats()
	if st.Executed >= int64(n) {
		t.Errorf("executed %d of %d issued: nothing coalesced", st.Executed, n)
	}
	if st.Coalesced == 0 {
		t.Error("coalesced counter is zero")
	}
	if st.Regressions != 0 {
		t.Errorf("sequence regressions = %d", st.Regressions)
	}

	// The tracefmt request log must parse and agree with the counters.
	recs, err := tracefmt.ReadServeTrace(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Errorf("log records = %d, want %d", len(recs), n)
	}
	coalescedLogged := 0
	for _, r := range recs {
		if r.Kind != "brush" || r.Status != http.StatusOK {
			t.Errorf("log record %+v", r)
		}
		if r.Coalesced {
			coalescedLogged++
		}
	}
	if coalescedLogged == 0 {
		t.Error("no coalesced requests in the log")
	}
}

// TestGracefulDrain verifies the SIGTERM path: in-flight work completes
// with 200, new work is refused with 503, and Drain returns once the pool
// is idle.
func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, ExecDelay: 80 * time.Millisecond})

	started := make(chan struct{})
	var inflightStatus int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		resp, _ := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
			Session: "drainer", Seq: 0, Ranges: []*[2]float64{nil, nil, nil},
		})
		inflightStatus = resp.StatusCode
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the brush reach the worker

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The in-flight brush must have been answered, not dropped.
	wg.Wait()
	if inflightStatus != http.StatusOK {
		t.Errorf("in-flight brush status = %d, want 200", inflightStatus)
	}

	// New work is refused politely.
	resp, _ := postJSON(t, ts.URL+"/v1/brush", BrushRequest{
		Session: "late", Seq: 0, Ranges: []*[2]float64{nil, nil, nil},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain brush = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", QueryRequest{Session: "late", Seq: 0, SQL: "SELECT COUNT(*) FROM dataroad"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain query = %d, want 503", resp.StatusCode)
	}
	// Liveness stays 200 while draining (the process is still up); only
	// readiness flips to 503 so routers stop sending traffic.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hzBody struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&hzBody); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("post-drain healthz = %d, want 200 (liveness)", hz.StatusCode)
	}
	if hzBody.Status != "draining" {
		t.Errorf("post-drain healthz status = %q, want \"draining\"", hzBody.Status)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain readyz = %d, want 503", rz.StatusCode)
	}

	// Drain is idempotent.
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestTileCacheHitMiss: a repeated tile request is served from the LRU
// result cache (skipping the admission queue) and the hit/miss counters
// surface in /metrics.
func TestTileCacheHitMiss(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	getTile := func(key string) TileResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/tiles?session=s1&key=" + key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tile %s status = %d", key, resp.StatusCode)
		}
		var tr TileResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	first := getTile("0/0/0")
	again := getTile("0/0/0")
	if again.Count != first.Count {
		t.Errorf("cached count %d != computed %d", again.Count, first.Count)
	}
	other := getTile("4/1/7")
	if other.Count != 0 {
		t.Errorf("antipodal tile count = %d, want 0", other.Count)
	}

	st := srv.Stats()
	if st.TileCacheHits != 1 || st.TileCacheMiss != 2 {
		t.Errorf("cache hits=%d misses=%d, want 1/2", st.TileCacheHits, st.TileCacheMiss)
	}
	// The counters ride the same /metrics endpoint operators already watch.
	remote, err := FetchStats(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.TileCacheHits != 1 || remote.TileCacheMiss != 2 {
		t.Errorf("remote hits=%d misses=%d", remote.TileCacheHits, remote.TileCacheMiss)
	}
}

// TestTileCacheDisabled: a negative TileCacheSize turns the cache off;
// identical requests recompute every time.
func TestTileCacheDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, TileCacheSize: -1})
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/tiles?session=s1&key=0/0/0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	st := srv.Stats()
	if st.TileCacheHits != 0 || st.TileCacheMiss != 2 {
		t.Errorf("disabled cache hits=%d misses=%d, want 0/2", st.TileCacheHits, st.TileCacheMiss)
	}
}
