package serve

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// maxLatencySamples bounds the registry's latency reservoir. A long-running
// server keeps the most recent window rather than growing without bound;
// percentile reports then describe recent behavior, which is what an
// operator watching /metrics wants.
const maxLatencySamples = 1 << 18

// Registry is the serving layer's online metrics: the paper's frontend
// metrics (LCV against the next-action definition, QIF) plus the classical
// backend ones (latency percentiles, shed and error counts, queue depth),
// all computed incrementally as requests flow.
type Registry struct {
	constraint time.Duration

	mu             sync.Mutex
	issued         int64
	executed       int64
	coalesced      int64
	shed           int64
	errors         int64
	lcv            int64
	overConstraint int64
	regressions    int64
	tileHits       int64
	tileMisses     int64
	degraded       int64
	deadlines      int64
	retries        int64
	brushCacheHits int64
	breakerRejects int64

	firstIssue time.Time
	lastIssue  time.Time
	latencies  []float64 // milliseconds, most recent maxLatencySamples
	dropped    int64     // latency samples rotated out of the reservoir
}

// NewRegistry builds a registry evaluating against the given wall-clock
// latency constraint; 0 means metrics.DefaultConstraint.
func NewRegistry(constraint time.Duration) *Registry {
	if constraint <= 0 {
		constraint = metrics.DefaultConstraint
	}
	return &Registry{constraint: constraint}
}

// Constraint returns the wall-clock latency constraint in force.
func (r *Registry) Constraint() time.Duration { return r.constraint }

// recordIssue counts one offered request and feeds the QIF clock.
func (r *Registry) recordIssue(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.issued == 0 {
		r.firstIssue = now
	}
	r.issued++
	r.lastIssue = now
}

// recordExec counts one backend execution. Under coalescing this runs once
// per execution, not once per request, which is what makes executed <
// issued the signature of the optimization working.
func (r *Registry) recordExec() {
	r.mu.Lock()
	r.executed++
	r.mu.Unlock()
}

// recordLatency records one responded request's user-perceived latency.
func (r *Registry) recordLatency(latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if latency > r.constraint {
		r.overConstraint++
	}
	if len(r.latencies) >= maxLatencySamples {
		// Drop the oldest half in one move so appends stay amortized O(1).
		half := len(r.latencies) / 2
		r.dropped += int64(half)
		r.latencies = append(r.latencies[:0], r.latencies[half:]...)
	}
	r.latencies = append(r.latencies, float64(latency)/float64(time.Millisecond))
}

// recordCoalesced counts one request superseded by a newer one.
func (r *Registry) recordCoalesced() {
	r.mu.Lock()
	r.coalesced++
	r.mu.Unlock()
}

// recordShed counts one request rejected at admission (HTTP 429).
func (r *Registry) recordShed() {
	r.mu.Lock()
	r.shed++
	r.mu.Unlock()
}

// recordError counts one request that failed during execution.
func (r *Registry) recordError() {
	r.mu.Lock()
	r.errors++
	r.mu.Unlock()
}

// recordLCV adds n latency-constraint violations: requests still in flight
// when their session issued its next request (Figure 2's definition,
// evaluated online).
func (r *Registry) recordLCV(n int) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	r.lcv += int64(n)
	r.mu.Unlock()
}

// recordRegression counts a per-session sequence regression: an executed
// state older than one already applied. It must stay zero; the race
// integration test asserts on it.
func (r *Registry) recordRegression() {
	r.mu.Lock()
	r.regressions++
	r.mu.Unlock()
}

// recordTileHit counts a /v1/tiles request served from the result cache
// without touching the admission queue.
func (r *Registry) recordTileHit() {
	r.mu.Lock()
	r.tileHits++
	r.mu.Unlock()
}

// recordTileMiss counts a /v1/tiles request that had to execute.
func (r *Registry) recordTileMiss() {
	r.mu.Lock()
	r.tileMisses++
	r.mu.Unlock()
}

// recordDegraded counts one request answered by a lower ladder tier (cached
// or partial result) instead of the exact scan.
func (r *Registry) recordDegraded() {
	r.mu.Lock()
	r.degraded++
	r.mu.Unlock()
}

// recordDeadline counts one execution cut short by its deadline budget.
func (r *Registry) recordDeadline() {
	r.mu.Lock()
	r.deadlines++
	r.mu.Unlock()
}

// recordRetry counts one backend retry after an injected transient error.
func (r *Registry) recordRetry() {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

// recordBrushCacheHit counts one brush answered from the exact-result cache.
func (r *Registry) recordBrushCacheHit() {
	r.mu.Lock()
	r.brushCacheHits++
	r.mu.Unlock()
}

// recordBreakerReject counts one request rejected by the open circuit
// breaker before admission.
func (r *Registry) recordBreakerReject() {
	r.mu.Lock()
	r.breakerRejects++
	r.mu.Unlock()
}

// Stats is one /metrics snapshot.
type Stats struct {
	Issued         int64   `json:"issued"`
	Executed       int64   `json:"executed"`
	Coalesced      int64   `json:"coalesced"`
	Shed           int64   `json:"shed"`
	Errors         int64   `json:"errors"`
	LCV            int64   `json:"lcv"`
	LCVPercent     float64 `json:"lcv_percent"`
	OverConstraint int64   `json:"over_constraint"`
	ConstraintMS   float64 `json:"constraint_ms"`
	Regressions    int64   `json:"seq_regressions"`
	TileCacheHits  int64   `json:"tile_cache_hits"`
	TileCacheMiss  int64   `json:"tile_cache_misses"`
	Degraded       int64   `json:"degraded"`
	Deadlines      int64   `json:"deadline_exceeded"`
	Retries        int64   `json:"retries"`
	BrushCacheHits int64   `json:"brush_cache_hits"`
	BreakerRejects int64   `json:"breaker_rejects"`
	BreakerTrips   int64   `json:"breaker_trips"`
	QIFPerSec      float64 `json:"qif_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	MaxMS          float64 `json:"max_ms"`
	QueueDepth     int     `json:"queue_depth"`
	Inflight       int     `json:"inflight"`
}

// snapshot computes the current stats; queue depth and inflight come from
// the server, which owns those gauges.
func (r *Registry) snapshot(queueDepth, inflight int) Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Issued:         r.issued,
		Executed:       r.executed,
		Coalesced:      r.coalesced,
		Shed:           r.shed,
		Errors:         r.errors,
		LCV:            r.lcv,
		OverConstraint: r.overConstraint,
		ConstraintMS:   float64(r.constraint) / float64(time.Millisecond),
		Regressions:    r.regressions,
		TileCacheHits:  r.tileHits,
		TileCacheMiss:  r.tileMisses,
		Degraded:       r.degraded,
		Deadlines:      r.deadlines,
		Retries:        r.retries,
		BrushCacheHits: r.brushCacheHits,
		BreakerRejects: r.breakerRejects,
		QueueDepth:     queueDepth,
		Inflight:       inflight,
	}
	if r.issued > 0 {
		s.LCVPercent = float64(r.lcv) / float64(r.issued)
	}
	if r.issued > 1 {
		if span := r.lastIssue.Sub(r.firstIssue); span > 0 {
			s.QIFPerSec = float64(r.issued-1) / span.Seconds()
		}
	}
	if len(r.latencies) > 0 {
		s.P50MS = metrics.Percentile(r.latencies, 50)
		s.P95MS = metrics.Percentile(r.latencies, 95)
		s.P99MS = metrics.Percentile(r.latencies, 99)
		s.MaxMS = metrics.Percentile(r.latencies, 100)
	}
	return s
}
