package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// maxLatencySamples bounds the registry's latency reservoir. A long-running
// server keeps the most recent window rather than growing without bound;
// percentile reports then describe recent behavior, which is what an
// operator watching /metrics wants.
const maxLatencySamples = 1 << 18

// qifWindow bounds the ring of recent issue timestamps that the QIF
// report is computed over. Percentiles describe a recent window of
// traffic, so the issuing-rate headline must describe the same recent
// horizon — a lifetime average would mix in traffic the reservoir
// rotated out long ago.
const qifWindow = 1 << 12

// Registry is the serving layer's online metrics: the paper's frontend
// metrics (LCV against the next-action definition, QIF) plus the classical
// backend ones (latency percentiles, shed and error counts, queue depth),
// all computed incrementally as requests flow.
type Registry struct {
	constraint time.Duration

	mu             sync.Mutex
	issued         int64
	executed       int64
	coalesced      int64
	shed           int64
	errors         int64
	lcv            int64
	overConstraint int64
	regressions    int64
	tileHits       int64
	tileMisses     int64
	degraded       int64
	deadlines      int64
	retries        int64
	brushCacheHits int64
	breakerRejects int64

	firstIssue time.Time
	lastIssue  time.Time
	latencies  []float64 // milliseconds, most recent maxLatencySamples
	dropped    int64     // latency samples rotated out of the reservoir

	// issueRing holds the most recent qifWindow issue timestamps; QIF is
	// reported over this window so it describes the same recent traffic
	// the latency percentiles do.
	issueRing  []time.Time
	issueHead  int // next write position
	issueCount int // occupied slots, <= qifWindow
}

// NewRegistry builds a registry evaluating against the given wall-clock
// latency constraint; 0 means metrics.DefaultConstraint.
func NewRegistry(constraint time.Duration) *Registry {
	if constraint <= 0 {
		constraint = metrics.DefaultConstraint
	}
	return &Registry{constraint: constraint}
}

// Constraint returns the wall-clock latency constraint in force.
func (r *Registry) Constraint() time.Duration { return r.constraint }

// recordIssue counts one offered request and feeds the QIF clock.
func (r *Registry) recordIssue(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.issued == 0 {
		r.firstIssue = now
	}
	r.issued++
	r.lastIssue = now
	if r.issueRing == nil {
		r.issueRing = make([]time.Time, qifWindow)
	}
	r.issueRing[r.issueHead] = now
	r.issueHead = (r.issueHead + 1) % qifWindow
	if r.issueCount < qifWindow {
		r.issueCount++
	}
}

// qifLocked computes the windowed issuing rate over the issue ring; the
// caller holds r.mu. O(1): the ring's oldest and newest entries bound the
// window span.
func (r *Registry) qifLocked() float64 {
	if r.issueCount < 2 {
		return 0
	}
	newest := r.issueRing[(r.issueHead-1+qifWindow)%qifWindow]
	oldest := r.issueRing[(r.issueHead-r.issueCount+qifWindow)%qifWindow]
	span := newest.Sub(oldest)
	if span <= 0 {
		return 0
	}
	return float64(r.issueCount-1) / span.Seconds()
}

// recordExec counts one backend execution. Under coalescing this runs once
// per execution, not once per request, which is what makes executed <
// issued the signature of the optimization working.
func (r *Registry) recordExec() {
	r.mu.Lock()
	r.executed++
	r.mu.Unlock()
}

// recordLatency records one responded request's user-perceived latency.
func (r *Registry) recordLatency(latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if latency > r.constraint {
		r.overConstraint++
	}
	if len(r.latencies) >= maxLatencySamples {
		// Drop the oldest half in one move so appends stay amortized O(1).
		half := len(r.latencies) / 2
		r.dropped += int64(half)
		r.latencies = append(r.latencies[:0], r.latencies[half:]...)
	}
	r.latencies = append(r.latencies, float64(latency)/float64(time.Millisecond))
}

// recordCoalesced counts one request superseded by a newer one.
func (r *Registry) recordCoalesced() {
	r.mu.Lock()
	r.coalesced++
	r.mu.Unlock()
}

// recordShed counts one request rejected at admission (HTTP 429).
func (r *Registry) recordShed() {
	r.mu.Lock()
	r.shed++
	r.mu.Unlock()
}

// recordError counts one request that failed during execution.
func (r *Registry) recordError() {
	r.mu.Lock()
	r.errors++
	r.mu.Unlock()
}

// recordLCV adds n latency-constraint violations: requests still in flight
// when their session issued its next request (Figure 2's definition,
// evaluated online).
func (r *Registry) recordLCV(n int) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	r.lcv += int64(n)
	r.mu.Unlock()
}

// recordRegression counts a per-session sequence regression: an executed
// state older than one already applied. It must stay zero; the race
// integration test asserts on it.
func (r *Registry) recordRegression() {
	r.mu.Lock()
	r.regressions++
	r.mu.Unlock()
}

// recordTileHit counts a /v1/tiles request served from the result cache
// without touching the admission queue.
func (r *Registry) recordTileHit() {
	r.mu.Lock()
	r.tileHits++
	r.mu.Unlock()
}

// recordTileMiss counts a /v1/tiles request that had to execute.
func (r *Registry) recordTileMiss() {
	r.mu.Lock()
	r.tileMisses++
	r.mu.Unlock()
}

// recordDegraded counts one request answered by a lower ladder tier (cached
// or partial result) instead of the exact scan.
func (r *Registry) recordDegraded() {
	r.mu.Lock()
	r.degraded++
	r.mu.Unlock()
}

// recordDeadline counts one execution cut short by its deadline budget.
func (r *Registry) recordDeadline() {
	r.mu.Lock()
	r.deadlines++
	r.mu.Unlock()
}

// recordRetry counts one backend retry after an injected transient error.
func (r *Registry) recordRetry() {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

// recordBrushCacheHit counts one brush answered from the exact-result cache.
func (r *Registry) recordBrushCacheHit() {
	r.mu.Lock()
	r.brushCacheHits++
	r.mu.Unlock()
}

// recordBreakerReject counts one request rejected by the open circuit
// breaker before admission.
func (r *Registry) recordBreakerReject() {
	r.mu.Lock()
	r.breakerRejects++
	r.mu.Unlock()
}

// Stats is one /metrics snapshot.
type Stats struct {
	Issued         int64   `json:"issued"`
	Executed       int64   `json:"executed"`
	Coalesced      int64   `json:"coalesced"`
	Shed           int64   `json:"shed"`
	Errors         int64   `json:"errors"`
	LCV            int64   `json:"lcv"`
	LCVPercent     float64 `json:"lcv_percent"`
	OverConstraint int64   `json:"over_constraint"`
	ConstraintMS   float64 `json:"constraint_ms"`
	Regressions    int64   `json:"seq_regressions"`
	TileCacheHits  int64   `json:"tile_cache_hits"`
	TileCacheMiss  int64   `json:"tile_cache_misses"`
	Degraded       int64   `json:"degraded"`
	Deadlines      int64   `json:"deadline_exceeded"`
	Retries        int64   `json:"retries"`
	BrushCacheHits int64   `json:"brush_cache_hits"`
	BreakerRejects int64   `json:"breaker_rejects"`
	BreakerTrips   int64   `json:"breaker_trips"`
	QIFPerSec      float64 `json:"qif_per_sec"`
	QIFWindow      int     `json:"qif_window"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	MaxMS          float64 `json:"max_ms"`
	LatencySamples int64   `json:"latency_samples"`
	LatencyDropped int64   `json:"latency_dropped"`
	QueueDepth     int     `json:"queue_depth"`
	Inflight       int     `json:"inflight"`
}

// snapshot computes the current stats; queue depth and inflight come from
// the server, which owns those gauges.
//
// The lock is held only to copy state out: percentile computation — the
// O(n log n) sort of the latency reservoir — runs after release, so a
// scrape never stalls the request path's recordIssue/recordLatency behind
// sorting work. The reservoir is sorted once and all four percentiles
// read from the single sorted copy.
func (r *Registry) snapshot(queueDepth, inflight int) Stats {
	r.mu.Lock()
	s := Stats{
		Issued:         r.issued,
		Executed:       r.executed,
		Coalesced:      r.coalesced,
		Shed:           r.shed,
		Errors:         r.errors,
		LCV:            r.lcv,
		OverConstraint: r.overConstraint,
		ConstraintMS:   float64(r.constraint) / float64(time.Millisecond),
		Regressions:    r.regressions,
		TileCacheHits:  r.tileHits,
		TileCacheMiss:  r.tileMisses,
		Degraded:       r.degraded,
		Deadlines:      r.deadlines,
		Retries:        r.retries,
		BrushCacheHits: r.brushCacheHits,
		BreakerRejects: r.breakerRejects,
		QueueDepth:     queueDepth,
		Inflight:       inflight,
	}
	if r.issued > 0 {
		s.LCVPercent = float64(r.lcv) / float64(r.issued)
	}
	s.QIFPerSec = r.qifLocked()
	s.QIFWindow = r.issueCount
	s.LatencySamples = int64(len(r.latencies))
	s.LatencyDropped = r.dropped
	lat := append([]float64(nil), r.latencies...)
	r.mu.Unlock()

	if len(lat) > 0 {
		sort.Float64s(lat)
		s.P50MS = metrics.PercentileSorted(lat, 50)
		s.P95MS = metrics.PercentileSorted(lat, 95)
		s.P99MS = metrics.PercentileSorted(lat, 99)
		s.MaxMS = metrics.PercentileSorted(lat, 100)
	}
	return s
}
