package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/planner"
)

// qifWindow bounds the ring of recent issue timestamps that the QIF
// report is computed over. Percentiles describe a recent window of
// traffic, so the issuing-rate headline must describe the same recent
// horizon — a lifetime average would mix in traffic from long ago.
const qifWindow = 1 << 12

// Registry is the serving layer's online metrics: the paper's frontend
// metrics (LCV against the next-action definition, QIF) plus the classical
// backend ones (latency percentiles, shed and error counts, queue depth),
// all computed incrementally as requests flow.
//
// Counters are atomics and latency goes into a lock-free fixed-bucket
// histogram (internal/obsv), so the request path never shares a lock with
// a scrape. The one remaining mutex guards only the QIF timestamp ring.
type Registry struct {
	constraint time.Duration

	issued           atomic.Int64
	executed         atomic.Int64
	coalesced        atomic.Int64
	shed             atomic.Int64
	errors           atomic.Int64
	lcv              atomic.Int64
	overConstraint   atomic.Int64
	regressions      atomic.Int64
	tileHits         atomic.Int64
	tileMisses       atomic.Int64
	degraded         atomic.Int64
	deadlines        atomic.Int64
	retries          atomic.Int64
	brushCacheHits   atomic.Int64
	brushCacheMisses atomic.Int64
	breakerRejects   atomic.Int64

	// hist holds user-perceived end-to-end latency; percentile reads are a
	// bucket walk over atomic counters — no reservoir, no sorting.
	hist obsv.Histogram

	// tracer owns the per-stage histograms, LCV-by-stage attribution, and
	// the recent-trace ring exported at /v1/trace.
	tracer *obsv.Tracer

	mu sync.Mutex // guards the QIF ring only
	// issueRing holds the most recent qifWindow issue timestamps; QIF is
	// reported over this window so it describes the same recent traffic
	// the latency percentiles do.
	issueRing  []time.Time
	issueHead  int // next write position
	issueCount int // occupied slots, <= qifWindow
}

// NewRegistry builds a registry evaluating against the given wall-clock
// latency constraint; 0 means metrics.DefaultConstraint.
func NewRegistry(constraint time.Duration) *Registry {
	if constraint <= 0 {
		constraint = metrics.DefaultConstraint
	}
	return &Registry{
		constraint: constraint,
		tracer:     obsv.NewTracer(0),
	}
}

// Constraint returns the wall-clock latency constraint in force.
func (r *Registry) Constraint() time.Duration { return r.constraint }

// Tracer returns the registry's stage tracer; handlers Begin/Finish traces
// against it.
func (r *Registry) Tracer() *obsv.Tracer { return r.tracer }

// recordIssue counts one offered request and feeds the QIF clock.
func (r *Registry) recordIssue(now time.Time) {
	r.issued.Add(1)
	r.mu.Lock()
	if r.issueRing == nil {
		r.issueRing = make([]time.Time, qifWindow)
	}
	r.issueRing[r.issueHead] = now
	r.issueHead = (r.issueHead + 1) % qifWindow
	if r.issueCount < qifWindow {
		r.issueCount++
	}
	r.mu.Unlock()
}

// qifLocked computes the windowed issuing rate over the issue ring; the
// caller holds r.mu. O(1): the ring's oldest and newest entries bound the
// window span.
func (r *Registry) qifLocked() float64 {
	if r.issueCount < 2 {
		return 0
	}
	newest := r.issueRing[(r.issueHead-1+qifWindow)%qifWindow]
	oldest := r.issueRing[(r.issueHead-r.issueCount+qifWindow)%qifWindow]
	span := newest.Sub(oldest)
	if span <= 0 {
		return 0
	}
	return float64(r.issueCount-1) / span.Seconds()
}

// recordExec counts one backend execution. Under coalescing this runs once
// per execution, not once per request, which is what makes executed <
// issued the signature of the optimization working.
func (r *Registry) recordExec() { r.executed.Add(1) }

// recordLatency records one responded request's user-perceived latency.
func (r *Registry) recordLatency(latency time.Duration) {
	if latency > r.constraint {
		r.overConstraint.Add(1)
	}
	r.hist.Observe(latency)
}

// recordCoalesced counts one request superseded by a newer one.
func (r *Registry) recordCoalesced() { r.coalesced.Add(1) }

// recordShed counts one request rejected at admission (HTTP 429).
func (r *Registry) recordShed() { r.shed.Add(1) }

// recordError counts one request that failed during execution.
func (r *Registry) recordError() { r.errors.Add(1) }

// recordLCV adds n latency-constraint violations: requests still in flight
// when their session issued its next request (Figure 2's definition,
// evaluated online).
func (r *Registry) recordLCV(n int) {
	if n != 0 {
		r.lcv.Add(int64(n))
	}
}

// recordRegression counts a per-session sequence regression: an executed
// state older than one already applied. It must stay zero; the race
// integration test asserts on it.
func (r *Registry) recordRegression() { r.regressions.Add(1) }

// recordTileHit counts a /v1/tiles request served from the result cache
// without touching the admission queue.
func (r *Registry) recordTileHit() { r.tileHits.Add(1) }

// recordTileMiss counts a /v1/tiles request that had to execute.
func (r *Registry) recordTileMiss() { r.tileMisses.Add(1) }

// recordDegraded counts one request answered by a lower ladder tier (cached
// or partial result) instead of the exact scan.
func (r *Registry) recordDegraded() { r.degraded.Add(1) }

// recordDeadline counts one execution cut short by its deadline budget.
func (r *Registry) recordDeadline() { r.deadlines.Add(1) }

// recordRetry counts one backend retry after an injected transient error.
func (r *Registry) recordRetry() { r.retries.Add(1) }

// recordBrushCacheHit counts one brush answered from the exact-result cache.
func (r *Registry) recordBrushCacheHit() { r.brushCacheHits.Add(1) }

// recordBrushCacheMiss counts one cache-tier lookup that found no exact
// answer for the requested ranges — the other half of the brush cache's
// hit rate, which was previously unobservable.
func (r *Registry) recordBrushCacheMiss() { r.brushCacheMisses.Add(1) }

// recordBreakerReject counts one request rejected by the open circuit
// breaker before admission.
func (r *Registry) recordBreakerReject() { r.breakerRejects.Add(1) }

// StageStats is one pipeline stage's span summary in a Stats snapshot.
type StageStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Stats is one /metrics snapshot.
type Stats struct {
	Issued         int64   `json:"issued"`
	Executed       int64   `json:"executed"`
	Coalesced      int64   `json:"coalesced"`
	Shed           int64   `json:"shed"`
	Errors         int64   `json:"errors"`
	LCV            int64   `json:"lcv"`
	LCVPercent     float64 `json:"lcv_percent"`
	OverConstraint int64   `json:"over_constraint"`
	ConstraintMS   float64 `json:"constraint_ms"`
	Regressions    int64   `json:"seq_regressions"`
	TileCacheHits  int64   `json:"tile_cache_hits"`
	TileCacheMiss  int64   `json:"tile_cache_misses"`
	Degraded       int64   `json:"degraded"`
	Deadlines      int64   `json:"deadline_exceeded"`
	Retries        int64   `json:"retries"`
	BrushCacheHits int64   `json:"brush_cache_hits"`
	BrushCacheMiss int64   `json:"brush_cache_misses"`
	BreakerRejects int64   `json:"breaker_rejects"`
	BreakerTrips   int64   `json:"breaker_trips"`
	QIFPerSec      float64 `json:"qif_per_sec"`
	QIFWindow      int     `json:"qif_window"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	MaxMS          float64 `json:"max_ms"`
	LatencySamples int64   `json:"latency_samples"`
	LatencyDropped int64   `json:"latency_dropped"`
	QueueDepth     int     `json:"queue_depth"`
	Inflight       int     `json:"inflight"`

	// Stages is the per-stage span breakdown (admission, queue, coalesce,
	// execute, merge, write), present for stages that have observations.
	Stages map[string]StageStats `json:"stages,omitempty"`
	// LCVByStage attributes each latency-constraint violation to the
	// pipeline stage that consumed the most of the violating request's
	// time — the "where did the budget go" view of LCV.
	LCVByStage map[string]int64 `json:"lcv_by_stage,omitempty"`

	// Store is the compressed-columnar encoding breakdown of the served
	// table (per-column encodings, encoded vs plain bytes, compression
	// ratio). Present only when the backends were frozen via
	// colstore.Freeze / EncodeBackends.
	Store *colstore.TableStats `json:"store,omitempty"`

	// Planner is the materialization planner's decision and index-economy
	// snapshot (per-structure choice counts, materializations, store
	// bytes). Present only when the server runs with Config.Planner.
	Planner *planner.Stats `json:"planner,omitempty"`
}

const msPerNS = 1.0 / float64(time.Millisecond)

func durMS(d time.Duration) float64 { return float64(d) * msPerNS }

// snapshot computes the current stats; queue depth and inflight come from
// the server, which owns those gauges. Nothing here blocks the request
// path: counters and histogram buckets are atomics, and r.mu (the QIF
// ring) is held for an O(1) read.
func (r *Registry) snapshot(queueDepth, inflight int) Stats {
	s := Stats{
		Issued:         r.issued.Load(),
		Executed:       r.executed.Load(),
		Coalesced:      r.coalesced.Load(),
		Shed:           r.shed.Load(),
		Errors:         r.errors.Load(),
		LCV:            r.lcv.Load(),
		OverConstraint: r.overConstraint.Load(),
		ConstraintMS:   durMS(r.constraint),
		Regressions:    r.regressions.Load(),
		TileCacheHits:  r.tileHits.Load(),
		TileCacheMiss:  r.tileMisses.Load(),
		Degraded:       r.degraded.Load(),
		Deadlines:      r.deadlines.Load(),
		Retries:        r.retries.Load(),
		BrushCacheHits: r.brushCacheHits.Load(),
		BrushCacheMiss: r.brushCacheMisses.Load(),
		BreakerRejects: r.breakerRejects.Load(),
		QueueDepth:     queueDepth,
		Inflight:       inflight,
	}
	if s.Issued > 0 {
		s.LCVPercent = float64(s.LCV) / float64(s.Issued)
	}
	r.mu.Lock()
	s.QIFPerSec = r.qifLocked()
	s.QIFWindow = r.issueCount
	r.mu.Unlock()

	lat := r.hist.Snapshot()
	s.LatencySamples = lat.Count
	if lat.Count > 0 {
		s.P50MS = durMS(lat.Percentile(50))
		s.P95MS = durMS(lat.Percentile(95))
		s.P99MS = durMS(lat.Percentile(99))
		s.MaxMS = durMS(lat.Percentile(100))
	}

	lcvByStage := r.tracer.LCVByStage()
	for st := obsv.StageAdmission; st < obsv.NumStages; st++ {
		snap := r.tracer.StageHist(st).Snapshot()
		if snap.Count > 0 {
			if s.Stages == nil {
				s.Stages = make(map[string]StageStats, int(obsv.NumStages))
			}
			s.Stages[st.String()] = StageStats{
				Count:  snap.Count,
				MeanMS: durMS(snap.Mean()),
				P50MS:  durMS(snap.Percentile(50)),
				P95MS:  durMS(snap.Percentile(95)),
				P99MS:  durMS(snap.Percentile(99)),
				MaxMS:  durMS(snap.Percentile(100)),
			}
		}
		if n := lcvByStage[st]; n > 0 {
			if s.LCVByStage == nil {
				s.LCVByStage = make(map[string]int64, int(obsv.NumStages))
			}
			s.LCVByStage[st.String()] = n
		}
	}
	return s
}
