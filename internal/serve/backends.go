package serve

import (
	"fmt"

	"repro/internal/colstore"
	"repro/internal/crossfilter"
	"repro/internal/datacube"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/opt"
)

// EncodeBackends freezes the backends' table into colstore's compressed
// columnar form and rewires everything that serves from it: the frozen
// table replaces Tiles, and the engine's registration is swapped so SQL
// queries scan the encoded columns through the vectorized kernels. The
// cube is left alone — its cells are counts, identical either way — and
// sharded serving picks the encoding up automatically (shard.New re-freezes
// partitions of a frozen source). Idempotent: freezing a frozen table is a
// pass-through.
func EncodeBackends(b Backends) (Backends, error) {
	if b.Tiles == nil {
		return b, fmt.Errorf("serve: encode: backends have no table")
	}
	frozen, err := colstore.Freeze(b.Tiles, nil)
	if err != nil {
		return b, fmt.Errorf("serve: encode: %w", err)
	}
	b.Tiles = frozen
	if b.Engine != nil {
		b.Engine.Register(frozen)
	}
	return b, nil
}

// RoadBackends builds the full road-dataset serving stack: the table
// registered in an engine with the given cost profile, a 20³ cube over
// x/y/z, and the table itself as tile backend (y/x are latitude and
// longitude). rows <= 0 means the paper's full cardinality.
func RoadBackends(seed int64, rows int, prof engine.Profile) (Backends, error) {
	if rows <= 0 {
		rows = dataset.RoadCount
	}
	table := dataset.Roads(seed, rows)
	eng := engine.New(prof)
	eng.Register(table)
	cube, err := datacube.Build(table, RoadCubeDims())
	if err != nil {
		return Backends{}, err
	}
	return Backends{Engine: eng, Cube: cube, Tiles: table, TileLat: "y", TileLng: "x"}, nil
}

// RoadCubeDims returns the road cube's dimensions in serving order.
func RoadCubeDims() []datacube.Dim {
	lonLo, lonHi, latLo, latHi, altLo, altHi := dataset.RoadBounds()
	return []datacube.Dim{
		{Name: "x", Lo: lonLo, Hi: lonHi, Bins: crossfilter.DefaultBins},
		{Name: "y", Lo: latLo, Hi: latHi, Bins: crossfilter.DefaultBins},
		{Name: "z", Lo: altLo, Hi: altHi, Bins: crossfilter.DefaultBins},
	}
}

// RoadLoadDims returns the road dimensions in opt's workload form, the
// shape LoadConfig wants.
func RoadLoadDims() []opt.CrossfilterDim {
	var out []opt.CrossfilterDim
	for _, d := range RoadCubeDims() {
		out = append(out, opt.CrossfilterDim{Column: d.Name, Lo: d.Lo, Hi: d.Hi})
	}
	return out
}

// ListingsBackends builds the accommodation-search serving stack: listings
// in an engine, a cube over lat/lng/price, and lat/lng tiles.
func ListingsBackends(seed int64, rows int, prof engine.Profile) (Backends, error) {
	if rows <= 0 {
		rows = dataset.DefaultListingCount
	}
	table := dataset.Listings(seed, rows)
	eng := engine.New(prof)
	eng.Register(table)
	dims := make([]datacube.Dim, 0, 3)
	for _, name := range []string{"lat", "lng", "price"} {
		lo, hi, _ := table.MinMax(name)
		dims = append(dims, datacube.Dim{Name: name, Lo: lo, Hi: hi, Bins: crossfilter.DefaultBins})
	}
	cube, err := datacube.Build(table, dims)
	if err != nil {
		return Backends{}, err
	}
	return Backends{Engine: eng, Cube: cube, Tiles: table, TileLat: "lat", TileLng: "lng"}, nil
}
