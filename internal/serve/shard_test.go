package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/leakcheck"
	"repro/internal/opt"
	"repro/internal/shard"
)

// shardTestServer builds a road server and its httptest frontend, draining
// both on cleanup.
func shardTestServer(t *testing.T, rows int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	backends, err := RoadBackends(1, rows, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Error(err)
		}
	})
	return srv, ts
}

// TestShardedServerMatchesUnsharded is the serving-layer end of the
// differential proof: the same randomized brush and histogram-query
// traffic against a sharded server and an unsharded oracle server built
// from the same dataset. Brush responses must be byte-identical on the
// wire; query responses must agree on every row (model cost legitimately
// differs — S parallel partial scans are not one full scan).
func TestShardedServerMatchesUnsharded(t *testing.T) {
	leakcheck.Check(t)
	const rows = 20000
	_, oracle := shardTestServer(t, rows, Config{Workers: 2})
	dims := RoadCubeDims()
	loadDims := RoadLoadDims()

	for _, mode := range []shard.Mode{shard.Hash, shard.Range} {
		for _, s := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%v/S%d", mode, s), func(t *testing.T) {
				_, sharded := shardTestServer(t, rows, Config{Workers: 2, Shards: s, ShardMode: mode})
				rng := rand.New(rand.NewSource(int64(1000*s) + int64(mode)))
				session := fmt.Sprintf("diff-%v-%d", mode, s)

				for seq := int64(0); seq < 15; seq++ {
					ranges := make([]*[2]float64, len(dims))
					for i, d := range dims {
						if rng.Intn(4) == 0 {
							continue
						}
						lo := d.Lo + rng.Float64()*(d.Hi-d.Lo)
						ranges[i] = &[2]float64{lo, lo + rng.Float64()*(d.Hi-lo)}
					}
					req := BrushRequest{Session: session, Seq: seq, Ranges: ranges}
					st1, body1 := postJSON(t, oracle.URL+"/v1/brush", req)
					st2, body2 := postJSON(t, sharded.URL+"/v1/brush", req)
					if st1.StatusCode != http.StatusOK || st2.StatusCode != http.StatusOK {
						t.Fatalf("seq %d: status %d vs %d", seq, st1.StatusCode, st2.StatusCode)
					}
					if !bytes.Equal(body1, body2) {
						t.Fatalf("seq %d: sharded brush body differs:\n%s\nvs oracle:\n%s", seq, body2, body1)
					}
				}

				for seq := int64(0); seq < 8; seq++ {
					ranges := make([][2]float64, len(dims))
					for i, d := range dims {
						lo := d.Lo + rng.Float64()*(d.Hi-d.Lo)
						ranges[i] = [2]float64{lo, lo + rng.Float64()*(d.Hi-lo)}
					}
					stmt, err := opt.HistogramQuery("dataroad", loadDims, ranges, rng.Intn(len(dims)), dims[0].Bins)
					if err != nil {
						t.Fatal(err)
					}
					req := QueryRequest{Session: session, Seq: seq, SQL: stmt.String()}
					st1, body1 := postJSON(t, oracle.URL+"/v1/query", req)
					st2, body2 := postJSON(t, sharded.URL+"/v1/query", req)
					if st1.StatusCode != http.StatusOK || st2.StatusCode != http.StatusOK {
						t.Fatalf("query seq %d: status %d vs %d", seq, st1.StatusCode, st2.StatusCode)
					}
					var want, got QueryResponse
					if err := json.Unmarshal(body1, &want); err != nil {
						t.Fatal(err)
					}
					if err := json.Unmarshal(body2, &got); err != nil {
						t.Fatal(err)
					}
					if got.Degraded || got.SampleFraction != 0 {
						t.Fatalf("query seq %d: degraded sharded answer with no fault injected", seq)
					}
					if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
						t.Fatalf("query seq %d: rows differ\nsharded: %v\noracle:  %v", seq, got.Rows, want.Rows)
					}
				}
			})
		}
	}
}

// TestShardedBrushDegradesOnStalledShard is the serving-layer chaos proof:
// with one of four shards wedged and deadlines on, a brush comes back 200
// within the budget as a Degraded partial whose SampleFraction is exactly
// the covered shards' record share, with the request's own applied_seq
// preserved.
func TestShardedBrushDegradesOnStalledShard(t *testing.T) {
	leakcheck.Check(t)
	const stalled = 2
	faults := make([]*fault.Injector, 4)
	faults[stalled] = fault.New(fault.Profile{Name: "wedge", StallProb: 1, StallDelay: 5 * time.Second}, 11)
	srv, ts := shardTestServer(t, 8000, Config{
		Workers:        2,
		Shards:         4,
		ShardFaults:    faults,
		Deadlines:      true,
		DegradeAfter:   80 * time.Millisecond,
		BrushCacheSize: -1, // force the partial tier; the cache tier would win
	})

	coord := srv.coord.(*shard.Coordinator)
	wantFrac := float64(0)
	for i := 0; i < coord.NumShards(); i++ {
		if i != stalled {
			wantFrac += float64(coord.Replica(i).Table.NumRows())
		}
	}
	wantFrac /= float64(coord.Records())

	req := BrushRequest{Session: "chaos", Seq: 5, Ranges: make([]*[2]float64, 3)}
	start := time.Now()
	st, body := postJSON(t, ts.URL+"/v1/brush", req)
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("brush took %v with a wedged shard", el)
	}
	if st.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", st.StatusCode, body)
	}
	var resp BrushResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Tier != "partial" {
		t.Fatalf("tier %q degraded=%v, want a degraded partial", resp.Tier, resp.Degraded)
	}
	if resp.SampleFraction != wantFrac {
		t.Fatalf("sample fraction %g, want %g", resp.SampleFraction, wantFrac)
	}
	if resp.AppliedSeq != 5 {
		t.Fatalf("applied seq %d, want 5", resp.AppliedSeq)
	}
	// The scaled total estimates the full dataset from the covered share.
	if resp.Total <= 0 {
		t.Fatalf("partial total %d", resp.Total)
	}
	if st := srv.Stats(); st.Degraded == 0 || st.Deadlines == 0 {
		t.Fatalf("registry degraded=%d deadlines=%d, want both > 0", st.Degraded, st.Deadlines)
	}

	// Heal the shard: the next brush is exact again and sequence order
	// holds across the tier change.
	faults[stalled].SetProfile(fault.Profile{})
	req.Seq = 6
	st, body = postJSON(t, ts.URL+"/v1/brush", req)
	if st.StatusCode != http.StatusOK {
		t.Fatalf("healed status %d: %s", st.StatusCode, body)
	}
	var healed BrushResponse
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Degraded || healed.Tier != "exact" {
		t.Fatalf("healed tier %q degraded=%v", healed.Tier, healed.Degraded)
	}
	if healed.AppliedSeq != 6 {
		t.Fatalf("healed applied seq %d", healed.AppliedSeq)
	}
	if srv.Stats().Regressions != 0 {
		t.Fatal("sequence regression across tier change")
	}
}

// TestShardLoadgenRace drives 32 concurrent synthetic users through the
// full HTTP stack of a 4-shard server (run under -race in CI): every
// request answered, applied sequences monotonic, every session ends on its
// latest state — the same invariants as the unsharded loadgen proof, now
// with scatter-gather underneath.
func TestShardLoadgenRace(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen integration in -short mode")
	}
	leakcheck.Check(t)
	srv, ts := shardTestServer(t, 50000, Config{
		Workers: 4, QueueDepth: 8, ExecDelay: 2 * time.Millisecond, Shards: 4,
	})

	report, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Users:       32,
		Adjustments: 4,
		MaxEvents:   40,
		Seed:        7,
		TimeScale:   0.02,
		Dims:        RoadLoadDims(),
		SQLEvery:    10,
		Table:       "dataroad",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Issued < 1000 {
		t.Errorf("issued %d queries, want >= 1000", report.Issued)
	}
	if report.Responded != report.Issued {
		t.Errorf("dropped responses: issued %d, responded %d", report.Issued, report.Responded)
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d, want 0", report.Errors)
	}
	if report.Server.Regressions != 0 {
		t.Errorf("per-session sequence regressions = %d, want 0", report.Server.Regressions)
	}
	for _, u := range report.Users {
		if !u.GotLatest {
			t.Errorf("%s: final applied seq %d < latest issued %d", u.Session, u.FinalSeq, u.MaxSeq)
		}
	}
	if report.Server.Coalesced == 0 {
		t.Error("coalesced counter is zero")
	}
	t.Logf("sharded: issued=%d executed=%d coalesced=%d shed=%d lcv=%d p95=%.1fms wall=%v",
		report.Issued, report.Server.Executed, report.Server.Coalesced, report.Server.Shed,
		report.Server.LCV, report.P95MS, report.Wall)
	_ = srv
}
