package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/engine"
	"repro/internal/obsv"
)

// dragBrushRanges is a template-stable drag over the road cube: fixed
// windows on y and z, a sliding quarter-width window on x.
func dragBrushRanges(step, steps int) []*[2]float64 {
	dims := RoadCubeDims()
	ranges := make([]*[2]float64, len(dims))
	for i, d := range dims {
		span := d.Hi - d.Lo
		if i == 0 {
			lo := d.Lo + span*0.75*float64(step%steps)/float64(steps)
			ranges[i] = &[2]float64{lo, lo + span*0.25}
		} else {
			ranges[i] = &[2]float64{d.Lo + span*0.2, d.Lo + span*0.8}
		}
	}
	return ranges
}

// TestPlannerBrushMatchesBaseline: a planner-enabled server and the legacy
// fixed-structure server return byte-identical brush responses across a
// drag (including the mid-session index swap-in), template jumps, and the
// resumed drag.
func TestPlannerBrushMatchesBaseline(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2})
	planSrv, plan := newTestServer(t, Config{Workers: 2, Planner: true, PlannerHotStreak: 3})

	const steps = 16
	seq := int64(0)
	post := func(tag string, req BrushRequest) {
		t.Helper()
		r1, b1 := postJSON(t, base.URL+"/v1/brush", req)
		r2, b2 := postJSON(t, plan.URL+"/v1/brush", req)
		if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d / %d (%s / %s)", tag, r1.StatusCode, r2.StatusCode, b1, b2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: planner response differs\nbaseline: %s\nplanner:  %s", tag, b1, b2)
		}
	}
	for step := 0; step < steps; step++ {
		post(fmt.Sprintf("drag %d", step), BrushRequest{
			Session: "drag", Seq: seq, Ranges: dragBrushRanges(step, steps), Moved: 0,
		})
		seq++
		if step == steps/2 {
			// Let the background materialization land so the back half of
			// the drag runs on the swapped-in index.
			planSrv.Planner().WaitBuilds()
		}
	}
	// Template jumps: a different moved dimension, then partial filters.
	jump := dragBrushRanges(3, steps)
	post("jump moved", BrushRequest{Session: "drag", Seq: seq, Ranges: jump, Moved: 1})
	seq++
	partial := append([]*[2]float64(nil), jump...)
	partial[2] = nil // unfiltered dimension
	post("jump partial", BrushRequest{Session: "drag", Seq: seq, Ranges: partial, Moved: 0})
	seq++
	post("resume drag", BrushRequest{Session: "drag", Seq: seq, Ranges: dragBrushRanges(2, steps), Moved: 0})

	st := planSrv.Stats()
	if st.Planner == nil {
		t.Fatal("planner stats missing")
	}
	if st.Planner.Materializations == 0 {
		t.Error("sustained drag never materialized its template")
	}
	if st.Planner.Choices["mat-index"] == 0 {
		t.Error("materialized index never chosen after the swap-in")
	}
}

// TestPlannerLazyPrefixServer: with the prefix-cube build deferred off
// startup, brush answers are still byte-identical to the eager server's,
// and the deferred build completes exactly once.
func TestPlannerLazyPrefixServer(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2})
	lazySrv, lazy := newTestServer(t, Config{Workers: 2, Planner: true, PlannerLazyPrefix: true})

	for step := 0; step < 4; step++ {
		req := BrushRequest{Session: "s", Seq: int64(step), Ranges: dragBrushRanges(step, 8), Moved: 0}
		_, b1 := postJSON(t, base.URL+"/v1/brush", req)
		_, b2 := postJSON(t, lazy.URL+"/v1/brush", req)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("step %d: lazy-prefix response differs\nbaseline: %s\nlazy:     %s", step, b1, b2)
		}
		if step == 1 {
			lazySrv.Planner().WaitBuilds()
		}
	}
	if n := lazySrv.Stats().Planner.PrefixBuilds; n != 1 {
		t.Errorf("prefix builds = %d, want 1", n)
	}
}

// TestPlannerStatsExposed: the planner section reaches both /metrics
// representations — the JSON Stats carries every structure's choice
// counter, and the Prometheus exposition is valid text format 0.0.4
// including planner_choice_total and the brush cache-miss counter.
func TestPlannerStatsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Planner: true})

	for step := 0; step < 3; step++ {
		postJSON(t, ts.URL+"/v1/brush", BrushRequest{
			Session: "s", Seq: int64(step), Ranges: dragBrushRanges(step, 8), Moved: 0,
		})
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Planner == nil {
		t.Fatal("JSON stats carry no planner section")
	}
	for _, name := range []string{"engine-scan", "cross-full", "cross-delta", "dense-cube", "prefix-cube", "mat-index"} {
		if _, ok := st.Planner.Choices[name]; !ok {
			t.Errorf("choices missing structure %q (series must be stable)", name)
		}
	}
	if st.Planner.BudgetBytes == 0 {
		t.Error("budget bytes unset")
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`idevald_planner_choice_total{structure="prefix-cube"}`,
		`idevald_planner_choice_total{structure="mat-index"}`,
		"idevald_planner_materializations_total",
		"idevald_planner_index_bytes",
		"idevald_brush_cache_misses_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPlannerConfigRejected: the planner refuses configurations it cannot
// honor — sharded serving owns the brush path, and a cube is required.
func TestPlannerConfigRejected(t *testing.T) {
	backends, err := RoadBackends(1, testRows, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(backends, Config{Planner: true, Shards: 2}); err == nil {
		t.Error("planner + shards accepted")
	}
	noCube := backends
	noCube.Cube = nil
	if _, err := New(noCube, Config{Planner: true}); err == nil {
		t.Error("planner without a cube accepted")
	}
}
