package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/obsv"
	"repro/internal/tracefmt"
)

// TestConcurrentScrapeRace is the observability layer's integration proof,
// meant to run under -race: while the 32-user load from TestLoadgenRace
// drives the full HTTP stack, scraper goroutines hammer /metrics (JSON and
// Prometheus) and /v1/trace the whole time. Every scrape must succeed and
// parse, every Prometheus body must validate against the exposition
// format, and the load's own guarantees must still hold. Wall-clock scrape
// latency is logged, not asserted — under -race on a small CI host it
// measures the scheduler, not the server; the lock-hold bound the
// sort-under-lock bug violated is pinned by TestSnapshotDoesNotStallRecorders
// under controlled conditions.
func TestConcurrentScrapeRace(t *testing.T) {
	if testing.Short() {
		t.Skip("scrape integration in -short mode")
	}
	leakcheck.Check(t)
	backends, err := RoadBackends(1, 50000, engine.ProfileMemory)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(backends, Config{Workers: 4, QueueDepth: 8, ExecDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})

	var stop atomic.Bool
	var scrapes, promScrapes, traceScrapes atomic.Int64
	var worstNS atomic.Int64
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(url string) ([]byte, error) {
		t0 := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = &scrapeStatusError{url: url, status: resp.StatusCode}
		}
		if d := int64(time.Since(t0)); d > worstNS.Load() {
			worstNS.Store(d)
		}
		return body, err
	}

	const scrapers = 3
	var wg sync.WaitGroup
	for w := 0; w < scrapers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if body, err := get(ts.URL + "/metrics"); err != nil {
					fail(err)
				} else if err := json.Unmarshal(body, &Stats{}); err != nil {
					fail(err)
				}
				scrapes.Add(1)
				if body, err := get(ts.URL + "/metrics?format=prometheus"); err != nil {
					fail(err)
				} else if err := obsv.ValidateExposition(body); err != nil {
					fail(err)
				}
				promScrapes.Add(1)
				if body, err := get(ts.URL + "/v1/trace"); err != nil {
					fail(err)
				} else if _, err := tracefmt.ReadTraceRecords(bytes.NewReader(body)); err != nil {
					fail(err)
				}
				traceScrapes.Add(1)
			}
		}()
	}

	report, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Users:       32,
		Adjustments: 4,
		MaxEvents:   40,
		Seed:        7,
		TimeScale:   0.02,
		Dims:        RoadLoadDims(),
		SQLEvery:    10,
		Table:       "dataroad",
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if firstErr != nil {
		t.Fatalf("scrape failed under load: %v", firstErr)
	}

	if report.Responded != report.Issued {
		t.Errorf("dropped responses: issued %d, responded %d", report.Issued, report.Responded)
	}
	if report.Server.Regressions != 0 {
		t.Errorf("per-session sequence regressions = %d, want 0", report.Server.Regressions)
	}
	if scrapes.Load() == 0 || promScrapes.Load() == 0 || traceScrapes.Load() == 0 {
		t.Errorf("scrapers starved: json=%d prom=%d trace=%d",
			scrapes.Load(), promScrapes.Load(), traceScrapes.Load())
	}
	// The load ran with scrapers attached; the traced stage counts must
	// account for every response the server produced.
	st := srv.Stats()
	if len(st.Stages) == 0 {
		t.Fatal("no stage breakdown in stats")
	}
	if exec := st.Stages["execute"]; exec.Count == 0 {
		t.Error("execute stage has no observations after a full load")
	}
	t.Logf("scrapes: json=%d prom=%d trace=%d worst=%v; stages=%d lcv_by_stage=%v",
		scrapes.Load(), promScrapes.Load(), traceScrapes.Load(),
		time.Duration(worstNS.Load()), len(st.Stages), st.LCVByStage)
}

type scrapeStatusError struct {
	url    string
	status int
}

func (e *scrapeStatusError) Error() string {
	return "scrape " + e.url + ": unexpected status " + http.StatusText(e.status)
}
