package serve

import (
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker guarding the backend. A
// stalling or erroring backend trips it open after threshold consecutive
// failures; while open, requests are rejected at admission with 503 +
// Retry-After instead of piling onto the queue behind a backend that cannot
// keep up (the queue-collapse mode the paper's Figure 2 cascade describes).
// After the cooldown one probe request is let through half-open: success
// closes the breaker, failure reopens it for another cooldown.
//
// The breaker has no background goroutine — state advances lazily on the
// clock readings its callers pass in, which keeps Drain's "no goroutines
// left behind" guarantee trivial.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip it; <= 0 disables
	cooldown  time.Duration // open period before the half-open probe

	consecutive int
	openUntil   time.Time // zero when closed
	probing     bool      // half-open probe in flight
	trips       int64
	rejects     int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed. When it may not, retryAfter
// is the suggested client backoff (the remaining cooldown, floored at one
// interval so a Retry-After header never rounds to zero).
func (b *breaker) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true, 0
	}
	if now.Before(b.openUntil) {
		b.rejects++
		ra := b.openUntil.Sub(now)
		if ra < time.Second {
			ra = time.Second
		}
		return false, ra
	}
	// Cooldown elapsed: admit exactly one half-open probe.
	if b.probing {
		b.rejects++
		return false, b.cooldown
	}
	b.probing = true
	return true, 0
}

// success records a completed backend operation and closes the breaker.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed backend operation, tripping or re-opening the
// breaker as appropriate.
func (b *breaker) failure(now time.Time) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		// The half-open probe failed: straight back to open.
		b.probing = false
		b.openUntil = now.Add(b.cooldown)
		b.trips++
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold && b.openUntil.IsZero() {
		b.openUntil = now.Add(b.cooldown)
		b.consecutive = 0
		b.trips++
	}
}

// stats returns the trip and reject counts.
func (b *breaker) stats() (trips, rejects int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.rejects
}

// isOpen reports whether the breaker currently rejects (for /readyz).
func (b *breaker) isOpen(now time.Time) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && now.Before(b.openUntil)
}
