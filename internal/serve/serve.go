// Package serve is the real network serving layer over the repo's
// backends: HTTP/JSON handlers for SQL queries (internal/engine),
// crossfilter brush updates (internal/datacube), and map-tile fetches,
// with per-session state keyed by a session token.
//
// The server reproduces the paper's §3.1.1 latency components as
// production plumbing rather than a virtual-clock model:
//
//   - network: real sockets — the handler's transport;
//   - query scheduling: a bounded worker pool behind an admission queue.
//     When the queue is full the request is shed with a fast 429 instead
//     of joining the Figure 2 cascade;
//   - query execution: the engine or cube itself;
//   - per-session single-flight coalescing: a newer brush supersedes a
//     queued stale one, the serving-side analog of opt.ReplaySkip
//     (Algorithm 1) — every session still receives its latest result.
//
// Online metrics (LCV against a configurable latency constraint, QIF,
// queue depth, latency percentiles, shed count) are exposed at /metrics;
// /healthz reports liveness; request completions are logged in tracefmt
// schema; Drain stops admission and waits for in-flight work on SIGTERM.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datacube"
	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/storage"
	"repro/internal/tracefmt"
	"repro/internal/widget"
)

// Config tunes the serving layer's admission and scheduling plumbing.
type Config struct {
	// Workers is the execution pool size; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is shed with HTTP 429. 0 means 64.
	QueueDepth int
	// Constraint is the wall-clock latency constraint the registry
	// evaluates; 0 means metrics.DefaultConstraint.
	Constraint time.Duration
	// ExecDelay adds fixed wall time to every execution, standing in for a
	// slower backend in overload experiments and tests. 0 disables it.
	ExecDelay time.Duration
	// Log, when non-nil, receives one tracefmt.ServeRecord JSON line per
	// completed request.
	Log io.Writer
	// TileCacheSize bounds the /v1/tiles LRU result cache (entries keyed
	// by dataset and tile). 0 means 1024; negative disables caching.
	TileCacheSize int
}

// Backends are the data systems the server fronts. Engine serves /v1/query,
// Cube serves /v1/brush, and Tiles (a table with latitude/longitude
// columns named TileLat/TileLng) serves /v1/tiles. Nil backends make the
// corresponding endpoint respond 501.
type Backends struct {
	Engine  *engine.Engine
	Cube    *datacube.Cube
	Tiles   *storage.Table
	TileLat string
	TileLng string
}

// Server is the HTTP serving layer. Create with New, expose with Handler,
// and stop with Drain.
type Server struct {
	cfg Config
	reg *Registry

	eng     *engine.Engine
	cube    *datacube.Cube
	prefix  *datacube.PrefixCube
	tiles   *storage.Table
	tileLat *storage.Column
	tileLng *storage.Column

	tileMu    sync.Mutex
	tileCache *opt.ResultLRU

	mux      *http.ServeMux
	queue    chan func()
	wg       sync.WaitGroup
	inflight atomic.Int64
	nextID   atomic.Int64
	start    time.Time

	drainMu  sync.RWMutex
	draining bool

	sessMu   sync.Mutex
	sessions map[string]*sessionState

	logMu sync.Mutex
}

// sessionState is the per-session serving state: the coalescing slot, the
// latest filter snapshot, the applied high-water mark, and the in-flight
// requests not yet counted as LCV violations.
type sessionState struct {
	mu sync.Mutex

	// Brush coalescing: slot holds the waiters of the next execution;
	// running marks an execution (or run-to-idle loop) in progress. latest
	// is the highest-seq brush snapshot seen — executions always apply it,
	// so applied sequence numbers are monotonic per session.
	slot    *brushTask
	running bool
	latest  BrushRequest
	lastSeq int64
	applied int64

	// uncounted holds request ids in flight that have not yet been counted
	// as latency-constraint violations; they are counted (and cleared) the
	// moment the session issues its next request — Figure 2's definition,
	// evaluated online.
	uncounted map[int64]struct{}
}

type brushTask struct {
	waiters []*brushWaiter
}

type brushWaiter struct {
	id    int64
	seq   int64
	start time.Time
	ch    chan brushOutcome
}

type brushOutcome struct {
	resp *BrushResponse
	err  error
}

// New builds the server and starts its worker pool.
func New(b Backends, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	tileCacheSize := cfg.TileCacheSize
	if tileCacheSize == 0 {
		tileCacheSize = 1024
	}
	s := &Server{
		cfg:       cfg,
		reg:       NewRegistry(cfg.Constraint),
		eng:       b.Engine,
		cube:      b.Cube,
		tiles:     b.Tiles,
		queue:     make(chan func(), cfg.QueueDepth),
		sessions:  make(map[string]*sessionState),
		tileCache: opt.NewResultLRU(tileCacheSize),
		start:     time.Now(),
	}
	if b.Cube != nil {
		// The summed-area form answers every brush in O(bins·2^(d-1))
		// lookups; the dense cube stays as the differential oracle.
		s.prefix = datacube.NewPrefix(b.Cube)
	}
	if b.Tiles != nil {
		s.tileLat = b.Tiles.Column(b.TileLat)
		s.tileLng = b.Tiles.Column(b.TileLng)
		if s.tileLat == nil || s.tileLng == nil {
			return nil, fmt.Errorf("serve: tile table %q lacks columns %q/%q", b.Tiles.Name, b.TileLat, b.TileLng)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/brush", s.handleBrush)
	s.mux.HandleFunc("/v1/tiles", s.handleTiles)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for task := range s.queue {
				s.inflight.Add(1)
				task()
				s.inflight.Add(-1)
			}
		}()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the online metrics registry.
func (s *Server) Registry() *Registry { return s.reg }

// Stats snapshots the online metrics.
func (s *Server) Stats() Stats {
	return s.reg.snapshot(len(s.queue), int(s.inflight.Load()))
}

// Drain stops admission (new requests get 503), lets queued and in-flight
// work finish, and waits for the worker pool to exit or ctx to expire.
// It is the SIGTERM path of cmd/idevald and is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
	} else {
		s.draining = true
		close(s.queue)
		s.drainMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// isDraining reports whether admission has stopped.
func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// admit tries to enqueue a task, holding the drain lock so the queue
// cannot close mid-send. The error is ErrDraining or ErrQueueFull.
var (
	errDraining  = fmt.Errorf("serve: draining")
	errQueueFull = fmt.Errorf("serve: queue full")
)

func (s *Server) admit(task func()) error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.queue <- task:
		return nil
	default:
		return errQueueFull
	}
}

// session returns the named session's state, creating it on first use.
func (s *Server) session(name string) *sessionState {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess := s.sessions[name]
	if sess == nil {
		sess = &sessionState{lastSeq: -1, applied: -1, uncounted: make(map[int64]struct{})}
		s.sessions[name] = sess
	}
	return sess
}

// issueLocked performs the per-issue bookkeeping under sess.mu: every
// still-unfinished request of this session becomes an LCV violation (its
// result had not arrived when the user acted again), and this request
// joins the in-flight set.
func (s *Server) issueLocked(sess *sessionState, id int64) {
	s.reg.recordLCV(len(sess.uncounted))
	for k := range sess.uncounted {
		delete(sess.uncounted, k)
	}
	sess.uncounted[id] = struct{}{}
}

// finish removes a completed request from the session's in-flight set and
// records its user-perceived latency.
func (s *Server) finish(sess *sessionState, id int64, start time.Time) {
	sess.mu.Lock()
	delete(sess.uncounted, id)
	sess.mu.Unlock()
	s.reg.recordLatency(time.Since(start))
}

// --- request log ------------------------------------------------------------

func (s *Server) logRequest(session string, seq int64, kind string, status int, start time.Time, appliedSeq int64, coalesced bool) {
	if s.cfg.Log == nil {
		return
	}
	rec := tracefmt.ServeRecord{
		TimestampMS: time.Since(s.start).Milliseconds(),
		Session:     session,
		Seq:         seq,
		Kind:        kind,
		Status:      status,
		LatencyMS:   float64(time.Since(start)) / float64(time.Millisecond),
		AppliedSeq:  appliedSeq,
		Coalesced:   coalesced,
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	_ = tracefmt.WriteServeTrace(s.cfg.Log, []tracefmt.ServeRecord{rec})
}

// --- /v1/query --------------------------------------------------------------

// QueryRequest is a SQL query against the engine backend.
type QueryRequest struct {
	Session string `json:"session"`
	Seq     int64  `json:"seq"`
	SQL     string `json:"sql"`
}

// QueryResponse carries the materialized result.
type QueryResponse struct {
	Seq     int64    `json:"seq"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	ModelMS float64  `json:"model_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.eng == nil {
		httpError(w, http.StatusNotImplemented, "no engine backend")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Session == "" || req.SQL == "" {
		httpError(w, http.StatusBadRequest, "want JSON {session, seq, sql}")
		return
	}
	start := time.Now()
	id := s.nextID.Add(1)
	sess := s.session(req.Session)

	sess.mu.Lock()
	s.issueLocked(sess, id)
	sess.mu.Unlock()
	s.reg.recordIssue(start)

	type outcome struct {
		res *engine.Result
		err error
	}
	ch := make(chan outcome, 1)
	err := s.admit(func() {
		res, err := s.eng.Query(req.SQL)
		if s.cfg.ExecDelay > 0 {
			time.Sleep(s.cfg.ExecDelay)
		}
		s.reg.recordExec()
		ch <- outcome{res, err}
	})
	if err != nil {
		status := http.StatusTooManyRequests
		if err == errDraining {
			status = http.StatusServiceUnavailable
		} else {
			s.reg.recordShed()
		}
		sess.mu.Lock()
		delete(sess.uncounted, id)
		sess.mu.Unlock()
		httpError(w, status, err.Error())
		s.logRequest(req.Session, req.Seq, "query", status, start, 0, false)
		return
	}
	out := <-ch
	s.finish(sess, id, start)
	if out.err != nil {
		s.reg.recordError()
		httpError(w, http.StatusBadRequest, out.err.Error())
		s.logRequest(req.Session, req.Seq, "query", http.StatusBadRequest, start, 0, false)
		return
	}
	resp := QueryResponse{
		Seq:     req.Seq,
		Columns: out.res.Columns,
		ModelMS: float64(out.res.Stats.ModelCost) / float64(time.Millisecond),
	}
	resp.Rows = make([][]any, len(out.res.Rows))
	for i, row := range out.res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = valueJSON(v)
		}
		resp.Rows[i] = vals
	}
	writeJSON(w, http.StatusOK, resp)
	s.logRequest(req.Session, req.Seq, "query", http.StatusOK, start, req.Seq, false)
}

func valueJSON(v storage.Value) any {
	switch v.Type {
	case storage.String:
		return v.S
	case storage.Int64:
		return v.I
	default:
		return v.F
	}
}

// --- /v1/brush --------------------------------------------------------------

// BrushRequest is one crossfilter brush update: the full filter state
// snapshot at issue time (nil entries mean unfiltered), and the index of
// the dimension that moved. Carrying the whole state is what makes
// coalescing safe: the latest snapshot subsumes every superseded one.
type BrushRequest struct {
	Session string        `json:"session"`
	Seq     int64         `json:"seq"`
	Ranges  []*[2]float64 `json:"ranges"`
	Moved   int           `json:"moved"`
}

// BrushResponse is the coordinated-view result: every dimension's
// histogram under the applied filter state, and the passing-record total.
// AppliedSeq is the sequence number of the snapshot that executed; it is
// at least the request's own Seq, and strictly greater when the request
// was coalesced into a newer one.
type BrushResponse struct {
	AppliedSeq int64     `json:"applied_seq"`
	Coalesced  bool      `json:"coalesced"`
	Total      int64     `json:"total"`
	Histograms [][]int64 `json:"histograms"`
}

func (s *Server) handleBrush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cube == nil {
		httpError(w, http.StatusNotImplemented, "no cube backend")
		return
	}
	var req BrushRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Session == "" {
		httpError(w, http.StatusBadRequest, "want JSON {session, seq, ranges, moved}")
		return
	}
	if len(req.Ranges) != s.cube.NumDims() {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("want %d ranges, got %d", s.cube.NumDims(), len(req.Ranges)))
		return
	}
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, errDraining.Error())
		return
	}
	start := time.Now()
	id := s.nextID.Add(1)
	sess := s.session(req.Session)
	waiter := &brushWaiter{id: id, seq: req.Seq, start: start, ch: make(chan brushOutcome, 1)}
	s.reg.recordIssue(start)

	sess.mu.Lock()
	s.issueLocked(sess, id)
	if req.Seq > sess.lastSeq {
		sess.lastSeq = req.Seq
		sess.latest = req
	}
	var admitErr error
	switch {
	case sess.slot != nil:
		// A pending execution exists: this request rides along with it and
		// one backend execution is saved.
		sess.slot.waiters = append(sess.slot.waiters, waiter)
		s.reg.recordCoalesced()
	case sess.running:
		// An execution is in progress; park in a fresh slot that the
		// run-to-idle loop will pick up without re-entering admission.
		sess.slot = &brushTask{waiters: []*brushWaiter{waiter}}
	default:
		sess.slot = &brushTask{waiters: []*brushWaiter{waiter}}
		admitErr = s.admit(func() { s.runBrushes(sess) })
		if admitErr != nil {
			sess.slot = nil
		}
	}
	if admitErr != nil {
		delete(sess.uncounted, id)
		sess.mu.Unlock()
		status := http.StatusTooManyRequests
		if admitErr == errDraining {
			status = http.StatusServiceUnavailable
		} else {
			s.reg.recordShed()
		}
		httpError(w, status, admitErr.Error())
		s.logRequest(req.Session, req.Seq, "brush", status, start, 0, false)
		return
	}
	sess.mu.Unlock()

	out := <-waiter.ch
	s.finish(sess, id, start)
	if out.err != nil {
		s.reg.recordError()
		httpError(w, http.StatusInternalServerError, out.err.Error())
		s.logRequest(req.Session, req.Seq, "brush", http.StatusInternalServerError, start, 0, false)
		return
	}
	resp := *out.resp
	resp.Coalesced = resp.AppliedSeq > req.Seq
	writeJSON(w, http.StatusOK, resp)
	s.logRequest(req.Session, req.Seq, "brush", http.StatusOK, start, resp.AppliedSeq, resp.Coalesced)
}

// runBrushes executes the session's pending brushes to idle: each pass
// snapshots the latest filter state and answers every waiter that
// accumulated since the previous pass with that one result. Per-session
// execution is serialized here, which is what makes applied sequence
// numbers monotonic.
func (s *Server) runBrushes(sess *sessionState) {
	for {
		sess.mu.Lock()
		bt := sess.slot
		if bt == nil {
			sess.running = false
			sess.mu.Unlock()
			return
		}
		sess.slot = nil
		sess.running = true
		payload := sess.latest
		sess.mu.Unlock()

		resp, err := s.execBrush(payload)
		if s.cfg.ExecDelay > 0 {
			time.Sleep(s.cfg.ExecDelay)
		}
		s.reg.recordExec()

		sess.mu.Lock()
		if payload.Seq < sess.applied {
			s.reg.recordRegression()
		} else {
			sess.applied = payload.Seq
		}
		sess.mu.Unlock()

		for _, wt := range bt.waiters {
			wt.ch <- brushOutcome{resp: resp, err: err}
		}
	}
}

// execBrush answers the coordinated-view query on the summed-area cube:
// all histograms plus the total under the snapshot's filters, in
// O(bins·2^(d-1)) lookups per histogram instead of a filtered cell-box
// walk. One flat backing array serves every histogram, so the hot path
// allocates only what the JSON response itself needs.
func (s *Server) execBrush(req BrushRequest) (*BrushResponse, error) {
	ndims := s.prefix.NumDims()
	filters := make([]*datacube.Range, ndims)
	rangeBuf := make([]datacube.Range, ndims)
	for i, rg := range req.Ranges {
		if rg != nil {
			rangeBuf[i] = datacube.Range{Lo: rg[0], Hi: rg[1]}
			filters[i] = &rangeBuf[i]
		}
	}
	resp := &BrushResponse{AppliedSeq: req.Seq}
	resp.Histograms = make([][]int64, ndims)
	bins := 0
	for d := 0; d < ndims; d++ {
		bins += s.prefix.Dim(d).Bins
	}
	backing := make([]int64, bins)
	for d := 0; d < ndims; d++ {
		nb := s.prefix.Dim(d).Bins
		resp.Histograms[d] = backing[:nb:nb]
		backing = backing[nb:]
		if err := s.prefix.HistogramInto(d, filters, resp.Histograms[d]); err != nil {
			return nil, err
		}
	}
	total, err := s.prefix.Count(filters)
	if err != nil {
		return nil, err
	}
	resp.Total = total
	return resp, nil
}

// --- /v1/tiles --------------------------------------------------------------

// TileResponse is one map-tile fetch: the record count inside the tile's
// geographic bounds — the aggregate a tile renderer needs.
type TileResponse struct {
	Seq   int64  `json:"seq"`
	Key   string `json:"key"`
	Count int64  `json:"count"`
}

// tileBounds returns the web-mercator lat/lng bounds of tile z/x/y.
func tileBounds(t widget.Tile) (latLo, latHi, lngLo, lngHi float64) {
	n := math.Exp2(float64(t.Z))
	lngLo = float64(t.X)/n*360 - 180
	lngHi = float64(t.X+1)/n*360 - 180
	latHi = 180 / math.Pi * math.Atan(math.Sinh(math.Pi*(1-2*float64(t.Y)/n)))
	latLo = 180 / math.Pi * math.Atan(math.Sinh(math.Pi*(1-2*float64(t.Y+1)/n)))
	return latLo, latHi, lngLo, lngHi
}

func (s *Server) handleTiles(w http.ResponseWriter, r *http.Request) {
	if s.tiles == nil {
		httpError(w, http.StatusNotImplemented, "no tile backend")
		return
	}
	q := r.URL.Query()
	session := q.Get("session")
	if session == "" {
		httpError(w, http.StatusBadRequest, "session required")
		return
	}
	seq, _ := strconv.ParseInt(q.Get("seq"), 10, 64)
	var tile widget.Tile
	var err error
	if key := q.Get("key"); key != "" {
		tile, err = widget.ParseTile(key)
	} else {
		tile.Z, err = strconv.Atoi(q.Get("z"))
		if err == nil {
			tile.X, err = strconv.Atoi(q.Get("x"))
		}
		if err == nil {
			tile.Y, err = strconv.Atoi(q.Get("y"))
		}
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "want key=z/x/y or z=&x=&y=")
		return
	}
	start := time.Now()
	id := s.nextID.Add(1)
	sess := s.session(session)
	sess.mu.Lock()
	s.issueLocked(sess, id)
	sess.mu.Unlock()
	s.reg.recordIssue(start)

	// Tile counts are immutable per (dataset, tile), so a cache hit skips
	// the admission queue and the scan entirely.
	cacheKey := s.tiles.Name + "|" + tile.String()
	s.tileMu.Lock()
	cached, hit := s.tileCache.Get(cacheKey)
	s.tileMu.Unlock()
	if hit {
		s.reg.recordTileHit()
		count := cached.(int64)
		s.finish(sess, id, start)
		writeJSON(w, http.StatusOK, TileResponse{Seq: seq, Key: tile.String(), Count: count})
		s.logRequest(session, seq, "tile", http.StatusOK, start, seq, false)
		return
	}
	s.reg.recordTileMiss()

	ch := make(chan int64, 1)
	admitErr := s.admit(func() {
		latLo, latHi, lngLo, lngHi := tileBounds(tile)
		var count int64
		for i := 0; i < s.tiles.NumRows(); i++ {
			lat, lng := s.tileLat.Float(i), s.tileLng.Float(i)
			if lat >= latLo && lat < latHi && lng >= lngLo && lng < lngHi {
				count++
			}
		}
		if s.cfg.ExecDelay > 0 {
			time.Sleep(s.cfg.ExecDelay)
		}
		s.reg.recordExec()
		s.tileMu.Lock()
		s.tileCache.Put(cacheKey, count)
		s.tileMu.Unlock()
		ch <- count
	})
	if admitErr != nil {
		status := http.StatusTooManyRequests
		if admitErr == errDraining {
			status = http.StatusServiceUnavailable
		} else {
			s.reg.recordShed()
		}
		sess.mu.Lock()
		delete(sess.uncounted, id)
		sess.mu.Unlock()
		httpError(w, status, admitErr.Error())
		s.logRequest(session, seq, "tile", status, start, 0, false)
		return
	}
	count := <-ch
	s.finish(sess, id, start)
	writeJSON(w, http.StatusOK, TileResponse{Seq: seq, Key: tile.String(), Count: count})
	s.logRequest(session, seq, "tile", http.StatusOK, start, seq, false)
}

// --- /metrics and /healthz --------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.isDraining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]string{"status": state})
}

// --- helpers ----------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
