// Package serve is the real network serving layer over the repo's
// backends: HTTP/JSON handlers for SQL queries (internal/engine),
// crossfilter brush updates (internal/datacube), and map-tile fetches,
// with per-session state keyed by a session token.
//
// The server reproduces the paper's §3.1.1 latency components as
// production plumbing rather than a virtual-clock model:
//
//   - network: real sockets — the handler's transport;
//   - query scheduling: a bounded worker pool behind an admission queue.
//     When the queue is full the request is shed with a fast 429 instead
//     of joining the Figure 2 cascade;
//   - query execution: the engine or cube itself;
//   - per-session single-flight coalescing: a newer brush supersedes a
//     queued stale one, the serving-side analog of opt.ReplaySkip
//     (Algorithm 1) — every session still receives its latest result.
//
// Online metrics (LCV against a configurable latency constraint, QIF,
// queue depth, latency percentiles, shed count) are exposed at /metrics;
// /healthz reports liveness; request completions are logged in tracefmt
// schema; Drain stops admission and waits for in-flight work on SIGTERM.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/datacube"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obsv"
	"repro/internal/opt"
	"repro/internal/planner"
	"repro/internal/progressive"
	"repro/internal/shard"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/tracefmt"
	"repro/internal/widget"
)

// Config tunes the serving layer's admission and scheduling plumbing.
type Config struct {
	// Workers is the execution pool size; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is shed with HTTP 429. 0 means 64.
	QueueDepth int
	// Constraint is the wall-clock latency constraint the registry
	// evaluates; 0 means metrics.DefaultConstraint.
	Constraint time.Duration
	// ExecDelay adds fixed wall time to every execution, standing in for a
	// slower backend in overload experiments and tests. 0 disables it.
	ExecDelay time.Duration
	// Log, when non-nil, receives one tracefmt.ServeRecord JSON line per
	// completed request.
	Log io.Writer
	// TileCacheSize bounds the /v1/tiles LRU result cache (entries keyed
	// by dataset and tile). 0 means 1024; negative disables caching.
	TileCacheSize int

	// Deadlines enables deadline-aware execution with the degradation
	// ladder: each request's backend work runs under a context expiring
	// DegradeAfter past issue (queue wait included), and a blown budget
	// falls back exact → cached → progressive partial instead of running to
	// completion. Disabled, requests run to completion no matter the cost —
	// the chaos baseline.
	Deadlines bool
	// DegradeAfter is the per-request budget before degrading; 0 means
	// Constraint/2 (half the latency constraint spent trying for exact, the
	// rest reserved for the fallback and the response path).
	DegradeAfter time.Duration
	// Fault, when non-nil, injects the configured fault schedule into every
	// backend execution — the chaos harness hook.
	Fault *fault.Injector
	// MaxRetries bounds retry attempts after injected backend errors; 0
	// means 2, negative disables retries.
	MaxRetries int
	// RetryBase is the backoff base for retry attempt k (base·2^k, capped,
	// full jitter); 0 means 2ms.
	RetryBase time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (503 + Retry-After at admission); 0 means 8, negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open period before a half-open probe; 0 means
	// 250ms.
	BreakerCooldown time.Duration
	// BrushCacheSize bounds the ranges-keyed cache of exact brush answers
	// (the ladder's middle tier). 0 means 256; negative disables it.
	BrushCacheSize int
	// PartialRows is the sample size of the progressive partial tier; 0
	// means 32768 rows.
	PartialRows int

	// Planner enables the selection-aware materialization planner: every
	// brush is answered by the cheapest structure a per-structure cost
	// model predicts (materialized per-selection index, prefix cube, dense
	// cube, engine scan — all bit-identical), and hot drag templates get
	// dedicated indexes built off the hot path. Requires a cube with a
	// backing table (Backends.Tiles) carrying every cube dimension as a
	// numeric column; mutually exclusive with Shards > 1. The brush answer
	// cache moves into the planner's byte-budgeted store, shared with the
	// materialized indexes.
	Planner bool
	// PlannerBudget bounds the planner's shared store (indexes + cached
	// brush answers) in approximate resident bytes; 0 means
	// planner.DefaultBudget.
	PlannerBudget int64
	// PlannerHotStreak is how many consecutive same-template brushes a
	// session issues before its template is materialized; 0 means
	// planner.DefaultHotStreak.
	PlannerHotStreak int
	// PlannerLazyPrefix defers the summed-area cube build off the startup
	// path: the planner builds it in the background on first brush demand,
	// answering from the other structures meanwhile.
	PlannerLazyPrefix bool

	// Shards enables sharded scatter-gather serving: the cube's backing
	// table (Backends.Tiles) is partitioned across this many shard
	// replicas, each with its own prefix cube (and engine, when the
	// backends include one), and brush/histogram-query requests fan out to
	// every shard and merge by addition. 0 or 1 serves unsharded. Requires
	// a cube with a backing table whose columns include every cube
	// dimension.
	Shards int
	// ShardMode selects hash (default) or range partitioning.
	ShardMode shard.Mode
	// ShardWorkers is the goroutine-pool size per shard; 0 means 2.
	ShardWorkers int
	// ShardFaults optionally fault-gates individual shards (nil entries
	// inject nothing) — the chaos hook for wedging one shard while the
	// rest stay healthy. Independent of Fault, which gates whole requests.
	ShardFaults []*fault.Injector

	// Gatherer, when non-nil, replaces the in-process backends for the
	// brush path entirely: every brush scatter-gathers through it (the
	// process-level router hands one in, fronting supervised shard child
	// processes) and merges by addition exactly as the in-process
	// coordinator does. Requires GatherDims; mutually exclusive with
	// Shards > 1, Planner, and a Cube backend. The server owns the
	// gatherer's lifecycle: Drain closes it.
	Gatherer Gatherer
	// GatherDims are the served cube dimensions when a Gatherer is
	// configured — the global domains every shard child bins against.
	GatherDims []datacube.Dim
}

// Gatherer is the brush scatter-gather backend: fan one filter snapshot out
// to every shard, collect per-shard partial histograms, and report coverage.
// *shard.Coordinator implements it with in-process goroutine pools;
// router.Fleet implements it across supervised child processes — the serving
// layer's ladder, coalescing, and metrics are identical over either.
type Gatherer interface {
	// ScatterBrush scatters one brush snapshot. The session token lets
	// process-level implementations route with per-session affinity; a nil
	// ctx means no deadline (the gather blocks for full coverage).
	ScatterBrush(ctx context.Context, session string, filters []*datacube.Range) (*shard.Gather, error)
	// Close releases the gatherer's resources (worker pools, child
	// processes). Called once, from Drain.
	Close()
}

// histogramQuerier is the optional SQL fan-out face of a Gatherer: the
// in-process coordinator scatters histogram-shaped queries across shard
// engines. Gatherers without it (the process router) leave /v1/query to the
// local engine backend.
type histogramQuerier interface {
	QueryHistogram(ctx context.Context, query string) (*engine.Result, float64, bool, error)
}

// HealthReporter is optionally implemented by gatherers that supervise
// remote shard backends. Ready reports whether every shard can currently
// serve; detail is a JSON-marshalable per-shard breakdown (state,
// consecutive failures, last transition) that /readyz embeds so supervisors
// and tests can assert on why readiness flipped.
type HealthReporter interface {
	Health() (ready bool, detail any)
}

// Backends are the data systems the server fronts. Engine serves /v1/query,
// Cube serves /v1/brush, and Tiles (a table with latitude/longitude
// columns named TileLat/TileLng) serves /v1/tiles. Nil backends make the
// corresponding endpoint respond 501.
type Backends struct {
	Engine  *engine.Engine
	Cube    *datacube.Cube
	Tiles   *storage.Table
	TileLat string
	TileLng string
}

// Server is the HTTP serving layer. Create with New, expose with Handler,
// and stop with Drain.
type Server struct {
	cfg Config
	reg *Registry

	eng     *engine.Engine
	cube    *datacube.Cube
	prefix  *datacube.PrefixCube
	tiles   *storage.Table
	tileLat *storage.Column
	tileLng *storage.Column

	tileMu    sync.Mutex
	tileCache *opt.ResultLRU

	// Degradation ladder state: fault injector and circuit breaker guarding
	// backend executions, resolved retry/deadline knobs, the ranges-keyed
	// cache of exact brush answers, and the progressive executor for the
	// partial tier (nil when the cube has no backing table).
	fault        *fault.Injector
	brk          *breaker
	degradeAfter time.Duration
	maxRetries   int
	retryBase    time.Duration
	partialRows  int
	prog         *progressive.Executor
	cubeDims     []datacube.Dim
	coord        Gatherer
	storeStats   *colstore.TableStats
	plan         *planner.Planner
	brushMu      sync.Mutex
	brushCache   *opt.ResultLRU

	mux      *http.ServeMux
	queue    chan func()
	wg       sync.WaitGroup
	inflight atomic.Int64
	nextID   atomic.Int64
	start    time.Time

	drainMu  sync.RWMutex
	draining bool

	sessMu   sync.Mutex
	sessions map[string]*sessionState

	logMu sync.Mutex
}

// sessionState is the per-session serving state: the coalescing slot, the
// latest filter snapshot, the applied high-water mark, and the in-flight
// requests not yet counted as LCV violations.
type sessionState struct {
	mu sync.Mutex

	// Brush coalescing: slot holds the waiters of the next execution;
	// running marks an execution (or run-to-idle loop) in progress. latest
	// is the highest-seq brush snapshot seen — executions always apply it,
	// so applied sequence numbers are monotonic per session.
	slot    *brushTask
	running bool
	latest  BrushRequest
	lastSeq int64
	applied int64

	// uncounted holds the in-flight requests (by id, with their stage
	// traces) that have not yet been counted as latency-constraint
	// violations; they are counted (and cleared) the moment the session
	// issues its next request — Figure 2's definition, evaluated online.
	// Counting also marks the trace, so the violation is attributed to the
	// violating request's dominant stage when it finishes.
	uncounted map[int64]*obsv.Trace
}

type brushTask struct {
	waiters []*brushWaiter
}

type brushWaiter struct {
	id    int64
	seq   int64
	start time.Time
	tr    *obsv.Trace
	ch    chan brushOutcome
}

type brushOutcome struct {
	resp *BrushResponse
	err  error
}

// New builds the server and starts its worker pool.
func New(b Backends, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	tileCacheSize := cfg.TileCacheSize
	if tileCacheSize == 0 {
		tileCacheSize = 1024
	}
	s := &Server{
		cfg:       cfg,
		reg:       NewRegistry(cfg.Constraint),
		eng:       b.Engine,
		cube:      b.Cube,
		tiles:     b.Tiles,
		queue:     make(chan func(), cfg.QueueDepth),
		sessions:  make(map[string]*sessionState),
		tileCache: opt.NewResultLRU(tileCacheSize),
		start:     time.Now(),
		fault:     cfg.Fault,
	}
	s.degradeAfter = cfg.DegradeAfter
	if s.degradeAfter <= 0 {
		s.degradeAfter = s.reg.Constraint() / 2
	}
	s.maxRetries = cfg.MaxRetries
	if s.maxRetries == 0 {
		s.maxRetries = 2
	}
	s.retryBase = cfg.RetryBase
	if s.retryBase <= 0 {
		s.retryBase = 2 * time.Millisecond
	}
	s.partialRows = cfg.PartialRows
	if s.partialRows <= 0 {
		s.partialRows = 32768
	}
	breakerThreshold := cfg.BreakerThreshold
	if breakerThreshold == 0 {
		breakerThreshold = 8
	}
	breakerCooldown := cfg.BreakerCooldown
	if breakerCooldown <= 0 {
		breakerCooldown = 250 * time.Millisecond
	}
	s.brk = newBreaker(breakerThreshold, breakerCooldown)
	brushCacheSize := cfg.BrushCacheSize
	if brushCacheSize == 0 {
		brushCacheSize = 256
	}
	if brushCacheSize > 0 && !cfg.Planner {
		// Planner-enabled, brush answers live in the planner's shared
		// byte-budgeted store instead.
		s.brushCache = opt.NewResultLRU(brushCacheSize)
	}
	if b.Cube != nil {
		// The summed-area form answers every brush in O(bins·2^(d-1))
		// lookups; the dense cube stays as the differential oracle. With
		// the planner's lazy-prefix mode, this eager build is deferred to
		// the planner's background path instead.
		if !cfg.Planner || !cfg.PlannerLazyPrefix {
			s.prefix = datacube.NewPrefix(b.Cube)
		}
		for d := 0; d < b.Cube.NumDims(); d++ {
			s.cubeDims = append(s.cubeDims, b.Cube.Dim(d))
		}
		// The progressive partial tier samples the cube's backing table
		// directly; it needs every cube dimension as a numeric column.
		if b.Tiles != nil {
			usable := true
			for _, d := range s.cubeDims {
				col := b.Tiles.Column(d.Name)
				if col == nil || col.Type == storage.String {
					usable = false
					break
				}
			}
			if usable {
				s.prog = progressive.NewExecutor(b.Tiles, 1)
			}
		}
	}
	if b.Tiles != nil {
		s.tileLat = b.Tiles.Column(b.TileLat)
		s.tileLng = b.Tiles.Column(b.TileLng)
		if s.tileLat == nil || s.tileLng == nil {
			return nil, fmt.Errorf("serve: tile table %q lacks columns %q/%q", b.Tiles.Name, b.TileLat, b.TileLng)
		}
		// The tile path reads coordinates through Float, which panics on
		// string columns — reject the misconfiguration at build time
		// instead of on the first tile request.
		if s.tileLat.Type == storage.String || s.tileLng.Type == storage.String {
			return nil, fmt.Errorf("serve: tile columns %q/%q of table %q must be numeric", b.TileLat, b.TileLng, b.Tiles.Name)
		}
		// A frozen table's encoding breakdown is static; snapshot it once
		// and attach it to every /metrics response.
		if colstore.IsFrozen(b.Tiles) {
			st := colstore.StatsOf(b.Tiles)
			s.storeStats = &st
		}
	}
	if cfg.Planner {
		if cfg.Shards > 1 {
			// The planner's session-template tracking and shard scatter
			// both own the brush execution path; composing them is a
			// different design, not a config knob.
			return nil, fmt.Errorf("serve: planner and sharded serving are mutually exclusive")
		}
		if b.Cube == nil || b.Tiles == nil {
			return nil, fmt.Errorf("serve: planner needs a cube with a backing table")
		}
		pl, err := planner.New(b.Tiles, b.Cube, s.cubeDims, planner.Config{
			Budget:     cfg.PlannerBudget,
			HotStreak:  cfg.PlannerHotStreak,
			Prefix:     s.prefix,
			LazyPrefix: cfg.PlannerLazyPrefix,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: planner: %w", err)
		}
		s.plan = pl
	}
	if cfg.Shards > 1 {
		if b.Tiles == nil || len(s.cubeDims) == 0 {
			return nil, fmt.Errorf("serve: sharded serving needs a cube with a backing table")
		}
		opts := shard.Options{
			Shards:  cfg.Shards,
			Mode:    cfg.ShardMode,
			Workers: cfg.ShardWorkers,
			Faults:  cfg.ShardFaults,
		}
		if b.Engine != nil {
			opts.WithEngine = true
			opts.Profile = b.Engine.Profile()
		}
		coord, err := shard.New(b.Tiles, s.cubeDims, opts)
		if err != nil {
			return nil, fmt.Errorf("serve: shard coordinator: %w", err)
		}
		s.coord = coord
	}
	if cfg.Gatherer != nil {
		if cfg.Shards > 1 || cfg.Planner {
			return nil, fmt.Errorf("serve: an external gatherer is mutually exclusive with in-process shards and the planner")
		}
		if b.Cube != nil {
			return nil, fmt.Errorf("serve: an external gatherer replaces the cube backend; configure one or the other")
		}
		if len(cfg.GatherDims) == 0 {
			return nil, fmt.Errorf("serve: a gatherer needs GatherDims (the global cube dimensions)")
		}
		s.cubeDims = append([]datacube.Dim(nil), cfg.GatherDims...)
		s.coord = cfg.Gatherer
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/brush", s.handleBrush)
	s.mux.HandleFunc("/v1/tiles", s.handleTiles)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for task := range s.queue {
				s.inflight.Add(1)
				task()
				s.inflight.Add(-1)
			}
		}()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the online metrics registry.
func (s *Server) Registry() *Registry { return s.reg }

// Stats snapshots the online metrics.
func (s *Server) Stats() Stats {
	st := s.reg.snapshot(len(s.queue), int(s.inflight.Load()))
	st.BreakerTrips, _ = s.brk.stats()
	st.Store = s.storeStats
	if s.plan != nil {
		st.Planner = s.plan.Stats()
	}
	return st
}

// Planner returns the materialization planner, or nil when Config.Planner
// is off — the determinism hook for tests and benchmarks (WaitBuilds).
func (s *Server) Planner() *planner.Planner { return s.plan }

// Drain stops admission (new requests get 503), lets queued and in-flight
// work finish, and waits for the worker pool to exit or ctx to expire.
// It is the SIGTERM path of cmd/idevald and is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
	} else {
		s.draining = true
		close(s.queue)
		s.drainMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// The worker pool is gone, so no scatter can be in flight: the
		// shard pools can drain too, and the planner's background builds
		// can be waited out (no brush will ever trigger a new one).
		if s.coord != nil {
			s.coord.Close()
		}
		if s.plan != nil {
			s.plan.Close()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// isDraining reports whether admission has stopped.
func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// admit tries to enqueue a task, holding the drain lock so the queue
// cannot close mid-send. The error is ErrDraining or ErrQueueFull.
var (
	errDraining  = fmt.Errorf("serve: draining")
	errQueueFull = fmt.Errorf("serve: queue full")
)

func (s *Server) admit(task func()) error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.queue <- task:
		return nil
	default:
		return errQueueFull
	}
}

// session returns the named session's state, creating it on first use.
func (s *Server) session(name string) *sessionState {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess := s.sessions[name]
	if sess == nil {
		sess = &sessionState{lastSeq: -1, applied: -1, uncounted: make(map[int64]*obsv.Trace)}
		s.sessions[name] = sess
	}
	return sess
}

// issueLocked performs the per-issue bookkeeping under sess.mu: every
// still-unfinished request of this session becomes an LCV violation (its
// result had not arrived when the user acted again) and has its trace
// marked so the violation is attributed to a stage at finish, and this
// request joins the in-flight set.
func (s *Server) issueLocked(sess *sessionState, id int64, tr *obsv.Trace) {
	s.reg.recordLCV(len(sess.uncounted))
	for k, prev := range sess.uncounted {
		prev.MarkLCV()
		delete(sess.uncounted, k)
	}
	sess.uncounted[id] = tr
}

// finish removes a completed request from the session's in-flight set and
// records its user-perceived latency. After it returns, no later issue can
// mark this request's trace, so the trace is safe to Finish.
func (s *Server) finish(sess *sessionState, id int64, start time.Time) {
	sess.mu.Lock()
	delete(sess.uncounted, id)
	sess.mu.Unlock()
	s.reg.recordLatency(time.Since(start))
}

// done closes one request out: the trace's visited stages feed the stage
// histograms (and its LCV flag its dominant stage's attribution counter),
// the record joins the /v1/trace ring, and the request log gets its line.
// tr may be nil for requests rejected before a trace began.
func (s *Server) done(tr *obsv.Trace, session string, seq int64, kind string, status int, start time.Time, appliedSeq int64, coalesced bool) {
	s.reg.tracer.Finish(tr, status)
	s.logRequest(session, seq, kind, status, start, appliedSeq, coalesced)
}

// --- request log ------------------------------------------------------------

func (s *Server) logRequest(session string, seq int64, kind string, status int, start time.Time, appliedSeq int64, coalesced bool) {
	if s.cfg.Log == nil {
		return
	}
	rec := tracefmt.ServeRecord{
		TimestampMS: time.Since(s.start).Milliseconds(),
		Session:     session,
		Seq:         seq,
		Kind:        kind,
		Status:      status,
		LatencyMS:   float64(time.Since(start)) / float64(time.Millisecond),
		AppliedSeq:  appliedSeq,
		Coalesced:   coalesced,
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	_ = tracefmt.WriteServeTrace(s.cfg.Log, []tracefmt.ServeRecord{rec})
}

// --- /v1/query --------------------------------------------------------------

// QueryRequest is a SQL query against the engine backend.
type QueryRequest struct {
	Session string `json:"session"`
	Seq     int64  `json:"seq"`
	SQL     string `json:"sql"`
}

// QueryResponse carries the materialized result. Degraded marks a partial
// answer: the query blew its deadline budget and was answered from a
// bounded sample instead (SampleFraction of the table, counts scaled up) —
// only histogram-shaped queries degrade this way.
type QueryResponse struct {
	Seq            int64    `json:"seq"`
	Columns        []string `json:"columns"`
	Rows           [][]any  `json:"rows"`
	ModelMS        float64  `json:"model_ms"`
	Degraded       bool     `json:"degraded,omitempty"`
	SampleFraction float64  `json:"sample_fraction,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.eng == nil {
		httpError(w, http.StatusNotImplemented, "no engine backend")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Session == "" || req.SQL == "" {
		httpError(w, http.StatusBadRequest, "want JSON {session, seq, sql}")
		return
	}
	if !s.breakerAdmit(w, req.Session, req.Seq, "query") {
		return
	}
	start := time.Now()
	id := s.nextID.Add(1)
	tr := s.reg.tracer.Begin(req.Session, req.Seq, "query", start)
	sess := s.session(req.Session)

	sess.mu.Lock()
	s.issueLocked(sess, id, tr)
	sess.mu.Unlock()
	s.reg.recordIssue(start)

	// The execution context budgets the exact tier: deadline degradeAfter
	// past issue, so queue wait counts against it.
	execCtx := context.Background()
	if s.cfg.Deadlines {
		var cancel context.CancelFunc
		execCtx, cancel = context.WithDeadline(execCtx, start.Add(s.degradeAfter))
		defer cancel()
	}

	type outcome struct {
		res  *engine.Result
		frac float64 // covered record fraction; < 1 marks a sharded partial
		err  error
	}
	ch := make(chan outcome, 1)
	// The queue stage opens before admit: a successful admit hands the
	// trace to the worker (the queue send is the happens-before edge), and
	// the span from here to the worker's Enter(StageExecute) is queue wait.
	tr.Enter(obsv.StageQueue)
	err := s.admit(func() {
		tr.Enter(obsv.StageExecute)
		out := func() outcome {
			if err := s.faultGate(execCtx); err != nil {
				return outcome{err: err}
			}
			if hq, ok := s.coord.(histogramQuerier); ok {
				// Histogram-shaped queries scatter across the shard engines
				// and merge by addition; any other shape has no merge law
				// and runs on the unsharded engine below.
				tr.Enter(obsv.StageScatter)
				res, frac, shaped, err := hq.QueryHistogram(execCtx, req.SQL)
				if shaped {
					return outcome{res: res, frac: frac, err: err}
				}
			}
			res, err := s.eng.QueryCtx(execCtx, req.SQL)
			return outcome{res: res, frac: 1, err: err}
		}()
		if s.cfg.ExecDelay > 0 {
			time.Sleep(s.cfg.ExecDelay)
		}
		s.reg.recordExec()
		tr.Enter(obsv.StageMerge)
		ch <- out
	})
	if err != nil {
		status := http.StatusTooManyRequests
		if err == errDraining {
			status = http.StatusServiceUnavailable
		} else {
			s.reg.recordShed()
		}
		sess.mu.Lock()
		delete(sess.uncounted, id)
		sess.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, status, err.Error())
		s.done(tr, req.Session, req.Seq, "query", status, start, 0, false)
		return
	}
	out := <-ch
	s.finish(sess, id, start)
	resp := QueryResponse{Seq: req.Seq}
	if out.err != nil {
		if !isBackendFault(out.err) {
			// A real SQL/execution error: the backend is healthy, the query
			// is not.
			s.brk.success()
			s.reg.recordError()
			httpError(w, http.StatusBadRequest, out.err.Error())
			s.done(tr, req.Session, req.Seq, "query", http.StatusBadRequest, start, 0, false)
			return
		}
		if errors.Is(out.err, context.DeadlineExceeded) || errors.Is(out.err, context.Canceled) {
			s.reg.recordDeadline()
		}
		// Degrade tier: histogram-shaped queries answer from a bounded
		// sample, scaled to the full table.
		if degraded, frac := s.degradeQuery(req.SQL); degraded != nil {
			s.reg.recordDegraded()
			s.brk.success()
			resp.Columns = degraded.Columns
			resp.ModelMS = float64(degraded.Stats.ModelCost) / float64(time.Millisecond)
			resp.Rows = rowsJSON(degraded.Rows)
			resp.Degraded = true
			resp.SampleFraction = frac
			tr.SetTier("partial")
			tr.Enter(obsv.StageWrite)
			writeJSON(w, http.StatusOK, resp)
			s.done(tr, req.Session, req.Seq, "query", http.StatusOK, start, req.Seq, false)
			return
		}
		s.brk.failure(time.Now())
		s.reg.recordError()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, out.err.Error())
		s.done(tr, req.Session, req.Seq, "query", http.StatusServiceUnavailable, start, 0, false)
		return
	}
	s.brk.success()
	resp.Columns = out.res.Columns
	resp.ModelMS = float64(out.res.Stats.ModelCost) / float64(time.Millisecond)
	resp.Rows = rowsJSON(out.res.Rows)
	if out.frac < 1 {
		// A shard missed the deadline: the merged histogram estimates the
		// full answer from the covered partitions.
		resp.Degraded = true
		resp.SampleFraction = out.frac
		s.reg.recordDegraded()
		tr.SetTier("partial")
	}
	tr.Enter(obsv.StageWrite)
	writeJSON(w, http.StatusOK, resp)
	s.done(tr, req.Session, req.Seq, "query", http.StatusOK, start, req.Seq, false)
}

// isBackendFault distinguishes faults of the backend (injected errors,
// blown deadlines — retry or degrade) from faults of the request (parse and
// execution errors — the client's problem).
func isBackendFault(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// degradeQuery answers a histogram-shaped SQL query from a bounded sample
// prefix, scaled to the table. Non-histogram shapes return nil — they have
// no cheap unbiased estimate.
func (s *Server) degradeQuery(sqlText string) (*engine.Result, float64) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, 0
	}
	res, frac, ok, err := s.eng.PartialHistogram(context.Background(), stmt, s.partialRows)
	if !ok || err != nil {
		return nil, 0
	}
	return res, frac
}

func rowsJSON(rows [][]storage.Value) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = valueJSON(v)
		}
		out[i] = vals
	}
	return out
}

// breakerAdmit rejects the request with 503 + Retry-After when the circuit
// breaker is open, before any session bookkeeping. Returns false when
// rejected.
func (s *Server) breakerAdmit(w http.ResponseWriter, session string, seq int64, kind string) bool {
	now := time.Now()
	ok, ra := s.brk.allow(now)
	if ok {
		return true
	}
	s.reg.recordBreakerReject()
	// The reject still gets a trace: its whole life is the admission stage,
	// so open-breaker periods are visible in /v1/trace.
	tr := s.reg.tracer.Begin(session, seq, kind, now)
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(ra.Seconds()))))
	httpError(w, http.StatusServiceUnavailable, "serve: circuit breaker open")
	s.done(tr, session, seq, kind, http.StatusServiceUnavailable, now, 0, false)
	return false
}

func valueJSON(v storage.Value) any {
	switch v.Type {
	case storage.String:
		return v.S
	case storage.Int64:
		return v.I
	default:
		return v.F
	}
}

// --- /v1/brush --------------------------------------------------------------

// BrushRequest is one crossfilter brush update: the full filter state
// snapshot at issue time (nil entries mean unfiltered), and the index of
// the dimension that moved. Carrying the whole state is what makes
// coalescing safe: the latest snapshot subsumes every superseded one.
type BrushRequest struct {
	Session string        `json:"session"`
	Seq     int64         `json:"seq"`
	Ranges  []*[2]float64 `json:"ranges"`
	Moved   int           `json:"moved"`
}

// BrushResponse is the coordinated-view result: every dimension's
// histogram under the applied filter state, and the passing-record total.
// AppliedSeq is the sequence number of the snapshot that executed; it is
// at least the request's own Seq, and strictly greater when the request
// was coalesced into a newer one.
//
// Tier reports which rung of the degradation ladder answered: "exact" (or
// "" when deadlines are off), "cache" (a previous exact answer for the same
// ranges — exact data, so not degraded), or "partial" (a scaled sample
// estimate; Degraded is true and SampleFraction reports the fraction of
// records it saw). Degraded responses still carry the applied seq, so
// clients stay sequence-consistent across tiers.
type BrushResponse struct {
	AppliedSeq     int64     `json:"applied_seq"`
	Coalesced      bool      `json:"coalesced"`
	Total          int64     `json:"total"`
	Histograms     [][]int64 `json:"histograms"`
	Tier           string    `json:"tier,omitempty"`
	Degraded       bool      `json:"degraded,omitempty"`
	SampleFraction float64   `json:"sample_fraction,omitempty"`
}

// ApproxBytes reports the response's resident size to the planner's
// byte-budgeted store (opt.Sized), which it shares with the materialized
// indexes.
func (r *BrushResponse) ApproxBytes() int64 {
	n := int64(96) // struct + outer slice header
	for _, h := range r.Histograms {
		n += 24 + 8*int64(len(h))
	}
	return n
}

func (s *Server) handleBrush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cube == nil && s.coord == nil {
		httpError(w, http.StatusNotImplemented, "no cube backend")
		return
	}
	var req BrushRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Session == "" {
		httpError(w, http.StatusBadRequest, "want JSON {session, seq, ranges, moved}")
		return
	}
	if len(req.Ranges) != len(s.cubeDims) {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("want %d ranges, got %d", len(s.cubeDims), len(req.Ranges)))
		return
	}
	// Note: no isDraining pre-check here. During Drain a brush may still
	// ride an existing slot or in-progress execution — the run-to-idle loop
	// flushes pending coalesced brushes before the worker pool exits. Only
	// a brush needing a fresh admission is refused (admit returns
	// errDraining below).
	if !s.breakerAdmit(w, req.Session, req.Seq, "brush") {
		return
	}
	start := time.Now()
	id := s.nextID.Add(1)
	tr := s.reg.tracer.Begin(req.Session, req.Seq, "brush", start)
	sess := s.session(req.Session)
	waiter := &brushWaiter{id: id, seq: req.Seq, start: start, tr: tr, ch: make(chan brushOutcome, 1)}
	s.reg.recordIssue(start)

	sess.mu.Lock()
	s.issueLocked(sess, id, tr)
	if req.Seq > sess.lastSeq {
		sess.lastSeq = req.Seq
		sess.latest = req
	}
	// Stage transitions happen under sess.mu, which is also what hands the
	// waiter (and its trace) to the run-to-idle loop: a rider parks in the
	// coalesce stage; only the waiter that admits a fresh execution waits
	// in the queue stage. runBrushes stamps both into the execute stage
	// when their pass starts.
	var admitErr error
	switch {
	case sess.slot != nil:
		// A pending execution exists: this request rides along with it and
		// one backend execution is saved.
		tr.Enter(obsv.StageCoalesce)
		sess.slot.waiters = append(sess.slot.waiters, waiter)
		s.reg.recordCoalesced()
	case sess.running:
		// An execution is in progress; park in a fresh slot that the
		// run-to-idle loop will pick up without re-entering admission.
		tr.Enter(obsv.StageCoalesce)
		sess.slot = &brushTask{waiters: []*brushWaiter{waiter}}
	default:
		tr.Enter(obsv.StageQueue)
		sess.slot = &brushTask{waiters: []*brushWaiter{waiter}}
		admitErr = s.admit(func() { s.runBrushes(sess) })
		if admitErr != nil {
			sess.slot = nil
		}
	}
	if admitErr != nil {
		delete(sess.uncounted, id)
		sess.mu.Unlock()
		status := http.StatusTooManyRequests
		if admitErr == errDraining {
			status = http.StatusServiceUnavailable
		} else {
			s.reg.recordShed()
		}
		w.Header().Set("Retry-After", "1")
		httpError(w, status, admitErr.Error())
		s.done(tr, req.Session, req.Seq, "brush", status, start, 0, false)
		return
	}
	sess.mu.Unlock()

	out := <-waiter.ch
	s.finish(sess, id, start)
	if out.err != nil {
		s.reg.recordError()
		status := http.StatusInternalServerError
		if isBackendFault(out.err) {
			// The backend is faulting or out of budget, not the request
			// malformed: tell the client to retry, like the breaker does.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, out.err.Error())
		s.done(tr, req.Session, req.Seq, "brush", status, start, 0, false)
		return
	}
	resp := *out.resp
	resp.Coalesced = resp.AppliedSeq > req.Seq
	tr.Enter(obsv.StageWrite)
	writeJSON(w, http.StatusOK, resp)
	s.done(tr, req.Session, req.Seq, "brush", http.StatusOK, start, resp.AppliedSeq, resp.Coalesced)
}

// runBrushes executes the session's pending brushes to idle: each pass
// snapshots the latest filter state and answers every waiter that
// accumulated since the previous pass with that one result. Per-session
// execution is serialized here, which is what makes applied sequence
// numbers monotonic. During Drain the loop keeps running until the slot is
// empty — pending coalesced brushes are flushed, not dropped.
func (s *Server) runBrushes(sess *sessionState) {
	for {
		sess.mu.Lock()
		bt := sess.slot
		if bt == nil {
			sess.running = false
			sess.mu.Unlock()
			return
		}
		sess.slot = nil
		sess.running = true
		payload := sess.latest
		// The deadline budget runs from the moment the oldest rider issued:
		// queue wait counts against it, so a request that already blew its
		// budget waiting skips straight to the fallback tiers.
		earliest := bt.waiters[0].start
		for _, wt := range bt.waiters[1:] {
			if wt.start.Before(earliest) {
				earliest = wt.start
			}
		}
		sess.mu.Unlock()

		// Every rider's queue/coalesce wait ends here; the one execution's
		// span lands on each of their traces. Their handler goroutines are
		// parked on wt.ch until the send below, so the traces are ours to
		// stamp (sess.mu above ordered their handlers' writes before us).
		for _, wt := range bt.waiters {
			wt.tr.Enter(obsv.StageExecute)
		}
		// stamp lets the ladder mark later stage transitions (the sharded
		// scatter) on every rider's trace.
		stamp := func(st obsv.Stage) {
			for _, wt := range bt.waiters {
				wt.tr.Enter(st)
			}
		}

		resp, err := s.execBrushLadder(payload, earliest, stamp)
		if s.cfg.ExecDelay > 0 {
			time.Sleep(s.cfg.ExecDelay)
		}
		s.reg.recordExec()

		sess.mu.Lock()
		if payload.Seq < sess.applied {
			s.reg.recordRegression()
		} else {
			sess.applied = payload.Seq
		}
		sess.mu.Unlock()

		for _, wt := range bt.waiters {
			wt.tr.Enter(obsv.StageMerge)
			if resp != nil {
				wt.tr.SetTier(resp.Tier)
			}
			wt.ch <- brushOutcome{resp: resp, err: err}
		}
	}
}

// faultGate passes one backend operation through the fault injector,
// retrying injected errors with capped jittered exponential backoff while
// the budget lasts. nil means proceed with the real work; fault.ErrInjected
// means retries were exhausted; a context error means the deadline expired
// mid-delay (an injected stall serves only as much of itself as the budget
// allows). Without an injector it is just the budget check.
func (s *Server) faultGate(ctx context.Context) error {
	if s.fault == nil {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	const maxBackoff = 100 * time.Millisecond
	var err error
	for attempt := 0; ; attempt++ {
		err = s.fault.Do(ctx)
		if err == nil || !errors.Is(err, fault.ErrInjected) {
			return err
		}
		if attempt >= s.maxRetries {
			return err
		}
		backoff := s.retryBase << uint(attempt)
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		// Full jitter: [backoff, 2·backoff) decorrelates retry herds.
		backoff += time.Duration(rand.Int63n(int64(backoff)))
		s.reg.recordRetry()
		if serr := fault.Sleep(ctx, backoff); serr != nil {
			return serr
		}
	}
}

// execBrushLadder answers one brush snapshot through the degradation
// ladder. With deadlines off it is the chaos baseline: injected faults are
// served in full and only the exact tier exists. With deadlines on, the
// exact tier runs under a budget of degradeAfter from the oldest rider's
// issue; a blown budget falls back to a cached exact answer for the same
// ranges, then to a progressive partial estimate marked Degraded.
//
// Sharded, the exact tier is a scatter-gather: full coverage is the exact
// answer (byte-identical to the unsharded path); a straggler shard turns
// the gather into a partial answer — served as Degraded with the covered
// record fraction, after the cache tier gets a chance to do better.
func (s *Server) execBrushLadder(req BrushRequest, earliest time.Time, stamp func(obsv.Stage)) (*BrushResponse, error) {
	if !s.cfg.Deadlines {
		if err := s.faultGate(nil); err != nil {
			s.brk.failure(time.Now())
			return nil, err
		}
		var resp *BrushResponse
		var err error
		if s.coord != nil {
			// No deadline: the gather blocks for every shard, so the merge
			// is always the complete exact answer.
			resp, _, err = s.execBrushShard(nil, req, stamp)
		} else {
			resp, err = s.execBrush(req)
		}
		if err != nil {
			s.brk.failure(time.Now())
			return nil, err
		}
		s.brk.success()
		s.cacheBrush(req, resp)
		return resp, nil
	}

	ctx, cancel := context.WithDeadline(context.Background(), earliest.Add(s.degradeAfter))
	defer cancel()

	// Tier 1: exact, while the budget holds.
	gateErr := s.faultGate(ctx)
	if gateErr == nil && s.coord != nil {
		resp, frac, err := s.execBrushShard(ctx, req, stamp)
		switch {
		case err != nil:
			// Zero coverage (or a closed coordinator): degrade like a blown
			// deadline — cache, then progressive partial.
			gateErr = err
		case frac == 1:
			resp.Tier = "exact"
			s.brk.success()
			s.cacheBrush(req, resp)
			return resp, nil
		default:
			// A straggler shard missed the budget. A cached exact answer
			// beats the partial estimate; otherwise serve the covered
			// shards' scaled merge.
			s.reg.recordDeadline()
			if cached := s.lookupBrush(req); cached != nil {
				c := *cached
				c.AppliedSeq = req.Seq
				c.Tier = "cache"
				s.reg.recordBrushCacheHit()
				s.brk.success()
				return &c, nil
			}
			s.reg.recordDegraded()
			s.brk.success()
			return resp, nil
		}
	} else if gateErr == nil {
		resp, err := s.execBrush(req)
		if err != nil {
			s.brk.failure(time.Now())
			return nil, err
		}
		resp.Tier = "exact"
		s.brk.success()
		s.cacheBrush(req, resp)
		return resp, nil
	}
	if errors.Is(gateErr, context.DeadlineExceeded) || errors.Is(gateErr, context.Canceled) {
		s.reg.recordDeadline()
	}

	// Tier 2: a cached exact answer for these exact ranges — stale only in
	// the sense that it was computed earlier; the data is immutable, so it
	// is not degraded, just cheaper.
	if cached := s.lookupBrush(req); cached != nil {
		c := *cached
		c.AppliedSeq = req.Seq
		c.Tier = "cache"
		s.reg.recordBrushCacheHit()
		s.brk.success()
		return &c, nil
	}

	// Tier 3: progressive partial — a bounded-work sample estimate, marked
	// degraded so the client can render it as provisional.
	if s.prog != nil {
		resp, err := s.execBrushPartial(req)
		if err == nil {
			s.reg.recordDegraded()
			s.brk.success()
			return resp, nil
		}
	}

	s.brk.failure(time.Now())
	return nil, gateErr
}

// brushKey is the ranges-keyed cache key: the filter state fully determines
// an exact brush answer (data is immutable), so any session may reuse it.
func brushKey(req BrushRequest) string {
	key := make([]byte, 0, 16*len(req.Ranges))
	for _, rg := range req.Ranges {
		if rg == nil {
			key = append(key, '*', '|')
			continue
		}
		key = strconv.AppendFloat(key, rg[0], 'g', -1, 64)
		key = append(key, ',')
		key = strconv.AppendFloat(key, rg[1], 'g', -1, 64)
		key = append(key, '|')
	}
	return string(key)
}

// cacheBrush stores an exact answer under its ranges key. The cached value
// is read-only from then on; lookup copies the struct before overriding
// per-request fields.
func (s *Server) cacheBrush(req BrushRequest, resp *BrushResponse) {
	if s.plan != nil {
		// Cached answers share the planner's byte-budgeted store with the
		// materialized indexes: one memory budget for both.
		s.plan.CachePut(brushCachePrefix+brushKey(req), resp)
		return
	}
	if s.brushCache == nil {
		return
	}
	s.brushMu.Lock()
	s.brushCache.Put(brushKey(req), resp)
	s.brushMu.Unlock()
}

// brushCachePrefix namespaces cached brush answers inside the planner's
// shared store, next to the "ix|" materialized indexes.
const brushCachePrefix = "br|"

// lookupBrush returns the cached exact answer for the request's ranges, or
// nil, counting the outcome either way.
func (s *Server) lookupBrush(req BrushRequest) *BrushResponse {
	if s.plan != nil {
		v, ok := s.plan.CacheGet(brushCachePrefix + brushKey(req))
		if !ok {
			s.reg.recordBrushCacheMiss()
			return nil
		}
		return v.(*BrushResponse)
	}
	if s.brushCache == nil {
		return nil
	}
	s.brushMu.Lock()
	v, ok := s.brushCache.Get(brushKey(req))
	s.brushMu.Unlock()
	if !ok {
		s.reg.recordBrushCacheMiss()
		return nil
	}
	return v.(*BrushResponse)
}

// execBrushPartial is the ladder's last rung: per-dimension scaled sample
// estimates over the cube's backing table, using the progressive executor's
// shuffled prefix as a uniform sample. Work is bounded by partialRows per
// dimension regardless of table size.
func (s *Server) execBrushPartial(req BrushRequest) (*BrushResponse, error) {
	resp := &BrushResponse{
		AppliedSeq: req.Seq,
		Tier:       "partial",
		Degraded:   true,
	}
	resp.Histograms = make([][]int64, len(s.cubeDims))
	filters := make(map[string][2]float64, len(s.cubeDims))
	for i, rg := range req.Ranges {
		if rg != nil {
			filters[s.cubeDims[i].Name] = [2]float64{rg[0], rg[1]}
		}
	}
	var total float64
	for d, dim := range s.cubeDims {
		q := progressive.Query{
			Column:  dim.Name,
			Lo:      dim.Lo,
			Hi:      dim.Hi,
			Bins:    dim.Bins,
			Filters: filters,
		}
		snap, err := s.prog.Partial(q, s.partialRows)
		if err != nil {
			return nil, err
		}
		resp.SampleFraction = snap.Fraction
		h := make([]int64, dim.Bins)
		for b, v := range snap.Estimate {
			h[b] = int64(v + 0.5)
		}
		resp.Histograms[d] = h
		if d == 0 {
			for _, v := range snap.Estimate {
				total += v
			}
		}
	}
	resp.Total = int64(total + 0.5)
	return resp, nil
}

// brushFilters converts a request's wire-format ranges to datacube filters
// (nil entries stay unfiltered).
func brushFilters(ranges []*[2]float64) []*datacube.Range {
	filters := make([]*datacube.Range, len(ranges))
	buf := make([]datacube.Range, len(ranges))
	for i, rg := range ranges {
		if rg != nil {
			buf[i] = datacube.Range{Lo: rg[0], Hi: rg[1]}
			filters[i] = &buf[i]
		}
	}
	return filters
}

// execBrushShard scatter-gathers one brush snapshot across the shard
// replicas. Full coverage merges to the exact answer. Partial coverage
// (a shard missed ctx's deadline) returns a Degraded response with the
// covered shards' counts scaled by 1/fraction — the same estimation
// convention as the progressive partial tier — and the fraction is also
// returned so the ladder can distinguish the cases. Zero coverage is an
// error.
func (s *Server) execBrushShard(ctx context.Context, req BrushRequest, stamp func(obsv.Stage)) (*BrushResponse, float64, error) {
	stamp(obsv.StageScatter)
	g, err := s.coord.ScatterBrush(ctx, req.Session, brushFilters(req.Ranges))
	if err != nil {
		return nil, 0, err
	}
	if g.Covered() == 0 {
		if err := g.FirstErr(); err != nil {
			return nil, 0, err
		}
		return nil, 0, fmt.Errorf("serve: shard gather covered no shards")
	}
	b := g.MergeBrush(s.cubeDims)
	frac := b.Fraction()
	resp := &BrushResponse{AppliedSeq: req.Seq, Histograms: b.Histograms, Total: b.Total}
	if frac < 1 {
		scale := 1 / frac
		for _, h := range resp.Histograms {
			for i, v := range h {
				h[i] = int64(float64(v)*scale + 0.5)
			}
		}
		resp.Total = int64(float64(b.Total)*scale + 0.5)
		resp.Tier = "partial"
		resp.Degraded = true
		resp.SampleFraction = frac
	}
	return resp, frac, nil
}

// execBrush answers the coordinated-view query on the summed-area cube:
// all histograms plus the total under the snapshot's filters, in
// O(bins·2^(d-1)) lookups per histogram instead of a filtered cell-box
// walk. One flat backing array serves every histogram, so the hot path
// allocates only what the JSON response itself needs.
func (s *Server) execBrush(req BrushRequest) (*BrushResponse, error) {
	ndims := len(s.cubeDims)
	filters := brushFilters(req.Ranges)
	resp := &BrushResponse{AppliedSeq: req.Seq}
	resp.Histograms = make([][]int64, ndims)
	bins := 0
	for d := 0; d < ndims; d++ {
		bins += s.cubeDims[d].Bins
	}
	backing := make([]int64, bins)
	for d := 0; d < ndims; d++ {
		nb := s.cubeDims[d].Bins
		resp.Histograms[d] = backing[:nb:nb]
		backing = backing[nb:]
	}
	if s.plan != nil {
		// Planner path: the cheapest available structure answers — the
		// choice is bit-identical across structures, so the response is
		// indistinguishable from the fixed prefix-cube path below.
		total, _, err := s.plan.Answer(req.Session, req.Moved, filters, resp.Histograms)
		if err != nil {
			return nil, err
		}
		resp.Total = total
		return resp, nil
	}
	for d := 0; d < ndims; d++ {
		if err := s.prefix.HistogramInto(d, filters, resp.Histograms[d]); err != nil {
			return nil, err
		}
	}
	total, err := s.prefix.Count(filters)
	if err != nil {
		return nil, err
	}
	resp.Total = total
	return resp, nil
}

// --- /v1/tiles --------------------------------------------------------------

// TileResponse is one map-tile fetch: the record count inside the tile's
// geographic bounds — the aggregate a tile renderer needs.
type TileResponse struct {
	Seq   int64  `json:"seq"`
	Key   string `json:"key"`
	Count int64  `json:"count"`
}

// tileBounds returns the web-mercator lat/lng bounds of tile z/x/y.
func tileBounds(t widget.Tile) (latLo, latHi, lngLo, lngHi float64) {
	n := math.Exp2(float64(t.Z))
	lngLo = float64(t.X)/n*360 - 180
	lngHi = float64(t.X+1)/n*360 - 180
	latHi = 180 / math.Pi * math.Atan(math.Sinh(math.Pi*(1-2*float64(t.Y)/n)))
	latLo = 180 / math.Pi * math.Atan(math.Sinh(math.Pi*(1-2*float64(t.Y+1)/n)))
	return latLo, latHi, lngLo, lngHi
}

func (s *Server) handleTiles(w http.ResponseWriter, r *http.Request) {
	if s.tiles == nil {
		httpError(w, http.StatusNotImplemented, "no tile backend")
		return
	}
	q := r.URL.Query()
	session := q.Get("session")
	if session == "" {
		httpError(w, http.StatusBadRequest, "session required")
		return
	}
	seq, _ := strconv.ParseInt(q.Get("seq"), 10, 64)
	var tile widget.Tile
	var err error
	if key := q.Get("key"); key != "" {
		tile, err = widget.ParseTile(key)
	} else {
		tile.Z, err = strconv.Atoi(q.Get("z"))
		if err == nil {
			tile.X, err = strconv.Atoi(q.Get("x"))
		}
		if err == nil {
			tile.Y, err = strconv.Atoi(q.Get("y"))
		}
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "want key=z/x/y or z=&x=&y=")
		return
	}
	if !s.breakerAdmit(w, session, seq, "tile") {
		return
	}
	start := time.Now()
	id := s.nextID.Add(1)
	tr := s.reg.tracer.Begin(session, seq, "tile", start)
	sess := s.session(session)
	sess.mu.Lock()
	s.issueLocked(sess, id, tr)
	sess.mu.Unlock()
	s.reg.recordIssue(start)

	// Tile counts are immutable per (dataset, tile), so a cache hit skips
	// the admission queue and the scan entirely.
	cacheKey := s.tiles.Name + "|" + tile.String()
	s.tileMu.Lock()
	cached, hit := s.tileCache.Get(cacheKey)
	s.tileMu.Unlock()
	if hit {
		s.reg.recordTileHit()
		count := cached.(int64)
		s.finish(sess, id, start)
		tr.SetTier("cache")
		tr.Enter(obsv.StageWrite)
		writeJSON(w, http.StatusOK, TileResponse{Seq: seq, Key: tile.String(), Count: count})
		s.done(tr, session, seq, "tile", http.StatusOK, start, seq, false)
		return
	}
	s.reg.recordTileMiss()

	execCtx := context.Background()
	if s.cfg.Deadlines {
		var cancel context.CancelFunc
		execCtx, cancel = context.WithDeadline(execCtx, start.Add(s.degradeAfter))
		defer cancel()
	}
	type tileOutcome struct {
		count int64
		err   error
	}
	ch := make(chan tileOutcome, 1)
	tr.Enter(obsv.StageQueue)
	admitErr := s.admit(func() {
		defer s.reg.recordExec()
		tr.Enter(obsv.StageExecute)
		if err := s.faultGate(execCtx); err != nil {
			tr.Enter(obsv.StageMerge)
			ch <- tileOutcome{0, err}
			return
		}
		latLo, latHi, lngLo, lngHi := tileBounds(tile)
		var count int64
		n := s.tiles.NumRows()
		for i := 0; i < n; i++ {
			if i%tileScanCheck == 0 && execCtx.Err() != nil {
				tr.Enter(obsv.StageMerge)
				ch <- tileOutcome{0, execCtx.Err()}
				return
			}
			lat, lng := s.tileLat.Float(i), s.tileLng.Float(i)
			if lat >= latLo && lat < latHi && lng >= lngLo && lng < lngHi {
				count++
			}
		}
		if s.cfg.ExecDelay > 0 {
			time.Sleep(s.cfg.ExecDelay)
		}
		s.tileMu.Lock()
		s.tileCache.Put(cacheKey, count)
		s.tileMu.Unlock()
		tr.Enter(obsv.StageMerge)
		ch <- tileOutcome{count, nil}
	})
	if admitErr != nil {
		status := http.StatusTooManyRequests
		if admitErr == errDraining {
			status = http.StatusServiceUnavailable
		} else {
			s.reg.recordShed()
		}
		sess.mu.Lock()
		delete(sess.uncounted, id)
		sess.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, status, admitErr.Error())
		s.done(tr, session, seq, "tile", status, start, 0, false)
		return
	}
	out := <-ch
	s.finish(sess, id, start)
	if out.err != nil {
		if errors.Is(out.err, context.DeadlineExceeded) || errors.Is(out.err, context.Canceled) {
			s.reg.recordDeadline()
		}
		s.brk.failure(time.Now())
		s.reg.recordError()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, out.err.Error())
		s.done(tr, session, seq, "tile", http.StatusServiceUnavailable, start, 0, false)
		return
	}
	s.brk.success()
	tr.Enter(obsv.StageWrite)
	writeJSON(w, http.StatusOK, TileResponse{Seq: seq, Key: tile.String(), Count: out.count})
	s.done(tr, session, seq, "tile", http.StatusOK, start, seq, false)
}

// tileScanCheck is the tile scan's cancellation-check stride — one morsel's
// worth of rows, matching the engine's granularity.
const tileScanCheck = 16 * 1024

// --- /metrics, /healthz, /readyz --------------------------------------------

// handleMetrics answers JSON by default (the repo's own tooling decodes
// Stats) and Prometheus text exposition when asked — ?format=prometheus,
// or an Accept header naming text/plain or OpenMetrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.writeProm(w)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is pure liveness: the process is up and serving HTTP, so it
// always answers 200. A draining server is still alive — it reports the
// state and its remaining queue depth so an operator can watch the flush,
// but an orchestrator must not kill it for failing liveness mid-drain.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := "ok"
	if s.isDraining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      state,
		"queue_depth": len(s.queue),
	})
}

// handleReadyz is readiness: 503 while draining (stop routing new traffic
// here), while the circuit breaker holds the backend open, or while a
// supervised shard fleet has a shard with no serving replica. The body
// always carries the reason, and — when the gatherer reports health — a
// per-shard breakdown (state, consecutive failures, last transition), so a
// supervisor or test can assert on why readiness flipped, not just that it
// did.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ready"
	switch {
	case s.isDraining():
		status = http.StatusServiceUnavailable
		state = "draining"
	case s.brk.isOpen(time.Now()):
		status = http.StatusServiceUnavailable
		state = "breaker_open"
	}
	body := map[string]any{"queue_depth": len(s.queue)}
	if hr, ok := s.coord.(HealthReporter); ok {
		ready, detail := hr.Health()
		body["shards"] = detail
		if !ready && status == http.StatusOK {
			status = http.StatusServiceUnavailable
			state = "shard_down"
		}
	}
	body["status"] = state
	writeJSON(w, status, body)
}

// --- helpers ----------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
