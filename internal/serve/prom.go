package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obsv"
	"repro/internal/tracefmt"
)

// promNamespace prefixes every exported Prometheus metric name.
const promNamespace = "idevald"

// wantsProm decides the /metrics representation: ?format=prometheus wins,
// else an Accept header naming text/plain or OpenMetrics. The default
// stays JSON — the repo's own tooling (loadgen, tests) decodes Stats.
func wantsProm(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f != "" {
		return f == "prometheus"
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// writeProm renders the full metrics surface in Prometheus text
// exposition format 0.0.4: every Stats counter and gauge, the end-to-end
// latency histogram, one histogram per pipeline stage, and the
// LCV-by-stage attribution vector. Series names and label sets are stable
// across scrapes (zero-count stages still emit), so dashboards never see
// series appear mid-run.
func (s *Server) writeProm(w http.ResponseWriter) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obsv.NewPromWriter(w, promNamespace)

	p.Counter("requests_total", "Requests offered across all endpoints.", float64(st.Issued))
	p.Counter("executed_total", "Backend executions (under coalescing, fewer than requests).", float64(st.Executed))
	p.Counter("coalesced_total", "Requests that rode another request's execution.", float64(st.Coalesced))
	p.Counter("shed_total", "Requests shed at admission with HTTP 429.", float64(st.Shed))
	p.Counter("errors_total", "Requests that failed during execution.", float64(st.Errors))
	p.Counter("lcv_total", "Latency-constraint violations (next-action definition, online).", float64(st.LCV))
	p.Counter("over_constraint_total", "Responses slower than the latency constraint.", float64(st.OverConstraint))
	p.Counter("seq_regressions_total", "Per-session sequence regressions (must stay zero).", float64(st.Regressions))
	p.Counter("tile_cache_hits_total", "Tile requests answered from the result cache.", float64(st.TileCacheHits))
	p.Counter("tile_cache_misses_total", "Tile requests that had to execute.", float64(st.TileCacheMiss))
	p.Counter("degraded_total", "Requests answered by a lower degradation-ladder tier.", float64(st.Degraded))
	p.Counter("deadline_exceeded_total", "Executions cut short by their deadline budget.", float64(st.Deadlines))
	p.Counter("retries_total", "Backend retries after injected transient errors.", float64(st.Retries))
	p.Counter("brush_cache_hits_total", "Brushes answered from the exact-result cache.", float64(st.BrushCacheHits))
	p.Counter("brush_cache_misses_total", "Cache-tier lookups that found no exact answer.", float64(st.BrushCacheMiss))
	p.Counter("breaker_rejects_total", "Requests rejected by the open circuit breaker.", float64(st.BreakerRejects))
	p.Counter("breaker_trips_total", "Circuit-breaker open transitions.", float64(st.BreakerTrips))

	p.Gauge("queue_depth", "Admission queue occupancy.", float64(st.QueueDepth))
	p.Gauge("inflight", "Requests executing right now.", float64(st.Inflight))
	p.Gauge("qif_per_sec", "Query issuing frequency over the recent window.", st.QIFPerSec)
	p.Gauge("qif_window", "Issue timestamps in the QIF window.", float64(st.QIFWindow))
	p.Gauge("constraint_seconds", "The latency constraint in force.", float64(s.reg.Constraint())/1e9)
	p.Gauge("latency_samples", "Observations in the latency histogram.", float64(st.LatencySamples))

	if st.Store != nil {
		p.Gauge("colstore_encoded_bytes", "Resident bytes of the served table's encoded columns.", float64(st.Store.EncodedBytes))
		p.Gauge("colstore_plain_bytes", "Bytes the served table would occupy uncompressed.", float64(st.Store.PlainBytes))
		p.Gauge("colstore_compression_ratio", "Plain bytes over encoded bytes for the served table.", st.Store.Ratio)
		cols := make(map[string]float64, len(st.Store.Columns))
		for _, c := range st.Store.Columns {
			cols[c.Name] = float64(c.Bytes)
		}
		p.GaugeVec("colstore_column_bytes", "Resident encoded bytes per served column.", "column", cols)
	}

	if st.Planner != nil {
		choices := make(map[string]float64, len(st.Planner.Choices))
		for name, n := range st.Planner.Choices {
			choices[name] = float64(n)
		}
		p.CounterVec("planner_choice_total",
			"Brush answers per structure the cost model selected.",
			"structure", choices)
		p.Counter("planner_materializations_total", "Per-selection indexes built for hot drag templates.", float64(st.Planner.Materializations))
		p.Counter("planner_evictions_total", "Entries the planner store's byte budget pushed out.", float64(st.Planner.Evictions))
		p.Counter("planner_prefix_builds_total", "Deferred prefix-cube builds completed.", float64(st.Planner.PrefixBuilds))
		p.Gauge("planner_index_count", "Materialized per-selection indexes resident.", float64(st.Planner.IndexCount))
		p.Gauge("planner_index_bytes", "Resident bytes of materialized indexes.", float64(st.Planner.IndexBytes))
		p.Gauge("planner_store_bytes", "Resident bytes of the planner's shared store (indexes + cached answers).", float64(st.Planner.StoreBytes))
		p.Gauge("planner_budget_bytes", "The planner store's byte budget.", float64(st.Planner.BudgetBytes))
	}

	lcv := s.reg.tracer.LCVByStage()
	byStage := make(map[string]float64, int(obsv.NumStages))
	for stg := obsv.StageAdmission; stg < obsv.NumStages; stg++ {
		byStage[stg.String()] = float64(lcv[stg])
	}
	p.CounterVec("lcv_by_stage_total",
		"Latency-constraint violations attributed to the violating request's dominant stage.",
		"stage", byStage)

	p.Histogram("request_seconds", "End-to-end user-perceived request latency.", "", s.reg.hist.Snapshot())
	for stg := obsv.StageAdmission; stg < obsv.NumStages; stg++ {
		p.Histogram("stage_seconds", "Per-stage span latency across requests that visited the stage.",
			`stage="`+stg.String()+`"`, s.reg.tracer.StageHist(stg).Snapshot())
	}
	_ = p.Err()
}

// handleTrace exports the ring of recent request traces as tracefmt JSON
// lines, newest last. ?n= bounds the tail returned.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	recs := s.reg.tracer.Recent()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(recs) {
			recs = recs[len(recs)-n:]
		}
	}
	out := make([]tracefmt.TraceRecord, 0, len(recs))
	for _, rec := range recs {
		out = append(out, traceWire(rec, s.start))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = tracefmt.WriteTraceRecords(w, out)
}

// traceWire converts one completed trace to its wire record; timestamps
// are relative to server start, like the request log's.
func traceWire(rec *obsv.TraceRecord, serverStart time.Time) tracefmt.TraceRecord {
	out := tracefmt.TraceRecord{
		TimestampMS: rec.Start.Sub(serverStart).Milliseconds(),
		Session:     rec.Session,
		Seq:         rec.Seq,
		Kind:        rec.Kind,
		Status:      rec.Status,
		TotalMS:     durMS(rec.Total),
		Tier:        rec.Tier,
		LCV:         rec.LCV,
		Dominant:    rec.Dominant().String(),
		StagesMS:    make(map[string]float64, int(obsv.NumStages)),
	}
	for stg := obsv.StageAdmission; stg < obsv.NumStages; stg++ {
		if rec.Visited(stg) {
			out.StagesMS[stg.String()] = durMS(rec.Stages[stg])
		}
	}
	return out
}
