package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/storage"
)

// newEncodedPair builds two identical road-backed servers, one over raw
// backends and one over EncodeBackends' frozen form.
func newEncodedPair(t *testing.T, cfg Config) (plain, enc *httptest.Server) {
	t.Helper()
	leakcheck.Check(t)
	for _, encode := range []bool{false, true} {
		backends, err := RoadBackends(1, testRows, engine.ProfileMemory)
		if err != nil {
			t.Fatal(err)
		}
		if encode {
			backends, err = EncodeBackends(backends)
			if err != nil {
				t.Fatal(err)
			}
			if !colstore.IsFrozen(backends.Tiles) {
				t.Fatal("EncodeBackends did not freeze the table")
			}
		}
		srv, err := New(backends, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
		})
		if encode {
			enc = ts
		} else {
			plain = ts
		}
	}
	return plain, enc
}

// TestEncodedServingMatchesPlain drives the same queries, brushes, and
// tile fetches through a raw-backed server and an encoded-backed one, and
// requires identical response bodies — encoding must be invisible to every
// endpoint.
func TestEncodedServingMatchesPlain(t *testing.T) {
	plain, enc := newEncodedPair(t, Config{Workers: 2})

	both := func(method, path string, body any) (p, e []byte) {
		t.Helper()
		for i, ts := range []*httptest.Server{plain, enc} {
			var resp *http.Response
			var raw []byte
			if method == http.MethodPost {
				resp, raw = postJSON(t, ts.URL+path, body)
			} else {
				r, err := http.Get(ts.URL + path)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := buf.ReadFrom(r.Body); err != nil {
					t.Fatal(err)
				}
				r.Body.Close()
				resp, raw = r, buf.Bytes()
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d body %s", method, path, resp.StatusCode, raw)
			}
			if i == 0 {
				p = raw
			} else {
				e = raw
			}
		}
		return p, e
	}

	queries := []string{
		"SELECT COUNT(*) FROM dataroad",
		"SELECT ROUND((x - 8.146) / 0.2), COUNT(*) FROM dataroad WHERE y >= 56.9 AND y <= 57.4 GROUP BY 1 ORDER BY 1",
	}
	for seq, q := range queries {
		p, e := both(http.MethodPost, "/v1/query", QueryRequest{Session: "s1", Seq: int64(seq), SQL: q})
		var pr, er QueryResponse
		if err := json.Unmarshal(p, &pr); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(e, &er); err != nil {
			t.Fatal(err)
		}
		if len(pr.Rows) == 0 || len(pr.Rows) != len(er.Rows) {
			t.Fatalf("query %q: %d vs %d rows", q, len(er.Rows), len(pr.Rows))
		}
		for i := range pr.Rows {
			for j := range pr.Rows[i] {
				if pr.Rows[i][j] != er.Rows[i][j] {
					t.Fatalf("query %q row %d col %d: %v vs %v", q, i, j, er.Rows[i][j], pr.Rows[i][j])
				}
			}
		}
	}

	for seq, rg := range [][]*[2]float64{
		{{9, 10.5}, nil, nil},
		{nil, {49.8, 50.2}, {100, 400}},
	} {
		p, e := both(http.MethodPost, "/v1/brush", BrushRequest{Session: "s2", Seq: int64(seq), Ranges: rg})
		var pr, er BrushResponse
		if err := json.Unmarshal(p, &pr); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(e, &er); err != nil {
			t.Fatal(err)
		}
		if pr.Total != er.Total {
			t.Fatalf("brush %d: total %d vs %d", seq, er.Total, pr.Total)
		}
	}

	pTiles, eTiles := both(http.MethodGet, "/v1/tiles?session=s3&z=6&x=36&y=21", nil)
	if !bytes.Equal(pTiles, eTiles) {
		t.Fatalf("tile bodies differ: %s vs %s", eTiles, pTiles)
	}
}

// TestEncodedMetricsStoreSection asserts the encoding breakdown surfaces
// in both /metrics representations — and only on the encoded server.
func TestEncodedMetricsStoreSection(t *testing.T) {
	plain, enc := newEncodedPair(t, Config{Workers: 1})

	get := func(url string) []byte {
		t.Helper()
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var st Stats
	if err := json.Unmarshal(get(enc.URL+"/metrics"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("encoded server /metrics has no store section")
	}
	if st.Store.Rows != testRows || st.Store.EncodedBytes <= 0 || len(st.Store.Columns) == 0 {
		t.Fatalf("store section implausible: %+v", st.Store)
	}
	var pst Stats
	if err := json.Unmarshal(get(plain.URL+"/metrics"), &pst); err != nil {
		t.Fatal(err)
	}
	if pst.Store != nil {
		t.Fatal("plain server /metrics reports a store section")
	}

	prom := string(get(enc.URL + "/metrics?format=prometheus"))
	for _, series := range []string{
		"idevald_colstore_encoded_bytes",
		"idevald_colstore_plain_bytes",
		"idevald_colstore_compression_ratio",
		`idevald_colstore_column_bytes{column="x"}`,
	} {
		if !strings.Contains(prom, series) {
			t.Fatalf("prometheus exposition lacks %s", series)
		}
	}
	if strings.Contains(string(get(plain.URL+"/metrics?format=prometheus")), "colstore_") {
		t.Fatal("plain server exposes colstore series")
	}
}

// TestServeRejectsStringTileColumns pins the new build-time validation:
// naming a TEXT column as a tile coordinate must fail construction, not
// panic on the first tile request.
func TestServeRejectsStringTileColumns(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{
		{Name: "lat", Type: storage.Float64},
		{Name: "name", Type: storage.String},
	})
	if err := tbl.AppendRow(storage.NewFloat(1.5), storage.NewString("a")); err != nil {
		t.Fatal(err)
	}
	_, err := New(Backends{Tiles: tbl, TileLat: "lat", TileLng: "name"}, Config{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "numeric") {
		t.Fatalf("want numeric-column error, got %v", err)
	}
}
