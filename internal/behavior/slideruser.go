package behavior

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/trace"
	"repro/internal/widget"
)

// SliderTrackPx is the rendered slider track width used by the
// crossfiltering study's interface.
const SliderTrackPx = 350

// SliderSession is one user's crossfiltering session on one device.
type SliderSession struct {
	Device   device.Profile
	Events   []trace.SliderEvent   // the query-triggering slider trace
	Pointer  []trace.PointerSample // raw device samples (Figure 11)
	Duration time.Duration
	// Ranges holds the final [min,max] of each slider.
	Ranges [][2]float64
}

// SimulateSliderUser runs one user adjusting range sliders through the
// given device: a sequence of target acquisitions (move to a handle
// position, then hold). On friction devices (mouse, touch) the handle
// tracks the pointer only during the aimed movement; on the Leap Motion
// there is no clutch, so jitter during the hold keeps generating slider
// events — the paper's unintended-query effect.
//
// domains gives each slider's value domain; adjustments is the number of
// handle movements across the session.
func SimulateSliderUser(rng *rand.Rand, dev device.Profile, domains [][2]float64, adjustments int) *SliderSession {
	sess := &SliderSession{Device: dev}
	sliders := make([]*widget.Slider, len(domains))
	for i, d := range domains {
		sliders[i] = widget.NewSlider(i, d[0], d[1], SliderTrackPx)
	}

	now := time.Duration(0)
	// Pointer starts at the left edge of the first track.
	px, py := 0.0, 0.0
	for a := 0; a < adjustments; a++ {
		si := rng.Intn(len(sliders))
		s := sliders[si]
		handle := widget.Handle(rng.Intn(2))
		targetPx := rng.Float64() * SliderTrackPx
		// Slider rows are stacked 120px apart on screen.
		targetY := float64(si) * 120

		// Movement time follows Fitts' law for the device (§4.1.3's
		// interaction-timing models), with a 14px slider handle as the
		// target and ±25% individual variation.
		dist := math.Hypot(targetPx-px, targetY-py)
		fitts := fittsFor(dev)
		move := time.Duration(float64(fitts.MovementTime(dist, 14)) * (0.75 + 0.5*rng.Float64()))
		if move < 2*dev.SampleEvery {
			move = 2 * dev.SampleEvery
		}
		dwell := time.Duration(800+rng.Intn(1700)) * time.Millisecond
		if dev.RestNoise {
			// Free-space gesture devices acquire targets slowly: holding a
			// cursor steady without friction takes repeated correction, so
			// the hold phase stretches (and, with RestNoise, keeps firing
			// queries throughout — the paper's Figure 14 contrast).
			dwell = time.Duration(float64(dwell) * 2.5)
		}
		samples := dev.Seek(rng, now, px, py, targetPx, targetY, move, dwell)
		sess.Pointer = append(sess.Pointer, samples...)

		// The drag window: friction devices release the handle when the
		// aimed movement ends; the gesture device never releases.
		dragEnd := now + move + 2*dev.SampleEvery
		if dev.RestNoise {
			dragEnd = now + move + dwell
		}
		for _, sample := range dev.MovedSamples(samples) {
			if sample.At > dragEnd {
				break
			}
			if ev, changed := s.Drag(sample.At, handle, sample.X); changed {
				sess.Events = append(sess.Events, ev)
			}
		}
		px, py = targetPx, targetY
		now += move + dwell
		// Travel to the next control without touching anything.
		now += time.Duration(300+rng.Intn(500)) * time.Millisecond
	}
	sess.Duration = now
	sess.Ranges = make([][2]float64, len(sliders))
	for i, s := range sliders {
		mn, mx := s.Range()
		sess.Ranges[i] = [2]float64{mn, mx}
	}
	return sess
}

// fittsFor maps a device profile to its Fitts'-law coefficients.
func fittsFor(dev device.Profile) hci.FittsParams {
	switch {
	case dev.RestNoise:
		return hci.FittsGesture
	case dev.Name == "touch":
		return hci.FittsTouch
	default:
		return hci.FittsMouse
	}
}
