package behavior

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/widget"
)

// ActionKind classifies one composite-interface user action. Every action
// updates the tab URL and therefore issues one query (the unit the paper's
// Table 9 percentages count).
type ActionKind int

// Composite-interface actions.
const (
	ActZoomIn ActionKind = iota
	ActZoomOut
	ActDrag
	ActSlider   // price range adjustment
	ActCheckbox // room type / amenity toggle
	ActButton   // pagination or re-search button
	ActTextBox  // place search
)

// Widget maps an action to its widget kind for Table 9 accounting.
func (a ActionKind) Widget() widget.Kind {
	switch a {
	case ActZoomIn, ActZoomOut, ActDrag:
		return widget.KindMap
	case ActSlider:
		return widget.KindSlider
	case ActCheckbox:
		return widget.KindCheckbox
	case ActButton:
		return widget.KindButton
	default:
		return widget.KindTextBox
	}
}

// Action is one user step in a composite-interface session.
type Action struct {
	Kind ActionKind
	// DX, DY are the drag deltas in pixels (ActDrag only).
	DX, DY float64
	// FilterKey/FilterValue describe the filter change (slider, checkbox,
	// text box). Remove reports a condition being cleared.
	FilterKey   string
	FilterValue string
	Remove      bool
}

// ExplorerParams configures a composite-interface user.
type ExplorerParams struct {
	// StartZoom is the zoom level the session opens at.
	StartZoom int
	// MaxZoomDelta bounds how far from StartZoom the user wanders (the
	// paper observes ≤3 for all but one user).
	MaxZoomDelta int
	// PreferredLo/Hi is the zoom band users concentrate in (11–14).
	PreferredLo, PreferredHi int
}

// NewExplorerParams samples a user. Start zooms land so that the preferred
// 11–14 band is reachable within the ±3 wander bound.
func NewExplorerParams(rng *rand.Rand) ExplorerParams {
	return ExplorerParams{
		StartZoom:    10 + rng.Intn(4), // 10–13
		MaxZoomDelta: 3,
		PreferredLo:  11,
		PreferredHi:  14,
	}
}

// Explorer generates the action stream of one composite-interface session.
// The widget mix targets Table 9: map 62.8%, slider+checkbox 29.9%, button
// 3.6%, text box 3.6%.
type Explorer struct {
	rng    *rand.Rand
	params ExplorerParams
	zoom   int
	// filter bookkeeping so that filter actions are coherent (no removing
	// what is not set; growth pressure toward ≤4 conditions per Figure 20).
	filters map[string]string
	nextID  int
}

// filterPool is the menu of conditions an explorer toggles. Sliders own the
// price range; checkboxes own the discrete facets.
var sliderFilters = []string{"price_min", "price_max"}
var checkboxFilters = []string{"room_type", "instant_book", "superhost", "wifi", "kitchen", "parking", "pool", "pets"}

// NewExplorer creates an explorer session generator.
func NewExplorer(rng *rand.Rand, params ExplorerParams) *Explorer {
	return &Explorer{
		rng:     rng,
		params:  params,
		zoom:    params.StartZoom,
		filters: map[string]string{"guests": "2"},
	}
}

// Zoom returns the explorer's current zoom level.
func (e *Explorer) Zoom() int { return e.zoom }

// FilterCount returns the current number of filter conditions.
func (e *Explorer) FilterCount() int { return len(e.filters) }

// Next produces the next user action.
func (e *Explorer) Next() Action {
	r := e.rng.Float64()
	switch {
	case r < 0.628:
		return e.mapAction()
	case r < 0.628+0.299:
		return e.filterAction()
	case r < 0.628+0.299+0.036:
		return Action{Kind: ActButton}
	default:
		e.nextID++
		return Action{
			Kind:        ActTextBox,
			FilterKey:   "place",
			FilterValue: fmt.Sprintf("city-%d", e.nextID),
		}
	}
}

// mapAction picks a zoom or drag, steering the zoom walk into the
// preferred band and within the wander bound.
func (e *Explorer) mapAction() Action {
	p := e.params
	lo := p.StartZoom - p.MaxZoomDelta
	hi := p.StartZoom + p.MaxZoomDelta
	// ~55% of map actions drag, the rest zoom (zoom changes are what
	// Figure 18 plots, drags what Table 10 measures).
	if e.rng.Float64() < 0.55 {
		// Pixel-scale drags: the same hand motion at any zoom, which is
		// precisely why Table 10's degree ranges shrink at deeper zooms.
		dx := e.rng.NormFloat64() * 150
		dy := e.rng.NormFloat64() * 100
		if dx > 400 {
			dx = 400
		}
		if dx < -400 {
			dx = -400
		}
		if dy > 300 {
			dy = 300
		}
		if dy < -300 {
			dy = -300
		}
		return Action{Kind: ActDrag, DX: dx, DY: dy}
	}
	up := e.rng.Float64() < e.zoomInBias()
	if up && e.zoom < hi {
		e.zoom++
		return Action{Kind: ActZoomIn}
	}
	if !up && e.zoom > lo {
		e.zoom--
		return Action{Kind: ActZoomOut}
	}
	// Bounced off the wander bound: drag instead.
	return Action{Kind: ActDrag, DX: e.rng.NormFloat64() * 120, DY: e.rng.NormFloat64() * 80}
}

// zoomInBias returns the probability the next zoom step goes inward,
// pulling the walk toward the preferred band.
func (e *Explorer) zoomInBias() float64 {
	switch {
	case e.zoom < e.params.PreferredLo:
		return 0.85
	case e.zoom >= e.params.PreferredHi:
		return 0.15
	default:
		return 0.5
	}
}

// filterAction adds, changes, or removes a slider/checkbox condition.
// Removal pressure grows with the number of active conditions; the 0.14
// coefficient puts the stationary distribution at P(count ≤ 4) ≈ 0.7,
// matching the Figure 20 CDF.
func (e *Explorer) filterAction() Action {
	var removable []string
	for k := range e.filters {
		if k != "guests" && k != "place" {
			removable = append(removable, k)
		}
	}
	sort.Strings(removable) // deterministic under the seed
	removeP := 0.14 * float64(len(removable))
	if removeP > 0.8 {
		removeP = 0.8
	}
	if len(removable) > 0 && e.rng.Float64() < removeP {
		key := removable[e.rng.Intn(len(removable))]
		delete(e.filters, key)
		kind := ActCheckbox
		for _, s := range sliderFilters {
			if s == key {
				kind = ActSlider
			}
		}
		return Action{Kind: kind, FilterKey: key, Remove: true}
	}

	slider := e.rng.Float64() < 0.5
	pool := checkboxFilters
	kind := ActCheckbox
	if slider {
		pool = sliderFilters
		kind = ActSlider
	}
	key := pool[e.rng.Intn(len(pool))]
	var value string
	if slider {
		value = fmt.Sprintf("%d", 10+e.rng.Intn(300))
	} else {
		value = "true"
		if key == "room_type" {
			value = []string{"entire_home", "private_room", "shared_room"}[e.rng.Intn(3)]
		}
	}
	e.filters[key] = value
	return Action{Kind: kind, FilterKey: key, FilterValue: value}
}
